"""Shared fixtures for the test suite.

The expensive pieces — an SCF-converged small simulation and a full
multi-mode study — are session-scoped: `Simulation.run` is stateless
with respect to the simulation object (verified by the determinism
tests), so sharing the ground state across tests is safe and mirrors
the paper's methodology of re-running one binary per mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blas.gemm import check_finite
from repro.blas.modes import ComputeMode
from repro.dcmesh.simulation import Simulation, SimulationConfig


@pytest.fixture(scope="session", autouse=True)
def _finite_checks_on():
    """The per-call Inf/NaN input scans are opt-in (off on the hot
    path); the test suite runs with them enabled so numerical escapes
    fail loudly."""
    check_finite(True)
    yield
    check_finite(False)


@pytest.fixture(scope="session")
def tiny_config() -> SimulationConfig:
    """Smallest structurally-complete config: 5 atoms, 10^3 mesh."""
    return SimulationConfig.small_test(
        mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=20, nscf=10
    )


@pytest.fixture(scope="session")
def tiny_sim(tiny_config) -> Simulation:
    """A set-up simulation sharing one FP64 ground state."""
    sim = Simulation(tiny_config)
    sim.setup()
    return sim


@pytest.fixture(scope="session")
def tiny_fp32_run(tiny_sim):
    """Reference FP32 run of the tiny system."""
    return tiny_sim.run(mode=ComputeMode.STANDARD)


@pytest.fixture(scope="session")
def tiny_bf16_run(tiny_sim):
    """BF16-mode run of the tiny system."""
    return tiny_sim.run(mode=ComputeMode.FLOAT_TO_BF16)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic RNG for per-test data."""
    return np.random.default_rng(12345)


@pytest.fixture()
def clean_mode_env(monkeypatch):
    """Guarantee no ambient compute-mode state leaks into a test."""
    from repro.blas.verbose import clear_verbose_log

    monkeypatch.delenv("MKL_BLAS_COMPUTE_MODE", raising=False)
    monkeypatch.delenv("MKL_VERBOSE", raising=False)
    clear_verbose_log()
    yield
    clear_verbose_log()
