"""Property-based tests: framework-layer invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.blas.modes import ComputeMode
from repro.blas.policy import SitePolicy
from repro.core.schedule import qd_step_schedule
from repro.dcmesh.hopping import SurfaceHopper
from repro.dcmesh.io.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from repro.types import Precision

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestScheduleProperties:
    @given(
        st.integers(min_value=8, max_value=10**6),
        st.integers(min_value=2, max_value=4096),
        st.integers(min_value=1, max_value=4095),
        st.sampled_from([Precision.FP32, Precision.FP64]),
    )
    @settings(max_examples=60)
    def test_always_nine_calls_three_sites(self, n_grid, n_orb, n_occ, storage):
        if not n_occ < n_orb:
            n_occ = n_orb - 1
        gemms, streams = qd_step_schedule(n_grid, n_orb, n_occ, storage)
        assert len(gemms) == 9
        assert sum(s.passes for s in streams) == 40
        assert {g.site for g in gemms} == {"nlp_prop", "calc_energy", "remap_occ"}
        # Every GEMM dimension is positive and the Table VII shape holds.
        assert all(g.m > 0 and g.n > 0 and g.k > 0 for g in gemms)
        remap = [g for g in gemms if g.site == "remap_occ"][0]
        assert (remap.m, remap.n, remap.k) == (n_occ, n_orb - n_occ, n_grid)


class TestHopperProperties:
    @given(seeds, st.lists(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=3, max_size=3),
        min_size=1, max_size=20,
    ))
    @settings(max_examples=40)
    def test_probabilities_always_in_unit_interval(self, seed, trajectory):
        h = SurfaceHopper(n_occupied=3, seed=seed)
        for step, p in enumerate(trajectory):
            probs = h.probabilities(np.array(p))
            assert np.all(probs >= 0) and np.all(probs <= 1)
            h.attempt(step, np.array(p))

    @given(seeds, st.lists(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=2),
        min_size=1, max_size=12,
    ))
    @settings(max_examples=30)
    def test_deterministic_per_seed(self, seed, trajectory):
        def run():
            h = SurfaceHopper(n_occupied=2, seed=seed)
            events = []
            for step, p in enumerate(trajectory):
                e = h.attempt(step, np.array(p))
                events.append(None if e is None else (e.step, e.orbital))
            return events, h.surface

        assert run() == run()


class TestCheckpointProperties:
    @given(
        seeds,
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=25)
    def test_roundtrip_lossless(self, tmp_path_factory, seed, m, n, atoms):
        rng = np.random.default_rng(seed)
        ckpt = Checkpoint(
            step=0,
            psi=(rng.standard_normal((m, n)) + 1j * rng.standard_normal((m, n))),
            psi0=(rng.standard_normal((m, n)).astype(np.complex64)),
            occupations=rng.uniform(0, 2, n),
            positions=rng.uniform(0, 10, (atoms, 3)),
            velocities=rng.standard_normal((atoms, 3)),
            etot0=float(rng.standard_normal()),
            field_a=float(rng.standard_normal()),
            field_a_dot=float(rng.standard_normal()),
            field_last_j=float(rng.standard_normal()),
        )
        path = tmp_path_factory.mktemp("ck") / "c.npz"
        save_checkpoint(path, ckpt)
        back = load_checkpoint(path)
        np.testing.assert_array_equal(back.psi, ckpt.psi)
        np.testing.assert_array_equal(back.psi0, ckpt.psi0)
        np.testing.assert_array_equal(back.positions, ckpt.positions)
        assert back.etot0 == ckpt.etot0
        assert back.field_last_j == ckpt.field_last_j


class TestPolicyProperties:
    @given(
        st.dictionaries(
            st.sampled_from(["nlp_prop", "calc_energy", "remap_occ", "other"]),
            st.sampled_from([m.env_value for m in ComputeMode]),
            max_size=4,
        ),
        st.sampled_from([None] + [m.env_value for m in ComputeMode]),
        st.sampled_from(["nlp_prop", "calc_energy", "remap_occ", "other", "unknown"]),
    )
    def test_mode_for_total_and_consistent(self, mapping, default, site):
        policy = SitePolicy(mapping, default=default)
        out = policy.mode_for(site)
        if site in mapping:
            assert out is ComputeMode.parse(mapping[site])
        elif default is not None:
            assert out is ComputeMode.parse(default)
        else:
            assert out is None
