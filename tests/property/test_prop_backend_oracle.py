"""Cross-backend oracle suite: every backend vs the NumPy reference.

The backend seam's correctness contract (docs/BACKENDS.md) has two
tiers, and this suite asserts both — nothing here is "skip when it
doesn't hold":

* **Bitwise tier** — backends whose capabilities claim
  ``bitwise_numpy`` must match the NumPy backend bit for bit on every
  mode.  The wrapped-NumPy shadow backend proves the dispatch plumbing
  itself (conversion hooks, native mirrors, workspace routing) is
  bitwise invisible on every host, torch or not.  For torch-CPU the
  *split emulation's rounding* is also bitwise — splitting happens in
  NumPy before dispatch — so the reduced-precision component stacks
  are identical; only accumulation order may differ.
* **Tolerance tier** — backends with ``ieee_fp32_accumulation`` (torch
  CPU, and CUDA with TF32 off) may reassociate the FP32 accumulation,
  which bounds the divergence at a few ULPs of the accumulated sum.
  The contracts below are *asserted*, with the documented bounds.

Torch-specific tests use ``importorskip``: absence of torch skips the
torch rows only, never the shadow-backend rows.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blas.backend import (
    NUMPY_BACKEND,
    BackendCapabilities,
    NumpyBackend,
    use_backend,
)
from repro.blas.gemm import gemm
from repro.blas.level1 import asum, nrm2
from repro.blas.modes import ComputeMode, compute_mode

pytestmark = pytest.mark.usefixtures("clean_mode_env")

SWEEP_MODES = [
    ComputeMode.STANDARD,
    ComputeMode.FLOAT_TO_BF16,
    ComputeMode.FLOAT_TO_BF16X2,
    ComputeMode.FLOAT_TO_BF16X3,
    ComputeMode.FLOAT_TO_TF32,
]
COMPLEX_MODES = [
    ComputeMode.STANDARD,
    ComputeMode.FLOAT_TO_BF16X2,
    ComputeMode.COMPLEX_3M,
]

#: Documented accumulation-order tolerance for ``ieee_fp32_accumulation``
#: backends (docs/BACKENDS.md): the multiply stage is exact for split
#: modes, so only FP32 sum reassociation over k terms differs.
IEEE_RTOL = 1e-6
IEEE_ATOL = 1e-7

dims = st.integers(min_value=1, max_value=12)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class ShadowBackend(NumpyBackend):
    """Wrapped-NumPy backend with ``native_is_numpy=False`` — exercises
    the whole conversion/mirror path with NumPy arithmetic underneath,
    so its ``bitwise_numpy`` claim must hold on any host."""

    name = "shadow-oracle"
    capabilities = BackendCapabilities(
        ieee_fp32_accumulation=True,
        bitwise_numpy=True,
        device="cpu",
        native_is_numpy=False,
    )

    def to_native(self, x):
        return np.ascontiguousarray(x).copy()


def _real_inputs(seed, m, k, n):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    a *= np.exp2(rng.integers(-20, 21, size=a.shape)).astype(np.float32)
    b *= np.exp2(rng.integers(-20, 21, size=b.shape)).astype(np.float32)
    return a, b


def _complex_inputs(seed, m, k, n):
    rng = np.random.default_rng(seed)
    a = (rng.standard_normal((m, k)) + 1j * rng.standard_normal((m, k))).astype(
        np.complex64
    )
    b = (rng.standard_normal((k, n)) + 1j * rng.standard_normal((k, n))).astype(
        np.complex64
    )
    return a, b


def _torch_cpu():
    pytest.importorskip("torch")
    from repro.blas.backend import get_backend

    return get_backend("torch-cpu")


# ----------------------------------------------------------------------
# Bitwise tier.
# ----------------------------------------------------------------------


class TestBitwiseClaim:
    """Backends claiming ``bitwise_numpy`` must be bit-identical."""

    @pytest.mark.parametrize("mode", SWEEP_MODES, ids=lambda m: m.name)
    @given(seed=seeds, m=dims, k=dims, n=dims)
    @settings(max_examples=25, deadline=None)
    def test_shadow_real_gemm_bitwise(self, mode, seed, m, k, n):
        a, b = _real_inputs(seed, m, k, n)
        with compute_mode(mode):
            ref = gemm(a, b)
            with use_backend(ShadowBackend()):
                got = gemm(a, b)
        assert np.array_equal(got, ref, equal_nan=True)

    @pytest.mark.parametrize("mode", COMPLEX_MODES, ids=lambda m: m.name)
    @given(seed=seeds, m=dims, k=dims, n=dims)
    @settings(max_examples=15, deadline=None)
    def test_shadow_complex_gemm_bitwise(self, mode, seed, m, k, n):
        a, b = _complex_inputs(seed, m, k, n)
        with compute_mode(mode):
            ref = gemm(a, b)
            with use_backend(ShadowBackend()):
                got = gemm(a, b)
        assert np.array_equal(got, ref, equal_nan=True)

    @given(seed=seeds, n=st.integers(min_value=1, max_value=256))
    @settings(max_examples=15, deadline=None)
    def test_shadow_level1_bitwise(self, seed, n):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n).astype(np.float32)
        ref_nrm2, ref_asum = nrm2(x), asum(x)
        with use_backend(ShadowBackend()):
            got_nrm2, got_asum = nrm2(x), asum(x)
        assert got_nrm2 == ref_nrm2
        assert got_asum == ref_asum


# ----------------------------------------------------------------------
# Tolerance tier (torch).
# ----------------------------------------------------------------------


class TestTorchCpuContracts:
    """torch-CPU: IEEE FP32 accumulation, tolerance-tier contracts.

    These are skipped only for *absence of torch* — on any host where
    torch imports, the assertions run and must pass.
    """

    def test_capability_claims(self):
        be = _torch_cpu()
        caps = be.capabilities
        assert caps.ieee_fp32_accumulation  # allow_tf32 is off by default
        assert not caps.bitwise_numpy  # never promise what BLAS order can break
        assert caps.device == "cpu"
        assert not caps.native_is_numpy
        assert be.cache_key == "torch-cpu"

    @pytest.mark.parametrize("mode", SWEEP_MODES, ids=lambda m: m.name)
    @given(seed=seeds, m=dims, k=dims, n=dims)
    @settings(max_examples=15, deadline=None)
    def test_real_gemm_tolerance(self, mode, seed, m, k, n):
        be = _torch_cpu()
        a, b = _real_inputs(seed, m, k, n)
        with compute_mode(mode):
            ref = gemm(a, b)
            with use_backend(be):
                got = gemm(a, b)
        assert got.dtype == ref.dtype
        np.testing.assert_allclose(got, ref, rtol=IEEE_RTOL, atol=IEEE_ATOL * np.abs(ref).max())

    @pytest.mark.parametrize("mode", COMPLEX_MODES, ids=lambda m: m.name)
    @given(seed=seeds, m=dims, k=dims, n=dims)
    @settings(max_examples=10, deadline=None)
    def test_complex_gemm_tolerance(self, mode, seed, m, k, n):
        be = _torch_cpu()
        a, b = _complex_inputs(seed, m, k, n)
        with compute_mode(mode):
            ref = gemm(a, b)
            with use_backend(be):
                got = gemm(a, b)
        np.testing.assert_allclose(
            got, ref, rtol=IEEE_RTOL, atol=IEEE_ATOL * np.abs(ref).max()
        )

    @given(seed=seeds, m=dims, k=dims, n=dims)
    @settings(max_examples=10, deadline=None)
    def test_split_rounding_is_bitwise_even_on_torch(self, seed, m, k, n):
        """k=1 GEMMs have a single product per output element — no
        accumulation freedom — so even torch must match bitwise.  This
        pins that divergence can only come from sum order, i.e. the
        rounding/splitting policy really is backend-independent."""
        be = _torch_cpu()
        a, b = _real_inputs(seed, m, 1, n)
        for mode in SWEEP_MODES:
            with compute_mode(mode):
                ref = gemm(a, b)
                with use_backend(be):
                    got = gemm(a, b)
            assert np.array_equal(got, ref), mode
