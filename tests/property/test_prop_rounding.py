"""Property-based tests: rounding primitives (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.blas.rounding import (
    max_relative_error,
    round_fp32_to_bf16,
    round_fp32_to_tf32,
    round_mantissa,
    split_terms,
)

_F32_MAX = float(np.float32(3e38))  # exactly representable float32 bound

finite_f32 = st.floats(
    min_value=-_F32_MAX, max_value=_F32_MAX, allow_nan=False,
    allow_infinity=False, width=32, allow_subnormal=False,
)

f32_arrays = hnp.arrays(
    dtype=np.float32,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=32),
    elements=finite_f32,
)

keep_bits = st.integers(min_value=1, max_value=23)


class TestRoundingProperties:
    @given(f32_arrays, keep_bits)
    def test_idempotent(self, x, keep):
        once = round_mantissa(x, keep)
        twice = round_mantissa(once, keep)
        np.testing.assert_array_equal(once, twice)

    @given(f32_arrays)
    def test_bf16_relative_error_bound(self, x):
        out = round_fp32_to_bf16(x)
        nz = x != 0
        if nz.any():
            rel = np.abs((out[nz] - x[nz]) / x[nz])
            assert rel.max() <= max_relative_error(7) * (1 + 1e-6)

    @given(f32_arrays)
    def test_tf32_at_least_as_accurate_as_bf16(self, x):
        eb = np.abs(round_fp32_to_bf16(x) - x)
        et = np.abs(round_fp32_to_tf32(x) - x)
        assert np.all(et <= eb + 0.0)

    @given(f32_arrays, keep_bits)
    def test_sign_symmetry(self, x, keep):
        np.testing.assert_array_equal(
            round_mantissa(-x, keep), -round_mantissa(x, keep)
        )

    @given(st.lists(finite_f32, min_size=2, max_size=2).map(sorted), keep_bits)
    def test_monotone(self, pair, keep):
        lo, hi = pair
        a = round_mantissa(np.array([lo], np.float32), keep)[0]
        b = round_mantissa(np.array([hi], np.float32), keep)[0]
        assert a <= b

    @given(f32_arrays, keep_bits)
    def test_result_on_grid(self, x, keep):
        # Low dropped bits are exactly zero for finite outputs.
        out = round_mantissa(x, keep)
        drop = 23 - keep
        if drop:
            bits = out.view(np.uint32)
            finite = np.isfinite(out)
            assert np.all(bits[finite] & ((1 << drop) - 1) == 0)

    @given(f32_arrays, keep_bits)
    def test_zero_maps_to_zero(self, x, keep):
        z = round_mantissa(np.zeros_like(x), keep)
        np.testing.assert_array_equal(z, np.zeros_like(x))


class TestSplitProperties:
    @given(f32_arrays, st.integers(min_value=1, max_value=3))
    @settings(max_examples=50)
    def test_terms_on_bf16_grid(self, x, n):
        for t in split_terms(x, 7, n):
            np.testing.assert_array_equal(round_mantissa(t, 7), t)

    @given(f32_arrays, st.integers(min_value=1, max_value=3))
    @settings(max_examples=50)
    def test_residual_shrinks_with_terms(self, x, n):
        terms = split_terms(x, 7, n)
        recon = np.zeros_like(x)
        prev_err = None
        for t in terms:
            recon = recon + t
            err = float(np.abs(recon - x).max())
            if prev_err is not None:
                assert err <= prev_err * (1 + 1e-6)
            prev_err = err

    @given(f32_arrays)
    @settings(max_examples=50)
    def test_three_term_reconstruction_tight(self, x):
        t1, t2, t3 = split_terms(x, 7, 3)
        err = np.abs((t1 + t2 + t3) - x)
        # The relative bound holds while the residual terms stay out of
        # the FP32 denormal range; near the minimum normal (~1.2e-38)
        # the residual grid itself is absolute, not relative.
        mask = np.abs(x) >= 2.0**-100
        if mask.any():
            rel = err[mask] / np.abs(x[mask])
            assert float(rel.max()) <= 2**-20
