"""Property-based tests: GEMM dispatcher invariants across modes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blas.gemm import gemm
from repro.blas.modes import ComputeMode

pytestmark = pytest.mark.usefixtures("clean_mode_env")

ALL_MODES = list(ComputeMode)

dims = st.integers(min_value=1, max_value=12)


@st.composite
def gemm_inputs(draw, complex_=False):
    m, k, n = draw(dims), draw(dims), draw(dims)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    if complex_:
        a = (rng.standard_normal((m, k)) + 1j * rng.standard_normal((m, k))).astype(np.complex64)
        b = (rng.standard_normal((k, n)) + 1j * rng.standard_normal((k, n))).astype(np.complex64)
    else:
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
    return a, b


class TestGemmProperties:
    @given(gemm_inputs(), st.sampled_from(ALL_MODES))
    @settings(max_examples=60, deadline=None)
    def test_close_to_fp64_reference(self, ab, mode):
        a, b = ab
        ref = a.astype(np.float64) @ b.astype(np.float64)
        out = gemm(a, b, mode=mode).astype(np.float64)
        scale = max(np.abs(ref).max(), 1e-6)
        # Worst case (BF16): k * 2^-7 relative; generous envelope.
        tol = a.shape[1] * 2**-6 * scale
        assert np.abs(out - ref).max() <= tol

    @given(gemm_inputs(complex_=True), st.sampled_from(ALL_MODES))
    @settings(max_examples=40, deadline=None)
    def test_complex_close_to_reference(self, ab, mode):
        a, b = ab
        ref = a.astype(np.complex128) @ b.astype(np.complex128)
        out = gemm(a, b, mode=mode).astype(np.complex128)
        scale = max(np.abs(ref).max(), 1e-6)
        tol = 4 * a.shape[1] * 2**-6 * scale
        assert np.abs(out - ref).max() <= tol

    @given(gemm_inputs(), st.sampled_from(ALL_MODES))
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, ab, mode):
        a, b = ab
        np.testing.assert_array_equal(gemm(a, b, mode=mode), gemm(a, b, mode=mode))

    @given(gemm_inputs(), st.sampled_from(ALL_MODES),
           st.floats(min_value=-4, max_value=4, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_alpha_scaling_linear(self, ab, mode, alpha):
        # alpha is applied after the mode computation: exact scaling.
        a, b = ab
        base = gemm(a, b, mode=mode)
        scaled = gemm(a, b, alpha=alpha, mode=mode)
        np.testing.assert_allclose(
            scaled, np.float32(alpha) * base, rtol=1e-6, atol=1e-30
        )

    @given(gemm_inputs(), st.sampled_from(ALL_MODES))
    @settings(max_examples=40, deadline=None)
    def test_output_shape_and_dtype(self, ab, mode):
        a, b = ab
        out = gemm(a, b, mode=mode)
        assert out.shape == (a.shape[0], b.shape[1])
        assert out.dtype == np.float32

    @given(dims, dims, dims, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_conjugate_transpose_consistency(self, g, m, n, seed):
        # With A (g x m) and B (g x n): (A^H B)^H == B^H A.
        rng = np.random.default_rng(seed)
        a = (rng.standard_normal((g, m)) + 1j * rng.standard_normal((g, m))).astype(np.complex64)
        b = (rng.standard_normal((g, n)) + 1j * rng.standard_normal((g, n))).astype(np.complex64)
        lhs = gemm(a, b, trans_a="C")
        rhs = gemm(b, a, trans_a="C")
        np.testing.assert_allclose(lhs.conj().T, rhs, rtol=1e-4, atol=1e-5)

    @given(gemm_inputs(), st.sampled_from([
        ComputeMode.FLOAT_TO_BF16X2, ComputeMode.FLOAT_TO_BF16X3,
    ]))
    @settings(max_examples=40, deadline=None)
    def test_multi_term_never_worse_than_single(self, ab, mode):
        a, b = ab
        ref = a.astype(np.float64) @ b.astype(np.float64)
        e_multi = np.abs(gemm(a, b, mode=mode).astype(np.float64) - ref).max()
        e_single = np.abs(
            gemm(a, b, mode=ComputeMode.FLOAT_TO_BF16).astype(np.float64) - ref
        ).max()
        # Allow tiny slack for ties at exact representability.
        assert e_multi <= e_single + 1e-12 + 1e-7 * np.abs(ref).max()
