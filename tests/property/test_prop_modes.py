"""Property-based tests: mode parsing and selection."""

from hypothesis import given, strategies as st

from repro.blas.modes import (
    ComputeMode,
    UnknownComputeModeError,
    compute_mode,
    get_compute_mode,
    resolve_mode,
)


class TestParseProperties:
    @given(st.sampled_from(list(ComputeMode)))
    def test_roundtrip_env_value(self, mode):
        assert ComputeMode.parse(mode.env_value) is mode

    @given(st.sampled_from(list(ComputeMode)),
           st.sampled_from([str.lower, str.upper, str.title]))
    def test_case_insensitive(self, mode, transform):
        assert ComputeMode.parse(transform(mode.env_value)) is mode

    @given(st.text(max_size=20))
    def test_never_crashes_unexpectedly(self, text):
        try:
            out = ComputeMode.parse(text)
        except UnknownComputeModeError:
            return
        assert isinstance(out, ComputeMode)

    @given(st.sampled_from(list(ComputeMode)))
    def test_component_structure_consistent(self, mode):
        n = mode.n_terms
        assert mode.n_component_products == n * (n + 1) // 2
        # Every splitting mode — sub-FP32 rounding, Ozaki INT8 slices,
        # FP32-term FP64 emulation — declares its component format.
        splits = mode.is_low_precision or mode.uses_int8 or mode.uses_fp64_emulation
        if splits:
            assert mode.component_precision is not None
        else:
            assert mode.component_precision is None


class TestSelectionProperties:
    @given(st.lists(st.sampled_from(list(ComputeMode)), min_size=1, max_size=6))
    def test_nested_contexts_stack_like(self, modes):
        import contextlib

        with contextlib.ExitStack() as stack:
            for m in modes:
                stack.enter_context(compute_mode(m))
                assert get_compute_mode() is m
        assert get_compute_mode() is ComputeMode.STANDARD

    @given(st.sampled_from(list(ComputeMode)), st.sampled_from(list(ComputeMode)))
    def test_explicit_always_wins(self, ambient, explicit):
        with compute_mode(ambient):
            assert resolve_mode(explicit) is explicit
