"""Property-based tests: device-model invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blas.modes import ComputeMode
from repro.core.theoretical import peak_theoretical_speedup
from repro.gpu.gemm_model import GemmModel
from repro.gpu.specs import MAX_1550_STACK

MODEL = GemmModel()

dims = st.integers(min_value=1, max_value=8192)
routines = st.sampled_from(["sgemm", "dgemm", "cgemm", "zgemm"])
modes = st.sampled_from(list(ComputeMode))


class TestModelProperties:
    @given(routines, dims, dims, dims, modes)
    @settings(max_examples=120, deadline=None)
    def test_time_positive_finite(self, routine, m, n, k, mode):
        t = MODEL.seconds(routine, m, n, k, mode)
        assert t > 0
        assert t < 1e6

    @given(dims, dims, dims, modes)
    @settings(max_examples=80, deadline=None)
    def test_speedup_never_exceeds_theoretical_peak(self, m, n, k, mode):
        if mode.uses_fp64_emulation:
            # EMULATED_FP64's quoted peak is vs native FP64 in the
            # compute-bound regime, not vs the same-routine STANDARD
            # run.  On the Max 1550 the vector FP64 rate equals FP32,
            # so the emulation can never beat the native run it
            # replaces — on any routine.
            for routine in ("cgemm", "zgemm"):
                assert MODEL.speedup_vs_fp32(routine, m, n, k, mode) <= 1.05 + 0.05
            return
        s = MODEL.speedup_vs_fp32("cgemm", m, n, k, mode)
        peak = peak_theoretical_speedup(mode, MAX_1550_STACK)
        # The model's memory and power terms only *reduce* speedup;
        # launch-overhead edge cases get a small epsilon.
        assert s <= peak * 1.05 + 0.05

    @given(routines, dims, dims, dims, modes)
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_each_dimension(self, routine, m, n, k, mode):
        base = MODEL.seconds(routine, m, n, k, mode)
        assert MODEL.seconds(routine, 2 * m, n, k, mode) >= base * 0.999
        assert MODEL.seconds(routine, m, 2 * n, k, mode) >= base * 0.999
        assert MODEL.seconds(routine, m, n, 2 * k, mode) >= base * 0.999

    @given(dims, dims, dims)
    @settings(max_examples=60, deadline=None)
    def test_double_precision_never_faster(self, m, n, k):
        t32 = MODEL.seconds("cgemm", m, n, k, ComputeMode.STANDARD)
        t64 = MODEL.seconds("zgemm", m, n, k, ComputeMode.STANDARD)
        assert t64 >= t32 * 0.999

    @given(dims, dims, dims, modes)
    @settings(max_examples=60, deadline=None)
    def test_flops_consistent_with_components(self, m, n, k, mode):
        cost = MODEL.cost("cgemm", m, n, k, mode)
        assert cost.point.flops == pytest.approx(
            2.0 * m * n * k * cost.n_component_products
        )
