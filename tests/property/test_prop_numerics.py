"""Property-based tests: numerics-layer extensions (stencil, batch, maxwell)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blas.batch import gemm_batch
from repro.blas.gemm import gemm
from repro.blas.modes import ComputeMode
from repro.dcmesh.maxwell import InducedField
from repro.dcmesh.stencil import STENCIL_COEFFICIENTS, laplacian_eigenvalue_1d

seeds = st.integers(min_value=0, max_value=2**31 - 1)
modes = st.sampled_from(list(ComputeMode))


class TestStencilProperties:
    @given(
        st.sampled_from(sorted(STENCIL_COEFFICIENTS)),
        st.floats(min_value=0.05, max_value=2.0),
        st.floats(min_value=0.01, max_value=0.3),
    )
    def test_eigenvalue_negative_and_bounded(self, order, k, h):
        val = laplacian_eigenvalue_1d(k, h, order)
        # FD eigenvalues of -d2/dx2 are non-positive and never
        # overshoot the exact -k^2 by more than it is worth at coarse h.
        assert val <= 1e-12
        assert val >= -4.0 * sum(abs(c) for c in STENCIL_COEFFICIENTS[order]) / h**2

    @given(
        st.sampled_from(sorted(STENCIL_COEFFICIENTS)),
        st.floats(min_value=0.1, max_value=1.5),
    )
    def test_refinement_improves(self, order, k):
        coarse = abs(laplacian_eigenvalue_1d(k, 0.2, order) + k * k)
        fine = abs(laplacian_eigenvalue_1d(k, 0.05, order) + k * k)
        assert fine <= coarse + 1e-12


class TestBatchProperties:
    @given(seeds, st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=6), modes)
    @settings(max_examples=40, deadline=None)
    def test_batch_equals_loop(self, seed, batch, dim, mode):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((batch, dim, dim)).astype(np.float32)
        b = rng.standard_normal((batch, dim, dim)).astype(np.float32)
        out = gemm_batch(a, b, mode=mode)
        for i in range(batch):
            np.testing.assert_array_equal(out[i], gemm(a[i], b[i], mode=mode))


class TestInducedFieldProperties:
    @given(
        st.floats(min_value=1e-3, max_value=0.5),
        st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=1, max_size=50),
    )
    def test_linear_in_current_history(self, dt, currents):
        # The integrator is linear: doubling the drive doubles the field.
        f1, f2 = InducedField(dt), InducedField(dt)
        for j in currents:
            f1.step(j)
            f2.step(2.0 * j)
        assert f2.a == pytest.approx(2.0 * f1.a, rel=1e-12, abs=1e-300)
        assert f2.a_dot == pytest.approx(2.0 * f1.a_dot, rel=1e-12, abs=1e-300)

    @given(st.floats(min_value=1e-3, max_value=0.5),
           st.integers(min_value=1, max_value=100))
    def test_zero_drive_inert(self, dt, n):
        f = InducedField(dt)
        for _ in range(n):
            f.step(0.0)
        assert f.a == 0.0 and f.a_dot == 0.0
