"""Property tests: the telemetry event stream preserves the MKL_VERBOSE
contract.

Since the unified stream landed, ``VerboseRecord`` lines are rendered
from records that took a detour through the telemetry collector
(``emit_call`` -> event buffer -> ``verbose_records()``).  These
properties pin that detour as lossless: the MKL-look-alike line built
from the *reconstructed* record still satisfies
``parse_verbose_line`` exactly as one built from the original.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blas.modes import ComputeMode
from repro.blas.verbose import VerboseRecord, format_verbose_line
from repro.profiling.mklverbose import parse_verbose_line
from repro.telemetry.registry import Telemetry

pytestmark = pytest.mark.telemetry

records = st.builds(
    VerboseRecord,
    routine=st.sampled_from(["sgemm", "dgemm", "cgemm", "zgemm"]),
    trans_a=st.sampled_from(["N", "T", "C"]),
    trans_b=st.sampled_from(["N", "T", "C"]),
    m=st.integers(min_value=1, max_value=8192),
    n=st.integers(min_value=1, max_value=8192),
    k=st.integers(min_value=1, max_value=8192),
    mode=st.sampled_from(list(ComputeMode)),
    # Keep timings in the range where the line format's fixed decimals
    # retain >= 3 significant digits (1 us .. 100 s).
    seconds=st.floats(min_value=1e-6, max_value=100.0),
    model_seconds=st.none() | st.floats(min_value=1e-6, max_value=100.0),
    site=st.sampled_from(["", "nlp_prop", "calc_energy", "remap_occ", "qmc_proj"]),
    batch=st.integers(min_value=1, max_value=512),
)


def _detour(rec: VerboseRecord) -> VerboseRecord:
    """Push one record through the collector and rebuild it."""
    t = Telemetry()
    t.blas_call(rec)
    (rebuilt,) = t.verbose_records()
    return rebuilt


@settings(max_examples=200)
@given(records)
def test_collector_detour_is_lossless(rec):
    rebuilt = _detour(rec)
    assert rebuilt.routine == rec.routine
    assert (rebuilt.trans_a, rebuilt.trans_b) == (rec.trans_a, rec.trans_b)
    assert (rebuilt.m, rebuilt.n, rebuilt.k) == (rec.m, rec.n, rec.k)
    assert rebuilt.mode is rec.mode
    assert rebuilt.site == rec.site
    assert rebuilt.batch == rec.batch
    assert rebuilt.seconds == rec.seconds
    assert rebuilt.model_seconds == rec.model_seconds


@settings(max_examples=200)
@given(records)
def test_rendered_line_is_identical_after_detour(rec):
    """Bit-for-bit: the MKL-look-alike line does not change because the
    record travelled through the telemetry buffer."""
    assert format_verbose_line(_detour(rec)) == format_verbose_line(rec)


@settings(max_examples=200)
@given(records)
def test_line_from_detoured_record_still_parses(rec):
    line = format_verbose_line(_detour(rec))
    parsed = parse_verbose_line(line)
    assert parsed.routine == rec.routine
    assert (parsed.trans_a, parsed.trans_b) == (rec.trans_a, rec.trans_b)
    assert (parsed.m, parsed.n, parsed.k) == (rec.m, rec.n, rec.k)
    assert parsed.mode is rec.mode
    assert parsed.site == rec.site
    assert parsed.batch == rec.batch
    # The line format keeps >= 3 significant digits of the reported
    # timing in this range; parsing inverts the unit scaling.
    assert parsed.seconds == pytest.approx(rec.reported_seconds, rel=5e-3)
