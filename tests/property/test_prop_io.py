"""Property-based tests: file formats round-trip losslessly."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dcmesh.io.config import parse_config_file, write_config_file
from repro.dcmesh.io.lfdinput import parse_lfd_input, write_lfd_input
from repro.dcmesh.laser import LaserPulse
from repro.dcmesh.material import Material
from repro.dcmesh.observables import QDRecord, format_qd_line, parse_qd_line
from repro.types import Precision

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)


class TestQDLineRoundTrip:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.lists(finite, min_size=8, max_size=8),
    )
    def test_lossless(self, step, vals):
        rec = QDRecord(step, *vals)
        back = parse_qd_line(format_qd_line(rec))
        assert back.step == rec.step
        for field in ("time_fs", "ekin", "epot", "etot", "eexc", "nexc",
                      "aext", "javg"):
            assert getattr(back, field) == getattr(rec, field), field


class TestConfigRoundTrip:
    @given(
        st.lists(st.sampled_from(["Pb", "Ti", "O"]), min_size=1, max_size=12),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=2.0, max_value=50.0),
    )
    @settings(max_examples=30)
    def test_lossless(self, tmp_path_factory, symbols, seed, box_len):
        tmp = tmp_path_factory.mktemp("cfg")
        rng = np.random.default_rng(seed)
        positions = rng.uniform(0, box_len, (len(symbols), 3))
        material = Material(symbols, positions, (box_len,) * 3)
        path = tmp / "CONFIG"
        write_config_file(path, material)
        back = parse_config_file(path)
        assert back.symbols == material.symbols
        np.testing.assert_array_equal(back.positions, material.positions)
        assert back.box == material.box


class TestLfdInputRoundTrip:
    @given(
        st.floats(min_value=1e-3, max_value=1.0),
        st.integers(min_value=1, max_value=10**6),
        st.integers(min_value=1, max_value=10**4),
        st.sampled_from([Precision.FP32, Precision.FP64]),
        st.booleans(),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=1e-3, max_value=2.0),
        st.floats(min_value=1e-3, max_value=1.0),
        st.floats(min_value=0.1, max_value=50.0),
    )
    @settings(max_examples=30)
    def test_lossless(self, tmp_path_factory, dt, nsteps, nscf, storage,
                      move, seed, amp, omega, dur):
        tmp = tmp_path_factory.mktemp("lfd")
        original = dict(
            dt=dt, nsteps=nsteps, nscf=nscf, storage=storage,
            move_ions=move, seed=seed,
            laser=LaserPulse(amplitude=amp, omega=omega, duration_fs=dur),
        )
        path = tmp / "lfd.in"
        write_lfd_input(path, original)
        back = parse_lfd_input(path)
        for key in ("dt", "nsteps", "nscf", "storage", "move_ions", "seed"):
            assert back[key] == original[key], key
        assert back["laser"] == original["laser"]
