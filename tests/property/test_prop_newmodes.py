"""Property tests for the post-paper split modes.

Two contracts per mode:

* **accuracy** — against an FP64 matmul reference, ``OZAKI_INT8`` stays
  inside the analytic per-slice truncation bound and ``EMULATED_FP64``
  delivers FP64-class results from FP32-term products;
* **golden bitwise** — the routed fused/plan-cached paths reproduce the
  kept naive references (:func:`repro.blas.split.ozaki_gemm_reference`,
  :func:`repro.blas.split.emulated_fp64_gemm_reference`, composed with
  ``gemm_4m`` for complex) bit for bit under both fused engines, on the
  same adversarial inputs the paper-mode golden suite uses.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blas.complex3m import gemm_4m
from repro.blas.gemm import gemm
from repro.blas.modes import ComputeMode, set_ozaki_slices
from repro.blas.plan import plan_cache, prepare
from repro.blas.rounding import OZAKI_SLICE_BITS, ozaki_max_relative_error
from repro.blas.split import (
    emulated_fp64_gemm_reference,
    ozaki_gemm_reference,
)
from repro.blas.workspace import fused_mode

pytestmark = pytest.mark.usefixtures("clean_mode_env")

dims = st.integers(min_value=1, max_value=10)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
slice_counts = st.integers(min_value=1, max_value=4)


def _mixed_magnitude(rng, shape, decades=4, dtype=np.float32):
    scale = 10.0 ** rng.integers(-decades, decades + 1, size=shape).astype(np.float64)
    return (rng.standard_normal(shape) * scale).astype(dtype)


@st.composite
def gemm_inputs(draw, dtype=np.float32, decades=4):
    m, k, n = draw(dims), draw(dims), draw(dims)
    rng = np.random.default_rng(draw(seeds))
    if np.dtype(dtype).kind == "c":
        real = np.float32 if np.dtype(dtype) == np.dtype(np.complex64) else np.float64
        a = (_mixed_magnitude(rng, (m, k), decades, real)
             + 1j * _mixed_magnitude(rng, (m, k), decades, real)).astype(dtype)
        b = (_mixed_magnitude(rng, (k, n), decades, real)
             + 1j * _mixed_magnitude(rng, (k, n), decades, real)).astype(dtype)
    else:
        a = _mixed_magnitude(rng, (m, k), decades, dtype)
        b = _mixed_magnitude(rng, (k, n), decades, dtype)
    return a, b


def _assert_bitwise(out, ref):
    assert out.dtype == ref.dtype and out.shape == ref.shape
    view = {
        np.dtype(np.float32): np.uint32,
        np.dtype(np.float64): np.uint64,
        np.dtype(np.complex64): np.uint64,
    }.get(out.dtype)
    if view is None:                      # complex128: compare part-wise
        np.testing.assert_array_equal(out.real.view(np.uint64), ref.real.view(np.uint64))
        np.testing.assert_array_equal(out.imag.view(np.uint64), ref.imag.view(np.uint64))
    else:
        np.testing.assert_array_equal(out.view(view), ref.view(view))


# ----------------------------------------------------------------------
# Accuracy against the FP64 reference.
# ----------------------------------------------------------------------


class TestOzakiAccuracy:
    """OZAKI_INT8 stays inside the analytic slice-truncation bound.

    With per-fibre scales ``rowmax_a``/``colmax_b``, truncating each
    operand after ``s`` 7-bit slices leaves a residual below
    ``2^(1 - 7s)`` of the fibre max; propagating both residuals through
    the k-sum bounds the output error by
    ``k * rowmax_a * colmax_b * 2^(3 - 7s)`` elementwise.
    """

    @given(gemm_inputs(), slice_counts)
    @settings(max_examples=60, deadline=None)
    def test_elementwise_truncation_bound(self, ab, n_slices):
        a, b = ab
        set_ozaki_slices(n_slices)
        try:
            out = gemm(a, b, mode=ComputeMode.OZAKI_INT8).astype(np.float64)
        finally:
            set_ozaki_slices(None)
        ref = a.astype(np.float64) @ b.astype(np.float64)
        k = a.shape[-1]
        rowmax = np.max(np.abs(a.astype(np.float64)), axis=-1, keepdims=True)
        colmax = np.max(np.abs(b.astype(np.float64)), axis=-2, keepdims=True)
        bound = k * rowmax * colmax * 2.0 ** (3 - OZAKI_SLICE_BITS * n_slices)
        # FP32 output rounding adds at most one half-ulp of the result.
        bound = bound + np.abs(ref) * 2.0**-24
        assert (np.abs(out - ref) <= bound + np.finfo(np.float64).tiny).all()

    def test_more_slices_tighter_error(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((48, 64)).astype(np.float32)
        b = rng.standard_normal((64, 40)).astype(np.float32)
        ref = a.astype(np.float64) @ b.astype(np.float64)

        def err(s):
            set_ozaki_slices(s)
            try:
                out = gemm(a, b, mode=ComputeMode.OZAKI_INT8)
            finally:
                set_ozaki_slices(None)
            return float(np.abs(out.astype(np.float64) - ref).max())

        e1, e2, e3 = err(1), err(2), err(3)
        assert e1 > e2 > 0
        assert e2 > e3 or e3 == 0.0
        # And the analytic ladder mirrors that monotonicity.
        assert ozaki_max_relative_error(1) > ozaki_max_relative_error(2) > \
            ozaki_max_relative_error(3)


class TestEmulatedFP64Accuracy:
    """EMULATED_FP64 delivers FP64-class GEMMs from FP32-term products."""

    @given(gemm_inputs(dtype=np.float64, decades=6))
    @settings(max_examples=60, deadline=None)
    def test_dgemm_near_fp64(self, ab):
        a, b = ab
        out = gemm(a, b, mode=ComputeMode.EMULATED_FP64)
        assert out.dtype == np.float64
        ref = a @ b
        # The three FP32 terms carry all 53 significand bits and every
        # pair product is exact in FP64, so the only error left is the
        # FP64 accumulation of ~6k partial products.
        k = a.shape[-1]
        envelope = np.abs(a) @ np.abs(b)
        bound = envelope * (32 * k * 2.0**-53) + np.finfo(np.float64).tiny
        assert (np.abs(out - ref) <= bound).all()

    @given(gemm_inputs(dtype=np.complex128, decades=3))
    @settings(max_examples=30, deadline=None)
    def test_zgemm_near_fp64(self, ab):
        a, b = ab
        out = gemm(a, b, mode=ComputeMode.EMULATED_FP64)
        assert out.dtype == np.complex128
        ref = a @ b
        k = a.shape[-1]
        envelope = np.abs(a) @ np.abs(b)
        bound = envelope * (64 * k * 2.0**-53) + np.finfo(np.float64).tiny
        assert (np.abs(out - ref) <= bound).all()

    @given(gemm_inputs())
    @settings(max_examples=40, deadline=None)
    def test_sgemm_beats_fp32_class(self, ab):
        a, b = ab
        out = gemm(a, b, mode=ComputeMode.EMULATED_FP64)
        assert out.dtype == np.float32
        ref = a.astype(np.float64) @ b.astype(np.float64)
        k = a.shape[-1]
        envelope = np.abs(a.astype(np.float64)) @ np.abs(b.astype(np.float64))
        # FP64 accumulation, then one rounding to FP32 storage.
        bound = envelope * (32 * k * 2.0**-53) + np.abs(ref) * 2.0**-24
        assert (np.abs(out.astype(np.float64) - ref)
                <= bound + np.finfo(np.float64).tiny).all()


# ----------------------------------------------------------------------
# Golden bitwise: routed/fused/cached paths vs the naive references.
# ----------------------------------------------------------------------


def _reference(a, b, mode):
    """The kept naive path for each (dtype, mode) pairing."""
    if mode is ComputeMode.OZAKI_INT8:
        n_slices = ComputeMode.OZAKI_INT8.n_terms
        if np.iscomplexobj(a):
            return gemm_4m(
                a, b, real_gemm=lambda x, y: ozaki_gemm_reference(x, y, n_slices)
            )
        return ozaki_gemm_reference(a, b, n_slices)
    if np.iscomplexobj(a):
        return gemm_4m(a, b, real_gemm=emulated_fp64_gemm_reference)
    return emulated_fp64_gemm_reference(a, b)


class TestGoldenOzaki:
    @given(gemm_inputs(), slice_counts)
    @settings(max_examples=50, deadline=None)
    def test_sgemm_bitwise(self, ab, n_slices):
        a, b = ab
        set_ozaki_slices(n_slices)
        try:
            ref = _reference(a, b, ComputeMode.OZAKI_INT8)
            for engine in ("batched", "loop"):
                with fused_mode(engine):
                    _assert_bitwise(gemm(a, b, mode=ComputeMode.OZAKI_INT8), ref)
        finally:
            set_ozaki_slices(None)

    @given(gemm_inputs(dtype=np.complex64))
    @settings(max_examples=40, deadline=None)
    def test_cgemm_bitwise(self, ab):
        a, b = ab
        ref = _reference(a, b, ComputeMode.OZAKI_INT8)
        for engine in ("batched", "loop"):
            with fused_mode(engine):
                _assert_bitwise(gemm(a, b, mode=ComputeMode.OZAKI_INT8), ref)

    @given(gemm_inputs())
    @settings(max_examples=25, deadline=None)
    def test_prepared_and_cached_bitwise(self, ab):
        a, b = ab
        ref = _reference(a, b, ComputeMode.OZAKI_INT8)
        _assert_bitwise(
            gemm(prepare(a.copy()), prepare(b.copy()), mode=ComputeMode.OZAKI_INT8),
            ref,
        )
        with plan_cache(True):
            warm1 = gemm(a, b, mode=ComputeMode.OZAKI_INT8)
            warm2 = gemm(a, b, mode=ComputeMode.OZAKI_INT8)
        _assert_bitwise(warm1, ref)
        _assert_bitwise(warm2, ref)


class TestGoldenEmulatedFP64:
    @given(gemm_inputs())
    @settings(max_examples=40, deadline=None)
    def test_sgemm_bitwise(self, ab):
        a, b = ab
        ref = _reference(a, b, ComputeMode.EMULATED_FP64)
        for engine in ("batched", "loop"):
            with fused_mode(engine):
                _assert_bitwise(gemm(a, b, mode=ComputeMode.EMULATED_FP64), ref)

    @given(gemm_inputs(dtype=np.float64))
    @settings(max_examples=40, deadline=None)
    def test_dgemm_bitwise(self, ab):
        a, b = ab
        ref = _reference(a, b, ComputeMode.EMULATED_FP64)
        for engine in ("batched", "loop"):
            with fused_mode(engine):
                _assert_bitwise(gemm(a, b, mode=ComputeMode.EMULATED_FP64), ref)

    @given(gemm_inputs(dtype=np.complex64))
    @settings(max_examples=30, deadline=None)
    def test_cgemm_bitwise(self, ab):
        a, b = ab
        ref = _reference(a, b, ComputeMode.EMULATED_FP64)
        for engine in ("batched", "loop"):
            with fused_mode(engine):
                _assert_bitwise(gemm(a, b, mode=ComputeMode.EMULATED_FP64), ref)

    @given(gemm_inputs(dtype=np.complex128))
    @settings(max_examples=30, deadline=None)
    def test_zgemm_bitwise(self, ab):
        a, b = ab
        ref = _reference(a, b, ComputeMode.EMULATED_FP64)
        for engine in ("batched", "loop"):
            with fused_mode(engine):
                _assert_bitwise(gemm(a, b, mode=ComputeMode.EMULATED_FP64), ref)

    @given(gemm_inputs(dtype=np.float64))
    @settings(max_examples=25, deadline=None)
    def test_prepared_and_cached_bitwise(self, ab):
        a, b = ab
        ref = _reference(a, b, ComputeMode.EMULATED_FP64)
        _assert_bitwise(
            gemm(prepare(a.copy()), prepare(b.copy()), mode=ComputeMode.EMULATED_FP64),
            ref,
        )
        with plan_cache(True):
            warm1 = gemm(a, b, mode=ComputeMode.EMULATED_FP64)
            warm2 = gemm(a, b, mode=ComputeMode.EMULATED_FP64)
        _assert_bitwise(warm1, ref)
        _assert_bitwise(warm2, ref)


class TestOzakiFp64Passthrough:
    """OZAKI_INT8 is single-only: double routines fall back to STANDARD."""

    @given(gemm_inputs(dtype=np.float64))
    @settings(max_examples=20, deadline=None)
    def test_dgemm_is_standard(self, ab):
        a, b = ab
        _assert_bitwise(
            gemm(a, b, mode=ComputeMode.OZAKI_INT8),
            gemm(a, b, mode=ComputeMode.STANDARD),
        )
