"""Property: a clamped scheduler is invisible to the numerics.

``AdaptiveScheduler(clamp=mode)`` must reproduce the corresponding
static-mode run *bitwise* — same final state, same observable columns —
for every compute mode on every lattice.  The scheduler machinery
(mutable policy on the GEMM dispatch path, per-step hooks, latch
resets) is then pure bookkeeping: enabling it cannot perturb a
pinned-precision trajectory by even one ULP.

The mode × lattice grid is a pytest parametrization rather than a
Hypothesis search: each case is a full (tiny) simulation pair, and the
space is small and discrete, so exhaustive beats sampled.
"""

import numpy as np
import pytest

from repro.blas.modes import ComputeMode
from repro.core.scheduler import AdaptiveScheduler
from repro.dcmesh.simulation import Simulation, SimulationConfig

pytestmark = pytest.mark.slow

MODES = (
    ComputeMode.STANDARD,
    ComputeMode.FLOAT_TO_BF16,
    ComputeMode.FLOAT_TO_TF32,
    ComputeMode.FLOAT_TO_BF16X2,
    ComputeMode.COMPLEX_3M,
)

LATTICES = (
    dict(mesh_shape=(6, 6, 6), n_orb=20, n_qd_steps=8, nscf=4),
    dict(mesh_shape=(10, 8, 6), n_orb=24, n_qd_steps=6, nscf=3),
)

OBSERVABLE_COLUMNS = ("nexc", "javg", "ekin", "etot")


def _run(cfg, **kwargs):
    sim = Simulation(cfg)
    sim.setup()
    return sim.run(**kwargs)


@pytest.mark.parametrize("lattice", LATTICES, ids=["cube6", "slab10x8x6"])
@pytest.mark.parametrize("mode", MODES, ids=[m.env_value for m in MODES])
def test_clamped_scheduler_is_bitwise_identical_to_static(mode, lattice):
    cfg = SimulationConfig.small_test(**lattice)
    static = _run(cfg, mode=mode)
    clamped = _run(cfg, adaptive=AdaptiveScheduler(clamp=mode))

    assert clamped.scheduler is not None
    assert clamped.scheduler.clamp is mode
    assert clamped.scheduler.switches == []

    np.testing.assert_array_equal(clamped.final_psi, static.final_psi)
    for col in OBSERVABLE_COLUMNS:
        np.testing.assert_array_equal(
            clamped.column(col), static.column(col), err_msg=col
        )
