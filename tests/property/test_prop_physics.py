"""Property-based tests: physics-layer invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blas.complex3m import gemm_3m, gemm_4m
from repro.dcmesh.laser import LaserPulse
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.wavefunction import OrbitalSet

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestLaserProperties:
    @given(
        st.floats(min_value=1e-3, max_value=1.0),
        st.floats(min_value=1e-3, max_value=1.0),
        st.floats(min_value=0.1, max_value=20.0),
        st.floats(min_value=-100.0, max_value=1000.0),
    )
    def test_amplitude_bounded(self, amp, omega, dur, t):
        p = LaserPulse(amplitude=amp, omega=omega, duration_fs=dur)
        assert abs(p.scalar_amplitude(t)) <= amp * (1 + 1e-12)

    @given(
        st.floats(min_value=1e-3, max_value=1.0),
        st.floats(min_value=0.1, max_value=20.0),
        st.floats(min_value=0.05, max_value=0.95),
    )
    def test_field_is_negative_da_dt(self, amp, dur, frac):
        p = LaserPulse(amplitude=amp, omega=0.3, duration_fs=dur)
        t = frac * p.duration_au
        h = p.duration_au * 1e-7
        numeric = -(p.vector_potential(t + h) - p.vector_potential(t - h)) / (2 * h)
        np.testing.assert_allclose(p.electric_field(t), numeric,
                                   rtol=1e-3, atol=1e-8 * amp)

    @given(st.tuples(*[st.floats(min_value=-5, max_value=5)] * 3))
    def test_polarization_always_unit(self, pol):
        # The zero test is on the components, not np.linalg.norm: for
        # tiny components (|p| ~ 1e-307) the naive norm underflows to 0
        # while the scaled normalization inside LaserPulse handles them.
        if not any(pol):
            with pytest.raises(ValueError):
                LaserPulse(polarization=pol)
        else:
            p = LaserPulse(polarization=pol)
            assert np.linalg.norm(p.polarization) == pytest.approx(1.0)


class TestOrbitalProperties:
    @given(seeds, st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_random_sets_orthonormal(self, seed, n_orb, n_occ):
        mesh = Mesh((6, 6, 6), (4.0, 4.0, 4.0))
        if n_occ > n_orb:
            with pytest.raises(ValueError):
                OrbitalSet.random(mesh, n_orb, n_occ, seed=seed)
            return
        orb = OrbitalSet.random(mesh, n_orb, n_occ, seed=seed)
        np.testing.assert_allclose(orb.overlap(), np.eye(n_orb), atol=1e-10)
        assert orb.n_electrons == 2.0 * n_occ

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_lowdin_idempotent(self, seed):
        mesh = Mesh((6, 6, 6), (4.0, 4.0, 4.0))
        orb = OrbitalSet.random(mesh, 4, 2, seed=seed)
        rng = np.random.default_rng(seed)
        orb.psi = orb.psi + 0.05 * (
            rng.standard_normal(orb.psi.shape)
            + 1j * rng.standard_normal(orb.psi.shape)
        )
        orb.orthonormalize()
        once = orb.psi.copy()
        orb.orthonormalize()
        np.testing.assert_allclose(orb.psi, once, atol=1e-12)


class TestComplex3MProperties:
    @given(seeds, st.integers(min_value=1, max_value=10),
           st.integers(min_value=1, max_value=10),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_3m_close_to_4m(self, seed, m, k, n):
        rng = np.random.default_rng(seed)
        a = (rng.standard_normal((m, k)) + 1j * rng.standard_normal((m, k))).astype(np.complex64)
        b = (rng.standard_normal((k, n)) + 1j * rng.standard_normal((k, n))).astype(np.complex64)
        ref = a.astype(np.complex128) @ b.astype(np.complex128)
        scale = max(np.abs(ref).max(), 1e-6)
        err3 = np.abs(gemm_3m(a, b) - ref).max() / scale
        err4 = np.abs(gemm_4m(a, b) - ref).max() / scale
        # Both within a few k*eps of the FP64 reference.
        assert err3 < k * 1e-5
        assert err4 < k * 1e-5

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_3m_linear_in_scalar(self, seed):
        rng = np.random.default_rng(seed)
        a = (rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))).astype(np.complex128)
        b = (rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))).astype(np.complex128)
        np.testing.assert_allclose(gemm_3m(2.0 * a, b), 2.0 * gemm_3m(a, b),
                                   rtol=1e-12)
