"""Golden property tests: the fused/cached split-GEMM path is BITWISE
identical to the naive reference engine.

The contract under test is the hard one from the plan/workspace layer:
caching contiguous parts and split stacks, batching the component
products, and reusing workspace buffers must not change a single output
bit relative to the original implementation (per-pair matmuls with
fresh temporaries, most-significant-first accumulation).  The reference
here is composed from the *kept* pre-plan kernels:

* real routines — :func:`repro.blas.split.split_gemm_reference`;
* complex low-precision — :func:`repro.blas.complex3m.gemm_4m` with the
  reference real engine plugged underneath;
* ``COMPLEX_3M`` — :func:`repro.blas.complex3m.gemm_3m`.

Inputs are adversarial on purpose: denormals, signed zeros and wildly
mixed magnitudes, where any reassociation or double rounding would
show up immediately in the low-order bits.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blas.complex3m import gemm_3m, gemm_4m
from repro.blas.gemm import gemm
from repro.blas.modes import ComputeMode
from repro.blas.plan import plan_cache, prepare
from repro.blas.split import split_gemm_real, split_gemm_reference
from repro.blas.workspace import fused_mode

pytestmark = pytest.mark.usefixtures("clean_mode_env")

#: The five non-standard configurations of the paper's sweep.
SWEEP_MODES = [
    ComputeMode.FLOAT_TO_BF16,
    ComputeMode.FLOAT_TO_BF16X2,
    ComputeMode.FLOAT_TO_BF16X3,
    ComputeMode.FLOAT_TO_TF32,
    ComputeMode.COMPLEX_3M,
]

dims = st.integers(min_value=1, max_value=10)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _adversarial_real(rng, shape):
    """FP32 matrix mixing normals, denormals, signed zeros and huge
    magnitude spreads — the inputs most sensitive to reassociation."""
    x = rng.standard_normal(shape).astype(np.float32)
    # Mixed magnitudes: per-element decades from 2^-40 to 2^+40.
    x *= np.exp2(rng.integers(-40, 41, size=shape)).astype(np.float32)
    flat = x.ravel()
    n = flat.size
    # Denormals (FP32 denormal range is below 2^-126).
    idx = rng.integers(0, n, size=max(1, n // 8))
    flat[idx] = (rng.standard_normal(idx.size) * 1e-42).astype(np.float32)
    # Signed zeros.
    idx = rng.integers(0, n, size=max(1, n // 8))
    flat[idx] = np.float32(-0.0)
    idx = rng.integers(0, n, size=max(1, n // 8))
    flat[idx] = np.float32(0.0)
    # Mantissa-all-ones values: adversarial for the RNE rounding step.
    idx = rng.integers(0, n, size=max(1, n // 8))
    flat[idx] = np.nextafter(
        np.float32(2.0), np.float32(0.0)
    ) * np.exp2(rng.integers(-20, 21, size=idx.size)).astype(np.float32)
    return x


def _adversarial_complex(rng, shape):
    return _adversarial_real(rng, shape) + 1j * _adversarial_real(rng, shape)


@st.composite
def adversarial_inputs(draw, complex_=False):
    m, k, n = draw(dims), draw(dims), draw(dims)
    rng = np.random.default_rng(draw(seeds))
    if complex_:
        a = _adversarial_complex(rng, (m, k)).astype(np.complex64)
        b = _adversarial_complex(rng, (k, n)).astype(np.complex64)
    else:
        a = _adversarial_real(rng, (m, k))
        b = _adversarial_real(rng, (k, n))
    return a, b


def _reference(a, b, mode):
    """The pre-plan cold path, composed from the kept naive kernels."""
    if mode.is_low_precision:
        prec, n_terms = mode.component_precision, mode.n_terms
        if np.iscomplexobj(a):
            return gemm_4m(
                a, b, real_gemm=lambda x, y: split_gemm_reference(x, y, prec, n_terms)
            )
        return split_gemm_reference(a, b, prec, n_terms)
    if mode is ComputeMode.COMPLEX_3M and np.iscomplexobj(a):
        return gemm_3m(a, b)
    return np.matmul(a, b)


def _assert_bitwise(out, ref):
    assert out.dtype == ref.dtype and out.shape == ref.shape
    view = np.uint64 if out.dtype == np.complex64 else np.uint32
    np.testing.assert_array_equal(out.view(view), ref.view(view))


class TestGoldenSgemm:
    @given(adversarial_inputs(), st.sampled_from(SWEEP_MODES))
    @settings(max_examples=80, deadline=None)
    def test_routed_path_bitwise(self, ab, mode):
        a, b = ab
        ref = _reference(a, b, mode)
        for engine in ("batched", "loop"):
            with fused_mode(engine):
                _assert_bitwise(gemm(a, b, mode=mode), ref)

    @given(adversarial_inputs(), st.sampled_from(SWEEP_MODES))
    @settings(max_examples=40, deadline=None)
    def test_prepared_operands_bitwise(self, ab, mode):
        a, b = ab
        ref = _reference(a, b, mode)
        _assert_bitwise(gemm(prepare(a.copy()), prepare(b.copy()), mode=mode), ref)

    @given(adversarial_inputs())
    @settings(max_examples=40, deadline=None)
    def test_split_engine_direct(self, ab):
        from repro.types import Precision

        a, b = ab
        for prec, n_terms in [
            (Precision.BF16, 1),
            (Precision.BF16, 2),
            (Precision.BF16, 3),
            (Precision.TF32, 1),
        ]:
            ref = split_gemm_reference(a, b, prec, n_terms)
            for engine in ("batched", "loop"):
                with fused_mode(engine):
                    _assert_bitwise(split_gemm_real(a, b, prec, n_terms), ref)


class TestGoldenCgemm:
    @given(adversarial_inputs(complex_=True), st.sampled_from(SWEEP_MODES))
    @settings(max_examples=80, deadline=None)
    def test_routed_path_bitwise(self, ab, mode):
        a, b = ab
        ref = _reference(a, b, mode)
        for engine in ("batched", "loop"):
            with fused_mode(engine):
                _assert_bitwise(gemm(a, b, mode=mode), ref)

    @given(adversarial_inputs(complex_=True), st.sampled_from(SWEEP_MODES))
    @settings(max_examples=40, deadline=None)
    def test_prepared_operands_bitwise(self, ab, mode):
        a, b = ab
        ref = _reference(a, b, mode)
        _assert_bitwise(gemm(prepare(a.copy()), prepare(b.copy()), mode=mode), ref)

    @given(adversarial_inputs(complex_=True), st.sampled_from(SWEEP_MODES))
    @settings(max_examples=30, deadline=None)
    def test_anonymous_cache_does_not_change_bits(self, ab, mode):
        a, b = ab
        with plan_cache(False):
            cold = gemm(a, b, mode=mode)
        with plan_cache(True):
            warm1 = gemm(a, b, mode=mode)
            warm2 = gemm(a, b, mode=mode)  # second call may hit the LRU
        _assert_bitwise(warm1, cold)
        _assert_bitwise(warm2, cold)


class TestCacheInvalidation:
    """Mutating a frozen operand must refresh the plan — stale split
    terms would silently poison every GEMM of the next SCF block."""

    def _make_nlp(self, seed=0):
        from repro.dcmesh.mesh import Mesh
        from repro.dcmesh.nlp import NonlocalPropagator
        from repro.dcmesh.wavefunction import OrbitalSet

        mesh = Mesh((8, 8, 8), (5.0, 5.0, 5.0))
        orb = OrbitalSet.random(mesh, 5, 2, seed=seed)
        rng = np.random.default_rng(seed + 100)
        h = rng.standard_normal((5, 5)) + 1j * rng.standard_normal((5, 5))
        h = 0.5 * (h + h.conj().T) * 0.2
        psi0 = orb.psi.astype(np.complex64)
        return mesh, psi0, h, NonlocalPropagator(psi0, h, dt=0.05, mesh=mesh)

    @pytest.mark.parametrize("mode", ["FLOAT_TO_BF16X3", "COMPLEX_3M"])
    def test_mutated_psi0_refreshes_plan(self, mode):
        from repro.blas.modes import compute_mode
        from repro.dcmesh.nlp import NonlocalPropagator

        mesh, psi0, h, nlp = self._make_nlp()
        rng = np.random.default_rng(7)
        psi = (
            rng.standard_normal(psi0.shape) + 1j * rng.standard_normal(psi0.shape)
        ).astype(np.complex64)
        with compute_mode(mode):
            nlp.apply(psi)  # warm the plan caches
            # SCF refresh mutates the reference orbitals in place.
            psi0 *= np.complex64(0.75)
            psi0[0, 0] += np.complex64(0.5 + 0.25j)
            assert nlp.refresh_plans() is True
            after = nlp.apply(psi)
            # A propagator built fresh on the mutated psi0 (no cached
            # state anywhere) is the ground truth.
            from repro.blas.plan import release

            release(psi0)
            fresh = NonlocalPropagator(psi0, h, dt=0.05, mesh=mesh).apply(psi)
        np.testing.assert_array_equal(
            after.view(np.uint64), fresh.view(np.uint64)
        )

    def test_refresh_is_noop_when_unchanged(self):
        _, _, _, nlp = self._make_nlp(seed=3)
        rng = np.random.default_rng(11)
        psi = (
            rng.standard_normal(nlp.psi0.shape)
            + 1j * rng.standard_normal(nlp.psi0.shape)
        ).astype(np.complex64)
        nlp.apply(psi)
        assert nlp.refresh_plans() is False

    def test_explicit_invalidate_matches_fresh(self):
        from repro.blas.modes import compute_mode

        _, psi0, _, nlp = self._make_nlp(seed=5)
        rng = np.random.default_rng(13)
        psi = (
            rng.standard_normal(psi0.shape) + 1j * rng.standard_normal(psi0.shape)
        ).astype(np.complex64)
        with compute_mode("FLOAT_TO_TF32"):
            before = nlp.apply(psi)
            nlp.invalidate_plans()
            after = nlp.apply(psi)  # rebuilt derived forms, same bytes in
        np.testing.assert_array_equal(
            before.view(np.uint64), after.view(np.uint64)
        )
