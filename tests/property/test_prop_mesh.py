"""Property-based tests: mesh invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dcmesh.mesh import Mesh

shapes = st.tuples(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=2, max_value=10),
)
boxes = st.tuples(
    st.floats(min_value=1.0, max_value=20.0),
    st.floats(min_value=1.0, max_value=20.0),
    st.floats(min_value=1.0, max_value=20.0),
)


class TestMeshProperties:
    @given(shapes, boxes)
    @settings(max_examples=30, deadline=None)
    def test_geometry_consistency(self, shape, box):
        m = Mesh(shape, box)
        assert m.n_grid == shape[0] * shape[1] * shape[2]
        assert m.dv * m.n_grid == pytest.approx(m.volume, rel=1e-12)
        assert m.coords.shape == (m.n_grid, 3)
        assert m.kvecs.shape == (m.n_grid, 3)

    @given(shapes, boxes, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_fft_roundtrip(self, shape, box, seed):
        m = Mesh(shape, box)
        rng = np.random.default_rng(seed)
        psi = (rng.standard_normal((m.n_grid, 2))
               + 1j * rng.standard_normal((m.n_grid, 2)))
        np.testing.assert_allclose(m.ifft(m.fft(psi)), psi, atol=1e-10)

    @given(shapes, boxes, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_parseval(self, shape, box, seed):
        m = Mesh(shape, box)
        rng = np.random.default_rng(seed)
        psi = (rng.standard_normal(m.n_grid) + 1j * rng.standard_normal(m.n_grid))
        real_norm = np.sum(np.abs(psi) ** 2)
        g_norm = np.sum(np.abs(m.fft(psi[:, None])) ** 2) / m.n_grid
        assert g_norm == pytest.approx(real_norm, rel=1e-10)

    @given(shapes, boxes, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_minimum_image_bounded(self, shape, box, seed):
        m = Mesh(shape, box)
        rng = np.random.default_rng(seed)
        delta = rng.uniform(-100, 100, (50, 3))
        wrapped = m.minimum_image(delta)
        half = 0.5 * np.asarray(box)
        assert np.all(np.abs(wrapped) <= half + 1e-9)

    @given(shapes, boxes)
    @settings(max_examples=30, deadline=None)
    def test_k2_nonnegative_and_deriv_subset(self, shape, box):
        m = Mesh(shape, box)
        assert np.all(m.k2 >= 0)
        # Derivative k-grid only ever zeroes components, never adds.
        assert np.all(np.abs(m.kvecs_deriv) <= np.abs(m.kvecs) + 1e-12)
