"""Integration: the drift observatory end to end (ISSUE 6 acceptance).

On the paper's small lattice, a BF16 run monitored against the FP32
trajectory must fire a budget-breach alert, while the FP32 run on the
same trajectory — bitwise-identical by the paper's methodology — must
fire none.  The alerts, gauges and per-site provenance must all land
in the telemetry trace and render into the run report.
"""

import numpy as np
import pytest

from repro.dcmesh.simulation import Simulation, SimulationConfig
from repro.telemetry import registry
from repro.telemetry.drift import (
    DriftMonitor,
    ErrorBudget,
    ReferenceTrajectory,
    install_drift_monitor,
    set_drift_enabled,
)
from repro.telemetry.report import generate_run_report

pytestmark = pytest.mark.telemetry

N_STEPS = 10


@pytest.fixture(scope="module")
def sim():
    simulation = Simulation(SimulationConfig.small_test())
    simulation.setup()
    return simulation


@pytest.fixture(scope="module")
def reference(sim):
    result = sim.run(mode="STANDARD", n_steps=N_STEPS, drift=False)
    return result, ReferenceTrajectory.from_result(result)


@pytest.fixture(autouse=True)
def _clean():
    prev = registry.disable()
    prev_dm = install_drift_monitor(None)
    set_drift_enabled(None)
    yield
    registry.disable()
    install_drift_monitor(prev_dm)
    set_drift_enabled(None)
    if prev is not None:
        registry.enable(prev)


def _tight_budget():
    # Far below any nonzero relative deviation a BF16 GEMM produces,
    # yet exactly satisfiable by a bitwise-identical trajectory.
    return ErrorBudget(per_step=1e-14)


class TestAcceptance:
    def test_bf16_breaches_fp32_does_not(self, sim, reference):
        _, ref = reference

        bf16 = DriftMonitor(
            mode="FLOAT_TO_BF16", reference=ref, budget=_tight_budget()
        )
        t_bf16 = registry.enable()
        sim.run(mode="FLOAT_TO_BF16", n_steps=N_STEPS, drift=bf16)
        registry.disable()

        fp32 = DriftMonitor(mode="STANDARD", reference=ref, budget=_tight_budget())
        t_fp32 = registry.enable()
        sim.run(mode="STANDARD", n_steps=N_STEPS, drift=fp32)
        registry.disable()

        # The BF16 run breached the (deliberately tight) budget...
        assert bf16.breaches(), bf16.summary()
        assert t_bf16.counter_total("drift.alerts") >= 1
        assert any(e["name"] == "drift.alert" for e in t_bf16.events)

        # ...the FP32 re-run of the same trajectory deviates by exactly
        # zero, so nothing fires even at per_step=1e-14.
        assert fp32.alerts == [], fp32.summary()
        assert t_fp32.counter_total("drift.alerts") == 0
        assert not any(e["name"] == "drift.alert" for e in t_fp32.events)
        for obs in ("nexc", "javg", "ekin"):
            assert fp32.deviation_series(obs).max_deviation == 0.0

    def test_bf16_deviations_are_physical_not_wild(self, sim, reference):
        ref_result, ref = reference
        dm = DriftMonitor(mode="FLOAT_TO_BF16", reference=ref, budget=_tight_budget())
        sim.run(mode="FLOAT_TO_BF16", n_steps=N_STEPS, drift=dm)
        # Nonzero drift, but small relative to the observables — the
        # paper's "order of 1%" regime, not a blow-up.
        series = dm.deviation_series("ekin")
        assert 0.0 < series.max_deviation
        assert float(np.max(series.relative())) < 0.05


class TestPipeline:
    def test_samples_and_gauges_flow_into_trace(self, sim, reference):
        _, ref = reference
        dm = DriftMonitor(mode="FLOAT_TO_BF16", reference=ref, budget=_tight_budget())
        t = registry.enable()
        sim.run(mode="FLOAT_TO_BF16", n_steps=N_STEPS, drift=dm)
        registry.disable()
        # One sample event per observable per record (N_STEPS + step 0).
        assert t.counter_value("drift.samples", observable="nexc") == N_STEPS + 1
        assert t.gauge_value("drift.budget_utilization", observable="nexc") is not None
        assert t.gauge_value("drift.max_utilization", observable="nexc") is not None
        assert any(e["name"] == "drift.summary" for e in t.events)

    def test_run_report_shows_breach_and_hot_sites(self, sim, reference):
        _, ref = reference
        dm = DriftMonitor(mode="FLOAT_TO_BF16", reference=ref, budget=_tight_budget())
        t = registry.enable()
        sim.run(mode="FLOAT_TO_BF16", n_steps=N_STEPS, drift=dm)
        registry.disable()
        report = generate_run_report(t)
        assert "breach" in report
        # Provenance made it through: the three application anchors
        # appear as distinct call-site IDs.
        for anchor in ("nlp_prop", "calc_energy", "remap_occ"):
            assert f"{anchor}@gemm/" in report

    def test_ambient_monitor_auto_created(self, sim):
        set_drift_enabled(True)
        t = registry.enable()
        result = sim.run(mode="FLOAT_TO_BF16", n_steps=4)
        registry.disable()
        set_drift_enabled(None)
        assert len(result.records) == 5
        # No reference: samples flow, alerts cannot.
        assert t.counter_value("drift.samples", observable="nexc") == 5
        assert t.counter_total("drift.alerts") == 0

    def test_explicit_false_disables_ambient(self, sim):
        set_drift_enabled(True)
        t = registry.enable()
        sim.run(mode="STANDARD", n_steps=2, drift=False)
        registry.disable()
        set_drift_enabled(None)
        assert t.counter_total("drift.samples") == 0

    def test_auto_budget_derived_from_h_nl(self, sim, reference):
        _, ref = reference
        dm = DriftMonitor(mode="FLOAT_TO_BF16", reference=ref)  # no budget
        sim.run(mode="FLOAT_TO_BF16", n_steps=2, drift=dm)
        assert dm.budget is not None
        assert dm.budget.per_step > 0
