"""Integration: the paper-claims traceability matrix."""


from repro.experiments.claims import CLAIMS, Claim, evaluate_claims, run


class TestClaimsMatrix:
    def test_every_claim_passes(self):
        rows = evaluate_claims()
        failing = [r[0] for r in rows if r[1] != "PASS"]
        assert not failing, f"claims failing their live checks: {failing}"

    def test_matrix_covers_core_results(self):
        ids = {c.claim_id for c in CLAIMS}
        for expected in ("speedup-391", "fig3a-fp32", "accuracy-ladder",
                         "nine-calls", "env-var-control", "qxmd-fp64-immune"):
            assert expected in ids

    def test_every_claim_names_module_and_test(self):
        for c in CLAIMS:
            assert c.module and c.test and c.quote and c.source, c.claim_id

    def test_crashing_checker_reports_fail(self):
        def boom():
            raise RuntimeError("broken checker")

        rows = evaluate_claims([
            Claim("x", "q", "s", "m", "t", boom),
        ])
        assert rows == [("x", "FAIL", "s", "t")]

    def test_run_adapter(self, tmp_path):
        out = run(output_dir=str(tmp_path))
        assert "traceability matrix" in out["text"]
        assert (tmp_path / "claims.csv").exists()
        assert all(r[1] == "PASS" for r in out["rows"])
