"""Integration: physical response scalings of the simulated system.

The LFD subspace method carries a small field-free baseline drift
(occupied orbitals slowly rotate into the finite virtual manifold —
inherent to propagating with the nonlocal term projected onto a small
Kohn–Sham subspace), so laser response is measured as the *excess*
over the field-free run.
"""

import numpy as np
import pytest

from repro.dcmesh.laser import LaserPulse
from repro.dcmesh.simulation import Simulation, SimulationConfig


def _run(amplitude: float, n_steps: int = 100, sign: float = 1.0):
    cfg = SimulationConfig.small_test(
        mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=n_steps, nscf=n_steps,
        move_ions=False,
        laser=LaserPulse(amplitude=amplitude, omega=0.3, duration_fs=0.08,
                         polarization=(0, 0, sign)),
    )
    return Simulation(cfg).run(mode="STANDARD")


@pytest.fixture(scope="module")
def baseline():
    return _run(0.0)


class TestLaserResponse:
    def test_excess_grows_with_amplitude(self, baseline):
        b = baseline.records[-1].nexc
        excess = [
            _run(a).records[-1].nexc - b for a in (0.05, 0.1, 0.25)
        ]
        assert 0 < excess[0] < excess[1] < excess[2]

    def test_perturbative_quadratic_scaling(self, baseline):
        # Linear-response regime: excited population ~ |A|^2.
        b = baseline.records[-1].nexc
        e1 = _run(0.01).records[-1].nexc - b
        e2 = _run(0.02).records[-1].nexc - b
        assert e2 / e1 == pytest.approx(4.0, rel=0.35)

    def test_strong_field_dominates_baseline(self, baseline):
        b = baseline.records[-1].nexc
        strong = _run(0.25).records[-1].nexc
        assert strong - b > 0.5 * b

    def test_current_response_even_in_field(self, baseline):
        # The perovskite cell is inversion-symmetric: the leading
        # current response to the vector-potential kick is even in A
        # (the odd/linear part vanishes), so flipping the polarisation
        # leaves javg essentially unchanged beyond the tiny baseline.
        plus = _run(0.2, n_steps=60, sign=+1.0).column("javg")
        minus = _run(0.2, n_steps=60, sign=-1.0).column("javg")
        j0 = np.abs(baseline.column("javg")[:61]).max()
        even = 0.5 * np.abs(plus + minus).max()
        odd = 0.5 * np.abs(plus - minus).max()
        assert even > 10 * odd or even > 10 * j0

    def test_energy_absorbed_is_positive(self):
        res = _run(0.3)
        assert res.records[-1].eexc > 0

    def test_aext_column_tracks_pulse(self):
        res = _run(0.2, n_steps=40)
        aext = res.column("aext")
        assert np.abs(aext).max() > 0.05  # the pulse peaks inside the window
        assert abs(aext[0]) < 1e-12       # and starts at zero
