"""Integration: every experiment driver regenerates its paper artifact."""

import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "figure1", "figure2", "figure3a", "figure3b",
            "pareto", "report", "claims",
        }

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="valid ids"):
            get_experiment("table99")


class TestStaticTables:
    def test_table1_matches_paper(self):
        out = run_experiment("table1")
        assert out["rows"] == out["paper_rows"]

    def test_table2_speedups(self):
        out = run_experiment("table2")
        ours = {r[0]: r[2] for r in out["rows"]}
        for name, expected in out["paper_rows"]:
            assert ours[name] == pytest.approx(expected, rel=0.02), name

    def test_table3_matches_config(self):
        out = run_experiment("table3")
        assert out["rows"] == out["derived_from_config"] == out["paper_rows"]

    def test_table4_matches_paper(self):
        out = run_experiment("table4")
        assert out["rows"] == out["paper_rows"]

    def test_table5_capacity_boundary(self):
        out = run_experiment("table5")
        fits = {row[0]: row[4] for row in out["rows"]}
        assert fits[40] and fits[135]       # the paper's systems fit
        assert not fits[320]                 # the next size does not

    def test_table6_anchor_and_bounds(self):
        out = run_experiment("table6")
        rows = {r[0]: (r[1], r[2]) for r in out["rows"]}
        obs, theo = rows["FLOAT_TO_BF16"]
        paper_obs, paper_theo = out["paper_anchors"]["FLOAT_TO_BF16"]
        assert obs == pytest.approx(paper_obs, rel=0.1)
        assert theo == pytest.approx(paper_theo, rel=0.02)
        assert all(o < t for o, t in rows.values())

    def test_table7_matches_paper_shapes(self):
        out = run_experiment("table7")
        # All fields match except the paper's own 3978-vs-3968 quirk in
        # the last row's n.
        for ours, paper in zip(out["rows"], out["paper_rows"]):
            assert ours[:3] == paper[:3]
            assert abs(ours[3] - paper[3]) <= 10
            assert ours[4] == paper[4]


class TestPerformanceFigures:
    def test_figure3a_anchors(self):
        out = run_experiment("figure3a")
        rows = {(r[0], r[1]): r[2] for r in out["rows"]}
        assert rows[("135-atom", "FP32")] == pytest.approx(1472, rel=0.15)
        assert rows[("135-atom", "FP64")] == pytest.approx(2800, rel=0.15)
        assert rows[("135-atom", "BF16")] == pytest.approx(972, rel=0.25)

    def test_figure3b_monotone_rows(self):
        out = run_experiment("figure3b")
        rows = out["rows"]
        # Speedups grow down each mode column (with N_orb).
        for col in range(1, len(rows[0])):
            series = [r[col] for r in rows]
            assert series == sorted(series), f"column {col}"

    def test_csv_outputs_written(self, tmp_path):
        run_experiment("table6", output_dir=str(tmp_path))
        run_experiment("figure3b", output_dir=str(tmp_path))
        assert (tmp_path / "table6.csv").exists()
        assert (tmp_path / "figure3b.csv").exists()


@pytest.mark.slow
class TestAccuracyFigures:
    @pytest.fixture(scope="class")
    def fig1(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("fig1")
        return run_experiment("figure1", output_dir=str(out_dir)), out_dir

    def test_figure1_rows_cover_grid(self, fig1):
        out, _ = fig1
        assert len(out["rows"]) == 3 * 5  # observables x modes

    def test_figure1_bf16_dominates(self, fig1):
        out, _ = fig1
        ekin = {r[1]: r[2] for r in out["rows"] if r[0] == "ekin"}
        assert ekin["FLOAT_TO_BF16"] == max(ekin.values())

    def test_figure1_csvs(self, fig1):
        _, out_dir = fig1
        for name in ("figure1_summary.csv", "figure1_ekin.csv",
                     "figure1_nexc.csv", "figure1_javg.csv"):
            assert (out_dir / name).exists(), name

    def test_figure2_no_divergence(self, tmp_path):
        out = run_experiment("figure2", output_dir=str(tmp_path))
        # "BF16, TF32, and BF16X3 ... do not show any signs of
        # divergence": the late-vs-early log-deviation trend is small.
        for mode, mean_log, final_log, trend in out["rows"]:
            assert trend < 3.0, mode
        assert (tmp_path / "figure2_javg_log10.csv").exists()


@pytest.mark.slow
class TestReport:
    def test_report_generation(self, tmp_path):
        out = run_experiment("report", output_dir=str(tmp_path))
        report = tmp_path / "REPORT.md"
        assert report.exists()
        text = report.read_text()
        assert "all anchors within band" in text
        assert "## table6" in text and "## figure1" in text
        # CSVs written alongside.
        assert (tmp_path / "table6.csv").exists()
        assert (tmp_path / "figure3a.csv").exists()


class TestRunnerCli:
    def test_list_command(self, capsys):
        from repro.experiments.runner import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table6" in out and "figure3a" in out

    def test_single_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["table4"]) == 0
        assert "Mantissa" in capsys.readouterr().out

    def test_unknown_experiment_exit_code(self, capsys):
        from repro.experiments.runner import main

        assert main(["tableX"]) == 2
        assert "valid ids" in capsys.readouterr().err

    def test_output_dir(self, tmp_path, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").exists()
