"""Integration: closed-loop adaptive precision scheduling end to end.

A live adaptive run on the small lattice, monitored against the FP32
reference, must escalate out of BF16 (the start rung), leave the drift
inside the fixed budget, record its switches in telemetry, and render
an "Adaptive precision schedule" section into the run report.
"""

import numpy as np
import pytest

from repro.core.scheduler import AdaptiveScheduler, set_adaptive_enabled
from repro.dcmesh.simulation import Simulation, SimulationConfig
from repro.telemetry import registry
from repro.telemetry.drift import (
    DriftMonitor,
    ReferenceTrajectory,
    install_drift_monitor,
    set_drift_enabled,
)
from repro.telemetry.report import generate_run_report

pytestmark = pytest.mark.telemetry

N_STEPS = 30
NSCF = 10


@pytest.fixture(scope="module")
def sim():
    simulation = Simulation(
        SimulationConfig.small_test(n_qd_steps=N_STEPS, nscf=NSCF)
    )
    simulation.setup()
    return simulation


@pytest.fixture(scope="module")
def reference(sim):
    result = sim.run(mode="STANDARD", drift=False)
    return result, ReferenceTrajectory.from_result(result)


@pytest.fixture(autouse=True)
def _clean():
    prev = registry.disable()
    prev_dm = install_drift_monitor(None)
    set_drift_enabled(None)
    set_adaptive_enabled(None)
    yield
    registry.disable()
    install_drift_monitor(prev_dm)
    set_drift_enabled(None)
    set_adaptive_enabled(None)
    if prev is not None:
        registry.enable(prev)


class TestClosedLoop:
    def test_adaptive_run_escalates_and_holds_budget(self, sim, reference):
        ref_result, ref = reference
        sched = AdaptiveScheduler()
        dm = DriftMonitor(reference=ref)

        t = registry.enable()
        result = sim.run(adaptive=sched, drift=dm)
        registry.disable()

        assert result.scheduler is sched
        summary = sched.summary()

        # The loop reacted: at least one site left the BF16 start rung.
        assert summary["escalations"] >= 1
        assert any(
            mode != sched.ladder[0].env_value
            for mode in summary["final_modes"].values()
        )
        # Every breach was answered with headroom to escalate into.
        assert summary["unhandled_breaches"] == 0

        # Closed-loop accuracy: strictly better than an uncontrolled
        # static run at the start rung.
        static_bf16 = sim.run(mode="FLOAT_TO_BF16", drift=False)
        ref_nexc = ref_result.column("nexc")[-1]
        adaptive_err = abs(result.column("nexc")[-1] - ref_nexc)
        static_err = abs(static_bf16.column("nexc")[-1] - ref_nexc)
        assert adaptive_err < static_err

        # Decisions surfaced in telemetry...
        switch_events = [e for e in t.events if e.get("name") == "sched.switch"]
        assert len(switch_events) == len(summary["switches"])
        assert t.gauge_value("sched.site_rung", site="nlp_prop") is not None
        # ...and in the run report.
        report = generate_run_report(t)
        assert "## Adaptive precision schedule" in report
        assert "Final ladder rungs" in report

    def test_scf_boundaries_rearm_alert_latches(self, sim, reference):
        _, ref = reference
        dm = DriftMonitor(reference=ref)
        sim.run(adaptive=AdaptiveScheduler(), drift=dm)
        # One reset per completed SCF block.
        assert dm.latch_resets == N_STEPS // NSCF

    def test_ambient_enablement_attaches_a_scheduler(self, sim):
        set_adaptive_enabled(True)
        result = sim.run()
        assert result.scheduler is not None
        assert result.scheduler.clamp is None

    def test_explicit_mode_with_unclamped_scheduler_rejected(self, sim):
        with pytest.raises(ValueError, match="adaptive"):
            sim.run(mode="FLOAT_TO_BF16", adaptive=AdaptiveScheduler())

    def test_adaptive_false_never_schedules(self, sim):
        set_adaptive_enabled(True)
        result = sim.run(adaptive=False)
        assert result.scheduler is None
