"""Integration: the full Fig. 1/2 accuracy methodology on a small system."""

import numpy as np
import pytest

from repro.blas.modes import ComputeMode
from repro.core.study import PrecisionStudy, STUDY_MODES
from repro.dcmesh.simulation import SimulationConfig


@pytest.fixture(scope="module")
def study_result():
    cfg = SimulationConfig.small_test(
        mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=60, nscf=30
    )
    return PrecisionStudy(cfg).run()


class TestStudyStructure:
    def test_all_modes_ran(self, study_result):
        assert set(study_result.results) == {ComputeMode.STANDARD, *STUDY_MODES}

    def test_all_observables_covered(self, study_result):
        assert set(study_result.deviations) == {"nexc", "javg", "ekin"}

    def test_identical_time_grids(self, study_result):
        ref = study_result.results[ComputeMode.STANDARD].column("time_fs")
        for res in study_result.results.values():
            np.testing.assert_array_equal(res.column("time_fs"), ref)

    def test_series_lookup(self, study_result):
        s = study_result.series("ekin", ComputeMode.FLOAT_TO_BF16)
        assert s.observable == "ekin"
        with pytest.raises(KeyError):
            study_result.series("ekin", ComputeMode.STANDARD)

    def test_max_deviation_table_complete(self, study_result):
        rows = study_result.max_deviation_table()
        assert len(rows) == 3 * len(STUDY_MODES)


class TestPaperFindings:
    """The qualitative claims of Section V, on our scaled system."""

    def test_bf16_family_deviates_most(self, study_result):
        for obs in ("ekin", "nexc"):
            d = {
                m: study_result.series(obs, m).max_deviation for m in STUDY_MODES
            }
            assert d[ComputeMode.FLOAT_TO_BF16] == max(d.values()), obs

    def test_bf16_trade_off_ladder(self, study_result):
        # "These three variants allow a trade-off between accuracy and
        # performance ... BF16x3 being the most accurate."
        d = {
            m: study_result.series("ekin", m).max_deviation
            for m in (
                ComputeMode.FLOAT_TO_BF16,
                ComputeMode.FLOAT_TO_BF16X2,
                ComputeMode.FLOAT_TO_BF16X3,
            )
        }
        assert (
            d[ComputeMode.FLOAT_TO_BF16]
            > d[ComputeMode.FLOAT_TO_BF16X2]
            > d[ComputeMode.FLOAT_TO_BF16X3]
        )

    def test_tf32_between_bf16_and_bf16x2(self, study_result):
        # Table IV logic: TF32 has more mantissa bits than BF16.
        d_bf16 = study_result.series("ekin", ComputeMode.FLOAT_TO_BF16).max_deviation
        d_tf32 = study_result.series("ekin", ComputeMode.FLOAT_TO_TF32).max_deviation
        assert d_tf32 < d_bf16

    def test_complex3m_near_fp32_noise(self, study_result):
        d_3m = study_result.series("ekin", ComputeMode.COMPLEX_3M).max_deviation
        d_bf16 = study_result.series("ekin", ComputeMode.FLOAT_TO_BF16).max_deviation
        assert d_3m < d_bf16 / 50

    def test_javg_deviation_orders_below_ekin(self, study_result):
        # Fig. 1: current-density deviations are "negligible" compared
        # to the energy deviations.
        d_j = study_result.series("javg", ComputeMode.FLOAT_TO_BF16).max_deviation
        d_e = study_result.series("ekin", ComputeMode.FLOAT_TO_BF16).max_deviation
        assert d_j < d_e / 100

    def test_deviation_grows_over_simulation(self, study_result):
        # "The deviation increases over the course of the simulation."
        s = study_result.series("ekin", ComputeMode.FLOAT_TO_BF16)
        n = len(s.deviation)
        early = np.mean(s.deviation[1 : n // 3])
        late = np.mean(s.deviation[-n // 3 :])
        assert late > early

    def test_relative_deviation_at_most_percent_level(self, study_result):
        # Section V-A: "deviations relative to the absolute values ...
        # are roughly ... in the order of 1%".
        rel = study_result.series("ekin", ComputeMode.FLOAT_TO_BF16).relative()
        assert np.nanmax(rel) < 0.05


class TestErrorBudget:
    """Section V-B's bounds must explain the measured Fig. 1 drift."""

    def test_measured_drift_tracks_predicted_ordering(self, study_result):
        from repro.core.error_budget import budget_table

        devs = {
            m: study_result.series("ekin", m)
            for m in (
                ComputeMode.FLOAT_TO_BF16,
                ComputeMode.FLOAT_TO_TF32,
                ComputeMode.FLOAT_TO_BF16X2,
            )
        }
        rows = budget_table(devs, dt=study_result.config.dt, h_nl_norm=1.0)
        by_mode = {r[0]: r for r in rows}
        # Predicted per-step errors and measured final deviations must
        # order identically.
        predicted = [by_mode[m][1] for m in
                     ("FLOAT_TO_BF16", "FLOAT_TO_TF32", "FLOAT_TO_BF16X2")]
        measured = [by_mode[m][2] for m in
                    ("FLOAT_TO_BF16", "FLOAT_TO_TF32", "FLOAT_TO_BF16X2")]
        assert predicted == sorted(predicted, reverse=True)
        assert measured == sorted(measured, reverse=True)

    def test_amplification_mode_consistent(self, study_result):
        # If the per-call bound is the driver, the dynamics amplify each
        # mode's injection by a comparable factor (within ~100x across
        # an 8-bit-to-11-bit spread of modes).
        from repro.core.error_budget import budget_table

        devs = {
            m: study_result.series("ekin", m)
            for m in (ComputeMode.FLOAT_TO_BF16, ComputeMode.FLOAT_TO_TF32)
        }
        rows = budget_table(devs, dt=study_result.config.dt, h_nl_norm=1.0)
        amps = [r[4] for r in rows]
        assert max(amps) / min(amps) < 100

    def test_drift_exponent_physical(self, study_result):
        from repro.core.error_budget import fit_drift

        s = study_result.series("ekin", ComputeMode.FLOAT_TO_BF16)
        fit = fit_drift(s.deviation)
        # Between bounded oscillation (0) and coherent linear drift (1),
        # with sane headroom.
        assert -0.5 < fit.exponent < 2.0


class TestDeterminism:
    def test_rerun_is_bitwise_identical(self):
        cfg = SimulationConfig.small_test(
            mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=20, nscf=10
        )
        from repro.dcmesh.simulation import Simulation

        sim = Simulation(cfg)
        sim.setup()
        a = sim.run(mode=ComputeMode.FLOAT_TO_TF32)
        b = sim.run(mode=ComputeMode.FLOAT_TO_TF32)
        for col in ("ekin", "nexc", "javg", "etot"):
            np.testing.assert_array_equal(a.column(col), b.column(col))

    def test_parallel_study_equals_serial(self):
        from repro.core.study import PrecisionStudy

        cfg = SimulationConfig.small_test(
            mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=10, nscf=10
        )
        serial = PrecisionStudy(cfg, modes=(ComputeMode.FLOAT_TO_BF16,)).run()
        par = PrecisionStudy(cfg, modes=(ComputeMode.FLOAT_TO_BF16,)).run(
            parallel=True, max_workers=2
        )
        for mode in serial.results:
            for col in ("ekin", "nexc", "javg"):
                np.testing.assert_array_equal(
                    serial.results[mode].column(col),
                    par.results[mode].column(col),
                )

    def test_env_var_run_equals_api_run(self, monkeypatch):
        from repro.dcmesh.simulation import Simulation

        cfg = SimulationConfig.small_test(
            mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=10, nscf=10
        )
        sim = Simulation(cfg)
        sim.setup()
        via_api = sim.run(mode=ComputeMode.FLOAT_TO_BF16)
        monkeypatch.setenv("MKL_BLAS_COMPUTE_MODE", "FLOAT_TO_BF16")
        via_env = sim.run()
        monkeypatch.delenv("MKL_BLAS_COMPUTE_MODE")
        np.testing.assert_array_equal(via_api.column("nexc"), via_env.column("nexc"))
        assert via_env.mode is ComputeMode.FLOAT_TO_BF16
