"""Integration: the analytic step schedule matches the real code path.

Fig. 3a's paper-scale timings come from :mod:`repro.core.schedule`
evaluated on the device model; this test pins that schedule to what an
*actual* simulation step issues (BLAS shapes via MKL_VERBOSE, stream
passes via the device timeline), so the dry-run and the real code can
never drift apart silently.
"""

from collections import Counter

import pytest

from repro.blas.modes import ComputeMode
from repro.blas.verbose import mkl_verbose
from repro.core.schedule import qd_step_schedule
from repro.dcmesh.simulation import Simulation, SimulationConfig
from repro.gpu import Device
from repro.types import Precision


@pytest.fixture(scope="module")
def one_step_run():
    cfg = SimulationConfig.small_test(
        mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=1, nscf=1
    )
    sim = Simulation(cfg)
    device = Device()
    sim_dev = Simulation(cfg, device=device)
    sim_dev._ground = sim.setup()  # share the ground state
    sim_dev.material = sim.material
    sim_dev.mesh = sim.mesh
    sim_dev._solver = sim._solver
    device.allocate(0)
    with mkl_verbose() as log:
        result = sim_dev.run(mode=ComputeMode.STANDARD)
    return cfg, result, list(log), device


class TestBlasSchedule:
    def test_gemm_shapes_match_schedule(self, one_step_run):
        cfg, _, log, _ = one_step_run
        gemms, _ = qd_step_schedule(cfg.n_grid, cfg.n_orb, cfg.n_occupied, cfg.storage)
        predicted = Counter((g.routine, g.m, g.n, g.k, g.site) for g in gemms)
        # The run has: step 0 observation (calc_energy 3 + remap 3) +
        # one full step (9).  Count per-step structure by looking at
        # multiples: every predicted call must appear.
        observed = Counter((r.routine, r.m, r.n, r.k, r.site) for r in log)
        for key, count in predicted.items():
            assert observed[key] >= count, f"missing {key}"

    def test_nine_blas_calls_per_step(self, one_step_run):
        cfg, _, log, _ = one_step_run
        # Total = 6 (initial observation) + 9 (the QD step).
        assert len(log) == 15

    def test_sites_complete(self, one_step_run):
        _, _, log, _ = one_step_run
        assert {r.site for r in log} == {"nlp_prop", "calc_energy", "remap_occ"}


class TestStreamSchedule:
    def test_stream_passes_match_schedule(self, one_step_run):
        cfg, _, _, device = one_step_run
        _, streams = qd_step_schedule(cfg.n_grid, cfg.n_orb, cfg.n_occupied, cfg.storage)
        psi_bytes = cfg.n_grid * cfg.n_orb * 8  # complex64
        app = [e for e in device.timeline.events if e.kind == "app"]
        # The single full QD step must book exactly the scheduled
        # passes; the step-0 observation adds one extra set of
        # observable kernels.
        booked = Counter(e.name for e in app)
        scheduled = Counter(s.name for s in streams)
        for name, count in scheduled.items():
            assert booked[name] >= count, f"missing stream kernel {name}"

    def test_blas_events_booked(self, one_step_run):
        _, _, _, device = one_step_run
        blas = [e for e in device.timeline.events if e.kind == "blas"]
        assert len(blas) == 15  # matches the verbose log

    def test_model_times_attached_to_verbose(self, one_step_run):
        _, _, log, _ = one_step_run
        assert all(r.model_seconds is not None for r in log)
        assert all(r.model_seconds > 0 for r in log)


class TestScheduleTimingEquivalence:
    def test_perfstudy_equals_device_booking(self, one_step_run):
        """The PerfStudy dry-run time for one step must equal the sum
        the real run booked on the device (same model, same schedule)."""
        from repro.core.perfstudy import PerfStudy

        cfg, _, log, device = one_step_run
        study = PerfStudy(device.spec)
        t = study.step_timing(
            cfg.n_grid, cfg.n_orb, cfg.n_occupied, Precision.FP32,
            ComputeMode.STANDARD,
        )
        # Pull only the QD-step events (skip the 6 observation GEMMs
        # and the step-0 observation streams and copies).
        blas = [e for e in device.timeline.events if e.kind == "blas"]
        step_blas = sum(e.duration for e in blas[6:])
        assert step_blas == pytest.approx(t.blas_seconds, rel=1e-9)
