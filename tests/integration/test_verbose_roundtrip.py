"""Integration: the MKL_VERBOSE text pipeline end to end.

The artifact's Table VI/VII workflow is: run with MKL_VERBOSE=2, pipe
stdout to a file, then parse the text.  This test pushes a real
simulation's call log through the *text* representation and back,
verifying the analysis code sees exactly what the run emitted.
"""


from repro.blas.modes import ComputeMode
from repro.blas.verbose import format_verbose_line, mkl_verbose
from repro.profiling.mklverbose import parse_verbose_text, summarize_calls


class TestVerboseTextPipeline:
    def test_full_run_roundtrip(self, tiny_sim, clean_mode_env, tmp_path):
        with mkl_verbose() as log:
            tiny_sim.run(mode=ComputeMode.FLOAT_TO_TF32, n_steps=4)
        # Pipe to a file like the artifact does, interleaved with the
        # QD output lines an actual run prints.
        out = tmp_path / "stdout.txt"
        lines = []
        for i, rec in enumerate(log):
            lines.append(format_verbose_line(rec))
            if i % 3 == 2:
                lines.append("QD       12 1.0 1 2 3 4 5 6 7")  # app noise
        out.write_text("\n".join(lines))

        parsed = parse_verbose_text(out.read_text())
        assert len(parsed) == len(log)
        for original, back in zip(log, parsed):
            assert back.routine == original.routine
            assert (back.m, back.n, back.k) == (original.m, original.n, original.k)
            assert back.mode is original.mode
            assert back.site == original.site

    def test_summaries_match_direct_and_text_paths(self, tiny_sim, clean_mode_env):
        with mkl_verbose() as log:
            tiny_sim.run(mode=ComputeMode.STANDARD, n_steps=4)
        text = "\n".join(format_verbose_line(r) for r in log)
        direct = summarize_calls(log)
        via_text = summarize_calls(parse_verbose_text(text))
        d = {(s.routine, s.m, s.n, s.k, s.site): s.count for s in direct}
        t = {(s.routine, s.m, s.n, s.k, s.site): s.count for s in via_text}
        assert d == t

    def test_per_function_grouping_matches_paper_structure(self, tiny_sim, clean_mode_env):
        with mkl_verbose() as log:
            tiny_sim.run(mode=ComputeMode.STANDARD, n_steps=5)
        summaries = summarize_calls(log)
        per_site = {}
        for s in summaries:
            per_site.setdefault(s.site, 0)
            per_site[s.site] += s.count
        n_obs = 5 + 1  # initial observation + per-step
        # 3 calls per function per observation; nlp only per step.
        assert per_site["nlp_prop"] == 3 * 5
        assert per_site["calc_energy"] == 3 * n_obs
        assert per_site["remap_occ"] == 3 * n_obs
