"""Integration: checkpoint/restart reproduces the uninterrupted run bitwise."""

import numpy as np
import pytest

from repro.dcmesh.io.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from repro.dcmesh.simulation import Simulation, SimulationConfig


@pytest.fixture(scope="module")
def sim():
    cfg = SimulationConfig.small_test(
        mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=40, nscf=10
    )
    s = Simulation(cfg)
    s.setup()
    return s


class TestCheckpointFile:
    def test_roundtrip(self, sim, tmp_path):
        path = tmp_path / "state.npz"
        result = sim.run(mode="STANDARD", checkpoint_path=path)
        ckpt = load_checkpoint(path)
        # Last interior boundary of a 40-step/10-block run is step 30.
        assert ckpt.step == 30
        assert ckpt.psi.dtype == np.complex128
        assert ckpt.psi0.dtype == np.complex64
        ckpt.validate_against(sim.config)

    def test_save_load_all_fields(self, tmp_path, rng):
        ckpt = Checkpoint(
            step=10,
            psi=rng.standard_normal((8, 2)).astype(np.complex128),
            psi0=rng.standard_normal((8, 2)).astype(np.complex64),
            occupations=np.array([2.0, 0.0]),
            positions=rng.uniform(0, 5, (3, 3)),
            velocities=rng.standard_normal((3, 3)) * 1e-4,
            etot0=-12.5,
            field_a=0.01,
            field_a_dot=-0.02,
            field_last_j=3e-5,
            ion_forces=rng.standard_normal((3, 3)),
        )
        path = tmp_path / "c.npz"
        save_checkpoint(path, ckpt)
        back = load_checkpoint(path)
        np.testing.assert_array_equal(back.psi, ckpt.psi)
        np.testing.assert_array_equal(back.ion_forces, ckpt.ion_forces)
        assert back.etot0 == ckpt.etot0
        assert back.field_a_dot == ckpt.field_a_dot

    def test_none_ion_forces_roundtrip(self, tmp_path, rng):
        ckpt = Checkpoint(
            step=0, psi=np.zeros((4, 1), np.complex128),
            psi0=np.zeros((4, 1), np.complex64),
            occupations=np.array([2.0]), positions=np.zeros((1, 3)),
            velocities=np.zeros((1, 3)), etot0=0.0,
        )
        path = tmp_path / "c.npz"
        save_checkpoint(path, ckpt)
        assert load_checkpoint(path).ion_forces is None

    def test_validate_rejects_mismatches(self, sim, tmp_path):
        path = tmp_path / "state.npz"
        sim.run(mode="STANDARD", checkpoint_path=path)
        ckpt = load_checkpoint(path)
        bad_cfg = SimulationConfig.small_test(
            mesh_shape=(10, 10, 10), n_orb=22, n_qd_steps=40, nscf=10
        )
        with pytest.raises(ValueError, match="psi shape"):
            ckpt.validate_against(bad_cfg)
        off_boundary = SimulationConfig.small_test(
            mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=40, nscf=7
        )
        with pytest.raises(ValueError, match="block boundary"):
            ckpt.validate_against(off_boundary)


class TestBitwiseResume:
    @pytest.mark.parametrize("mode", ["STANDARD", "FLOAT_TO_BF16"])
    def test_resume_matches_uninterrupted(self, sim, tmp_path, mode):
        path = tmp_path / f"{mode}.npz"
        full = sim.run(mode=mode, checkpoint_path=path)
        ckpt = load_checkpoint(path)
        resumed = sim.run(mode=mode, resume_from=ckpt)
        # The resumed records cover steps 31..40; compare against the
        # same tail of the uninterrupted run, bit for bit.
        tail = full.records[-len(resumed.records):]
        assert [r.step for r in resumed.records] == [r.step for r in tail]
        for a, b in zip(resumed.records, tail):
            assert a == b

    def test_resume_final_state_identical(self, sim, tmp_path):
        path = tmp_path / "s.npz"
        full = sim.run(mode="FLOAT_TO_TF32", checkpoint_path=path)
        resumed = sim.run(mode="FLOAT_TO_TF32", resume_from=load_checkpoint(path))
        np.testing.assert_array_equal(full.final_psi, resumed.final_psi)

    def test_resume_with_induced_field(self, tmp_path):
        cfg = SimulationConfig.small_test(
            mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=20, nscf=10,
            induced_field=True,
        )
        sim2 = Simulation(cfg)
        sim2.setup()
        path = tmp_path / "f.npz"
        full = sim2.run(mode="STANDARD", checkpoint_path=path)
        resumed = sim2.run(mode="STANDARD", resume_from=path)
        tail = full.records[-len(resumed.records):]
        for a, b in zip(resumed.records, tail):
            assert a == b

    def test_resume_past_end_rejected(self, sim, tmp_path):
        path = tmp_path / "s.npz"
        sim.run(mode="STANDARD", checkpoint_path=path)
        with pytest.raises(ValueError, match="not before"):
            sim.run(mode="STANDARD", resume_from=load_checkpoint(path), n_steps=30)
