"""Integration: the precision study transfers to the QMC workload."""

import pytest

from repro.blas.modes import ComputeMode
from repro.qmc.study import QMC_STUDY_MODES, qmc_mode_study


@pytest.fixture(scope="module")
def rows():
    return qmc_mode_study(n_steps=200, seed=0)


class TestPortabilityClaim:
    def test_all_modes_ran(self, rows):
        assert {r.mode for r in rows} == set(QMC_STUDY_MODES)

    def test_accuracy_ladder_transfers(self, rows):
        dev = {r.mode: r.deviation_from_fp32 for r in rows}
        # Same ladder as DCMESH's Fig. 1, on a different application.
        assert (dev[ComputeMode.FLOAT_TO_BF16]
                > dev[ComputeMode.FLOAT_TO_TF32]
                > dev[ComputeMode.FLOAT_TO_BF16X3])
        assert dev[ComputeMode.FLOAT_TO_BF16X2] < dev[ComputeMode.FLOAT_TO_BF16]

    def test_reference_exact(self, rows):
        std = next(r for r in rows if r.mode is ComputeMode.STANDARD)
        assert std.deviation_from_fp32 == 0.0
        assert std.modelled_speedup == 1.0

    def test_projection_dominates_precision_error(self, rows):
        # The mode-induced energy shift stays below the (shared)
        # residual projection error: the method's accuracy survives the
        # fast modes, the paper's conclusion transplanted.
        std = next(r for r in rows if r.mode is ComputeMode.STANDARD)
        bf16 = next(r for r in rows if r.mode is ComputeMode.FLOAT_TO_BF16)
        assert bf16.deviation_from_fp32 < std.error

    def test_speedups_positive_and_ordered(self, rows):
        s = {r.mode: r.modelled_speedup for r in rows}
        assert (s[ComputeMode.FLOAT_TO_BF16]
                > s[ComputeMode.FLOAT_TO_TF32]
                > s[ComputeMode.FLOAT_TO_BF16X2]
                > s[ComputeMode.FLOAT_TO_BF16X3]
                >= 1.0)
