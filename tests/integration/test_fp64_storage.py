"""Integration: FP64 LFD storage is immune to the compute modes.

oneMKL's ``FLOAT_TO_*`` modes affect only single-precision routines;
a DCMESH build with ``LFD_ENABLE_MIXED_PRECISION=OFF`` (all-FP64, the
paper's FP64 bar in Fig. 3a) therefore produces *bitwise identical*
results whatever ``MKL_BLAS_COMPUTE_MODE`` says.  Only ``COMPLEX_3M``
— which does apply to zgemm — may change the rounding.
"""

import numpy as np
import pytest

from repro.blas.modes import ComputeMode
from repro.dcmesh.simulation import Simulation, SimulationConfig
from repro.types import Precision


@pytest.fixture(scope="module")
def fp64_sim():
    cfg = SimulationConfig.small_test(
        mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=15, nscf=15,
        storage=Precision.FP64,
    )
    sim = Simulation(cfg)
    sim.setup()
    return sim


class TestFp64Storage:
    def test_runs_in_complex128(self, fp64_sim):
        result = fp64_sim.run(mode=ComputeMode.STANDARD)
        assert result.final_psi.dtype == np.complex128

    def test_float_to_modes_are_noops(self, fp64_sim):
        ref = fp64_sim.run(mode=ComputeMode.STANDARD)
        for mode in (
            ComputeMode.FLOAT_TO_BF16,
            ComputeMode.FLOAT_TO_BF16X2,
            ComputeMode.FLOAT_TO_BF16X3,
            ComputeMode.FLOAT_TO_TF32,
        ):
            alt = fp64_sim.run(mode=mode)
            for col in ("ekin", "nexc", "javg"):
                np.testing.assert_array_equal(
                    alt.column(col), ref.column(col),
                    err_msg=f"{mode} changed FP64 results ({col})",
                )

    def test_complex_3m_does_apply_to_zgemm(self, fp64_sim):
        ref = fp64_sim.run(mode=ComputeMode.STANDARD)
        alt = fp64_sim.run(mode=ComputeMode.COMPLEX_3M)
        # Different accumulation, bitwise different...
        assert not np.array_equal(alt.column("ekin"), ref.column("ekin"))
        # ...numerically indistinguishable at FP64.
        np.testing.assert_allclose(
            alt.column("ekin"), ref.column("ekin"), rtol=1e-11
        )

    def test_fp64_more_accurate_than_fp32(self, fp64_sim):
        """Unitarity holds tighter at FP64 storage."""
        cfg32 = SimulationConfig.small_test(
            mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=15, nscf=15,
        )
        r32 = Simulation(cfg32).run(mode=ComputeMode.STANDARD)
        r64 = fp64_sim.run(mode=ComputeMode.STANDARD)
        assert r64.final_gram_error() < r32.final_gram_error() / 100

    def test_zgemm_in_verbose_log(self, fp64_sim):
        from repro.blas.verbose import mkl_verbose

        with mkl_verbose() as log:
            fp64_sim.run(mode=ComputeMode.STANDARD, n_steps=2)
        assert {r.routine for r in log} == {"zgemm"}
