"""Integration: one real QD step at the paper's 40-atom scale.

Everything else runs scaled down; this test executes a single genuine
LFD step of the 64^3-mesh, 256-orbital system (0.5 GB wavefunction)
and checks that the live BLAS shapes are *exactly* the paper's —
including Table VII's (m, n, k) = (128, 128, 262144) remap_occ call —
and that the device model books paper-consistent times for them.
"""

import numpy as np
import pytest

from repro.blas.modes import ComputeMode
from repro.blas.verbose import mkl_verbose
from repro.dcmesh.energy import calc_energy
from repro.dcmesh.laser import LaserPulse
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.nlp import NonlocalPropagator
from repro.dcmesh.occupation import remap_occ
from repro.dcmesh.propagate import LFDPropagator
from repro.gpu import Device


@pytest.fixture(scope="module")
def paper40_state():
    """A synthetic (non-SCF) 40-atom-scale LFD state: right shapes,
    orthonormal columns, deterministic.  SCF at this size is minutes;
    the precision study's structure does not need it here."""
    rng = np.random.default_rng(0)
    mesh = Mesh((64, 64, 64), (15.0, 15.0, 15.0))
    n_orb, n_occ = 256, 128
    # Band-limited random orbitals (smooth enough for stable phases).
    psi_g = rng.standard_normal((mesh.n_grid, n_orb)) + 1j * rng.standard_normal(
        (mesh.n_grid, n_orb)
    )
    damp = np.exp(-0.5 * mesh.k2 / 4.0)
    psi = mesh.ifft(psi_g * damp[:, None])
    q, _ = np.linalg.qr(psi)
    psi = (q / np.sqrt(mesh.dv)).astype(np.complex64)
    f = np.zeros(n_orb)
    f[:n_occ] = 2.0
    h_nl = rng.standard_normal((n_orb, n_orb)) * 0.02
    h_nl = 0.5 * (h_nl + h_nl.T)
    v_eff = rng.standard_normal(mesh.n_grid) * 0.1
    return mesh, psi, f, h_nl, v_eff


@pytest.mark.slow
class TestPaperScaleStep:
    def test_nine_calls_with_paper_shapes(self, paper40_state, clean_mode_env):
        mesh, psi, f, h_nl, v_eff = paper40_state
        device = Device()
        nlp = NonlocalPropagator(psi, h_nl, dt=0.02, mesh=mesh)
        prop = LFDPropagator(
            mesh, v_eff, nlp, LaserPulse(), dt=0.02, device=device
        )
        with mkl_verbose() as log:
            out = prop.step(psi.copy(), t=1.0)
            calc_energy(out, psi, f, mesh, v_eff, h_nl, device=device)
            remap_occ(out, psi, f, mesh)
        assert len(log) == 9
        shapes = {(r.m, r.n, r.k) for r in log}
        # The paper's headline shapes all appear:
        assert (256, 256, 262144) in shapes       # nlp_prop / calc_energy
        assert (262144, 256, 256) in shapes       # nlp_prop apply
        assert (128, 128, 262144) in shapes       # Table VII remap_occ row 1
        # Device model: FP32 per-call times in the millisecond range,
        # dominated by the big cgemms.
        blas_time = device.timeline.time_by_kind()["blas"]
        assert 1e-3 < blas_time < 1.0

    def test_bf16_mode_runs_and_deviates(self, paper40_state):
        mesh, psi, f, h_nl, v_eff = paper40_state
        nlp = NonlocalPropagator(psi, h_nl, dt=0.02, mesh=mesh)
        prop = LFDPropagator(mesh, v_eff, nlp, LaserPulse(), dt=0.02)
        from repro.blas.modes import compute_mode

        with compute_mode(ComputeMode.STANDARD):
            ref = prop.step(psi.copy(), t=1.0)
        with compute_mode(ComputeMode.FLOAT_TO_BF16):
            alt = prop.step(psi.copy(), t=1.0)
        dev = np.abs(alt - ref).max()
        assert 0 < dev < 1e-1
        # Norms stay near 1 under the BF16 correction.
        norms = np.sqrt(np.sum(np.abs(alt) ** 2, axis=0) * mesh.dv)
        np.testing.assert_allclose(norms, 1.0, atol=1e-2)

    def test_device_capacity_accounting(self):
        """Failure injection: a too-large configuration must OOM the
        modelled device at setup, not fail obscurely later."""
        from repro.dcmesh.simulation import Simulation, SimulationConfig

        big = SimulationConfig(
            ncells=(4, 4, 4), mesh_shape=(128, 128, 128), n_orb=2048
        )
        sim = Simulation(big, device=Device())
        with pytest.raises(MemoryError, match="device OOM"):
            sim.setup()
