"""Integration: extension features riding on the full simulation."""

import numpy as np
import pytest

from repro.blas.modes import ComputeMode
from repro.dcmesh.hopping import SurfaceHopper
from repro.dcmesh.occupation import remap_occ
from repro.dcmesh.simulation import Simulation, SimulationConfig


@pytest.fixture(scope="module")
def base_cfg():
    return dict(mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=20, nscf=10)


class TestInducedField:
    def test_feedback_changes_dynamics(self, base_cfg):
        ref = Simulation(SimulationConfig.small_test(**base_cfg)).run(mode="STANDARD")
        fed = Simulation(
            SimulationConfig.small_test(**base_cfg, induced_field=True)
        ).run(mode="STANDARD")
        assert not np.array_equal(ref.column("javg"), fed.column("javg"))
        assert np.isfinite(fed.column("etot")).all()

    def test_zero_coupling_matches_reference(self, base_cfg):
        ref = Simulation(SimulationConfig.small_test(**base_cfg)).run(mode="STANDARD")
        off = Simulation(
            SimulationConfig.small_test(
                **base_cfg, induced_field=True, induced_coupling=0.0
            )
        ).run(mode="STANDARD")
        np.testing.assert_array_equal(ref.column("javg"), off.column("javg"))

    def test_deterministic(self, base_cfg):
        cfg = SimulationConfig.small_test(**base_cfg, induced_field=True)
        sim = Simulation(cfg)
        sim.setup()
        a = sim.run(mode="STANDARD")
        b = sim.run(mode="STANDARD")
        np.testing.assert_array_equal(a.column("javg"), b.column("javg"))

    def test_mode_sensitivity_survives_feedback(self, base_cfg):
        cfg = SimulationConfig.small_test(**base_cfg, induced_field=True)
        sim = Simulation(cfg)
        sim.setup()
        std = sim.run(mode=ComputeMode.STANDARD)
        bf16 = sim.run(mode=ComputeMode.FLOAT_TO_BF16)
        dev = np.abs(bf16.column("ekin") - std.column("ekin"))
        assert dev.max() > 0
        assert np.isfinite(dev).all()


class TestSurfaceHoppingWorkflow:
    def test_hopper_driven_by_simulation_output(self, base_cfg):
        """The DCMESH composition: remap_occ feeds the hopper."""
        cfg = SimulationConfig.small_test(**{**base_cfg, "n_qd_steps": 30, "nscf": 30})
        sim = Simulation(cfg)
        ground = sim.setup()
        hopper = SurfaceHopper(n_occupied=cfg.n_occupied, seed=11)

        # Drive the hopper with the per-orbital excitation trajectory.
        psi0 = ground.orbitals.psi.astype(np.complex64)
        result = sim.run(mode="STANDARD")
        psi_t = result.final_psi
        remap = remap_occ(psi_t, psi0, ground.orbitals.occupations, sim.mesh)
        for step in range(5):
            hopper.attempt(step, remap.per_orbital_exc * (step / 4.0))
        # Deterministic and bounded.
        assert hopper.surface == hopper.n_hops
        assert all(0 <= e.orbital < cfg.n_occupied for e in hopper.events)

    def test_final_gram_error_accessible(self, base_cfg):
        cfg = SimulationConfig.small_test(**base_cfg)
        result = Simulation(cfg).run(mode="FLOAT_TO_BF16")
        err = result.final_gram_error()
        assert 0 < err < 1e-2
