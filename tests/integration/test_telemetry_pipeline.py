"""End-to-end telemetry: the LFD pipeline and the experiment runner.

Pins the paper's central accounting claim — "Each QD step contains 9
BLAS calls" (three each in nlp_prop, calc_energy and remap_occ) — as
read off the telemetry counters of a real simulation, and exercises
the ``--telemetry DIR`` surface of ``dcmesh-repro``.
"""

import pytest

from repro.dcmesh.simulation import Simulation, SimulationConfig
from repro.experiments.runner import main as runner_main
from repro.telemetry import read_chrome_trace, read_jsonl, telemetry

pytestmark = pytest.mark.telemetry

N_STEPS = 4


@pytest.fixture(scope="module")
def sim_collector():
    """One tiny simulation run under a scoped collector."""
    cfg = SimulationConfig.small_test(
        mesh_shape=(8, 8, 8), n_orb=20, n_qd_steps=N_STEPS, nscf=2
    )
    with telemetry() as t:
        sim = Simulation(cfg)
        sim.setup()
        sim.run()
    return t


class TestNineCallsPerStep:
    def test_total_is_nine_per_step_plus_setup(self, sim_collector):
        """9 calls per QD step + 6 for the t=0 observation."""
        t = sim_collector
        assert t.counter_total("blas.calls") == 9 * N_STEPS + 6

    def test_three_calls_per_site_per_step(self, sim_collector):
        t = sim_collector
        per_site = {
            site: t.counter_value(
                "blas.calls", routine="cgemm", site=site, mode="STANDARD",
                backend="numpy"
            )
            for site in ("nlp_prop", "calc_energy", "remap_occ")
        }
        # nlp_prop runs only inside the step; the two observable sites
        # also run once for the initial (t=0) observation.
        assert per_site == {
            "nlp_prop": 3 * N_STEPS,
            "calc_energy": 3 * (N_STEPS + 1),
            "remap_occ": 3 * (N_STEPS + 1),
        }

    def test_qd_step_counter_and_spans(self, sim_collector):
        t = sim_collector
        assert t.counter_value("lfd.qd_steps") == N_STEPS
        assert t.histograms["span.qd_step"].count == N_STEPS
        assert t.histograms["span.ground_state_scf"].count == 1
        assert t.histograms["span.qxmd_update"].count == 1

    def test_flops_and_bytes_accumulated(self, sim_collector):
        t = sim_collector
        assert t.counter_value("blas.flops", routine="cgemm") > 0
        assert t.counter_value("blas.bytes", routine="cgemm") > 0

    def test_plan_and_workspace_counters_present(self, sim_collector):
        """The split-plan cache and workspace instrumentation fired."""
        t = sim_collector
        flat = t.counters_flat()
        assert any(k.startswith("blas.plan.") for k in flat)


class TestRunnerTelemetryFlag:
    def test_table6_emits_all_artifacts(self, tmp_path, capsys):
        out = tmp_path / "telem"
        assert runner_main(["table6", "--telemetry", str(out)]) == 0
        assert (out / "trace.jsonl").is_file()
        assert (out / "trace.chrome.json").is_file()
        assert (out / "summary.txt").is_file()
        assert "telemetry exported" in capsys.readouterr().out

        trace = read_jsonl(out / "trace.jsonl")
        # table6 is device-model-only: model evaluations, no emulation.
        model_counters = [
            name for name in trace["counters"] if name.startswith("blas.model_calls")
        ]
        assert model_counters
        chrome = read_chrome_trace(out / "trace.chrome.json")
        sweep_spans = [
            e
            for e in chrome["traceEvents"]
            if e.get("cat") == "sweep" and e.get("ph") == "X"
        ]
        assert sweep_spans  # one per compute mode in the sweep

    def test_runner_without_flag_leaves_telemetry_off(self, tmp_path, capsys):
        from repro.telemetry import active

        assert runner_main(["table7"]) == 0
        capsys.readouterr()
        assert active() is None
