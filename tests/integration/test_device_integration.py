"""Integration: simulation + device model + profiling substrates."""

import pytest

from repro.blas.modes import ComputeMode
from repro.blas.verbose import mkl_verbose
from repro.dcmesh.simulation import Simulation, SimulationConfig, estimate_device_bytes
from repro.gpu import Device
from repro.profiling.mklverbose import summarize_calls
from repro.profiling.unitrace import unitrace_report


@pytest.fixture(scope="module")
def device_runs():
    cfg = SimulationConfig.small_test(
        mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=20, nscf=10
    )
    base = Simulation(cfg)
    base.setup()
    out = {}
    for mode in (ComputeMode.STANDARD, ComputeMode.FLOAT_TO_BF16):
        device = Device()
        sim = Simulation(cfg, device=device)
        sim._ground = base._ground
        sim.material = base.material
        sim.mesh = base.mesh
        sim._solver = base._solver
        with mkl_verbose() as log:
            result = sim.run(mode=mode)
        out[mode] = (result, device, list(log))
    return cfg, out


class TestUnitracePath:
    def test_total_l0_time_positive(self, device_runs):
        _, out = device_runs
        for result, device, _ in out.values():
            assert device.total_l0_time() > 0
            assert result.total_device_seconds == pytest.approx(device.total_l0_time())

    def test_report_structure(self, device_runs):
        _, out = device_runs
        _, device, _ = out[ComputeMode.STANDARD]
        rep = unitrace_report(device.timeline)
        assert {"blas", "app", "copy"} <= set(rep.by_kind)
        assert 0 < rep.blas_fraction() < 1
        assert "cgemm" in rep.by_kernel

    def test_mode_changes_modelled_blas_time_only(self, device_runs):
        # The device model is mode-sensitive for BLAS kernels.  At this
        # toy scale launch overhead dominates, so BF16 shows *no*
        # benefit — the paper's small-system observation taken to the
        # extreme; the paper-scale direction is pinned by the
        # PerfStudy tests.
        _, out = device_runs
        _, dev_std, _ = out[ComputeMode.STANDARD]
        _, dev_bf16, _ = out[ComputeMode.FLOAT_TO_BF16]
        blas_std = dev_std.timeline.time_by_kind()["blas"]
        blas_bf16 = dev_bf16.timeline.time_by_kind()["blas"]
        assert blas_bf16 != pytest.approx(blas_std)
        # Non-BLAS kernels are mode-independent.
        assert dev_std.timeline.time_by_kind()["app"] == pytest.approx(
            dev_bf16.timeline.time_by_kind()["app"]
        )

    def test_memory_accounted(self, device_runs):
        cfg, out = device_runs
        _, device, _ = out[ComputeMode.STANDARD]
        assert device.allocated_bytes == estimate_device_bytes(cfg)


class TestVerbosePath:
    def test_nine_calls_per_step(self, device_runs):
        cfg, out = device_runs
        _, _, log = out[ComputeMode.STANDARD]
        # 6 (initial observation) + 9 per step.
        assert len(log) == 6 + 9 * cfg.n_qd_steps

    def test_summaries_by_site(self, device_runs):
        _, out = device_runs
        _, _, log = out[ComputeMode.STANDARD]
        summaries = summarize_calls(log)
        sites = {s.site for s in summaries}
        assert sites == {"nlp_prop", "calc_energy", "remap_occ"}

    def test_mode_tagged_in_log(self, device_runs):
        _, out = device_runs
        _, _, log = out[ComputeMode.FLOAT_TO_BF16]
        assert all(r.mode is ComputeMode.FLOAT_TO_BF16 for r in log)

    def test_paper_shape_call_shows_model_speedup(self, device_runs):
        # Per-call model speedup is a large-matrix effect: evaluate the
        # paper's actual remap_occ shape through the same record path.
        from repro.gpu import Device

        dev = Device()
        t_std = dev.record_gemm("cgemm", 128, 3968, 262144, ComputeMode.STANDARD)
        t_bf16 = dev.record_gemm("cgemm", 128, 3968, 262144, ComputeMode.FLOAT_TO_BF16)
        assert t_std / t_bf16 == pytest.approx(3.91, abs=0.35)


class TestShadowDynamics:
    def test_bulk_transfers_only_at_block_boundaries(self, device_runs):
        cfg, out = device_runs
        result, device, _ = out[ComputeMode.STANDARD]
        copies = [e for e in device.timeline.events if e.kind == "copy"]
        n_blocks = cfg.n_qd_steps // cfg.nscf
        assert len(copies) == 2 * n_blocks  # h2d + d2h per block
        # Ledger agrees.
        assert result.ledger.total_bytes("d2h") > 0
        psi_bytes = cfg.n_grid * cfg.n_orb * 8
        assert result.ledger.by_name()["psi_h2d"] == psi_bytes * n_blocks
