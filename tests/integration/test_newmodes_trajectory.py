"""Integration: the post-paper split modes drive full trajectories.

``EMULATED_FP64`` on an all-FP64 build must track the native FP64
trajectory to within compensated-accumulation noise (the ISSUE's
acceptance bar: max-abs observable deviation below 1e-12 on the small
lattice), while ``OZAKI_INT8`` — a single-precision mode — is a
bitwise no-op there and lands between BF16X2 and FP32 on the accuracy
ladder of the FP32-storage build.
"""

import numpy as np
import pytest

from repro.blas.env import scoped_env
from repro.blas.modes import ComputeMode
from repro.dcmesh.simulation import Simulation, SimulationConfig
from repro.types import Precision


@pytest.fixture(scope="module")
def fp64_sim():
    cfg = SimulationConfig.small_test(
        mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=15, nscf=15,
        storage=Precision.FP64,
    )
    sim = Simulation(cfg)
    sim.setup()
    return sim


@pytest.fixture(scope="module")
def fp32_sim():
    cfg = SimulationConfig.small_test(
        mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=15, nscf=15,
    )
    sim = Simulation(cfg)
    sim.setup()
    return sim


class TestEmulatedFP64Trajectory:
    def test_tracks_native_fp64_within_1e_12(self, fp64_sim):
        ref = fp64_sim.run(mode=ComputeMode.STANDARD)
        emu = fp64_sim.run(mode=ComputeMode.EMULATED_FP64)
        for col in ("ekin", "nexc", "javg"):
            dev = float(np.abs(emu.column(col) - ref.column(col)).max())
            assert dev <= 1e-12, f"{col}: {dev}"

    def test_fp32_storage_run_beats_standard_accuracy(self, fp32_sim, fp64_sim):
        """On the FP32 build, emulated FP64 sits closer to the FP64
        ground truth than plain FP32 arithmetic does."""
        truth = fp64_sim.run(mode=ComputeMode.STANDARD)
        std = fp32_sim.run(mode=ComputeMode.STANDARD)
        emu = fp32_sim.run(mode=ComputeMode.EMULATED_FP64)

        def dev(result):
            worst = 0.0
            for col in ("ekin", "nexc"):
                worst = max(worst, float(
                    np.abs(result.column(col) - truth.column(col)).max()
                ))
            return worst

        assert dev(emu) <= dev(std) * 1.5  # never worse; usually better


class TestOzakiTrajectory:
    def test_noop_on_fp64_storage(self, fp64_sim):
        ref = fp64_sim.run(mode=ComputeMode.STANDARD)
        alt = fp64_sim.run(mode=ComputeMode.OZAKI_INT8)
        for col in ("ekin", "nexc", "javg"):
            np.testing.assert_array_equal(alt.column(col), ref.column(col))

    def test_sits_between_bf16x2_and_fp32(self, fp32_sim):
        """Trajectory deviation respects the analytic error ladder."""
        ref = fp32_sim.run(mode=ComputeMode.STANDARD)

        def dev(mode):
            alt = fp32_sim.run(mode=mode)
            return float(np.abs(alt.column("ekin") - ref.column("ekin")).max())

        d_bf16 = dev(ComputeMode.FLOAT_TO_BF16)
        d_ozaki = dev(ComputeMode.OZAKI_INT8)
        assert 0 < d_ozaki < d_bf16


class TestEnvSelection:
    """Both modes flow through MKL_BLAS_COMPUTE_MODE, no source change."""

    def test_env_var_selects_new_modes(self, fp32_sim):
        for env_value, mode in (
            ("OZAKI_INT8", ComputeMode.OZAKI_INT8),
            ("EMULATED_FP64", ComputeMode.EMULATED_FP64),
        ):
            explicit = fp32_sim.run(mode=mode, n_steps=5)
            with scoped_env({"MKL_BLAS_COMPUTE_MODE": env_value}):
                via_env = fp32_sim.run(n_steps=5)
            np.testing.assert_array_equal(
                via_env.column("ekin"), explicit.column("ekin"), err_msg=env_value
            )
