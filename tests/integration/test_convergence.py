"""Integration: discretisation-convergence QA."""

import numpy as np
import pytest

from repro.core.convergence import mesh_convergence, orbital_convergence
from repro.dcmesh.scf import SCFParams


@pytest.mark.slow
class TestMeshConvergence:
    @pytest.fixture(scope="class")
    def rows(self):
        return mesh_convergence(
            mesh_sizes=(8, 10, 12),
            scf_params=SCFParams(max_iter=120, tol=1e-7),
        )

    def test_row_structure(self, rows):
        assert [r[0] for r in rows] == [8, 10, 12]
        assert np.isnan(rows[0][2])
        assert all(np.isfinite(r[1]) for r in rows)

    def test_changes_contract(self, rows):
        # Spectral + Gaussian: refinement changes shrink fast.
        assert rows[2][2] < rows[1][2]

    def test_working_resolution_converged(self, rows):
        # At 12^3 (the small_test default) the residual discretisation
        # error is far below the BF16-induced ekin deviations (~1e-2 Ha).
        assert rows[2][2] < 0.3


@pytest.mark.slow
class TestOrbitalConvergence:
    def test_nexc_stabilises(self):
        rows = orbital_convergence(n_orbs=(20, 24, 32), n_qd_steps=30)
        assert all(np.isfinite(r[1]) for r in rows)
        # The added virtuals change nexc by ever-smaller amounts.
        assert rows[2][2] <= rows[1][2] * 5  # no blow-up
        assert rows[2][2] < 0.5 * max(rows[1][1], 1e-12) + 0.05
