"""Integration tests for the distributed sweep/ensemble engine.

The contracts pinned here:

* **serial equivalence** — the merged distributed sweep is bitwise
  identical to ``BlasSweep().sweep()`` (the golden test behind the
  ``distrib-serial-equivalence`` claim);
* **checkpoint/resume** — killing every worker mid-run and resuming
  completes the job without recomputing a single completed cell;
* **corruption tolerance** — a torn trailing JSONL record costs one
  cell re-execution, never the run;
* **work-stealing** — an injected straggler's cell is speculatively
  re-issued to the idle worker and the job finishes long before the
  straggler wakes;
* **env propagation** — worker processes re-enter the driver's
  backend/telemetry/precision environment, labels intact.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.blas.modes import set_ozaki_slices
from repro.core.blas_sweep import FIG3B_NORBS, SWEEP_MODES, BlasSweep
from repro.distrib import SweepSpec, WorkQueue, resume, submit

SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")


def worker_cmd(queue_dir, worker_id, *extra):
    return [
        sys.executable,
        "-m",
        "repro.distrib.worker",
        "--queue",
        str(queue_dir),
        "--worker-id",
        worker_id,
        *extra,
    ]


def worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def wait_for(predicate, timeout, poll=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return predicate()


class TestSerialEquivalence:
    def test_distributed_sweep_bitwise_equals_serial(self):
        """The golden test: merged points == serial points, exactly."""
        serial = BlasSweep().sweep()
        distributed = BlasSweep().sweep_distributed(n_workers=2)
        assert distributed == serial  # SweepPoint is frozen: field-exact

    def test_inline_drain_also_bitwise_equal(self):
        serial = BlasSweep().sweep(norbs=(256, 1024))
        distributed = BlasSweep().sweep_distributed(
            norbs=(256, 1024), n_workers=3, inline=True
        )
        assert distributed == serial

    def test_merged_artifact_row_for_every_cell(self):
        spec = SweepSpec(
            kind="sweep",
            modes=tuple(m.env_value for m in SWEEP_MODES),
            norbs=FIG3B_NORBS,
            params={"routine": "cgemm"},
        )
        merged = submit(spec, n_workers=2, inline=True).result()
        assert len(merged.cells) == len(SWEEP_MODES) * len(FIG3B_NORBS)
        assert sum(p["cells"] for p in merged.stats.per_worker.values()) >= len(
            merged.cells
        )


class TestKillAndResume:
    def test_kill_mid_run_then_resume_recomputes_nothing(self, tmp_path):
        """SIGKILL every worker mid-job; resume() finishes the rest.

        Zero recomputation is asserted record-by-record: each cell
        completed before the kill keeps exactly its original record
        (same worker, same timestamp), and post-resume records exist
        only for cells that had none.
        """
        spec = SweepSpec(
            kind="synthetic", n_cells=10, params={"cell_seconds": 0.15}
        )
        queue = WorkQueue.create(
            tmp_path / "q", spec, lease_seconds=1.0, steal_after=None
        )
        procs = [
            subprocess.Popen(worker_cmd(queue.root, f"w{i}"), env=worker_env())
            for i in range(2)
        ]
        try:
            assert wait_for(lambda: len(queue.completed_keys()) >= 3, timeout=30)
        finally:
            for p in procs:
                p.send_signal(signal.SIGKILL)
            for p in procs:
                p.wait()
        before = {
            key: (rec["worker"], rec["completed_unix"])
            for key, rec in queue.completed()[0].items()
        }
        assert 0 < len(before) < 10  # genuinely mid-run

        handle = resume(queue.root, n_workers=2)
        merged = handle.result(timeout=60)
        assert len(merged.cells) == 10
        winners, stats = queue.completed()
        for key, (worker, completed_unix) in before.items():
            assert winners[key]["worker"] == worker
            assert winners[key]["completed_unix"] == completed_unix
        # Every pre-kill cell has exactly one record: nothing re-ran.
        records, _ = queue.result_records()
        per_cell = {}
        for rec in records:
            per_cell[rec["cell"]] = per_cell.get(rec["cell"], 0) + 1
        for key in before:
            assert per_cell[key] == 1

    def test_resume_on_complete_queue_is_a_cheap_noop(self, tmp_path):
        spec = SweepSpec(kind="synthetic", n_cells=3, params={"cell_seconds": 0.0})
        first = submit(spec, n_workers=1, queue_dir=tmp_path / "q", inline=True)
        assert first.result().stats.completed == 3
        again = resume(tmp_path / "q", n_workers=2)
        merged = again.result(timeout=30)
        records, _ = again.queue.result_records()
        assert len(records) == 3  # not one cell re-ran


class TestCorruptionRecovery:
    def test_torn_trailing_record_rerun_on_resume(self, tmp_path):
        spec = SweepSpec(kind="synthetic", n_cells=4, params={"cell_seconds": 0.0})
        handle = submit(spec, n_workers=1, queue_dir=tmp_path / "q", inline=True)
        handle.result()
        queue = WorkQueue(tmp_path / "q")
        shard = queue.results_path("inline0")
        text = shard.read_text()
        shard.write_text(text[:-10])  # tear the trailing record
        assert len(queue.completed_keys()) == 3

        merged = resume(tmp_path / "q", n_workers=1, inline=True).result()
        assert len(merged.cells) == 4  # the torn cell re-ran
        assert merged.stats.corrupt_records >= 1  # and the damage is counted

    def test_expired_lease_of_dead_worker_retaken(self, tmp_path):
        spec = SweepSpec(kind="synthetic", n_cells=2, params={"cell_seconds": 0.0})
        queue = WorkQueue.create(tmp_path / "q", spec, lease_seconds=0.2)
        # A "dead worker" left a lease behind and wrote nothing.
        assert queue.try_claim(0, "dead").status == "claimed"
        time.sleep(0.3)
        merged = resume(queue.root, n_workers=1, inline=True).result()
        assert len(merged.cells) == 2
        assert merged.stats.lease_takeovers >= 1


class TestWorkStealing:
    def test_straggler_cell_stolen_by_idle_worker(self, tmp_path):
        """An injected straggler must not serialise the job.

        w0 stalls 60 s on cell 0 while its heartbeat keeps the lease
        alive — lease expiry can never recover it.  w1 drains the rest,
        goes idle, and steals cell 0 after ``steal_after``; the job
        completes in a fraction of the stall (the generous margin keeps
        the bound meaningful even on a loaded single-core runner).
        """
        spec = SweepSpec(kind="synthetic", n_cells=4, params={"cell_seconds": 0.1})
        queue = WorkQueue.create(
            tmp_path / "q", spec, lease_seconds=120.0, steal_after=0.3
        )
        stall = subprocess.Popen(
            worker_cmd(
                queue.root,
                "w0",
                "--stall-key",
                "synthetic:",  # w0 stalls on whichever cell it claims
                "--stall-seconds",
                "60",
                "--max-cells",
                "1",
            ),
            env=worker_env(),
        )
        # Hold w1 back until the straggler owns a lease, so the
        # injection cannot be raced away.
        assert wait_for(
            lambda: bool(list((queue.root / "leases").glob("cell-*.json"))),
            timeout=30,
        )
        helper = subprocess.Popen(
            worker_cmd(queue.root, "w1"), env=worker_env()
        )
        t0 = time.monotonic()
        try:
            assert wait_for(queue.all_done, timeout=45)
            elapsed = time.monotonic() - t0
        finally:
            for p in (stall, helper):
                p.send_signal(signal.SIGKILL)
                p.wait()
        assert elapsed < 45.0  # finished despite the 60 s straggler
        winners, stats = queue.completed()
        stolen = [rec for rec in winners.values() if rec["stolen"]]
        assert len(stolen) == 1  # exactly the straggler's cell
        assert stolen[0]["worker"] == "w1"
        assert stats.steals >= 1

    def test_steal_disabled_means_no_speculation(self, tmp_path):
        spec = SweepSpec(kind="synthetic", n_cells=4, params={"cell_seconds": 0.0})
        queue = WorkQueue.create(tmp_path / "q", spec, steal_after=None)
        merged = resume(queue.root, n_workers=2, inline=True).result()
        assert merged.stats.steals == 0
        assert merged.stats.duplicates == 0


@pytest.mark.telemetry
class TestEnvPropagation:
    def test_worker_processes_reenter_driver_env(self, tmp_path):
        """Probe cells report the state each worker actually re-entered:
        telemetry on, the driver's Ozaki slice count, drift on —
        despite none of it being exported to os.environ here."""
        from repro.telemetry import registry
        from repro.telemetry.drift import set_drift_enabled

        collector = registry.enable()
        set_ozaki_slices(2)
        set_drift_enabled(True)
        try:
            spec = SweepSpec(kind="probe", n_cells=4)
            handle = submit(spec, n_workers=2, queue_dir=tmp_path / "q")
            merged = handle.result(timeout=60)
        finally:
            set_drift_enabled(None)
            set_ozaki_slices(None)
            registry.disable()
        assert len(merged.cells) == 4
        pids = set()
        for payload in merged.cells.values():
            assert payload["backend"] == "numpy"
            assert payload["ozaki_slices"] == 2
            assert payload["telemetry"] is True
            assert payload["drift"] is True
            pids.add(payload["pid"])
        assert os.getpid() not in pids  # genuinely ran out-of-process

    def test_cell_telemetry_streams_back_with_labels(self, tmp_path):
        """Every winning cell's counters merge into the driver's
        collector — each probe runs one 16x16 sgemm, so ``blas.calls``
        must come back labelled with routine and backend."""
        from repro.telemetry import registry

        collector = registry.enable()
        try:
            spec = SweepSpec(kind="probe", n_cells=3)
            merged = submit(spec, n_workers=2, queue_dir=tmp_path / "q").result(
                timeout=60
            )
        finally:
            registry.disable()
        assert merged.telemetry_merged == 3
        assert (
            collector.counter_value(
                "blas.calls", routine="sgemm", site="-", mode="STANDARD",
                backend="numpy",
            )
            == 3
        )
        assert collector.counter_total("distrib.cells") == 3
        assert collector.counter_total("distrib.worker_seconds") > 0

    @pytest.mark.skipif(
        not pytest.importorskip("importlib.util").find_spec("torch"),
        reason="torch not installed",
    )
    def test_torch_backend_propagates_to_workers(self, tmp_path):
        from repro.blas.backend import use_backend

        with use_backend("torch-cpu"):
            spec = SweepSpec(kind="probe", n_cells=2)
            merged = submit(spec, n_workers=2, queue_dir=tmp_path / "q").result(
                timeout=60
            )
        for payload in merged.cells.values():
            assert payload["backend"] == "torch-cpu"


class TestDistributedStudy:
    @pytest.mark.slow
    def test_distributed_study_bitwise_equals_serial(self):
        import numpy as np

        from repro.blas.modes import ComputeMode
        from repro.core.study import PAPER_STUDY_MODES, PrecisionStudy
        from repro.dcmesh.simulation import SimulationConfig

        modes = PAPER_STUDY_MODES[:2]
        study = PrecisionStudy(
            SimulationConfig.small_test(n_qd_steps=8, nscf=4), modes=modes
        )
        serial = study.run()
        dist = study.run_distributed(n_workers=2)
        for mode in (ComputeMode.STANDARD, *modes):
            for obs in ("nexc", "javg", "ekin"):
                assert np.array_equal(
                    serial.results[mode].column(obs).astype(np.float64),
                    dist.column(obs, mode),
                )

    def test_custom_laser_refused_not_silently_wrong(self):
        from repro.core.study import run_distributed_study
        from repro.dcmesh.simulation import LaserPulse, SimulationConfig

        config = SimulationConfig.small_test(laser=LaserPulse(amplitude=9.0))
        with pytest.raises(ValueError, match="laser"):
            run_distributed_study(config, inline=True)
