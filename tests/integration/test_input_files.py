"""Integration: drive a run entirely from the artifact's input files."""

import numpy as np
import pytest

from repro.blas.modes import ComputeMode
from repro.dcmesh.io.loader import load_simulation_config, save_simulation_config
from repro.dcmesh.io.output import read_run_log, write_run_log
from repro.dcmesh.simulation import Simulation, SimulationConfig


@pytest.fixture(scope="module")
def input_dir(tmp_path_factory):
    d = tmp_path_factory.mktemp("inputs")
    cfg = SimulationConfig.small_test(
        mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=20, nscf=10
    )
    save_simulation_config(d, cfg)
    return d, cfg


class TestFileDrivenRun:
    def test_loaded_config_runs(self, input_dir):
        d, _ = input_dir
        cfg = load_simulation_config(d)
        sim = Simulation(cfg)
        result = sim.run(mode=ComputeMode.STANDARD)
        assert len(result.records) == cfg.n_qd_steps + 1

    def test_file_driven_equals_api_driven(self, input_dir):
        d, cfg_api = input_dir
        cfg_file = load_simulation_config(d)
        res_file = Simulation(cfg_file).run(mode=ComputeMode.STANDARD)
        res_api = Simulation(cfg_api).run(mode=ComputeMode.STANDARD)
        np.testing.assert_array_equal(
            res_file.column("nexc"), res_api.column("nexc")
        )
        np.testing.assert_array_equal(
            res_file.column("etot"), res_api.column("etot")
        )

    def test_run_log_roundtrip_through_disk(self, input_dir, tmp_path):
        d, _ = input_dir
        cfg = load_simulation_config(d)
        result = Simulation(cfg).run(mode="FLOAT_TO_BF16")
        log_path = tmp_path / "bf16_run.log"
        write_run_log(log_path, result.records, header=f"mode: {result.mode.env_value}")
        back = read_run_log(log_path)
        assert back == result.records

    def test_deviation_analysis_from_disk_logs(self, input_dir, tmp_path):
        """The artifact's actual analysis path: pipe each run to a text
        file, then diff the columns."""
        d, _ = input_dir
        cfg = load_simulation_config(d)
        sim = Simulation(cfg)
        sim.setup()
        for mode in ("STANDARD", "FLOAT_TO_BF16"):
            res = sim.run(mode=mode)
            write_run_log(tmp_path / f"{mode}.log", res.records)
        ref = read_run_log(tmp_path / "STANDARD.log")
        alt = read_run_log(tmp_path / "FLOAT_TO_BF16.log")
        dev = np.abs(np.array([r.ekin for r in alt]) - np.array([r.ekin for r in ref]))
        # Step 0 already measures through mode-sensitive BLAS, so even
        # the initial record deviates slightly; the drift dominates it.
        assert dev.max() > 0
        assert np.isfinite(dev).all()
