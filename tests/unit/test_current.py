"""Unit tests: current density."""

import numpy as np
import pytest

from repro.dcmesh.current import current_density
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.wavefunction import OrbitalSet


@pytest.fixture(scope="module")
def mesh():
    return Mesh((8, 8, 8), (5.0, 5.0, 5.0))


class TestCurrent:
    def test_plane_wave_carries_its_momentum(self, mesh):
        kvec = mesh.kvecs[3]
        assert np.abs(kvec).max() > 0
        psi = (np.exp(1j * mesh.coords @ kvec) / np.sqrt(mesh.volume))[:, None]
        f = np.array([2.0])
        pol = kvec / np.linalg.norm(kvec)
        j = current_density(psi.astype(np.complex128), f, mesh, polarization=pol)
        expect = 2.0 * np.linalg.norm(kvec) / mesh.volume
        assert j == pytest.approx(expect, rel=1e-6)

    def test_real_state_has_zero_current(self, mesh, rng):
        psi = rng.standard_normal((mesh.n_grid, 2)).astype(np.complex128)
        j = current_density(psi, np.array([2.0, 2.0]), mesh)
        assert j == pytest.approx(0.0, abs=1e-10)

    def test_field_adds_diamagnetic_term(self, mesh, rng):
        orb = OrbitalSet.random(mesh, 4, 2, seed=0)
        a = np.array([0.0, 0.0, 0.4])
        j0 = current_density(orb.psi, orb.occupations, mesh)
        ja = current_density(orb.psi, orb.occupations, mesh, a_field=a)
        expect = j0 + 0.4 * orb.n_electrons / mesh.volume
        assert ja == pytest.approx(expect, rel=1e-9)

    def test_polarization_projection(self, mesh):
        kvec = mesh.kvecs[3]
        psi = (np.exp(1j * mesh.coords @ kvec) / np.sqrt(mesh.volume))[:, None]
        # Polarisation orthogonal to k: zero current along it.
        pol = np.array([kvec[1], -kvec[0], 0.0])
        if np.linalg.norm(pol) == 0:
            pol = np.array([0.0, 1.0, 0.0])
        j = current_density(psi.astype(np.complex128), np.array([2.0]), mesh,
                            polarization=pol)
        assert j == pytest.approx(0.0, abs=1e-10)

    def test_occupation_scaling_linear(self, mesh):
        kvec = mesh.kvecs[3]
        psi = (np.exp(1j * mesh.coords @ kvec) / np.sqrt(mesh.volume))[:, None]
        pol = kvec / np.linalg.norm(kvec)
        j1 = current_density(psi.astype(np.complex128), np.array([1.0]), mesh, polarization=pol)
        j2 = current_density(psi.astype(np.complex128), np.array([2.0]), mesh, polarization=pol)
        assert j2 == pytest.approx(2 * j1, rel=1e-12)

    def test_validation(self, mesh, rng):
        psi = rng.standard_normal((mesh.n_grid, 2)).astype(np.complex64)
        with pytest.raises(ValueError, match="occupations"):
            current_density(psi, np.zeros(3), mesh)
        with pytest.raises(ValueError, match="polarization"):
            current_density(psi, np.zeros(2), mesh, polarization=(0, 0, 0))

    def test_device_books_fft(self, mesh, rng):
        from repro.gpu import Device

        psi = rng.standard_normal((mesh.n_grid, 2)).astype(np.complex64)
        dev = Device()
        current_density(psi, np.array([2.0, 0.0]), mesh, device=dev)
        assert dev.timeline.events[0].name == "fft_current"
