"""Unit tests: multi-stack scaling model (future-work extension)."""

import pytest

from repro.blas.modes import ComputeMode
from repro.gpu.multistack import (
    MultiStackModel,
    NODE_FABRIC,
    XE_LINK,
)

SYSTEM = dict(n_grid=96**3, n_orb=1024, n_occ=432)


@pytest.fixture(scope="module")
def model():
    return MultiStackModel()


class TestScaling:
    def test_single_stack_has_no_comm(self, model):
        p = model.step_seconds(**SYSTEM, mode=ComputeMode.STANDARD, n_stacks=1)
        assert p.comm_seconds == 0.0
        assert p.speedup == 1.0
        assert p.efficiency == 1.0

    def test_two_stacks_faster_than_one(self, model):
        p1 = model.step_seconds(**SYSTEM, mode=ComputeMode.STANDARD, n_stacks=1)
        p2 = model.step_seconds(**SYSTEM, mode=ComputeMode.STANDARD, n_stacks=2)
        assert p2.step_seconds < p1.step_seconds
        assert 1.0 < p2.speedup <= 2.0

    def test_efficiency_decreases_with_stacks(self, model):
        effs = [
            model.step_seconds(**SYSTEM, mode=ComputeMode.STANDARD, n_stacks=p).efficiency
            for p in (1, 2, 4, 8)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(effs, effs[1:]))

    def test_bf16_scales_worse_than_fp32(self, model):
        # Communication is mode-independent, so the faster compute mode
        # loses parallel efficiency first — the interesting future-work
        # interaction.
        f32 = model.step_seconds(**SYSTEM, mode=ComputeMode.STANDARD, n_stacks=8)
        bf16 = model.step_seconds(**SYSTEM, mode=ComputeMode.FLOAT_TO_BF16, n_stacks=8)
        assert bf16.efficiency < f32.efficiency

    def test_slower_fabric_hurts(self, model):
        slow = MultiStackModel(link=NODE_FABRIC)
        fast = MultiStackModel(link=XE_LINK)
        ps = slow.step_seconds(**SYSTEM, mode=ComputeMode.STANDARD, n_stacks=4)
        pf = fast.step_seconds(**SYSTEM, mode=ComputeMode.STANDARD, n_stacks=4)
        assert ps.comm_seconds > pf.comm_seconds
        assert ps.step_seconds > pf.step_seconds

    def test_scaling_curve_shape(self, model):
        curve = model.scaling_curve(**SYSTEM, mode=ComputeMode.STANDARD)
        assert [p.n_stacks for p in curve] == [1, 2, 4, 8]
        times = [p.step_seconds for p in curve]
        assert times == sorted(times, reverse=True)

    def test_validation(self, model):
        with pytest.raises(ValueError, match="n_stacks"):
            model.step_seconds(**SYSTEM, mode=ComputeMode.STANDARD, n_stacks=0)
        with pytest.raises(ValueError, match="divide evenly"):
            model.step_seconds(96**3, 1000, 432, ComputeMode.STANDARD, 3)
