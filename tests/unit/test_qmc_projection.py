"""Unit tests: imaginary-time projection QMC."""

import numpy as np
import pytest

from repro.blas.modes import ComputeMode
from repro.blas.verbose import mkl_verbose
from repro.qmc.lattice import tight_binding_hamiltonian
from repro.qmc.projection import (
    ProjectionQMC,
    exact_ground_state_energy,
)
from repro.types import Precision


@pytest.fixture(scope="module")
def h():
    return tight_binding_hamiltonian((4, 4, 4), disorder=0.5, seed=3)


class TestExactEnergy:
    def test_sum_of_lowest(self, h):
        vals = np.sort(h.eigenvalues())
        assert exact_ground_state_energy(h, 5) == pytest.approx(vals[:5].sum())

    def test_validation(self, h):
        with pytest.raises(ValueError):
            exact_ground_state_energy(h, 0)
        with pytest.raises(ValueError):
            exact_ground_state_energy(h, h.n_sites + 1)


class TestProjection:
    def test_converges_to_exact_fp64(self, h):
        # N = 7 sits at a ~1.7 gap in this spectrum: the projection
        # converges as exp(-2 gap tau n).
        qmc = ProjectionQMC(h, n_particles=7, tau=0.1, storage=Precision.FP64)
        res = qmc.run(n_steps=500, mode=ComputeMode.STANDARD)
        assert res.error < 1e-8

    def test_energy_decreases_towards_exact(self, h):
        qmc = ProjectionQMC(h, n_particles=6, tau=0.1)
        res = qmc.run(n_steps=400, measure_every=50)
        errors = [abs(e - res.exact_energy) for e in res.energies]
        assert errors[-1] < errors[0]

    def test_variational_bound(self, h):
        # The estimator over an N-dim subspace is >= the exact sum.
        qmc = ProjectionQMC(h, n_particles=6, tau=0.1, storage=Precision.FP64)
        res = qmc.run(n_steps=600)
        assert res.final_energy >= res.exact_energy - 1e-9

    def test_deterministic(self, h):
        a = ProjectionQMC(h, 6, seed=5).run(n_steps=50, mode="FLOAT_TO_BF16")
        b = ProjectionQMC(h, 6, seed=5).run(n_steps=50, mode="FLOAT_TO_BF16")
        assert a.energies == b.energies

    def test_mode_sensitivity_ladder(self, h):
        qmc = ProjectionQMC(h, n_particles=6, tau=0.1, seed=1)
        ref = qmc.run(n_steps=200, mode=ComputeMode.STANDARD)
        devs = {}
        for mode in (ComputeMode.FLOAT_TO_BF16, ComputeMode.FLOAT_TO_TF32,
                     ComputeMode.FLOAT_TO_BF16X3):
            res = qmc.run(n_steps=200, mode=mode)
            devs[mode] = abs(res.final_energy - ref.final_energy)
        assert (devs[ComputeMode.FLOAT_TO_BF16]
                > devs[ComputeMode.FLOAT_TO_TF32]
                > devs[ComputeMode.FLOAT_TO_BF16X3])

    def test_blas_call_structure(self, h, clean_mode_env):
        qmc = ProjectionQMC(h, n_particles=6)
        with mkl_verbose() as log:
            qmc.run(n_steps=10, measure_every=10)
        sites = {r.site for r in log}
        assert sites == {"qmc_propagate", "qmc_energy"}
        props = [r for r in log if r.site == "qmc_propagate"]
        assert len(props) == 10
        assert all(r.routine == "sgemm" for r in props)
        assert props[0].m == props[0].k == h.n_sites

    def test_fp64_storage_uses_dgemm(self, h, clean_mode_env):
        qmc = ProjectionQMC(h, n_particles=4, storage=Precision.FP64)
        with mkl_verbose() as log:
            qmc.run(n_steps=2, measure_every=2)
        assert {r.routine for r in log} == {"dgemm"}

    def test_validation(self, h):
        with pytest.raises(ValueError, match="tau"):
            ProjectionQMC(h, 4, tau=0.0)
        with pytest.raises(ValueError, match="reortho"):
            ProjectionQMC(h, 4, reortho_every=0)
        with pytest.raises(ValueError, match="n_particles"):
            ProjectionQMC(h, 0)
        qmc = ProjectionQMC(h, 4)
        with pytest.raises(ValueError, match="n_steps"):
            qmc.run(n_steps=0)
