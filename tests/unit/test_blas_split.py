"""Unit tests: split-precision GEMM engines."""

import numpy as np
import pytest

from repro.blas.split import component_pairs, split_gemm_real
from repro.types import Precision


class TestComponentPairs:
    def test_counts_match_table2(self):
        assert len(component_pairs(1)) == 1
        assert len(component_pairs(2)) == 3
        assert len(component_pairs(3)) == 6

    def test_pair_condition(self):
        for n in (1, 2, 3, 4):
            for i, j in component_pairs(n):
                assert i + j <= n + 1
                assert 1 <= i <= n and 1 <= j <= n

    def test_most_significant_first(self):
        pairs = component_pairs(3)
        sums = [i + j for i, j in pairs]
        assert sums == sorted(sums)

    def test_first_pair_is_leading(self):
        assert component_pairs(3)[0] == (1, 1)


class TestSplitGemm:
    def test_more_terms_more_accurate(self, rng):
        a = rng.standard_normal((48, 32)).astype(np.float32)
        b = rng.standard_normal((32, 24)).astype(np.float32)
        ref = a.astype(np.float64) @ b.astype(np.float64)
        errs = []
        for n in (1, 2, 3):
            out = split_gemm_real(a, b, Precision.BF16, n)
            errs.append(np.abs(out - ref).max())
        assert errs[0] > errs[1] > errs[2]

    def test_single_term_equals_rounded_product(self, rng):
        from repro.blas.rounding import round_fp32_to_bf16

        a = rng.standard_normal((16, 8)).astype(np.float32)
        b = rng.standard_normal((8, 12)).astype(np.float32)
        out = split_gemm_real(a, b, Precision.BF16, 1)
        expect = round_fp32_to_bf16(a) @ round_fp32_to_bf16(b)
        np.testing.assert_array_equal(out, expect)

    def test_tf32_beats_bf16_single_term(self, rng):
        a = rng.standard_normal((40, 40)).astype(np.float32)
        b = rng.standard_normal((40, 40)).astype(np.float32)
        ref = a.astype(np.float64) @ b.astype(np.float64)
        e_bf16 = np.abs(split_gemm_real(a, b, Precision.BF16, 1) - ref).max()
        e_tf32 = np.abs(split_gemm_real(a, b, Precision.TF32, 1) - ref).max()
        assert e_tf32 < e_bf16

    def test_output_dtype_fp32(self, rng):
        a = rng.standard_normal((4, 4)).astype(np.float32)
        out = split_gemm_real(a, a, Precision.BF16, 2)
        assert out.dtype == np.float32

    def test_exact_on_bf16_grid_inputs(self, rng):
        # Inputs already exactly representable: x1 result equals the
        # FP32 product bit-for-bit (products are exact in FP32).
        from repro.blas.rounding import round_fp32_to_bf16

        a = round_fp32_to_bf16(rng.standard_normal((8, 8)).astype(np.float32))
        b = round_fp32_to_bf16(rng.standard_normal((8, 8)).astype(np.float32))
        np.testing.assert_array_equal(
            split_gemm_real(a, b, Precision.BF16, 1), a @ b
        )

    def test_shape_validation(self, rng):
        a = rng.standard_normal((4, 5)).astype(np.float32)
        b = rng.standard_normal((6, 4)).astype(np.float32)
        with pytest.raises(ValueError, match="inner dimensions"):
            split_gemm_real(a, b, Precision.BF16, 1)

    def test_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            split_gemm_real(
                np.zeros(4, np.float32), np.zeros((4, 4), np.float32),
                Precision.BF16, 1,
            )
