"""Unit tests for :mod:`repro.telemetry.report` and its CLI wrapper.

The report must render the same content from a live collector and
from a ``trace.jsonl`` round trip (the offline path), degrade
gracefully on partial/empty data, and surface the three load-bearing
sections: drift vs budget, per-site hot table, alert list.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.telemetry import registry
from repro.telemetry.exporters import export_all, write_jsonl
from repro.telemetry.report import (
    data_from_collector,
    generate_run_report,
    render_run_report,
)

pytestmark = pytest.mark.telemetry

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _clean():
    prev = registry.disable()
    yield
    registry.disable()
    if prev is not None:
        registry.enable(prev)


def _populated() -> registry.Telemetry:
    t = registry.Telemetry()
    sid = "nlp_prop@gemm/cgemm/32x32x2048"
    t.count("blas.site.calls", 3, site_id=sid)
    t.count("blas.site.flops", 3e9, site_id=sid)
    t.count("blas.site.bytes", 1e6, site_id=sid)
    t.count("blas.site.seconds", 0.5, site_id=sid)
    t.count("blas.calls", 3, routine="cgemm", site="nlp_prop", mode="STANDARD")
    t.gauge("drift.budget_utilization", 1.25, observable="nexc")
    t.gauge("drift.max_utilization", 1.25, observable="nexc")
    t.instant(
        "drift.sample", cat="drift", observable="nexc", step=1, value=1.0,
        utilization=1.25,
    )
    t.instant(
        "drift.alert", cat="drift", level="breach", observable="nexc", step=1,
        utilization=1.25, relative=1e-4, envelope=8e-5,
    )
    with t.span("qd_step", cat="lfd"):
        pass
    return t


class TestRender:
    def test_sections_present(self):
        text = render_run_report(data_from_collector(_populated()))
        assert "# Run report" in text
        assert "## Observable drift vs error budget" in text
        assert "## BLAS hot call sites" in text
        assert "`nlp_prop@gemm/cgemm/32x32x2048`" in text
        assert "breach" in text
        assert "qd_step" in text

    def test_empty_collector_renders_placeholders(self):
        text = render_run_report(data_from_collector(registry.Telemetry()))
        assert "No drift monitoring" in text
        assert "No per-site BLAS data" in text
        assert "No span timings" in text

    def test_empty_dict_renders(self):
        assert "# Run report" in render_run_report({})

    def test_dropped_events_warning(self):
        data = data_from_collector(registry.Telemetry())
        data["meta"]["dropped_events"] = 12
        assert "REPRO_TELEMETRY_MAX_EVENTS" in render_run_report(data)


class TestOfflinePath:
    def test_jsonl_round_trip_matches_live(self, tmp_path):
        t = _populated()
        live = generate_run_report(t)
        path = write_jsonl(t, tmp_path / "trace.jsonl")
        offline = generate_run_report(path)
        # Timestamps in the header may differ; the content body must not.
        assert live.split("\n", 3)[3] == offline.split("\n", 3)[3]

    def test_generate_writes_file(self, tmp_path):
        out = tmp_path / "nested" / "run_report.md"
        text = generate_run_report(data_from_collector(_populated()), out_path=out)
        assert out.read_text().strip() == text.strip()

    def test_export_all_includes_report(self, tmp_path):
        paths = export_all(_populated(), tmp_path)
        report = paths["report"].read_text()
        assert "BLAS hot call sites" in report


class TestScript:
    def _load(self):
        spec = importlib.util.spec_from_file_location(
            "make_run_report", REPO_ROOT / "scripts" / "make_run_report.py"
        )
        mod = importlib.util.module_from_spec(spec)
        sys.modules["make_run_report"] = mod
        spec.loader.exec_module(mod)
        return mod

    def test_writes_next_to_trace(self, tmp_path, capsys):
        trace = write_jsonl(_populated(), tmp_path / "trace.jsonl")
        mod = self._load()
        assert mod.main([str(trace)]) == 0
        assert (tmp_path / "run_report.md").is_file()

    def test_stdout_mode(self, tmp_path, capsys):
        trace = write_jsonl(_populated(), tmp_path / "trace.jsonl")
        mod = self._load()
        assert mod.main([str(trace), "-o", "-"]) == 0
        assert "# Run report" in capsys.readouterr().out

    def test_missing_trace_fails_cleanly(self, tmp_path, capsys):
        mod = self._load()
        assert mod.main([str(tmp_path / "nope.jsonl")]) == 1
        assert "not found" in capsys.readouterr().err
