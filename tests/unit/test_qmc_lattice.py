"""Unit tests: tight-binding lattice Hamiltonians."""

import numpy as np
import pytest

from repro.qmc.lattice import LatticeHamiltonian, tight_binding_hamiltonian


class TestConstruction:
    def test_symmetric_and_sized(self):
        h = tight_binding_hamiltonian((3, 4, 5))
        assert h.n_sites == 60
        np.testing.assert_array_equal(h.matrix, h.matrix.T)

    def test_coordination_number(self):
        # Periodic cubic lattice: each site couples to 6 neighbours.
        h = tight_binding_hamiltonian((4, 4, 4), hopping=1.0)
        off_diag_count = np.count_nonzero(h.matrix[0])
        assert off_diag_count == 6
        assert h.matrix[0].sum() == pytest.approx(-6.0)

    def test_known_band_edges(self):
        # Clean tight binding: spectrum in [-6t, 6t] with E_min = -6t
        # (the k=0 state, exactly representable on a periodic lattice).
        h = tight_binding_hamiltonian((6, 6, 6), hopping=1.0)
        vals = h.eigenvalues()
        assert vals[0] == pytest.approx(-6.0, abs=1e-10)
        assert vals[-1] <= 6.0 + 1e-10

    def test_disorder_deterministic(self):
        a = tight_binding_hamiltonian((3, 3, 3), disorder=0.5, seed=1)
        b = tight_binding_hamiltonian((3, 3, 3), disorder=0.5, seed=1)
        np.testing.assert_array_equal(a.matrix, b.matrix)
        c = tight_binding_hamiltonian((3, 3, 3), disorder=0.5, seed=2)
        assert not np.array_equal(a.matrix, c.matrix)

    def test_explicit_site_energies(self):
        eps = np.arange(27, dtype=float)
        h = tight_binding_hamiltonian((3, 3, 3), site_energies=eps)
        np.testing.assert_array_equal(np.diagonal(h.matrix), eps)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive ints"):
            tight_binding_hamiltonian((0, 3, 3))
        with pytest.raises(ValueError, match="length"):
            tight_binding_hamiltonian((3, 3, 3), site_energies=np.zeros(5))
        with pytest.raises(ValueError, match="square"):
            LatticeHamiltonian(np.zeros((3, 4)), (1, 1, 3))
        with pytest.raises(ValueError, match="not symmetric"):
            m = np.zeros((8, 8))
            m[0, 1] = 1.0
            LatticeHamiltonian(m, (2, 2, 2))


class TestPropagator:
    def test_exp_of_h(self):
        h = tight_binding_hamiltonian((3, 3, 3), disorder=0.3, seed=0)
        tau = 0.1
        b = h.propagator(tau)
        # B and H share eigenvectors; eigenvalues exp(-tau e).
        vals_b = np.sort(np.linalg.eigvalsh(b))[::-1]
        vals_h = np.sort(h.eigenvalues())
        np.testing.assert_allclose(vals_b, np.exp(-tau * vals_h), rtol=1e-10)

    def test_tau_zero_is_identity(self):
        h = tight_binding_hamiltonian((2, 2, 2))
        np.testing.assert_allclose(h.propagator(0.0), np.eye(8), atol=1e-12)
