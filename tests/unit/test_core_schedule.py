"""Unit tests: the analytic per-QD-step kernel schedule."""

import pytest

from repro.core.schedule import psi_bytes, qd_step_schedule
from repro.types import Precision


class TestSchedule:
    def test_nine_blas_calls_per_step(self):
        # Artifact: "Each QD step contains 9 BLAS calls".
        gemms, _ = qd_step_schedule(64**3, 256, 128)
        assert len(gemms) == 9

    def test_three_calls_per_site(self):
        gemms, _ = qd_step_schedule(64**3, 256, 128)
        sites = {}
        for g in gemms:
            sites[g.site] = sites.get(g.site, 0) + 1
        assert sites == {"nlp_prop": 3, "calc_energy": 3, "remap_occ": 3}

    def test_table7_shape_present(self):
        gemms, _ = qd_step_schedule(64**3, 256, 128)
        remap = [g for g in gemms if g.site == "remap_occ"][0]
        assert (remap.m, remap.n, remap.k) == (128, 128, 262144)

    def test_routine_follows_storage(self):
        g32, _ = qd_step_schedule(1000, 16, 8, Precision.FP32)
        g64, _ = qd_step_schedule(1000, 16, 8, Precision.FP64)
        assert all(g.routine == "cgemm" for g in g32)
        assert all(g.routine == "zgemm" for g in g64)

    def test_stream_passes_total(self):
        _, streams = qd_step_schedule(64**3, 256, 128)
        # 18 propagation passes + 14 energy + 8 current = 40.
        assert sum(s.passes for s in streams) == 40

    def test_psi_bytes(self):
        assert psi_bytes(64**3, 256, Precision.FP32) == 64**3 * 256 * 8
        assert psi_bytes(64**3, 256, Precision.FP64) == 64**3 * 256 * 16

    def test_validation(self):
        with pytest.raises(ValueError, match="n_occ"):
            qd_step_schedule(1000, 16, 16)
        with pytest.raises(ValueError, match="n_occ"):
            qd_step_schedule(1000, 16, 0)
        with pytest.raises(ValueError, match="n_grid"):
            qd_step_schedule(0, 16, 8)
