"""Unit tests: nlp_prop — the BLASified Eq. 1 correction."""

import numpy as np
import pytest
import scipy.linalg

from repro.blas.modes import ComputeMode, compute_mode
from repro.blas.verbose import mkl_verbose
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.nlp import NonlocalPropagator
from repro.dcmesh.wavefunction import OrbitalSet


@pytest.fixture(scope="module")
def setup():
    mesh = Mesh((8, 8, 8), (5.0, 5.0, 5.0))
    orb = OrbitalSet.random(mesh, 6, 3, seed=0)
    rng = np.random.default_rng(1)
    h = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
    h = 0.5 * (h + h.conj().T) * 0.2
    return mesh, orb, h


class TestConstruction:
    def test_requires_hermitian(self, setup):
        mesh, orb, h = setup
        bad = h.copy()
        bad[0, 1] += 1.0
        with pytest.raises(ValueError, match="Hermitian"):
            NonlocalPropagator(orb.psi, bad, dt=0.05, mesh=mesh)

    def test_shape_checks(self, setup):
        mesh, orb, h = setup
        with pytest.raises(ValueError, match="h_nl_sub shape"):
            NonlocalPropagator(orb.psi, h[:4, :4], dt=0.05, mesh=mesh)
        with pytest.raises(ValueError, match="psi0"):
            NonlocalPropagator(orb.psi[:, 0], h, dt=0.05, mesh=mesh)

    def test_w_storage_matches_psi0(self, setup):
        mesh, orb, h = setup
        psi32 = orb.psi.astype(np.complex64)
        nlp = NonlocalPropagator(psi32, h, dt=0.05, mesh=mesh)
        assert nlp.w.dtype == np.complex64


class TestApply:
    def test_unitary_within_subspace(self, setup):
        # Applying the correction to the reference orbitals themselves
        # is exactly the subspace unitary: norms preserved.
        mesh, orb, h = setup
        nlp = NonlocalPropagator(orb.psi, h, dt=0.05, mesh=mesh)
        out = nlp.apply(orb.psi)
        s = (out.conj().T @ out) * mesh.dv
        np.testing.assert_allclose(s, np.eye(6), atol=1e-10)

    def test_matches_expm_action(self, setup):
        mesh, orb, h = setup
        dt = 0.05
        nlp = NonlocalPropagator(orb.psi, h, dt=dt, mesh=mesh)
        out = nlp.apply(orb.psi)
        u = scipy.linalg.expm(-1j * dt * h)
        expect = orb.psi @ u
        np.testing.assert_allclose(out, expect, atol=1e-10)

    def test_orthogonal_component_untouched(self, setup):
        # A state orthogonal to span(psi0) must pass through unchanged
        # (the correction lives in the Kohn-Sham subspace).
        mesh, orb, h = setup
        rng = np.random.default_rng(2)
        x = rng.standard_normal((mesh.n_grid, 1)) + 1j * rng.standard_normal(
            (mesh.n_grid, 1)
        )
        # Orthogonalise against the reference orbitals.
        s = (orb.psi.conj().T @ x) * mesh.dv
        x = x - orb.psi @ s
        nlp = NonlocalPropagator(orb.psi[:, :1], h[:1, :1].real.astype(complex), 0.05, mesh)
        # Use a 6-orbital propagator on a padded state for shape match.
        nlp6 = NonlocalPropagator(orb.psi, h, 0.05, mesh)
        padded = np.tile(x, (1, 6))
        out = nlp6.apply(padded)
        np.testing.assert_allclose(out, padded, atol=1e-9)

    def test_zero_dt_is_identity(self, setup):
        mesh, orb, h = setup
        nlp = NonlocalPropagator(orb.psi, h, dt=0.0, mesh=mesh)
        out = nlp.apply(orb.psi)
        np.testing.assert_allclose(out, orb.psi, atol=1e-12)

    def test_issues_three_tagged_gemms(self, setup, clean_mode_env):
        mesh, orb, h = setup
        psi32 = orb.psi.astype(np.complex64)
        nlp = NonlocalPropagator(psi32, h, dt=0.05, mesh=mesh)
        with mkl_verbose() as log:
            nlp.apply(psi32)
        assert len(log) == 3
        assert all(r.site == "nlp_prop" for r in log)
        assert all(r.routine == "cgemm" for r in log)
        # Shapes: (N_orb,N_orb,N_grid), (N_orb,N_orb,N_orb), (N_grid,N_orb,N_orb).
        shapes = [(r.m, r.n, r.k) for r in log]
        assert shapes == [(6, 6, 512), (6, 6, 6), (512, 6, 6)]

    def test_mode_sensitivity(self, setup, clean_mode_env):
        mesh, orb, h = setup
        psi32 = orb.psi.astype(np.complex64)
        nlp = NonlocalPropagator(psi32, h, dt=0.05, mesh=mesh)
        with compute_mode(ComputeMode.STANDARD):
            std = nlp.apply(psi32)
        with compute_mode(ComputeMode.FLOAT_TO_BF16):
            alt = nlp.apply(psi32)
        assert not np.array_equal(std, alt)
        # ...but numerically close (the whole premise of the paper).
        np.testing.assert_allclose(alt, std, atol=2e-2)

    def test_shape_mismatch_rejected(self, setup):
        mesh, orb, h = setup
        nlp = NonlocalPropagator(orb.psi, h, dt=0.05, mesh=mesh)
        with pytest.raises(ValueError, match="psi shape"):
            nlp.apply(orb.psi[:, :3])
