"""Unit tests: Fig. 3a end-to-end timing study."""

import pytest

from repro.blas.modes import ComputeMode
from repro.core.perfstudy import FIG3A_CONFIGS, PerfStudy
from repro.types import Precision


@pytest.fixture(scope="module")
def study():
    return PerfStudy()


@pytest.fixture(scope="module")
def fig3a(study):
    return study.figure_3a()


class TestFig3aShape:
    def test_seven_configs_per_system(self, fig3a):
        assert set(fig3a) == {"40-atom", "135-atom"}
        for timings in fig3a.values():
            assert [t.label for t in timings] == [c[0] for c in FIG3A_CONFIGS]

    def test_paper_anchor_fp32_135(self, fig3a):
        fp32 = next(t for t in fig3a["135-atom"] if t.label == "FP32")
        # Paper: 1472 s for 500 QD steps.
        assert fp32.block_seconds(500) == pytest.approx(1472, rel=0.15)

    def test_paper_anchor_fp64_135(self, fig3a):
        fp64 = next(t for t in fig3a["135-atom"] if t.label == "FP64")
        # Paper: "over 2800 seconds".
        assert fp64.block_seconds(500) == pytest.approx(2800, rel=0.15)

    def test_paper_anchor_bf16_135(self, fig3a):
        bf16 = next(t for t in fig3a["135-atom"] if t.label == "BF16")
        # Paper: 972 s; we allow the model's ~20% band.
        assert bf16.block_seconds(500) == pytest.approx(972, rel=0.25)

    def test_mode_ordering_135(self, study, fig3a):
        # Artifact: fastest BF16, then TF32, BF16X2, BF16X3,
        # Complex_3M, FP32, FP64.
        times = {t.label: t.step_seconds for t in fig3a["135-atom"]}
        assert (
            times["BF16"] < times["TF32"] < times["BF16X2"]
            < times["BF16X3"] < times["COMPLEX_3M"] < times["FP32"] < times["FP64"]
        )

    def test_40_atom_spread_is_small(self, study, fig3a):
        # "Very little performance change is observed between FP32 and
        # the runs with different BLAS compute modes" at 40 atoms.
        speedups = study.speedup_over_fp32(fig3a["40-atom"])
        alt = [v for k, v in speedups.items() if k not in ("FP32", "FP64")]
        assert max(alt) < 1.30
        # ...while FP64 vs FP32 is significant.
        assert 1.0 / speedups["FP64"] > 1.5

    def test_135_atom_bf16_speedup_band(self, study, fig3a):
        # Abstract says 1.35x; the text's numbers give 1.51x.
        speedups = study.speedup_over_fp32(fig3a["135-atom"])
        assert 1.3 <= speedups["BF16"] <= 2.0


class TestStepTiming:
    def test_blas_fraction_rises_with_system_size(self, study):
        small = study.step_timing(64**3, 256, 128, Precision.FP32, ComputeMode.STANDARD)
        large = study.step_timing(96**3, 1024, 432, Precision.FP32, ComputeMode.STANDARD)
        assert large.blas_fraction > small.blas_fraction

    def test_block_seconds_scales(self, study):
        t = study.step_timing(64**3, 256, 128, Precision.FP32, ComputeMode.STANDARD)
        assert t.block_seconds(500) == pytest.approx(500 * t.step_seconds)

    def test_fp64_storage_slows_streams(self, study):
        f32 = study.step_timing(64**3, 256, 128, Precision.FP32, ComputeMode.STANDARD)
        f64 = study.step_timing(64**3, 256, 128, Precision.FP64, ComputeMode.STANDARD)
        assert f64.stream_seconds > 1.5 * f32.stream_seconds
