"""Unit tests: experiment-module internals not covered elsewhere."""

import numpy as np
import pytest

import repro
from repro.experiments.figure1 import study_config
from repro.experiments.report import _ANCHORS, _ORDER


class TestLazyPackage:
    def test_subpackages_lazy_load(self):
        assert repro.blas is not None
        assert repro.gpu is not None
        assert "blas" in dir(repro)

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.nonexistent_subpackage

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)


class TestFigure1Config:
    def test_fast_config_valid_and_small(self):
        cfg = study_config(fast=True)
        assert cfg.n_qd_steps <= 200
        assert cfg.n_grid <= 4096

    def test_full_config_valid_and_larger(self):
        cfg = study_config(fast=False)
        assert cfg.n_qd_steps > study_config(fast=True).n_qd_steps
        assert 0 < cfg.n_occupied < cfg.n_orb

    def test_scf_cadence_ratio_preserved(self):
        # Paper: 21000 steps / 500 per block = 42 blocks; the scaled
        # runs keep multiple blocks so the reset mechanism is exercised.
        for fast in (True, False):
            cfg = study_config(fast)
            assert cfg.n_qd_steps // cfg.nscf >= 2


class TestReportInternals:
    def test_anchor_order_covers_all_artifacts(self):
        assert set(_ORDER) == {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "figure1", "figure2", "figure3a", "figure3b",
        }

    def test_anchor_extractors_run_on_real_outputs(self):
        from repro.experiments.registry import run_experiment

        outputs = {
            "table6": run_experiment("table6"),
            "figure3a": run_experiment("figure3a"),
        }
        for desc, exp, extract, paper, tol in _ANCHORS:
            measured = float(extract(outputs[exp]))
            assert measured == pytest.approx(paper, rel=tol), desc


class TestPropagateExtraField:
    def test_a_extra_shifts_kinetic_phase(self):
        from repro.dcmesh.laser import LaserPulse
        from repro.dcmesh.mesh import Mesh
        from repro.dcmesh.nlp import NonlocalPropagator
        from repro.dcmesh.propagate import LFDPropagator

        mesh = Mesh((8, 8, 8), (5.0, 5.0, 5.0))
        rng = np.random.default_rng(0)
        psi0 = (rng.standard_normal((mesh.n_grid, 2))
                + 1j * rng.standard_normal((mesh.n_grid, 2))).astype(np.complex128)
        nlp = NonlocalPropagator(psi0, np.zeros((2, 2)), 0.05, mesh)
        prop = LFDPropagator(
            mesh, np.zeros(mesh.n_grid), nlp,
            LaserPulse(amplitude=0.0, duration_fs=0.1), dt=0.05,
            storage_dtype=np.complex128,
        )
        base = prop.step(psi0.copy(), t=100.0)
        shifted = prop.step(psi0.copy(), t=100.0, a_extra=np.array([0, 0, 0.3]))
        assert not np.allclose(base, shifted)
        # Both remain normalised (the extra field is still a phase).
        for out in (base, shifted):
            norms = np.sqrt(np.sum(np.abs(out) ** 2, axis=0) * mesh.dv)
            np.testing.assert_allclose(norms, np.sqrt(np.sum(np.abs(psi0) ** 2, axis=0) * mesh.dv), rtol=1e-10)
