"""Unit tests for :mod:`repro.telemetry.drift`.

Covers the budget envelope math, reference-trajectory lookups, the
monitor's sample/alert semantics (warn at 80 %, breach at 100 %, each
fired once), the telemetry integration (gauges, counters, events) and
the ambient installation lifecycle.
"""

import dataclasses

import numpy as np
import pytest

from repro.telemetry import registry
from repro.telemetry.drift import (
    DRIFT_ENV,
    DriftMonitor,
    ErrorBudget,
    ReferenceTrajectory,
    active_drift_monitor,
    drift_enabled,
    drift_monitoring,
    install_drift_monitor,
    set_drift_enabled,
)

pytestmark = pytest.mark.telemetry


@pytest.fixture(autouse=True)
def _clean():
    prev = registry.disable()
    prev_dm = install_drift_monitor(None)
    set_drift_enabled(None)
    yield
    registry.disable()
    install_drift_monitor(prev_dm)
    set_drift_enabled(None)
    if prev is not None:
        registry.enable(prev)


@dataclasses.dataclass
class FakeRecord:
    step: int
    time_fs: float
    nexc: float
    javg: float
    ekin: float


def _record(step, nexc=1.0, javg=2.0, ekin=3.0):
    return FakeRecord(step=step, time_fs=step * 0.1, nexc=nexc, javg=javg, ekin=ekin)


def _reference(n=8):
    return ReferenceTrajectory.from_records([_record(i) for i in range(n)])


class TestErrorBudget:
    def test_envelope_grows_with_step(self):
        b = ErrorBudget(per_step=1e-3, exponent=1.0, headroom=2.0)
        assert b.envelope(0) == 0.0
        assert b.envelope(1) == pytest.approx(2e-3)
        assert b.envelope(10) == pytest.approx(2e-2)

    def test_random_walk_exponent(self):
        b = ErrorBudget(per_step=1e-3, exponent=0.5)
        assert b.envelope(100) == pytest.approx(1e-2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorBudget(per_step=-1.0)
        with pytest.raises(ValueError):
            ErrorBudget(per_step=1.0, headroom=0.0)

    def test_for_mode_matches_analytic_bound(self):
        from repro.blas.modes import ComputeMode
        from repro.core.error_budget import per_step_state_error

        b = ErrorBudget.for_mode("FLOAT_TO_BF16", dt=0.02, h_nl_norm=3.0)
        expected = per_step_state_error(ComputeMode.FLOAT_TO_BF16, 0.02, 3.0)
        assert b.per_step == pytest.approx(expected)
        assert b.envelope(1) == pytest.approx(expected)

    def test_from_fit(self):
        from repro.core.error_budget import DriftFit

        fit = DriftFit(amplitude=1e-5, exponent=0.7, r_squared=0.99)
        b = ErrorBudget.from_fit(fit, headroom=3.0)
        assert b.envelope(10) == pytest.approx(3.0 * 1e-5 * 10**0.7)


class TestReferenceTrajectory:
    def test_lookup_by_step(self):
        ref = _reference()
        assert ref.value("nexc", 3) == 1.0
        assert ref.value("ekin", 0) == 3.0

    def test_unknown_step_or_observable(self):
        ref = _reference(4)
        assert ref.value("nexc", 99) is None
        assert ref.value("nope", 1) is None

    def test_from_result_uses_columns(self):
        class FakeResult:
            def column(self, name):
                if name == "step":
                    return np.arange(5)
                return np.full(5, {"nexc": 1.0, "javg": 2.0, "ekin": 3.0}[name])

        ref = ReferenceTrajectory.from_result(FakeResult())
        assert len(ref) == 5
        assert ref.value("javg", 4) == 2.0


class TestMonitorSampling:
    def test_without_reference_no_alerts(self):
        dm = DriftMonitor(mode="FLOAT_TO_BF16")
        for i in range(5):
            assert dm.observe(_record(i)) == []
        assert dm.alerts == []
        assert len(dm.samples["nexc"]) == 5
        assert dm.samples["nexc"][0].deviation is None

    def test_zero_deviation_never_alerts(self):
        dm = DriftMonitor(
            reference=_reference(),
            budget=ErrorBudget(per_step=1e-300),  # absurdly tight
        )
        for i in range(8):
            dm.observe(_record(i))  # identical to the reference
        assert dm.alerts == []
        assert dm.samples["nexc"][3].utilization == 0.0

    def test_warn_then_breach_each_fire_once(self):
        budget = ErrorBudget(per_step=0.1, exponent=0.0)  # flat envelope 0.1
        dm = DriftMonitor(reference=_reference(), budget=budget)
        dm.observe(_record(0))
        # relative deviation on nexc (ref 1.0): 0.05 -> 50%: quiet.
        assert dm.observe(_record(1, nexc=1.05)) == []
        # 0.09 -> 90%: warn fires, once, for nexc only.
        (alert,) = dm.observe(_record(2, nexc=1.09))
        assert (alert.level, alert.observable, alert.step) == ("warn", "nexc", 2)
        assert dm.observe(_record(3, nexc=1.085)) == []
        # 0.2 -> 200%: breach fires once; warn does not re-fire.
        (alert,) = dm.observe(_record(4, nexc=1.2))
        assert alert.level == "breach"
        assert dm.observe(_record(5, nexc=1.5)) == []
        assert [a.level for a in dm.alerts] == ["warn", "breach"]
        assert [a.level for a in dm.breaches()] == ["breach"]
        assert [a.level for a in dm.warnings()] == ["warn"]

    def test_each_observable_alerts_independently(self):
        budget = ErrorBudget(per_step=0.01, exponent=0.0)
        dm = DriftMonitor(reference=_reference(), budget=budget)
        dm.observe(_record(1, nexc=2.0))   # nexc blows the budget
        dm.observe(_record(2, ekin=30.0))  # so does ekin, separately
        levels = {(a.observable, a.level) for a in dm.alerts}
        assert ("nexc", "breach") in levels
        assert ("ekin", "breach") in levels
        assert not any(obs == "javg" for obs, _ in levels)

    def test_note_qd_step_counts(self):
        dm = DriftMonitor()
        for t in (0.0, 0.02, 0.04):
            dm.note_qd_step(t)
        assert dm.qd_steps == 3


class TestTelemetryIntegration:
    def test_gauges_counters_events(self):
        t = registry.enable()
        budget = ErrorBudget(per_step=0.1, exponent=0.0)
        dm = DriftMonitor(mode="FLOAT_TO_BF16", reference=_reference(), budget=budget)
        dm.observe(_record(1, nexc=1.2))
        assert t.counter_value("drift.samples", observable="nexc") == 1
        assert t.counter_value("drift.alerts", observable="nexc", level="breach") == 1
        assert t.gauge_value("drift.budget_utilization", observable="nexc") == (
            pytest.approx(2.0)
        )
        names = [e["name"] for e in t.events]
        assert "drift.sample" in names
        assert "drift.alert" in names

    def test_finalize_publishes_summary(self):
        t = registry.enable()
        dm = DriftMonitor(reference=_reference(), budget=ErrorBudget(per_step=1.0))
        for i in range(6):
            dm.observe(_record(i, nexc=1.0 + 1e-3 * i))
        summary = dm.finalize()
        assert summary["observables"]["nexc"]["samples"] == 6
        assert summary["observables"]["nexc"]["max_utilization"] is not None
        assert any(e["name"] == "drift.summary" for e in t.events)
        assert t.gauge_value("drift.max_utilization", observable="nexc") is not None

    def test_monitor_works_without_collector(self):
        dm = DriftMonitor(reference=_reference(), budget=ErrorBudget(per_step=1e-6))
        dm.observe(_record(1, nexc=2.0))
        assert dm.breaches()
        assert dm.finalize()["alerts"]


class TestOfflineViews:
    def test_deviation_series_round_trip(self):
        from repro.core.deviation import DeviationSeries

        dm = DriftMonitor(mode=None, reference=_reference())
        for i in range(5):
            dm.observe(_record(i, nexc=1.0 + 0.01 * i))
        series = dm.deviation_series("nexc")
        assert isinstance(series, DeviationSeries)
        assert series.final_deviation == pytest.approx(0.04)
        with pytest.raises(ValueError):
            DriftMonitor().deviation_series("nexc")

    def test_fit_needs_enough_samples(self):
        dm = DriftMonitor(reference=_reference())
        dm.observe(_record(0))
        assert dm.fit("nexc") is None
        for i in range(1, 7):
            dm.observe(_record(i, nexc=1.0 + 1e-3 * i))
        fit = dm.fit("nexc")
        assert fit is not None and fit.exponent == pytest.approx(1.0, abs=0.2)


class TestAmbient:
    def test_install_and_scope(self):
        assert active_drift_monitor() is None
        with drift_monitoring(reference=_reference()) as dm:
            assert active_drift_monitor() is dm
        assert active_drift_monitor() is None

    def test_enable_override_and_env(self, monkeypatch):
        assert not drift_enabled()
        set_drift_enabled(True)
        assert drift_enabled()
        set_drift_enabled(None)
        monkeypatch.setenv(DRIFT_ENV, "1")
        assert drift_enabled()
        monkeypatch.setenv(DRIFT_ENV, "0")
        assert not drift_enabled()
        # Explicit override beats the environment.
        set_drift_enabled(True)
        assert drift_enabled()

    def test_propagator_ticks_ambient_monitor(self):
        from repro.dcmesh.laser import LaserPulse
        from repro.dcmesh.mesh import Mesh
        from repro.dcmesh.nlp import NonlocalPropagator
        from repro.dcmesh.propagate import LFDPropagator

        mesh = Mesh((4, 4, 4), (8.0, 8.0, 8.0))
        n_orb = 2
        rng = np.random.default_rng(0)
        psi0 = (
            rng.standard_normal((mesh.n_grid, n_orb))
            + 1j * rng.standard_normal((mesh.n_grid, n_orb))
        ).astype(np.complex64)
        h_nl = np.zeros((n_orb, n_orb), dtype=np.complex128)
        nlp = NonlocalPropagator(psi0, h_nl, 0.02, mesh)
        prop = LFDPropagator(
            mesh, np.zeros(mesh.n_grid), nlp, LaserPulse(), 0.02,
            storage_dtype=np.complex64,
        )
        with drift_monitoring() as dm:
            psi = prop.step(psi0.copy(), 0.0)
            prop.step(psi, 0.02)
        assert dm.qd_steps == 2


class TestAlertLatchReset:
    def test_alerts_refire_after_reset(self):
        budget = ErrorBudget(per_step=0.1, exponent=0.0)
        dm = DriftMonitor(reference=_reference(), budget=budget)
        first = dm.observe(_record(1, nexc=1.5))  # util 5: warn + breach
        assert {a.level for a in first} == {"warn", "breach"}
        # Latched: the same breach stays silent...
        assert dm.observe(_record(2, nexc=1.5)) == []
        # ...until an SCF boundary re-arms it.
        assert dm.reset_alert_latches(step=2) == 2
        again = dm.observe(_record(3, nexc=1.5))
        assert {(a.level, a.step) for a in again} == {("warn", 3), ("breach", 3)}
        assert len(dm.breaches()) == 2

    def test_reset_counts_and_summary(self):
        dm = DriftMonitor(reference=_reference(), budget=ErrorBudget(per_step=0.1))
        assert dm.latch_resets == 0
        assert dm.reset_alert_latches() == 0  # nothing latched yet
        assert dm.latch_resets == 1
        assert dm.summary()["latch_resets"] == 1

    def test_reset_emits_telemetry_only_when_latches_cleared(self):
        t = registry.enable()
        budget = ErrorBudget(per_step=0.1, exponent=0.0)
        dm = DriftMonitor(reference=_reference(), budget=budget)
        dm.reset_alert_latches(step=0)  # no latches set: silent
        assert t.counter_value("drift.latch_resets") == 0.0
        dm.observe(_record(1, nexc=1.5))
        dm.reset_alert_latches(step=1)
        assert t.counter_value("drift.latch_resets") == 1.0
        ev = next(e for e in t.events if e.get("name") == "drift.latch_reset")
        assert ev["args"]["cleared"] == 2  # warn + breach latches
        assert ev["args"]["step"] == 1


class TestCurrentUtilization:
    def test_none_without_budgeted_samples(self):
        dm = DriftMonitor(mode="FLOAT_TO_BF16")
        assert dm.current_utilization() is None
        dm.observe(_record(0))  # no reference: deviation is None
        assert dm.current_utilization() is None

    def test_tracks_latest_sample_worst_observable(self):
        budget = ErrorBudget(per_step=0.1, exponent=0.0)
        dm = DriftMonitor(reference=_reference(), budget=budget)
        dm.observe(_record(1, nexc=1.05))  # nexc rel dev 0.05 -> util 0.5
        assert dm.current_utilization() == pytest.approx(0.5)
        dm.observe(_record(2))  # back on the reference
        assert dm.current_utilization() == pytest.approx(0.0)
