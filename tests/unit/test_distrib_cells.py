"""Unit tests for repro.distrib.cells: specs, explosion, cell bodies."""

import json

import pytest

from repro.blas.modes import ComputeMode
from repro.core.blas_sweep import FIG3B_NORBS, SWEEP_MODES, remap_gemm_shape
from repro.distrib import Cell, SweepSpec, run_cell
from repro.distrib.cells import CELL_KINDS
from repro.gpu.gemm_model import GemmModel


class TestCell:
    def test_key_is_stable_and_unique_per_axes(self):
        a = Cell(kind="sweep", mode="FLOAT_TO_BF16", n_orb=1024, seed=0)
        b = Cell(kind="sweep", mode="FLOAT_TO_BF16", n_orb=1024, seed=0)
        c = Cell(kind="sweep", mode="FLOAT_TO_BF16", n_orb=2048, seed=0)
        assert a.key == b.key
        assert a.key != c.key
        assert a.key == "sweep:FLOAT_TO_BF16:1024:0:-"

    def test_json_round_trip(self):
        cell = Cell(kind="study", mode="FLOAT_TO_TF32", seed=3)
        again = Cell.from_json(json.loads(json.dumps(cell.to_json())))
        assert again == cell
        assert again.key == cell.key

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown cell kind"):
            Cell(kind="nope")


class TestSweepSpec:
    def test_sweep_explosion_matches_serial_order(self):
        """Manifest order must be the serial sweep's n_orb-major order."""
        modes = tuple(m.env_value for m in SWEEP_MODES)
        spec = SweepSpec(kind="sweep", modes=modes, norbs=FIG3B_NORBS)
        cells = spec.cells()
        assert len(cells) == len(modes) * len(FIG3B_NORBS)
        expected = [
            (n, m) for n in FIG3B_NORBS for m in modes
        ]
        assert [(c.n_orb, c.mode) for c in cells] == expected

    def test_study_explosion_is_seed_major(self):
        spec = SweepSpec(kind="study", modes=("A", "B"), seeds=(0, 1))
        assert [(c.seed, c.mode) for c in spec.cells()] == [
            (0, "A"), (0, "B"), (1, "A"), (1, "B"),
        ]

    def test_experiment_and_synthetic_explosions(self):
        exp = SweepSpec(kind="experiment", experiments=("table6", "figure1"))
        assert [c.experiment for c in exp.cells()] == ["table6", "figure1"]
        syn = SweepSpec(kind="synthetic", n_cells=3)
        assert [c.seed for c in syn.cells()] == [0, 1, 2]

    def test_keys_unique_across_grid(self):
        spec = SweepSpec(
            kind="sweep", modes=("A", "B"), norbs=(256, 1024), seeds=(0, 1)
        )
        keys = [c.key for c in spec.cells()]
        assert len(set(keys)) == len(keys) == 8

    def test_json_round_trip(self):
        spec = SweepSpec(
            kind="sweep",
            modes=("FLOAT_TO_BF16",),
            norbs=(256,),
            params={"routine": "sgemm"},
        )
        again = SweepSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert again.cells() == spec.cells()
        assert again.params == spec.params

    def test_empty_grids_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(kind="sweep").cells()
        with pytest.raises(ValueError):
            SweepSpec(kind="experiment").cells()
        with pytest.raises(ValueError):
            SweepSpec(kind="synthetic", n_cells=0).cells()

    def test_all_kinds_valid(self):
        for kind in CELL_KINDS:
            assert SweepSpec(kind=kind).kind == kind


class TestCellBodies:
    def test_sweep_cell_matches_device_model(self):
        """The cell body is the serial sweep's evaluation, bit for bit."""
        cell = Cell(kind="sweep", mode="FLOAT_TO_BF16", n_orb=1024, seed=0)
        payload = run_cell(cell, {"routine": "cgemm"})
        m, n, k = remap_gemm_shape(1024)
        model = GemmModel()
        assert payload["m"] == m and payload["n"] == n and payload["k"] == k
        assert payload["fp32_seconds"] == model.seconds(
            "cgemm", m, n, k, ComputeMode.STANDARD
        )
        assert payload["mode_seconds"] == model.seconds(
            "cgemm", m, n, k, ComputeMode.FLOAT_TO_BF16
        )
        # The payload must round-trip through the queue's JSON exactly.
        assert json.loads(json.dumps(payload)) == payload

    def test_synthetic_cell_reports_pid_and_sleep(self):
        import os

        payload = run_cell(Cell(kind="synthetic", seed=5), {"cell_seconds": 0.0})
        assert payload["index"] == 5
        assert payload["pid"] == os.getpid()

    def test_probe_cell_reports_ambient_state(self):
        from repro.blas.modes import set_ozaki_slices

        set_ozaki_slices(2)
        try:
            payload = run_cell(Cell(kind="probe", seed=0), {})
        finally:
            set_ozaki_slices(None)
        assert payload["backend"] == "numpy"
        assert payload["ozaki_slices"] == 2
        assert payload["telemetry"] is False
