"""Unit tests: table/CSV rendering."""

import csv

import pytest

from repro.core.report import format_value, render_table, write_csv


class TestFormatValue:
    def test_floats_compact(self):
        assert format_value(3.14159) == "3.142"
        assert format_value(0.0) == "0"
        assert format_value(1.5e-7) == "1.500e-07"
        assert format_value(2.3e7) == "2.300e+07"

    def test_non_floats_passthrough(self):
        assert format_value(42) == "42"
        assert format_value("abc") == "abc"
        assert format_value(True) == "True"


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(("a", "bb"), [(1, 2), (33, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].split() == ["a", "bb"]
        assert set(lines[2]) <= {"-", " "}
        assert lines[3].split() == ["1", "2"]

    def test_column_alignment(self):
        text = render_table(("x",), [("short",), ("longervalue",)])
        lines = text.splitlines()
        assert len(lines[1]) == len("longervalue")

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row width"):
            render_table(("a", "b"), [(1,)])

    def test_empty_rows_ok(self):
        text = render_table(("a", "b"), [])
        assert "a" in text


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "out.csv"
        write_csv(path, ("a", "b"), [(1, 2.5), ("x", "y")])
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2.5"], ["x", "y"]]

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "out.csv"
        write_csv(path, ("a",), [(1,)])
        assert path.exists()
