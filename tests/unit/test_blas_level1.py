"""Unit tests: level-1 BLAS helpers."""

import numpy as np
import pytest

from repro.blas.level1 import asum, axpy, dotc, dotu, nrm2, scal


class TestAxpy:
    def test_in_place_update(self, rng):
        x = rng.standard_normal(10).astype(np.float32)
        y = rng.standard_normal(10).astype(np.float32)
        expect = 2.0 * x + y
        out = axpy(2.0, x, y)
        assert out is y
        np.testing.assert_allclose(y, expect, rtol=1e-6)

    def test_complex_alpha(self, rng):
        x = (rng.standard_normal(5) + 1j * rng.standard_normal(5)).astype(np.complex64)
        y = np.zeros(5, np.complex64)
        axpy(1j, x, y)
        np.testing.assert_allclose(y, 1j * x, rtol=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            axpy(1.0, np.zeros(3), np.zeros(4))


class TestDots:
    def test_dotc_conjugates_first(self):
        x = np.array([1j], dtype=np.complex64)
        y = np.array([1j], dtype=np.complex64)
        assert dotc(x, y) == pytest.approx(1.0)

    def test_dotu_does_not_conjugate(self):
        x = np.array([1j], dtype=np.complex64)
        y = np.array([1j], dtype=np.complex64)
        assert dotu(x, y) == pytest.approx(-1.0)

    def test_real_dot(self, rng):
        x = rng.standard_normal(20)
        y = rng.standard_normal(20)
        assert dotc(x, y) == pytest.approx(float(x @ y))

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            dotc(np.zeros(3), np.zeros(5))
        with pytest.raises(ValueError):
            dotu(np.zeros(3), np.zeros(5))


class TestNorms:
    def test_nrm2_real(self):
        assert nrm2(np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_nrm2_complex(self):
        assert nrm2(np.array([3.0 + 4.0j], dtype=np.complex64)) == pytest.approx(5.0)

    def test_nrm2_fp64_accumulation_stability(self):
        # Many small fp32 values: naive fp32 accumulation would lose
        # bits; fp64 accumulation keeps 7+ digits.
        x = np.full(10_000_000, 1e-3, dtype=np.float32)
        assert nrm2(x) == pytest.approx(np.sqrt(10_000_000) * 1e-3, rel=1e-6)

    def test_asum_complex_is_l1_of_parts(self):
        x = np.array([3.0 - 4.0j], dtype=np.complex64)
        assert asum(x) == pytest.approx(7.0)

    def test_asum_real(self):
        assert asum(np.array([-1.0, 2.0, -3.0])) == pytest.approx(6.0)


class TestScal:
    def test_in_place_scaling(self, rng):
        x = rng.standard_normal(8).astype(np.float32)
        expect = 3.0 * x
        out = scal(3.0, x)
        assert out is x
        np.testing.assert_allclose(x, expect, rtol=1e-6)
