"""Unit tests: MKL_VERBOSE parsing and aggregation."""

import pytest

from repro.blas.modes import ComputeMode
from repro.blas.verbose import VerboseRecord, format_verbose_line
from repro.profiling.mklverbose import (
    parse_verbose_line,
    parse_verbose_text,
    summarize_calls,
)


def _rec(**over):
    base = dict(
        routine="cgemm", trans_a="C", trans_b="N", m=128, n=896, k=262144,
        mode=ComputeMode.FLOAT_TO_BF16, seconds=4.2e-3, site="remap_occ",
    )
    base.update(over)
    return VerboseRecord(**base)


class TestParsing:
    def test_roundtrip_through_text(self):
        rec = _rec()
        back = parse_verbose_line(format_verbose_line(rec))
        assert (back.routine, back.m, back.n, back.k) == ("cgemm", 128, 896, 262144)
        assert back.mode is ComputeMode.FLOAT_TO_BF16
        assert back.site == "remap_occ"
        assert back.seconds == pytest.approx(4.2e-3, rel=1e-3)

    def test_standard_mode_line(self):
        line = "MKL_VERBOSE SGEMM(N,N,10,20,30) 1.50ms"
        rec = parse_verbose_line(line)
        assert rec.mode is ComputeMode.STANDARD
        assert rec.site == ""

    def test_seconds_units(self):
        assert parse_verbose_line(
            "MKL_VERBOSE SGEMM(N,N,1,1,1) 2.000000s"
        ).seconds == pytest.approx(2.0)
        assert parse_verbose_line(
            "MKL_VERBOSE SGEMM(N,N,1,1,1) 3.00us"
        ).seconds == pytest.approx(3e-6)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="not an MKL_VERBOSE"):
            parse_verbose_line("hello")

    def test_batch_line_roundtrip(self):
        rec = _rec(batch=7)
        line = format_verbose_line(rec)
        assert "CGEMM_BATCH" in line and "batch:7" in line
        back = parse_verbose_line(line)
        assert back.routine == "cgemm"
        assert back.batch == 7
        assert back.flops == rec.flops

    def test_batch_default_is_one(self):
        back = parse_verbose_line("MKL_VERBOSE SGEMM(N,N,4,4,4) 1.00ms")
        assert back.batch == 1

    def test_parse_text_filters_noise(self):
        text = "\n".join(
            [
                "some app output",
                format_verbose_line(_rec()),
                "QD      12 0.1 1 2 3 4 5 6 7",
                format_verbose_line(_rec(routine="sgemm")),
            ]
        )
        recs = parse_verbose_text(text)
        assert [r.routine for r in recs] == ["cgemm", "sgemm"]


class TestSummaries:
    def test_grouping_and_means(self):
        recs = [_rec(seconds=1.0), _rec(seconds=3.0), _rec(m=64, seconds=10.0)]
        summaries = summarize_calls(recs)
        assert len(summaries) == 2
        big = [s for s in summaries if s.m == 128][0]
        assert big.count == 2
        assert big.mean_seconds == pytest.approx(2.0)

    def test_sorted_by_total_time(self):
        recs = [_rec(seconds=1.0), _rec(m=64, seconds=10.0)]
        summaries = summarize_calls(recs)
        assert summaries[0].m == 64

    def test_model_seconds_preferred(self):
        recs = [_rec(seconds=1.0, model_seconds=5.0)]
        (s,) = summarize_calls(recs)
        assert s.total_seconds == pytest.approx(5.0)

    def test_empty(self):
        assert summarize_calls([]) == []
