"""Unit tests: compute-mode vocabulary and selection priority."""

import threading

import pytest

from repro.blas.modes import (
    ComputeMode,
    MKL_COMPUTE_MODE_ENV,
    OZAKI_SLICES_ENV,
    UnknownComputeModeError,
    compute_mode,
    get_compute_mode,
    get_ozaki_slices,
    mode_from_env,
    resolve_mode,
    set_compute_mode,
    set_ozaki_slices,
)
from repro.types import Precision


@pytest.fixture(autouse=True)
def _reset(monkeypatch):
    monkeypatch.delenv(MKL_COMPUTE_MODE_ENV, raising=False)
    set_compute_mode(None)
    yield
    set_compute_mode(None)


class TestModeProperties:
    def test_table2_component_products(self):
        assert ComputeMode.FLOAT_TO_BF16.n_component_products == 1
        assert ComputeMode.FLOAT_TO_BF16X2.n_component_products == 3
        assert ComputeMode.FLOAT_TO_BF16X3.n_component_products == 6
        assert ComputeMode.FLOAT_TO_TF32.n_component_products == 1

    def test_component_precisions(self):
        assert ComputeMode.FLOAT_TO_BF16.component_precision is Precision.BF16
        assert ComputeMode.FLOAT_TO_BF16X3.component_precision is Precision.BF16
        assert ComputeMode.FLOAT_TO_TF32.component_precision is Precision.TF32
        assert ComputeMode.COMPLEX_3M.component_precision is None
        assert ComputeMode.STANDARD.component_precision is None

    def test_low_precision_flags(self):
        lows = {m for m in ComputeMode if m.is_low_precision}
        assert lows == {
            ComputeMode.FLOAT_TO_BF16,
            ComputeMode.FLOAT_TO_BF16X2,
            ComputeMode.FLOAT_TO_BF16X3,
            ComputeMode.FLOAT_TO_TF32,
        }

    def test_only_3m_uses_3m(self):
        assert ComputeMode.COMPLEX_3M.uses_3m
        assert not any(m.uses_3m for m in ComputeMode if m is not ComputeMode.COMPLEX_3M)

    def test_env_values_match_paper_table2(self):
        assert ComputeMode.FLOAT_TO_BF16.env_value == "FLOAT_TO_BF16"
        assert ComputeMode.FLOAT_TO_BF16X2.env_value == "FLOAT_TO_BF16X2"
        assert ComputeMode.FLOAT_TO_BF16X3.env_value == "FLOAT_TO_BF16X3"
        assert ComputeMode.FLOAT_TO_TF32.env_value == "FLOAT_TO_TF32"
        assert ComputeMode.COMPLEX_3M.env_value == "COMPLEX_3M"


class TestParse:
    def test_parse_canonical(self):
        assert ComputeMode.parse("FLOAT_TO_BF16") is ComputeMode.FLOAT_TO_BF16

    def test_parse_case_insensitive(self):
        assert ComputeMode.parse("float_to_tf32") is ComputeMode.FLOAT_TO_TF32

    def test_parse_aliases(self):
        assert ComputeMode.parse("bf16") is ComputeMode.FLOAT_TO_BF16
        assert ComputeMode.parse("3M") is ComputeMode.COMPLEX_3M
        assert ComputeMode.parse("fp32") is ComputeMode.STANDARD

    def test_parse_none_and_empty(self):
        assert ComputeMode.parse(None) is ComputeMode.STANDARD
        assert ComputeMode.parse("") is ComputeMode.STANDARD

    def test_parse_passthrough(self):
        assert ComputeMode.parse(ComputeMode.COMPLEX_3M) is ComputeMode.COMPLEX_3M

    def test_parse_unknown_raises_with_valid_list(self):
        with pytest.raises(UnknownComputeModeError, match="FLOAT_TO_BF16"):
            ComputeMode.parse("FLOAT_TO_FP8")


class TestNewModeParsing:
    """Aliases and normalization for the post-paper split modes."""

    def test_parse_canonical_new_modes(self):
        assert ComputeMode.parse("OZAKI_INT8") is ComputeMode.OZAKI_INT8
        assert ComputeMode.parse("EMULATED_FP64") is ComputeMode.EMULATED_FP64

    def test_parse_case_insensitive(self):
        assert ComputeMode.parse("ozaki_int8") is ComputeMode.OZAKI_INT8
        assert ComputeMode.parse("Emulated_Fp64") is ComputeMode.EMULATED_FP64

    def test_parse_aliases(self):
        assert ComputeMode.parse("ozaki") is ComputeMode.OZAKI_INT8
        assert ComputeMode.parse("int8") is ComputeMode.OZAKI_INT8
        assert ComputeMode.parse("emu_fp64") is ComputeMode.EMULATED_FP64
        assert ComputeMode.parse("efp64") is ComputeMode.EMULATED_FP64

    def test_parse_separator_normalization(self):
        # Hyphens and spaces normalize to underscores before lookup.
        assert ComputeMode.parse("ozaki-int8") is ComputeMode.OZAKI_INT8
        assert ComputeMode.parse("emulated fp64") is ComputeMode.EMULATED_FP64
        assert ComputeMode.parse("float-to-bf16") is ComputeMode.FLOAT_TO_BF16

    def test_unknown_mode_error_lists_all_modes(self):
        with pytest.raises(UnknownComputeModeError) as exc:
            ComputeMode.parse("FLOAT_TO_FP8")
        message = str(exc.value)
        for mode in ComputeMode:
            assert mode.env_value in message

    def test_new_mode_properties(self):
        assert ComputeMode.OZAKI_INT8.uses_int8
        assert not ComputeMode.OZAKI_INT8.uses_fp64_emulation
        assert ComputeMode.EMULATED_FP64.uses_fp64_emulation
        assert not ComputeMode.EMULATED_FP64.uses_int8
        assert ComputeMode.OZAKI_INT8.component_precision is Precision.INT8
        assert ComputeMode.EMULATED_FP64.component_precision is Precision.FP32
        # Neither joins the FLOAT_TO_* family.
        assert not ComputeMode.OZAKI_INT8.is_low_precision
        assert not ComputeMode.EMULATED_FP64.is_low_precision


class TestOzakiSliceConfig:
    @pytest.fixture(autouse=True)
    def _reset_slices(self, monkeypatch):
        monkeypatch.delenv(OZAKI_SLICES_ENV, raising=False)
        set_ozaki_slices(None)
        yield
        set_ozaki_slices(None)

    def test_default_is_three(self):
        assert get_ozaki_slices() == 3
        assert ComputeMode.OZAKI_INT8.n_terms == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(OZAKI_SLICES_ENV, "4")
        assert get_ozaki_slices() == 4
        assert ComputeMode.OZAKI_INT8.n_terms == 4
        assert ComputeMode.OZAKI_INT8.n_component_products == 4 * 5 // 2

    def test_setter_beats_env(self, monkeypatch):
        monkeypatch.setenv(OZAKI_SLICES_ENV, "4")
        set_ozaki_slices(2)
        assert get_ozaki_slices() == 2

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(OZAKI_SLICES_ENV, "zero")
        with pytest.raises(ValueError, match=OZAKI_SLICES_ENV):
            get_ozaki_slices()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            set_ozaki_slices(0)
        with pytest.raises(ValueError):
            set_ozaki_slices(9)

    def test_other_modes_unaffected(self):
        set_ozaki_slices(5)
        assert ComputeMode.FLOAT_TO_BF16X3.n_terms == 3
        assert ComputeMode.EMULATED_FP64.n_terms == 3


class TestSelectionPriority:
    def test_default_is_standard(self):
        assert get_compute_mode() is ComputeMode.STANDARD

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(MKL_COMPUTE_MODE_ENV, "FLOAT_TO_BF16X2")
        assert get_compute_mode() is ComputeMode.FLOAT_TO_BF16X2

    def test_env_empty_string_means_unset(self, monkeypatch):
        monkeypatch.setenv(MKL_COMPUTE_MODE_ENV, "   ")
        assert mode_from_env() is None

    def test_global_beats_env(self, monkeypatch):
        monkeypatch.setenv(MKL_COMPUTE_MODE_ENV, "FLOAT_TO_BF16")
        set_compute_mode("FLOAT_TO_TF32")
        assert get_compute_mode() is ComputeMode.FLOAT_TO_TF32

    def test_context_beats_global(self):
        set_compute_mode("FLOAT_TO_TF32")
        with compute_mode("COMPLEX_3M"):
            assert get_compute_mode() is ComputeMode.COMPLEX_3M
        assert get_compute_mode() is ComputeMode.FLOAT_TO_TF32

    def test_explicit_beats_context(self):
        with compute_mode("COMPLEX_3M"):
            assert resolve_mode("FLOAT_TO_BF16") is ComputeMode.FLOAT_TO_BF16

    def test_contexts_nest(self):
        with compute_mode("FLOAT_TO_BF16"):
            with compute_mode("FLOAT_TO_TF32"):
                assert get_compute_mode() is ComputeMode.FLOAT_TO_TF32
            assert get_compute_mode() is ComputeMode.FLOAT_TO_BF16

    def test_context_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with compute_mode("FLOAT_TO_BF16"):
                raise RuntimeError("boom")
        assert get_compute_mode() is ComputeMode.STANDARD

    def test_context_is_thread_local(self):
        seen = {}

        def worker():
            seen["inner"] = get_compute_mode()

        with compute_mode("FLOAT_TO_BF16"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["inner"] is ComputeMode.STANDARD

    def test_clear_global(self):
        set_compute_mode("COMPLEX_3M")
        set_compute_mode(None)
        assert get_compute_mode() is ComputeMode.STANDARD
