"""Unit tests: Ehrenfest ion dynamics."""

import numpy as np
import pytest

from repro.dcmesh.ions import IonDynamics, ehrenfest_forces, pair_repulsion_forces
from repro.dcmesh.material import build_pto_supercell
from repro.dcmesh.mesh import Mesh


@pytest.fixture(scope="module")
def system():
    material = build_pto_supercell((1, 1, 1), lattice=6.0)
    mesh = Mesh((10, 10, 10), material.box)
    return material, mesh


class TestEhrenfestForces:
    def test_uniform_density_gives_zero_net_force(self, system):
        material, mesh = system
        n = np.full(mesh.n_grid, 0.5)
        f = ehrenfest_forces(material, mesh, n)
        # A constant density exerts no net pull in any direction.
        np.testing.assert_allclose(f, 0.0, atol=1e-8)

    def test_density_blob_attracts_ion(self, system):
        material, mesh = system
        # Electron density concentrated left of the Pb atom along x.
        pb = material.positions[0]
        target = (pb + np.array([-1.0, 0.0, 0.0])) % np.asarray(material.box)
        d = mesh.distances_to(target)
        n = np.exp(-(d**2))
        f = ehrenfest_forces(material, mesh, n)
        # The electron blob attracts the (attractive-well) ion: the
        # energy decreases by moving the well onto the density, so the
        # force on atom 0 points toward the blob (negative x).
        assert f[0, 0] < 0

    def test_shape_validation(self, system):
        material, mesh = system
        with pytest.raises(ValueError, match="flat"):
            ehrenfest_forces(material, mesh, np.zeros((10, 10)))


class TestPairRepulsion:
    def test_newton_third_law(self, system):
        material, mesh = system
        f = pair_repulsion_forces(material, mesh)
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-9)

    def test_two_atoms_repel(self):
        from repro.dcmesh.material import Material

        m = Material(["O", "O"], np.array([[2.0, 3.0, 3.0], [4.0, 3.0, 3.0]]),
                     (6.0, 6.0, 6.0))
        mesh = Mesh((6, 6, 6), m.box)
        f = pair_repulsion_forces(m, mesh)
        assert f[0, 0] < 0 and f[1, 0] > 0


class TestIntegration:
    def test_velocity_verlet_conserves_with_zero_force(self, system):
        material, mesh = system
        ions = IonDynamics(material, mesh, dt=1.0)
        ions.velocities[:] = 0.01
        pos0 = material.positions.copy()
        n = np.full(mesh.n_grid, 0.0)   # no electrons, repulsion only
        # With repulsion the perfect lattice is an equilibrium (symmetry):
        ions.step(n)
        drift = material.positions - (pos0 + 0.01 * 1.0)
        # Forces are symmetric; only the uniform velocity advance remains.
        assert np.abs(drift).max() < 1e-4
        # restore
        material.positions[:] = pos0

    def test_kinetic_energy_and_temperature(self, system):
        material, mesh = system
        ions = IonDynamics(material, mesh, dt=1.0)
        ions.velocities[:] = 0.0
        assert ions.kinetic_energy() == 0.0
        assert ions.temperature() == 0.0
        ions.velocities[0, 0] = 1e-3
        expect = 0.5 * material.masses[0] * 1e-6
        assert ions.kinetic_energy() == pytest.approx(expect)

    def test_positions_stay_in_box(self, system):
        material, mesh = system
        pos0 = material.positions.copy()
        try:
            ions = IonDynamics(material, mesh, dt=50.0)
            ions.velocities[:] = 0.05
            n = np.full(mesh.n_grid, 0.1)
            for _ in range(3):
                ions.step(n)
            assert np.all(material.positions >= 0)
            assert np.all(material.positions < np.asarray(material.box))
        finally:
            material.positions[:] = pos0

    def test_invalid_dt(self, system):
        material, mesh = system
        with pytest.raises(ValueError, match="timestep"):
            IonDynamics(material, mesh, dt=0.0)
