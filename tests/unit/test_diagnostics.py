"""Unit + integration tests: run-health diagnostics."""

import numpy as np
import pytest

from repro.blas.modes import ComputeMode
from repro.blas.verbose import mkl_verbose
from repro.dcmesh.diagnostics import DiagnosticsCollector
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.simulation import Simulation, SimulationConfig
from repro.dcmesh.wavefunction import OrbitalSet


class TestCollector:
    @pytest.fixture()
    def mesh(self):
        return Mesh((6, 6, 6), (4.0, 4.0, 4.0))

    def test_perfect_state_scores_zero(self, mesh):
        orb = OrbitalSet.random(mesh, 4, 2, seed=0)
        coll = DiagnosticsCollector(mesh)
        s = coll.observe(0, orb.psi, etot=-1.0)
        assert s.max_norm_error < 1e-12
        assert s.gram_error < 1e-12

    def test_perturbed_state_detected(self, mesh):
        orb = OrbitalSet.random(mesh, 4, 2, seed=0)
        psi = orb.psi.copy()
        psi[:, 0] *= 1.01
        s = DiagnosticsCollector(mesh).observe(0, psi, etot=0.0)
        assert s.max_norm_error == pytest.approx(0.01, rel=1e-3)

    def test_sampling_cadence(self, mesh):
        orb = OrbitalSet.random(mesh, 4, 2, seed=0)
        coll = DiagnosticsCollector(mesh, every=3)
        for step in range(10):
            coll.observe(step, orb.psi, etot=0.0)
        assert [s.step for s in coll.samples] == [0, 3, 6, 9]

    def test_column_and_empty_error(self, mesh):
        coll = DiagnosticsCollector(mesh)
        with pytest.raises(ValueError, match="no samples"):
            coll.column("etot")
        orb = OrbitalSet.random(mesh, 3, 1, seed=1)
        coll.observe(0, orb.psi, etot=-2.0)
        np.testing.assert_array_equal(coll.column("etot"), [-2.0])

    def test_validation(self, mesh):
        with pytest.raises(ValueError, match="every"):
            DiagnosticsCollector(mesh, every=0)


class TestInSimulation:
    @pytest.fixture(scope="class")
    def run_with_diag(self):
        cfg = SimulationConfig.small_test(
            mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=40, nscf=10
        )
        sim = Simulation(cfg)
        sim.setup()
        coll = DiagnosticsCollector(sim.mesh)
        with mkl_verbose() as log:
            result = sim.run(mode=ComputeMode.FLOAT_TO_BF16, diagnostics=coll)
        return cfg, result, coll, list(log)

    def test_samples_cover_run(self, run_with_diag):
        cfg, _, coll, _ = run_with_diag
        assert len(coll.samples) == cfg.n_qd_steps + 1

    def test_gram_error_grows_within_blocks(self, run_with_diag):
        _, _, coll, _ = run_with_diag
        assert coll.max_gram_error() > coll.samples[1].gram_error

    def test_fp64_reset_visible(self, run_with_diag):
        # The paper's stability mechanism, observed directly: the Gram
        # error drops across SCF block boundaries.
        cfg, _, coll, _ = run_with_diag
        assert coll.reset_visible(cfg.nscf)

    def test_does_not_perturb_blas_structure(self, run_with_diag):
        cfg, _, _, log = run_with_diag
        # Still 6 observation calls + 9 per step: diagnostics are
        # NumPy-side and invisible to MKL_VERBOSE.
        assert len(log) == 6 + 9 * cfg.n_qd_steps

    def test_does_not_change_results(self):
        cfg = SimulationConfig.small_test(
            mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=10, nscf=10
        )
        sim = Simulation(cfg)
        sim.setup()
        plain = sim.run(mode="FLOAT_TO_BF16")
        with_diag = sim.run(
            mode="FLOAT_TO_BF16",
            diagnostics=DiagnosticsCollector(sim.mesh),
        )
        np.testing.assert_array_equal(
            plain.column("nexc"), with_diag.column("nexc")
        )
