"""Unit tests: laser vector-potential pulse."""

import numpy as np
import pytest

from repro.dcmesh.constants import AU_PER_FS
from repro.dcmesh.laser import LaserPulse


class TestEnvelope:
    def test_zero_outside_pulse(self):
        p = LaserPulse(duration_fs=2.0)
        assert p.envelope(-1.0) == 0.0
        assert p.envelope(0.0) == 0.0
        assert p.envelope(p.duration_au) == 0.0
        assert p.envelope(p.duration_au + 5) == 0.0

    def test_peak_at_midpoint(self):
        p = LaserPulse(duration_fs=2.0)
        assert p.envelope(p.duration_au / 2) == pytest.approx(1.0)

    def test_envelope_bounded(self):
        p = LaserPulse(duration_fs=3.0)
        for t in np.linspace(0, p.duration_au, 101):
            assert 0.0 <= p.envelope(float(t)) <= 1.0


class TestVectorPotential:
    def test_polarization_direction(self):
        p = LaserPulse(polarization=(0, 0, 1), omega=0.0)
        a = p.vector_potential(p.duration_au / 2)
        assert a[0] == a[1] == 0.0
        assert a[2] == pytest.approx(p.amplitude)

    def test_polarization_normalised(self):
        p = LaserPulse(polarization=(3, 0, 4))
        assert np.linalg.norm(p.polarization) == pytest.approx(1.0)

    def test_scalar_amplitude_matches_projection(self):
        p = LaserPulse()
        t = 0.4 * p.duration_au
        a = p.vector_potential(t)
        assert p.scalar_amplitude(t) == pytest.approx(float(a @ p.polarization))

    def test_amplitude_bounded_by_peak(self):
        p = LaserPulse(amplitude=0.2)
        for t in np.linspace(0, p.duration_au, 301):
            assert abs(p.scalar_amplitude(float(t))) <= 0.2 + 1e-12


class TestElectricField:
    def test_zero_outside_pulse(self):
        p = LaserPulse(duration_fs=1.0)
        assert np.all(p.electric_field(-0.1) == 0)
        assert np.all(p.electric_field(p.duration_au + 0.1) == 0)

    def test_matches_numeric_derivative(self):
        p = LaserPulse(duration_fs=2.0)
        t = 0.37 * p.duration_au
        h = 1e-6
        numeric = -(p.vector_potential(t + h) - p.vector_potential(t - h)) / (2 * h)
        np.testing.assert_allclose(p.electric_field(t), numeric, atol=1e-6)


class TestValidation:
    def test_duration_au_conversion(self):
        p = LaserPulse(duration_fs=1.0)
        assert p.duration_au == pytest.approx(AU_PER_FS)

    def test_zero_polarization_rejected(self):
        with pytest.raises(ValueError, match="polarization"):
            LaserPulse(polarization=(0, 0, 0))

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            LaserPulse(duration_fs=0.0)
