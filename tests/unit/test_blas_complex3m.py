"""Unit tests: 3M vs 4M complex multiplication."""

import numpy as np
import pytest

from repro.blas.complex3m import gemm_3m, gemm_4m


def _cmat(shape, rng, dtype=np.complex64):
    return (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)).astype(dtype)


class TestCorrectness:
    def test_4m_matches_numpy(self, rng):
        a, b = _cmat((12, 8), rng), _cmat((8, 10), rng)
        np.testing.assert_allclose(gemm_4m(a, b), a @ b, rtol=1e-5)

    def test_3m_matches_numpy(self, rng):
        a, b = _cmat((12, 8), rng), _cmat((8, 10), rng)
        np.testing.assert_allclose(gemm_3m(a, b), a @ b, rtol=1e-4)

    def test_3m_equals_4m_in_exact_arithmetic(self, rng):
        # At FP64 over small integers, 3M and 4M agree exactly.
        a = (rng.integers(-5, 5, (6, 6)) + 1j * rng.integers(-5, 5, (6, 6))).astype(
            np.complex128
        )
        b = (rng.integers(-5, 5, (6, 6)) + 1j * rng.integers(-5, 5, (6, 6))).astype(
            np.complex128
        )
        np.testing.assert_array_equal(gemm_3m(a, b), gemm_4m(a, b))

    def test_3m_has_different_rounding_than_4m(self, rng):
        a, b = _cmat((32, 32), rng), _cmat((32, 32), rng)
        assert not np.array_equal(gemm_3m(a, b), gemm_4m(a, b))

    def test_complex128_supported(self, rng):
        a, b = _cmat((8, 8), rng, np.complex128), _cmat((8, 8), rng, np.complex128)
        out = gemm_3m(a, b)
        assert out.dtype == np.complex128
        np.testing.assert_allclose(out, a @ b, rtol=1e-12)

    def test_3m_cancellation_behaviour_differs(self):
        # Constructed case: imaginary part comes from cancelling large
        # terms; 3M's t3 - t1 - t2 loses more bits than 4M's direct sum.
        # (The paper: "different numeric cancellation behavior".)
        a = np.array([[1e4 + 1e-3j]], dtype=np.complex64)
        b = np.array([[1e4 - 1e-3j]], dtype=np.complex64)
        exact = (a.astype(np.complex128) @ b.astype(np.complex128))[0, 0]
        err3 = abs(gemm_3m(a, b)[0, 0].imag - exact.imag)
        err4 = abs(gemm_4m(a, b)[0, 0].imag - exact.imag)
        assert err3 >= err4

    def test_custom_real_gemm_is_used(self, rng):
        calls = []

        def spy(x, y):
            calls.append((x.shape, y.shape))
            return x @ y

        a, b = _cmat((4, 6), rng), _cmat((6, 5), rng)
        gemm_3m(a, b, real_gemm=spy)
        assert len(calls) == 3
        gemm_4m(a, b, real_gemm=spy)
        assert len(calls) == 3 + 4

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="inner dimensions"):
            gemm_3m(_cmat((3, 4), rng), _cmat((5, 3), rng))

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            gemm_4m(np.zeros(3, np.complex64), np.zeros((3, 3), np.complex64))

    def test_real_inputs_promote(self, rng):
        a = rng.standard_normal((4, 4)).astype(np.float32)
        out = gemm_3m(a, a)
        assert out.dtype == np.complex64
        np.testing.assert_allclose(out.real, a @ a, rtol=1e-5)
        np.testing.assert_allclose(out.imag, 0, atol=1e-5)
