"""Unit tests: hardware-counter-style utilisation summaries."""

import pytest

from repro.blas.modes import ComputeMode
from repro.blas.verbose import VerboseRecord
from repro.gpu.counters import (
    KernelClassCounters,
    summarize_utilization,
    utilization_table,
)


def _rec(routine="cgemm", site="nlp_prop", mode=ComputeMode.STANDARD,
         m=64, n=64, k=64, model_seconds=1e-3):
    return VerboseRecord(
        routine=routine, trans_a="N", trans_b="N", m=m, n=n, k=k,
        mode=mode, seconds=99.0, model_seconds=model_seconds, site=site,
    )


class TestSummaries:
    def test_grouping(self):
        recs = [_rec(), _rec(), _rec(site="remap_occ")]
        out = summarize_utilization(recs)
        assert len(out) == 2
        nlp = next(c for c in out if c.site == "nlp_prop")
        assert nlp.calls == 2

    def test_achieved_flops(self):
        recs = [_rec(m=10, n=10, k=10, model_seconds=1.0)]
        (c,) = summarize_utilization(recs)
        assert c.achieved_flops == pytest.approx(8 * 1000)

    def test_uses_model_time_not_wall(self):
        recs = [_rec(model_seconds=2.0)]
        (c,) = summarize_utilization(recs)
        assert c.total_seconds == 2.0  # not the wall-time 99.0

    def test_sorted_by_time(self):
        recs = [_rec(model_seconds=1e-4), _rec(site="x", model_seconds=5.0)]
        out = summarize_utilization(recs)
        assert out[0].site == "x"

    def test_utilization_vs_peak(self):
        c = KernelClassCounters("cgemm", "s", "STANDARD", 1, 1.0, 13e12)
        assert c.utilization_vs(26e12) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            c.utilization_vs(0.0)


class TestTable:
    def test_rows_shape(self):
        rows = utilization_table([_rec()])
        assert len(rows) == 1
        site, routine, mode, calls, secs, tflops, frac = rows[0]
        assert routine == "cgemm" and calls == 1
        assert 0 < frac < 1

    def test_from_real_run(self, tiny_sim, clean_mode_env):
        from repro.blas.gemm import use_device
        from repro.blas.verbose import mkl_verbose
        from repro.gpu import Device

        with use_device(Device()):
            with mkl_verbose() as log:
                tiny_sim.run(mode=ComputeMode.STANDARD, n_steps=3)
        rows = utilization_table(log)
        sites = {r[0] for r in rows}
        assert {"nlp_prop", "calc_energy", "remap_occ"} <= sites
        # Every class runs below the FP32 peak.
        assert all(r[6] < 1.0 for r in rows)
