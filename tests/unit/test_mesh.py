"""Unit tests: periodic mesh and spectral transforms."""

import numpy as np
import pytest

from repro.dcmesh.mesh import Mesh


@pytest.fixture(scope="module")
def mesh():
    return Mesh((8, 8, 8), (4.0, 4.0, 4.0))


class TestConstruction:
    def test_basic_geometry(self, mesh):
        assert mesh.n_grid == 512
        assert mesh.volume == pytest.approx(64.0)
        assert mesh.dv == pytest.approx(64.0 / 512)
        assert mesh.spacing == (0.5, 0.5, 0.5)

    def test_anisotropic_box(self):
        m = Mesh((4, 8, 16), (1.0, 2.0, 8.0))
        assert m.spacing == (0.25, 0.25, 0.5)
        assert m.n_grid == 512

    def test_coords_cover_box(self, mesh):
        assert mesh.coords.shape == (512, 3)
        assert mesh.coords.min() == 0.0
        assert mesh.coords.max() == pytest.approx(3.5)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            Mesh((8, 8), (1, 1))
        with pytest.raises(ValueError):
            Mesh((1, 8, 8), (1, 1, 1))
        with pytest.raises(ValueError):
            Mesh((8, 8, 8), (0, 1, 1))


class TestFFT:
    def test_roundtrip_identity(self, mesh, rng):
        psi = (rng.standard_normal((512, 3)) + 1j * rng.standard_normal((512, 3))).astype(
            np.complex128
        )
        np.testing.assert_allclose(mesh.ifft(mesh.fft(psi)), psi, atol=1e-12)

    def test_preserves_single_precision(self, mesh, rng):
        psi = rng.standard_normal((512, 2)).astype(np.complex64)
        assert mesh.fft(psi).dtype == np.complex64
        assert mesh.ifft(psi).dtype == np.complex64

    def test_plane_wave_is_delta_in_g_space(self, mesh):
        # exp(i k1 x) should transform to a single nonzero coefficient.
        k1 = 2 * np.pi / 4.0  # first harmonic of the box
        psi = np.exp(1j * k1 * mesh.coords[:, 0])[:, None]
        psig = mesh.fft(psi)
        mags = np.abs(psig[:, 0])
        assert np.count_nonzero(mags > 1e-8 * mags.max()) == 1

    def test_laplacian_eigenvalue(self, mesh):
        # -k^2 for a plane wave, evaluated spectrally.
        k1 = 2 * np.pi / 4.0
        psi = np.exp(1j * k1 * mesh.coords[:, 1])[:, None]
        lap = mesh.ifft(mesh.fft(psi) * (-mesh.k2[:, None]))
        np.testing.assert_allclose(lap, -(k1**2) * psi, atol=1e-10)

    def test_wrong_leading_axis(self, mesh):
        with pytest.raises(ValueError, match="N_grid"):
            mesh.fft(np.zeros((100, 2), np.complex128))


class TestIntegrals:
    def test_integrate_constant(self, mesh):
        f = np.ones(mesh.n_grid)
        assert mesh.integrate(f) == pytest.approx(mesh.volume)

    def test_braket_norm(self, mesh):
        psi = np.full(mesh.n_grid, 1.0 / np.sqrt(mesh.volume), dtype=np.complex128)
        assert mesh.braket(psi, psi) == pytest.approx(1.0)

    def test_parseval(self, mesh, rng):
        psi = (rng.standard_normal(512) + 1j * rng.standard_normal(512)).astype(np.complex128)
        real_norm = np.sum(np.abs(psi) ** 2) * mesh.dv
        g_norm = np.sum(np.abs(mesh.fft(psi[:, None])) ** 2) * mesh.dv / mesh.n_grid
        assert g_norm == pytest.approx(real_norm)


class TestPeriodicGeometry:
    def test_minimum_image_wraps(self, mesh):
        d = mesh.minimum_image(np.array([[3.9, 0.0, 0.0]]))
        assert d[0, 0] == pytest.approx(-0.1)

    def test_minimum_image_inside_half_box(self, mesh, rng):
        d = mesh.minimum_image(rng.uniform(-20, 20, (100, 3)))
        assert np.all(np.abs(d) <= 2.0 + 1e-12)

    def test_distances_periodic(self, mesh):
        # Point at the far corner is close to the origin periodically.
        d = mesh.distances_to(np.array([3.9, 3.9, 3.9]))
        origin_idx = 0
        assert d[origin_idx] == pytest.approx(np.sqrt(3 * 0.1**2), rel=1e-6)
