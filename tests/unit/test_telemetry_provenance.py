"""Unit tests for :mod:`repro.telemetry.provenance`.

Covers the stable call-site ID derivation (pow2 shape classes), the
interning registry, the thread-local ``site_scope`` propagation, and
the end-to-end wiring: a GEMM under an installed collector produces
``blas.site.*`` counters and kernel counters labelled with its ID.
"""

import threading

import numpy as np
import pytest

from repro.telemetry import registry
from repro.telemetry.provenance import (
    CallSite,
    all_sites,
    call_site_id,
    clear_sites,
    current_site_id,
    lookup_site,
    register_call_site,
    shape_class,
    site_scope,
)

pytestmark = pytest.mark.telemetry


@pytest.fixture(autouse=True)
def _clean():
    clear_sites()
    prev = registry.disable()
    yield
    registry.disable()
    clear_sites()
    if prev is not None:
        registry.enable(prev)


class TestShapeClass:
    @pytest.mark.parametrize(
        "dims,expected",
        [
            ((1, 1, 1), "1x1x1"),
            ((2, 2, 2), "2x2x2"),
            ((3, 5, 9), "4x8x16"),
            ((16, 16, 65536), "16x16x65536"),
            ((17, 16, 1000), "32x16x1024"),
        ],
    )
    def test_pow2_buckets(self, dims, expected):
        assert shape_class(*dims) == expected

    def test_batch_suffix_only_when_batched(self):
        assert shape_class(4, 4, 4, batch=1) == "4x4x4"
        assert shape_class(4, 4, 4, batch=6) == "4x4x4b8"

    def test_stable_within_bucket(self):
        # The whole point: small lattice-size changes keep the ID.
        assert shape_class(24, 24, 1728) == shape_class(20, 17, 1100)


class TestCallSiteId:
    def test_format(self):
        sid = call_site_id("nlp_prop", "gemm", "cgemm", 24, 24, 1728)
        assert sid == "nlp_prop@gemm/cgemm/32x32x2048"

    def test_unlabeled_anchor_renders_dash(self):
        assert call_site_id("", "gemm", "sgemm", 2, 2, 2).startswith("-@")

    def test_deterministic(self):
        args = ("calc_energy", "gemm_batch", "cgemm", 8, 8, 512, 4)
        assert call_site_id(*args) == call_site_id(*args)


class TestRegistry:
    def test_register_interns_first_seen_dims(self):
        sid = register_call_site("nlp_prop", "gemm", "cgemm", 24, 24, 1728)
        site = lookup_site(sid)
        assert isinstance(site, CallSite)
        assert (site.m, site.n, site.k) == (24, 24, 1728)
        # Same bucket, different exact dims: no overwrite.
        assert register_call_site("nlp_prop", "gemm", "cgemm", 20, 20, 1500) == sid
        assert lookup_site(sid).k == 1728

    def test_all_sites_sorted(self):
        register_call_site("b", "gemm", "sgemm", 2, 2, 2)
        register_call_site("a", "gemm", "sgemm", 2, 2, 2)
        ids = [s.site_id for s in all_sites()]
        assert ids == sorted(ids)

    def test_clear(self):
        register_call_site("x", "gemm", "sgemm", 2, 2, 2)
        clear_sites()
        assert all_sites() == []


class TestSiteScope:
    def test_default_is_empty(self):
        assert current_site_id() == ""

    def test_scope_sets_and_restores(self):
        with site_scope("outer"):
            assert current_site_id() == "outer"
            with site_scope("inner"):
                assert current_site_id() == "inner"
            assert current_site_id() == "outer"
        assert current_site_id() == ""

    def test_thread_isolation(self):
        seen = {}

        def worker():
            seen["worker"] = current_site_id()

        with site_scope("main-thread"):
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        assert seen["worker"] == ""


class TestGemmWiring:
    def test_gemm_registers_site_and_counts(self):
        from repro.blas.gemm import call_site, cgemm

        t = registry.enable()
        rng = np.random.default_rng(0)
        a = (rng.standard_normal((4, 4)) + 0j).astype(np.complex64)
        with call_site("nlp_prop"):
            cgemm(a, a)
        sid = "nlp_prop@gemm/cgemm/4x4x4"
        assert lookup_site(sid) is not None
        assert t.counter_value("blas.site.calls", site_id=sid) == 1
        assert t.counter_value("blas.site.flops", site_id=sid) == 8 * 4 * 4 * 4
        # The unified event stream carries the ID too.
        (rec,) = t.verbose_records()
        assert rec.site_id == sid

    def test_gemm_batch_site_carries_batch_class(self):
        from repro.blas.batch import gemm_batch

        t = registry.enable()
        rng = np.random.default_rng(0)
        a = rng.standard_normal((3, 2, 2)).astype(np.float32)
        gemm_batch(a, a)
        (sid,) = [s.site_id for s in all_sites()]
        assert sid == "-@gemm_batch/sgemm/2x2x2b4"
        assert t.counter_value("blas.site.calls", site_id=sid) == 1

    def test_disabled_path_registers_nothing(self):
        from repro.blas.gemm import cgemm

        a = np.eye(4, dtype=np.complex64)
        cgemm(a, a)
        assert all_sites() == []

    def test_kernel_counters_carry_site_label(self):
        from repro.blas.gemm import call_site, cgemm

        t = registry.enable()
        rng = np.random.default_rng(1)
        a = (rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))).astype(
            np.complex64
        )
        with call_site("calc_energy"):
            cgemm(a, a, mode="FLOAT_TO_BF16")
        sid = "calc_energy@gemm/cgemm/8x8x8"
        # The split engine ran inside the site scope: its counter is
        # attributed to the triggering BLAS call.
        assert t.counter_value(
            "blas.split_gemm_fused", precision="BF16", n_terms=1, site=sid,
            backend="numpy"
        ) >= 1
