"""Unit tests: lfd.in namelist."""

import pytest

from repro.dcmesh.io.lfdinput import parse_lfd_input, write_lfd_input
from repro.dcmesh.laser import LaserPulse
from repro.types import Precision


def _write(tmp_path, text):
    p = tmp_path / "lfd.in"
    p.write_text(text)
    return p


class TestParse:
    def test_full_file(self, tmp_path):
        text = """
        dt = 0.02
        nsteps = 21000
        nscf = 500
        storage = fp32
        move_ions = true
        seed = 7
        laser_amplitude = 0.15
        laser_omega = 0.057
        laser_duration_fs = 8.0
        laser_polarization = 0 0 1
        """
        inp = parse_lfd_input(_write(tmp_path, text))
        assert inp["dt"] == 0.02
        assert inp["nsteps"] == 21000
        assert inp["nscf"] == 500
        assert inp["storage"] is Precision.FP32
        assert inp["move_ions"] is True
        assert inp["laser"].amplitude == 0.15

    def test_defaults_match_table3(self, tmp_path):
        inp = parse_lfd_input(_write(tmp_path, ""))
        assert inp["dt"] == 0.02
        assert inp["nsteps"] == 21000
        assert inp["nscf"] == 500

    def test_fp64_storage(self, tmp_path):
        inp = parse_lfd_input(_write(tmp_path, "storage = fp64\n"))
        assert inp["storage"] is Precision.FP64

    def test_unknown_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown keys"):
            parse_lfd_input(_write(tmp_path, "dd = 1\n"))

    def test_missing_equals_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="key = value"):
            parse_lfd_input(_write(tmp_path, "dt 0.02\n"))

    def test_bad_boolean(self, tmp_path):
        with pytest.raises(ValueError, match="boolean"):
            parse_lfd_input(_write(tmp_path, "move_ions = maybe\n"))

    def test_comments_ignored(self, tmp_path):
        inp = parse_lfd_input(_write(tmp_path, "# a comment\ndt = 0.04 # inline\n"))
        assert inp["dt"] == 0.04


class TestRoundTrip:
    def test_write_then_parse(self, tmp_path):
        p = tmp_path / "lfd.in"
        original = dict(
            dt=0.04, nsteps=100, nscf=50, storage=Precision.FP32,
            move_ions=False, seed=3,
            laser=LaserPulse(amplitude=0.2, omega=0.06, duration_fs=2.0,
                             polarization=(1, 0, 0)),
        )
        write_lfd_input(p, original)
        back = parse_lfd_input(p)
        for key in ("dt", "nsteps", "nscf", "storage", "move_ions", "seed"):
            assert back[key] == original[key], key
        assert back["laser"] == original["laser"]
