"""Unit tests: the FP64 QXMD/SCF solver."""

import numpy as np
import pytest

from repro.dcmesh.material import build_pto_supercell
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.projectors import build_projectors
from repro.dcmesh.scf import SCFParams, SCFSolver
from repro.dcmesh.wavefunction import OrbitalSet


@pytest.fixture(scope="module")
def solver():
    material = build_pto_supercell((1, 1, 1), lattice=6.5)
    mesh = Mesh((10, 10, 10), material.box)
    proj = build_projectors(material, mesh)
    return SCFSolver(mesh, material, proj, SCFParams())


@pytest.fixture(scope="module")
def ground(solver):
    return solver.solve(n_orb=20, seed=0)


class TestPotentials:
    def test_hartree_solves_poisson(self, solver):
        mesh = solver.mesh
        # A smooth neutral-ish density: check -lap(V_H)/(4 pi) == n - n_mean.
        n = np.exp(-mesh.k2)  # arbitrary smooth function of |k|... in real space:
        n = np.abs(mesh.ifft(np.exp(-mesh.k2[:, None]))[:, 0].real)
        vh = solver.hartree_potential(n)
        lap_vh = mesh.ifft(mesh.fft(vh.astype(np.complex128)[:, None])
                           * (-mesh.k2[:, None]))[:, 0].real
        lhs = -lap_vh / (4 * np.pi)
        rhs = n - n.mean()  # G=0 removed
        np.testing.assert_allclose(lhs, rhs, atol=1e-10 * np.abs(rhs).max())

    def test_hartree_of_zero_density(self, solver):
        vh = solver.hartree_potential(np.zeros(solver.mesh.n_grid))
        np.testing.assert_allclose(vh, 0.0, atol=1e-14)

    def test_xc_negative_and_monotone(self, solver):
        n = np.array([0.0, 0.1, 1.0, 10.0])
        vx = solver.xc_potential(n)
        assert vx[0] == 0.0
        assert np.all(np.diff(vx) < 0)

    def test_xc_clips_negative_density(self, solver):
        vx = solver.xc_potential(np.array([-1e-3]))
        assert vx[0] == 0.0

    def test_effective_potential_composition(self, solver):
        n = np.full(solver.mesh.n_grid, 0.1)
        v = solver.effective_potential(n)
        assert v.shape == (solver.mesh.n_grid,)
        assert np.all(np.isfinite(v))


class TestSolve:
    def test_converges(self, ground):
        assert ground.converged
        assert ground.n_iter <= 150

    def test_orbitals_orthonormal(self, ground):
        s = ground.orbitals.overlap()
        np.testing.assert_allclose(s, np.eye(20), atol=1e-10)

    def test_eigenvalues_sorted(self, ground):
        assert np.all(np.diff(ground.eigenvalues) >= -1e-10)

    def test_band_energy_matches_occupied_eigenvalues(self, ground):
        expect = float(ground.eigenvalues @ ground.orbitals.occupations)
        assert ground.band_energy == pytest.approx(expect, rel=1e-10)

    def test_energy_history_settles(self, ground):
        # Band energy is not variational under density mixing, but the
        # iteration-to-iteration change must shrink by orders of
        # magnitude as the density converges.
        h = np.array(ground.history)
        deltas = np.abs(np.diff(h))
        assert deltas[-1] < 1e-3 * deltas[:5].max()

    def test_density_integrates_to_electrons(self, ground, solver):
        total = np.sum(ground.density) * solver.mesh.dv
        assert total == pytest.approx(32.0, rel=1e-6)

    def test_deterministic(self, solver, ground):
        again = solver.solve(n_orb=20, seed=0)
        np.testing.assert_array_equal(again.orbitals.psi, ground.orbitals.psi)

    def test_seed_changes_start_not_physics(self, solver, ground):
        other = solver.solve(n_orb=20, seed=42)
        # Same ground-state energy from a different random start.
        assert other.band_energy == pytest.approx(ground.band_energy, rel=1e-5)

    def test_too_few_orbitals_rejected(self, solver):
        with pytest.raises(ValueError, match="n_orb"):
            solver.solve(n_orb=10)  # 16 occupied needed

    def test_fp64_throughout(self, ground):
        assert ground.orbitals.psi.dtype == np.complex128
        assert ground.v_eff.dtype == np.float64


class TestUpdate:
    def test_update_preserves_excitation(self, solver, ground):
        # Mix some virtual character into an occupied orbital: the
        # block-boundary update must NOT project it away.
        orb = ground.orbitals.copy()
        psi = orb.psi.copy()
        psi[:, 0] = (psi[:, 0] + 0.3 * psi[:, 19]) / np.sqrt(1.09)
        excited = OrbitalSet(psi, orb.occupations, solver.mesh)
        updated = solver.update(excited)
        # Orthonormal again...
        np.testing.assert_allclose(updated.orbitals.overlap(), np.eye(20), atol=1e-10)
        # ...but still overlapping the injected virtual state.
        ov = abs(solver.mesh.braket(updated.orbitals.psi[:, 0], ground.orbitals.psi[:, 19]))
        assert ov > 0.1

    def test_update_accepts_fp32_storage(self, solver, ground):
        from repro.types import Precision

        orb32 = ground.orbitals.astype(Precision.FP32)
        updated = solver.update(orb32)
        assert updated.orbitals.psi.dtype == np.complex128

    def test_refresh_ionic_tracks_positions(self, solver):
        v_before = solver.v_ion.copy()
        solver.material.positions = solver.material.positions + 0.05
        try:
            solver.refresh_ionic()
            assert not np.allclose(solver.v_ion, v_before)
        finally:
            solver.material.positions = solver.material.positions - 0.05
            solver.refresh_ionic()
