"""Tests for ``scripts/make_claim_coverage.py``.

The script is the CI gate for claims traceability; these tests pin the
test-reference validator, the markdown artifact, and the exit codes.
"""

import importlib.util
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "make_claim_coverage.py"
_spec = importlib.util.spec_from_file_location("make_claim_coverage", _SCRIPT)
coverage = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(coverage)


class TestTestRefValidation:
    def test_plain_path_resolves(self):
        ok, why = coverage.check_test_ref("tests/unit/test_claim_coverage.py")
        assert ok, why

    def test_path_with_class_node(self):
        ok, why = coverage.check_test_ref(
            "tests/unit/test_claim_coverage.py::TestTestRefValidation"
        )
        assert ok, why

    def test_missing_file_flagged(self):
        ok, why = coverage.check_test_ref("tests/unit/test_does_not_exist.py")
        assert not ok and "missing test file" in why

    def test_missing_node_flagged(self):
        ok, why = coverage.check_test_ref(
            "tests/unit/test_claim_coverage.py::TestRenamedAway"
        )
        assert not ok and "TestRenamedAway" in why

    def test_multi_ref_field_splits(self):
        refs = coverage.split_test_refs(
            "tests/unit/a.py::TestA / tests/integration/b.py"
        )
        assert refs == ["tests/unit/a.py::TestA", "tests/integration/b.py"]

    def test_every_registered_claim_ref_resolves(self):
        """The real matrix must never reference a renamed test."""
        from repro.experiments.claims import CLAIMS

        for claim in CLAIMS:
            for ref in coverage.split_test_refs(claim.test):
                ok, why = coverage.check_test_ref(ref)
                assert ok, f"{claim.claim_id}: {why}"


class TestRendering:
    ROWS = [
        ("some-claim", "§V", "repro.blas", "`tests/unit/x.py`", "PASS"),
        ("bad-claim", "§V", "repro.gpu", "`tests/unit/y.py` **(missing)**", "FAIL"),
    ]

    def test_markdown_contains_rows_and_counts(self):
        text = coverage.render_markdown(self.ROWS)
        assert "| `some-claim` |" in text
        assert "**FAIL**" in text
        assert "1/2 checkers passing." in text


class TestMain:
    def test_writes_artifact_and_exits_zero(self, tmp_path):
        out = tmp_path / "claim_coverage.md"
        assert coverage.main(["--output", str(out)]) == 0
        text = out.read_text()
        assert "# Claim coverage" in text
        # The new-mode rows ride along with the paper's.
        assert "`ozaki-slice-bound`" in text
        assert "`emulated-fp64-class`" in text
        assert "`newmode-error-ordering`" in text

    def test_violations_gate(self, tmp_path, monkeypatch):
        out = tmp_path / "claim_coverage.md"
        monkeypatch.setattr(
            coverage, "build_matrix",
            lambda: ([("c", "s", "m", "`t`", "FAIL")], ["c: live checker FAILED"]),
        )
        assert coverage.main(["--output", str(out)]) == 1
        assert coverage.main(["--output", str(out), "--report-only"]) == 0
