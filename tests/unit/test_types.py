"""Unit tests: precision vocabulary."""

import numpy as np
import pytest

from repro.types import (
    EXPONENT_BITS,
    MANTISSA_BITS,
    Precision,
    complex_dtype,
    real_dtype,
)


class TestFormatTable:
    def test_table4_mantissa_bits(self):
        assert MANTISSA_BITS[Precision.FP64] == 52
        assert MANTISSA_BITS[Precision.FP32] == 23
        assert MANTISSA_BITS[Precision.TF32] == 10
        assert MANTISSA_BITS[Precision.BF16] == 7

    def test_table4_exponent_bits(self):
        assert EXPONENT_BITS[Precision.FP64] == 11
        assert EXPONENT_BITS[Precision.FP32] == 8
        assert EXPONENT_BITS[Precision.TF32] == 8
        assert EXPONENT_BITS[Precision.BF16] == 8

    def test_tf32_is_bf16_exponent_fp16_mantissa(self):
        # The paper's observation about TF32's hybrid layout.
        assert EXPONENT_BITS[Precision.TF32] == EXPONENT_BITS[Precision.BF16]
        assert MANTISSA_BITS[Precision.TF32] == MANTISSA_BITS[Precision.FP16]


class TestDtypes:
    def test_native_flags(self):
        assert Precision.FP64.is_native
        assert Precision.FP32.is_native
        assert not Precision.BF16.is_native
        assert not Precision.TF32.is_native

    def test_real_storage(self):
        assert real_dtype(Precision.FP64) == np.float64
        assert real_dtype(Precision.FP32) == np.float32
        # Emulated formats live in FP32 carriers.
        assert real_dtype(Precision.BF16) == np.float32
        assert real_dtype(Precision.TF32) == np.float32
        assert real_dtype(Precision.FP16) == np.float16

    def test_complex_storage(self):
        assert complex_dtype(Precision.FP64) == np.complex128
        assert complex_dtype(Precision.FP32) == np.complex64
        assert complex_dtype(Precision.BF16) == np.complex64

    def test_int8_has_no_float_dtype(self):
        with pytest.raises(ValueError):
            real_dtype(Precision.INT8)
        with pytest.raises(ValueError):
            complex_dtype(Precision.INT8)
