"""Unit tests: run-log writer/reader."""

import pytest

from repro.dcmesh.io.output import read_run_log, write_run_log
from repro.dcmesh.observables import QDRecord


def _records(n=5):
    return [
        QDRecord(step=i, time_fs=i * 0.001, ekin=50.0 + i, epot=-100.0,
                 etot=-50.0 + i, eexc=float(i), nexc=0.1 * i, aext=0.0,
                 javg=1e-5 * i)
        for i in range(n)
    ]


class TestRoundTrip:
    def test_records_survive(self, tmp_path):
        recs = _records()
        p = tmp_path / "run.log"
        write_run_log(p, recs)
        assert read_run_log(p) == recs

    def test_header_ignored_on_read(self, tmp_path):
        p = tmp_path / "run.log"
        write_run_log(p, _records(2), header="mode: BF16\nsystem: 40-atom")
        text = p.read_text()
        assert text.startswith("# mode: BF16")
        assert len(read_run_log(p)) == 2

    def test_empty_log(self, tmp_path):
        p = tmp_path / "run.log"
        write_run_log(p, [])
        assert read_run_log(p) == []

    def test_corrupt_line_reports_position(self, tmp_path):
        p = tmp_path / "run.log"
        p.write_text("QD 0 0.0 1 2 3 4 5 6 7\nnot a record\n")
        with pytest.raises(ValueError, match=":2:"):
            read_run_log(p)
