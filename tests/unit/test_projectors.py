"""Unit tests: separable nonlocal projectors."""

import numpy as np
import pytest

from repro.dcmesh.material import build_pto_supercell
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.projectors import ProjectorSet, build_projectors


@pytest.fixture(scope="module")
def system():
    material = build_pto_supercell((1, 1, 1), lattice=6.0)
    mesh = Mesh((10, 10, 10), material.box)
    return material, mesh, build_projectors(material, mesh)


class TestConstruction:
    def test_one_projector_per_atom(self, system):
        material, mesh, proj = system
        assert proj.n_proj == material.n_atoms
        assert proj.p.shape == (mesh.n_grid, material.n_atoms)

    def test_columns_normalised(self, system):
        _, mesh, proj = system
        norms = np.sum(proj.p**2, axis=0) * mesh.dv
        np.testing.assert_allclose(norms, 1.0, rtol=1e-12)

    def test_couplings_match_species(self, system):
        material, _, proj = system
        expect = [spec.nl_strength for spec in material.specs]
        np.testing.assert_allclose(proj.d, expect)

    def test_shape_validation(self, system):
        _, mesh, _ = system
        with pytest.raises(ValueError, match="couplings"):
            ProjectorSet(p=np.zeros((mesh.n_grid, 2)), d=np.zeros(3), mesh=mesh)


class TestApplication:
    def test_apply_is_hermitian(self, system, rng):
        _, mesh, proj = system
        x = (rng.standard_normal((mesh.n_grid, 2))
             + 1j * rng.standard_normal((mesh.n_grid, 2)))
        y = (rng.standard_normal((mesh.n_grid, 2))
             + 1j * rng.standard_normal((mesh.n_grid, 2)))
        lhs = np.vdot(x, proj.apply(y)) * mesh.dv
        rhs = np.vdot(proj.apply(x), y) * mesh.dv
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_apply_separable_rank(self, system, rng):
        # V_nl has rank <= n_proj: applying to a vector orthogonal to
        # every projector gives ~0.
        _, mesh, proj = system
        x = rng.standard_normal(mesh.n_grid)
        # Project out all projector components.
        q, _ = np.linalg.qr(proj.p)
        x = x - q @ (q.T @ x)
        out = proj.apply(x[:, None].astype(np.complex128))
        assert np.abs(out).max() < 1e-10 * np.abs(x).max()

    def test_subspace_matrix_hermitian_psd_signs(self, system, rng):
        _, mesh, proj = system
        psi = (rng.standard_normal((mesh.n_grid, 4))
               + 1j * rng.standard_normal((mesh.n_grid, 4)))
        h = proj.subspace_matrix(psi)
        assert h.shape == (4, 4)
        np.testing.assert_allclose(h, h.conj().T, atol=1e-12)
        # All couplings positive here -> PSD subspace operator.
        vals = np.linalg.eigvalsh(h)
        assert vals.min() > -1e-10

    def test_subspace_consistent_with_apply(self, system, rng):
        _, mesh, proj = system
        psi = (rng.standard_normal((mesh.n_grid, 3))
               + 1j * rng.standard_normal((mesh.n_grid, 3)))
        h = proj.subspace_matrix(psi)
        direct = (psi.conj().T @ proj.apply(psi)) * mesh.dv
        np.testing.assert_allclose(h, direct, rtol=1e-10)
