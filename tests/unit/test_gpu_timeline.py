"""Unit tests: kernel event timeline."""

import pytest

from repro.gpu.timeline import KernelEvent, Timeline


class TestTimeline:
    def test_append_advances_clock(self):
        tl = Timeline()
        e1 = tl.append("a", 1.0)
        e2 = tl.append("b", 2.0)
        assert e1.start == 0.0 and e1.end == 1.0
        assert e2.start == 1.0 and e2.end == 3.0
        assert tl.clock == 3.0

    def test_total_l0_time(self):
        tl = Timeline()
        tl.append("a", 1.0)
        tl.append("b", 0.5)
        assert tl.total_l0_time() == pytest.approx(1.5)

    def test_aggregations(self):
        tl = Timeline()
        tl.append("gemm", 1.0, kind="blas", site="nlp_prop")
        tl.append("gemm", 2.0, kind="blas", site="remap_occ")
        tl.append("fft", 0.5, kind="app", site="nlp_prop")
        assert tl.time_by_name() == {"gemm": 3.0, "fft": 0.5}
        assert tl.time_by_kind() == {"blas": 3.0, "app": 0.5}
        assert tl.time_by_site()["nlp_prop"] == pytest.approx(1.5)

    def test_unlabelled_kind_bucketed(self):
        tl = Timeline()
        tl.append("x", 1.0)
        assert tl.time_by_kind() == {"?": 1.0}

    def test_window_query(self):
        tl = Timeline()
        tl.append("a", 1.0)
        tl.append("b", 1.0)
        tl.append("c", 1.0)
        names = [e.name for e in tl.window(0.5, 1.5)]
        assert names == ["a", "b"]

    def test_window_invalid(self):
        with pytest.raises(ValueError):
            Timeline().window(2.0, 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeline().append("a", -1.0)

    def test_reset(self):
        tl = Timeline()
        tl.append("a", 1.0)
        tl.reset()
        assert len(tl) == 0
        assert tl.clock == 0.0
        assert tl.total_l0_time() == 0.0

    def test_events_are_copies(self):
        tl = Timeline()
        tl.append("a", 1.0)
        tl.events.clear()
        assert len(tl) == 1

    def test_event_immutable(self):
        e = KernelEvent("a", 0.0, 1.0)
        with pytest.raises(AttributeError):
            e.duration = 2.0
