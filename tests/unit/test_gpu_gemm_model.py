"""Unit tests: the per-mode GEMM cost model (paper anchors included)."""

import pytest

from repro.blas.modes import ComputeMode
from repro.gpu.gemm_model import GemmModel
from repro.types import Precision

MODES = [
    ComputeMode.FLOAT_TO_BF16,
    ComputeMode.FLOAT_TO_BF16X2,
    ComputeMode.FLOAT_TO_BF16X3,
    ComputeMode.FLOAT_TO_TF32,
    ComputeMode.COMPLEX_3M,
]

#: The paper's remap_occ shape at N_orb = 4096 (Table VII).
BIG_REMAP = (128, 3968, 262144)


@pytest.fixture(scope="module")
def model():
    return GemmModel()


class TestStructure:
    def test_component_products_real(self, model):
        assert model.cost("sgemm", 64, 64, 64, ComputeMode.STANDARD).n_component_products == 1
        assert model.cost("sgemm", 64, 64, 64, ComputeMode.FLOAT_TO_BF16X3).n_component_products == 6

    def test_component_products_complex(self, model):
        assert model.cost("cgemm", 64, 64, 64, ComputeMode.STANDARD).n_component_products == 4
        assert model.cost("cgemm", 64, 64, 64, ComputeMode.COMPLEX_3M).n_component_products == 3
        assert model.cost("cgemm", 64, 64, 64, ComputeMode.FLOAT_TO_BF16X2).n_component_products == 12

    def test_multiply_precision(self, model):
        assert model.cost("cgemm", 8, 8, 8, ComputeMode.FLOAT_TO_TF32).multiply_precision is Precision.TF32
        assert model.cost("cgemm", 8, 8, 8, ComputeMode.STANDARD).multiply_precision is Precision.FP32
        assert model.cost("zgemm", 8, 8, 8, ComputeMode.STANDARD).multiply_precision is Precision.FP64

    def test_effective_mode_rules(self, model):
        # FLOAT_TO_* is single-precision only; 3M is complex only.
        assert model.effective_mode("dgemm", ComputeMode.FLOAT_TO_BF16) is ComputeMode.STANDARD
        assert model.effective_mode("zgemm", ComputeMode.FLOAT_TO_BF16) is ComputeMode.STANDARD
        assert model.effective_mode("zgemm", ComputeMode.COMPLEX_3M) is ComputeMode.COMPLEX_3M
        assert model.effective_mode("sgemm", ComputeMode.COMPLEX_3M) is ComputeMode.STANDARD

    def test_unknown_routine(self, model):
        with pytest.raises(ValueError, match="unknown routine"):
            model.cost("qgemm", 8, 8, 8, ComputeMode.STANDARD)

    def test_nonpositive_dims(self, model):
        with pytest.raises(ValueError, match="positive"):
            model.cost("sgemm", 0, 8, 8, ComputeMode.STANDARD)


class TestPaperAnchors:
    def test_bf16_max_speedup_near_3_91(self, model):
        s = model.speedup_vs_fp32("cgemm", *BIG_REMAP, ComputeMode.FLOAT_TO_BF16)
        assert s == pytest.approx(3.91, abs=0.35)

    def test_bf16_far_below_theoretical_16x(self, model):
        s = model.speedup_vs_fp32("cgemm", *BIG_REMAP, ComputeMode.FLOAT_TO_BF16)
        assert s < 6.0

    def test_large_bf16_is_memory_bound(self, model):
        # Section V-C: "bandwidth limitations stem primarily from the
        # relatively small m = 128 dimension".
        cost = model.cost("cgemm", *BIG_REMAP, ComputeMode.FLOAT_TO_BF16)
        assert cost.bound == "memory"

    def test_large_fp32_is_compute_bound(self, model):
        cost = model.cost("cgemm", *BIG_REMAP, ComputeMode.STANDARD)
        assert cost.bound == "compute"

    def test_mode_ordering_at_large_norb(self, model):
        speedups = {
            m: model.speedup_vs_fp32("cgemm", *BIG_REMAP, m) for m in MODES
        }
        assert (
            speedups[ComputeMode.FLOAT_TO_BF16]
            > speedups[ComputeMode.FLOAT_TO_TF32]
            > speedups[ComputeMode.FLOAT_TO_BF16X2]
            > speedups[ComputeMode.FLOAT_TO_BF16X3]
            > speedups[ComputeMode.COMPLEX_3M]
            > 1.0
        )

    def test_speedup_grows_with_norb(self, model):
        # Fig. 3b: larger orbital counts -> larger speedups.
        prev = 0.0
        for n in (128, 896, 1920, 3968):
            s = model.speedup_vs_fp32("cgemm", 128, n, 262144, ComputeMode.FLOAT_TO_BF16)
            assert s > prev
            prev = s

    def test_3m_speedup_near_four_thirds(self, model):
        s = model.speedup_vs_fp32("cgemm", *BIG_REMAP, ComputeMode.COMPLEX_3M)
        assert s == pytest.approx(4.0 / 3.0, abs=0.1)

    def test_fp64_fp32_ratio_near_two(self, model):
        # Fig. 3a: FP64 end-to-end is ~1.9x FP32 on fat GEMMs.
        t64 = model.seconds("zgemm", 1024, 1024, 884736, ComputeMode.STANDARD)
        t32 = model.seconds("cgemm", 1024, 1024, 884736, ComputeMode.STANDARD)
        assert t64 / t32 == pytest.approx(2.0, abs=0.3)


class TestScalingSanity:
    def test_time_scales_with_n(self, model):
        t1 = model.seconds("cgemm", 128, 512, 262144, ComputeMode.STANDARD)
        t2 = model.seconds("cgemm", 128, 1024, 262144, ComputeMode.STANDARD)
        assert t2 > t1

    def test_time_scales_with_k(self, model):
        t1 = model.seconds("cgemm", 128, 128, 1000, ComputeMode.STANDARD)
        t2 = model.seconds("cgemm", 128, 128, 100000, ComputeMode.STANDARD)
        assert t2 > 10 * t1

    def test_tiny_gemm_is_launch_bound(self, model):
        cost = model.cost("sgemm", 4, 4, 4, ComputeMode.STANDARD)
        assert cost.bound == "launch"

    def test_positive_times_all_modes(self, model):
        for mode in [ComputeMode.STANDARD, *MODES]:
            for routine in ("sgemm", "dgemm", "cgemm", "zgemm"):
                assert model.seconds(routine, 32, 32, 32, mode) > 0
