"""Unit tests: static tables (I-V)."""

import pytest

from repro.blas.modes import ComputeMode
from repro.core.theoretical import (
    peak_theoretical_speedup,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)


class TestTable1:
    def test_matches_paper(self):
        rows = {r[0]: (r[1], r[3]) for r in table1_rows()}
        assert rows["FP64"] == (26.0, "Vector")
        assert rows["FP32"] == (26.0, "Vector")
        assert rows["TF32"] == (209.0, "Matrix")
        assert rows["BF16"] == (419.0, "Matrix")
        assert rows["FP16"] == (419.0, "Matrix")
        assert rows["INT8"] == (839.0, "Matrix")


class TestTable2:
    def test_peak_speedups_match_paper(self):
        # Table II: 16x, (16/3)x, (8/3)x, 8x, 4/3 — derived from Table
        # I's peak ratios (419/26 is 16.1, quoted as 16 in the paper).
        assert peak_theoretical_speedup(ComputeMode.FLOAT_TO_BF16) == pytest.approx(16.0, rel=0.02)
        assert peak_theoretical_speedup(ComputeMode.FLOAT_TO_BF16X2) == pytest.approx(16 / 3, rel=0.02)
        assert peak_theoretical_speedup(ComputeMode.FLOAT_TO_BF16X3) == pytest.approx(8 / 3, rel=0.02)
        assert peak_theoretical_speedup(ComputeMode.FLOAT_TO_TF32) == pytest.approx(8.0, rel=0.02)
        assert peak_theoretical_speedup(ComputeMode.COMPLEX_3M) == pytest.approx(4 / 3)

    def test_standard_is_unity(self):
        assert peak_theoretical_speedup(ComputeMode.STANDARD) == 1.0

    def test_rows_cover_all_alternative_modes(self):
        names = [r[0] for r in table2_rows()]
        assert names == [
            "FLOAT_TO_BF16", "FLOAT_TO_BF16X2", "FLOAT_TO_BF16X3",
            "FLOAT_TO_TF32", "COMPLEX_3M",
        ]


class TestRemainingTables:
    def test_table3(self):
        rows = dict(table3_rows())
        assert rows["Timestep (a.u.)"] == 0.02
        assert rows["Total Number of QD Steps"] == 21_000
        assert rows["Total Simulation Time (fs)"] == 10.0

    def test_table4(self):
        rows = {r[0]: (r[1], r[2]) for r in table4_rows()}
        assert rows["FP64"] == (11, 52)
        assert rows["FP32"] == (8, 23)
        assert rows["TF32"] == (8, 10)
        assert rows["BF16"] == (8, 7)

    def test_table5(self):
        assert table5_rows() == [(40, "64x64x64", 256), (135, "96x96x96", 1024)]
