"""Unit tests: MKL_VERBOSE-style call logging."""

import numpy as np
import pytest

from repro.blas.gemm import cgemm, sgemm
from repro.blas.modes import ComputeMode
from repro.blas.verbose import (
    VerboseRecord,
    clear_verbose_log,
    format_verbose_line,
    get_verbose_log,
    mkl_verbose,
    record_call,
    verbose_enabled,
)

pytestmark = pytest.mark.usefixtures("clean_mode_env")


def _rec(**over):
    base = dict(
        routine="cgemm", trans_a="N", trans_b="N", m=4, n=5, k=6,
        mode=ComputeMode.STANDARD, seconds=1e-4,
    )
    base.update(over)
    return VerboseRecord(**base)


class TestLogging:
    def test_disabled_by_default(self):
        assert not verbose_enabled()
        record_call(_rec())
        assert get_verbose_log() == []

    def test_context_enables_and_captures(self, rng):
        a = rng.standard_normal((8, 8)).astype(np.float32)
        with mkl_verbose() as log:
            sgemm(a, a)
            cgemm(a, a)
        assert [r.routine for r in log] == ["sgemm", "cgemm"]
        assert log[0].m == log[0].n == log[0].k == 8

    def test_env_variable_enables(self, rng, monkeypatch):
        clear_verbose_log()
        monkeypatch.setenv("MKL_VERBOSE", "2")
        a = rng.standard_normal((4, 4)).astype(np.float32)
        sgemm(a, a)
        assert len(get_verbose_log()) == 1
        clear_verbose_log()

    def test_env_zero_disables(self, monkeypatch):
        monkeypatch.setenv("MKL_VERBOSE", "0")
        assert not verbose_enabled()

    def test_nested_contexts(self, rng):
        a = rng.standard_normal((4, 4)).astype(np.float32)
        with mkl_verbose() as outer:
            sgemm(a, a)
            with mkl_verbose(clear=False) as inner:
                sgemm(a, a)
            assert inner is outer
            sgemm(a, a)
        assert len(outer) == 3

    def test_clear_on_entry(self, rng):
        a = rng.standard_normal((4, 4)).astype(np.float32)
        with mkl_verbose():
            sgemm(a, a)
        with mkl_verbose() as log:
            pass
        assert log == []

    def test_mode_recorded(self, rng):
        a = rng.standard_normal((4, 4)).astype(np.float32)
        with mkl_verbose() as log:
            sgemm(a, a, mode="FLOAT_TO_TF32")
        assert log[0].mode is ComputeMode.FLOAT_TO_TF32


class TestRecordProperties:
    def test_flops_complex_counts_4m(self):
        assert _rec(routine="cgemm").flops == 8 * 4 * 5 * 6
        assert _rec(routine="sgemm").flops == 2 * 4 * 5 * 6

    def test_reported_prefers_model_time(self):
        r = _rec(seconds=1.0, model_seconds=2.0)
        assert r.reported_seconds == 2.0
        assert _rec(seconds=1.0).reported_seconds == 1.0


class TestFormatting:
    def test_line_format_standard(self):
        line = format_verbose_line(_rec(seconds=1.5e-3))
        assert line.startswith("MKL_VERBOSE CGEMM(N,N,4,5,6)")
        assert "1.500ms" in line
        assert "mode:" not in line

    def test_line_format_mode_and_site(self):
        line = format_verbose_line(
            _rec(mode=ComputeMode.FLOAT_TO_BF16, site="remap_occ", seconds=2.0)
        )
        assert "mode:FLOAT_TO_BF16" in line
        assert "site:remap_occ" in line
        assert "2.000000s" in line

    def test_microsecond_range(self):
        assert "us" in format_verbose_line(_rec(seconds=5e-6))
