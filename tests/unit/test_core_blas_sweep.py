"""Unit tests: Fig. 3b / Tables VI-VII sweep machinery."""

import pytest

from repro.blas.modes import ComputeMode
from repro.core.blas_sweep import (
    BlasSweep,
    FIG3B_NORBS,
    SWEEP_MODES,
    remap_gemm_shape,
)


class TestShapes:
    def test_table7_values(self):
        # m pinned at 128, k at 64^3, n = N_orb - 128.
        assert remap_gemm_shape(256) == (128, 128, 262144)
        assert remap_gemm_shape(1024) == (128, 896, 262144)
        assert remap_gemm_shape(2048) == (128, 1920, 262144)
        assert remap_gemm_shape(4096) == (128, 3968, 262144)

    def test_norb_must_exceed_occupied(self):
        with pytest.raises(ValueError, match="exceed"):
            remap_gemm_shape(128)


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return BlasSweep()

    def test_point_count(self, sweep):
        points = sweep.sweep()
        assert len(points) == len(FIG3B_NORBS) * len(SWEEP_MODES)

    def test_speedups_positive(self, sweep):
        assert all(p.speedup > 0 for p in sweep.sweep())

    def test_bf16_monotone_in_norb(self, sweep):
        pts = [p for p in sweep.sweep() if p.mode is ComputeMode.FLOAT_TO_BF16]
        speedups = [p.speedup for p in sorted(pts, key=lambda p: p.n_orb)]
        assert speedups == sorted(speedups)

    def test_table6_anchor(self, sweep):
        rows = {r[0]: (r[1], r[2]) for r in sweep.table6()}
        observed, theoretical = rows["FLOAT_TO_BF16"]
        assert observed == pytest.approx(3.91, abs=0.35)   # the paper's 3.91x
        assert theoretical == pytest.approx(16.0, rel=0.02)
        # Observed always below theoretical.
        for obs, theo in rows.values():
            assert obs < theo + 1e-9

    def test_table6_ordering(self, sweep):
        rows = {r[0]: r[1] for r in sweep.table6()}
        assert (
            rows["FLOAT_TO_BF16"]
            > rows["FLOAT_TO_TF32"]
            > rows["FLOAT_TO_BF16X2"]
            > rows["FLOAT_TO_BF16X3"]
            > rows["COMPLEX_3M"]
            > 1.0
        )

    def test_table7_rows(self, sweep):
        rows = sweep.table7()
        assert rows[0] == (256, 128, 128, 262144)
        assert all(r[1] == 128 and r[3] == 262144 for r in rows)
