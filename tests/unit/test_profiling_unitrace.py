"""Unit tests: unitrace-style reporting."""

import pytest

from repro.gpu.timeline import Timeline
from repro.profiling.unitrace import unitrace_report


@pytest.fixture()
def timeline():
    tl = Timeline()
    tl.append("cgemm", 2.0, kind="blas", site="nlp_prop")
    tl.append("fft_forward", 1.0, kind="app", site="lfd_step")
    tl.append("cgemm", 1.0, kind="blas", site="remap_occ")
    tl.append("psi_h2d", 0.5, kind="copy", site="shadow")
    return tl


class TestReport:
    def test_total_l0_time(self, timeline):
        rep = unitrace_report(timeline)
        assert rep.total_l0_seconds == pytest.approx(4.5)
        assert rep.n_kernels == 4

    def test_top_kernels_sorted(self, timeline):
        rep = unitrace_report(timeline)
        top = rep.top_kernels(2)
        assert top[0] == ("cgemm", 3.0)
        assert top[1][0] == "fft_forward"

    def test_blas_fraction(self, timeline):
        rep = unitrace_report(timeline)
        assert rep.blas_fraction() == pytest.approx(3.0 / 4.5)

    def test_by_site(self, timeline):
        rep = unitrace_report(timeline)
        assert rep.by_site["nlp_prop"] == pytest.approx(2.0)

    def test_render_contains_headline(self, timeline):
        text = unitrace_report(timeline).render()
        assert "Total L0 Time" in text
        assert "cgemm" in text
        assert "kind:blas" in text

    def test_empty_timeline(self):
        rep = unitrace_report(Timeline())
        assert rep.total_l0_seconds == 0
        assert rep.blas_fraction() == 0.0
