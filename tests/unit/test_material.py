"""Unit tests: PbTiO3-like supercell builder."""

import numpy as np
import pytest

from repro.dcmesh.material import (
    AtomSpec,
    Material,
    PTO_SPECIES,
    build_pto_supercell,
)


class TestPaperSystems:
    def test_40_atom_system(self):
        m = build_pto_supercell((2, 2, 2))
        assert m.n_atoms == 40                 # Table V
        assert m.n_electrons == 256
        assert m.n_occupied == 128             # Table VII's m = 128

    def test_135_atom_system(self):
        m = build_pto_supercell((3, 3, 3))
        assert m.n_atoms == 135                # Table V
        assert m.n_occupied == 432

    def test_species_composition(self):
        m = build_pto_supercell((1, 1, 1))
        assert sorted(m.symbols) == ["O", "O", "O", "Pb", "Ti"]

    def test_box_size(self):
        m = build_pto_supercell((2, 2, 2), lattice=7.5)
        assert m.box == (15.0, 15.0, 15.0)

    def test_positions_inside_box(self):
        m = build_pto_supercell((2, 3, 2))
        assert np.all(m.positions >= 0)
        assert np.all(m.positions < np.asarray(m.box))


class TestJitter:
    def test_deterministic_under_seed(self):
        a = build_pto_supercell((2, 2, 2), jitter=0.1, seed=3)
        b = build_pto_supercell((2, 2, 2), jitter=0.1, seed=3)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_different_seeds_differ(self):
        a = build_pto_supercell((2, 2, 2), jitter=0.1, seed=3)
        b = build_pto_supercell((2, 2, 2), jitter=0.1, seed=4)
        assert not np.array_equal(a.positions, b.positions)

    def test_zero_jitter_is_perfect_lattice(self):
        a = build_pto_supercell((2, 2, 2), jitter=0.0, seed=3)
        b = build_pto_supercell((2, 2, 2), jitter=0.0, seed=99)
        np.testing.assert_array_equal(a.positions, b.positions)


class TestMaterialValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="positions shape"):
            Material(["Pb"], np.zeros((2, 3)), (1.0, 1.0, 1.0))

    def test_unknown_species_rejected(self):
        with pytest.raises(ValueError, match="unknown species"):
            Material(["Xx"], np.zeros((1, 3)), (1.0, 1.0, 1.0))

    def test_invalid_ncells(self):
        with pytest.raises(ValueError, match="ncells"):
            build_pto_supercell((0, 1, 1))

    def test_odd_electron_count_rejected(self):
        odd = dict(PTO_SPECIES)
        odd["Pb"] = AtomSpec("Pb", valence=13, sigma=1.0, nl_strength=1.0,
                             nl_sigma=1.0, mass_amu=207.0)
        m = Material(["Pb"], np.zeros((1, 3)), (1.0, 1.0, 1.0), odd)
        with pytest.raises(ValueError, match="odd electron count"):
            m.n_occupied


class TestProperties:
    def test_masses_in_au(self):
        m = build_pto_supercell((1, 1, 1))
        # Pb mass ~ 207 amu ~ 3.8e5 electron masses.
        pb_mass = m.masses[m.symbols.index("Pb")]
        assert pb_mass == pytest.approx(207.2 * 1822.888, rel=1e-3)

    def test_valences_per_cell_sum_to_32(self):
        m = build_pto_supercell((1, 1, 1))
        assert m.valences.sum() == 32

    def test_displaced_wraps_and_copies(self):
        m = build_pto_supercell((1, 1, 1))
        d = m.displaced(np.array([100.0, 0.0, 0.0]))
        assert d is not m
        assert np.all(d.positions[:, 0] < m.box[0])
        # Original untouched.
        assert m.positions[0, 0] == pytest.approx(0.0)
