"""Unit tests: optical spectra from QD records."""

import numpy as np
import pytest

from repro.dcmesh.constants import FS_PER_AU, HARTREE_EV
from repro.dcmesh.laser import LaserPulse
from repro.dcmesh.observables import QDRecord
from repro.dcmesh.spectra import absorption_spectrum, power_spectrum


def _records_from_current(j_of_t, n=512, dt_au=0.5):
    recs = []
    for i in range(n):
        t_au = i * dt_au
        recs.append(
            QDRecord(step=i, time_fs=t_au * FS_PER_AU, ekin=0, epot=0,
                     etot=0, eexc=0, nexc=0, aext=0, javg=float(j_of_t(t_au)))
        )
    return recs


class TestPowerSpectrum:
    def test_monochromatic_peak_location(self):
        omega0 = 0.25  # a.u.
        recs = _records_from_current(lambda t: np.sin(omega0 * t))
        spec = power_spectrum(recs)
        assert spec.peak_energy() == pytest.approx(omega0 * HARTREE_EV, rel=0.05)

    def test_two_tone_peaks(self):
        w1, w2 = 0.1, 0.4
        recs = _records_from_current(lambda t: np.sin(w1 * t) + 0.5 * np.sin(w2 * t))
        spec = power_spectrum(recs)
        assert spec.peak_energy(window_ev=(w1 * HARTREE_EV * 0.5,
                                           w1 * HARTREE_EV * 1.5)) == pytest.approx(
            w1 * HARTREE_EV, rel=0.1
        )
        assert spec.peak_energy(window_ev=(w2 * HARTREE_EV * 0.5,
                                           w2 * HARTREE_EV * 1.5)) == pytest.approx(
            w2 * HARTREE_EV, rel=0.1
        )

    def test_damping_broadens(self):
        omega0 = 0.25
        recs = _records_from_current(lambda t: np.sin(omega0 * t))
        sharp = power_spectrum(recs)
        broad = power_spectrum(recs, damping=0.05)
        # The damped spectrum's peak is lower and wider.
        assert broad.values.max() < sharp.values.max()

    def test_energy_axis_monotone(self):
        recs = _records_from_current(lambda t: np.sin(t))
        spec = power_spectrum(recs)
        assert np.all(np.diff(spec.energy_ev) > 0)
        assert spec.energy_ev[0] == 0.0

    def test_too_few_records(self):
        recs = _records_from_current(lambda t: 0.0, n=3)
        with pytest.raises(ValueError, match="at least 4"):
            power_spectrum(recs)

    def test_nonuniform_grid_rejected(self):
        recs = _records_from_current(lambda t: 0.0, n=8)
        bad = list(recs)
        bad[4] = QDRecord(step=4, time_fs=recs[4].time_fs * 1.5, ekin=0, epot=0,
                          etot=0, eexc=0, nexc=0, aext=0, javg=0.0)
        with pytest.raises(ValueError, match="uniformly spaced"):
            power_spectrum(bad)

    def test_window_outside_range(self):
        recs = _records_from_current(lambda t: np.sin(t))
        spec = power_spectrum(recs)
        with pytest.raises(ValueError, match="window"):
            spec.peak_energy(window_ev=(1e6, 2e6))


class TestAbsorptionSpectrum:
    def test_masks_unprobed_frequencies(self):
        laser = LaserPulse(amplitude=0.1, omega=0.2, duration_fs=4.0)
        recs = _records_from_current(lambda t: 1e-3 * np.sin(0.2 * t), n=256)
        spec = absorption_spectrum(recs, laser)
        assert spec.kind == "absorption"
        # Far above the pulse bandwidth the response is masked to zero.
        high = spec.values[spec.energy_ev > 60.0]
        assert np.allclose(high, 0.0)

    def test_driven_oscillator_responds_at_drive(self):
        laser = LaserPulse(amplitude=0.1, omega=0.25, duration_fs=6.0)
        # Current responding in quadrature to E(t) along z.
        t_grid = None

        def j(t):
            e = laser.electric_field(t)[2]
            return 0.01 * e

        recs = _records_from_current(j, n=512)
        spec = absorption_spectrum(recs, laser)
        # sigma = j/E = 0.01 (real): imaginary part ~ 0 everywhere probed.
        probed = np.abs(spec.values[(spec.energy_ev > 2) & (spec.energy_ev < 12)])
        assert probed.max() < 0.01

    def test_from_simulation_records(self, tiny_fp32_run):
        laser = tiny_fp32_run.config.laser
        spec = absorption_spectrum(tiny_fp32_run.records, laser)
        assert np.isfinite(spec.values).all()
        assert spec.energy_ev.shape == spec.values.shape
