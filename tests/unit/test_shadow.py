"""Unit tests: shadow-dynamics transfer ledger."""

import pytest

from repro.dcmesh.shadow import Transfer, TransferLedger


class TestLedger:
    def test_record_and_totals(self):
        led = TransferLedger()
        led.record("psi_h2d", "h2d", 1000, step=0)
        led.record("psi_d2h", "d2h", 1000, step=500)
        led.record("obs", "d2h", 8, step=1)
        assert led.count() == 3
        assert led.total_bytes() == 2008
        assert led.total_bytes("h2d") == 1000
        assert led.total_bytes("d2h") == 1008

    def test_by_name(self):
        led = TransferLedger()
        led.record("psi_h2d", "h2d", 10, 0)
        led.record("psi_h2d", "h2d", 10, 500)
        assert led.by_name() == {"psi_h2d": 20}

    def test_invalid_direction(self):
        with pytest.raises(ValueError, match="direction"):
            TransferLedger().record("x", "sideways", 1, 0)

    def test_negative_bytes(self):
        with pytest.raises(ValueError, match="negative"):
            TransferLedger().record("x", "h2d", -1, 0)

    def test_transfers_are_copies(self):
        led = TransferLedger()
        led.record("x", "h2d", 1, 0)
        led.transfers.clear()
        assert led.count() == 1

    def test_transfer_record_fields(self):
        t = Transfer("psi", "d2h", 42, 7)
        assert (t.name, t.direction, t.nbytes, t.step) == ("psi", "d2h", 42, 7)
