"""Unit tests: the GEMM dispatcher — semantics, modes, dtypes, errors."""

import numpy as np
import pytest

from repro.blas.gemm import call_site, cgemm, dgemm, gemm, sgemm, use_device, zgemm
from repro.blas.modes import ComputeMode, compute_mode
from repro.blas.verbose import mkl_verbose

pytestmark = pytest.mark.usefixtures("clean_mode_env")


def _rand(shape, rng, dtype=np.float32):
    x = rng.standard_normal(shape)
    if np.dtype(dtype).kind == "c":
        x = x + 1j * rng.standard_normal(shape)
    return x.astype(dtype)


class TestBasicSemantics:
    def test_matches_numpy_fp32(self, rng):
        a, b = _rand((17, 9), rng), _rand((9, 13), rng)
        np.testing.assert_allclose(gemm(a, b), a @ b, rtol=1e-6)

    def test_alpha_scaling(self, rng):
        a, b = _rand((4, 4), rng), _rand((4, 4), rng)
        np.testing.assert_allclose(gemm(a, b, alpha=2.5), 2.5 * (a @ b), rtol=1e-6)

    def test_beta_accumulation(self, rng):
        a, b = _rand((6, 5), rng), _rand((5, 7), rng)
        c = _rand((6, 7), rng)
        out = gemm(a, b, beta=0.5, c=c)
        np.testing.assert_allclose(out, a @ b + 0.5 * c, rtol=1e-5)

    def test_beta_without_c_rejected(self, rng):
        a, b = _rand((3, 3), rng), _rand((3, 3), rng)
        with pytest.raises(ValueError, match="requires a C"):
            gemm(a, b, beta=1.0)

    def test_c_shape_checked(self, rng):
        a, b = _rand((3, 4), rng), _rand((4, 5), rng)
        with pytest.raises(ValueError, match="C has shape"):
            gemm(a, b, beta=1.0, c=np.zeros((2, 2), np.float32))

    def test_transpose_flags(self, rng):
        a, b = _rand((5, 7), rng), _rand((5, 9), rng)
        np.testing.assert_allclose(gemm(a, b, trans_a="T"), a.T @ b, rtol=1e-6)

    def test_conjugate_transpose_complex(self, rng):
        a = _rand((5, 7), rng, np.complex64)
        b = _rand((5, 9), rng, np.complex64)
        np.testing.assert_allclose(
            gemm(a, b, trans_a="C"), a.conj().T @ b, rtol=1e-5
        )

    def test_conjugate_transpose_real_is_plain_transpose(self, rng):
        a, b = _rand((5, 7), rng), _rand((5, 9), rng)
        np.testing.assert_allclose(gemm(a, b, trans_a="C"), a.T @ b, rtol=1e-6)

    def test_bad_trans_flag(self, rng):
        a, b = _rand((3, 3), rng), _rand((3, 3), rng)
        with pytest.raises(ValueError, match="trans flags"):
            gemm(a, b, trans_a="X")

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="inner dimensions"):
            gemm(_rand((3, 4), rng), _rand((5, 6), rng))

    def test_non_2d_rejected(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            gemm(np.zeros(3, np.float32), np.zeros((3, 3), np.float32))

    def test_nan_input_rejected(self, rng):
        a = _rand((3, 3), rng)
        a[0, 0] = np.nan
        with pytest.raises(FloatingPointError, match="non-finite"):
            gemm(a, _rand((3, 3), rng))

    def test_inf_input_rejected(self, rng):
        b = _rand((3, 3), rng)
        b[1, 1] = np.inf
        with pytest.raises(FloatingPointError, match="non-finite"):
            gemm(_rand((3, 3), rng), b)

    def test_non_contiguous_inputs_accepted(self, rng):
        a = _rand((8, 8), rng)[::2, :]  # strided view
        b = _rand((8, 6), rng)
        np.testing.assert_allclose(gemm(a, b), a @ b, rtol=1e-6)


class TestDtypePromotion:
    def test_typed_wrappers(self, rng):
        a64 = rng.standard_normal((4, 4))
        assert sgemm(a64, a64).dtype == np.float32
        assert dgemm(a64, a64).dtype == np.float64
        assert cgemm(a64, a64).dtype == np.complex64
        assert zgemm(a64, a64).dtype == np.complex128

    def test_mixed_promotes(self, rng):
        a = _rand((3, 3), rng, np.float32)
        b = _rand((3, 3), rng, np.complex64)
        assert gemm(a, b).dtype == np.complex64

    def test_integer_inputs_promote_to_fp64(self):
        a = np.arange(9).reshape(3, 3)
        out = gemm(a, a)
        assert out.dtype == np.float64
        np.testing.assert_allclose(out, a @ a)


class TestModeSemantics:
    def test_bf16_differs_from_standard(self, rng):
        a, b = _rand((32, 32), rng), _rand((32, 32), rng)
        std = gemm(a, b, mode=ComputeMode.STANDARD)
        alt = gemm(a, b, mode=ComputeMode.FLOAT_TO_BF16)
        assert not np.array_equal(std, alt)

    def test_bf16_error_within_bound_positive_data(self, rng):
        a = rng.uniform(0.5, 1.5, (64, 48)).astype(np.float32)
        b = rng.uniform(0.5, 1.5, (48, 32)).astype(np.float32)
        ref = a.astype(np.float64) @ b.astype(np.float64)
        out = gemm(a, b, mode="FLOAT_TO_BF16").astype(np.float64)
        rel = np.abs(out - ref) / np.abs(ref)
        # Section V-B bound: ~2^-7 for BF16 inputs, with headroom.
        assert rel.max() < 2**-6

    def test_accuracy_ordering_across_modes(self, rng):
        a = _rand((64, 64), rng, np.complex64)
        b = _rand((64, 64), rng, np.complex64)
        ref = a.astype(np.complex128) @ b.astype(np.complex128)

        def err(mode):
            out = gemm(a, b, mode=mode)
            return np.abs(out - ref).max() / np.abs(ref).max()

        e_bf16 = err(ComputeMode.FLOAT_TO_BF16)
        e_tf32 = err(ComputeMode.FLOAT_TO_TF32)
        e_x2 = err(ComputeMode.FLOAT_TO_BF16X2)
        e_x3 = err(ComputeMode.FLOAT_TO_BF16X3)
        e_3m = err(ComputeMode.COMPLEX_3M)
        e_std = err(ComputeMode.STANDARD)
        # Paper ordering: BF16 worst, then TF32, then BF16x2; BF16x3
        # and 3M comparable to standard FP32.
        assert e_bf16 > e_tf32 > e_x2 > e_x3
        assert e_x3 < 10 * e_std
        assert e_3m < 10 * e_std

    def test_float_to_modes_ignore_double_precision(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        std = dgemm(a, b, mode=ComputeMode.STANDARD)
        alt = dgemm(a, b, mode=ComputeMode.FLOAT_TO_BF16)
        np.testing.assert_array_equal(std, alt)

    def test_3m_ignores_real_routines(self, rng):
        a, b = _rand((16, 16), rng), _rand((16, 16), rng)
        np.testing.assert_array_equal(
            gemm(a, b, mode="COMPLEX_3M"), gemm(a, b, mode="STANDARD")
        )

    def test_3m_applies_to_zgemm(self, rng):
        a = _rand((16, 16), rng, np.complex128)
        b = _rand((16, 16), rng, np.complex128)
        std = zgemm(a, b, mode="STANDARD")
        alt = zgemm(a, b, mode="COMPLEX_3M")
        # Different accumulation -> bitwise different, numerically close.
        assert not np.array_equal(std, alt)
        np.testing.assert_allclose(alt, std, rtol=1e-12)

    def test_ambient_context_mode_applies(self, rng):
        a, b = _rand((16, 16), rng), _rand((16, 16), rng)
        with compute_mode("FLOAT_TO_BF16"):
            ambient = gemm(a, b)
        explicit = gemm(a, b, mode="FLOAT_TO_BF16")
        np.testing.assert_array_equal(ambient, explicit)

    def test_env_variable_controls_mode(self, rng, monkeypatch):
        a, b = _rand((16, 16), rng), _rand((16, 16), rng)
        monkeypatch.setenv("MKL_BLAS_COMPUTE_MODE", "FLOAT_TO_TF32")
        via_env = gemm(a, b)
        monkeypatch.delenv("MKL_BLAS_COMPUTE_MODE")
        explicit = gemm(a, b, mode="FLOAT_TO_TF32")
        np.testing.assert_array_equal(via_env, explicit)

    def test_bf16_output_deterministic(self, rng):
        a, b = _rand((32, 32), rng), _rand((32, 32), rng)
        x = gemm(a, b, mode="FLOAT_TO_BF16")
        y = gemm(a, b, mode="FLOAT_TO_BF16")
        np.testing.assert_array_equal(x, y)


class TestHooks:
    def test_call_site_tagging(self, rng):
        a, b = _rand((8, 8), rng), _rand((8, 8), rng)
        with mkl_verbose() as log:
            with call_site("nlp_prop"):
                gemm(a, b)
            gemm(a, b)
        assert log[0].site == "nlp_prop"
        assert log[1].site == ""

    def test_device_hook_receives_shape_and_mode(self, rng):
        calls = []

        class FakeDevice:
            def record_gemm(self, routine, m, n, k, mode, site=""):
                calls.append((routine, m, n, k, mode, site))
                return 1.25e-3

        a = _rand((6, 10), rng, np.complex64)
        b = _rand((10, 4), rng, np.complex64)
        with use_device(FakeDevice()):
            with mkl_verbose() as log:
                gemm(a, b, mode="FLOAT_TO_BF16")
        assert calls == [("cgemm", 6, 4, 10, ComputeMode.FLOAT_TO_BF16, "")]
        assert log[0].model_seconds == 1.25e-3
        assert log[0].reported_seconds == 1.25e-3

    def test_device_detached_after_context(self, rng):
        from repro.blas.gemm import current_device

        with use_device(object()):
            pass
        assert current_device() is None
