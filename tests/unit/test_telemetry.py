"""Unit tests for :mod:`repro.telemetry.registry`.

Covers the collector semantics (label-keyed counters, histograms, span
timers, the event-buffer cap), the enable/disable lifecycle, the
unified BLAS event stream, and — most load-bearing — the guarantee that
the *disabled* path performs no allocations, since every GEMM in the
LFD hot loop crosses it.
"""

import gc
import os
import subprocess
import sys
import threading

import pytest

from repro.blas.modes import ComputeMode
from repro.blas.verbose import VerboseRecord, emit_call, observing
from repro.telemetry import registry
from repro.telemetry.registry import (
    BUCKET_BOUNDS,
    MAX_EVENTS_ENV,
    Histogram,
    Telemetry,
    active,
    disable,
    enable,
    format_counter_name,
    parse_counter_name,
    telemetry,
    telemetry_enabled,
)

pytestmark = pytest.mark.telemetry


@pytest.fixture(autouse=True)
def _clean_registry():
    """Each test starts and ends with telemetry uninstalled."""
    prev = disable()
    yield
    disable()
    if prev is not None:
        enable(prev)


def _rec(routine="cgemm", m=4, n=4, k=4, site="remap_occ", **kw):
    kw.setdefault("mode", ComputeMode.STANDARD)
    kw.setdefault("seconds", 1e-4)
    return VerboseRecord(
        routine=routine, trans_a="N", trans_b="N", m=m, n=n, k=k, site=site, **kw
    )


class TestCounters:
    def test_count_accumulates(self):
        t = Telemetry()
        t.count("x")
        t.count("x", 2)
        assert t.counter_value("x") == 3

    def test_labels_key_distinct_series(self):
        t = Telemetry()
        t.count("blas.calls", routine="cgemm")
        t.count("blas.calls", routine="sgemm")
        t.count("blas.calls", routine="cgemm")
        assert t.counter_value("blas.calls", routine="cgemm") == 2
        assert t.counter_value("blas.calls", routine="sgemm") == 1
        assert t.counter_total("blas.calls") == 3

    def test_label_order_is_irrelevant(self):
        t = Telemetry()
        t.count("c", a="1", b="2")
        assert t.counter_value("c", b="2", a="1") == 1

    def test_untouched_counter_reads_zero(self):
        assert Telemetry().counter_value("nope") == 0.0

    def test_counters_flat_rendering(self):
        t = Telemetry()
        t.count("blas.calls", routine="cgemm", site="nlp_prop")
        flat = t.counters_flat()
        assert flat == {"blas.calls{routine=cgemm,site=nlp_prop}": 1.0}

    def test_thread_safety(self):
        t = Telemetry()

        def hammer():
            for _ in range(1000):
                t.count("n")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert t.counter_value("n") == 8000


class TestHistogram:
    def test_streaming_stats(self):
        h = Histogram()
        for v in (1e-5, 1e-3, 1.0):
            h.observe(v)
        assert h.count == 3
        assert h.min == 1e-5
        assert h.max == 1.0
        assert h.mean == pytest.approx((1e-5 + 1e-3 + 1.0) / 3)

    def test_bucket_assignment(self):
        h = Histogram()
        h.observe(5e-6)  # second bucket (1e-6 < v <= 1e-5)
        h.observe(100.0)  # overflow bucket
        assert h.buckets[1] == 1
        assert h.buckets[-1] == 1
        assert sum(h.buckets) == h.count

    def test_dict_round_trip(self):
        h = Histogram()
        for v in (2e-6, 3e-4, 0.5):
            h.observe(v)
        h2 = Histogram.from_dict(h.to_dict())
        assert h2.count == h.count
        assert h2.total == h.total
        assert h2.min == h.min
        assert h2.max == h.max
        assert h2.buckets == h.buckets

    def test_empty_round_trip(self):
        h2 = Histogram.from_dict(Histogram().to_dict())
        assert h2.count == 0
        assert h2.mean == 0.0

    def test_bounds_are_sorted(self):
        assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)

    def test_round_trip_preserves_every_field(self):
        h = Histogram()
        for v in (1e-7, 1e-7, 3e-4, 0.5, 250.0):
            h.observe(v)
        d = h.to_dict()
        h2 = Histogram.from_dict(d)
        assert h2.to_dict() == d
        # And the restored histogram keeps accumulating correctly.
        h2.observe(1.0)
        assert h2.count == h.count + 1
        assert h2.max == max(h.max, 1.0)

    def test_from_dict_ignores_unknown_keys(self):
        d = Histogram().to_dict()
        d["future_field"] = "whatever"
        assert Histogram.from_dict(d).count == 0


class TestCounterNameRendering:
    def test_plain_name_round_trip(self):
        assert format_counter_name("lfd.qd_steps", ()) == "lfd.qd_steps"
        assert parse_counter_name("lfd.qd_steps") == ("lfd.qd_steps", ())

    def test_labels_render_in_given_order(self):
        rendered = format_counter_name(
            "blas.calls", (("mode", "STANDARD"), ("routine", "cgemm"))
        )
        assert rendered == "blas.calls{mode=STANDARD,routine=cgemm}"

    def test_collector_sorts_labels_before_rendering(self):
        t = Telemetry()
        t.count("c", zebra="1", alpha="2")
        (flat,) = t.counters_flat()
        assert flat == "c{alpha=2,zebra=1}"

    @pytest.mark.parametrize(
        "value",
        [
            "a,b", "a=b", "{curly}", "back\\slash", "all,of={it}\\=",
            "nlp_prop@gemm/cgemm/32x32x2048",
        ],
    )
    def test_escaping_round_trip(self, value):
        labels = (("k", value), (value, "v"))
        name, parsed = parse_counter_name(format_counter_name("n", labels))
        assert name == "n"
        assert parsed == labels

    def test_escaped_form_is_unambiguous(self):
        # Two label sets that would collide unescaped must not collide.
        a = format_counter_name("n", (("k", "x,y=z"),))
        b = format_counter_name("n", (("k", "x"), ("y", "z")))
        assert a != b
        assert parse_counter_name(a) == ("n", (("k", "x,y=z"),))
        assert parse_counter_name(b) == ("n", (("k", "x"), ("y", "z")))

    def test_trailing_brace_without_open_is_literal(self):
        assert parse_counter_name("weird}") == ("weird}", ())


class TestSpans:
    def test_span_emits_complete_event_and_histogram(self):
        t = Telemetry()
        with t.span("qd_step", cat="lfd", t_au=0.25):
            pass
        (event,) = t.events
        assert event["ph"] == "X"
        assert event["name"] == "qd_step"
        assert event["cat"] == "lfd"
        assert event["args"] == {"t_au": 0.25}
        assert event["dur"] >= 0.0
        assert t.histograms["span.qd_step"].count == 1

    def test_span_records_even_on_exception(self):
        t = Telemetry()
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("x")
        assert t.histograms["span.boom"].count == 1

    def test_instant_event(self):
        t = Telemetry()
        t.instant("marker", cat="app", step=3)
        (event,) = t.events
        assert event["ph"] == "i"
        assert event["args"] == {"step": 3}

    def test_event_buffer_cap(self, monkeypatch):
        monkeypatch.setattr(registry, "MAX_EVENTS", 5)
        t = Telemetry()
        for i in range(9):
            t.instant("e", i=i)
        assert len(t.events) == 5
        assert t.dropped_events == 4
        assert t.snapshot()["dropped_events"] == 4
        # Drops are first-class data, not a silent cap: the counter
        # travels with every export.
        assert t.counter_value("telemetry.events_dropped") == 4

    def test_max_events_env(self, monkeypatch):
        monkeypatch.setenv(MAX_EVENTS_ENV, "123")
        assert registry._max_events_from_env() == 123
        monkeypatch.setenv(MAX_EVENTS_ENV, "not-a-number")
        assert registry._max_events_from_env() == registry._DEFAULT_MAX_EVENTS
        monkeypatch.setenv(MAX_EVENTS_ENV, "-5")
        assert registry._max_events_from_env() == registry._DEFAULT_MAX_EVENTS
        monkeypatch.delenv(MAX_EVENTS_ENV)
        assert registry._max_events_from_env() == registry._DEFAULT_MAX_EVENTS

    def test_max_events_env_contract(self):
        """REPRO_TELEMETRY_MAX_EVENTS caps the buffer at import time."""
        code = (
            "from repro.telemetry.registry import MAX_EVENTS; print(MAX_EVENTS)"
        )
        env = dict(os.environ, REPRO_TELEMETRY_MAX_EVENTS="7")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert out.stdout.strip() == "7"


class TestBlasStream:
    def test_blas_call_counters(self):
        t = Telemetry()
        t.blas_call(_rec(m=2, n=3, k=4))
        assert t.counter_value(
            "blas.calls", routine="cgemm", site="remap_occ", mode="STANDARD",
            backend="numpy"
        ) == 1
        # cgemm flops: 8*m*n*k
        assert t.counter_value("blas.flops", routine="cgemm") == 8 * 2 * 3 * 4
        # cgemm bytes: 8 bytes/elem * (mk + kn + mn)
        assert t.counter_value("blas.bytes", routine="cgemm") == 8 * (8 + 12 + 6)
        assert t.histograms["blas.seconds"].count == 1

    def test_verbose_record_reconstruction(self):
        t = Telemetry()
        original = _rec(
            routine="sgemm", m=7, n=5, k=3, site="calc_energy",
            mode=ComputeMode.FLOAT_TO_BF16X3, model_seconds=2.5e-3, batch=4,
        )
        t.blas_call(original)
        (rebuilt,) = t.verbose_records()
        assert rebuilt.routine == original.routine
        assert (rebuilt.m, rebuilt.n, rebuilt.k) == (7, 5, 3)
        assert rebuilt.mode is ComputeMode.FLOAT_TO_BF16X3
        assert rebuilt.site == "calc_energy"
        assert rebuilt.batch == 4
        assert rebuilt.seconds == original.seconds
        assert rebuilt.model_seconds == original.model_seconds

    def test_emit_call_feeds_installed_collector(self):
        t = enable()
        emit_call(_rec())
        assert t.counter_total("blas.calls") == 1

    def test_emit_call_without_collector_is_noop(self):
        emit_call(_rec())  # must not raise; nothing to assert against


class TestLifecycle:
    def test_enable_disable(self):
        assert active() is None
        assert not telemetry_enabled()
        t = enable()
        assert active() is t
        assert telemetry_enabled()
        assert disable() is t
        assert active() is None

    def test_scope_installs_and_restores(self):
        outer = enable()
        with telemetry() as inner:
            assert active() is inner
            assert inner is not outer
        assert active() is outer

    def test_scope_exports_on_exit(self, tmp_path):
        with telemetry(out_dir=tmp_path) as t:
            t.count("x")
        assert (tmp_path / "trace.jsonl").is_file()
        assert (tmp_path / "trace.chrome.json").is_file()
        assert (tmp_path / "summary.txt").is_file()

    def test_env_var_contract(self):
        """REPRO_TELEMETRY=1 installs a collector at import time."""
        code = (
            "from repro.telemetry.registry import telemetry_enabled; "
            "print(telemetry_enabled())"
        )
        env = dict(os.environ, REPRO_TELEMETRY="1")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert out.stdout.strip() == "True"
        env["REPRO_TELEMETRY"] = "0"
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert out.stdout.strip() == "False"


class TestDisabledPath:
    def test_disabled_guards_report_off(self):
        assert active() is None
        assert not observing()

    def test_disabled_path_allocates_nothing(self):
        """The hot-loop guard must not allocate when telemetry is off.

        Every GEMM in the LFD pipeline evaluates ``observing()`` /
        ``active()``; with both consumers off those must stay at one
        global read plus an environment probe, with zero *retained*
        allocations (``sys.getallocatedblocks`` net delta), or long
        runs would pay for instrumentation they turned off.
        """
        assert active() is None
        observing()  # warm the thread-local and env lookups
        loops = range(2000)
        gc.collect()
        before = sys.getallocatedblocks()
        for _ in loops:
            active()
            observing()
        gc.collect()
        after = sys.getallocatedblocks()
        # Tolerate a couple of blocks of interpreter noise, nothing more.
        assert after - before <= 2
