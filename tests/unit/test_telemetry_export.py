"""Exporter round-trip tests for :mod:`repro.telemetry.exporters`.

The JSONL trace must read back into exactly what was written; the
Chrome trace must be structurally valid ``trace_event`` JSON with one
lane per category; the text summary must mention every counter.
"""

import json

import pytest

from repro.blas.modes import ComputeMode
from repro.blas.verbose import VerboseRecord
from repro.telemetry import (
    Telemetry,
    export_all,
    read_chrome_trace,
    read_jsonl,
    summary_table,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.exporters import _CAT_LANES, chrome_trace_events

pytestmark = pytest.mark.telemetry


def _populated_collector():
    t = Telemetry()
    t.count("blas.plan.prepare", 3, result="hit")
    t.count("blas.plan.prepare", 1, result="miss")
    t.count("lfd.qd_steps", 5)
    t.observe("blas.seconds", 1.5e-4)
    t.observe("blas.seconds", 2.5e-4)
    with t.span("qd_step", cat="lfd", t_au=0.1):
        pass
    t.instant("checkpoint", cat="app", step=2)
    t.blas_call(
        VerboseRecord(
            routine="cgemm", trans_a="N", trans_b="N", m=8, n=6, k=4,
            mode=ComputeMode.FLOAT_TO_TF32, seconds=3e-4,
            model_seconds=1e-5, site="nlp_prop", batch=2,
        )
    )
    return t


class TestJsonl:
    def test_round_trip(self, tmp_path):
        t = _populated_collector()
        path = write_jsonl(t, tmp_path / "trace.jsonl")
        back = read_jsonl(path)

        assert back["meta"]["version"] == 1
        assert back["meta"]["n_events"] == len(t.events)
        assert back["meta"]["dropped_events"] == 0
        assert back["counters"] == t.counters_flat()
        assert len(back["events"]) == len(t.events)
        assert back["events"] == t.events

        snap = t.snapshot()
        assert set(back["histograms"]) == set(snap["histograms"])
        for name, hist in back["histograms"].items():
            assert hist.to_dict() == snap["histograms"][name]

    def test_one_json_object_per_line(self, tmp_path):
        path = write_jsonl(_populated_collector(), tmp_path / "t.jsonl")
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_unknown_record_type_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown JSONL record type"):
            read_jsonl(bad)


class TestChromeTrace:
    def test_structure(self, tmp_path):
        t = _populated_collector()
        path = write_chrome_trace(t, tmp_path / "trace.chrome.json")
        trace = read_chrome_trace(path)

        events = trace["traceEvents"]
        names = [e["name"] for e in events]
        assert "process_name" in names  # metadata events present
        assert "thread_name" in names
        # One named lane per category.
        lanes = {
            e["args"]["name"]: e["tid"] for e in events if e["name"] == "thread_name"
        }
        assert lanes == _CAT_LANES

    def test_events_convert_to_microseconds(self):
        t = _populated_collector()
        span = next(e for e in t.events if e["ph"] == "X" and e["cat"] == "lfd")
        converted = next(
            e
            for e in chrome_trace_events(t)
            if e.get("ph") == "X" and e["cat"] == "lfd"
        )
        assert converted["ts"] == pytest.approx(span["ts"] * 1e6)
        assert converted["dur"] == pytest.approx(span["dur"] * 1e6)
        assert converted["tid"] == _CAT_LANES["lfd"]

    def test_none_args_are_stripped(self):
        t = Telemetry()
        t.blas_call(
            VerboseRecord(
                routine="cgemm", trans_a="N", trans_b="N", m=2, n=2, k=2,
                mode=ComputeMode.STANDARD, seconds=1e-5,
            )
        )
        blas = next(e for e in chrome_trace_events(t) if e.get("cat") == "blas")
        assert "model_seconds" not in blas["args"]  # was None


class TestSummary:
    def test_mentions_every_counter_and_histogram(self):
        t = _populated_collector()
        text = summary_table(t)
        for name in t.counters_flat():
            assert name in text
        for name in t.snapshot()["histograms"]:
            assert name in text
        assert "dropped" in text

    def test_empty_collector_renders(self):
        assert "telemetry summary" in summary_table(Telemetry())


class TestExportAll:
    def test_writes_all_artifacts(self, tmp_path):
        paths = export_all(_populated_collector(), tmp_path / "out")
        assert sorted(paths) == ["chrome", "jsonl", "report", "summary"]
        for path in paths.values():
            assert path.is_file()
            assert path.stat().st_size > 0
        assert read_jsonl(paths["jsonl"])["meta"]["version"] == 1
        assert "traceEvents" in read_chrome_trace(paths["chrome"])
