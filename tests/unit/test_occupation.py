"""Unit tests: remap_occ and nexc."""

import numpy as np
import pytest

from repro.blas.verbose import mkl_verbose
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.occupation import remap_occ
from repro.dcmesh.wavefunction import OrbitalSet


@pytest.fixture(scope="module")
def setup():
    mesh = Mesh((8, 8, 8), (5.0, 5.0, 5.0))
    orb = OrbitalSet.random(mesh, 8, 4, seed=0)
    return mesh, orb


class TestNexc:
    def test_ground_state_has_zero_nexc(self, setup):
        mesh, orb = setup
        r = remap_occ(orb.psi, orb.psi, orb.occupations, mesh)
        assert r.nexc == pytest.approx(0.0, abs=1e-12)

    def test_full_promotion_counts_all_electrons(self, setup):
        # Swap occupied and virtual manifolds: every electron excited.
        mesh, orb = setup
        swapped = orb.psi[:, [4, 5, 6, 7, 0, 1, 2, 3]]
        r = remap_occ(swapped, orb.psi, orb.occupations, mesh)
        assert r.nexc == pytest.approx(orb.n_electrons, rel=1e-10)

    def test_partial_mixing_fraction(self, setup):
        # Rotate orbital 0 halfway into virtual 4: |c_virt|^2 = 1/2,
        # carrying f=2 electrons -> nexc = 1.
        mesh, orb = setup
        psi = orb.psi.copy()
        psi[:, 0] = (orb.psi[:, 0] + orb.psi[:, 4]) / np.sqrt(2)
        r = remap_occ(psi, orb.psi, orb.occupations, mesh)
        assert r.nexc == pytest.approx(1.0, rel=1e-10)
        np.testing.assert_allclose(r.per_orbital_exc, [1.0, 0, 0, 0], atol=1e-10)

    def test_nexc_bounded_by_electron_count(self, setup, rng):
        mesh, orb = setup
        other = OrbitalSet.random(mesh, 8, 4, seed=99)
        r = remap_occ(other.psi, orb.psi, orb.occupations, mesh)
        assert 0 <= r.nexc <= orb.n_electrons + 1e-9

    def test_occ_remapped_complements_exc(self, setup):
        # For a unitary rotation within the full space, occupation on
        # initial-occupied + leaked-to-virtual = f per orbital.
        mesh, orb = setup
        psi = orb.psi.copy()
        psi[:, 1] = (orb.psi[:, 1] + orb.psi[:, 6]) / np.sqrt(2)
        r = remap_occ(psi, orb.psi, orb.occupations, mesh)
        total = r.occ_remapped + r.per_orbital_exc
        np.testing.assert_allclose(total, [2, 2, 2, 2], rtol=1e-10)


class TestStructure:
    def test_table7_headline_shape(self, setup, clean_mode_env):
        mesh, orb = setup
        psi32 = orb.psi.astype(np.complex64)
        with mkl_verbose() as log:
            r = remap_occ(psi32, psi32, orb.occupations, mesh)
        assert len(log) == 3
        assert all(rec.site == "remap_occ" for rec in log)
        # Headline GEMM: (m=N_occ, n=N_virt, k=N_grid) — Table VII.
        assert (log[0].m, log[0].n, log[0].k) == (4, 4, 512)
        assert r.p_shape == (4, 4, 512)

    def test_requires_occupied_and_virtual(self, setup):
        mesh, orb = setup
        with pytest.raises(ValueError, match="occupied and virtual"):
            remap_occ(orb.psi, orb.psi, np.full(8, 2.0), mesh)
        with pytest.raises(ValueError, match="occupied and virtual"):
            remap_occ(orb.psi, orb.psi, np.zeros(8), mesh)

    def test_shape_mismatch(self, setup):
        mesh, orb = setup
        with pytest.raises(ValueError, match="differ"):
            remap_occ(orb.psi[:, :6], orb.psi, orb.occupations, mesh)
