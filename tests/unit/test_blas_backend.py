"""Unit tests for the pluggable array-backend layer.

Covers the three contracts docs/BACKENDS.md makes:

* the NumPy backend's operations are the literal pre-backend calls
  (bitwise identity on every op);
* selection — registry, env degradation, strict explicit selection,
  scoped restore — behaves as documented, including when torch is
  absent;
* caches that hold backend-owned buffers (the workspace pool, the plan
  layer's native mirrors) key by ``cache_key`` and never alias across
  backends.

A wrapped-NumPy "shadow" backend (``native_is_numpy=False`` but
NumPy arrays underneath) exercises the full conversion/mirroring path
end to end, bitwise, without needing torch installed.
"""

import importlib.util
import threading
import warnings

import numpy as np
import pytest

from repro.blas import backend as backend_mod
from repro.blas.backend import (
    ArrayBackend,
    BackendCapabilities,
    BackendUnavailable,
    NUMPY_BACKEND,
    NumpyBackend,
    REPRO_BACKEND_ENV,
    active_backend,
    available_backends,
    get_backend,
    refresh_from_env,
    set_backend,
    use_backend,
)
from repro.blas.gemm import gemm
from repro.blas.modes import ComputeMode, compute_mode
from repro.blas.plan import operand_handle, prepare, release
from repro.blas.verbose import format_verbose_line, mkl_verbose
from repro.blas.workspace import Workspace, clear_workspace, fused_mode

HAVE_TORCH = importlib.util.find_spec("torch") is not None

rng = np.random.default_rng(20240807)


class ShadowBackend(NumpyBackend):
    """NumPy underneath, but *claims* a foreign native type.

    ``native_is_numpy=False`` forces every conversion hook and native
    mirror through the full offload path while keeping the arithmetic
    the literal NumPy calls — so end-to-end results must stay bitwise
    identical to the reference backend.  ``to_native`` copies, proving
    callers never rely on aliasing.
    """

    name = "shadow"
    capabilities = BackendCapabilities(
        ieee_fp32_accumulation=True,
        bitwise_numpy=True,
        device="cpu",
        native_is_numpy=False,
    )

    def __init__(self, name="shadow"):
        self.name = name
        self.to_native_calls = 0

    def to_native(self, x):
        self.to_native_calls += 1
        return np.ascontiguousarray(x).copy()


@pytest.fixture(autouse=True)
def _numpy_backend_between_tests():
    prev_default = backend_mod._default
    prev_override = getattr(backend_mod._tls, "backend", None)
    backend_mod._default = NUMPY_BACKEND
    backend_mod._tls.backend = None
    clear_workspace()
    yield
    backend_mod._default = prev_default
    backend_mod._tls.backend = prev_override
    clear_workspace()


class TestNumpyBackendOps:
    def test_matmul_bitwise(self):
        a = rng.standard_normal((7, 5)).astype(np.float32)
        b = rng.standard_normal((5, 9)).astype(np.float32)
        assert np.array_equal(NUMPY_BACKEND.matmul(a, b), np.matmul(a, b))

    def test_matmul_out(self):
        a = rng.standard_normal((4, 4)).astype(np.float32)
        b = rng.standard_normal((4, 4)).astype(np.float32)
        out = np.empty((4, 4), dtype=np.float32)
        got = NUMPY_BACKEND.matmul(a, b, out=out)
        assert got is out
        assert np.array_equal(out, np.matmul(a, b))

    def test_take_add_copy_reduce(self):
        x = rng.standard_normal((6, 3, 3)).astype(np.float32)
        idx = np.array([4, 0, 2])
        out = np.empty((3, 3, 3), dtype=np.float32)
        assert np.array_equal(NUMPY_BACKEND.take(x, idx, out), x[idx])
        acc = x[0].copy()
        NUMPY_BACKEND.add_(acc, x[1])
        assert np.array_equal(acc, x[0] + x[1])
        cp = NUMPY_BACKEND.copy(x)
        assert cp is not x and np.array_equal(cp, x)
        assert NUMPY_BACKEND.reduce(x) == np.sum(x)

    def test_empty_cast_nbytes_result_dtype(self):
        buf = NUMPY_BACKEND.empty((2, 3), np.float32)
        assert buf.shape == (2, 3) and buf.dtype == np.float32
        x = np.ones(4, dtype=np.float32)
        assert NUMPY_BACKEND.cast(x, np.float32) is x  # no copy when right
        assert NUMPY_BACKEND.cast(x, np.float64).dtype == np.float64
        assert NUMPY_BACKEND.nbytes(x) == x.nbytes
        y = np.ones(4, dtype=np.complex64)
        assert NUMPY_BACKEND.result_dtype(x, y) == np.complex64

    def test_conversions_are_identity(self):
        x = np.ones((2, 2), dtype=np.float32)
        assert NUMPY_BACKEND.to_native(x) is x
        assert NUMPY_BACKEND.to_numpy(x) is x

    def test_capabilities(self):
        caps = NUMPY_BACKEND.capabilities
        assert caps.ieee_fp32_accumulation
        assert caps.bitwise_numpy
        assert caps.native_is_numpy
        assert caps.device == "cpu"
        assert NUMPY_BACKEND.cache_key == "numpy"

    def test_np_dtype(self):
        x = np.ones(3, dtype=np.complex64)
        assert NUMPY_BACKEND.np_dtype(x) == np.dtype(np.complex64)


class TestSelection:
    def test_default_is_numpy(self):
        assert active_backend() is NUMPY_BACKEND

    def test_get_backend_singleton_and_passthrough(self):
        assert get_backend("numpy") is NUMPY_BACKEND
        assert get_backend(" NumPy ") is NUMPY_BACKEND  # normalised
        assert get_backend(None) is active_backend()
        sh = ShadowBackend()
        assert get_backend(sh) is sh

    def test_unknown_name_raises_valueerror(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            get_backend("cupy")

    def test_set_backend_returns_instance(self):
        sh = ShadowBackend()
        assert set_backend(sh) is sh
        assert active_backend() is sh

    def test_use_backend_restores_on_exit_and_error(self):
        sh = ShadowBackend()
        with use_backend(sh) as be:
            assert be is sh and active_backend() is sh
        assert active_backend() is NUMPY_BACKEND
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend(sh):
                raise RuntimeError("boom")
        assert active_backend() is NUMPY_BACKEND

    def test_available_backends_reports_numpy_ok(self):
        probe = available_backends()
        assert probe["numpy"] == "ok"
        assert {"torch", "torch-cpu", "torch-cuda"} <= set(probe)

    @pytest.mark.skipif(HAVE_TORCH, reason="torch is installed here")
    def test_torch_missing_raises_backend_unavailable(self):
        with pytest.raises(BackendUnavailable, match="torch is not installed"):
            get_backend("torch")
        # ...and the probe reports the reason instead of raising.
        assert "torch is not installed" in available_backends()["torch"]


class TestEnvSelection:
    def test_empty_env_selects_numpy(self, monkeypatch):
        monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
        assert refresh_from_env() is NUMPY_BACKEND

    @pytest.mark.skipif(HAVE_TORCH, reason="torch is installed here")
    def test_unavailable_env_degrades_with_warning(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, "torch")
        with pytest.warns(RuntimeWarning, match="falling back to the numpy backend"):
            got = refresh_from_env()
        assert got is NUMPY_BACKEND

    def test_unknown_env_degrades_with_warning(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, "no-such-backend")
        with pytest.warns(RuntimeWarning, match="falling back to the numpy backend"):
            assert refresh_from_env() is NUMPY_BACKEND

    def test_explicit_selection_is_strict(self, monkeypatch):
        # Unlike the env path, set_backend must raise, never degrade.
        with pytest.raises(ValueError):
            set_backend("no-such-backend")
        assert active_backend() is NUMPY_BACKEND


class TestWorkspaceBackendKeying:
    def test_distinct_backends_get_distinct_buffers(self):
        ws = Workspace()
        sh = ShadowBackend()
        a = ws.get("prod", (8, 8), np.float32, NUMPY_BACKEND)
        b = ws.get("prod", (8, 8), np.float32, sh)
        assert a is not b
        # Same backend, same key -> same buffer (the reuse contract).
        assert ws.get("prod", (8, 8), np.float32, NUMPY_BACKEND) is a
        assert ws.get("prod", (8, 8), np.float32, sh) is b

    def test_default_backend_is_numpy(self):
        ws = Workspace()
        assert ws.get("t", (2,), np.float32) is ws.get(
            "t", (2,), np.float32, NUMPY_BACKEND
        )


class TestPlanNativeMirrors:
    def test_numpy_backend_short_circuits(self):
        a = rng.standard_normal((6, 6)).astype(np.float32)
        h = operand_handle(a, "N", np.float32)
        assert h.contiguous_native(NUMPY_BACKEND) is h.contiguous()

    def test_shadow_mirror_cached_per_backend(self):
        a = rng.standard_normal((6, 6)).astype(np.float32)
        op = prepare(a)
        try:
            h = operand_handle(op, "N", np.float32)
            sh = ShadowBackend()
            m1 = h.split_stack_native(sh, 8, 3)
            m2 = h.split_stack_native(sh, 8, 3)
            assert m1 is m2  # staged once per plan per backend
            assert sh.to_native_calls == 1
            assert np.array_equal(m1, h.split_stack(8, 3))
            # Mirrors key by cache_key (the isolation boundary): a second
            # instance with the same key shares the staged copy, while a
            # differently-keyed backend never aliases it.
            assert h.split_stack_native(ShadowBackend(), 8, 3) is m1
            assert h.split_stack_native(ShadowBackend("shadow2"), 8, 3) is not m1
        finally:
            release(op)


class TestShadowBackendEndToEnd:
    """The full dispatch path, bitwise, with no torch required."""

    MODES = [
        ComputeMode.STANDARD,
        ComputeMode.FLOAT_TO_BF16,
        ComputeMode.FLOAT_TO_BF16X2,
        ComputeMode.FLOAT_TO_BF16X3,
        ComputeMode.FLOAT_TO_TF32,
    ]

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.name)
    def test_real_gemm_bitwise_vs_numpy(self, mode):
        a = rng.standard_normal((13, 7)).astype(np.float32)
        b = rng.standard_normal((7, 11)).astype(np.float32)
        with compute_mode(mode):
            ref = gemm(a, b)
            with use_backend(ShadowBackend()):
                got = gemm(a, b)
        assert got.dtype == ref.dtype
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize(
        "mode", [ComputeMode.STANDARD, ComputeMode.COMPLEX_3M, ComputeMode.FLOAT_TO_BF16X2]
    )
    def test_complex_gemm_bitwise_vs_numpy(self, mode):
        a = (
            rng.standard_normal((9, 6)) + 1j * rng.standard_normal((9, 6))
        ).astype(np.complex64)
        b = (
            rng.standard_normal((6, 8)) + 1j * rng.standard_normal((6, 8))
        ).astype(np.complex64)
        with compute_mode(mode):
            ref = gemm(a, b)
            with use_backend(ShadowBackend()):
                got = gemm(a, b)
        assert np.array_equal(got, ref)

    def test_verbose_record_carries_backend(self):
        a = rng.standard_normal((4, 4)).astype(np.float32)
        with mkl_verbose() as log:
            gemm(a, a)
            with use_backend(ShadowBackend()):
                gemm(a, a)
        assert [rec.backend for rec in log] == ["numpy", "shadow"]
        # The MKL look-alike line stays bit-for-bit for numpy...
        assert "backend:" not in format_verbose_line(log[0])
        # ...and names any other executor.
        assert "backend:shadow" in format_verbose_line(log[1])


class TestThreadScoping:
    """use_backend is per-thread; set_backend is the process default."""

    def test_use_backend_does_not_leak_into_other_threads(self):
        seen = {}
        with use_backend(ShadowBackend()):
            t = threading.Thread(
                target=lambda: seen.setdefault("worker", active_backend())
            )
            t.start()
            t.join()
        assert seen["worker"] is NUMPY_BACKEND

    def test_set_backend_is_visible_to_other_threads(self):
        sh = ShadowBackend()
        set_backend(sh)
        seen = {}
        t = threading.Thread(target=lambda: seen.setdefault("worker", active_backend()))
        t.start()
        t.join()
        assert seen["worker"] is sh

    def test_concurrent_scopes_restore_independently(self):
        # Two threads hold different scoped backends across a barrier;
        # each must see its own selection and restore to the default —
        # the interleaved-restore hazard of a process-global scope.
        b1, b2 = ShadowBackend("scoped1"), ShadowBackend("scoped2")
        barrier = threading.Barrier(2)
        results = {}

        def run(name, be):
            with use_backend(be):
                barrier.wait()
                results[name] = active_backend()
                barrier.wait()
            results[name + "_after"] = active_backend()

        threads = [
            threading.Thread(target=run, args=("t1", b1)),
            threading.Thread(target=run, args=("t2", b2)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results["t1"] is b1
        assert results["t2"] is b2
        assert results["t1_after"] is NUMPY_BACKEND
        assert results["t2_after"] is NUMPY_BACKEND

    def test_use_backend_overrides_default_in_same_thread(self):
        sh = ShadowBackend()
        set_backend(sh)
        other = ShadowBackend("inner")
        with use_backend(other):
            assert active_backend() is other
        assert active_backend() is sh


class _FakeDtype:
    """Foreign dtype token, like ``torch.float32``: rejected by ``np.dtype``."""

    def __init__(self, np_dt):
        self.np = np.dtype(np_dt)

    def __repr__(self):
        return f"fake.{self.np.name}"


class _FakeArray:
    """Minimal torch-tensor stand-in: ndarray inside, foreign dtype out."""

    def __init__(self, arr):
        self.arr = np.asarray(arr)

    @property
    def shape(self):
        return self.arr.shape

    @property
    def dtype(self):
        return _FakeDtype(self.arr.dtype)

    def __getitem__(self, idx):
        return _FakeArray(self.arr[idx])


class FakeDeviceBackend(ArrayBackend):
    """NumPy arithmetic behind torch-like native arrays.

    Native arrays expose a ``dtype`` that ``np.dtype`` cannot interpret
    and ``empty`` rejects such tokens, reproducing the dtype-translation
    hazard of a real device backend without needing torch installed.
    The arithmetic underneath is the literal NumPy ops in the same
    order, so results must stay bitwise identical to the reference.
    """

    name = "fake-device"
    capabilities = BackendCapabilities(
        ieee_fp32_accumulation=True,
        bitwise_numpy=True,
        device="cpu",
        native_is_numpy=False,
    )

    def to_native(self, x):
        return _FakeArray(np.ascontiguousarray(x).copy())

    def to_numpy(self, x):
        return x.arr

    def empty(self, shape, dtype):
        if isinstance(dtype, _FakeDtype):
            # The same rejection torch's empty() makes for torch dtypes
            # routed through np.dtype-based keying.
            raise TypeError(f"cannot allocate from native dtype token {dtype!r}")
        return _FakeArray(np.empty(shape, dtype=np.dtype(dtype)))

    def cast(self, x, dtype):
        return _FakeArray(x.arr.astype(np.dtype(dtype), copy=False))

    def nbytes(self, x):
        return x.arr.nbytes

    def result_dtype(self, a, b):
        return np.result_type(a.arr.dtype, b.arr.dtype)

    def np_dtype(self, x):
        return x.dtype.np

    def matmul(self, a, b, out=None):
        if out is None:
            return _FakeArray(np.matmul(a.arr, b.arr))
        np.matmul(a.arr, b.arr, out=out.arr)
        return out

    def take(self, x, indices, out):
        np.take(x.arr, indices, axis=0, out=out.arr)
        return out

    def add_(self, out, x):
        np.add(out.arr, x.arr, out=out.arr)
        return out

    def copy(self, x):
        return _FakeArray(x.arr.copy())

    def reduce(self, x, axis=None):
        return np.sum(x.arr, axis=axis)


class TestFusedBatchedForeignDtype:
    """Regression: the batched fused engine gathers *backend-native*
    stacks, so the workspace request must translate their dtype through
    ``np_dtype`` — passing the native ``.dtype`` (e.g. ``torch.float32``)
    into the pool's ``np.dtype``-based key crashed every split-mode GEMM
    with >1 component pair on non-NumPy-native backends."""

    MODES = [
        ComputeMode.FLOAT_TO_BF16X2,
        ComputeMode.FLOAT_TO_BF16X3,
        ComputeMode.FLOAT_TO_TF32,
    ]

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.name)
    def test_batched_split_gemm_bitwise(self, mode):
        a = rng.standard_normal((9, 7)).astype(np.float32)
        b = rng.standard_normal((7, 8)).astype(np.float32)
        with fused_mode("batched"), compute_mode(mode):
            ref = gemm(a, b)
            with use_backend(FakeDeviceBackend()):
                got = gemm(a, b)
        assert np.array_equal(got, ref)


class TestTorchBackendRegressions:
    """Torch-specific regressions (skipped only when torch is absent)."""

    pytestmark = pytest.mark.skipif(not HAVE_TORCH, reason="torch not installed")

    def test_np_dtype_maps_torch_dtypes(self):
        be = get_backend("torch-cpu")
        native = be.to_native(np.ones(3, dtype=np.float32))
        assert be.np_dtype(native) == np.dtype(np.float32)

    @pytest.mark.parametrize(
        "mode",
        [ComputeMode.FLOAT_TO_BF16X2, ComputeMode.FLOAT_TO_BF16X3],
        ids=lambda m: m.name,
    )
    def test_batched_fused_split_gemm(self, mode):
        # The batched path gathers torch-native stacks into workspace
        # buffers — this crashed when the pool keyed on torch dtypes.
        be = get_backend("torch-cpu")
        a = rng.standard_normal((9, 7)).astype(np.float32)
        b = rng.standard_normal((7, 8)).astype(np.float32)
        with fused_mode("batched"), compute_mode(mode):
            ref = gemm(a, b)
            with use_backend(be):
                got = gemm(a, b)
        np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-7 * np.abs(ref).max())

    def test_tf32_global_untouched_by_construction(self):
        import torch

        from repro.blas.backend_torch import TorchBackend

        mm = torch.backends.cuda.matmul
        prev = mm.allow_tf32
        try:
            for flag in (True, False):
                mm.allow_tf32 = flag
                TorchBackend(device="cpu")
                assert mm.allow_tf32 is flag
        finally:
            mm.allow_tf32 = prev

    def test_tf32_pinned_and_restored_per_dispatch(self, monkeypatch):
        import torch

        from repro.blas.backend_torch import TorchBackend

        be = TorchBackend(device="cpu")
        mm = torch.backends.cuda.matmul
        prev = mm.allow_tf32
        seen = {}
        real = torch.matmul

        def spy(x, y, out=None):
            seen["tf32_during"] = mm.allow_tf32
            return real(x, y) if out is None else real(x, y, out=out)

        monkeypatch.setattr(torch, "matmul", spy)
        try:
            # Exercise the CUDA dispatch guard with CPU tensors: the
            # global is settable without a device, and matmul must pin
            # it to the instance's setting then restore the foreign one.
            be._is_cuda = True
            be.allow_tf32 = False
            mm.allow_tf32 = True
            a = be.to_native(np.ones((2, 2), dtype=np.float32))
            be.matmul(a, a)
            assert seen["tf32_during"] is False
            assert mm.allow_tf32 is True
        finally:
            mm.allow_tf32 = prev


class TestRegistration:
    def test_register_backend_resolvable_by_name(self):
        backend_mod.register_backend("shadow-test", ShadowBackend)
        try:
            got = get_backend("shadow-test")
            assert isinstance(got, ShadowBackend)
            assert get_backend("shadow-test") is got  # cached instance
        finally:
            with backend_mod._instances_lock:
                backend_mod._FACTORIES.pop("shadow-test", None)
                backend_mod._instances.pop("shadow-test", None)

    def test_abstract_backend_raises(self):
        be = ArrayBackend()
        with pytest.raises(NotImplementedError):
            be.matmul(np.ones((2, 2)), np.ones((2, 2)))
