"""Cross-checks against SciPy's real BLAS (the library MKL implements).

Our STANDARD path must agree with a genuine optimised BLAS to
round-off, and BLAS-convention corner cases (alpha/beta semantics,
conjugate transposes) must match exactly what `scipy.linalg.blas`
does.
"""

import numpy as np
import scipy.linalg.blas as sblas

from repro.blas.gemm import cgemm, dgemm, gemm, sgemm, zgemm


class TestAgainstSciPyBlas:
    def test_sgemm_matches(self, rng):
        a = rng.standard_normal((37, 23)).astype(np.float32)
        b = rng.standard_normal((23, 19)).astype(np.float32)
        ours = sgemm(a, b)
        ref = sblas.sgemm(1.0, a, b)
        np.testing.assert_allclose(ours, ref, rtol=1e-5, atol=1e-6)

    def test_dgemm_matches(self, rng):
        a = rng.standard_normal((16, 32))
        b = rng.standard_normal((32, 8))
        np.testing.assert_allclose(dgemm(a, b), sblas.dgemm(1.0, a, b), rtol=1e-13)

    def test_cgemm_matches(self, rng):
        a = (rng.standard_normal((12, 20)) + 1j * rng.standard_normal((12, 20))).astype(np.complex64)
        b = (rng.standard_normal((20, 9)) + 1j * rng.standard_normal((20, 9))).astype(np.complex64)
        np.testing.assert_allclose(cgemm(a, b), sblas.cgemm(1.0, a, b),
                                   rtol=1e-4, atol=1e-5)

    def test_zgemm_conjugate_transpose_matches(self, rng):
        a = (rng.standard_normal((15, 6)) + 1j * rng.standard_normal((15, 6)))
        b = (rng.standard_normal((15, 7)) + 1j * rng.standard_normal((15, 7)))
        ours = zgemm(a, b, trans_a="C")
        ref = sblas.zgemm(1.0, a, b, trans_a=2)  # 2 = conjugate transpose
        np.testing.assert_allclose(ours, ref, rtol=1e-12)

    def test_alpha_beta_semantics_match(self, rng):
        a = rng.standard_normal((8, 5))
        b = rng.standard_normal((5, 6))
        c = rng.standard_normal((8, 6))
        ours = gemm(a, b, alpha=2.5, beta=-0.75, c=c)
        ref = sblas.dgemm(2.5, a, b, beta=-0.75, c=c.copy(order="F"))
        np.testing.assert_allclose(ours, ref, rtol=1e-12)

    def test_transpose_combination_matrix(self, rng):
        a = rng.standard_normal((9, 9))
        b = rng.standard_normal((9, 9))
        for ta, sa in (("N", 0), ("T", 1)):
            for tb, sb in (("N", 0), ("T", 1)):
                ours = gemm(a, b, trans_a=ta, trans_b=tb)
                ref = sblas.dgemm(1.0, a, b, trans_a=sa, trans_b=sb)
                np.testing.assert_allclose(ours, ref, rtol=1e-12,
                                           err_msg=f"{ta}{tb}")
