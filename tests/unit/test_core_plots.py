"""Unit tests: ASCII plotting."""

import numpy as np
import pytest

from repro.core.plots import ascii_plot, plot_deviation_series


class TestAsciiPlot:
    def test_basic_render(self):
        x = np.linspace(0, 1, 20)
        out = ascii_plot(x, {"a": x**2}, title="T", ylabel="val")
        assert out.startswith("T")
        assert "*=a" in out
        assert "y: val" in out
        assert "*" in out

    def test_multiple_series_distinct_markers(self):
        x = np.linspace(0, 1, 10)
        out = ascii_plot(x, {"up": x, "down": 1 - x})
        assert "*=up" in out and "o=down" in out
        assert "o" in out.splitlines()[0] or "o" in out

    def test_log_axis(self):
        x = np.linspace(0, 1, 10)
        out = ascii_plot(x, {"a": 10.0 ** (-5 * x)}, logy=True, ylabel="dev")
        assert "log10 dev" in out
        # Log range endpoints appear on the axis.
        assert "-5" in out and "+0" in out or "-0" in out

    def test_constant_series_does_not_crash(self):
        x = np.linspace(0, 1, 5)
        out = ascii_plot(x, {"flat": np.ones(5)})
        assert "flat" in out

    def test_validation(self):
        with pytest.raises(ValueError, match="1-D grid"):
            ascii_plot([1.0], {"a": [1.0]})
        with pytest.raises(ValueError, match="no series"):
            ascii_plot([0.0, 1.0], {})
        with pytest.raises(ValueError, match="shape"):
            ascii_plot([0.0, 1.0], {"a": [1.0, 2.0, 3.0]})

    def test_dimensions(self):
        x = np.linspace(0, 1, 30)
        out = ascii_plot(x, {"a": x}, width=40, height=10)
        body = [l for l in out.splitlines() if "|" in l]
        assert len(body) == 10


class TestDeviationPlot:
    def test_from_fake_deviations(self):
        from repro.blas.modes import ComputeMode
        from repro.core.deviation import DeviationSeries

        t = np.linspace(0, 1, 25)
        devs = {
            "ekin": [
                DeviationSeries(
                    observable="ekin", mode=ComputeMode.FLOAT_TO_BF16,
                    time_fs=t, deviation=1e-3 * (t + 0.01),
                    reference=np.full(25, 50.0),
                ),
                DeviationSeries(
                    observable="ekin", mode=ComputeMode.COMPLEX_3M,
                    time_fs=t, deviation=1e-7 * (t + 0.01),
                    reference=np.full(25, 50.0),
                ),
            ]
        }
        out = plot_deviation_series(devs, "ekin")
        assert "FLOAT_TO_BF16" in out and "COMPLEX_3M" in out
        assert "deviation from FP32: ekin" in out

    def test_missing_observable(self):
        with pytest.raises(KeyError):
            plot_deviation_series({}, "ekin")
