"""Unit tests: the adaptive precision scheduler's control logic.

The scheduler is exercised against a scripted stand-in for the drift
monitor so every decision branch (breach, warn, dwell, hysteresis,
demotion, clamp) is reachable without running a simulation.
"""

import dataclasses

import pytest

from repro.blas.modes import ComputeMode
from repro.core.error_model import mode_effective_error
from repro.core.scheduler import (
    ADAPTIVE_ENV,
    AdaptiveScheduler,
    SchedulerConfig,
    adaptive_enabled,
    set_adaptive_enabled,
)
from repro.telemetry.drift import DriftAlert


@dataclasses.dataclass
class FakeMonitor:
    """Just the two scheduler-facing pieces of a DriftMonitor."""

    utilization: float = 0.0
    alerts: list = dataclasses.field(default_factory=list)

    def current_utilization(self):
        return self.utilization

    def breach(self, step):
        self.alerts.append(
            DriftAlert(
                level="breach", observable="nexc", step=step, time_fs=0.0,
                utilization=self.utilization, relative=0.0, envelope=1.0,
            )
        )


class TestLadder:
    def test_default_ladder_is_monotone_in_accuracy(self):
        sched = AdaptiveScheduler()
        errors = [mode_effective_error(m) for m in sched.ladder]
        assert errors == sorted(errors, reverse=True)
        # TF32 (single 10-bit product) sits below BF16X2 (compensated
        # 2-term split) — the ordering the analytic model dictates.
        assert sched.ladder.index(ComputeMode.FLOAT_TO_TF32) < sched.ladder.index(
            ComputeMode.FLOAT_TO_BF16X2
        )
        assert sched.ladder[0] is ComputeMode.FLOAT_TO_BF16
        # The Ozaki INT8 split (~2^-20 at three slices) lands between
        # BF16X2 and FP32; emulated FP64 (~2^-52) is the top rung.
        assert sched.ladder.index(ComputeMode.FLOAT_TO_BF16X2) < sched.ladder.index(
            ComputeMode.OZAKI_INT8
        )
        assert sched.ladder.index(ComputeMode.OZAKI_INT8) < sched.ladder.index(
            ComputeMode.STANDARD
        )
        assert sched.ladder[-1] is ComputeMode.EMULATED_FP64

    def test_duplicate_ladder_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AdaptiveScheduler(
                SchedulerConfig(ladder=("FLOAT_TO_BF16", "FLOAT_TO_BF16"))
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(escalate_at=0.1, demote_below=0.5)
        with pytest.raises(ValueError):
            SchedulerConfig(min_dwell_steps=-1)
        with pytest.raises(ValueError):
            SchedulerConfig(ladder=("FLOAT_TO_BF16",))


class TestEscalation:
    def test_starts_everything_at_ladder_bottom(self):
        sched = AdaptiveScheduler()
        assert all(
            m is sched.ladder[0] for m in sched.site_modes().values()
        )
        assert sched.policy.mode_for("nlp_prop") is sched.ladder[0]

    def test_breach_escalates_every_site_immediately(self):
        sched = AdaptiveScheduler()
        mon = FakeMonitor(utilization=5.0)
        mon.breach(step=1)
        made = sched.on_step(1, mon)
        assert len(made) == len(sched.config.sites)
        assert all(sw.reason == "breach" for sw in made)
        assert all(m is sched.ladder[1] for m in sched.site_modes().values())
        # The mutable policy follows the decision.
        assert sched.policy.mode_for("nlp_prop") is sched.ladder[1]

    def test_warn_escalates_one_site_only(self):
        sched = AdaptiveScheduler()
        mon = FakeMonitor(utilization=0.75)
        made = sched.on_step(1, mon)
        assert len(made) == 1
        assert made[0].reason == "warn"
        promoted = sum(
            1 for m in sched.site_modes().values() if m is sched.ladder[1]
        )
        assert promoted == 1

    def test_dwell_blocks_rapid_warn_escalation_of_same_site(self):
        cfg = SchedulerConfig(min_dwell_steps=10)
        sched = AdaptiveScheduler(cfg)
        mon = FakeMonitor(utilization=0.9)
        first = sched.on_step(1, mon)
        assert len(first) == 1
        site = first[0].site
        # Every step until the dwell expires: that site must not move
        # again; the others each take one rung instead.
        for step in range(2, 11):
            for sw in sched.on_step(step, mon):
                assert not (sw.site == site and step - 1 < 10)
        assert sched._rung[site] == 1

    def test_breach_ignores_dwell(self):
        cfg = SchedulerConfig(min_dwell_steps=1000)
        sched = AdaptiveScheduler(cfg)
        mon = FakeMonitor(utilization=2.0)
        mon.breach(step=1)
        assert len(sched.on_step(1, mon)) == len(cfg.sites)
        mon.breach(step=2)
        assert len(sched.on_step(2, mon)) == len(cfg.sites)

    def test_unhandled_breach_counted_at_ladder_top(self):
        sched = AdaptiveScheduler()
        mon = FakeMonitor(utilization=2.0)
        for step in range(1, len(sched.ladder)):
            mon.breach(step=step)
            sched.on_step(step, mon)
        assert all(m is sched.ladder[-1] for m in sched.site_modes().values())
        assert sched.unhandled_breaches == 0
        mon.breach(step=99)
        assert sched.on_step(99, mon) == []
        assert sched.unhandled_breaches == 1

    def test_no_monitor_means_no_decisions(self):
        sched = AdaptiveScheduler()
        assert sched.on_step(1, None) == []
        assert sched.escalations == 0


class TestDemotion:
    def test_quiet_block_demotes_at_scf_boundary(self):
        sched = AdaptiveScheduler()
        mon = FakeMonitor(utilization=2.0)
        mon.breach(step=1)
        sched.on_step(1, mon)
        assert all(m is sched.ladder[1] for m in sched.site_modes().values())
        # Close the noisy block, then run a quiet one.
        sched.on_scf_boundary(1, mon)
        mon.utilization = 0.05
        sched.on_step(2, mon)
        made = sched.on_scf_boundary(2, mon)
        assert len(made) == len(sched.config.sites)
        assert all(sw.reason == "scf_reset" for sw in made)
        assert all(m is sched.ladder[0] for m in sched.site_modes().values())

    def test_hysteresis_blocks_demotion_in_the_dead_band(self):
        sched = AdaptiveScheduler()
        mon = FakeMonitor(utilization=2.0)
        mon.breach(step=1)
        sched.on_step(1, mon)
        sched.on_scf_boundary(1, mon)
        # Utilization between demote_below and escalate_at: hold.
        mon.utilization = 0.5
        sched.on_step(2, mon)
        assert sched.on_scf_boundary(2, mon) == []
        assert all(m is sched.ladder[1] for m in sched.site_modes().values())

    def test_block_with_alert_never_demotes(self):
        sched = AdaptiveScheduler()
        mon = FakeMonitor(utilization=2.0)
        mon.breach(step=1)
        sched.on_step(1, mon)
        mon.utilization = 0.01  # quiet *after* the breach
        sched.on_step(2, mon)
        # The block saw an alert at step 1 -> no demotion at its end.
        assert sched.on_scf_boundary(2, mon) == []

    def test_demotion_stops_at_ladder_bottom(self):
        sched = AdaptiveScheduler()
        mon = FakeMonitor(utilization=0.0)
        sched.on_step(1, mon)
        assert sched.on_scf_boundary(1, mon) == []
        assert sched.demotions == 0

    def test_block_stats_reset_per_block(self):
        sched = AdaptiveScheduler()
        mon = FakeMonitor(utilization=0.9)
        sched.on_step(1, mon)
        sched.on_scf_boundary(1, mon)
        assert sched._block_max_util is None
        assert sched._block_alerts == 0


class TestClampAndSummary:
    def test_clamp_pins_sites_and_default(self):
        sched = AdaptiveScheduler(clamp="FLOAT_TO_BF16X3")
        assert sched.clamp is ComputeMode.FLOAT_TO_BF16X3
        for site in sched.config.sites:
            assert sched.mode_for(site) is ComputeMode.FLOAT_TO_BF16X3
            assert sched.policy.mode_for(site) is ComputeMode.FLOAT_TO_BF16X3
        # Unlabeled anchors (the FP64 phase's calls) resolve to the
        # clamp too, matching a static compute_mode scope.
        assert sched.policy.mode_for("") is ComputeMode.FLOAT_TO_BF16X3

    def test_clamp_makes_every_hook_a_noop(self):
        sched = AdaptiveScheduler(clamp="FLOAT_TO_BF16")
        mon = FakeMonitor(utilization=100.0)
        mon.breach(step=1)
        assert sched.on_step(1, mon) == []
        assert sched.on_scf_boundary(1, mon) == []
        assert sched.switches == []

    def test_summary_shape(self):
        sched = AdaptiveScheduler()
        mon = FakeMonitor(utilization=2.0)
        mon.breach(step=1)
        sched.on_step(1, mon)
        s = sched.summary()
        assert s["clamp"] is None
        assert s["escalations"] == len(sched.config.sites)
        assert s["unhandled_breaches"] == 0
        assert len(s["switches"]) == len(sched.config.sites)
        sw = s["switches"][0]
        assert set(sw) == {"step", "site", "from", "to", "reason", "utilization"}
        assert s["final_modes"]["nlp_prop"] == sched.ladder[1].env_value

    def test_scope_installs_policy(self):
        from repro.blas.policy import active_policy

        sched = AdaptiveScheduler()
        assert active_policy() is not sched.policy
        with sched.scope():
            assert active_policy() is sched.policy
        assert active_policy() is not sched.policy


class TestTelemetry:
    def test_switch_events_counters_gauges(self):
        from repro.telemetry.registry import disable, enable

        c = enable()
        try:
            sched = AdaptiveScheduler()
            mon = FakeMonitor(utilization=2.0)
            mon.breach(step=3)
            sched.on_step(3, mon)
            sched.on_scf_boundary(3, mon)  # noisy block: no demotion
            mon.utilization = 0.01
            sched.on_step(4, mon)
            sched.on_scf_boundary(4, mon)  # quiet block: all demote
        finally:
            disable()
        ups = c.counter_value("sched.switches", site="nlp_prop", direction="up")
        downs = c.counter_value("sched.switches", site="nlp_prop", direction="down")
        assert ups == 1 and downs == 1
        assert c.gauge_value("sched.site_rung", site="nlp_prop") == 0.0
        names = [e["name"] for e in c.events if e.get("cat") == "sched"]
        assert names.count("sched.switch") == 6
        args = next(
            e["args"] for e in c.events if e.get("name") == "sched.switch"
        )
        assert {"site", "from_mode", "to_mode", "step", "reason"} <= set(args)


class TestAmbientEnablement:
    def test_override_beats_env(self, monkeypatch):
        monkeypatch.delenv(ADAPTIVE_ENV, raising=False)
        assert not adaptive_enabled()
        monkeypatch.setenv(ADAPTIVE_ENV, "1")
        assert adaptive_enabled()
        set_adaptive_enabled(False)
        try:
            assert not adaptive_enabled()
            set_adaptive_enabled(True)
            monkeypatch.setenv(ADAPTIVE_ENV, "0")
            assert adaptive_enabled()
        finally:
            set_adaptive_enabled(None)

    def test_env_zero_is_off(self, monkeypatch):
        monkeypatch.setenv(ADAPTIVE_ENV, "0")
        assert not adaptive_enabled()
