"""Unit tests: Max 1550 device spec (Table I data and derates)."""

import pytest

from repro.gpu.specs import EngineKind, MAX_1550_STACK, peak_table
from repro.types import Precision


class TestTable1:
    def test_published_peaks(self):
        spec = MAX_1550_STACK
        assert spec.peak(Precision.FP64) == pytest.approx(26e12)
        assert spec.peak(Precision.FP32) == pytest.approx(26e12)
        assert spec.peak(Precision.TF32) == pytest.approx(209e12)
        assert spec.peak(Precision.BF16) == pytest.approx(419e12)
        assert spec.peak(Precision.FP16) == pytest.approx(419e12)
        assert spec.peak(Precision.INT8) == pytest.approx(839e12)

    def test_engine_assignment(self):
        spec = MAX_1550_STACK
        assert spec.engine_for(Precision.FP64) is EngineKind.VECTOR
        assert spec.engine_for(Precision.FP32) is EngineKind.VECTOR
        for p in (Precision.TF32, Precision.BF16, Precision.FP16, Precision.INT8):
            assert spec.engine_for(p) is EngineKind.MATRIX

    def test_peak_table_rows(self):
        rows = peak_table()
        assert len(rows) == 6
        precisions = [r[0] for r in rows]
        assert precisions[0] is Precision.FP64
        assert rows[-1][2] == "TOP/s"  # INT8 in ops, not flops

    def test_paper_hardware_facts(self):
        spec = MAX_1550_STACK
        assert spec.n_eu == 448                       # Section IV-A
        assert spec.frequency_hz == pytest.approx(1.6e9)
        assert spec.hbm_bytes == 64 * 1024**3         # Table V caption


class TestDerates:
    def test_power_caps_below_one(self):
        for p, cap in MAX_1550_STACK.power_derate.items():
            assert 0 < cap < 1, p

    def test_sustained_below_peak(self):
        for p in Precision:
            assert MAX_1550_STACK.sustained(p) < MAX_1550_STACK.peak(p)

    def test_effective_bandwidth_below_raw(self):
        assert MAX_1550_STACK.effective_bandwidth() < MAX_1550_STACK.hbm_bandwidth


class TestTileEfficiency:
    def test_monotone_in_m_and_n(self):
        spec = MAX_1550_STACK
        e1 = spec.tile_efficiency(64, 1024, 1000, EngineKind.MATRIX)
        e2 = spec.tile_efficiency(128, 1024, 1000, EngineKind.MATRIX)
        e3 = spec.tile_efficiency(128, 2048, 1000, EngineKind.MATRIX)
        assert e1 < e2 < e3

    def test_bounded_in_unit_interval(self):
        spec = MAX_1550_STACK
        for m, n in [(1, 1), (128, 128), (4096, 4096), (10**6, 10**6)]:
            eff = spec.tile_efficiency(m, n, 100, EngineKind.VECTOR)
            assert 0 < eff < 1

    def test_k_independent(self):
        spec = MAX_1550_STACK
        assert spec.tile_efficiency(128, 128, 10, EngineKind.MATRIX) == spec.tile_efficiency(
            128, 128, 10**6, EngineKind.MATRIX
        )


class TestStreamRate:
    def test_monotone_in_buffer_size(self):
        spec = MAX_1550_STACK
        assert spec.stream_rate(1e6) < spec.stream_rate(1e9) < spec.stream_rate(1e12)

    def test_saturates_at_max(self):
        spec = MAX_1550_STACK
        assert spec.stream_rate(1e15) == pytest.approx(spec.stream_bandwidth_max, rel=1e-3)

    def test_half_point(self):
        spec = MAX_1550_STACK
        assert spec.stream_rate(spec.stream_half_bytes) == pytest.approx(
            spec.stream_bandwidth_max / 2
        )

    def test_invalid_buffer_rejected(self):
        with pytest.raises(ValueError):
            MAX_1550_STACK.stream_rate(0)


class TestMemoryFit:
    def test_fits_boundary(self):
        spec = MAX_1550_STACK
        assert spec.fits_in_memory(spec.hbm_bytes)
        assert not spec.fits_in_memory(spec.hbm_bytes + 1)
