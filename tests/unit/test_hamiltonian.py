"""Unit tests: Hamiltonian assembly and application (QXMD side)."""

import numpy as np
import pytest

from repro.dcmesh.hamiltonian import Hamiltonian, ionic_potential
from repro.dcmesh.material import build_pto_supercell
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.projectors import build_projectors
from repro.dcmesh.wavefunction import OrbitalSet


@pytest.fixture(scope="module")
def system():
    material = build_pto_supercell((1, 1, 1), lattice=6.0)
    mesh = Mesh((10, 10, 10), material.box)
    proj = build_projectors(material, mesh)
    v = ionic_potential(material, mesh)
    return material, mesh, proj, Hamiltonian(mesh, v, proj)


class TestIonicPotential:
    def test_real_and_attractive_at_atoms(self, system):
        material, mesh, _, h = system
        v = h.v_local
        assert v.dtype == np.float64
        # Potential minimum should be near an atom site (deep well).
        idx = np.argmin(v)
        dmin = min(
            np.linalg.norm(mesh.minimum_image(mesh.coords[idx] - pos))
            for pos in material.positions
        )
        assert dmin < 1.0
        assert v.min() < -1.0

    def test_periodic_translation_invariance(self):
        # Shifting all atoms by a lattice vector leaves V unchanged.
        a = build_pto_supercell((1, 1, 1), lattice=6.0)
        mesh = Mesh((8, 8, 8), a.box)
        b = a.displaced(np.array([6.0, 0.0, 0.0]))
        np.testing.assert_allclose(
            ionic_potential(a, mesh), ionic_potential(b, mesh), atol=1e-10
        )

    def test_scales_with_valence(self):
        m = build_pto_supercell((1, 1, 1), lattice=6.0)
        mesh = Mesh((8, 8, 8), m.box)
        v = ionic_potential(m, mesh)
        # Integral of V ~ -sum Z * (2 pi sigma^2)^{3/2}: negative.
        assert np.sum(v) * mesh.dv < 0


class TestApply:
    def test_hermitian(self, system, rng):
        _, mesh, _, h = system
        x = (rng.standard_normal((mesh.n_grid, 2))
             + 1j * rng.standard_normal((mesh.n_grid, 2)))
        y = (rng.standard_normal((mesh.n_grid, 2))
             + 1j * rng.standard_normal((mesh.n_grid, 2)))
        lhs = np.vdot(x, h.apply(y)) * mesh.dv
        rhs = np.vdot(h.apply(x), y) * mesh.dv
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_kinetic_on_plane_wave(self, system):
        _, mesh, _, h = system
        kvec = mesh.kvecs[5]
        psi = np.exp(1j * (mesh.coords @ kvec))[:, None]
        t_psi = h.kinetic_apply(psi)
        expect = 0.5 * float(kvec @ kvec) * psi
        np.testing.assert_allclose(t_psi, expect, atol=1e-8)

    def test_kinetic_with_field_shifts_dispersion(self, system):
        _, mesh, _, h = system
        kvec = mesh.kvecs[5]
        a = np.array([0.0, 0.0, 0.3])
        psi = np.exp(1j * (mesh.coords @ kvec))[:, None]
        t_psi = h.kinetic_apply(psi, a_field=a)
        expect = 0.5 * float((kvec + a) @ (kvec + a)) * psi
        np.testing.assert_allclose(t_psi, expect, atol=1e-8)

    def test_field_shape_validation(self, system):
        _, mesh, _, h = system
        psi = np.zeros((mesh.n_grid, 1), np.complex128)
        with pytest.raises(ValueError, match="3-vector"):
            h.kinetic_apply(psi, a_field=np.zeros(2))

    def test_vlocal_shape_validation(self, system):
        _, mesh, _, _ = system
        with pytest.raises(ValueError, match="flat"):
            Hamiltonian(mesh, np.zeros((10, 10)))


class TestExpectationAndSubspace:
    def test_expectation_real_for_hermitian(self, system):
        _, mesh, _, h = system
        orb = OrbitalSet.random(mesh, 4, 2, seed=0)
        e = h.expectation(orb.psi, orb.occupations)
        assert isinstance(e, float)

    def test_subspace_hermitian(self, system):
        _, mesh, _, h = system
        orb = OrbitalSet.random(mesh, 4, 2, seed=1)
        hs = h.subspace(orb.psi)
        np.testing.assert_allclose(hs, hs.conj().T, atol=1e-10)

    def test_expectation_consistent_with_subspace_diag(self, system):
        _, mesh, _, h = system
        orb = OrbitalSet.random(mesh, 4, 2, seed=2)
        hs = h.subspace(orb.psi)
        via_sub = float(np.real(np.diagonal(hs)) @ orb.occupations)
        assert h.expectation(orb.psi, orb.occupations) == pytest.approx(via_sub, rel=1e-10)
