"""Tests for ``scripts/check_bench_regression.py``.

The script is the CI gate for the split-plan fast path; these tests
pin its exit codes, the ``--slack`` relative tolerance, and the
``--report-only`` non-blocking mode.
"""

import importlib.util
import json
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)


def _write(tmp_path, speedup=2.0, bitwise=True, floor=1.5, mode="FLOAT_TO_BF16X3"):
    results = tmp_path / "results.json"
    floors = tmp_path / "floors.json"
    results.write_text(
        json.dumps(
            {
                "results": [
                    {
                        "mode": mode,
                        "speedup": speedup,
                        "bitwise_identical": bitwise,
                        "cold_seconds": 1e-3,
                        "prepared_seconds": 1e-3 / max(speedup, 1e-9),
                    }
                ]
            }
        )
    )
    floors.write_text(json.dumps({"floors": {mode: floor}}))
    return results, floors


class TestCheck:
    def test_passes_above_floor(self, tmp_path, capsys):
        results, floors = _write(tmp_path, speedup=2.0, floor=1.5)
        assert bench.check(results, floors) == 0
        assert "passed" in capsys.readouterr().out

    def test_fails_below_floor(self, tmp_path, capsys):
        results, floors = _write(tmp_path, speedup=1.0, floor=1.5)
        assert bench.check(results, floors) == 1
        assert "BELOW FLOOR" in capsys.readouterr().out

    def test_fails_on_bitwise_mismatch(self, tmp_path, capsys):
        results, floors = _write(tmp_path, speedup=2.0, bitwise=False)
        assert bench.check(results, floors) == 1
        assert "BITWISE MISMATCH" in capsys.readouterr().out

    def test_fails_on_missing_mode(self, tmp_path):
        results, floors = _write(tmp_path)
        floors.write_text(json.dumps({"floors": {"SOME_OTHER_MODE": 1.0}}))
        assert bench.check(results, floors) == 1

    def test_missing_results_file(self, tmp_path, capsys):
        assert bench.check(tmp_path / "nope.json", tmp_path / "floors.json") == 1
        assert "not found" in capsys.readouterr().err


class TestUnusableBaselines:
    """Missing/corrupt inputs must yield one clear line, not a traceback."""

    def test_missing_floors_file(self, tmp_path, capsys):
        results, floors = _write(tmp_path)
        floors.unlink()
        assert bench.check(results, floors) == 1
        err = capsys.readouterr().err
        assert "not found" in err and "Traceback" not in err

    def test_corrupt_results_json(self, tmp_path, capsys):
        results, floors = _write(tmp_path)
        results.write_text("{not json")
        assert bench.check(results, floors) == 1
        err = capsys.readouterr().err
        assert "not valid JSON" in err and str(results) in err

    def test_corrupt_floors_json(self, tmp_path, capsys):
        results, floors = _write(tmp_path)
        floors.write_text("[1, 2,")
        assert bench.check(results, floors) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_results_missing_key(self, tmp_path, capsys):
        results, floors = _write(tmp_path)
        results.write_text(json.dumps({"wrong": []}))
        assert bench.check(results, floors) == 1
        assert "'results'" in capsys.readouterr().err

    def test_floors_missing_key(self, tmp_path, capsys):
        results, floors = _write(tmp_path)
        floors.write_text(json.dumps({"wrong": {}}))
        assert bench.check(results, floors) == 1
        assert "'floors'" in capsys.readouterr().err

    def test_report_only_warns_and_passes(self, tmp_path, capsys):
        results, floors = _write(tmp_path)
        results.write_text("{not json")
        assert bench.check(results, floors, report_only=True) == 0
        out = capsys.readouterr()
        assert "skipped" in out.out
        assert "warning" in out.err or "warning" in out.out

    def test_report_only_annotates_missing_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("GITHUB_ACTIONS", "true")
        results, floors = _write(tmp_path)
        results.unlink()
        assert bench.check(results, floors, report_only=True) == 0
        assert "::warning" in capsys.readouterr().out


class TestSlack:
    def test_slack_tolerates_shortfall(self, tmp_path):
        # 1.30x against a 1.50x floor: fails dry, passes with 20% slack.
        results, floors = _write(tmp_path, speedup=1.30, floor=1.50)
        assert bench.check(results, floors) == 1
        assert bench.check(results, floors, slack=0.20) == 0

    def test_slack_never_covers_bitwise(self, tmp_path):
        results, floors = _write(tmp_path, speedup=5.0, bitwise=False)
        assert bench.check(results, floors, slack=0.99) == 1

    def test_slack_out_of_range_rejected(self, tmp_path, capsys):
        results, floors = _write(tmp_path)
        assert bench.check(results, floors, slack=1.0) == 2
        assert "--slack" in capsys.readouterr().err

    def test_cli_slack_flag(self, tmp_path):
        results, floors = _write(tmp_path, speedup=1.30, floor=1.50)
        argv = [str(results), str(floors), "--slack", "0.2"]
        assert bench.main(argv) == 0

    def test_env_slack_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_SLACK", "0.2")
        results, floors = _write(tmp_path, speedup=1.30, floor=1.50)
        assert bench.main([str(results), str(floors)]) == 0


class TestReportOnly:
    def test_violations_do_not_fail(self, tmp_path, capsys):
        results, floors = _write(tmp_path, speedup=1.0, floor=1.5)
        assert bench.check(results, floors, report_only=True) == 0
        out = capsys.readouterr()
        assert "report-only" in out.out
        assert "warning" in out.err or "warning" in out.out

    def test_github_annotation_format(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("GITHUB_ACTIONS", "true")
        results, floors = _write(tmp_path, speedup=1.0, floor=1.5)
        assert bench.check(results, floors, report_only=True) == 0
        assert "::warning title=bench regression::" in capsys.readouterr().out

    def test_env_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_REPORT_ONLY", "1")
        results, floors = _write(tmp_path, speedup=1.0, floor=1.5)
        assert bench.main([str(results), str(floors)]) == 0

    def test_clean_run_still_passes(self, tmp_path):
        results, floors = _write(tmp_path, speedup=2.0, floor=1.5)
        assert bench.check(results, floors, report_only=True) == 0


class TestAgainstRepoFloors:
    def test_repo_floors_file_is_well_formed(self):
        floors = json.loads(
            (Path(_SCRIPT).parents[1] / "benchmarks" / "splitgemm_floors.json").read_text()
        )["floors"]
        assert floors
        for mode, floor in floors.items():
            assert isinstance(mode, str)
            assert floor > 0
