"""Tests for ``scripts/check_bench_regression.py``.

The script is the CI gate for the split-plan fast path; these tests
pin its exit codes, the ``--slack`` relative tolerance, and the
``--report-only`` non-blocking mode.
"""

import importlib.util
import json
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)


def _write(tmp_path, speedup=2.0, bitwise=True, floor=1.5, mode="FLOAT_TO_BF16X3"):
    results = tmp_path / "results.json"
    floors = tmp_path / "floors.json"
    results.write_text(
        json.dumps(
            {
                "results": [
                    {
                        "mode": mode,
                        "speedup": speedup,
                        "bitwise_identical": bitwise,
                        "cold_seconds": 1e-3,
                        "prepared_seconds": 1e-3 / max(speedup, 1e-9),
                    }
                ]
            }
        )
    )
    floors.write_text(json.dumps({"floors": {mode: floor}}))
    return results, floors


class TestCheck:
    def test_passes_above_floor(self, tmp_path, capsys):
        results, floors = _write(tmp_path, speedup=2.0, floor=1.5)
        assert bench.check(results, floors) == 0
        assert "passed" in capsys.readouterr().out

    def test_fails_below_floor(self, tmp_path, capsys):
        results, floors = _write(tmp_path, speedup=1.0, floor=1.5)
        assert bench.check(results, floors) == 1
        assert "BELOW FLOOR" in capsys.readouterr().out

    def test_fails_on_bitwise_mismatch(self, tmp_path, capsys):
        results, floors = _write(tmp_path, speedup=2.0, bitwise=False)
        assert bench.check(results, floors) == 1
        assert "BITWISE MISMATCH" in capsys.readouterr().out

    def test_fails_on_missing_mode(self, tmp_path):
        results, floors = _write(tmp_path)
        floors.write_text(json.dumps({"floors": {"SOME_OTHER_MODE": 1.0}}))
        assert bench.check(results, floors) == 1

    def test_missing_results_file(self, tmp_path, capsys):
        assert bench.check(tmp_path / "nope.json", tmp_path / "floors.json") == 1
        assert "not found" in capsys.readouterr().err


class TestUnusableBaselines:
    """Missing/corrupt inputs must yield one clear line, not a traceback."""

    def test_missing_floors_file(self, tmp_path, capsys):
        results, floors = _write(tmp_path)
        floors.unlink()
        assert bench.check(results, floors) == 1
        err = capsys.readouterr().err
        assert "not found" in err and "Traceback" not in err

    def test_corrupt_results_json(self, tmp_path, capsys):
        results, floors = _write(tmp_path)
        results.write_text("{not json")
        assert bench.check(results, floors) == 1
        err = capsys.readouterr().err
        assert "not valid JSON" in err and str(results) in err

    def test_corrupt_floors_json(self, tmp_path, capsys):
        results, floors = _write(tmp_path)
        floors.write_text("[1, 2,")
        assert bench.check(results, floors) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_results_missing_key(self, tmp_path, capsys):
        results, floors = _write(tmp_path)
        results.write_text(json.dumps({"wrong": []}))
        assert bench.check(results, floors) == 1
        assert "'results'" in capsys.readouterr().err

    def test_floors_missing_key(self, tmp_path, capsys):
        results, floors = _write(tmp_path)
        floors.write_text(json.dumps({"wrong": {}}))
        assert bench.check(results, floors) == 1
        assert "'floors'" in capsys.readouterr().err

    def test_report_only_warns_and_passes(self, tmp_path, capsys):
        results, floors = _write(tmp_path)
        results.write_text("{not json")
        assert bench.check(results, floors, report_only=True) == 0
        out = capsys.readouterr()
        assert "skipped" in out.out
        assert "warning" in out.err or "warning" in out.out

    def test_report_only_annotates_missing_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("GITHUB_ACTIONS", "true")
        results, floors = _write(tmp_path)
        results.unlink()
        assert bench.check(results, floors, report_only=True) == 0
        assert "::warning" in capsys.readouterr().out


class TestSlack:
    def test_slack_tolerates_shortfall(self, tmp_path):
        # 1.30x against a 1.50x floor: fails dry, passes with 20% slack.
        results, floors = _write(tmp_path, speedup=1.30, floor=1.50)
        assert bench.check(results, floors) == 1
        assert bench.check(results, floors, slack=0.20) == 0

    def test_slack_never_covers_bitwise(self, tmp_path):
        results, floors = _write(tmp_path, speedup=5.0, bitwise=False)
        assert bench.check(results, floors, slack=0.99) == 1

    def test_slack_out_of_range_rejected(self, tmp_path, capsys):
        results, floors = _write(tmp_path)
        assert bench.check(results, floors, slack=1.0) == 2
        assert "--slack" in capsys.readouterr().err

    def test_cli_slack_flag(self, tmp_path):
        results, floors = _write(tmp_path, speedup=1.30, floor=1.50)
        argv = [str(results), str(floors), "--slack", "0.2"]
        assert bench.main(argv) == 0

    def test_env_slack_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_SLACK", "0.2")
        results, floors = _write(tmp_path, speedup=1.30, floor=1.50)
        assert bench.main([str(results), str(floors)]) == 0


class TestReportOnly:
    def test_violations_do_not_fail(self, tmp_path, capsys):
        results, floors = _write(tmp_path, speedup=1.0, floor=1.5)
        assert bench.check(results, floors, report_only=True) == 0
        out = capsys.readouterr()
        assert "report-only" in out.out
        assert "warning" in out.err or "warning" in out.out

    def test_github_annotation_format(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("GITHUB_ACTIONS", "true")
        results, floors = _write(tmp_path, speedup=1.0, floor=1.5)
        assert bench.check(results, floors, report_only=True) == 0
        assert "::warning title=bench regression::" in capsys.readouterr().out

    def test_env_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_REPORT_ONLY", "1")
        results, floors = _write(tmp_path, speedup=1.0, floor=1.5)
        assert bench.main([str(results), str(floors)]) == 0

    def test_clean_run_still_passes(self, tmp_path):
        results, floors = _write(tmp_path, speedup=2.0, floor=1.5)
        assert bench.check(results, floors, report_only=True) == 0


class TestAgainstRepoFloors:
    def test_repo_floors_file_is_well_formed(self):
        floors = json.loads(
            (Path(_SCRIPT).parents[1] / "benchmarks" / "splitgemm_floors.json").read_text()
        )["floors"]
        assert floors
        for mode, floor in floors.items():
            assert isinstance(mode, str)
            assert floor > 0

    def test_repo_newmodes_ceilings_file_is_well_formed(self):
        doc = json.loads(
            (Path(_SCRIPT).parents[1] / "benchmarks" / "newmodes_floors.json").read_text()
        )
        assert doc["slowdown_ceilings"] and doc["error_ceilings"]
        for case, ceiling in doc["slowdown_ceilings"].items():
            assert isinstance(case, str) and ceiling > 1.0
        for case, ceiling in doc["error_ceilings"].items():
            assert case in doc["slowdown_ceilings"]
            assert ceiling > 0
        for lo, hi in doc["error_orderings"]:
            assert lo != hi


def _write_newmodes(tmp_path, slowdown=10.0, error=1e-3, case="sgemm/OZAKI_INT8(s=2)",
                    slowdown_ceiling=25.0, error_ceiling=1e-2, orderings=()):
    results = tmp_path / "results.json"
    floors = tmp_path / "floors.json"
    rows = [{"case": case, "slowdown_vs_standard": slowdown,
             "max_abs_dev_vs_fp64": error}]
    # Give ordering tests a second, strictly-worse case to compare to.
    rows.append({"case": "other", "slowdown_vs_standard": 1.0,
                 "max_abs_dev_vs_fp64": 1.0})
    results.write_text(json.dumps({"results": rows}))
    floors.write_text(json.dumps({
        "slowdown_ceilings": {case: slowdown_ceiling},
        "error_ceilings": {case: error_ceiling},
        "error_orderings": list(orderings),
    }))
    return results, floors


class TestCheckNewmodes:
    """The --newmodes gate: ceilings (not floors) + ladder orderings."""

    def test_passes_under_ceilings(self, tmp_path, capsys):
        results, floors = _write_newmodes(tmp_path)
        assert bench.check_newmodes(results, floors) == 0
        assert "passed" in capsys.readouterr().out

    def test_fails_above_slowdown_ceiling(self, tmp_path, capsys):
        results, floors = _write_newmodes(tmp_path, slowdown=30.0)
        assert bench.check_newmodes(results, floors) == 1
        assert "ABOVE CEILING" in capsys.readouterr().out

    def test_slack_widens_slowdown_ceiling_only(self, tmp_path):
        results, floors = _write_newmodes(tmp_path, slowdown=30.0)
        assert bench.check_newmodes(results, floors, slack=0.25) == 0
        # Accuracy gets no slack: same 25% cannot excuse an error breach.
        results, floors = _write_newmodes(tmp_path, error=1.1e-2)
        assert bench.check_newmodes(results, floors, slack=0.25) == 1

    def test_fails_above_error_ceiling(self, tmp_path, capsys):
        results, floors = _write_newmodes(tmp_path, error=0.5)
        assert bench.check_newmodes(results, floors) == 1
        assert "ERROR ABOVE CEILING" in capsys.readouterr().out

    def test_ordering_violation_fails(self, tmp_path, capsys):
        results, floors = _write_newmodes(
            tmp_path, error=2.0, error_ceiling=5.0,
            orderings=[["sgemm/OZAKI_INT8(s=2)", "other"]],
        )
        assert bench.check_newmodes(results, floors) == 1
        assert "ORDERING VIOLATED" in capsys.readouterr().out

    def test_ordering_satisfied_passes(self, tmp_path):
        results, floors = _write_newmodes(
            tmp_path, orderings=[["sgemm/OZAKI_INT8(s=2)", "other"]]
        )
        assert bench.check_newmodes(results, floors) == 0

    def test_missing_case_fails(self, tmp_path):
        results, floors = _write_newmodes(tmp_path)
        floors.write_text(json.dumps({
            "slowdown_ceilings": {"not/present": 2.0},
        }))
        assert bench.check_newmodes(results, floors) == 1

    def test_report_only_never_fails(self, tmp_path, capsys):
        results, floors = _write_newmodes(tmp_path, slowdown=99.0, error=9.9)
        assert bench.check_newmodes(results, floors, report_only=True) == 0
        assert "report-only" in capsys.readouterr().out

    def test_missing_results_file_is_one_clear_line(self, tmp_path, capsys):
        _, floors = _write_newmodes(tmp_path)
        assert bench.check_newmodes(tmp_path / "nope.json", floors) == 1
        err = capsys.readouterr().err
        assert "not found" in err and "Traceback" not in err

    def test_cli_newmodes_flag(self, tmp_path):
        results, floors = _write_newmodes(tmp_path)
        assert bench.main([str(results), str(floors), "--newmodes"]) == 0
        assert bench.main(["--newmodes", "--adaptive"]) == 2

    def test_repo_gate_passes_against_committed_results(self):
        """The committed BENCH_newmodes.json must clear the committed
        ceilings at the CI slack — the promotion-to-gating contract."""
        repo = Path(_SCRIPT).parents[1]
        assert bench.check_newmodes(
            repo / "BENCH_newmodes.json",
            repo / "benchmarks" / "newmodes_floors.json",
            slack=0.25,
        ) == 0
