"""Unit tests: batched GEMM with compute modes."""

import numpy as np
import pytest

from repro.blas.batch import gemm_batch
from repro.blas.gemm import gemm, use_device
from repro.blas.modes import ComputeMode
from repro.blas.verbose import format_verbose_line, mkl_verbose

pytestmark = pytest.mark.usefixtures("clean_mode_env")

MODES = list(ComputeMode)


def _stack(rng, batch=4, m=6, k=5, n=7, dtype=np.float32):
    a = rng.standard_normal((batch, m, k))
    b = rng.standard_normal((batch, k, n))
    if np.dtype(dtype).kind == "c":
        a = a + 1j * rng.standard_normal(a.shape)
        b = b + 1j * rng.standard_normal(b.shape)
    return a.astype(dtype), b.astype(dtype)


class TestSemantics:
    def test_matches_per_item_gemm_every_mode(self, rng):
        a, b = _stack(rng)
        for mode in MODES:
            batched = gemm_batch(a, b, mode=mode)
            for i in range(a.shape[0]):
                np.testing.assert_array_equal(
                    batched[i], gemm(a[i], b[i], mode=mode),
                    err_msg=str(mode),
                )

    def test_complex_matches_per_item(self, rng):
        a, b = _stack(rng, dtype=np.complex64)
        for mode in (ComputeMode.FLOAT_TO_BF16, ComputeMode.COMPLEX_3M):
            batched = gemm_batch(a, b, mode=mode)
            for i in range(a.shape[0]):
                np.testing.assert_array_equal(batched[i], gemm(a[i], b[i], mode=mode))

    def test_transposes(self, rng):
        a, b = _stack(rng, m=5, k=5, n=5, dtype=np.complex64)
        out = gemm_batch(a, b, trans_a="C")
        for i in range(a.shape[0]):
            np.testing.assert_allclose(out[i], a[i].conj().T @ b[i], rtol=1e-5)

    def test_alpha(self, rng):
        a, b = _stack(rng)
        np.testing.assert_allclose(
            gemm_batch(a, b, alpha=2.0), 2.0 * gemm_batch(a, b), rtol=1e-6
        )

    def test_validation(self, rng):
        a, b = _stack(rng)
        with pytest.raises(ValueError, match="3-D"):
            gemm_batch(a[0], b)
        with pytest.raises(ValueError, match="batch dimensions"):
            gemm_batch(a[:2], b[:3])
        with pytest.raises(ValueError, match="inner dimensions"):
            gemm_batch(a, np.swapaxes(b, 1, 2))
        a_nan = a.copy()
        a_nan[0, 0, 0] = np.nan
        with pytest.raises(FloatingPointError):
            gemm_batch(a_nan, b)


class TestInstrumentation:
    def test_single_verbose_record_with_batch(self, rng):
        a, b = _stack(rng, batch=5, dtype=np.complex64)
        with mkl_verbose() as log:
            gemm_batch(a, b, mode="FLOAT_TO_BF16")
        assert len(log) == 1
        rec = log[0]
        assert rec.batch == 5
        assert rec.routine == "cgemm"
        line = format_verbose_line(rec)
        assert "CGEMM_BATCH" in line and "batch:5" in line

    def test_flops_scale_with_batch(self, rng):
        a, b = _stack(rng, batch=3)
        with mkl_verbose() as log:
            gemm_batch(a, b)
        assert log[0].flops == 3 * 2 * 6 * 7 * 5

    def test_device_booking_amortises_launch(self, rng):
        from repro.gpu import Device

        a, b = _stack(rng, batch=8, dtype=np.complex64)
        dev = Device()
        with use_device(dev):
            gemm_batch(a, b)
        single = dev.model.cost("cgemm", 6, 7, 5, ComputeMode.STANDARD)
        booked = dev.timeline.events[0]
        assert booked.name == "cgemm_batch"
        body = max(single.point.compute_seconds, single.point.memory_seconds)
        assert booked.duration == pytest.approx(
            8 * body + single.point.overhead_seconds
        )
        # Far cheaper than eight separate launches.
        assert booked.duration < 8 * single.seconds

    def test_batch_validation_on_device(self):
        from repro.gpu import Device

        with pytest.raises(ValueError, match="batch"):
            Device().record_gemm_batch("cgemm", 4, 4, 4, 0, ComputeMode.STANDARD)
