"""Unit tests: input-directory loader (the artifact's run recipe)."""

import pytest

from repro.dcmesh.io.loader import (
    INPUT_NAMES,
    load_simulation_config,
    save_simulation_config,
)
from repro.dcmesh.simulation import SimulationConfig
from repro.types import Precision


class TestRoundTrip:
    def test_save_creates_all_three_files(self, tmp_path):
        cfg = SimulationConfig.small_test()
        save_simulation_config(tmp_path, cfg)
        for name in INPUT_NAMES:
            assert (tmp_path / name).exists(), name

    def test_config_survives_roundtrip(self, tmp_path):
        cfg = SimulationConfig.small_test(seed=11, n_qd_steps=123, nscf=41)
        save_simulation_config(tmp_path, cfg)
        back = load_simulation_config(tmp_path)
        assert back.ncells == cfg.ncells
        assert back.mesh_shape == cfg.mesh_shape
        assert back.n_orb == cfg.n_orb
        assert back.dt == cfg.dt
        assert back.n_qd_steps == 123
        assert back.nscf == 41
        assert back.seed == 11
        assert back.storage is Precision.FP32
        assert back.laser == cfg.laser

    def test_paper_40_roundtrip(self, tmp_path):
        cfg = SimulationConfig.paper_40()
        save_simulation_config(tmp_path, cfg)
        back = load_simulation_config(tmp_path)
        assert back.n_atoms == 40
        assert back.n_occupied == 128


class TestValidation:
    def test_atom_count_cross_check(self, tmp_path):
        cfg = SimulationConfig.small_test()
        save_simulation_config(tmp_path, cfg)
        # Corrupt CONFIG: drop one atom line.
        config = tmp_path / "CONFIG"
        lines = config.read_text().splitlines()
        config.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="supercell"):
            load_simulation_config(tmp_path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_simulation_config(tmp_path)
