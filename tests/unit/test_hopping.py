"""Unit tests: fewest-switches surface hopping."""

import numpy as np
import pytest

from repro.dcmesh.hopping import SurfaceHopper


class TestProbabilities:
    def test_no_growth_no_probability(self):
        h = SurfaceHopper(n_occupied=4, seed=0)
        p = h.probabilities(np.zeros(4))
        np.testing.assert_array_equal(p, 0.0)

    def test_growth_produces_probability(self):
        h = SurfaceHopper(n_occupied=2, seed=0)
        h.attempt(0, np.array([0.0, 0.0]))
        p = h.probabilities(np.array([0.1, 0.0]))
        assert p[0] == pytest.approx(0.1)
        assert p[1] == 0.0

    def test_shrinking_population_clipped_to_zero(self):
        h = SurfaceHopper(n_occupied=1, seed=0)
        h.attempt(0, np.array([0.5]))
        p = h.probabilities(np.array([0.2]))
        assert p[0] == 0.0

    def test_probability_normalised_by_survival(self):
        h = SurfaceHopper(n_occupied=1, seed=0)
        h.attempt(0, np.array([0.5]))
        # growth 0.25 over surviving 0.5 -> p = 0.5.
        p = h.probabilities(np.array([0.75]))
        assert p[0] == pytest.approx(0.5)

    def test_shape_validation(self):
        h = SurfaceHopper(n_occupied=3, seed=0)
        with pytest.raises(ValueError, match="per-orbital"):
            h.probabilities(np.zeros(2))

    def test_needs_occupied(self):
        with pytest.raises(ValueError, match="occupied"):
            SurfaceHopper(n_occupied=0)


class TestHops:
    def test_deterministic_under_seed(self):
        traj = [np.array([0.0, 0.0]), np.array([0.3, 0.1]),
                np.array([0.6, 0.2]), np.array([0.9, 0.3])]
        runs = []
        for _ in range(2):
            h = SurfaceHopper(n_occupied=2, seed=42)
            events = [h.attempt(i, p) for i, p in enumerate(traj)]
            runs.append([(e.step, e.orbital) if e else None for e in events])
        assert runs[0] == runs[1]

    def test_certain_hop_fires(self):
        h = SurfaceHopper(n_occupied=1, seed=1)
        h.attempt(0, np.array([0.0]))
        event = h.attempt(1, np.array([1.0]))  # probability 1
        assert event is not None
        assert event.orbital == 0
        assert h.surface == 1
        assert h.n_hops == 1

    def test_zero_probability_never_fires(self):
        h = SurfaceHopper(n_occupied=3, seed=2)
        for step in range(50):
            assert h.attempt(step, np.zeros(3)) is None
        assert h.surface == 0

    def test_hop_rate_matches_probability(self):
        # Statistical check with a fixed per-step probability of 0.2.
        fired = 0
        trials = 2000
        for seed in range(trials):
            h = SurfaceHopper(n_occupied=1, seed=seed)
            h.attempt(0, np.array([0.0]))
            if h.attempt(1, np.array([0.2])) is not None:
                fired += 1
        assert fired / trials == pytest.approx(0.2, abs=0.04)

    def test_event_records_population(self):
        h = SurfaceHopper(n_occupied=2, seed=3)
        h.attempt(0, np.array([0.0, 0.0]))
        event = h.attempt(7, np.array([0.0, 1.0]))
        assert event.step == 7
        assert event.orbital == 1
        assert event.population == 1.0
