"""Unit tests: bit-exact FP32 -> BF16/TF32 rounding and splitting."""

import numpy as np
import pytest

from repro.blas.rounding import (
    OZAKI_SLICE_BITS,
    emulated_fp64_split_terms,
    max_relative_error,
    ozaki_max_relative_error,
    ozaki_slice_terms,
    round_fp32_to_bf16,
    round_fp32_to_tf32,
    round_mantissa,
    round_to_precision,
    split_bf16,
    split_terms,
    split_tf32,
)
from repro.types import Precision


class TestRoundMantissa:
    def test_bf16_drops_low_16_bits(self):
        x = np.array([1.0 + 2**-20], dtype=np.float32)
        out = round_fp32_to_bf16(x)
        bits = out.view(np.uint32)
        assert bits[0] & 0xFFFF == 0

    def test_tf32_drops_low_13_bits(self):
        x = np.array([1.0 + 2**-20], dtype=np.float32)
        out = round_fp32_to_tf32(x)
        bits = out.view(np.uint32)
        assert bits[0] & 0x1FFF == 0

    def test_exact_values_unchanged(self):
        # Values already on the BF16 grid survive untouched.
        exact = np.array([1.0, 0.5, -2.0, 1.5, 0.0, 240.0], dtype=np.float32)
        np.testing.assert_array_equal(round_fp32_to_bf16(exact), exact)

    def test_round_to_nearest_even_ties(self):
        # 1 + 2^-8 is exactly between BF16 neighbours 1.0 and 1+2^-7;
        # RNE picks the even mantissa (1.0).
        x = np.array([1.0 + 2**-8], dtype=np.float32)
        assert round_fp32_to_bf16(x)[0] == np.float32(1.0)
        # 1 + 3*2^-8 is between 1+2^-7 and 1+2^-6; even is 1+2^-6.
        y = np.array([1.0 + 3 * 2**-8], dtype=np.float32)
        assert round_fp32_to_bf16(y)[0] == np.float32(1.0 + 2**-6)

    def test_rounding_error_bound_bf16(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1e6, 1e6, 10_000).astype(np.float32)
        x = x[x != 0]
        rel = np.abs((round_fp32_to_bf16(x) - x) / x)
        assert rel.max() <= max_relative_error(7)

    def test_rounding_error_bound_tf32(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1e6, 1e6, 10_000).astype(np.float32)
        x = x[x != 0]
        rel = np.abs((round_fp32_to_tf32(x) - x) / x)
        assert rel.max() <= max_relative_error(10)

    def test_mantissa_overflow_carries_to_exponent(self):
        # Just below 2.0: rounds up to exactly 2.0 (exponent bump).
        x = np.array([2.0 - 2**-9], dtype=np.float32)
        assert round_fp32_to_bf16(x)[0] == np.float32(2.0)

    def test_inf_and_nan_pass_through(self):
        x = np.array([np.inf, -np.inf, np.nan], dtype=np.float32)
        out = round_fp32_to_bf16(x)
        assert np.isinf(out[0]) and out[0] > 0
        assert np.isinf(out[1]) and out[1] < 0
        assert np.isnan(out[2])

    def test_nan_payload_preserved(self):
        x = np.array([np.nan], dtype=np.float32)
        out = round_fp32_to_tf32(x)
        assert x.view(np.uint32)[0] == out.view(np.uint32)[0]

    def test_negative_values_symmetric(self):
        x = np.array([1 / 3, 3.14159], dtype=np.float32)
        np.testing.assert_array_equal(round_fp32_to_bf16(-x), -round_fp32_to_bf16(x))

    def test_denormals_do_not_crash(self):
        x = np.array([1e-40, -1e-40, 1e-45], dtype=np.float32)
        out = round_fp32_to_bf16(x)
        assert np.all(np.isfinite(out))

    def test_keep_23_is_identity(self):
        x = np.array([1 / 3, 2.7, -9.1], dtype=np.float32)
        np.testing.assert_array_equal(round_mantissa(x, 23), x)

    def test_keep_bits_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="keep_bits"):
            round_mantissa(np.zeros(1, np.float32), 24)
        with pytest.raises(ValueError, match="keep_bits"):
            round_mantissa(np.zeros(1, np.float32), -1)

    def test_preserves_shape_and_dtype(self):
        x = np.ones((3, 4, 5), dtype=np.float32) / 3
        out = round_fp32_to_bf16(x)
        assert out.shape == (3, 4, 5)
        assert out.dtype == np.float32

    def test_float64_input_is_cast_first(self):
        x = np.array([1 / 3], dtype=np.float64)
        out = round_fp32_to_bf16(x)
        assert out.dtype == np.float32


class TestMantissaOverflowBitPatterns:
    """Regression: the uint32-normalized RNE arithmetic must carry a
    mantissa-all-ones pattern into the exponent (IEEE round-up), with
    no NumPy casting/overflow warnings under NEP 50."""

    def _round_bits(self, pattern: int, keep_bits: int) -> int:
        import warnings

        x = np.array([pattern], dtype=np.uint32).view(np.float32)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = round_mantissa(x, keep_bits)
        return int(out.view(np.uint32)[0])

    def test_all_ones_mantissa_carries_into_exponent(self):
        # 0x3FFFFFFF = 2 - 2^-23 (mantissa all ones, just below 2.0);
        # BF16 RNE rounds up across the binade boundary to exactly 2.0.
        assert self._round_bits(0x3FFFFFFF, 7) == 0x40000000
        assert self._round_bits(0x3FFFFFFF, 10) == 0x40000000

    def test_negative_mirror(self):
        assert self._round_bits(0xBFFFFFFF, 7) == 0xC0000000

    def test_flt_max_rounds_to_infinity(self):
        # FLT_MAX (0x7F7FFFFF) is above the largest BF16 value; the
        # carry propagates through the whole exponent field, yielding
        # +Inf (0x7F800000) — IEEE RNE overflow, not a wrapped uint32.
        assert self._round_bits(0x7F7FFFFF, 7) == 0x7F800000
        assert self._round_bits(0xFF7FFFFF, 7) == 0xFF800000

    def test_largest_denormal_boundary(self):
        # 0x007FFFFF = largest FP32 denormal; rounding up lands exactly
        # on the smallest normal (0x00800000) via the same carry.
        assert self._round_bits(0x007FFFFF, 7) == 0x00800000


class TestRoundToPrecision:
    def test_fp32_passthrough(self):
        x = np.array([1 / 3], dtype=np.float32)
        np.testing.assert_array_equal(round_to_precision(x, Precision.FP32), x)

    def test_fp16_narrows_exponent(self):
        x = np.array([1e10], dtype=np.float32)  # overflows FP16
        out = round_to_precision(x, Precision.FP16)
        assert np.isinf(out[0])

    def test_bf16_matches_direct(self):
        x = np.array([1 / 3], dtype=np.float32)
        np.testing.assert_array_equal(
            round_to_precision(x, Precision.BF16), round_fp32_to_bf16(x)
        )

    def test_int8_rejected(self):
        with pytest.raises(ValueError):
            round_to_precision(np.zeros(1, np.float32), Precision.INT8)


class TestSplitTerms:
    def test_three_term_bf16_reconstruction_is_exact_for_most_values(self):
        # 7 bits * 3 terms = 21+ bits: all but a residual sliver of the
        # 24-bit significand is captured; reconstruction error is tiny.
        rng = np.random.default_rng(2)
        x = rng.standard_normal(5000).astype(np.float32)
        t1, t2, t3 = split_bf16(x, 3)
        err = np.abs((t1 + t2 + t3) - x)
        assert err.max() <= 2**-22 * np.abs(x).max()

    def test_term_magnitudes_decay(self):
        x = np.array([1 / 3], dtype=np.float32)
        t1, t2, t3 = split_bf16(x, 3)
        assert abs(t1[0]) > abs(t2[0]) > abs(t3[0])

    def test_single_term_equals_rounding(self):
        x = np.array([1 / 3, 2.5, -7.7], dtype=np.float32)
        (t1,) = split_bf16(x, 1)
        np.testing.assert_array_equal(t1, round_fp32_to_bf16(x))

    def test_two_term_residual_bound(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0.5, 2.0, 1000).astype(np.float32)
        t1, t2 = split_bf16(x, 2)
        rel = np.abs((t1 + t2) - x) / np.abs(x)
        # Each term removes ~8 bits: two terms leave < 2^-15 relative.
        assert rel.max() <= 2**-15

    def test_tf32_split_single(self):
        x = np.array([1 / 3], dtype=np.float32)
        (t,) = split_tf32(x)
        np.testing.assert_array_equal(t, round_fp32_to_tf32(x))

    def test_zero_terms_rejected(self):
        with pytest.raises(ValueError, match="n_terms"):
            split_terms(np.zeros(1, np.float32), 7, 0)

    def test_exact_bf16_values_split_trivially(self):
        x = np.array([1.5, -0.25], dtype=np.float32)
        t1, t2 = split_bf16(x, 2)
        np.testing.assert_array_equal(t1, x)
        np.testing.assert_array_equal(t2, np.zeros_like(x))


class TestErrorBound:
    def test_bound_values(self):
        assert max_relative_error(7) == 2**-8
        assert max_relative_error(10) == 2**-11


class TestOzakiSliceTerms:
    """The INT8 slice split behind ``OZAKI_INT8``."""

    def _random(self, shape=(12, 9), seed=0):
        rng = np.random.default_rng(seed)
        scale = 10.0 ** rng.integers(-3, 4, size=shape).astype(np.float64)
        return (rng.standard_normal(shape) * scale).astype(np.float32)

    def test_slices_are_scaled_integers_in_int8_range(self):
        x = self._random()
        for i, term in enumerate(ozaki_slice_terms(x, 3, axis=-1)):
            absmax = np.max(np.abs(x.astype(np.float64)), axis=-1, keepdims=True)
            _, e = np.frexp(absmax)
            q = np.ldexp(term, -(e - OZAKI_SLICE_BITS * (i + 1)))
            assert np.array_equal(q, np.trunc(q))        # integer-valued
            assert np.abs(q).max() <= 127                # INT8-representable

    def test_reconstruction_within_truncation_bound(self):
        x = self._random()
        for n_slices in (1, 2, 3, 4):
            recon = sum(ozaki_slice_terms(x, n_slices, axis=-1))
            fibre_max = np.max(np.abs(x.astype(np.float64)), axis=-1, keepdims=True)
            bound = np.ldexp(fibre_max, 1 - OZAKI_SLICE_BITS * n_slices)
            assert (np.abs(x.astype(np.float64) - recon) <= bound).all()

    def test_zero_fibres_survive(self):
        x = np.zeros((4, 5), dtype=np.float32)
        x[0, :] = 1.0
        for term in ozaki_slice_terms(x, 3, axis=-1):
            assert np.isfinite(term).all()
        recon = sum(ozaki_slice_terms(x, 3, axis=-1))
        np.testing.assert_array_equal(recon[1:], 0.0)

    def test_axis_selects_the_contraction_fibre(self):
        x = self._random((6, 8))
        rows = ozaki_slice_terms(x, 2, axis=-1)
        cols = ozaki_slice_terms(x, 2, axis=-2)
        assert not np.array_equal(rows[0], cols[0])

    def test_requires_two_dims(self):
        with pytest.raises(ValueError):
            ozaki_slice_terms(np.ones(4, np.float32), 2, axis=-1)

    def test_error_bound_values(self):
        assert ozaki_max_relative_error(1) == 2**-6
        assert ozaki_max_relative_error(3) == 2**-20


class TestEmulatedFP64SplitTerms:
    """The FP32-granularity split behind ``EMULATED_FP64``."""

    def test_three_terms_reconstruct_fp64_exactly(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((64,)) * 10.0 ** rng.integers(-6, 7, size=64)
        terms = emulated_fp64_split_terms(x, 3)
        assert np.array_equal(sum(terms), x)

    def test_terms_are_fp32_representable(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((32,))
        for t in emulated_fp64_split_terms(x, 3):
            assert np.array_equal(t, t.astype(np.float32).astype(np.float64))

    def test_one_term_is_fp32_rounding(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((32,))
        (t,) = emulated_fp64_split_terms(x, 1)
        np.testing.assert_array_equal(t, x.astype(np.float32).astype(np.float64))

    def test_term_magnitudes_decay(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((128,)) + 1.0
        t1, t2, t3 = emulated_fp64_split_terms(x, 3)
        assert np.abs(t2).max() < np.abs(t1).max() * 2**-20
        assert np.abs(t3).max() < np.abs(t2).max() * 2**-10
