"""Unit tests: deviation-from-FP32 series machinery."""

import numpy as np
import pytest

from repro.blas.modes import ComputeMode
from repro.core.deviation import DeviationSeries, deviation_from_reference


class _FakeResult:
    def __init__(self, cols):
        self._cols = cols

    def column(self, name):
        return np.asarray(self._cols[name], dtype=np.float64)


def _results():
    t = np.linspace(0, 1, 5)
    ref = _FakeResult({"time_fs": t, "ekin": np.array([1, 2, 3, 4, 5.0])})
    alt = _FakeResult({"time_fs": t, "ekin": np.array([1, 2.1, 3.2, 4.3, 5.4])})
    return {
        ComputeMode.STANDARD: ref,
        ComputeMode.FLOAT_TO_BF16: alt,
    }


class TestDeviationFromReference:
    def test_absolute_deviation(self):
        out = deviation_from_reference(_results(), observables=("ekin",))
        (s,) = out["ekin"]
        assert s.mode is ComputeMode.FLOAT_TO_BF16
        np.testing.assert_allclose(s.deviation, [0, 0.1, 0.2, 0.3, 0.4], atol=1e-12)

    def test_reference_not_in_series(self):
        out = deviation_from_reference(_results(), observables=("ekin",))
        assert len(out["ekin"]) == 1

    def test_missing_reference_raises(self):
        res = _results()
        del res[ComputeMode.STANDARD]
        with pytest.raises(ValueError, match="reference mode"):
            deviation_from_reference(res, observables=("ekin",))

    def test_mismatched_lengths_raise(self):
        res = _results()
        res[ComputeMode.FLOAT_TO_BF16] = _FakeResult(
            {"time_fs": np.zeros(3), "ekin": np.zeros(3)}
        )
        with pytest.raises(ValueError, match="not comparable"):
            deviation_from_reference(res, observables=("ekin",))


class TestSeriesProperties:
    def _series(self):
        return DeviationSeries(
            observable="ekin",
            mode=ComputeMode.FLOAT_TO_BF16,
            time_fs=np.linspace(0, 1, 4),
            deviation=np.array([0.0, 1e-3, 2e-3, 4e-3]),
            reference=np.array([1.0, 2.0, 4.0, 8.0]),
        )

    def test_max_and_final(self):
        s = self._series()
        assert s.max_deviation == 4e-3
        assert s.final_deviation == 4e-3

    def test_relative(self):
        s = self._series()
        np.testing.assert_allclose(s.relative(), [0, 5e-4, 5e-4, 5e-4])

    def test_log10_with_floor(self):
        s = self._series()
        logs = s.log10(floor=1e-6)
        assert logs[0] == pytest.approx(-6.0)
        assert logs[-1] == pytest.approx(np.log10(4e-3))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            DeviationSeries(
                observable="x", mode=ComputeMode.COMPLEX_3M,
                time_fs=np.zeros(3), deviation=np.zeros(4), reference=np.zeros(4),
            )
