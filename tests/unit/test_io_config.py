"""Unit tests: CONFIG atomic-position file."""

import numpy as np
import pytest

from repro.dcmesh.io.config import parse_config_file, write_config_file
from repro.dcmesh.material import build_pto_supercell


class TestRoundTrip:
    def test_exact_positions(self, tmp_path):
        m = build_pto_supercell((2, 2, 2), jitter=0.05, seed=1)
        p = tmp_path / "CONFIG"
        write_config_file(p, m)
        back = parse_config_file(p)
        assert back.symbols == m.symbols
        np.testing.assert_array_equal(back.positions, m.positions)
        assert back.box == m.box

    def test_derived_quantities_survive(self, tmp_path):
        m = build_pto_supercell((1, 1, 1))
        p = tmp_path / "CONFIG"
        write_config_file(p, m)
        back = parse_config_file(p)
        assert back.n_electrons == m.n_electrons
        assert back.n_occupied == m.n_occupied


class TestParseErrors:
    def test_missing_box(self, tmp_path):
        p = tmp_path / "CONFIG"
        p.write_text("atom Pb 0 0 0\n")
        with pytest.raises(ValueError, match="missing box"):
            parse_config_file(p)

    def test_no_atoms(self, tmp_path):
        p = tmp_path / "CONFIG"
        p.write_text("box 5 5 5\n")
        with pytest.raises(ValueError, match="no atoms"):
            parse_config_file(p)

    def test_malformed_atom_line(self, tmp_path):
        p = tmp_path / "CONFIG"
        p.write_text("box 5 5 5\natom Pb 1 2\n")
        with pytest.raises(ValueError, match=":2:"):
            parse_config_file(p)

    def test_unknown_keyword(self, tmp_path):
        p = tmp_path / "CONFIG"
        p.write_text("cell 5 5 5\n")
        with pytest.raises(ValueError, match="unknown keyword"):
            parse_config_file(p)

    def test_unknown_species_caught_by_material(self, tmp_path):
        p = tmp_path / "CONFIG"
        p.write_text("box 5 5 5\natom Zz 1 1 1\n")
        with pytest.raises(ValueError, match="unknown species"):
            parse_config_file(p)
