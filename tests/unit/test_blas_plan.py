"""Unit tests: split-plan caching (PreparedOperand, registry, LRU)."""

import numpy as np
import pytest

from repro.blas.gemm import check_finite, finite_checks, finite_checks_enabled, gemm
from repro.blas.plan import (
    ANON_MIN_BYTES,
    PreparedOperand,
    lookup_anonymous,
    operand_handle,
    plan_cache,
    plan_cache_clear,
    plan_cache_enabled,
    plan_cache_info,
    prepare,
    release,
    set_plan_cache,
)
from repro.blas.workspace import (
    Workspace,
    clear_workspace,
    fused_mode,
    fused_pair_products,
    get_fused_mode,
    get_workspace,
    set_fused_mode,
)
from repro.types import Precision


class TestPreparedOperand:
    def test_oriented_is_cached(self, rng):
        x = rng.standard_normal((6, 8)).astype(np.float32)
        plan = PreparedOperand(x)
        first = plan.oriented("N", np.float32)
        assert plan.oriented("N", np.float32) is first

    def test_oriented_matches_cold_path(self, rng):
        x = (rng.standard_normal((6, 8)) + 1j * rng.standard_normal((6, 8))).astype(
            np.complex64
        )
        plan = PreparedOperand(x)
        np.testing.assert_array_equal(
            plan.oriented("C", np.complex64), np.ascontiguousarray(x.conj().T)
        )

    def test_parts_match_cold_path(self, rng):
        x = (rng.standard_normal((5, 7)) + 1j * rng.standard_normal((5, 7))).astype(
            np.complex64
        )
        plan = PreparedOperand(x)
        np.testing.assert_array_equal(
            plan.part("N", np.complex64, "re"),
            np.ascontiguousarray(x.real, dtype=np.float32),
        )
        np.testing.assert_array_equal(
            plan.part("T", np.complex64, "im"),
            np.ascontiguousarray(x.T.imag, dtype=np.float32),
        )
        np.testing.assert_array_equal(
            plan.part("N", np.complex64, "re+im"),
            plan.part("N", np.complex64, "re") + plan.part("N", np.complex64, "im"),
        )

    def test_conjugate_negates_imag_part(self, rng):
        x = (rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))).astype(
            np.complex64
        )
        plan = PreparedOperand(x)
        np.testing.assert_array_equal(
            plan.part("C", np.complex64, "im"),
            np.ascontiguousarray(-x.imag.T, dtype=np.float32),
        )

    def test_split_stack_matches_split_terms(self, rng):
        from repro.blas.rounding import split_terms

        x = rng.standard_normal((6, 9)).astype(np.float32)
        plan = PreparedOperand(x)
        stack = plan.split_stack("N", 7, 3)
        assert stack.shape == (3, 6, 9)
        assert stack.flags.c_contiguous
        for i, term in enumerate(split_terms(x, 7, 3)):
            np.testing.assert_array_equal(stack[i], term)

    def test_oriented_n_same_dtype_is_zero_copy(self, rng):
        # A contiguous same-dtype operand needs no derived copy at all:
        # the cache serves the backing array itself.
        x = rng.standard_normal((4, 4)).astype(np.float32)
        assert PreparedOperand(x).oriented("N", np.float32) is x

    def test_invalidate_drops_cache_and_bumps_version(self, rng):
        x = rng.standard_normal((4, 4)).astype(np.float32)
        plan = PreparedOperand(x)
        first = plan.oriented("T", np.float32)  # "T" forces a packed copy
        v0 = plan.version
        plan.invalidate()
        assert plan.version == v0 + 1
        assert plan.oriented("T", np.float32) is not first

    def test_refresh_if_changed_detects_mutation(self, rng):
        x = rng.standard_normal((4, 4)).astype(np.float32)
        plan = PreparedOperand(x)
        plan.fingerprint()
        stale = plan.oriented("T", np.float32)
        assert plan.refresh_if_changed() is False
        x[0, 0] += 1.0
        assert plan.refresh_if_changed() is True
        fresh = plan.oriented("T", np.float32)
        assert fresh is not stale
        np.testing.assert_array_equal(fresh, x.T)

    def test_refresh_without_baseline_is_conservative(self, rng):
        # No fingerprint was ever taken -> the plan cannot prove its
        # cached forms are fresh, so refresh must invalidate.
        x = rng.standard_normal((4, 4)).astype(np.float32)
        plan = PreparedOperand(x)
        stale = plan.oriented("T", np.float32)
        assert plan.refresh_if_changed() is True
        assert plan.oriented("T", np.float32) is not stale
        # Baseline is now established; a second call is a clean no-op.
        assert plan.refresh_if_changed() is False

    def test_is_finite_memoised(self, rng):
        x = rng.standard_normal((4, 4)).astype(np.float32)
        plan = PreparedOperand(x)
        assert plan.is_finite()
        x[1, 1] = np.inf
        # Stale until told — that is the explicit-API contract.
        assert plan.is_finite()
        plan.invalidate()
        assert not plan.is_finite()


class TestRegistry:
    def test_prepare_is_identity_keyed(self, rng):
        x = rng.standard_normal((4, 4)).astype(np.float32)
        assert prepare(x) is prepare(x)

    def test_prepare_passes_plans_through(self, rng):
        x = rng.standard_normal((4, 4)).astype(np.float32)
        plan = prepare(x)
        assert prepare(plan) is plan

    def test_distinct_arrays_distinct_plans(self, rng):
        x = rng.standard_normal((4, 4)).astype(np.float32)
        y = x.copy()
        assert prepare(x) is not prepare(y)

    def test_release_forgets(self, rng):
        x = rng.standard_normal((4, 4)).astype(np.float32)
        plan = prepare(x)
        release(x)
        assert prepare(x) is not plan


class TestAnonymousCache:
    def setup_method(self):
        plan_cache_clear()
        set_plan_cache(True)

    def teardown_method(self):
        plan_cache_clear()
        set_plan_cache(True)

    def test_small_arrays_skip_cache(self, rng):
        x = rng.standard_normal((2, 2)).astype(np.float32)
        assert x.nbytes < ANON_MIN_BYTES
        assert lookup_anonymous(x) is None

    def test_content_keyed_hit(self, rng):
        n = int(np.sqrt(ANON_MIN_BYTES / 4)) + 2
        x = rng.standard_normal((n, n)).astype(np.float32)
        p1 = lookup_anonymous(x)
        p2 = lookup_anonymous(x.copy())  # same bytes, different object
        assert p1 is p2
        assert plan_cache_info()["hits"] == 1

    def test_mutation_misses(self, rng):
        n = int(np.sqrt(ANON_MIN_BYTES / 4)) + 2
        x = rng.standard_normal((n, n)).astype(np.float32)
        p1 = lookup_anonymous(x)
        x[0, 0] += 1.0
        assert lookup_anonymous(x) is not p1

    def test_disable(self, rng):
        n = int(np.sqrt(ANON_MIN_BYTES / 4)) + 2
        x = rng.standard_normal((n, n)).astype(np.float32)
        with plan_cache(False):
            assert not plan_cache_enabled()
            assert lookup_anonymous(x) is None
        assert plan_cache_enabled()


class TestGemmWithPlans:
    @pytest.mark.parametrize(
        "mode", ["STANDARD", "FLOAT_TO_BF16X3", "FLOAT_TO_TF32", "COMPLEX_3M"]
    )
    def test_prepared_bitwise_equals_raw(self, rng, mode):
        a = (rng.standard_normal((9, 14)) + 1j * rng.standard_normal((9, 14))).astype(
            np.complex64
        )
        b = (rng.standard_normal((14, 6)) + 1j * rng.standard_normal((14, 6))).astype(
            np.complex64
        )
        raw = gemm(a, b, mode=mode)
        planned = gemm(prepare(a), prepare(b), mode=mode)
        np.testing.assert_array_equal(
            raw.view(np.uint64), planned.view(np.uint64)
        )

    def test_prepared_with_trans(self, rng):
        a = (rng.standard_normal((14, 9)) + 1j * rng.standard_normal((14, 9))).astype(
            np.complex64
        )
        b = (rng.standard_normal((14, 6)) + 1j * rng.standard_normal((14, 6))).astype(
            np.complex64
        )
        raw = gemm(a, b, trans_a="C", mode="FLOAT_TO_BF16X2")
        planned = gemm(prepare(a), b, trans_a="C", mode="FLOAT_TO_BF16X2")
        np.testing.assert_array_equal(raw.view(np.uint64), planned.view(np.uint64))

    def test_typed_wrappers_accept_plans(self, rng):
        from repro.blas.gemm import cgemm

        a = (rng.standard_normal((4, 5)) + 1j * rng.standard_normal((4, 5))).astype(
            np.complex64
        )
        b = (rng.standard_normal((5, 3)) + 1j * rng.standard_normal((5, 3))).astype(
            np.complex64
        )
        np.testing.assert_array_equal(cgemm(prepare(a), b), cgemm(a, b))

    def test_shape_errors_still_raised(self, rng):
        a = rng.standard_normal((4, 5)).astype(np.float32)
        b = rng.standard_normal((6, 3)).astype(np.float32)
        with pytest.raises(ValueError, match="inner dimensions"):
            gemm(prepare(a), prepare(b))


class TestFiniteToggle:
    def test_suite_default_is_on(self):
        # The tests/conftest autouse fixture switches the scans on.
        assert finite_checks_enabled()

    def test_off_skips_scan(self, rng):
        a = rng.standard_normal((3, 3)).astype(np.float32)
        a[0, 0] = np.nan
        b = rng.standard_normal((3, 3)).astype(np.float32)
        with finite_checks(False):
            out = gemm(a, b)  # no raise
        assert np.isnan(out).any()
        with pytest.raises(FloatingPointError, match="non-finite"):
            gemm(a, b)

    def test_toggle_roundtrip(self):
        check_finite(False)
        assert not finite_checks_enabled()
        check_finite(True)
        assert finite_checks_enabled()


class TestWorkspace:
    def test_buffers_reused(self):
        ws = Workspace()
        b1 = ws.get("prod", (4, 5), np.float32)
        b2 = ws.get("prod", (4, 5), np.float32)
        assert b1 is b2
        assert ws.get("prod", (4, 6), np.float32) is not b1
        ws.clear()
        assert ws.get("prod", (4, 5), np.float32) is not b1

    def test_thread_local_workspace(self):
        import threading

        ws_main = get_workspace()
        seen = {}

        def other():
            seen["ws"] = get_workspace()

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert seen["ws"] is not ws_main
        clear_workspace()

    def test_fused_mode_validation(self):
        with pytest.raises(ValueError, match="fused mode"):
            set_fused_mode("nope")
        assert get_fused_mode() in ("auto", "batched", "loop")

    def test_fused_pair_products_both_paths_bitwise(self, rng):
        from repro.blas.split import component_pairs

        a_terms = np.stack(
            [rng.standard_normal((7, 11)).astype(np.float32) for _ in range(3)]
        )
        b_terms = np.stack(
            [rng.standard_normal((11, 5)).astype(np.float32) for _ in range(3)]
        )
        pairs = component_pairs(3)
        naive = None
        for i, j in pairs:
            prod = np.matmul(a_terms[i - 1], b_terms[j - 1])
            naive = prod if naive is None else naive + prod
        for mode in ("batched", "loop"):
            with fused_mode(mode):
                out = fused_pair_products(a_terms, b_terms, pairs)
            np.testing.assert_array_equal(
                out.view(np.uint32), naive.view(np.uint32)
            )

    def test_fused_result_is_not_a_workspace_buffer(self, rng):
        from repro.blas.split import component_pairs

        a_terms = np.stack(
            [rng.standard_normal((3, 4)).astype(np.float32) for _ in range(2)]
        )
        b_terms = np.stack(
            [rng.standard_normal((4, 3)).astype(np.float32) for _ in range(2)]
        )
        pairs = component_pairs(2)
        out1 = fused_pair_products(a_terms, b_terms, pairs).copy()
        out2 = fused_pair_products(a_terms, b_terms, pairs)
        np.testing.assert_array_equal(out1, out2)  # second call didn't clobber


class TestOperandHandle:
    def test_handle_shape_tracks_trans(self, rng):
        x = rng.standard_normal((3, 7)).astype(np.float32)
        h = operand_handle(x, "T", np.float32)
        assert h.shape == (7, 3)

    def test_split_gemm_real_accepts_plans(self, rng):
        from repro.blas.split import split_gemm_real, split_gemm_reference

        a = rng.standard_normal((6, 10)).astype(np.float32)
        b = rng.standard_normal((10, 4)).astype(np.float32)
        ref = split_gemm_reference(a, b, Precision.BF16, 3)
        out = split_gemm_real(prepare(a), prepare(b), Precision.BF16, 3)
        np.testing.assert_array_equal(out.view(np.uint32), ref.view(np.uint32))


class TestSplitExtension:
    """Escalation-path caching: shorter splits extend, never recompute."""

    def _counts(self, t, result, mode):
        return t.counter_value("blas.plan.split", result=result, mode=mode, site="-")

    def test_extension_is_bitwise_equal_to_from_scratch(self, rng):
        from repro.blas.rounding import split_terms

        x = rng.standard_normal((9, 13)).astype(np.float32)
        plan = PreparedOperand(x)
        plan.split_stack("N", 7, 1)
        extended = plan.split_stack("N", 7, 3)  # extends the 1-term split
        cold = split_terms(x, 7, 3)
        for i in range(3):
            np.testing.assert_array_equal(extended[i], cold[i])

    def test_counters_hit_extend_full(self, rng):
        from repro.telemetry.registry import disable, enable

        x = rng.standard_normal((6, 6)).astype(np.float32)
        plan = PreparedOperand(x)
        t = enable()
        try:
            plan.split_stack("N", 7, 1)   # full
            plan.split_stack("N", 7, 2)   # extend from 1-term
            plan.split_stack("N", 7, 2)   # hit
            plan.split_stack("N", 7, 3)   # extend from 2-term
            plan.split_stack("N", 10, 1)  # different keep_bits: full
        finally:
            disable()
        assert self._counts(t, "full", "bf16") == 1
        assert self._counts(t, "extend", "bf16x2") == 1
        assert self._counts(t, "hit", "bf16x2") == 1
        assert self._counts(t, "extend", "bf16x3") == 1
        assert self._counts(t, "full", "tf32") == 1

    def test_escalate_demote_escalate_cycle_hits_cache(self, rng):
        """The adaptive scheduler's round trip must be all cache hits.

        BF16 -> BF16X2 (escalate) -> BF16 (demote) -> BF16X2
        (re-escalate): after the first escalation every request is
        served from cache — demotion uses the prefix of the wider
        split, re-escalation finds the wider split still cached.
        """
        from repro.telemetry.registry import disable, enable

        x = rng.standard_normal((8, 8)).astype(np.float32)
        plan = PreparedOperand(x)
        t = enable()
        try:
            first = plan.split_stack("N", 7, 1)    # BF16: full
            wide = plan.split_stack("N", 7, 2)     # escalate: extend
            demoted = plan.split_stack("N", 7, 1)  # demote: hit
            again = plan.split_stack("N", 7, 2)    # re-escalate: hit
        finally:
            disable()
        assert demoted is first and again is wide
        assert self._counts(t, "full", "bf16") == 1
        assert self._counts(t, "extend", "bf16x2") == 1
        assert self._counts(t, "hit", "bf16") == 1
        assert self._counts(t, "hit", "bf16x2") == 1
        np.testing.assert_array_equal(wide[0], first[0])  # prefix property

    def test_invalidated_counter_name(self, rng):
        from repro.telemetry.registry import disable, enable

        x = rng.standard_normal((4, 4)).astype(np.float32)
        plan = PreparedOperand(x)
        plan.split_stack("N", 7, 2)
        t = enable()
        try:
            plan.invalidate()
        finally:
            disable()
        assert t.counter_value("blas.plan.invalidated") == 1.0
