"""Unit tests: the software-measured BLAS sweep path."""

import pytest

from repro.blas.modes import ComputeMode
from repro.core.blas_sweep import BlasSweep


class TestSoftwareSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return BlasSweep().sweep_software(
            norbs=(256,), shrink=2048, repeats=2
        )

    def test_covers_all_modes(self, points):
        modes = {p.mode for p in points}
        assert ComputeMode.FLOAT_TO_BF16 in modes
        assert ComputeMode.COMPLEX_3M in modes

    def test_positive_times(self, points):
        for p in points:
            assert p.fp32_seconds > 0 and p.mode_seconds > 0

    def test_split_costs_reflect_component_counts(self, points):
        # On a CPU the emulation pays for its products: x3 must be
        # substantially slower than x1.
        t = {p.mode: p.mode_seconds for p in points}
        assert t[ComputeMode.FLOAT_TO_BF16X3] > t[ComputeMode.FLOAT_TO_BF16]

    def test_shrink_applied(self, points):
        assert all(p.k <= 262144 // 2048 + 8 for p in points)
