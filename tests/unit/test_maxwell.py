"""Unit tests: induced local-field dynamics (Maxwell extension)."""

import numpy as np
import pytest

from repro.dcmesh.maxwell import InducedField


class TestInducedField:
    def test_zero_current_means_no_field(self):
        f = InducedField(dt=0.1)
        for _ in range(10):
            f.step(0.0)
        assert f.a == 0.0
        assert f.a_dot == 0.0

    def test_constant_current_accelerates_field(self):
        f = InducedField(dt=0.1)
        for _ in range(10):
            f.step(1.0)
        # A'' = -4 pi j < 0 for positive current.
        assert f.a < 0
        assert f.a_dot < 0

    def test_coupling_scales_response(self):
        full = InducedField(dt=0.1, coupling=1.0)
        half = InducedField(dt=0.1, coupling=0.5)
        for _ in range(5):
            full.step(1.0)
            half.step(1.0)
        assert half.a == pytest.approx(full.a / 2)

    def test_plasma_oscillation_frequency(self):
        """Self-consistent free-electron response: j = (N/V) A_total
        with no external field oscillates at omega_p = sqrt(4 pi n)."""
        n_density = 0.05                # electrons per bohr^3
        omega_p = np.sqrt(4 * np.pi * n_density)
        dt = 0.02 / omega_p
        f = InducedField(dt=dt)
        f.a_dot = 1.0                   # kick the field
        amplitudes = []
        for _ in range(8000):
            j = n_density * f.a         # free-electron current response
            amplitudes.append(f.step(j))
        a = np.array(amplitudes)
        # Count zero crossings -> period -> frequency.
        crossings = np.nonzero(np.diff(np.signbit(a)))[0]
        period = 2 * np.mean(np.diff(crossings)) * dt
        measured = 2 * np.pi / period
        assert measured == pytest.approx(omega_p, rel=0.02)

    def test_energy_positive(self):
        f = InducedField(dt=0.1)
        f.step(2.0)
        assert f.energy(volume=100.0) > 0

    def test_history_tracks_steps(self):
        f = InducedField(dt=0.1)
        for _ in range(7):
            f.step(0.5)
        assert len(f.history) == 7

    def test_validation(self):
        with pytest.raises(ValueError, match="dt"):
            InducedField(dt=0.0)
        with pytest.raises(ValueError, match="coupling"):
            InducedField(dt=0.1, coupling=-1.0)
