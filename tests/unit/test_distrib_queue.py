"""Unit tests for the file-backed work queue: leases, shards, merge."""

import json
import time

import pytest

from repro.distrib import SweepSpec, WorkQueue
from repro.distrib.queue import QueueError, read_jsonl_tolerant


def make_queue(tmp_path, n_cells=4, **kwargs):
    spec = SweepSpec(kind="synthetic", n_cells=n_cells, params={"cell_seconds": 0.0})
    return WorkQueue.create(tmp_path / "q", spec, **kwargs)


class TestCreateOpen:
    def test_create_then_reopen_sees_same_cells(self, tmp_path):
        q = make_queue(tmp_path, n_cells=3, env={"REPRO_TELEMETRY": "1"})
        q2 = WorkQueue(q.root)
        assert [c.key for c in q2.cells] == [c.key for c in q.cells]
        assert q2.env == {"REPRO_TELEMETRY": "1"}

    def test_create_refuses_existing_queue(self, tmp_path):
        q = make_queue(tmp_path)
        with pytest.raises(QueueError, match="already contains"):
            WorkQueue.create(q.root, q.spec)

    def test_open_requires_manifest(self, tmp_path):
        with pytest.raises(QueueError, match="not a work queue"):
            WorkQueue(tmp_path)

    def test_steal_after_auto_is_half_lease(self, tmp_path):
        q = make_queue(tmp_path, lease_seconds=10.0)
        assert q.steal_after == 5.0
        q2 = make_queue(tmp_path / "b", lease_seconds=10.0, steal_after=None)
        assert q2.steal_after is None


class TestLeaseProtocol:
    def test_claim_is_exclusive(self, tmp_path):
        q = make_queue(tmp_path)
        assert q.try_claim(0, "w0").status == "claimed"
        held = q.try_claim(0, "w1")
        assert held.status == "held"
        assert held.holder == "w0"

    def test_expired_lease_taken_over_with_attempt_bump(self, tmp_path):
        q = make_queue(tmp_path, lease_seconds=10.0)
        now = time.time()
        assert q.try_claim(0, "w0", now=now - 60.0).status == "claimed"
        outcome = q.try_claim(0, "w1", now=now)
        assert outcome.status == "claimed"
        assert outcome.takeover is True
        assert outcome.attempt == 2

    def test_renew_extends_only_own_lease(self, tmp_path):
        q = make_queue(tmp_path, lease_seconds=10.0)
        q.try_claim(0, "w0")
        assert q.renew(0, "w0") is True
        assert q.renew(0, "w1") is False
        assert q.renew(1, "w0") is False  # never claimed

    def test_corrupt_lease_is_reclaimable(self, tmp_path):
        q = make_queue(tmp_path)
        q.lease_path(0).write_text("{not json")
        outcome = q.try_claim(0, "w1")
        assert outcome.status == "claimed"
        assert outcome.corrupt is True

    def test_steal_marker_once_per_worker(self, tmp_path):
        q = make_queue(tmp_path)
        assert q.try_steal(0, "w1") is True
        assert q.try_steal(0, "w1") is False  # idempotent
        assert q.try_steal(0, "w2") is True
        assert q.steal_markers(0) == 2


class TestResultShards:
    def test_first_completion_wins_dup_counted(self, tmp_path):
        q = make_queue(tmp_path, n_cells=1)
        q.record_result("w0", 0, {"v": 1}, seconds=0.5)
        time.sleep(0.01)
        q.record_result("w1", 0, {"v": 2}, seconds=0.3, stolen=True)
        winners, stats = q.completed()
        assert winners[q.cells[0].key]["result"] == {"v": 1}
        assert stats.duplicates == 1
        assert stats.steals == 1
        assert stats.per_worker["w1"]["steals"] == 1
        assert stats.per_worker["w0"]["cells"] == 1

    def test_per_worker_seconds_accumulate(self, tmp_path):
        q = make_queue(tmp_path, n_cells=2)
        q.record_result("w0", 0, {}, seconds=0.25)
        q.record_result("w0", 1, {}, seconds=0.75, takeover=True)
        _, stats = q.completed()
        assert stats.per_worker["w0"]["worker_seconds"] == pytest.approx(1.0)
        assert stats.per_worker["w0"]["lease_takeovers"] == 1
        assert stats.lease_takeovers == 1

    def test_all_done_tracks_completion(self, tmp_path):
        q = make_queue(tmp_path, n_cells=2)
        assert not q.all_done()
        q.record_result("w0", 0, {}, seconds=0.0)
        assert not q.all_done()
        q.record_result("w1", 1, {}, seconds=0.0)
        assert q.all_done()

    def test_result_floats_round_trip_exactly(self, tmp_path):
        q = make_queue(tmp_path, n_cells=1)
        value = 0.1 + 0.2  # not representable "nicely"; repr round-trips
        q.record_result("w0", 0, {"x": value}, seconds=0.0)
        winners, _ = q.completed()
        assert winners[q.cells[0].key]["result"]["x"] == value


class TestCorruptionTolerance:
    def test_truncated_trailing_record_dropped_and_counted(self, tmp_path):
        """A crash mid-append must cost one record, not the run."""
        q = make_queue(tmp_path, n_cells=2)
        q.record_result("w0", 0, {"v": 1}, seconds=0.0)
        q.record_result("w0", 1, {"v": 2}, seconds=0.0)
        path = q.results_path("w0")
        text = path.read_text()
        path.write_text(text[:-10])  # tear the trailing record mid-line
        winners, stats = q.completed()
        assert len(winners) == 1  # the intact record survives
        assert stats.corrupt_records >= 1
        assert not q.all_done()  # the damaged cell is re-runnable

    def test_garbage_line_between_records_tolerated(self, tmp_path):
        q = make_queue(tmp_path, n_cells=1)
        q.record_result("w0", 0, {"v": 1}, seconds=0.0)
        with open(q.results_path("w0"), "a") as fh:
            fh.write("== not json ==\n")
        records, corrupt = read_jsonl_tolerant(q.results_path("w0"))
        assert len(records) == 1
        assert corrupt == 1

    def test_unknown_cell_key_counts_as_corrupt(self, tmp_path):
        q = make_queue(tmp_path, n_cells=1)
        q.record_result("w0", 0, {"v": 1}, seconds=0.0)
        with open(q.results_path("w0"), "a") as fh:
            fh.write(json.dumps({"type": "result", "cell": "bogus:key"}) + "\n")
        winners, stats = q.completed()
        assert len(winners) == 1
        assert stats.corrupt_records == 1
