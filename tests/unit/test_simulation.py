"""Unit tests: simulation configuration and driver basics.

(The expensive end-to-end behaviour lives in tests/integration.)
"""

import numpy as np
import pytest

from repro.blas.modes import ComputeMode
from repro.dcmesh.simulation import SimulationConfig, estimate_device_bytes
from repro.types import Precision


class TestConfig:
    def test_paper_40(self):
        cfg = SimulationConfig.paper_40()
        assert cfg.n_atoms == 40
        assert cfg.mesh_shape == (64, 64, 64)
        assert cfg.n_orb == 256
        assert cfg.n_occupied == 128
        assert cfg.n_grid == 262144          # Table VII's k

    def test_paper_135(self):
        cfg = SimulationConfig.paper_135()
        assert cfg.n_atoms == 135
        assert cfg.mesh_shape == (96, 96, 96)
        assert cfg.n_orb == 1024

    def test_table3_parameters(self):
        cfg = SimulationConfig.paper_135()
        assert cfg.dt == 0.02
        assert cfg.n_qd_steps == 21_000
        assert cfg.nscf == 500
        assert cfg.total_time_fs == pytest.approx(10.0, abs=0.2)

    def test_small_test_is_structurally_complete(self):
        cfg = SimulationConfig.small_test()
        assert 0 < cfg.n_occupied < cfg.n_orb
        assert cfg.n_atoms == 5

    def test_overrides(self):
        cfg = SimulationConfig.paper_40(n_qd_steps=10, storage=Precision.FP64)
        assert cfg.n_qd_steps == 10
        assert cfg.storage is Precision.FP64

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ValueError, match="dt"):
            SimulationConfig.small_test(dt=0.0)
        with pytest.raises(ValueError, match="n_qd_steps"):
            SimulationConfig.small_test(n_qd_steps=0)
        with pytest.raises(ValueError, match="virtual"):
            SimulationConfig.small_test(n_orb=16)  # == n_occupied
        with pytest.raises(ValueError, match="storage"):
            SimulationConfig.small_test(storage=Precision.BF16)


class TestDeviceBytes:
    def test_paper_claims(self):
        # Table V: 135-atom fits in 64 GB, the next size up does not.
        assert estimate_device_bytes(SimulationConfig.paper_135()) < 64 * 1024**3
        big = SimulationConfig(ncells=(4, 4, 4), mesh_shape=(128, 128, 128), n_orb=2048)
        assert estimate_device_bytes(big) > 64 * 1024**3

    def test_fp64_doubles_footprint(self):
        f32 = estimate_device_bytes(SimulationConfig.paper_40())
        f64 = estimate_device_bytes(
            SimulationConfig.paper_40(storage=Precision.FP64)
        )
        assert f64 == pytest.approx(2 * f32, rel=0.01)


class TestRunBasics:
    def test_setup_idempotent(self, tiny_sim):
        g1 = tiny_sim.setup()
        g2 = tiny_sim.setup()
        assert g1 is g2

    def test_record_count(self, tiny_sim, tiny_fp32_run):
        # One initial record plus one per QD step.
        assert len(tiny_fp32_run.records) == tiny_sim.config.n_qd_steps + 1

    def test_initial_state_is_ground_state(self, tiny_fp32_run):
        r0 = tiny_fp32_run.records[0]
        assert r0.step == 0
        assert r0.nexc == pytest.approx(0.0, abs=1e-6)
        assert r0.eexc == 0.0

    def test_mode_recorded(self, tiny_bf16_run):
        assert tiny_bf16_run.mode is ComputeMode.FLOAT_TO_BF16

    def test_column_access(self, tiny_fp32_run):
        nexc = tiny_fp32_run.column("nexc")
        t = tiny_fp32_run.column("time_fs")
        assert nexc.shape == t.shape
        assert np.all(np.diff(t) > 0)

    def test_n_steps_override(self, tiny_sim):
        res = tiny_sim.run(mode="STANDARD", n_steps=5)
        assert len(res.records) == 6

    def test_invalid_n_steps(self, tiny_sim):
        with pytest.raises(ValueError, match="n_steps"):
            tiny_sim.run(n_steps=0)

    def test_shadow_ledger_block_granularity(self, tiny_sim, tiny_fp32_run):
        # Transfers scale with blocks, not steps: 2 h2d + 1 d2h per block.
        cfg = tiny_sim.config
        n_blocks = cfg.n_qd_steps // cfg.nscf
        assert tiny_fp32_run.ledger.count() == 3 * n_blocks

    def test_laser_column_matches_pulse(self, tiny_sim, tiny_fp32_run):
        from repro.dcmesh.constants import AU_PER_FS

        cfg = tiny_sim.config
        rec = tiny_fp32_run.records[10]
        t_au = rec.time_fs * AU_PER_FS
        assert rec.aext == pytest.approx(cfg.laser.scalar_amplitude(t_au), abs=1e-12)
