"""Unit tests: Section V-B's analytic error bound and its verification."""

import pytest

from repro.blas.modes import ComputeMode
from repro.core.error_model import (
    input_rounding_bound,
    multiplication_error_bound,
    observed_gemm_relative_error,
)
from repro.types import Precision


class TestAnalyticBounds:
    def test_input_bounds(self):
        assert input_rounding_bound(Precision.BF16) == 2**-8
        assert input_rounding_bound(Precision.TF32) == 2**-11

    def test_multiplication_bound_first_order(self):
        b = multiplication_error_bound(Precision.BF16)
        assert b == pytest.approx(2**-7, rel=0.01)


class TestEmpirical:
    def test_bf16_within_bound_positive_data(self):
        err = observed_gemm_relative_error(ComputeMode.FLOAT_TO_BF16, 64, 64, 64)
        assert err <= multiplication_error_bound(Precision.BF16) * 1.5

    def test_tf32_within_bound_positive_data(self):
        err = observed_gemm_relative_error(ComputeMode.FLOAT_TO_TF32, 64, 64, 64)
        assert err <= multiplication_error_bound(Precision.TF32) * 1.5

    def test_error_independent_of_matrix_size(self):
        # The paper's headline claim of Section V-B: relative error of
        # the BF16 mode does not grow with the GEMM size.
        errs = [
            observed_gemm_relative_error(ComputeMode.FLOAT_TO_BF16, 32, 32, k)
            for k in (32, 256, 2048)
        ]
        bound = multiplication_error_bound(Precision.BF16)
        assert all(e <= 1.5 * bound for e in errs)
        # "Independent of size" = no growth with k (in fact the mean of
        # same-sign products tightens the relative error slightly).
        assert errs[-1] <= 2 * errs[0]

    def test_cancellation_breaks_the_bound(self):
        # With mixed-sign data individual outputs can cancel and the
        # elementwise relative error can exceed the same-sign bound.
        err_pos = observed_gemm_relative_error(
            ComputeMode.FLOAT_TO_BF16, 48, 48, 48, positive=True
        )
        err_mix = observed_gemm_relative_error(
            ComputeMode.FLOAT_TO_BF16, 48, 48, 48, positive=False
        )
        assert err_mix > err_pos

    def test_bf16x3_orders_of_magnitude_tighter(self):
        e1 = observed_gemm_relative_error(ComputeMode.FLOAT_TO_BF16, 64, 64, 64)
        e3 = observed_gemm_relative_error(ComputeMode.FLOAT_TO_BF16X3, 64, 64, 64)
        assert e3 < e1 / 100
