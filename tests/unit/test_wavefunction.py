"""Unit tests: orbital sets (the N_grid x N_orb matrix)."""

import numpy as np
import pytest

from repro.dcmesh.mesh import Mesh
from repro.dcmesh.wavefunction import OrbitalSet
from repro.types import Precision


@pytest.fixture(scope="module")
def mesh():
    return Mesh((8, 8, 8), (5.0, 5.0, 5.0))


class TestConstruction:
    def test_random_is_orthonormal(self, mesh):
        orb = OrbitalSet.random(mesh, n_orb=6, n_occupied=3, seed=1)
        s = orb.overlap()
        np.testing.assert_allclose(s, np.eye(6), atol=1e-12)

    def test_random_deterministic(self, mesh):
        a = OrbitalSet.random(mesh, 4, 2, seed=5)
        b = OrbitalSet.random(mesh, 4, 2, seed=5)
        np.testing.assert_array_equal(a.psi, b.psi)

    def test_occupations_layout(self, mesh):
        orb = OrbitalSet.random(mesh, 6, 4, seed=0)
        np.testing.assert_array_equal(orb.occupations, [2, 2, 2, 2, 0, 0])
        assert orb.n_electrons == 8.0
        assert orb.n_occupied == 4

    def test_shape_validation(self, mesh):
        with pytest.raises(ValueError, match="grid points"):
            OrbitalSet(np.zeros((100, 2), np.complex128), np.zeros(2), mesh)
        with pytest.raises(ValueError, match="occupations shape"):
            OrbitalSet(np.zeros((mesh.n_grid, 2), np.complex128), np.zeros(3), mesh)

    def test_occupation_range_validation(self, mesh):
        psi = np.zeros((mesh.n_grid, 1), np.complex128)
        with pytest.raises(ValueError, match="occupations"):
            OrbitalSet(psi, np.array([-0.1]), mesh)
        with pytest.raises(ValueError, match="occupations"):
            OrbitalSet(psi, np.array([2.5]), mesh)

    def test_invalid_n_occupied(self, mesh):
        with pytest.raises(ValueError, match="n_occupied"):
            OrbitalSet.random(mesh, 4, 5, seed=0)


class TestOrthonormalisation:
    def test_restores_orthonormality(self, mesh, rng):
        orb = OrbitalSet.random(mesh, 5, 3, seed=2)
        # Perturb.
        orb.psi = orb.psi + 0.01 * (
            rng.standard_normal(orb.psi.shape) + 1j * rng.standard_normal(orb.psi.shape)
        )
        orb.orthonormalize()
        np.testing.assert_allclose(orb.overlap(), np.eye(5), atol=1e-12)

    def test_lowdin_is_minimal_change(self, mesh):
        # Already-orthonormal orbitals are (numerically) unchanged.
        orb = OrbitalSet.random(mesh, 4, 2, seed=3)
        before = orb.psi.copy()
        orb.orthonormalize()
        np.testing.assert_allclose(orb.psi, before, atol=1e-12)

    def test_fp32_storage_roundtrip(self, mesh):
        orb = OrbitalSet.random(mesh, 4, 2, seed=4).astype(Precision.FP32)
        orb.orthonormalize()
        assert orb.psi.dtype == np.complex64
        np.testing.assert_allclose(orb.overlap(), np.eye(4), atol=1e-6)

    def test_singular_set_raises(self, mesh):
        psi = np.zeros((mesh.n_grid, 2), np.complex128)
        psi[:, 0] = 1.0
        psi[:, 1] = 1.0  # linearly dependent
        orb = OrbitalSet(psi, np.array([2.0, 0.0]), mesh)
        with pytest.raises(np.linalg.LinAlgError):
            orb.orthonormalize()

    def test_norms_after(self, mesh):
        orb = OrbitalSet.random(mesh, 3, 1, seed=6)
        np.testing.assert_allclose(orb.norms(), 1.0, rtol=1e-12)


class TestDensity:
    def test_density_integrates_to_electron_count(self, mesh):
        orb = OrbitalSet.random(mesh, 6, 4, seed=7)
        n = orb.density()
        assert np.sum(n) * mesh.dv == pytest.approx(orb.n_electrons)

    def test_density_nonnegative(self, mesh):
        orb = OrbitalSet.random(mesh, 6, 4, seed=8)
        assert orb.density().min() >= 0

    def test_virtuals_do_not_contribute(self, mesh):
        orb = OrbitalSet.random(mesh, 4, 2, seed=9)
        n_before = orb.density()
        orb.psi[:, 2:] *= 7.0  # scale virtual columns only
        np.testing.assert_allclose(orb.density(), n_before, rtol=1e-12)


class TestConversions:
    def test_astype_copies(self, mesh):
        orb = OrbitalSet.random(mesh, 3, 2, seed=10)
        f32 = orb.astype(Precision.FP32)
        assert f32.psi.dtype == np.complex64
        f32.psi[:] = 0
        assert np.abs(orb.psi).max() > 0

    def test_copy_independent(self, mesh):
        orb = OrbitalSet.random(mesh, 3, 2, seed=11)
        cp = orb.copy()
        cp.occupations[0] = 0.0
        assert orb.occupations[0] == 2.0
