"""Unit tests: finite-difference Laplacian stencils."""

import numpy as np
import pytest

from repro.dcmesh.mesh import Mesh
from repro.dcmesh.stencil import (
    STENCIL_COEFFICIENTS,
    kinetic_apply_fd,
    laplacian_apply,
    laplacian_eigenvalue_1d,
)


class TestCoefficients:
    @pytest.mark.parametrize("order", sorted(STENCIL_COEFFICIENTS))
    def test_coefficients_sum_to_zero(self, order):
        # A constant function has zero Laplacian: c0 + 2*sum(cj) = 0.
        c = STENCIL_COEFFICIENTS[order]
        assert c[0] + 2 * sum(c[1:]) == pytest.approx(0.0, abs=1e-14)

    @pytest.mark.parametrize("order", sorted(STENCIL_COEFFICIENTS))
    def test_second_moment_normalised(self, order):
        # Exactness on x^2 (d2/dx2 = 2): sum over the full symmetric
        # stencil of c_j * j^2 must equal 2.
        c = STENCIL_COEFFICIENTS[order]
        second = 2 * sum(cj * j**2 for j, cj in enumerate(c))
        assert second == pytest.approx(2.0, rel=1e-12)


class TestEigenvalues:
    def test_approaches_minus_k2(self):
        k = 1.3
        for order in (2, 4, 6, 8):
            val = laplacian_eigenvalue_1d(k, h=0.05, order=order)
            assert val == pytest.approx(-k * k, rel=1e-3)

    @pytest.mark.parametrize("order", [2, 4, 6])
    def test_convergence_order(self, order):
        k = 1.0
        errs = []
        for h in (0.2, 0.1):
            errs.append(abs(laplacian_eigenvalue_1d(k, h, order) + k * k))
        measured_order = np.log2(errs[0] / errs[1])
        assert measured_order == pytest.approx(order, abs=0.4)

    def test_higher_order_more_accurate(self):
        k, h = 1.5, 0.3
        errs = [abs(laplacian_eigenvalue_1d(k, h, o) + k * k) for o in (2, 4, 6, 8)]
        assert errs == sorted(errs, reverse=True)

    def test_unsupported_order(self):
        with pytest.raises(ValueError, match="unsupported stencil order"):
            laplacian_eigenvalue_1d(1.0, 0.1, order=3)


class TestApply:
    @pytest.fixture(scope="class")
    def mesh(self):
        return Mesh((16, 16, 16), (8.0, 8.0, 8.0))

    def test_plane_wave_eigenfunction(self, mesh):
        kvec = mesh.kvecs[1]  # lowest nonzero harmonic
        psi = np.exp(1j * mesh.coords @ kvec)[:, None]
        lap = laplacian_apply(mesh, psi, order=8)
        # FD eigenvalue per dimension.
        expect = sum(
            laplacian_eigenvalue_1d(kvec[d], mesh.spacing[d], 8) for d in range(3)
        )
        np.testing.assert_allclose(lap, expect * psi, rtol=1e-10)

    def test_matches_spectral_on_smooth_field(self, mesh):
        # A low-frequency field: 8th-order FD ~ spectral.
        kvec = 2 * np.pi / 8.0 * np.array([1.0, 1.0, 0.0])
        psi = np.cos(mesh.coords @ kvec)[:, None].astype(np.complex128)
        fd = laplacian_apply(mesh, psi, order=8)
        spectral = mesh.ifft(mesh.fft(psi) * (-mesh.k2[:, None]))
        np.testing.assert_allclose(fd, spectral, atol=1e-4 * np.abs(spectral).max())

    def test_constant_annihilated(self, mesh):
        psi = np.ones((mesh.n_grid, 2), np.complex128)
        lap = laplacian_apply(mesh, psi, order=4)
        np.testing.assert_allclose(lap, 0.0, atol=1e-12)

    def test_shape_validation(self, mesh):
        with pytest.raises(ValueError, match="N_grid"):
            laplacian_apply(mesh, np.zeros((7, 1)))

    def test_kinetic_sign_and_device(self, mesh):
        from repro.gpu import Device

        kvec = mesh.kvecs[1]
        psi = np.exp(1j * mesh.coords @ kvec)[:, None]
        dev = Device()
        t_psi = kinetic_apply_fd(mesh, psi, order=4, device=dev)
        # Positive kinetic energy for a plane wave.
        e = np.vdot(psi, t_psi).real
        assert e > 0
        ev = dev.timeline.events[0]
        assert ev.name == "fd_stencil_o4"
        assert ev.kind == "app"
