"""Unit tests: environment-variable plumbing (the artifact's run recipe)."""

import os

import pytest

from repro.blas.env import KMP_BLOCKTIME_ENV, paper_run_env, scoped_env
from repro.blas.modes import ComputeMode, MKL_COMPUTE_MODE_ENV
from repro.blas.verbose import MKL_VERBOSE_ENV


class TestScopedEnv:
    def test_sets_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_VAR", raising=False)
        with scoped_env({"REPRO_TEST_VAR": "x"}):
            assert os.environ["REPRO_TEST_VAR"] == "x"
        assert "REPRO_TEST_VAR" not in os.environ

    def test_restores_previous_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_VAR", "old")
        with scoped_env({"REPRO_TEST_VAR": "new"}):
            assert os.environ["REPRO_TEST_VAR"] == "new"
        assert os.environ["REPRO_TEST_VAR"] == "old"

    def test_none_unsets(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_VAR", "old")
        with scoped_env({"REPRO_TEST_VAR": None}):
            assert "REPRO_TEST_VAR" not in os.environ
        assert os.environ["REPRO_TEST_VAR"] == "old"

    def test_restores_on_exception(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_VAR", raising=False)
        with pytest.raises(RuntimeError):
            with scoped_env({"REPRO_TEST_VAR": "x"}):
                raise RuntimeError
        assert "REPRO_TEST_VAR" not in os.environ


class TestPaperRunEnv:
    def test_standard_run_unsets_mode(self):
        env = paper_run_env(ComputeMode.STANDARD)
        assert env[KMP_BLOCKTIME_ENV] == "0"
        assert env[MKL_COMPUTE_MODE_ENV] is None
        assert env[MKL_VERBOSE_ENV] is None

    def test_bf16_run_sets_mode(self):
        env = paper_run_env(ComputeMode.FLOAT_TO_BF16)
        assert env[MKL_COMPUTE_MODE_ENV] == "FLOAT_TO_BF16"

    def test_verbose_flag(self):
        env = paper_run_env(ComputeMode.FLOAT_TO_TF32, verbose=True)
        assert env[MKL_VERBOSE_ENV] == "2"

    def test_recipe_drives_blas_layer(self, rng, clean_mode_env):
        # The whole point: exporting the env vars flips the mode with
        # no source change.
        import numpy as np

        from repro.blas.gemm import sgemm

        a = rng.standard_normal((16, 16)).astype(np.float32)
        with scoped_env(paper_run_env(ComputeMode.FLOAT_TO_BF16)):
            from_env = sgemm(a, a)
        explicit = sgemm(a, a, mode="FLOAT_TO_BF16")
        np.testing.assert_array_equal(from_env, explicit)
