"""Unit tests: the LFD split-operator stepper."""

import numpy as np
import pytest

from repro.dcmesh.laser import LaserPulse
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.nlp import NonlocalPropagator
from repro.dcmesh.propagate import LFDPropagator
from repro.dcmesh.wavefunction import OrbitalSet


@pytest.fixture(scope="module")
def setup():
    mesh = Mesh((8, 8, 8), (5.0, 5.0, 5.0))
    orb = OrbitalSet.random(mesh, 4, 2, seed=0)
    v = np.zeros(mesh.n_grid)
    h_nl = np.zeros((4, 4))
    laser = LaserPulse(amplitude=0.2, duration_fs=0.5)
    return mesh, orb, v, h_nl, laser


def _make(mesh, v, h_nl, laser, psi0, dt=0.05, dtype=np.complex64, device=None):
    nlp = NonlocalPropagator(psi0.astype(dtype), h_nl, dt, mesh)
    return LFDPropagator(mesh, v, nlp, laser, dt, storage_dtype=dtype, device=device)


class TestUnitarity:
    def test_norm_conserved_free_propagation(self, setup):
        mesh, orb, v, h_nl, laser = setup
        prop = _make(mesh, v, h_nl, laser, orb.psi, dtype=np.complex128)
        psi = orb.psi.astype(np.complex128)
        for i in range(20):
            psi = prop.step(psi, t=i * prop.dt)
        norms = np.sqrt(np.sum(np.abs(psi) ** 2, axis=0) * mesh.dv)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-10)

    def test_norm_approximately_conserved_fp32(self, setup):
        mesh, orb, v, h_nl, laser = setup
        prop = _make(mesh, v, h_nl, laser, orb.psi)
        psi = orb.psi.astype(np.complex64)
        for i in range(50):
            psi = prop.step(psi, t=i * prop.dt)
        norms = np.sqrt(np.sum(np.abs(psi) ** 2, axis=0) * mesh.dv)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-4)

    def test_free_particle_ground_state_stationary(self, setup):
        # k=0 constant state is an eigenstate with E=0: invariant
        # outside the pulse window.
        mesh, orb, v, h_nl, laser = setup
        psi = np.full((mesh.n_grid, 1), 1.0 / np.sqrt(mesh.volume), np.complex128)
        prop = _make(mesh, v, np.zeros((1, 1)), LaserPulse(amplitude=0.0, duration_fs=0.1),
                     psi, dtype=np.complex128)
        out = prop.step(psi.copy(), t=100.0)
        np.testing.assert_allclose(out, psi, atol=1e-12)


class TestEnergyConservation:
    def test_field_free_energy_conserved(self, setup):
        # With A = 0 and a static potential the split-operator
        # propagation conserves <H> to O(dt^2) per step.
        mesh, orb, _, h_nl, _ = setup
        rng = np.random.default_rng(5)
        v = 0.3 * rng.standard_normal(mesh.n_grid)
        quiet = LaserPulse(amplitude=0.0, duration_fs=0.01)
        prop = _make(mesh, v, h_nl, quiet, orb.psi, dt=0.02, dtype=np.complex128)

        def energy(psi):
            psig = mesh.fft(psi)
            t = np.real(np.sum(np.abs(psig) ** 2 * (0.5 * mesh.k2[:, None]))) * mesh.dv / mesh.n_grid
            pv = np.real(np.sum(np.abs(psi) ** 2 * v[:, None])) * mesh.dv
            return t + pv

        psi = orb.psi.astype(np.complex128)
        e0 = energy(psi)
        for i in range(100):
            psi = prop.step(psi, t=1000.0 + i * prop.dt)
        # Second-order splitting: bounded oscillation, no secular drift.
        assert energy(psi) == pytest.approx(e0, rel=1e-5)


class TestFieldCoupling:
    def test_pulse_changes_state(self, setup):
        mesh, orb, v, h_nl, laser = setup
        prop = _make(mesh, v, h_nl, laser, orb.psi, dtype=np.complex128)
        psi_in = orb.psi.astype(np.complex128)
        inside = prop.step(psi_in.copy(), t=laser.duration_au / 2)
        outside = prop.step(psi_in.copy(), t=laser.duration_au * 10)
        assert not np.allclose(inside, outside, atol=1e-10)

    def test_kinetic_phase_modulus_one(self, setup):
        mesh, orb, v, h_nl, laser = setup
        prop = _make(mesh, v, h_nl, laser, orb.psi)
        ph = prop.kinetic_phase(laser.duration_au / 2)
        np.testing.assert_allclose(np.abs(ph), 1.0, atol=1e-6)

    def test_field_free_phase_is_cached(self, setup):
        mesh, orb, v, h_nl, laser = setup
        prop = _make(mesh, v, h_nl, laser, orb.psi)
        assert prop.kinetic_phase(1e9) is prop.k_phase0


class TestValidation:
    def test_dtype_enforced(self, setup):
        mesh, orb, v, h_nl, laser = setup
        prop = _make(mesh, v, h_nl, laser, orb.psi, dtype=np.complex64)
        with pytest.raises(TypeError, match="storage"):
            prop.step(orb.psi.astype(np.complex128), t=0.0)

    def test_invalid_dt(self, setup):
        mesh, orb, v, h_nl, laser = setup
        nlp = NonlocalPropagator(orb.psi, h_nl, 0.05, mesh)
        with pytest.raises(ValueError, match="dt"):
            LFDPropagator(mesh, v, nlp, laser, dt=0.0)

    def test_veff_shape_checked(self, setup):
        mesh, orb, v, h_nl, laser = setup
        nlp = NonlocalPropagator(orb.psi, h_nl, 0.05, mesh)
        with pytest.raises(ValueError, match="v_eff"):
            LFDPropagator(mesh, np.zeros(7), nlp, laser, dt=0.05)


class TestDeviceBooking:
    def test_step_books_18_passes(self, setup):
        from repro.gpu import Device

        mesh, orb, v, h_nl, laser = setup
        dev = Device()
        prop = _make(mesh, v, h_nl, laser, orb.psi, device=dev)
        prop.step(orb.psi.astype(np.complex64), t=0.0)
        app = [e for e in dev.timeline.events if e.kind == "app"]
        names = [e.name for e in app]
        assert names == ["vloc_kick", "fft_forward", "kinetic_phase",
                         "fft_inverse", "vloc_kick"]
        blas = [e for e in dev.timeline.events if e.kind == "blas"]
        assert len(blas) == 3  # the nlp_prop GEMMs
