"""Unit tests: error-budget analysis."""

import numpy as np
import pytest

from repro.blas.modes import ComputeMode
from repro.core.error_budget import (
    budget_table,
    fit_drift,
    per_step_state_error,
)


class TestPerStepError:
    def test_scales_with_inputs(self):
        base = per_step_state_error(ComputeMode.FLOAT_TO_BF16, 0.02, 1.0)
        assert per_step_state_error(ComputeMode.FLOAT_TO_BF16, 0.04, 1.0) == pytest.approx(2 * base)
        assert per_step_state_error(ComputeMode.FLOAT_TO_BF16, 0.02, 3.0) == pytest.approx(3 * base)

    def test_mode_ordering(self):
        e = {m: per_step_state_error(m, 0.02, 1.0) for m in (
            ComputeMode.FLOAT_TO_BF16, ComputeMode.FLOAT_TO_TF32,
            ComputeMode.FLOAT_TO_BF16X2, ComputeMode.FLOAT_TO_BF16X3,
        )}
        assert (e[ComputeMode.FLOAT_TO_BF16] > e[ComputeMode.FLOAT_TO_TF32]
                > e[ComputeMode.FLOAT_TO_BF16X2] > e[ComputeMode.FLOAT_TO_BF16X3])

    def test_validation(self):
        with pytest.raises(ValueError):
            per_step_state_error(ComputeMode.FLOAT_TO_BF16, -1.0, 1.0)


class TestFitDrift:
    def test_recovers_power_law(self):
        steps = np.arange(200)
        dev = 3e-4 * steps.astype(float) ** 0.7
        fit = fit_drift(dev)
        assert fit.exponent == pytest.approx(0.7, abs=0.02)
        assert fit.amplitude == pytest.approx(3e-4, rel=0.1)
        assert fit.r_squared > 0.999

    def test_linear_drift(self):
        dev = 1e-5 * np.arange(100).astype(float)
        fit = fit_drift(dev)
        assert fit.exponent == pytest.approx(1.0, abs=0.01)

    def test_random_walk_exponent(self):
        rng = np.random.default_rng(0)
        walk = np.abs(np.cumsum(rng.standard_normal(5000))) * 1e-6
        fit = fit_drift(walk, skip=10)
        assert 0.2 < fit.exponent < 0.9

    def test_predict(self):
        fit = fit_drift(2.0 * np.arange(50).astype(float))
        np.testing.assert_allclose(fit.predict(np.array([10.0])), [20.0], rtol=0.05)

    def test_too_short(self):
        with pytest.raises(ValueError, match="at least 4"):
            fit_drift([1.0, 2.0, 3.0])


class TestBudgetTable:
    def test_rows_structure(self):
        from repro.core.deviation import DeviationSeries

        steps = np.arange(50)
        devs = {
            ComputeMode.FLOAT_TO_BF16: DeviationSeries(
                observable="ekin", mode=ComputeMode.FLOAT_TO_BF16,
                time_fs=steps * 0.001,
                deviation=1e-3 * steps.astype(float) ** 0.5,
                reference=np.full(50, 50.0),
            ),
        }
        rows = budget_table(devs, dt=0.02, h_nl_norm=1.5)
        (row,) = rows
        assert row[0] == "FLOAT_TO_BF16"
        assert row[1] == pytest.approx(per_step_state_error(
            ComputeMode.FLOAT_TO_BF16, 0.02, 1.5))
        assert row[3] == pytest.approx(0.5, abs=0.05)
        assert np.isfinite(row[4])
