"""Unit tests: QD-step records and the DCMESH output line."""

import pytest

from repro.dcmesh.observables import (
    COLUMNS,
    QDRecord,
    format_qd_line,
    parse_qd_line,
    records_to_columns,
)


def _rec(step=3, **over):
    base = dict(
        step=step, time_fs=0.0145, ekin=51.2, epot=-103.4, etot=-52.2,
        eexc=0.8, nexc=0.25, aext=0.12, javg=-3.4e-5,
    )
    base.update(over)
    return QDRecord(**base)


class TestRecord:
    def test_paper_column_order(self):
        # "In order from left to right, these are ekin, epot, etot,
        # eexc, nexc, Aext, and javg."
        assert COLUMNS == ("ekin", "epot", "etot", "eexc", "nexc", "aext", "javg")

    def test_values_follow_columns(self):
        r = _rec()
        assert r.values() == (51.2, -103.4, -52.2, 0.8, 0.25, 0.12, -3.4e-5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            _rec().ekin = 0.0


class TestLineFormat:
    def test_roundtrip(self):
        r = _rec()
        line = format_qd_line(r)
        back = parse_qd_line(line)
        assert back == r

    def test_line_starts_with_qd(self):
        assert format_qd_line(_rec()).startswith("QD ")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a QD record"):
            parse_qd_line("hello world")
        with pytest.raises(ValueError, match="not a QD record"):
            parse_qd_line("QD 1 2 3")

    def test_precision_survives_roundtrip(self):
        r = _rec(javg=-3.4567890123e-12)
        assert parse_qd_line(format_qd_line(r)).javg == pytest.approx(
            -3.4567890123e-12, rel=1e-9
        )


class TestColumns:
    def test_records_to_columns(self):
        recs = [_rec(step=i, nexc=float(i)) for i in range(4)]
        cols = records_to_columns(recs)
        assert cols["step"] == [0, 1, 2, 3]
        assert cols["nexc"] == [0.0, 1.0, 2.0, 3.0]
        assert len(cols["time_fs"]) == 4
