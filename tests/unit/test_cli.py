"""Unit tests: the ``dcmesh`` simulation CLI."""


from repro.dcmesh.cli import main
from repro.dcmesh.io.output import read_run_log


class TestDcmeshCli:
    def test_small_test_run_to_file(self, tmp_path, capsys):
        log = tmp_path / "run.log"
        rc = main(["--small-test", "--steps", "5", "--output", str(log),
                   "--mode", "FLOAT_TO_BF16"])
        assert rc == 0
        records = read_run_log(log)
        assert len(records) == 6
        err = capsys.readouterr().err
        assert "converging FP64 ground state" in err.lower() or "SCF" in err

    def test_stdout_log_format(self, capsys):
        rc = main(["--small-test", "--steps", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("QD ")]
        assert len(lines) == 4
        assert out.startswith("# mode: STANDARD")

    def test_mode_flag_recorded_in_header(self, tmp_path):
        log = tmp_path / "run.log"
        main(["--small-test", "--steps", "2", "--mode", "bf16",
              "--output", str(log)])
        assert "mode: FLOAT_TO_BF16" in log.read_text()

    def test_bad_mode_rejected(self, capsys):
        rc = main(["--small-test", "--mode", "FLOAT_TO_FP8"])
        assert rc == 2
        assert "unknown compute mode" in capsys.readouterr().err

    def test_write_inputs_then_run(self, tmp_path, capsys):
        deck = tmp_path / "deck"
        rc = main(["--small-test", "--write-inputs", str(deck)])
        assert rc == 0
        for name in ("PTOquick.dc", "CONFIG", "lfd.in"):
            assert (deck / name).exists()
        log = tmp_path / "run.log"
        rc = main(["--input", str(deck), "--steps", "2", "--output", str(log)])
        assert rc == 0
        assert len(read_run_log(log)) == 3

    def test_missing_inputs_exit_code(self, tmp_path, capsys):
        rc = main(["--input", str(tmp_path / "nope"), "--steps", "1"])
        assert rc == 2
        assert "cannot load inputs" in capsys.readouterr().err

    def test_verbose_prints_blas_lines(self, tmp_path, capsys):
        rc = main(["--small-test", "--steps", "1", "--verbose",
                   "--output", str(tmp_path / "x.log")])
        assert rc == 0
        err = capsys.readouterr().err
        assert "MKL_VERBOSE CGEMM" in err
