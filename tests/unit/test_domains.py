"""Unit tests: divide-and-conquer domain solver."""

import numpy as np
import pytest

from repro.dcmesh.domains import DCSolver
from repro.dcmesh.material import build_pto_supercell
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.projectors import build_projectors
from repro.dcmesh.scf import SCFParams, SCFSolver


@pytest.fixture(scope="module")
def system():
    material = build_pto_supercell((1, 1, 2), lattice=6.0)
    mesh = Mesh((8, 8, 16), material.box)
    return material, mesh


@pytest.fixture(scope="module")
def dc_result(system):
    material, mesh = system
    dc = DCSolver(material, mesh, (1, 1, 2), n_domains=2, buffer_layers=0,
                  scf_params=SCFParams(max_iter=60, tol=1e-6))
    return dc, dc.solve()


class TestPartition:
    def test_domain_count_and_shapes(self, system):
        material, mesh = system
        dc = DCSolver(material, mesh, (1, 1, 2), n_domains=2, buffer_layers=0)
        domains = dc.partition()
        assert len(domains) == 2
        for d in domains:
            assert d.mesh.shape == (8, 8, 8)
            assert d.material.n_atoms == 5

    def test_cores_tile_the_supercell(self, system):
        material, mesh = system
        dc = DCSolver(material, mesh, (1, 1, 2), n_domains=2, buffer_layers=0)
        domains = dc.partition()
        covered = set()
        for d in domains:
            width = d.core_z_slice.stop - d.core_z_slice.start
            covered.update(range(d.global_z_offset, d.global_z_offset + width))
        assert covered == set(range(mesh.shape[2]))

    def test_buffer_extends_domains(self):
        # A 4-layer supercell leaves room for 1-layer buffers around a
        # 1-layer core (wrap-around duplication forbids this on 2).
        material = build_pto_supercell((1, 1, 4), lattice=6.0)
        mesh = Mesh((6, 6, 24), material.box)
        dc = DCSolver(material, mesh, (1, 1, 4), n_domains=4, buffer_layers=1)
        for d in dc.partition():
            # Extended slab = 1 core + 2 buffer layers = 3 layers.
            assert d.mesh.shape[2] == 18
            assert d.material.n_atoms == 15
            # Core columns sit after the lower buffer (6 pts/layer).
            assert d.core_z_slice == slice(6, 12)

    def test_every_atom_in_exactly_one_core(self):
        material = build_pto_supercell((1, 1, 4), lattice=6.0)
        mesh = Mesh((6, 6, 24), material.box)
        dc = DCSolver(material, mesh, (1, 1, 4), n_domains=4, buffer_layers=1)
        layer_len = material.box[2] / 4
        total_core = 0
        for d in dc.partition():
            total_core += sum(
                1 for pos in material.positions
                if int(pos[2] / layer_len) % 4 in d.core_layers
            )
        assert total_core == material.n_atoms

    def test_validation(self, system):
        material, mesh = system
        with pytest.raises(ValueError, match="divide"):
            DCSolver(material, mesh, (1, 1, 2), n_domains=3)
        with pytest.raises(ValueError, match="buffer"):
            DCSolver(material, mesh, (1, 1, 2), n_domains=2, buffer_layers=2)
        bad_mesh = Mesh((8, 8, 15), material.box)
        with pytest.raises(ValueError, match="mesh z-dimension"):
            DCSolver(material, bad_mesh, (1, 1, 2), n_domains=2)


class TestRecombination:
    def test_electron_count_exact(self, system, dc_result):
        material, mesh = system
        _, result = dc_result
        assert result.n_electrons * mesh.dv == pytest.approx(
            material.n_electrons, rel=1e-9
        )

    def test_density_nonnegative(self, dc_result):
        _, result = dc_result
        assert result.density.min() >= 0

    def test_density_close_to_monolithic(self, system, dc_result):
        material, mesh = system
        _, result = dc_result
        proj = build_projectors(material, mesh)
        mono = SCFSolver(mesh, material, proj,
                         SCFParams(max_iter=80, tol=1e-6)).solve(n_orb=40)
        rel_l1 = np.abs(result.density - mono.density).sum() / mono.density.sum()
        # Zero-buffer DC on a 2-cell system: within ~10%.
        assert rel_l1 < 0.10

    def test_band_energy_extensive(self, system, dc_result):
        material, mesh = system
        _, result = dc_result
        proj = build_projectors(material, mesh)
        mono = SCFSolver(mesh, material, proj,
                         SCFParams(max_iter=80, tol=1e-6)).solve(n_orb=40)
        assert result.band_energy == pytest.approx(mono.band_energy, rel=0.1)

    def test_single_domain_is_monolithic(self, system):
        material, mesh = system
        dc = DCSolver(material, mesh, (1, 1, 2), n_domains=1,
                      scf_params=SCFParams(max_iter=60, tol=1e-6))
        result = dc.solve()
        assert len(result.domains) == 1
        assert result.domains[0].material.n_atoms == material.n_atoms
