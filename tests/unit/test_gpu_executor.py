"""Unit tests: the modelled Device (booking, memory, copies)."""

import pytest

from repro.blas.modes import ComputeMode
from repro.gpu.executor import Device
from repro.gpu.specs import MAX_1550_STACK


class TestGemmBooking:
    def test_record_gemm_returns_model_seconds(self):
        dev = Device()
        s = dev.record_gemm("cgemm", 128, 128, 262144, ComputeMode.STANDARD, site="remap_occ")
        assert s > 0
        assert dev.total_l0_time() == pytest.approx(s)
        ev = dev.timeline.events[0]
        assert ev.name == "cgemm" and ev.kind == "blas" and ev.site == "remap_occ"

    def test_mode_changes_booked_time(self):
        d1, d2 = Device(), Device()
        t_std = d1.record_gemm("cgemm", 128, 3968, 262144, ComputeMode.STANDARD)
        t_bf16 = d2.record_gemm("cgemm", 128, 3968, 262144, ComputeMode.FLOAT_TO_BF16)
        assert t_std > t_bf16


class TestStreamBooking:
    def test_stream_time_scales_with_bytes(self):
        dev = Device()
        t1 = dev.record_stream("fft", 1e9, buffer_bytes=1e9)
        t2 = dev.record_stream("fft", 2e9, buffer_bytes=1e9)
        assert t2 > t1

    def test_small_buffer_low_occupancy(self):
        dev = Device()
        # Same bytes moved, smaller resident buffer -> slower.
        t_small = dev.record_stream("k", 1e8, buffer_bytes=1e6)
        t_big = dev.record_stream("k", 1e8, buffer_bytes=1e10)
        assert t_small > t_big

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Device().record_stream("k", -1.0)

    def test_kind_is_app(self):
        dev = Device()
        dev.record_stream("k", 1e6)
        assert dev.timeline.events[0].kind == "app"


class TestCopyBooking:
    def test_copy_time_linear_in_bytes(self):
        dev = Device()
        t1 = dev.record_copy("h2d", 55e9)  # one second at link speed
        assert t1 == pytest.approx(1.0, rel=1e-3)
        assert dev.timeline.events[0].kind == "copy"


class TestMemoryAccounting:
    def test_allocate_and_free(self):
        dev = Device()
        dev.allocate(10)
        assert dev.allocated_bytes == 10
        dev.free(10)
        assert dev.allocated_bytes == 0

    def test_oom_raises(self):
        dev = Device()
        with pytest.raises(MemoryError, match="device OOM"):
            dev.allocate(MAX_1550_STACK.hbm_bytes + 1)

    def test_oom_on_cumulative(self):
        dev = Device()
        dev.allocate(MAX_1550_STACK.hbm_bytes)
        with pytest.raises(MemoryError):
            dev.allocate(1)

    def test_free_too_much_rejected(self):
        dev = Device()
        dev.allocate(5)
        with pytest.raises(ValueError):
            dev.free(6)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            Device().allocate(-1)

    def test_reset_clears_timeline_not_memory(self):
        dev = Device()
        dev.allocate(100)
        dev.record_stream("k", 1e6)
        dev.reset()
        assert dev.total_l0_time() == 0
        assert dev.allocated_bytes == 100
