"""Unit tests: calc_energy."""

import numpy as np
import pytest

from repro.blas.verbose import mkl_verbose
from repro.dcmesh.energy import calc_energy
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.wavefunction import OrbitalSet


@pytest.fixture(scope="module")
def setup():
    mesh = Mesh((8, 8, 8), (5.0, 5.0, 5.0))
    orb = OrbitalSet.random(mesh, 6, 3, seed=0)
    rng = np.random.default_rng(1)
    v = rng.standard_normal(mesh.n_grid) * 0.1
    h_nl = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
    h_nl = 0.5 * (h_nl + h_nl.conj().T) * 0.1
    return mesh, orb, v, h_nl


class TestEnergies:
    def test_kinetic_positive_for_normalised_states(self, setup):
        mesh, orb, v, h_nl = setup
        e = calc_energy(orb.psi, orb.psi, orb.occupations, mesh, v, h_nl)
        assert e.ekin > 0

    def test_plane_wave_kinetic_energy_exact(self, setup):
        mesh, orb, v, h_nl = setup
        kvec = mesh.kvecs[9]
        psi = np.exp(1j * mesh.coords @ kvec)[:, None] / np.sqrt(mesh.volume)
        psi = np.concatenate([psi, psi], axis=1).astype(np.complex128)
        f = np.array([2.0, 0.0])
        e = calc_energy(psi, psi, f, mesh, np.zeros(mesh.n_grid), np.zeros((2, 2)))
        assert e.ekin == pytest.approx(2.0 * 0.5 * float(kvec @ kvec), rel=1e-6)

    def test_field_increases_kinetic_energy(self, setup):
        mesh, orb, v, h_nl = setup
        e0 = calc_energy(orb.psi, orb.psi, orb.occupations, mesh, v, h_nl)
        ea = calc_energy(
            orb.psi, orb.psi, orb.occupations, mesh, v, h_nl,
            a_field=np.array([0.0, 0.0, 0.5]),
        )
        # (k+A)^2/2 with random (zero-mean momentum) states: +A^2/2 * N_el.
        expect = e0.ekin + 0.5 * 0.25 * orb.n_electrons
        assert ea.ekin == pytest.approx(expect, rel=0.05)

    def test_epot_is_density_contraction(self, setup):
        mesh, orb, v, h_nl = setup
        e = calc_energy(orb.psi, orb.psi, orb.occupations, mesh, v, h_nl)
        expect = float(np.sum(orb.density() * v) * mesh.dv)
        assert e.epot == pytest.approx(expect, rel=1e-5)

    def test_enl_for_reference_state(self, setup):
        # psi == psi0: S = I, so E_nl = sum_j f_j (H_nl)_jj.
        mesh, orb, v, h_nl = setup
        e = calc_energy(orb.psi, orb.psi, orb.occupations, mesh, v, h_nl)
        expect = float(np.real(np.diagonal(h_nl)) @ orb.occupations)
        assert e.enl == pytest.approx(expect, abs=1e-6)

    def test_etot_is_sum(self, setup):
        mesh, orb, v, h_nl = setup
        e = calc_energy(orb.psi, orb.psi, orb.occupations, mesh, v, h_nl)
        assert e.etot == pytest.approx(e.ekin + e.epot + e.enl)

    def test_occupation_shape_checked(self, setup):
        mesh, orb, v, h_nl = setup
        with pytest.raises(ValueError, match="occupations"):
            calc_energy(orb.psi, orb.psi, np.zeros(3), mesh, v, h_nl)


class TestBlasStructure:
    def test_three_tagged_gemms(self, setup, clean_mode_env):
        mesh, orb, v, h_nl = setup
        psi32 = orb.psi.astype(np.complex64)
        with mkl_verbose() as log:
            calc_energy(psi32, psi32, orb.occupations, mesh, v, h_nl)
        assert len(log) == 3
        assert all(r.site == "calc_energy" for r in log)
        shapes = [(r.m, r.n, r.k) for r in log]
        assert shapes == [(6, 6, 512), (6, 6, 512), (6, 6, 6)]

    def test_device_books_stream_kernels(self, setup):
        from repro.gpu import Device

        mesh, orb, v, h_nl = setup
        dev = Device()
        calc_energy(
            orb.psi.astype(np.complex64), orb.psi.astype(np.complex64),
            orb.occupations, mesh, v, h_nl, device=dev,
        )
        names = {e.name for e in dev.timeline.events}
        assert "fft_energy" in names and "density_pot" in names
