"""Unit tests: per-call-site compute-mode policies (future-work feature)."""

import numpy as np
import pytest

from repro.blas.gemm import call_site, gemm
from repro.blas.modes import ComputeMode, compute_mode
from repro.blas.policy import AdaptiveSitePolicy, SitePolicy, active_policy
from repro.blas.verbose import mkl_verbose

pytestmark = pytest.mark.usefixtures("clean_mode_env")


@pytest.fixture()
def ab(rng):
    a = rng.standard_normal((24, 24)).astype(np.float32)
    b = rng.standard_normal((24, 24)).astype(np.float32)
    return a, b


class TestPolicyObject:
    def test_mode_lookup(self):
        p = SitePolicy({"nlp_prop": "FLOAT_TO_BF16X3"}, default="FLOAT_TO_BF16")
        assert p.mode_for("nlp_prop") is ComputeMode.FLOAT_TO_BF16X3
        assert p.mode_for("remap_occ") is ComputeMode.FLOAT_TO_BF16

    def test_no_default_returns_none(self):
        p = SitePolicy({"nlp_prop": "FLOAT_TO_BF16"})
        assert p.mode_for("other") is None

    def test_invalid_mode_rejected_at_construction(self):
        with pytest.raises(Exception):
            SitePolicy({"x": "FLOAT_TO_FP8"})

    def test_active_stack(self):
        p1 = SitePolicy({"a": "FLOAT_TO_BF16"})
        p2 = SitePolicy({"a": "FLOAT_TO_TF32"})
        assert active_policy() is None
        with p1.active():
            assert active_policy() is p1
            with p2.active():
                assert active_policy() is p2
            assert active_policy() is p1
        assert active_policy() is None

    def test_repr(self):
        p = SitePolicy({"nlp_prop": "FLOAT_TO_BF16"}, default="STANDARD")
        assert "nlp_prop=FLOAT_TO_BF16" in repr(p)


class TestPolicyDispatch:
    def test_site_specific_modes_applied(self, ab):
        a, b = ab
        policy = SitePolicy(
            {"nlp_prop": "FLOAT_TO_BF16", "remap_occ": "STANDARD"},
        )
        with policy.active(), mkl_verbose() as log:
            with call_site("nlp_prop"):
                out_nlp = gemm(a, b)
            with call_site("remap_occ"):
                out_remap = gemm(a, b)
        assert log[0].mode is ComputeMode.FLOAT_TO_BF16
        assert log[1].mode is ComputeMode.STANDARD
        np.testing.assert_array_equal(out_nlp, gemm(a, b, mode="FLOAT_TO_BF16"))
        np.testing.assert_array_equal(out_remap, gemm(a, b, mode="STANDARD"))

    def test_default_covers_unlisted_sites(self, ab):
        a, b = ab
        policy = SitePolicy({}, default="FLOAT_TO_TF32")
        with policy.active(), mkl_verbose() as log:
            with call_site("calc_energy"):
                gemm(a, b)
        assert log[0].mode is ComputeMode.FLOAT_TO_TF32

    def test_explicit_mode_beats_policy(self, ab):
        a, b = ab
        policy = SitePolicy({"s": "FLOAT_TO_BF16"})
        with policy.active(), mkl_verbose() as log:
            with call_site("s"):
                out = gemm(a, b, mode="FLOAT_TO_TF32")
        assert log[0].mode is ComputeMode.FLOAT_TO_TF32
        np.testing.assert_array_equal(out, gemm(a, b, mode="FLOAT_TO_TF32"))

    def test_policy_beats_ambient_context(self, ab):
        a, b = ab
        policy = SitePolicy({"s": "FLOAT_TO_BF16"})
        with compute_mode("FLOAT_TO_TF32"), policy.active(), mkl_verbose() as log:
            with call_site("s"):
                gemm(a, b)
            with call_site("unlisted"):
                gemm(a, b)
        assert log[0].mode is ComputeMode.FLOAT_TO_BF16
        # No policy opinion -> ambient context applies.
        assert log[1].mode is ComputeMode.FLOAT_TO_TF32

    def test_mixed_precision_simulation_runs(self):
        """The future-work experiment: different modes per LFD function."""
        from repro.dcmesh.simulation import Simulation, SimulationConfig

        cfg = SimulationConfig.small_test(
            mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=6, nscf=6
        )
        sim = Simulation(cfg)
        sim.setup()
        policy = SitePolicy(
            {"nlp_prop": "FLOAT_TO_BF16X3", "calc_energy": "FLOAT_TO_BF16",
             "remap_occ": "FLOAT_TO_BF16"},
        )
        with policy.active(), mkl_verbose() as log:
            result = sim.run()
        by_site = {r.site: r.mode for r in log}
        assert by_site["nlp_prop"] is ComputeMode.FLOAT_TO_BF16X3
        assert by_site["calc_energy"] is ComputeMode.FLOAT_TO_BF16
        assert len(result.records) == 7


class TestAdaptiveSitePolicy:
    def test_set_mode_publishes_fresh_mapping(self):
        policy = AdaptiveSitePolicy({"s": "FLOAT_TO_BF16"})
        before = policy.snapshot()
        policy.set_mode("s", "FLOAT_TO_BF16X2")
        assert policy.mode_for("s") is ComputeMode.FLOAT_TO_BF16X2
        # The snapshot taken earlier is unaffected: mutation replaces
        # the dict, it never edits in place.
        assert before["s"] is ComputeMode.FLOAT_TO_BF16

    def test_set_default_covers_unmapped_sites(self):
        policy = AdaptiveSitePolicy({"s": "FLOAT_TO_BF16"})
        assert policy.mode_for("other") is None
        policy.set_default("STANDARD")
        assert policy.mode_for("other") is ComputeMode.STANDARD
        policy.set_default(None)
        assert policy.mode_for("other") is None

    def test_midstream_switch_changes_dispatch(self, ab):
        a, b = ab
        policy = AdaptiveSitePolicy({"s": "FLOAT_TO_BF16"})
        with policy.active(), mkl_verbose() as log:
            with call_site("s"):
                gemm(a, b)
            policy.set_mode("s", "FLOAT_TO_BF16X3")
            with call_site("s"):
                gemm(a, b)
        assert [r.mode for r in log] == [
            ComputeMode.FLOAT_TO_BF16,
            ComputeMode.FLOAT_TO_BF16X3,
        ]

    def test_repr_marks_adaptive(self):
        assert repr(AdaptiveSitePolicy({})).startswith("Adaptive")
