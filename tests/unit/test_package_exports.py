"""Export-integrity tests: every name in every ``__all__`` resolves.

Catches export rot — a renamed function whose ``__all__`` entry or
``__init__`` re-export went stale.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.blas",
    "repro.gpu",
    "repro.dcmesh",
    "repro.dcmesh.io",
    "repro.core",
    "repro.profiling",
    "repro.qmc",
    "repro.experiments",
]

MODULES = [
    "repro.types",
    "repro.blas.rounding",
    "repro.blas.modes",
    "repro.blas.gemm",
    "repro.blas.batch",
    "repro.blas.split",
    "repro.blas.complex3m",
    "repro.blas.level1",
    "repro.blas.verbose",
    "repro.blas.env",
    "repro.blas.policy",
    "repro.gpu.specs",
    "repro.gpu.roofline",
    "repro.gpu.gemm_model",
    "repro.gpu.timeline",
    "repro.gpu.executor",
    "repro.gpu.multistack",
    "repro.gpu.tracefile",
    "repro.gpu.counters",
    "repro.dcmesh.diagnostics",
    "repro.dcmesh.constants",
    "repro.dcmesh.mesh",
    "repro.dcmesh.material",
    "repro.dcmesh.projectors",
    "repro.dcmesh.hamiltonian",
    "repro.dcmesh.wavefunction",
    "repro.dcmesh.laser",
    "repro.dcmesh.nlp",
    "repro.dcmesh.energy",
    "repro.dcmesh.occupation",
    "repro.dcmesh.current",
    "repro.dcmesh.scf",
    "repro.dcmesh.ions",
    "repro.dcmesh.shadow",
    "repro.dcmesh.propagate",
    "repro.dcmesh.simulation",
    "repro.dcmesh.observables",
    "repro.dcmesh.maxwell",
    "repro.dcmesh.hopping",
    "repro.dcmesh.spectra",
    "repro.dcmesh.domains",
    "repro.dcmesh.stencil",
    "repro.dcmesh.cli",
    "repro.dcmesh.io.checkpoint",
    "repro.core.theoretical",
    "repro.core.schedule",
    "repro.core.deviation",
    "repro.core.study",
    "repro.core.perfstudy",
    "repro.core.blas_sweep",
    "repro.core.error_model",
    "repro.core.error_budget",
    "repro.core.ablation",
    "repro.core.convergence",
    "repro.core.plots",
    "repro.core.report",
    "repro.profiling.unitrace",
    "repro.profiling.mklverbose",
    "repro.profiling.roofline_report",
    "repro.qmc.lattice",
    "repro.qmc.projection",
    "repro.qmc.study",
    "repro.experiments.registry",
    "repro.experiments.runner",
    "repro.experiments.report",
    "repro.experiments.claims",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for entry in exported:
        assert hasattr(module, entry) or entry in getattr(
            module, "_SUBPACKAGES", ()
        ), f"{name}.__all__ lists missing name {entry!r}"


def test_every_public_module_has_docstring():
    for name in PACKAGES + MODULES:
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip(), name
