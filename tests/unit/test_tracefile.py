"""Unit tests: Chrome-trace export."""

import json

import pytest

from repro.gpu.timeline import Timeline
from repro.gpu.tracefile import timeline_to_trace_events, write_chrome_trace


@pytest.fixture()
def timeline():
    tl = Timeline()
    tl.append("cgemm", 1e-3, kind="blas", site="nlp_prop")
    tl.append("fft_forward", 2e-3, kind="app", site="lfd_step")
    tl.append("psi_h2d", 5e-4, kind="copy")
    return tl


class TestTraceEvents:
    def test_event_fields(self, timeline):
        events = timeline_to_trace_events(timeline)
        assert len(events) == 3
        first = events[0]
        assert first["name"] == "cgemm"
        assert first["ph"] == "X"
        assert first["ts"] == 0.0
        assert first["dur"] == pytest.approx(1000.0)  # us
        assert first["args"]["site"] == "nlp_prop"

    def test_sequential_timestamps(self, timeline):
        events = timeline_to_trace_events(timeline)
        assert events[1]["ts"] == pytest.approx(1000.0)
        assert events[2]["ts"] == pytest.approx(3000.0)

    def test_kind_lanes_distinct(self, timeline):
        events = timeline_to_trace_events(timeline)
        tids = {e["cat"]: e["tid"] for e in events}
        assert len(set(tids.values())) == 3

    def test_no_site_no_args(self, timeline):
        events = timeline_to_trace_events(timeline)
        assert events[2]["args"] == {}


class TestWriteFile:
    def test_valid_json_roundtrip(self, timeline, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, timeline)
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == 3
        assert payload["displayTimeUnit"] == "ms"

    def test_creates_parent_dirs(self, timeline, tmp_path):
        path = tmp_path / "deep" / "trace.json"
        write_chrome_trace(path, timeline)
        assert path.exists()

    def test_from_simulated_device(self, tmp_path):
        from repro.blas.modes import ComputeMode
        from repro.gpu import Device

        dev = Device()
        dev.record_gemm("cgemm", 128, 128, 1000, ComputeMode.STANDARD, site="remap_occ")
        dev.record_stream("fft", 1e6)
        path = tmp_path / "dev.json"
        write_chrome_trace(path, dev.timeline)
        payload = json.loads(path.read_text())
        names = [e["name"] for e in payload["traceEvents"]]
        assert names == ["cgemm", "fft"]
