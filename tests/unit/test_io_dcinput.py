"""Unit tests: PTOquick.dc parsing."""

import pytest

from repro.dcmesh.io.dcinput import parse_dc_file, write_dc_file
from repro.dcmesh.material import PTO_SPECIES


def _write(tmp_path, text):
    p = tmp_path / "PTOquick.dc"
    p.write_text(text)
    return p


VALID = """
# comment line
ncells    2 2 2
lattice   7.5
mesh      64 64 64   # trailing comment
norb      256
species   Pb valence=14 sigma=1.1 nl_strength=0.9 nl_sigma=1.3 mass=207.2
"""


class TestParse:
    def test_valid_file(self, tmp_path):
        dc = parse_dc_file(_write(tmp_path, VALID))
        assert dc["ncells"] == (2, 2, 2)
        assert dc["lattice"] == 7.5
        assert dc["mesh"] == (64, 64, 64)
        assert dc["norb"] == 256
        assert dc["species"]["Pb"].valence == 14

    def test_defaults_species_when_absent(self, tmp_path):
        text = "ncells 1 1 1\nlattice 7.5\nmesh 12 12 12\nnorb 24\n"
        dc = parse_dc_file(_write(tmp_path, text))
        assert dc["species"] == dict(PTO_SPECIES)

    def test_missing_required_keyword(self, tmp_path):
        with pytest.raises(ValueError, match="missing required keyword 'norb'"):
            parse_dc_file(_write(tmp_path, "ncells 1 1 1\nlattice 7.5\nmesh 8 8 8\n"))

    def test_unknown_keyword_with_line_number(self, tmp_path):
        with pytest.raises(ValueError, match=":2:"):
            parse_dc_file(_write(tmp_path, "ncells 1 1 1\nbogus 3\n"))

    def test_malformed_species(self, tmp_path):
        text = VALID + "species Ti valence=12\n"
        with pytest.raises(ValueError, match="missing attributes"):
            parse_dc_file(_write(tmp_path, text))

    def test_bad_ncells_count(self, tmp_path):
        with pytest.raises(ValueError, match="three integers"):
            parse_dc_file(_write(tmp_path, "ncells 1 1\nlattice 7.5\nmesh 8 8 8\nnorb 4\n"))


class TestRoundTrip:
    def test_write_then_parse(self, tmp_path):
        p = tmp_path / "sys.dc"
        write_dc_file(p, ncells=(3, 3, 3), lattice=7.5, mesh=(96, 96, 96), norb=1024)
        dc = parse_dc_file(p)
        assert dc["ncells"] == (3, 3, 3)
        assert dc["mesh"] == (96, 96, 96)
        assert dc["norb"] == 1024
        assert set(dc["species"]) == {"Pb", "Ti", "O"}

    def test_species_roundtrip_exact(self, tmp_path):
        p = tmp_path / "sys.dc"
        write_dc_file(p, ncells=(1, 1, 1), lattice=6.0, mesh=(8, 8, 8), norb=20)
        dc = parse_dc_file(p)
        for sym, spec in PTO_SPECIES.items():
            assert dc["species"][sym] == spec
