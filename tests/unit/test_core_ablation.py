"""Unit tests: the ablation studies."""

import numpy as np
import pytest

from repro.core.ablation import (
    accumulation_precision_ablation,
    complex_3m_cancellation,
    device_sensitivity,
    scf_cadence_ablation,
    split_terms_pareto,
)


class TestSplitTermsPareto:
    def test_accuracy_cost_tradeoff(self):
        rows = split_terms_pareto()
        errors = [r[1] for r in rows]
        times = [r[2] for r in rows]
        # More terms: strictly more accurate, strictly slower.
        assert errors[0] > errors[1] > errors[2]
        assert times[0] < times[1] < times[2]

    def test_modes_in_order(self):
        names = [r[0] for r in split_terms_pareto()]
        assert names == ["FLOAT_TO_BF16", "FLOAT_TO_BF16X2", "FLOAT_TO_BF16X3"]


class TestAccumulationAblation:
    def test_fp32_accumulation_is_size_independent(self):
        rows = accumulation_precision_ablation()
        good = [r[1] for r in rows]
        # No growth with k.
        assert good[-1] <= 2 * good[0]

    def test_bf16_accumulation_grows_with_k(self):
        rows = accumulation_precision_ablation()
        bad = [r[2] for r in rows]
        assert bad[-1] > 3 * bad[0]

    def test_bf16_accumulation_always_worse(self):
        for k, good, bad in accumulation_precision_ablation():
            assert bad > good, k


class TestCancellationAblation:
    def test_3m_worse_under_cancellation(self):
        out = complex_3m_cancellation()
        assert out["gemm_3m"] > out["gemm_4m"]

    def test_errors_positive(self):
        out = complex_3m_cancellation()
        assert out["gemm_3m"] > 0 and out["gemm_4m"] > 0


class TestDeviceSensitivity:
    def test_bandwidth_moves_the_anchor(self):
        rows = device_sensitivity(bandwidth_efficiencies=(0.5, 0.9),
                                  bf16_caps=(0.45,))
        speeds = {bw: s for bw, cap, s in rows}
        # The anchor call is memory-bound for BF16: more bandwidth, more
        # speedup.
        assert speeds[0.9] > speeds[0.5]

    def test_power_cap_barely_matters_when_memory_bound(self):
        rows = device_sensitivity(bandwidth_efficiencies=(0.7,),
                                  bf16_caps=(0.45, 0.65))
        speeds = [s for _, _, s in rows]
        assert speeds[1] == pytest.approx(speeds[0], rel=0.05)

    def test_grid_complete(self):
        rows = device_sensitivity()
        assert len(rows) == 9


@pytest.mark.slow
class TestScfCadence:
    def test_no_resets_accumulate_more_gram_error(self):
        # Frequent FP64 resets bound the truncation buildup: the
        # paper's central stability argument.  Compare the extremes so
        # the signal clears the FP32 storage-noise floor.
        rows = scf_cadence_ablation(cadences=(10, 120), n_steps=120)
        gram = {nscf: g for nscf, g, _ in rows}
        assert gram[120] > 1.5 * gram[10]

    def test_rows_cover_requested_cadences(self):
        rows = scf_cadence_ablation(cadences=(20, 40), n_steps=40)
        assert [r[0] for r in rows] == [20, 40]
        assert all(np.isfinite(r[1]) and np.isfinite(r[2]) for r in rows)
