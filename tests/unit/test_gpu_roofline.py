"""Unit tests: generic roofline timing."""

import pytest

from repro.gpu.roofline import roofline_time


class TestRoofline:
    def test_compute_bound(self):
        p = roofline_time(flops=1e12, bytes_moved=1e6, sustained_flops=1e12, bandwidth=1e12)
        assert p.bound == "compute"
        assert p.seconds == pytest.approx(1.0)

    def test_memory_bound(self):
        p = roofline_time(flops=1e6, bytes_moved=1e12, sustained_flops=1e12, bandwidth=1e12)
        assert p.bound == "memory"
        assert p.seconds == pytest.approx(1.0)

    def test_launch_bound(self):
        p = roofline_time(flops=1, bytes_moved=1, sustained_flops=1e12, bandwidth=1e12,
                          overhead=1e-5)
        assert p.bound == "launch"
        assert p.seconds == pytest.approx(1e-5, rel=1e-3)

    def test_overhead_added_not_maxed(self):
        p = roofline_time(flops=1e12, bytes_moved=0, sustained_flops=1e12,
                          bandwidth=1e12, overhead=0.5)
        assert p.seconds == pytest.approx(1.5)

    def test_arithmetic_intensity(self):
        p = roofline_time(flops=100.0, bytes_moved=25.0, sustained_flops=1e12, bandwidth=1e12)
        assert p.arithmetic_intensity == pytest.approx(4.0)

    def test_zero_bytes_infinite_intensity(self):
        p = roofline_time(flops=100.0, bytes_moved=0.0, sustained_flops=1e12, bandwidth=1e12)
        assert p.arithmetic_intensity == float("inf")

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            roofline_time(-1, 0, 1e12, 1e12)
        with pytest.raises(ValueError):
            roofline_time(0, -1, 1e12, 1e12)

    def test_nonpositive_rates_rejected(self):
        with pytest.raises(ValueError):
            roofline_time(1, 1, 0, 1e12)
        with pytest.raises(ValueError):
            roofline_time(1, 1, 1e12, 0)
