"""Unit tests: roofline analysis report."""

import pytest

from repro.blas.modes import ComputeMode
from repro.gpu.specs import MAX_1550_STACK
from repro.profiling.roofline_report import (
    render_roofline,
    ridge_point,
    roofline_entries,
)

CALLS = [
    ("remap_big", "cgemm", 128, 3968, 262144),
    ("nlp_S", "cgemm", 1024, 1024, 884736),
]


class TestRidgePoint:
    def test_bf16_ridge_far_right_of_fp32(self):
        r_fp32 = ridge_point(MAX_1550_STACK, ComputeMode.STANDARD)
        r_bf16 = ridge_point(MAX_1550_STACK, ComputeMode.FLOAT_TO_BF16)
        # Faster math needs much more intensity to leave the memory roof.
        assert r_bf16 > 5 * r_fp32

    def test_positive(self):
        for mode in ComputeMode:
            assert ridge_point(MAX_1550_STACK, mode) > 0


class TestEntries:
    def test_paper_section_5c_story(self):
        entries = roofline_entries(CALLS)
        by_key = {(e.label, e.mode): e for e in entries}
        # The m=128 remap call: compute-bound at FP32, memory-bound at
        # BF16 — exactly the paper's explanation of the 3.91x cap.
        assert by_key[("remap_big", ComputeMode.STANDARD)].bound == "compute"
        assert by_key[("remap_big", ComputeMode.FLOAT_TO_BF16)].bound == "memory"
        # The fat nlp GEMM stays compute-bound in both.
        assert by_key[("nlp_S", ComputeMode.FLOAT_TO_BF16)].bound == "compute"

    def test_achieved_flops_below_peak(self):
        for e in roofline_entries(CALLS):
            peak = MAX_1550_STACK.peak_ops[
                e.mode.component_precision
                if e.mode.is_low_precision
                else __import__("repro.types", fromlist=["Precision"]).Precision.FP32
            ]
            assert e.achieved_flops < peak

    def test_intensity_positive(self):
        assert all(e.intensity > 0 for e in roofline_entries(CALLS))


class TestRender:
    def test_render_contains_entries_and_roof(self):
        text = render_roofline(roofline_entries(CALLS))
        assert "/" in text            # memory roof diagonal
        assert "[0]" in text and "[3]" in text
        assert "remap_big" in text
        assert "TFLOP/s" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no entries"):
            render_roofline([])
