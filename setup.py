"""Setuptools shim.

The modern PEP 660 editable-install path needs the ``wheel`` package;
this shim keeps ``pip install -e .`` working in offline environments
that only ship setuptools.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
