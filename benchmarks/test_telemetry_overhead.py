"""Bench: cost of the telemetry/drift guards on the disabled hot path.

Every GEMM on the LFD hot path evaluates the disabled-path guards —
``telemetry.registry.active()`` (plus the ``observing()`` wrapper that
adds the MKL_VERBOSE env probe) and, per QD step, the drift monitor's
``active_drift_monitor()`` — even when all instrumentation is off.
The observability contract is that this costs **one global read with
zero allocations** per guard, i.e. well under 1 % of the cheapest real
BLAS call it protects.

This bench proves the contract with numbers instead of prose:

* time the guard combination a single disabled-path GEMM executes,
  isolated in a tight loop;
* time the prepared split-GEMM call from
  ``benchmarks/test_split_gemm_perf.py`` (the fastest hot-path call
  the guards ever amortise against), telemetry disabled;
* assert guard-time / call-time < 1 %.

An enabled-path measurement is recorded for context (it is *expected*
to cost more — that path does real work) but not asserted on.

Results land in ``BENCH_telemetry_overhead.json`` at the repo root;
CI uploads it as a non-blocking artifact (``make bench-telemetry``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.blas.gemm import gemm
from repro.blas.plan import plan_cache_clear, prepare, release
from repro.blas.verbose import observing
from repro.blas.workspace import clear_workspace
from repro.telemetry.drift import active_drift_monitor
from repro.telemetry.registry import active, disable, enable

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_telemetry_overhead.json"

#: Same split-dominated shape as the split-GEMM bench: the guards must
#: be invisible against exactly this call.
M, N, K = 16, 16, 65536
MODE = "FLOAT_TO_BF16X3"
GUARD_LOOPS = 200_000
REPEATS = 7

#: Acceptance: guards < 1 % of one prepared split-GEMM call.
MAX_OVERHEAD_FRACTION = 0.01


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _guard_seconds_per_call() -> float:
    """Per-iteration cost of the guards one disabled GEMM evaluates."""
    assert active() is None, "telemetry must be off for the guard measurement"
    # Warm thread-locals / env caches out of the measured region.
    observing()
    active_drift_monitor()
    loops = range(GUARD_LOOPS)

    def run():
        for _ in loops:
            active()
            observing()
            active_drift_monitor()

    return _best_of(run) / GUARD_LOOPS


@pytest.fixture(scope="module")
def results():
    prev = disable()
    rng = np.random.default_rng(42)
    a = (rng.standard_normal((M, K)) + 1j * rng.standard_normal((M, K))).astype(
        np.complex64
    )
    b = (rng.standard_normal((K, N)) + 1j * rng.standard_normal((K, N))).astype(
        np.complex64
    )
    try:
        guard = _guard_seconds_per_call()
        a_plan, b_plan = prepare(a), prepare(b)
        gemm(a_plan, b_plan, mode=MODE)  # build cached forms once
        disabled = _best_of(lambda: gemm(a_plan, b_plan, mode=MODE))
        enable()
        try:
            enabled = _best_of(lambda: gemm(a_plan, b_plan, mode=MODE))
        finally:
            disable()
    finally:
        release(a)
        release(b)
        plan_cache_clear()
        clear_workspace()
        if prev is not None:
            enable(prev)
    row = {
        "benchmark": "telemetry_guard_overhead",
        "shape": {"m": M, "n": N, "k": K},
        "mode": MODE,
        "guard_loops": GUARD_LOOPS,
        "repeats": REPEATS,
        "guard_seconds_per_call": guard,
        "disabled_gemm_seconds": disabled,
        "enabled_gemm_seconds": enabled,
        "overhead_fraction": guard / disabled,
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
    }
    RESULT_PATH.write_text(json.dumps(row, indent=2) + "\n")
    return row


def test_guard_overhead_below_one_percent(results):
    assert results["overhead_fraction"] < MAX_OVERHEAD_FRACTION, results


def test_guards_are_microseconds_not_milliseconds(results):
    # Belt and braces: two global reads plus one os.environ probe (the
    # MKL_VERBOSE check dominates) — single-digit microseconds on any
    # plausible runner, never enough to register against a GEMM.
    assert results["guard_seconds_per_call"] < 1e-5, results


def test_json_artifact_written(results):
    data = json.loads(RESULT_PATH.read_text())
    assert data["benchmark"] == "telemetry_guard_overhead"
    assert 0 < data["overhead_fraction"] < 1
