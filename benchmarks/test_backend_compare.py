"""Bench: the same prepared split-GEMM workload on every available backend.

One row per (backend, mode): repeated real ``sgemm`` with prepared
frozen operands — the LFD hot-path scenario — timed on the NumPy
reference backend and on every torch backend that imports here
(CPU everywhere; CUDA when a device is present).  Per-row we record
wall seconds, the speedup relative to the NumPy row, and the maximum
elementwise deviation from the NumPy result, so the JSON doubles as a
tolerance-contract audit trail (docs/BACKENDS.md).

Backends that are unavailable are *reported* in the JSON (name ->
reason) rather than silently dropped, so a CI artifact from a
torch-less runner still says why it only has one backend column.

Results land in ``BENCH_backends.json`` at the repo root; run via
``make bench-backends``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.blas.backend import available_backends, get_backend, use_backend
from repro.blas.gemm import gemm
from repro.blas.plan import plan_cache_clear, prepare, release
from repro.blas.workspace import clear_workspace

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_backends.json"

#: Compute-dominated shape: big enough that the O(n^3) products (the
#: part a backend actually executes) dwarf the per-call dispatch.
M, N, K = 256, 256, 4096
REPEATS = 5

MODES = [
    "STANDARD",
    "FLOAT_TO_BF16",
    "FLOAT_TO_BF16X2",
    "FLOAT_TO_BF16X3",
    "FLOAT_TO_TF32",
]


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _usable_backends():
    """Backend names to bench: numpy always, torch legs when importable."""
    probe = available_backends()
    names = ["numpy"]
    # "torch" resolves to the best available device; the explicit legs
    # would duplicate it, so bench the resolved one only.
    if probe.get("torch") == "ok":
        names.append(get_backend("torch").cache_key)
    return names, probe


@pytest.fixture(scope="module")
def results():
    rng = np.random.default_rng(7)
    a = rng.standard_normal((M, K)).astype(np.float32)
    b = rng.standard_normal((K, N)).astype(np.float32)
    names, probe = _usable_backends()

    rows = []
    reference = {}
    for name in names:
        be = get_backend(name)
        a_plan, b_plan = prepare(a), prepare(b)
        try:
            with use_backend(be):
                for mode in MODES:
                    gemm(a_plan, b_plan, mode=mode)  # warm: stage + cache
                    seconds = _best_of(
                        lambda m=mode: gemm(a_plan, b_plan, mode=m)
                    )
                    out = gemm(a_plan, b_plan, mode=mode)
                    if name == "numpy":
                        reference[mode] = out
                    ref = reference[mode]
                    rows.append(
                        {
                            "backend": be.cache_key,
                            "mode": mode,
                            "seconds": seconds,
                            "max_abs_dev_vs_numpy": float(
                                np.max(np.abs(out - ref))
                            ),
                            "bitwise_vs_numpy": bool(np.array_equal(out, ref)),
                        }
                    )
        finally:
            release(a_plan)
            release(b_plan)
            plan_cache_clear()
            clear_workspace()

    numpy_seconds = {
        row["mode"]: row["seconds"] for row in rows if row["backend"] == "numpy"
    }
    for row in rows:
        row["speedup_vs_numpy"] = numpy_seconds[row["mode"]] / row["seconds"]

    RESULT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "backend_compare",
                "shape": {"m": M, "n": N, "k": K},
                "repeats": REPEATS,
                "backends_probed": probe,
                "results": rows,
            },
            indent=2,
        )
        + "\n"
    )
    return rows


def test_numpy_rows_present_and_exact(results):
    numpy_rows = [r for r in results if r["backend"] == "numpy"]
    assert {r["mode"] for r in numpy_rows} == set(MODES)
    for row in numpy_rows:
        assert row["bitwise_vs_numpy"]
        assert row["speedup_vs_numpy"] == 1.0


def test_offload_rows_meet_tolerance_contract(results):
    # ieee_fp32_accumulation backends may reassociate the FP32 sums;
    # the documented bound is a few ULPs of the accumulated magnitude.
    for row in results:
        if row["backend"] == "numpy":
            continue
        assert np.isfinite(row["max_abs_dev_vs_numpy"])
        assert row["max_abs_dev_vs_numpy"] <= 1e-3 * np.sqrt(K), row


def test_json_artifact_written(results):
    data = json.loads(RESULT_PATH.read_text())
    assert data["benchmark"] == "backend_compare"
    assert "numpy" in data["backends_probed"]
    assert len(data["results"]) == len(results)
