"""Bench: extension features (DC solver, spectra, mixed policy, multistack).

These time the framework pieces beyond the paper's study and assert
their headline behaviours, so the extensions stay regression-guarded
alongside the paper artifacts.
"""

import numpy as np
import pytest

from repro.blas.modes import ComputeMode
from repro.blas.policy import SitePolicy
from repro.dcmesh.domains import DCSolver
from repro.dcmesh.material import build_pto_supercell
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.scf import SCFParams
from repro.dcmesh.spectra import power_spectrum
from repro.gpu.multistack import MultiStackModel


def test_divide_and_conquer_solve(benchmark):
    material = build_pto_supercell((1, 1, 2), lattice=6.0)
    mesh = Mesh((8, 8, 16), material.box)
    dc = DCSolver(material, mesh, (1, 1, 2), n_domains=2, buffer_layers=0,
                  scf_params=SCFParams(max_iter=50, tol=1e-6))
    result = benchmark.pedantic(dc.solve, rounds=1, iterations=1)
    assert result.n_electrons * mesh.dv == pytest.approx(
        material.n_electrons, rel=1e-9
    )


def test_power_spectrum(benchmark, bench_sim):
    run = bench_sim.run(mode=ComputeMode.STANDARD)
    spec = benchmark(power_spectrum, run.records)
    assert np.isfinite(spec.values).all()


def test_mixed_policy_run(benchmark, bench_sim):
    policy = SitePolicy({"nlp_prop": "FLOAT_TO_BF16X3"},
                        default="FLOAT_TO_BF16")

    def run():
        with policy.active():
            return bench_sim.run(n_steps=10)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.records) == 11


def test_multistack_curve(benchmark):
    model = MultiStackModel()
    curve = benchmark(
        model.scaling_curve, 96**3, 1024, 432, ComputeMode.FLOAT_TO_BF16
    )
    assert [p.n_stacks for p in curve] == [1, 2, 4, 8]
    assert curve[-1].speedup > 1
