"""Bench: Table II — compute-mode table generation."""

import pytest

from repro.experiments.table2 import PAPER_ROWS, run


def test_table2(benchmark):
    out = benchmark(run)
    ours = {r[0]: r[2] for r in out["rows"]}
    for name, expected in PAPER_ROWS:
        assert ours[name] == pytest.approx(expected, rel=0.02), name
