"""Bench: Table III — simulation-parameter table generation."""

from repro.experiments.table3 import PAPER_ROWS, run


def test_table3(benchmark):
    out = benchmark(run)
    assert out["rows"] == PAPER_ROWS
    assert out["derived_from_config"] == PAPER_ROWS
