"""Bench: Fig. 2 — log10 deviation of current density.

Asserts the paper's claim that the modes "track closely with one
another and do not show any signs of divergence" over the run.
"""

import numpy as np

from repro.core.study import PrecisionStudy
from repro.dcmesh.simulation import SimulationConfig


def _run_study():
    cfg = SimulationConfig.small_test(
        mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=40, nscf=20
    )
    return PrecisionStudy(cfg, observables=("javg",)).run()


def test_figure2(benchmark):
    result = benchmark.pedantic(_run_study, rounds=1, iterations=1)
    for s in result.deviations["javg"]:
        logs = s.log10(floor=1e-30)[1:]
        half = len(logs) // 2
        trend = float(logs[half:].mean() - logs[:half].mean())
        # Bounded drift on the log scale: no divergence.
        assert trend < 3.0, s.mode
        assert np.isfinite(logs).all()
