"""Bench: the QMC portability workload.

Times the GEMM-dominated projection loop and asserts the study's
transferred conclusions (accuracy ladder + exactness of the target).
"""


from repro.blas.modes import ComputeMode
from repro.qmc import ProjectionQMC, qmc_mode_study, tight_binding_hamiltonian


def test_qmc_projection_loop(benchmark):
    h = tight_binding_hamiltonian((6, 6, 6), disorder=0.5, seed=0)
    qmc = ProjectionQMC(h, n_particles=16, tau=0.05)
    res = benchmark.pedantic(
        qmc.run, kwargs=dict(n_steps=100, mode="FLOAT_TO_BF16"),
        rounds=1, iterations=1,
    )
    assert res.mode is ComputeMode.FLOAT_TO_BF16
    assert res.error < 1.0


def test_qmc_mode_study(benchmark):
    rows = benchmark.pedantic(
        qmc_mode_study, kwargs=dict(n_steps=200, seed=0), rounds=1, iterations=1
    )
    dev = {r.mode: r.deviation_from_fp32 for r in rows}
    assert (dev[ComputeMode.FLOAT_TO_BF16]
            > dev[ComputeMode.FLOAT_TO_TF32]
            > dev[ComputeMode.FLOAT_TO_BF16X3])
