"""Bench: Table I — theoretical peak table generation."""

from repro.experiments.table1 import PAPER_ROWS, run


def test_table1(benchmark):
    out = benchmark(run)
    assert out["rows"] == PAPER_ROWS
