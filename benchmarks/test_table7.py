"""Bench: Table VII — remap_occ GEMM shapes vs N_orb."""

from repro.experiments.table7 import PAPER_ROWS, run


def test_table7(benchmark):
    out = benchmark(run)
    for ours, paper in zip(out["rows"], PAPER_ROWS):
        # m pinned at 128 and k at 64^3; n within the paper's own
        # 3978-vs-3968 quirk.
        assert ours[:3] == paper[:3]
        assert abs(ours[3] - paper[3]) <= 10
        assert ours[4] == paper[4]
