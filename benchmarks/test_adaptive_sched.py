"""Bench: the adaptive scheduler's speed-at-fixed-accuracy claim.

The closed-loop scheduler exists to buy wall-clock without giving up
the accuracy contract.  This bench pins both halves of that claim on
the paper's small lattice:

* **speed** — one adaptive run (BF16 start rung, default ladder) vs
  the static modes at the accuracy extremes: ``STANDARD`` (FP32
  everywhere) and ``FLOAT_TO_BF16X3`` (the most expensive emulated
  split).  Both the adaptive and BF16X3 runs are judged against the
  *same* fixed error budget, so the speedup is at equal contract, not
  equal luck.  Gate: adaptive at least 1.5x faster than static BF16X3
  in measured wall-clock.
* **accuracy** — the adaptive run must end inside the budget envelope
  (final-step utilization <= 1) with zero unhandled breaches: every
  alert was answered by an escalation, none hit the ladder's top.
* **overhead** — when no scheduler is installed, the only trace it
  leaves on the hot path is the ``active_policy()`` read each GEMM
  already performs.  Following ``test_telemetry_overhead.py``: time
  that read in isolation and assert it costs < 1 % of the cheapest
  prepared split-GEMM it could ever amortise against.

Results land in ``BENCH_adaptive.json`` at the repo root; CI uploads
it as a non-blocking artifact (``make bench-adaptive``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.blas.gemm import gemm
from repro.blas.plan import plan_cache_clear, prepare, release
from repro.blas.policy import active_policy
from repro.blas.workspace import clear_workspace
from repro.core.scheduler import AdaptiveScheduler
from repro.dcmesh.simulation import Simulation, SimulationConfig
from repro.gpu import Device
from repro.telemetry.drift import DriftMonitor, ErrorBudget, ReferenceTrajectory
from repro.telemetry.registry import disable, enable

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_adaptive.json"

#: Gate: adaptive wall-clock vs static BF16X3 at the same contract.
MIN_SPEEDUP_VS_BF16X3 = 1.5
#: Gate: disabled-path policy read vs one prepared split-GEMM call.
MAX_OVERHEAD_FRACTION = 0.01

GUARD_LOOPS = 200_000
OBSERVABLES = ("nexc", "javg", "ekin")

#: Long enough for the controller to settle (escalations happen in the
#: first SCF blocks) and for the per-step split-count difference to
#: dominate the timing; small enough for a CI runner.
N_STEPS = 60
NSCF = 20


def _final_rel_error(result, reference) -> float:
    worst = 0.0
    for obs in OBSERVABLES:
        ref = float(reference.column(obs)[-1])
        got = float(result.column(obs)[-1])
        denom = max(abs(ref), np.finfo(np.float64).tiny)
        worst = max(worst, abs(got - ref) / denom)
    return worst


def _timed_run(sim, **kwargs):
    sim.device = Device()
    sim._device_allocated = False
    t0 = time.perf_counter()
    result = sim.run(**kwargs)
    return result, time.perf_counter() - t0


def _policy_read_seconds_per_call() -> float:
    """Per-call cost of the one read a disabled scheduler leaves behind."""
    active_policy()  # warm the module/global lookup
    loops = range(GUARD_LOOPS)
    t0 = time.perf_counter()
    for _ in loops:
        active_policy()
    return (time.perf_counter() - t0) / GUARD_LOOPS


def _split_gemm_seconds() -> float:
    """One prepared BF16X3 split-GEMM, the yardstick for overhead."""
    rng = np.random.default_rng(42)
    m, n, k = 16, 16, 65536
    a = (rng.standard_normal((m, k)) + 1j * rng.standard_normal((m, k))).astype(
        np.complex64
    )
    b = (rng.standard_normal((k, n)) + 1j * rng.standard_normal((k, n))).astype(
        np.complex64
    )
    try:
        a_plan, b_plan = prepare(a), prepare(b)
        gemm(a_plan, b_plan, mode="FLOAT_TO_BF16X3")  # build cached forms
        best = float("inf")
        for _ in range(7):
            t0 = time.perf_counter()
            gemm(a_plan, b_plan, mode="FLOAT_TO_BF16X3")
            best = min(best, time.perf_counter() - t0)
        return best
    finally:
        release(a)
        release(b)
        plan_cache_clear()
        clear_workspace()


@pytest.fixture(scope="module")
def results():
    prev = disable()
    try:
        assert active_policy() is None
        policy_read = _policy_read_seconds_per_call()
        split_gemm = _split_gemm_seconds()

        cfg = SimulationConfig.small_test(n_qd_steps=N_STEPS, nscf=NSCF)
        sim = Simulation(cfg)
        ground = sim.setup()

        # The shared accuracy contract, derived exactly as the driver
        # derives it: the scheduler's budget_mode envelope over ||H_nl||.
        sched = AdaptiveScheduler()
        h_nl = sim._solver.projectors.subspace_matrix(
            ground.orbitals.psi.astype(np.complex128)
        )
        contract = ErrorBudget.for_mode(
            sched.budget_mode,
            cfg.dt,
            float(np.linalg.norm(h_nl)),
            headroom=sched.config.budget_headroom,
        )

        reference, fp32_wall = _timed_run(sim, mode="STANDARD", drift=False)
        ref_traj = ReferenceTrajectory.from_result(reference)

        dm_x3 = DriftMonitor(
            mode="FLOAT_TO_BF16X3", budget=contract, reference=ref_traj
        )
        bf16x3, bf16x3_wall = _timed_run(sim, mode="FLOAT_TO_BF16X3", drift=dm_x3)

        dm_ad = DriftMonitor(budget=contract, reference=ref_traj)
        adaptive, adaptive_wall = _timed_run(sim, adaptive=sched, drift=dm_ad)
        summary = sched.summary()

        def util(dm):
            u = dm.current_utilization()
            return 0.0 if u is None or not np.isfinite(u) else float(u)

        row = {
            "benchmark": "adaptive_scheduler",
            "config": {"n_qd_steps": N_STEPS, "nscf": NSCF,
                       "mesh_shape": list(cfg.mesh_shape), "n_orb": cfg.n_orb},
            "contract": {"budget_mode": sched.budget_mode.env_value,
                         "headroom": sched.config.budget_headroom},
            "wall_seconds": {"STANDARD": fp32_wall,
                             "FLOAT_TO_BF16X3": bf16x3_wall,
                             "ADAPTIVE": adaptive_wall},
            "final_rel_error": {
                "FLOAT_TO_BF16X3": _final_rel_error(bf16x3, reference),
                "ADAPTIVE": _final_rel_error(adaptive, reference),
            },
            "final_utilization": {"FLOAT_TO_BF16X3": util(dm_x3),
                                  "ADAPTIVE": util(dm_ad)},
            "speedup_vs_bf16x3": bf16x3_wall / adaptive_wall,
            "speedup_vs_fp32": fp32_wall / adaptive_wall,
            "min_speedup_vs_bf16x3": MIN_SPEEDUP_VS_BF16X3,
            "scheduler": summary,
            "overhead": {
                "policy_read_seconds_per_call": policy_read,
                "split_gemm_seconds": split_gemm,
                "overhead_fraction": policy_read / split_gemm,
                "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
            },
        }
        RESULT_PATH.write_text(json.dumps(row, indent=2) + "\n")
        return row
    finally:
        if prev is not None:
            enable(prev)


def test_adaptive_beats_static_bf16x3_wall_clock(results):
    assert results["speedup_vs_bf16x3"] >= MIN_SPEEDUP_VS_BF16X3, results


def test_adaptive_holds_the_accuracy_contract(results):
    # Same contract the BF16X3 run is judged by: end inside the
    # envelope, with every breach answered by an escalation.
    assert results["final_utilization"]["ADAPTIVE"] <= 1.0, results
    assert results["scheduler"]["unhandled_breaches"] == 0, results


def test_static_bf16x3_also_in_contract(results):
    # Sanity: the yardstick itself satisfies the contract, so the
    # speedup really is at equal accuracy, not against a broken run.
    assert results["final_utilization"]["FLOAT_TO_BF16X3"] <= 1.0, results


def test_controller_actually_escalated(results):
    assert results["scheduler"]["escalations"] >= 1, results


def test_disabled_overhead_below_one_percent(results):
    assert (
        results["overhead"]["overhead_fraction"] < MAX_OVERHEAD_FRACTION
    ), results


def test_json_artifact_written(results):
    data = json.loads(RESULT_PATH.read_text())
    assert data["benchmark"] == "adaptive_scheduler"
    assert data["speedup_vs_bf16x3"] > 0
