"""Ablation bench: BF16x{1,2,3} accuracy/performance Pareto.

DESIGN.md ablation #2 — the trade-off Table II/Fig. 1 jointly
describe: each extra split term costs component products (slower on
the modelled device) and buys ~8 bits of accuracy.
"""

from repro.core.ablation import split_terms_pareto


def test_split_terms_pareto(benchmark):
    rows = benchmark(split_terms_pareto)
    errors = [r[1] for r in rows]
    times = [r[2] for r in rows]
    assert errors[0] > errors[1] > errors[2]
    assert times[0] < times[1] < times[2]
    # Each term buys roughly two orders of magnitude of accuracy.
    assert errors[0] / errors[1] > 50
    assert errors[1] / errors[2] > 5
