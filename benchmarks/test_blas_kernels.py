"""Bench: software-emulation kernel costs per compute mode.

These time the *emulation* itself (not the modelled device): the
relative wall costs reflect the component-product structure — BF16x3
runs six real products per real GEMM, 3M saves one of four — which is
useful for sizing accuracy studies.
"""

import numpy as np
import pytest

from repro.blas.gemm import cgemm, sgemm
from repro.blas.modes import ComputeMode

MODES = [
    ComputeMode.STANDARD,
    ComputeMode.FLOAT_TO_BF16,
    ComputeMode.FLOAT_TO_BF16X2,
    ComputeMode.FLOAT_TO_BF16X3,
    ComputeMode.FLOAT_TO_TF32,
    ComputeMode.COMPLEX_3M,
]


@pytest.fixture(scope="module")
def real_inputs():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 256)).astype(np.float32)
    b = rng.standard_normal((256, 256)).astype(np.float32)
    return a, b


@pytest.fixture(scope="module")
def complex_inputs():
    rng = np.random.default_rng(1)
    a = (rng.standard_normal((192, 192)) + 1j * rng.standard_normal((192, 192))).astype(np.complex64)
    b = (rng.standard_normal((192, 192)) + 1j * rng.standard_normal((192, 192))).astype(np.complex64)
    return a, b


@pytest.mark.parametrize("mode", MODES, ids=[m.env_value for m in MODES])
def test_sgemm_mode(benchmark, real_inputs, mode):
    a, b = real_inputs
    out = benchmark(sgemm, a, b, mode=mode)
    assert out.shape == (256, 256)
    assert np.isfinite(out).all()


@pytest.mark.parametrize("mode", MODES, ids=[m.env_value for m in MODES])
def test_cgemm_mode(benchmark, complex_inputs, mode):
    a, b = complex_inputs
    out = benchmark(cgemm, a, b, mode=mode)
    assert out.shape == (192, 192)
    assert np.isfinite(out).all()


def test_rounding_kernel(benchmark):
    from repro.blas.rounding import round_fp32_to_bf16

    x = np.random.default_rng(2).standard_normal(2**20).astype(np.float32)
    out = benchmark(round_fp32_to_bf16, x)
    assert out.dtype == np.float32


def test_qd_step_wall_time(benchmark, bench_sim):
    """One full LFD QD step of the scaled system (software)."""
    import numpy as np

    from repro.dcmesh.nlp import NonlocalPropagator
    from repro.dcmesh.propagate import LFDPropagator

    sim = bench_sim
    ground = sim.setup()
    psi0 = ground.orbitals.psi.astype(np.complex64)
    h_nl = sim._solver.projectors.subspace_matrix(ground.orbitals.psi)
    nlp = NonlocalPropagator(psi0, h_nl, sim.config.dt, sim.mesh)
    prop = LFDPropagator(
        sim.mesh, ground.v_eff, nlp, sim.config.laser, sim.config.dt
    )
    psi = psi0.copy()
    out = benchmark(prop.step, psi, 0.0)
    assert out.shape == psi0.shape
