"""Bench: Table VI — max observed vs theoretical BLAS speedup.

Checks the paper's headline anchor (BF16 ~3.91x observed vs 16x
theoretical) and the strict mode ordering.
"""

import pytest

from repro.experiments.table6 import run


def test_table6(benchmark):
    out = benchmark(run)
    rows = {r[0]: (r[1], r[2]) for r in out["rows"]}
    obs, theo = rows["FLOAT_TO_BF16"]
    assert obs == pytest.approx(3.91, rel=0.1)
    assert theo == pytest.approx(16.0, rel=0.02)
    observed = {k: v[0] for k, v in rows.items()}
    assert (
        observed["FLOAT_TO_BF16"]
        > observed["FLOAT_TO_TF32"]
        > observed["FLOAT_TO_BF16X2"]
        > observed["FLOAT_TO_BF16X3"]
        > observed["COMPLEX_3M"]
        > 1.0
    )
