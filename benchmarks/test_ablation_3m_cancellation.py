"""Ablation bench: COMPLEX_3M cancellation behaviour.

DESIGN.md ablation #4 — the paper's caveat that 3M accuracy "is
comparable with standard complex arithmetic, but with different
numeric cancellation behavior": under adversarial near-cancelling
inputs the 3M recombination loses more imaginary-part bits than 4M.
"""

from repro.core.ablation import complex_3m_cancellation


def test_3m_cancellation(benchmark):
    out = benchmark(complex_3m_cancellation)
    assert out["gemm_3m"] > out["gemm_4m"]
    # On benign data the two agree (covered by unit tests); the
    # adversarial gap here should be at least an order of magnitude.
    assert out["gemm_3m"] / out["gemm_4m"] > 10
