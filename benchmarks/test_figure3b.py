"""Bench: Fig. 3b — per-call BLAS speedup vs N_orb.

Paper shape: speedups rise with N_orb for every mode; the smallest
orbital count gives the least improvement; BF16 tops the chart.
"""

from repro.core.blas_sweep import SWEEP_MODES
from repro.experiments.figure3b import run


def test_figure3b(benchmark):
    out = benchmark(run)
    rows = out["rows"]
    assert [r[0] for r in rows] == [256, 1024, 2048, 4096]
    for col in range(1, 1 + len(SWEEP_MODES)):
        series = [r[col] for r in rows]
        assert series == sorted(series), f"column {col} not monotone"
    # BF16 (column 1) dominates every row.
    for r in rows:
        assert r[1] == max(r[1:])
