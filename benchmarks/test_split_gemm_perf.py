"""Bench: prepared (split-plan cached) vs cold split-GEMM wall clock.

Times the LFD hot-path scenario — a repeated ``cgemm`` against frozen
operands — both ways:

* **cold**: plain ndarrays with the anonymous plan cache disabled, so
  every call re-derives contiguous parts and split terms (the pre-plan
  behaviour);
* **prepared**: operands wrapped by :func:`repro.blas.plan.prepare`
  once, so per-call work is only the component products.

The shape is deliberately split-dominated (small ``m``/``n``, large
``k`` — the ``S = Psi0^H Psi`` correction GEMM is exactly this shape
class): that is where the caching matters and where the acceptance
floor (BF16X3 >= 2x, bitwise-identical outputs) is enforced.

Results land in ``BENCH_splitgemm.json`` at the repo root; the
``bench-split`` Make target chains this with
``scripts/check_bench_regression.py``, which applies the stored
per-mode floors from ``benchmarks/splitgemm_floors.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.blas.gemm import gemm
from repro.blas.plan import plan_cache, plan_cache_clear, prepare, release
from repro.blas.workspace import clear_workspace

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_splitgemm.json"

#: Split-dominated shape: the matmul flops scale with m*n*k while the
#: per-call derivation work scales with (m+n)*k, so small m=n and a
#: large k isolates what the plan cache actually saves.
M, N, K = 16, 16, 65536
REPEATS = 7

MODES = [
    "FLOAT_TO_BF16",
    "FLOAT_TO_BF16X2",
    "FLOAT_TO_BF16X3",
    "FLOAT_TO_TF32",
    "COMPLEX_3M",
]


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_mode(mode: str) -> dict:
    rng = np.random.default_rng(42)
    a = (rng.standard_normal((M, K)) + 1j * rng.standard_normal((M, K))).astype(
        np.complex64
    )
    b = (rng.standard_normal((K, N)) + 1j * rng.standard_normal((K, N))).astype(
        np.complex64
    )
    try:
        with plan_cache(False):
            cold = _best_of(lambda: gemm(a, b, mode=mode))
            ref = gemm(a, b, mode=mode)
        a_plan, b_plan = prepare(a), prepare(b)
        gemm(a_plan, b_plan, mode=mode)  # build the cached forms once
        prepared = _best_of(lambda: gemm(a_plan, b_plan, mode=mode))
        out = gemm(a_plan, b_plan, mode=mode)
        bitwise = bool(np.array_equal(out.view(np.uint64), ref.view(np.uint64)))
    finally:
        release(a)
        release(b)
        plan_cache_clear()
        clear_workspace()
    return {
        "mode": mode,
        "routine": "cgemm",
        "m": M,
        "n": N,
        "k": K,
        "repeats": REPEATS,
        "cold_seconds": cold,
        "prepared_seconds": prepared,
        "speedup": cold / prepared,
        "bitwise_identical": bitwise,
    }


@pytest.fixture(scope="module")
def results():
    rows = [_bench_mode(mode) for mode in MODES]
    RESULT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "split_gemm_prepared_vs_cold",
                "shape": {"m": M, "n": N, "k": K},
                "results": rows,
            },
            indent=2,
        )
        + "\n"
    )
    return {row["mode"]: row for row in rows}


@pytest.mark.parametrize("mode", MODES)
def test_prepared_path_is_bitwise_identical(results, mode):
    assert results[mode]["bitwise_identical"]


def test_bf16x3_speedup_meets_floor(results):
    # The acceptance criterion: repeated BF16X3 cgemm with prepared
    # frozen operands at least twice as fast as the cold path.
    assert results["FLOAT_TO_BF16X3"]["speedup"] >= 2.0, results["FLOAT_TO_BF16X3"]


def test_all_split_modes_speed_up(results):
    for mode in ("FLOAT_TO_BF16", "FLOAT_TO_BF16X2", "FLOAT_TO_TF32"):
        assert results[mode]["speedup"] > 1.0, results[mode]


def test_json_artifact_written(results):
    data = json.loads(RESULT_PATH.read_text())
    assert {r["mode"] for r in data["results"]} == set(MODES)
