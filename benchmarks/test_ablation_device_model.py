"""Ablation bench: device-model sensitivity of the 3.91x anchor.

DESIGN.md ablation #5 — the Table VI anchor call is memory-bound for
BF16, so the calibrated bandwidth efficiency moves it while the power
cap barely does.  Also sweeps the multi-stack extension: communication
is mode-independent, so BF16 loses parallel efficiency before FP32.
"""

import pytest

from repro.blas.modes import ComputeMode
from repro.core.ablation import device_sensitivity
from repro.gpu.multistack import MultiStackModel


def test_device_sensitivity(benchmark):
    rows = benchmark(device_sensitivity)
    by_knob = {(bw, cap): s for bw, cap, s in rows}
    # Bandwidth is the binding constraint at the anchor shape.
    assert by_knob[(0.9, 0.45)] > by_knob[(0.5, 0.45)] * 1.3
    # Power cap has almost no effect there.
    assert by_knob[(0.7, 0.65)] == pytest.approx(by_knob[(0.7, 0.45)], rel=0.05)


def test_multistack_scaling(benchmark):
    model = MultiStackModel()

    def curves():
        out = {}
        for mode in (ComputeMode.STANDARD, ComputeMode.FLOAT_TO_BF16):
            out[mode] = model.scaling_curve(96**3, 1024, 432, mode)
        return out

    out = benchmark.pedantic(curves, rounds=1, iterations=1)
    f32 = out[ComputeMode.STANDARD]
    bf16 = out[ComputeMode.FLOAT_TO_BF16]
    # Strong scaling holds for both...
    assert all(p.speedup > 1 for p in f32[1:])
    # ...but the faster mode hits the communication wall first.
    assert bf16[-1].efficiency < f32[-1].efficiency
