"""Bench: Fig. 3a — 500-QD-step times for both systems, 7 configs.

Paper-vs-measured anchors (135-atom system, 500 QD steps):
FP64 ~2800 s, FP32 1472 s, BF16 972 s, with the artifact's strict
ordering BF16 < TF32 < BF16X2 < BF16X3 < COMPLEX_3M < FP32 < FP64;
the 40-atom system shows almost no spread outside FP64.
"""

import pytest

from repro.experiments.figure3a import run


def test_figure3a(benchmark):
    out = benchmark(run)
    rows = {(r[0], r[1]): r[2] for r in out["rows"]}
    assert rows[("135-atom", "FP32")] == pytest.approx(1472, rel=0.15)
    assert rows[("135-atom", "FP64")] == pytest.approx(2800, rel=0.15)
    assert rows[("135-atom", "BF16")] == pytest.approx(972, rel=0.25)
    order = ["BF16", "TF32", "BF16X2", "BF16X3", "COMPLEX_3M", "FP32", "FP64"]
    times = [rows[("135-atom", label)] for label in order]
    assert times == sorted(times)
    # 40-atom: compute modes within 30% of FP32, FP64 clearly slower.
    alt = [rows[("40-atom", l)] / rows[("40-atom", "FP32")] for l in order[:5]]
    assert all(0.7 < x <= 1.0 + 1e-9 for x in alt)
    assert rows[("40-atom", "FP64")] / rows[("40-atom", "FP32")] > 1.5
