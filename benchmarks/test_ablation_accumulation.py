"""Ablation bench: FP32 vs BF16 accumulation in the split GEMM.

DESIGN.md ablation #3 — why oneMKL "accumulate[s] in single
precision": rounding the partial sums to BF16 makes the error grow
with the inner dimension, destroying the paper's Section V-B
size-independence property.
"""

from repro.core.ablation import accumulation_precision_ablation


def test_accumulation_precision(benchmark):
    rows = benchmark(accumulation_precision_ablation)
    fp32_acc = [r[1] for r in rows]
    bf16_acc = [r[2] for r in rows]
    # FP32 accumulation: flat in k.  BF16 accumulation: grows.
    assert fp32_acc[-1] <= 2 * fp32_acc[0]
    assert bf16_acc[-1] > 3 * bf16_acc[0]
    assert all(b > g for g, b in zip(fp32_acc, bf16_acc))
