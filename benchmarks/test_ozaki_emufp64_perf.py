"""Bench: software-emulation cost of the post-paper split modes.

One row per (routine, mode): repeated prepared GEMMs timing
``OZAKI_INT8`` (at 2 and 3 slices) and ``EMULATED_FP64`` against
``STANDARD`` on the same operands.  On a CPU these modes *cost* their
component products rather than saving silicon — Ozaki at three slices
runs six INT8-slice products per real GEMM, emulated FP64 six FP32
pair products per double GEMM — so the recorded slowdowns audit that
the emulation actually does the work the device model charges for.
Accuracy columns ride along so the JSON doubles as an error-ladder
audit: Ozaki's max deviation from the FP64 reference must shrink as
slices are added, and emulated FP64's must sit at the compensated-
accumulation floor.

Results land in ``BENCH_newmodes.json`` at the repo root; run via
``make bench-newmodes``.  The CI job is non-blocking (timings on
shared runners are noisy); the accuracy assertions are not.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.blas.gemm import gemm
from repro.blas.modes import ComputeMode, set_ozaki_slices
from repro.blas.plan import plan_cache_clear, prepare, release
from repro.blas.workspace import clear_workspace

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_newmodes.json"

M, N, K = 192, 160, 1024
REPEATS = 5

#: (label, routine dtype, mode, ozaki slices or None)
CASES = [
    ("sgemm/STANDARD", np.float32, ComputeMode.STANDARD, None),
    ("sgemm/OZAKI_INT8(s=2)", np.float32, ComputeMode.OZAKI_INT8, 2),
    ("sgemm/OZAKI_INT8(s=3)", np.float32, ComputeMode.OZAKI_INT8, 3),
    ("sgemm/EMULATED_FP64", np.float32, ComputeMode.EMULATED_FP64, None),
    ("dgemm/STANDARD", np.float64, ComputeMode.STANDARD, None),
    ("dgemm/EMULATED_FP64", np.float64, ComputeMode.EMULATED_FP64, None),
    ("cgemm/STANDARD", np.complex64, ComputeMode.STANDARD, None),
    ("cgemm/OZAKI_INT8(s=3)", np.complex64, ComputeMode.OZAKI_INT8, 3),
    ("cgemm/EMULATED_FP64", np.complex64, ComputeMode.EMULATED_FP64, None),
]


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _operands(dtype, rng):
    if np.dtype(dtype).kind == "c":
        a = rng.standard_normal((M, K)) + 1j * rng.standard_normal((M, K))
        b = rng.standard_normal((K, N)) + 1j * rng.standard_normal((K, N))
        return a.astype(dtype), b.astype(dtype)
    return (
        rng.standard_normal((M, K)).astype(dtype),
        rng.standard_normal((K, N)).astype(dtype),
    )


@pytest.fixture(scope="module")
def results():
    rng = np.random.default_rng(13)
    operands = {}
    rows = []
    try:
        for label, dtype, mode, slices in CASES:
            key = np.dtype(dtype).name
            if key not in operands:
                a, b = _operands(dtype, rng)
                operands[key] = (prepare(a), prepare(b), a, b)
            a_plan, b_plan, a, b = operands[key]
            set_ozaki_slices(slices)
            try:
                gemm(a_plan, b_plan, mode=mode)  # warm: stage + cache
                seconds = _best_of(lambda: gemm(a_plan, b_plan, mode=mode))
                out = gemm(a_plan, b_plan, mode=mode)
            finally:
                set_ozaki_slices(None)
            ref = a.astype(np.complex128 if np.iscomplexobj(a) else np.float64) @ \
                b.astype(np.complex128 if np.iscomplexobj(b) else np.float64)
            rows.append(
                {
                    "case": label,
                    "routine": label.split("/")[0],
                    "mode": mode.env_value,
                    "ozaki_slices": slices,
                    "seconds": seconds,
                    "max_abs_dev_vs_fp64": float(np.max(np.abs(out - ref))),
                }
            )
    finally:
        for a_plan, b_plan, _, _ in operands.values():
            release(a_plan)
            release(b_plan)
        plan_cache_clear()
        clear_workspace()

    standard = {
        row["routine"]: row["seconds"]
        for row in rows
        if row["mode"] == "STANDARD"
    }
    for row in rows:
        row["slowdown_vs_standard"] = row["seconds"] / standard[row["routine"]]

    RESULT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "newmodes_perf",
                "shape": {"m": M, "n": N, "k": K},
                "repeats": REPEATS,
                "results": rows,
            },
            indent=2,
        )
        + "\n"
    )
    return rows


def _by_case(results):
    return {row["case"]: row for row in results}


def test_all_cases_present(results):
    assert {r["case"] for r in results} == {c[0] for c in CASES}
    assert all(np.isfinite(r["seconds"]) and r["seconds"] > 0 for r in results)


def test_ozaki_accuracy_ladder(results):
    rows = _by_case(results)
    e_std = rows["sgemm/STANDARD"]["max_abs_dev_vs_fp64"]
    e_s2 = rows["sgemm/OZAKI_INT8(s=2)"]["max_abs_dev_vs_fp64"]
    e_s3 = rows["sgemm/OZAKI_INT8(s=3)"]["max_abs_dev_vs_fp64"]
    # More slices, tighter error; three slices lands near FP32 class.
    assert e_s2 > e_s3 > 0
    assert e_s3 < 100 * max(e_std, 1e-12)


def test_emulated_fp64_accuracy_floor(results):
    rows = _by_case(results)
    # Double storage: compensated accumulation sits ~1e5x under native
    # FP32-class error scales; the envelope here is generous.
    assert rows["dgemm/EMULATED_FP64"]["max_abs_dev_vs_fp64"] < 1e-9
    # Single storage: never worse than plain FP32 arithmetic.
    assert (
        rows["sgemm/EMULATED_FP64"]["max_abs_dev_vs_fp64"]
        <= rows["sgemm/STANDARD"]["max_abs_dev_vs_fp64"] * 1.5
    )


def test_emulation_pays_its_component_products(results):
    """dgemm emulated FP64 runs six FP32 pair products — the software
    emulation must cost measurably more than one native FP64 GEMM."""
    rows = _by_case(results)
    assert rows["dgemm/EMULATED_FP64"]["slowdown_vs_standard"] > 1.5
    assert rows["sgemm/OZAKI_INT8(s=3)"]["slowdown_vs_standard"] > 1.5


def test_json_artifact_written(results):
    data = json.loads(RESULT_PATH.read_text())
    assert data["benchmark"] == "newmodes_perf"
    assert len(data["results"]) == len(results)
