"""Ablation bench: FP64 SCF reset cadence vs truncation buildup.

DESIGN.md ablation #1 — the paper's stability mechanism: "after every
series of 500 quantum dynamical steps ... we execute SCF at FP64 to
update the wave function ... prevents the buildup of truncation
errors".  The final Gram error of the BF16 run must grow when the
resets are removed.
"""

from repro.core.ablation import scf_cadence_ablation


def test_scf_cadence(benchmark):
    rows = benchmark.pedantic(
        scf_cadence_ablation,
        kwargs=dict(cadences=(10, 120), n_steps=120),
        rounds=1,
        iterations=1,
    )
    gram = {nscf: g for nscf, g, _ in rows}
    assert gram[120] > 1.5 * gram[10]
