"""Bench: Fig. 1 — deviation from FP32 of nexc/javg/ekin.

The benchmark times one full five-mode accuracy study on the scaled
system and asserts the paper's qualitative findings: BF16 deviates
most, the BF16 family forms an accuracy ladder, 3M sits at the FP32
noise floor, and javg deviations are negligible next to ekin's.
"""


from repro.blas.modes import ComputeMode
from repro.core.study import PrecisionStudy
from repro.dcmesh.simulation import SimulationConfig


def _run_study():
    cfg = SimulationConfig.small_test(
        mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=40, nscf=20
    )
    return PrecisionStudy(cfg).run()


def test_figure1(benchmark):
    result = benchmark.pedantic(_run_study, rounds=1, iterations=1)
    dev = {
        (obs, s.mode): s.max_deviation
        for obs, series in result.deviations.items()
        for s in series
    }
    # BF16 accuracy ladder on the kinetic energy.
    assert (
        dev[("ekin", ComputeMode.FLOAT_TO_BF16)]
        > dev[("ekin", ComputeMode.FLOAT_TO_BF16X2)]
        > dev[("ekin", ComputeMode.FLOAT_TO_BF16X3)]
    )
    # TF32 better than BF16; 3M at the noise floor.
    assert dev[("ekin", ComputeMode.FLOAT_TO_TF32)] < dev[("ekin", ComputeMode.FLOAT_TO_BF16)]
    assert dev[("ekin", ComputeMode.COMPLEX_3M)] < dev[("ekin", ComputeMode.FLOAT_TO_BF16)] / 50
    # Current density deviations orders below kinetic energy.
    assert dev[("javg", ComputeMode.FLOAT_TO_BF16)] < dev[("ekin", ComputeMode.FLOAT_TO_BF16)] / 100
