"""Bench: Table IV — precision-format table generation."""

from repro.experiments.table4 import PAPER_ROWS, run


def test_table4(benchmark):
    out = benchmark(run)
    assert out["rows"] == PAPER_ROWS
