"""Bench: Table V — system sizes and the 64 GB capacity boundary."""

from repro.experiments.table5 import PAPER_ROWS, run


def test_table5(benchmark):
    out = benchmark(run)
    rows = out["rows"]
    # The paper's two systems, regenerated from the material builder.
    assert [(r[0], r[1], r[2]) for r in rows[:2]] == PAPER_ROWS
    # Capacity claim: both fit, the next size up does not.
    assert rows[0][4] and rows[1][4] and not rows[2][4]
