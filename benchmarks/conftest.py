"""Shared benchmark fixtures.

Every paper table/figure has one benchmark module that (a) times the
regeneration of the artifact via pytest-benchmark and (b) asserts the
reproduced rows keep the paper's shape, so `pytest benchmarks/
--benchmark-only` doubles as the reproduction report.
"""

from __future__ import annotations

import pytest

from repro.dcmesh.simulation import Simulation, SimulationConfig


def pytest_collection_modifyitems(items):
    """Tag everything under benchmarks/ with the ``benchmark`` marker.

    The suite was previously selectable only by path; the marker makes
    ``pytest -m "not benchmark"`` / ``-m benchmark`` work no matter how
    the session was rooted.
    """
    for item in items:
        item.add_marker(pytest.mark.benchmark)


@pytest.fixture(scope="session")
def bench_sim() -> Simulation:
    """A small simulation with a converged ground state, shared by the
    accuracy benchmarks (mirrors the paper's one-binary-many-runs
    setup)."""
    cfg = SimulationConfig.small_test(
        mesh_shape=(10, 10, 10), n_orb=20, n_qd_steps=40, nscf=20
    )
    sim = Simulation(cfg)
    sim.setup()
    return sim
