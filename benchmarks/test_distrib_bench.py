"""Bench: the distributed engine's wall-clock and straggler-recovery claims.

Two gated claims from ISSUE/ROADMAP item 4:

* **pool speedup** — a multi-cell grid on a 4-worker local pool must
  finish >= 2.5x faster than the serial ``--jobs 1``-equivalent loop.
  Cells are *synthetic fixed-service-time* cells (the body blocks
  without burning CPU, modelling the device/IO-bound cells the paper's
  grids are made of — on this repo's device-model sweep the cell body
  is a closed-form evaluation, and real deployments wait on
  accelerators).  That makes the measurement a scheduler-efficiency
  bench that is honest on any host, including single-core CI runners:
  what is measured is queue overhead (claims, leases, heartbeats,
  JSONL records, merge) against perfect overlap, not NumPy
  parallelism.
* **straggler recovery** — with one worker stalled mid-cell (its
  heartbeat keeping the lease alive, so expiry can never help),
  work-stealing must recover >= 80% of the idle tail.  The recoverable
  tail is measured against the true floor: once one of two workers is
  out of commission, the best any scheduler can do is the surviving
  worker running the whole grid solo, so recovery is
  ``(nosteal - steal) / (nosteal - solo)``.

Results land in ``BENCH_distrib.json`` at the repo root; CI uploads it
as a non-blocking artifact (``make bench-distrib``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.distrib import SweepSpec, WorkQueue, run_cell, submit

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_distrib.json"
SRC_ROOT = str(REPO_ROOT / "src")

MIN_POOL_SPEEDUP = 2.5
MIN_TAIL_RECOVERY = 0.80

# Grid sized so the ~2-3 s fixed pool cost (4 interpreter startups,
# serialised on a 1-core runner) amortises well below the gate.
POOL_WORKERS = 4
POOL_CELLS = 48
POOL_CELL_SECONDS = 0.5

STRAGGLER_CELLS = 8
STRAGGLER_CELL_SECONDS = 0.25
STALL_SECONDS = 5.0
STEAL_AFTER = 0.4


def _worker_cmd(queue_dir, worker_id, *extra):
    return [
        sys.executable, "-m", "repro.distrib.worker",
        "--queue", str(queue_dir), "--worker-id", worker_id, *extra,
    ]


def _worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _wait_done(queue, timeout):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if queue.all_done():
            return True
        time.sleep(0.05)
    return queue.all_done()


def _serial_wall(spec: SweepSpec) -> float:
    """The --jobs 1 equivalent: one loop, no queue, no processes."""
    t0 = time.perf_counter()
    for cell in spec.cells():
        run_cell(cell, dict(spec.params))
    return time.perf_counter() - t0


def _pool_wall(spec: SweepSpec, n_workers: int) -> float:
    t0 = time.perf_counter()
    handle = submit(spec, n_workers=n_workers)
    merged = handle.result(timeout=120)
    wall = time.perf_counter() - t0
    assert len(merged.cells) == len(spec.cells())
    return wall


def _straggler_wall(tmp_path, steal_after, stall=True, solo=False) -> dict:
    """2-worker run with w0 stalled on cell 0; returns wall + stats.

    With ``solo=True``: one healthy worker runs the whole grid — the
    floor any recovery scheme is judged against.
    """
    spec = SweepSpec(
        kind="synthetic",
        n_cells=STRAGGLER_CELLS,
        params={"cell_seconds": STRAGGLER_CELL_SECONDS},
    )
    queue = WorkQueue.create(
        tmp_path, spec, lease_seconds=30.0, steal_after=steal_after
    )
    procs = []
    # Key on the kind prefix, not one index: w0 stalls on whichever
    # cell it wins the claim race for, so the injection is reliable.
    stall_args = (
        ["--stall-key", "synthetic:", "--stall-seconds", str(STALL_SECONDS),
         "--max-cells", "1"]
        if stall
        else []
    )
    if not solo:
        procs.append(
            subprocess.Popen(_worker_cmd(queue.root, "w0", *stall_args),
                             env=_worker_env())
        )
        # Hold w1 back until the straggler owns a lease, so the stall
        # injection cannot be raced away on a busy 1-core runner.  The
        # clock starts once the lease is held, which keeps all three
        # scenarios (solo / nosteal / steal) measured from the same
        # point: one healthy worker about to start up.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if list((queue.root / "leases").glob("cell-*.json")):
                break
            time.sleep(0.02)
    t0 = time.perf_counter()
    procs.append(
        subprocess.Popen(_worker_cmd(queue.root, "w1"), env=_worker_env())
    )
    try:
        assert _wait_done(queue, timeout=STALL_SECONDS * 3 + 30)
        wall = time.perf_counter() - t0
    finally:
        for p in procs:
            p.kill()
        for p in procs:
            p.wait()
    _, stats = queue.completed()
    return {"wall_seconds": wall, "steals": stats.steals,
            "duplicates": stats.duplicates}


@pytest.fixture(scope="module")
def results(tmp_path_factory):
    # --- pool speedup: 4 workers vs the serial loop -------------------
    spec = SweepSpec(
        kind="synthetic",
        n_cells=POOL_CELLS,
        params={"cell_seconds": POOL_CELL_SECONDS},
    )
    serial_wall = _serial_wall(spec)
    pool_wall = _pool_wall(spec, POOL_WORKERS)
    speedup = serial_wall / pool_wall

    # --- straggler recovery: stalled vs the solo floor ----------------
    base = tmp_path_factory.mktemp("distrib_bench")
    solo = _straggler_wall(
        base / "solo", steal_after=STEAL_AFTER, stall=False, solo=True
    )
    stalled_nosteal = _straggler_wall(base / "nosteal", steal_after=None)
    stalled_steal = _straggler_wall(base / "steal", steal_after=STEAL_AFTER)
    # The recoverable tail is the excess of the no-steal run over the
    # solo floor; stealing must claw back MIN_TAIL_RECOVERY of it.
    tail = stalled_nosteal["wall_seconds"] - solo["wall_seconds"]
    recovered = stalled_nosteal["wall_seconds"] - stalled_steal["wall_seconds"]
    recovery = recovered / tail if tail > 0 else 0.0

    row = {
        "benchmark": "distrib_engine",
        "pool": {
            "cells": POOL_CELLS,
            "cell_seconds": POOL_CELL_SECONDS,
            "workers": POOL_WORKERS,
            "serial_wall_seconds": serial_wall,
            "pool_wall_seconds": pool_wall,
            "speedup_vs_jobs1": speedup,
            "min_speedup": MIN_POOL_SPEEDUP,
        },
        "straggler": {
            "cells": STRAGGLER_CELLS,
            "cell_seconds": STRAGGLER_CELL_SECONDS,
            "stall_seconds": STALL_SECONDS,
            "steal_after_seconds": STEAL_AFTER,
            "solo_floor_wall_seconds": solo["wall_seconds"],
            "stalled_nosteal_wall_seconds": stalled_nosteal["wall_seconds"],
            "stalled_steal_wall_seconds": stalled_steal["wall_seconds"],
            "steals": stalled_steal["steals"],
            "duplicates": stalled_steal["duplicates"],
            "tail_recovery": recovery,
            "min_tail_recovery": MIN_TAIL_RECOVERY,
        },
    }
    RESULT_PATH.write_text(json.dumps(row, indent=2) + "\n")
    return row


def test_pool_speedup_vs_serial(results):
    assert results["pool"]["speedup_vs_jobs1"] >= MIN_POOL_SPEEDUP, results["pool"]


def test_work_stealing_recovers_the_idle_tail(results):
    straggler = results["straggler"]
    assert straggler["steals"] >= 1, straggler
    assert straggler["tail_recovery"] >= MIN_TAIL_RECOVERY, straggler


def test_no_steal_means_straggler_dominates(results):
    """Sanity of the measurement itself: with stealing disabled, the
    stalled run must actually pay (most of) the stall."""
    straggler = results["straggler"]
    excess = (
        straggler["stalled_nosteal_wall_seconds"]
        - straggler["solo_floor_wall_seconds"]
    )
    assert excess >= STALL_SECONDS * 0.4, straggler


def test_json_artifact_written(results):
    assert RESULT_PATH.exists()
    assert json.loads(RESULT_PATH.read_text())["benchmark"] == "distrib_engine"
