"""Micro-benchmarks: the substrate kernels a performance regression
would hide in.

Not paper artifacts — these pin the wall-time of the hot inner pieces
(mesh FFT, Löwdin orthonormalisation, one SCF descent sweep, projector
build, nonlocal correction) so a slowdown in any layer is visible in
the benchmark history.
"""

import numpy as np
import pytest

from repro.dcmesh.material import build_pto_supercell
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.nlp import NonlocalPropagator
from repro.dcmesh.projectors import build_projectors
from repro.dcmesh.wavefunction import OrbitalSet


@pytest.fixture(scope="module")
def system():
    material = build_pto_supercell((1, 1, 1), lattice=6.5)
    mesh = Mesh((16, 16, 16), material.box)
    orb = OrbitalSet.random(mesh, 32, 16, seed=0)
    return material, mesh, orb


def test_mesh_fft_roundtrip(benchmark, system):
    _, mesh, orb = system
    psi = orb.psi.astype(np.complex64)

    def roundtrip():
        return mesh.ifft(mesh.fft(psi))

    out = benchmark(roundtrip)
    assert out.shape == psi.shape


def test_lowdin_orthonormalise(benchmark, system):
    _, mesh, orb = system
    rng = np.random.default_rng(1)
    noisy = orb.psi + 0.01 * (
        rng.standard_normal(orb.psi.shape) + 1j * rng.standard_normal(orb.psi.shape)
    )

    def ortho():
        work = OrbitalSet(noisy.copy(), orb.occupations.copy(), mesh)
        work.orthonormalize()
        return work

    out = benchmark(ortho)
    np.testing.assert_allclose(out.overlap(), np.eye(orb.n_orb), atol=1e-10)


def test_projector_build(benchmark, system):
    material, mesh, _ = system
    proj = benchmark(build_projectors, material, mesh)
    assert proj.n_proj == material.n_atoms


def test_nlp_correction(benchmark, system):
    _, mesh, orb = system
    rng = np.random.default_rng(2)
    h_nl = rng.standard_normal((orb.n_orb, orb.n_orb)) * 0.1
    h_nl = 0.5 * (h_nl + h_nl.T)
    psi32 = orb.psi.astype(np.complex64)
    nlp = NonlocalPropagator(psi32, h_nl, dt=0.02, mesh=mesh)
    out = benchmark(nlp.apply, psi32)
    assert out.shape == psi32.shape


def test_density_accumulation(benchmark, system):
    _, mesh, orb = system
    n = benchmark(orb.density)
    assert n.shape == (mesh.n_grid,)
    assert float(n.sum() * mesh.dv) == pytest.approx(orb.n_electrons)


def test_ionic_potential_build(benchmark, system):
    from repro.dcmesh.hamiltonian import ionic_potential

    material, mesh, _ = system
    v = benchmark(ionic_potential, material, mesh)
    assert v.shape == (mesh.n_grid,)
