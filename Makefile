# Convenience targets for the DCMESH-precision reproduction.

PYTHON ?= python

.PHONY: install test test-fast lint ci bench bench-split bench-telemetry bench-adaptive bench-backends repro report claims examples clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# Same gate as the CI lint job (config in ruff.toml).  Skips with a
# notice when ruff is not installed locally.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check . && ruff format --check . ; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

# Everything the CI workflow gates on, runnable locally in one shot.
ci: lint test-fast
	$(PYTHON) examples/quickstart.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-split:
	$(PYTHON) -m pytest benchmarks/test_split_gemm_perf.py -q -p no:cacheprovider
	$(PYTHON) scripts/check_bench_regression.py

bench-telemetry:
	$(PYTHON) -m pytest benchmarks/test_telemetry_overhead.py -q -p no:cacheprovider

bench-adaptive:
	$(PYTHON) -m pytest benchmarks/test_adaptive_sched.py -q -p no:cacheprovider
	$(PYTHON) scripts/check_bench_regression.py --adaptive

bench-backends:
	$(PYTHON) -m pytest benchmarks/test_backend_compare.py -q -p no:cacheprovider

repro:
	$(PYTHON) -m repro.experiments.runner all --output repro_output/

report:
	$(PYTHON) -m repro.experiments.runner report --output repro_output/

claims:
	$(PYTHON) -m repro.experiments.runner claims

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf repro_output study_output dcmesh_workdir ops_workdir \
	       .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
