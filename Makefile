# Convenience targets for the DCMESH-precision reproduction.

PYTHON ?= python

.PHONY: install test test-fast lint ci bench bench-split bench-telemetry bench-adaptive bench-backends bench-newmodes bench-distrib distrib-smoke repro report claims claim-coverage examples clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# Same gate as the CI lint job (config in ruff.toml).  Skips with a
# notice when ruff is not installed locally.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check . && ruff format --check . ; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

# Everything the CI workflow gates on, runnable locally in one shot.
ci: lint test-fast
	$(PYTHON) examples/quickstart.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-split:
	$(PYTHON) -m pytest benchmarks/test_split_gemm_perf.py -q -p no:cacheprovider
	$(PYTHON) scripts/check_bench_regression.py

bench-telemetry:
	$(PYTHON) -m pytest benchmarks/test_telemetry_overhead.py -q -p no:cacheprovider

bench-adaptive:
	$(PYTHON) -m pytest benchmarks/test_adaptive_sched.py -q -p no:cacheprovider
	$(PYTHON) scripts/check_bench_regression.py --adaptive

bench-backends:
	$(PYTHON) -m pytest benchmarks/test_backend_compare.py -q -p no:cacheprovider

# Gating: the measured slowdowns/errors must clear the committed
# ceilings in benchmarks/newmodes_floors.json (25% slack on slowdowns
# only; accuracy ceilings and ladder orderings get none).
bench-newmodes:
	$(PYTHON) -m pytest benchmarks/test_ozaki_emufp64_perf.py -q -p no:cacheprovider
	$(PYTHON) scripts/check_bench_regression.py --newmodes --slack 0.25

bench-distrib:
	$(PYTHON) -m pytest benchmarks/test_distrib_bench.py -q -p no:cacheprovider

# Same flow as the CI distrib-smoke job: submit a tiny 2-worker grid,
# SIGKILL one worker mid-run, resume, and verify the merge recomputed
# nothing.
distrib-smoke:
	$(PYTHON) scripts/distrib_smoke.py

repro:
	$(PYTHON) -m repro.experiments.runner all --output repro_output/

report:
	$(PYTHON) -m repro.experiments.runner report --output repro_output/

claims:
	$(PYTHON) -m repro.experiments.runner claims

# Same gate as the CI claims job: render claim_coverage.md and fail on
# any failing checker or missing pinning test.
claim-coverage:
	$(PYTHON) scripts/make_claim_coverage.py

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf repro_output study_output dcmesh_workdir ops_workdir \
	       .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
