"""Repo-root pytest bootstrap.

Makes the test and benchmark suites runnable even when the package has
not been installed (e.g. offline environments where ``pip install -e``
cannot build its isolated PEP 517 environment): if ``repro`` is not
importable, fall back to the in-tree ``src/`` layout.
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).parent / "src"))
