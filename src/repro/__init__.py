"""Reproduction of *Impact of Varying BLAS Precision on DCMESH* (SC 2024).

The package is organised as four layers, bottom-up:

``repro.blas``
    A software emulation of Intel oneMKL's *alternative compute modes*
    for level-3 BLAS: ``FLOAT_TO_BF16``, ``FLOAT_TO_BF16X2``,
    ``FLOAT_TO_BF16X3``, ``FLOAT_TO_TF32`` and ``COMPLEX_3M``.  Mode
    selection follows the paper: the ``MKL_BLAS_COMPUTE_MODE``
    environment variable, with no source change required, or an
    explicit API.

``repro.gpu``
    An analytical single-stack performance model of the Intel Data
    Center GPU Max Series 1550 ("Ponte Vecchio"): per-precision peak
    throughput, XMX matrix engines, HBM bandwidth, power caps, and a
    roofline GEMM timing model.  It stands in for the hardware the
    paper measured on.

``repro.dcmesh``
    A from-scratch implementation of the DCMESH application: the
    LFD (Local Field Dynamics) wavefunction propagation with its
    BLASified nonlocal correction (``nlp_prop``, ``calc_energy``,
    ``remap_occ``), the FP64 QXMD/SCF phase, laser coupling, Ehrenfest
    ion dynamics and the paper's input/output formats.

``repro.core``
    The paper's study itself: precision sweeps, deviation-from-FP32
    accuracy series (Figs. 1-2), QD-step timing (Fig. 3a), per-call
    BLAS speedup sweeps (Fig. 3b, Tables VI-VII) and the static
    theoretical tables (Tables I, II, IV).

Quickstart::

    from repro import dcmesh, blas

    cfg = dcmesh.SimulationConfig.small_test()
    sim = dcmesh.Simulation(cfg)
    with blas.compute_mode("FLOAT_TO_BF16"):
        result = sim.run()
    print(result.records[-1].nexc)
"""

import importlib

from repro._version import __version__

_SUBPACKAGES = ("blas", "gpu", "dcmesh", "core", "profiling", "experiments")

__all__ = ["__version__", *_SUBPACKAGES]


def __getattr__(name):
    # Lazy subpackage loading keeps `import repro` cheap and avoids
    # bottom-up import cycles while the layers boot.
    if name in _SUBPACKAGES:
        module = importlib.import_module(f"repro.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
