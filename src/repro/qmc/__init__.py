"""Mini projection-QMC workload — the paper's "other HPC workloads".

The abstract closes: "the approach we demonstrate here could be
readily applied to other High Performance Computing (HPC) workloads
that spend a significant amount of time in BLAS calls", and the future
work names QMCPACK.  This subpackage is that demonstration: a
self-contained imaginary-time projection QMC (the BLAS-dominated core
of AFQMC-style methods) whose inner loop is nothing but GEMMs —

    Phi <- B Phi            (M x M  @  M x N propagation GEMM)
    S = Phi0^H Phi          (overlap GEMM)
    re-orthonormalise every few steps (QR)

run through :mod:`repro.blas`, so flipping ``MKL_BLAS_COMPUTE_MODE``
studies the precision/performance trade-off on a *second* application
with zero code change — exactly the portability claim.

Because the model Hamiltonian is one-body, the projection is exact:
the energy converges to the sum of the lowest ``N`` eigenvalues, which
gives the accuracy study a closed-form ground truth the DCMESH study
lacks.
"""

from repro.qmc.lattice import LatticeHamiltonian, tight_binding_hamiltonian
from repro.qmc.projection import (
    ProjectionResult,
    ProjectionQMC,
    exact_ground_state_energy,
)
from repro.qmc.study import QMCStudyRow, qmc_mode_study

__all__ = [
    "LatticeHamiltonian",
    "tight_binding_hamiltonian",
    "ProjectionResult",
    "ProjectionQMC",
    "exact_ground_state_energy",
    "QMCStudyRow",
    "qmc_mode_study",
]
