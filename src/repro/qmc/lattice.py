"""One-body lattice Hamiltonians for the QMC workload.

A periodic cubic tight-binding model: hopping ``-t`` between nearest
neighbours plus site energies.  The site energies can be uniform,
seeded-random (an Anderson-type model) or sampled from the DCMESH
ionic potential, tying the two applications to the same material.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

__all__ = ["LatticeHamiltonian", "tight_binding_hamiltonian"]


@dataclasses.dataclass
class LatticeHamiltonian:
    """Dense one-body Hamiltonian on an ``(nx, ny, nz)`` periodic lattice."""

    matrix: np.ndarray          #: (M, M) real symmetric
    shape: Tuple[int, int, int]

    def __post_init__(self) -> None:
        m = self.matrix
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError(f"Hamiltonian must be square, got {m.shape}")
        if m.shape[0] != int(np.prod(self.shape)):
            raise ValueError(
                f"matrix size {m.shape[0]} does not match lattice {self.shape}"
            )
        asym = np.abs(m - m.T).max()
        if asym > 1e-10 * max(np.abs(m).max(), 1.0):
            raise ValueError(f"Hamiltonian not symmetric (asymmetry {asym:.2e})")

    @property
    def n_sites(self) -> int:
        return self.matrix.shape[0]

    def eigenvalues(self) -> np.ndarray:
        """Sorted one-body spectrum (exact diagonalisation)."""
        return np.linalg.eigvalsh(self.matrix)

    def propagator(self, tau: float) -> np.ndarray:
        """Imaginary-time step ``B = exp(-tau H)`` (dense, FP64)."""
        vals, vecs = np.linalg.eigh(self.matrix)
        return (vecs * np.exp(-tau * vals)) @ vecs.T


def tight_binding_hamiltonian(
    shape: Tuple[int, int, int] = (4, 4, 4),
    hopping: float = 1.0,
    site_energies: Optional[np.ndarray] = None,
    disorder: float = 0.0,
    seed: int = 0,
) -> LatticeHamiltonian:
    """Periodic nearest-neighbour tight binding with optional disorder.

    Parameters
    ----------
    shape:
        Lattice dimensions; the Hamiltonian is dense ``M x M`` with
        ``M = nx * ny * nz``.
    hopping:
        Nearest-neighbour amplitude ``t`` (H carries ``-t``).
    site_energies:
        Explicit diagonal, length ``M``; overrides ``disorder``.
    disorder:
        Uniform random site energies in ``[-disorder, disorder]``
        (deterministic under ``seed``).
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) != 3 or any(s < 1 for s in shape):
        raise ValueError(f"shape must be three positive ints, got {shape}")
    nx, ny, nz = shape
    m = nx * ny * nz
    h = np.zeros((m, m))

    def idx(i, j, k):
        return (i % nx) * ny * nz + (j % ny) * nz + (k % nz)

    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                a = idx(i, j, k)
                for b in (idx(i + 1, j, k), idx(i, j + 1, k), idx(i, j, k + 1)):
                    # Periodic wrap can make a == b (dimension of size 1)
                    # or double-count (size 2); accumulate symmetric terms.
                    if a != b:
                        h[a, b] -= hopping
                        h[b, a] -= hopping
    # De-duplicate double counting from size-2 dimensions.
    np.clip(h, -2 * hopping, 0.0, out=h)

    if site_energies is not None:
        site_energies = np.asarray(site_energies, dtype=np.float64)
        if site_energies.shape != (m,):
            raise ValueError(
                f"site_energies must have length {m}, got {site_energies.shape}"
            )
        h[np.diag_indices(m)] = site_energies
    elif disorder > 0:
        rng = np.random.default_rng(seed)
        h[np.diag_indices(m)] = rng.uniform(-disorder, disorder, m)
    return LatticeHamiltonian(matrix=h, shape=shape)
