"""Precision study on the QMC workload — the portability claim, tested.

Runs the projection QMC once per compute mode on the identical
Hamiltonian and start determinant, reporting each mode's energy error
against the closed-form exact answer plus the modelled per-GEMM
speedup of the dominant propagation call.  The expected outcome
mirrors DCMESH's: the accuracy ladder BF16 > TF32 > BF16x2 > BF16x3
holds on a completely different application, because it is a property
of the *modes*, not the code.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional

from repro.blas.modes import ComputeMode
from repro.gpu.gemm_model import GemmModel
from repro.qmc.lattice import LatticeHamiltonian, tight_binding_hamiltonian
from repro.qmc.projection import ProjectionQMC

__all__ = ["QMCStudyRow", "qmc_mode_study", "QMC_STUDY_MODES"]

QMC_STUDY_MODES = (
    ComputeMode.STANDARD,
    ComputeMode.FLOAT_TO_BF16,
    ComputeMode.FLOAT_TO_BF16X2,
    ComputeMode.FLOAT_TO_BF16X3,
    ComputeMode.FLOAT_TO_TF32,
)


@dataclasses.dataclass(frozen=True)
class QMCStudyRow:
    """One mode's accuracy/performance cell."""

    mode: ComputeMode
    final_energy: float
    exact_energy: float
    error: float                     #: |final - exact|
    deviation_from_fp32: float       #: |final - FP32 final|
    modelled_speedup: float          #: propagation-GEMM speedup vs FP32


def qmc_mode_study(
    hamiltonian: Optional[LatticeHamiltonian] = None,
    n_particles: int = 16,
    n_steps: int = 300,
    tau: float = 0.05,
    modes: Iterable[ComputeMode] = QMC_STUDY_MODES,
    seed: int = 0,
    paper_scale_m: int = 4096,
) -> List[QMCStudyRow]:
    """Run every mode; return accuracy + modelled-speedup rows.

    ``paper_scale_m`` sets the lattice size at which the modelled
    propagation-GEMM speedup is quoted (the actual run uses the small
    ``hamiltonian`` so the numerics stay cheap; the speedup model is
    size-dependent exactly as Fig. 3b shows).
    """
    h = hamiltonian or tight_binding_hamiltonian((6, 6, 6), disorder=0.5, seed=seed)
    qmc = ProjectionQMC(h, n_particles, tau=tau, seed=seed)
    model = GemmModel()

    results = {}
    for mode in modes:
        results[mode] = qmc.run(n_steps=n_steps, mode=mode)
    fp32_final = results[ComputeMode.STANDARD].final_energy

    # Production QMC batches the propagation over walkers: the GEMM's
    # n dimension is (particles x walkers), not the bare orbital count.
    batched_n = max(n_particles * 32, 512)
    rows: List[QMCStudyRow] = []
    for mode, res in results.items():
        speedup = model.speedup_vs_fp32(
            "sgemm", paper_scale_m, batched_n, paper_scale_m, mode
        )
        rows.append(
            QMCStudyRow(
                mode=mode,
                final_energy=res.final_energy,
                exact_energy=res.exact_energy,
                error=res.error,
                deviation_from_fp32=abs(res.final_energy - fp32_final),
                modelled_speedup=speedup,
            )
        )
    return rows
