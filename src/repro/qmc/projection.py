"""Imaginary-time projection QMC over :mod:`repro.blas` GEMMs.

The method: start from a trial Slater determinant ``Phi`` (an ``M x N``
orthonormal matrix of ``N`` occupied one-particle states on ``M``
sites) and repeatedly apply ``B = exp(-tau H)``:

    Phi <- B Phi

Each application filters out excited components; as ``n tau`` grows the
span of ``Phi`` converges to the lowest-``N`` eigenspace and the energy
estimator

    E = tr[(Phi^H Phi)^{-1} Phi^H H Phi]

converges to the exact ground-state energy (the sum of the ``N``
lowest eigenvalues).  Periodic QR re-orthonormalisation keeps the
columns from collapsing onto the single lowest state — the exact
analogue of AFQMC walker re-orthogonalisation.

Every matrix product goes through :func:`repro.blas.gemm.gemm` at the
chosen storage precision, under whatever compute mode is ambient: this
is deliberately the *same* precision surface as DCMESH's LFD, so the
environment-variable study transfers verbatim.
"""

from __future__ import annotations

import dataclasses
from typing import List, Union

import numpy as np

from repro.blas.gemm import call_site, gemm
from repro.blas.modes import ComputeMode, compute_mode, resolve_mode
from repro.qmc.lattice import LatticeHamiltonian
from repro.types import Precision, real_dtype

__all__ = ["ProjectionResult", "ProjectionQMC", "exact_ground_state_energy"]


def exact_ground_state_energy(h: LatticeHamiltonian, n_particles: int) -> float:
    """Closed-form target: sum of the ``n_particles`` lowest eigenvalues."""
    if not 0 < n_particles <= h.n_sites:
        raise ValueError(
            f"n_particles must be in (0, {h.n_sites}], got {n_particles}"
        )
    return float(np.sort(h.eigenvalues())[:n_particles].sum())


@dataclasses.dataclass
class ProjectionResult:
    """Outcome of one projection run."""

    energies: List[float]          #: energy estimator per measurement
    final_energy: float
    exact_energy: float
    n_steps: int
    mode: ComputeMode

    @property
    def error(self) -> float:
        """|final - exact| — projection + precision error combined."""
        return abs(self.final_energy - self.exact_energy)


class ProjectionQMC:
    """BLAS-dominated imaginary-time projector."""

    def __init__(
        self,
        hamiltonian: LatticeHamiltonian,
        n_particles: int,
        tau: float = 0.05,
        storage: Precision = Precision.FP32,
        reortho_every: int = 10,
        seed: int = 0,
    ):
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        if reortho_every < 1:
            raise ValueError(f"reortho_every must be >= 1, got {reortho_every}")
        if not 0 < n_particles <= hamiltonian.n_sites:
            raise ValueError(
                f"n_particles must be in (0, {hamiltonian.n_sites}], "
                f"got {n_particles}"
            )
        self.h = hamiltonian
        self.n_particles = n_particles
        self.tau = float(tau)
        self.storage = storage
        self.reortho_every = reortho_every
        self.seed = seed
        dt = real_dtype(storage)
        # FP64 once-per-run setup (the QXMD-analogue): the propagator
        # and the Hamiltonian, then cast to storage.
        self.b = hamiltonian.propagator(tau).astype(dt)
        self.h_storage = hamiltonian.matrix.astype(dt)
        rng = np.random.default_rng(seed)
        phi = rng.standard_normal((hamiltonian.n_sites, n_particles))
        q, _ = np.linalg.qr(phi)
        self.phi0 = q.astype(dt)

    # ------------------------------------------------------------------

    def energy(self, phi: np.ndarray) -> float:
        """Mixed estimator ``tr[(Phi^H Phi)^{-1} (Phi^H H Phi)]``."""
        with call_site("qmc_energy"):
            hphi = gemm(self.h_storage, phi)
            num = gemm(phi, hphi, trans_a="C")
            den = gemm(phi, phi, trans_a="C")
        # Small N x N solve in FP64 (the "QXMD side" of this workload).
        sol = np.linalg.solve(den.astype(np.float64), num.astype(np.float64))
        return float(np.trace(sol))

    def run(
        self,
        n_steps: int = 200,
        measure_every: int = 10,
        mode: Union[str, ComputeMode, None] = None,
    ) -> ProjectionResult:
        """Project for ``n_steps`` imaginary-time steps."""
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        effective = resolve_mode(mode)
        phi = self.phi0.copy()
        energies: List[float] = []
        with compute_mode(effective):
            for step in range(1, n_steps + 1):
                with call_site("qmc_propagate"):
                    phi = gemm(self.b, phi)
                if step % self.reortho_every == 0:
                    # FP64 QR: the stabilisation step, like the paper's
                    # periodic FP64 SCF update.
                    q, _ = np.linalg.qr(phi.astype(np.float64))
                    phi = q.astype(phi.dtype)
                if step % measure_every == 0 or step == n_steps:
                    energies.append(self.energy(phi))
        return ProjectionResult(
            energies=energies,
            final_energy=energies[-1],
            exact_energy=exact_ground_state_energy(self.h, self.n_particles),
            n_steps=n_steps,
            mode=effective,
        )
