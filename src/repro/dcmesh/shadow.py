"""Shadow-dynamics transfer ledger.

"In the latest implementation, LFD runs on the GPU and QXMD runs on
the CPU, and CPU-GPU data transfers are minimized through the use of
shadow dynamics." (Section II-C.)

The scheme this models: the device holds the propagating wavefunction
for a whole 500-QD-step block; only the tiny per-step observable record
crosses the link.  The full ``N_grid x N_orb`` matrix moves exactly
twice per block (down for the FP64 SCF update, back up afterwards).
The ledger lets tests and benchmarks *prove* the claim — the total
traffic is a few transfers per block instead of per step.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, List

__all__ = ["Transfer", "TransferLedger"]


@dataclasses.dataclass(frozen=True)
class Transfer:
    """One host<->device copy."""

    name: str
    direction: str    #: 'h2d' or 'd2h'
    nbytes: int
    step: int         #: QD step index at which it occurred


class TransferLedger:
    """Accumulates host<->device transfers for one simulation run."""

    _DIRECTIONS = ("h2d", "d2h")

    def __init__(self) -> None:
        self._transfers: List[Transfer] = []

    def record(self, name: str, direction: str, nbytes: int, step: int) -> None:
        """Book one transfer."""
        if direction not in self._DIRECTIONS:
            raise ValueError(f"direction must be one of {self._DIRECTIONS}, got {direction!r}")
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        self._transfers.append(Transfer(name, direction, int(nbytes), int(step)))

    @property
    def transfers(self) -> List[Transfer]:
        return list(self._transfers)

    def total_bytes(self, direction: str = "") -> int:
        """Total traffic, optionally filtered by direction."""
        return sum(
            t.nbytes for t in self._transfers if not direction or t.direction == direction
        )

    def count(self) -> int:
        return len(self._transfers)

    def by_name(self) -> Dict[str, int]:
        """Bytes aggregated per transfer label."""
        agg: Dict[str, int] = defaultdict(int)
        for t in self._transfers:
            agg[t.name] += t.nbytes
        return dict(agg)
