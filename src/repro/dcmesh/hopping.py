"""Fewest-switches surface hopping — the "surface hopping" in DCMESH.

DCMESH stands for divide-and-conquer Maxwell-Ehrenfest-**surface
hopping**.  The paper's precision study exercises only the Ehrenfest
(mean-field) branch, but the framework carries a stochastic
surface-hopping layer on top of the remapped occupations: when
population leaks from an initially-occupied orbital into the virtual
manifold faster than the electronic coherence supports, the ionic
subsystem can *hop* to an excited potential-energy surface instead of
dragging a fractional mean field.

This module implements a deterministic-seed, fewest-switches scheme
over the per-orbital excitation amplitudes that ``remap_occ`` already
produces.  The hop probability per QD interval follows Tully's
prescription ``P_i = max(0, d p_i / p_surv)``.  It is an extension —
off by default, used by the surface-hopping example and tests.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

__all__ = ["HopEvent", "SurfaceHopper"]


@dataclasses.dataclass(frozen=True)
class HopEvent:
    """One stochastic surface switch."""

    step: int            #: QD step index of the hop
    orbital: int         #: source orbital that lost its electron
    population: float    #: virtual population at the moment of the hop


class SurfaceHopper:
    """Fewest-switches hopping driven by remapped occupations."""

    def __init__(self, n_occupied: int, seed: int = 0):
        if n_occupied < 1:
            raise ValueError(f"need at least one occupied orbital, got {n_occupied}")
        self.n_occupied = n_occupied
        self.rng = np.random.default_rng(seed)
        self.surface = 0                 #: 0 = ground, >0 = excited
        self.events: List[HopEvent] = []
        self._prev = np.zeros(n_occupied)

    def probabilities(self, per_orbital_exc: np.ndarray) -> np.ndarray:
        """Per-orbital hop probability for this interval.

        Tully fewest-switches: the probability is the *growth* of the
        excited population over the interval divided by the surviving
        ground population, clipped to [0, 1].
        """
        p = np.asarray(per_orbital_exc, dtype=np.float64)
        if p.shape != (self.n_occupied,):
            raise ValueError(
                f"expected {self.n_occupied} per-orbital amplitudes, got {p.shape}"
            )
        growth = p - self._prev
        survive = np.maximum(1.0 - self._prev, 1e-12)
        return np.clip(growth / survive, 0.0, 1.0)

    def attempt(self, step: int, per_orbital_exc: np.ndarray) -> Optional[HopEvent]:
        """Advance one QD step; returns the hop event if one fired.

        Deterministic under the seed: the same trajectory of
        occupations produces the same hops, preserving the study's
        exact-reproducibility methodology.
        """
        probs = self.probabilities(per_orbital_exc)
        xi = self.rng.random(self.n_occupied)
        fired = np.nonzero(xi < probs)[0]
        self._prev = np.asarray(per_orbital_exc, dtype=np.float64).copy()
        if fired.size == 0:
            return None
        # Hop from the orbital with the largest excess probability.
        orbital = int(fired[np.argmax(probs[fired])])
        self.surface += 1
        event = HopEvent(step=step, orbital=orbital,
                         population=float(per_orbital_exc[orbital]))
        self.events.append(event)
        return event

    @property
    def n_hops(self) -> int:
        return len(self.events)
