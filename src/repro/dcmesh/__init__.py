"""From-scratch implementation of the DCMESH application.

DCMESH (divide-and-conquer Maxwell–Ehrenfest surface hopping) couples a
CPU-resident FP64 **QXMD** phase — Self-Consistent-Field (SCF)
initialisation and periodic re-convergence of the Kohn–Sham
wavefunctions, plus Ehrenfest ion dynamics — with a GPU-resident
**LFD** (Local Field Dynamics) phase that propagates the electronic
wavefunctions on a finite-difference mesh under a laser pulse.

The LFD phase is where the paper's BLAS calls live.  Wavefunctions are
stored as an ``N_grid x N_orb`` complex matrix and the nonlocal
correction is applied in the subspace spanned by the t=0 Kohn–Sham
orbitals (Eq. 1 of the paper): three functions — ``nlp_prop``,
``calc_energy`` and ``remap_occ`` — issue nine ``cgemm`` calls per
quantum-dynamical step, exactly the structure the paper's
MKL_VERBOSE analysis reports.

Public surface::

    cfg = SimulationConfig.small_test()
    sim = Simulation(cfg)
    result = sim.run()                      # LFD storage FP32
    result.records[-1].nexc                 # observables per QD step
"""

from repro.dcmesh.constants import AU_PER_FS, FS_PER_AU, HARTREE_EV
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.material import (
    AtomSpec,
    Material,
    PTO_SPECIES,
    build_pto_supercell,
)
from repro.dcmesh.laser import LaserPulse
from repro.dcmesh.projectors import ProjectorSet, build_projectors
from repro.dcmesh.wavefunction import OrbitalSet
from repro.dcmesh.hamiltonian import Hamiltonian
from repro.dcmesh.scf import SCFSolver, SCFResult
from repro.dcmesh.nlp import NonlocalPropagator
from repro.dcmesh.energy import EnergyBreakdown, calc_energy
from repro.dcmesh.occupation import RemapResult, remap_occ
from repro.dcmesh.current import current_density
from repro.dcmesh.ions import IonDynamics
from repro.dcmesh.shadow import TransferLedger
from repro.dcmesh.maxwell import InducedField
from repro.dcmesh.hopping import HopEvent, SurfaceHopper
from repro.dcmesh.spectra import Spectrum, absorption_spectrum, power_spectrum
from repro.dcmesh.domains import DCResult, DCSolver, Domain
from repro.dcmesh.diagnostics import DiagnosticSample, DiagnosticsCollector
from repro.dcmesh.propagate import LFDPropagator
from repro.dcmesh.observables import QDRecord, format_qd_line
from repro.dcmesh.simulation import Simulation, SimulationConfig, SimulationResult

__all__ = [
    "AU_PER_FS",
    "FS_PER_AU",
    "HARTREE_EV",
    "Mesh",
    "AtomSpec",
    "Material",
    "PTO_SPECIES",
    "build_pto_supercell",
    "LaserPulse",
    "ProjectorSet",
    "build_projectors",
    "OrbitalSet",
    "Hamiltonian",
    "SCFSolver",
    "SCFResult",
    "NonlocalPropagator",
    "EnergyBreakdown",
    "calc_energy",
    "RemapResult",
    "remap_occ",
    "current_density",
    "IonDynamics",
    "TransferLedger",
    "InducedField",
    "HopEvent",
    "SurfaceHopper",
    "Spectrum",
    "absorption_spectrum",
    "power_spectrum",
    "DCResult",
    "DCSolver",
    "Domain",
    "DiagnosticSample",
    "DiagnosticsCollector",
    "LFDPropagator",
    "QDRecord",
    "format_qd_line",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
]
