"""Kohn–Sham orbital sets: the ``N_grid x N_orb`` wavefunction matrix.

This is the central data structure of the paper: "an N_grid x N_orb
wave-function matrix, where N_grid and N_orb are the number of grid
points to represent each wave function and that of KS wave functions".
Columns are orbitals; normalisation is ``<psi_i|psi_j> dV = delta_ij``.
"""

from __future__ import annotations


import numpy as np

from repro.dcmesh.mesh import Mesh
from repro.types import Precision, complex_dtype

__all__ = ["OrbitalSet"]


class OrbitalSet:
    """Orbitals plus occupations on a mesh."""

    def __init__(self, psi: np.ndarray, occupations: np.ndarray, mesh: Mesh):
        psi = np.asarray(psi)
        occupations = np.asarray(occupations, dtype=np.float64)
        if psi.ndim != 2:
            raise ValueError(f"psi must be (N_grid, N_orb), got {psi.shape}")
        if psi.shape[0] != mesh.n_grid:
            raise ValueError(
                f"psi has {psi.shape[0]} grid points, mesh has {mesh.n_grid}"
            )
        if occupations.shape != (psi.shape[1],):
            raise ValueError(
                f"occupations shape {occupations.shape} does not match "
                f"{psi.shape[1]} orbitals"
            )
        if np.any(occupations < 0) or np.any(occupations > 2.0 + 1e-12):
            raise ValueError("occupations must lie in [0, 2]")
        self.psi = psi
        self.occupations = occupations
        self.mesh = mesh

    # ------------------------------------------------------------------

    @property
    def n_orb(self) -> int:
        return self.psi.shape[1]

    @property
    def n_electrons(self) -> float:
        return float(self.occupations.sum())

    @property
    def n_occupied(self) -> int:
        """Number of strictly-occupied orbitals (f > 0)."""
        return int(np.count_nonzero(self.occupations > 0))

    @classmethod
    def random(
        cls,
        mesh: Mesh,
        n_orb: int,
        n_occupied: int,
        seed: int = 0,
        dtype=np.complex128,
    ) -> "OrbitalSet":
        """Random orthonormal start for SCF, deterministic under ``seed``."""
        if not 0 <= n_occupied <= n_orb:
            raise ValueError(f"n_occupied={n_occupied} out of range for n_orb={n_orb}")
        rng = np.random.default_rng(seed)
        raw = rng.standard_normal((mesh.n_grid, n_orb)) + 1j * rng.standard_normal(
            (mesh.n_grid, n_orb)
        )
        f = np.zeros(n_orb)
        f[:n_occupied] = 2.0
        orb = cls(raw.astype(dtype), f, mesh)
        orb.orthonormalize()
        return orb

    # ------------------------------------------------------------------

    def overlap(self) -> np.ndarray:
        """Gram matrix ``S_ij = <psi_i|psi_j>`` (FP64 accumulation)."""
        psi64 = self.psi.astype(np.complex128, copy=False)
        return (psi64.conj().T @ psi64) * self.mesh.dv

    def orthonormalize(self) -> None:
        """Löwdin (symmetric) orthonormalisation, in FP64.

        This is the operation the QXMD phase performs on the shadow
        wavefunction at every SCF block boundary; running it in FP64
        is what bounds the truncation-error buildup the paper relies
        on (Section V: "Updating the wavefunction with FP64 precision
        prevents the buildup of truncation errors").
        """
        psi64 = self.psi.astype(np.complex128, copy=False)
        s = (psi64.conj().T @ psi64) * self.mesh.dv
        vals, vecs = np.linalg.eigh(s)
        if vals.min() <= 0:
            raise np.linalg.LinAlgError(
                f"orbital set is numerically singular (min Gram eigenvalue {vals.min():.3e})"
            )
        s_inv_half = (vecs * (1.0 / np.sqrt(vals))) @ vecs.conj().T
        out = psi64 @ s_inv_half
        self.psi = out.astype(self.psi.dtype, copy=False)

    def norms(self) -> np.ndarray:
        """Per-orbital L2 norms (should all be 1 after orthonormalise)."""
        return np.sqrt(np.sum(np.abs(self.psi) ** 2, axis=0) * self.mesh.dv)

    def density(self) -> np.ndarray:
        """Electron density ``n(r) = sum_j f_j |psi_j(r)|^2`` (FP64)."""
        amp = np.abs(self.psi.astype(np.complex128, copy=False)) ** 2
        return amp @ self.occupations

    def astype(self, precision: Precision) -> "OrbitalSet":
        """Copy at a different storage precision (FP64 <-> FP32)."""
        dt = complex_dtype(precision)
        return OrbitalSet(self.psi.astype(dt), self.occupations.copy(), self.mesh)

    def copy(self) -> "OrbitalSet":
        return OrbitalSet(self.psi.copy(), self.occupations.copy(), self.mesh)
