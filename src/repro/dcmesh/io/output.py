"""Run-log reader/writer.

The artifact pipes each simulation's stdout into a text file and plots
the QD-step columns from it; we mirror that with explicit read/write
helpers over the :mod:`repro.dcmesh.observables` line format.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

from repro.dcmesh.observables import QDRecord, format_qd_line, parse_qd_line

__all__ = ["write_run_log", "read_run_log"]

PathLike = Union[str, Path]


def write_run_log(path: PathLike, records: Iterable[QDRecord], header: str = "") -> None:
    """Write a DCMESH-style run log, one QD line per record."""
    lines: List[str] = []
    if header:
        for h in header.splitlines():
            lines.append(f"# {h}")
    lines.extend(format_qd_line(r) for r in records)
    Path(path).write_text("\n".join(lines) + "\n")


def read_run_log(path: PathLike) -> List[QDRecord]:
    """Parse a run log back into records (comments ignored)."""
    records: List[QDRecord] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        body = line.strip()
        if not body or body.startswith("#"):
            continue
        try:
            records.append(parse_qd_line(body))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from None
    return records
