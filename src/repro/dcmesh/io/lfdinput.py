"""``lfd.in`` — LFD namelist: timestep, step counts, laser, precision.

Format (``key = value``)::

    # DCMESH lfd.in
    dt          = 0.02
    nsteps      = 21000
    nscf        = 500
    storage     = fp32
    move_ions   = true
    seed        = 7
    laser_amplitude = 0.15
    laser_omega     = 0.057
    laser_duration_fs = 8.0
    laser_polarization = 0 0 1
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Union

from repro.dcmesh.laser import LaserPulse
from repro.types import Precision

__all__ = ["parse_lfd_input", "write_lfd_input", "LFDInput"]

PathLike = Union[str, Path]


class LFDInput(dict):
    """Parsed ``lfd.in`` keys: ``dt``, ``nsteps``, ``nscf``, ``storage``
    (:class:`Precision`), ``move_ions``, ``seed``, ``laser``
    (:class:`LaserPulse`)."""


_BOOLS = {"true": True, "yes": True, "1": True, "false": False, "no": False, "0": False}


def parse_lfd_input(path: PathLike) -> LFDInput:
    """Parse an ``lfd.in`` namelist."""
    raw: Dict[str, str] = {}
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        body = line.split("#", 1)[0].strip()
        if not body:
            continue
        if "=" not in body:
            raise ValueError(f"{path}:{lineno}: expected 'key = value', got {body!r}")
        key, val = (s.strip() for s in body.split("=", 1))
        raw[key.lower()] = val

    out = LFDInput()
    try:
        out["dt"] = float(raw.get("dt", "0.02"))
        out["nsteps"] = int(raw.get("nsteps", "21000"))
        out["nscf"] = int(raw.get("nscf", "500"))
        storage = raw.get("storage", "fp32").lower()
        out["storage"] = Precision(storage)
        move = raw.get("move_ions", "true").lower()
        if move not in _BOOLS:
            raise ValueError(f"move_ions must be a boolean, got {move!r}")
        out["move_ions"] = _BOOLS[move]
        out["seed"] = int(raw.get("seed", "7"))
        pol = tuple(float(x) for x in raw.get("laser_polarization", "0 0 1").split())
        out["laser"] = LaserPulse(
            amplitude=float(raw.get("laser_amplitude", "0.15")),
            omega=float(raw.get("laser_omega", "0.057")),
            duration_fs=float(raw.get("laser_duration_fs", "8.0")),
            polarization=pol,
        )
        # QXMD/SCF controls (optional; defaults mirror SCFParams).
        out["scf_max_iter"] = int(raw.get("scf_max_iter", "150"))
        out["scf_tol"] = float(raw.get("scf_tol", "1e-7"))
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
    known = {
        "dt", "nsteps", "nscf", "storage", "move_ions", "seed",
        "laser_amplitude", "laser_omega", "laser_duration_fs",
        "laser_polarization", "scf_max_iter", "scf_tol",
    }
    unknown = sorted(set(raw) - known)
    if unknown:
        raise ValueError(f"{path}: unknown keys {unknown}")
    return out


def write_lfd_input(path: PathLike, inp: Dict[str, Any]) -> None:
    """Write an ``lfd.in`` namelist (inverse of :func:`parse_lfd_input`)."""
    laser: LaserPulse = inp["laser"]
    storage: Precision = inp["storage"]
    lines = [
        "# DCMESH lfd.in (reproduction format)",
        f"dt          = {inp['dt']!r}",
        f"nsteps      = {inp['nsteps']}",
        f"nscf        = {inp['nscf']}",
        f"storage     = {storage.value}",
        f"move_ions   = {'true' if inp['move_ions'] else 'false'}",
        f"seed        = {inp['seed']}",
        f"laser_amplitude = {laser.amplitude!r}",
        f"laser_omega     = {laser.omega!r}",
        f"laser_duration_fs = {laser.duration_fs!r}",
        "laser_polarization = "
        + " ".join(repr(float(p)) for p in laser.polarization),
        f"scf_max_iter = {inp.get('scf_max_iter', 150)}",
        f"scf_tol = {inp.get('scf_tol', 1e-7)!r}",
    ]
    Path(path).write_text("\n".join(lines) + "\n")
