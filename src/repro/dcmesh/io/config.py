"""``CONFIG`` — atomic configuration file (positions in bohr).

Format::

    # DCMESH CONFIG
    box   15.0 15.0 15.0
    atom  Pb   0.00  0.00  0.00
    atom  Ti   3.75  3.75  3.75
    ...
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.dcmesh.material import AtomSpec, Material, PTO_SPECIES

__all__ = ["parse_config_file", "write_config_file"]

PathLike = Union[str, Path]


def parse_config_file(
    path: PathLike,
    species: Optional[Dict[str, AtomSpec]] = None,
) -> Material:
    """Parse a ``CONFIG`` file into a :class:`Material`."""
    box = None
    symbols = []
    positions = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        try:
            if parts[0] == "box":
                if len(parts) != 4:
                    raise ValueError("box needs three lengths")
                box = tuple(float(x) for x in parts[1:])
            elif parts[0] == "atom":
                if len(parts) != 5:
                    raise ValueError("atom needs a symbol and three coordinates")
                symbols.append(parts[1])
                positions.append([float(x) for x in parts[2:]])
            else:
                raise ValueError(f"unknown keyword {parts[0]!r}")
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from None
    if box is None:
        raise ValueError(f"{path}: missing box line")
    if not symbols:
        raise ValueError(f"{path}: no atoms")
    return Material(
        symbols,
        np.asarray(positions),
        box,
        dict(PTO_SPECIES) if species is None else dict(species),
    )


def write_config_file(path: PathLike, material: Material) -> None:
    """Write a ``CONFIG`` file (inverse of :func:`parse_config_file`)."""
    lines = ["# DCMESH CONFIG (reproduction format)"]
    lines.append("box   " + " ".join(repr(float(b)) for b in material.box))
    for sym, pos in zip(material.symbols, material.positions):
        lines.append(
            f"atom  {sym:3s} " + " ".join(f"{x!r}" for x in pos.tolist())
        )
    Path(path).write_text("\n".join(lines) + "\n")
