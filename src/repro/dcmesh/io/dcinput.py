"""``PTOquick.dc`` — system and pseudo-species description.

Format (comment lines start with ``#``)::

    # DCMESH system file
    ncells    2 2 2
    lattice   7.5
    mesh      64 64 64
    norb      256
    species   Pb  valence=14 sigma=1.10 nl_strength=0.9 nl_sigma=1.3 mass=207.2
    species   Ti  valence=12 sigma=0.90 nl_strength=1.2 nl_sigma=1.1 mass=47.867
    species   O   valence=2  sigma=0.70 nl_strength=0.5 nl_sigma=0.9 mass=15.999
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple, Union

from repro.dcmesh.material import AtomSpec, PTO_SPECIES

__all__ = ["parse_dc_file", "write_dc_file", "DCSystem"]

PathLike = Union[str, Path]


class DCSystem(dict):
    """Parsed ``.dc`` contents: keys ``ncells``, ``lattice``, ``mesh``,
    ``norb``, ``species`` (dict of :class:`AtomSpec`)."""


def _parse_species_line(rest: str) -> Tuple[str, AtomSpec]:
    parts = rest.split()
    if not parts:
        raise ValueError("species line needs a symbol")
    symbol = parts[0]
    kv: Dict[str, float] = {}
    for token in parts[1:]:
        if "=" not in token:
            raise ValueError(f"malformed species attribute {token!r}")
        key, val = token.split("=", 1)
        kv[key] = float(val)
    required = {"valence", "sigma", "nl_strength", "nl_sigma", "mass"}
    missing = required - kv.keys()
    if missing:
        raise ValueError(f"species {symbol}: missing attributes {sorted(missing)}")
    return symbol, AtomSpec(
        symbol=symbol,
        valence=int(kv["valence"]),
        sigma=kv["sigma"],
        nl_strength=kv["nl_strength"],
        nl_sigma=kv["nl_sigma"],
        mass_amu=kv["mass"],
    )


def parse_dc_file(path: PathLike) -> DCSystem:
    """Parse a ``.dc`` system file."""
    out = DCSystem(species={})
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        key, _, rest = line.partition(" ")
        rest = rest.strip()
        try:
            if key == "ncells":
                out["ncells"] = tuple(int(x) for x in rest.split())
                if len(out["ncells"]) != 3:
                    raise ValueError("ncells needs three integers")
            elif key == "lattice":
                out["lattice"] = float(rest)
            elif key == "mesh":
                out["mesh"] = tuple(int(x) for x in rest.split())
                if len(out["mesh"]) != 3:
                    raise ValueError("mesh needs three integers")
            elif key == "norb":
                out["norb"] = int(rest)
            elif key == "species":
                sym, spec = _parse_species_line(rest)
                out["species"][sym] = spec
            else:
                raise ValueError(f"unknown keyword {key!r}")
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from None
    for required in ("ncells", "lattice", "mesh", "norb"):
        if required not in out:
            raise ValueError(f"{path}: missing required keyword {required!r}")
    if not out["species"]:
        out["species"] = dict(PTO_SPECIES)
    return out


def write_dc_file(
    path: PathLike,
    ncells,
    lattice: float,
    mesh,
    norb: int,
    species: Dict[str, AtomSpec] = None,
) -> None:
    """Write a ``.dc`` system file (inverse of :func:`parse_dc_file`)."""
    species = dict(PTO_SPECIES) if species is None else species
    lines = ["# DCMESH system file (reproduction format)"]
    lines.append(f"ncells    {ncells[0]} {ncells[1]} {ncells[2]}")
    lines.append(f"lattice   {lattice!r}")
    lines.append(f"mesh      {mesh[0]} {mesh[1]} {mesh[2]}")
    lines.append(f"norb      {norb}")
    for sym, spec in species.items():
        lines.append(
            f"species   {sym} valence={spec.valence} sigma={spec.sigma!r} "
            f"nl_strength={spec.nl_strength!r} nl_sigma={spec.nl_sigma!r} "
            f"mass={spec.mass_amu!r}"
        )
    Path(path).write_text("\n".join(lines) + "\n")
