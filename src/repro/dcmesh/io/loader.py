"""Assemble a :class:`SimulationConfig` from the three input files.

This is the reproduction of the artifact's run recipe: point the
loader at a directory containing ``PTOquick.dc``, ``CONFIG`` and
``lfd.in`` (the authors ship different sets for the 40- and 135-atom
systems) and get back a ready-to-run configuration.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.dcmesh.io.config import parse_config_file, write_config_file
from repro.dcmesh.io.dcinput import parse_dc_file, write_dc_file
from repro.dcmesh.io.lfdinput import parse_lfd_input, write_lfd_input
from repro.dcmesh.material import build_pto_supercell
from repro.dcmesh.simulation import SimulationConfig

__all__ = ["load_simulation_config", "save_simulation_config", "INPUT_NAMES"]

PathLike = Union[str, Path]

#: The three files the artifact appendix names.
INPUT_NAMES = ("PTOquick.dc", "CONFIG", "lfd.in")


def load_simulation_config(directory: PathLike) -> SimulationConfig:
    """Build a config from ``PTOquick.dc`` + ``CONFIG`` + ``lfd.in``.

    The ``CONFIG`` file is cross-checked against the ``.dc`` system
    description (atom count must match the supercell).
    """
    directory = Path(directory)
    dc = parse_dc_file(directory / "PTOquick.dc")
    material = parse_config_file(directory / "CONFIG", species=dc["species"])
    lfd = parse_lfd_input(directory / "lfd.in")

    expected_atoms = int(np.prod(dc["ncells"])) * 5
    if material.n_atoms != expected_atoms:
        raise ValueError(
            f"CONFIG has {material.n_atoms} atoms but PTOquick.dc describes "
            f"a {dc['ncells']} supercell ({expected_atoms} atoms)"
        )
    from repro.dcmesh.scf import SCFParams

    return SimulationConfig(
        ncells=dc["ncells"],
        lattice=dc["lattice"],
        mesh_shape=dc["mesh"],
        n_orb=dc["norb"],
        dt=lfd["dt"],
        n_qd_steps=lfd["nsteps"],
        nscf=lfd["nscf"],
        laser=lfd["laser"],
        storage=lfd["storage"],
        move_ions=lfd["move_ions"],
        seed=lfd["seed"],
        scf=SCFParams(max_iter=lfd["scf_max_iter"], tol=lfd["scf_tol"]),
    )


def save_simulation_config(directory: PathLike, config: SimulationConfig) -> None:
    """Write the three input files describing ``config``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_dc_file(
        directory / "PTOquick.dc",
        ncells=config.ncells,
        lattice=config.lattice,
        mesh=config.mesh_shape,
        norb=config.n_orb,
    )
    material = build_pto_supercell(config.ncells, config.lattice,
                                   jitter=config.jitter, seed=config.seed)
    write_config_file(directory / "CONFIG", material)
    write_lfd_input(
        directory / "lfd.in",
        dict(
            dt=config.dt,
            nsteps=config.n_qd_steps,
            nscf=config.nscf,
            storage=config.storage,
            move_ions=config.move_ions,
            seed=config.seed,
            laser=config.laser,
            scf_max_iter=config.scf.max_iter,
            scf_tol=config.scf.tol,
        ),
    )
