"""Checkpoint/restart at SCF block boundaries.

A paper-scale accuracy run is ~2 days per mode (artifact A2); any real
deployment checkpoints.  DCMESH's natural checkpoint granularity is
the SCF block boundary: there the full state is already on the host
(shadow dynamics) and consists of the propagating wavefunction, the
t=0 reference, the ionic phase-space coordinates, the induced-field
state and the step counter.

The format is a single ``.npz`` with a version tag; restarting
reproduces the uninterrupted run *bitwise* (verified by the
integration tests), because the block boundary is exactly where the
run loop re-derives everything else (potentials, propagators) from
this state.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Optional, Union

import numpy as np

__all__ = ["Checkpoint", "save_checkpoint", "load_checkpoint"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


@dataclasses.dataclass
class Checkpoint:
    """Complete LFD/QXMD state at an SCF block boundary."""

    step: int                       #: QD steps completed
    psi: np.ndarray                 #: propagating orbitals (storage dtype)
    psi0: np.ndarray                #: t=0 reference orbitals
    occupations: np.ndarray
    positions: np.ndarray           #: ionic positions, bohr
    velocities: np.ndarray          #: ionic velocities, a.u.
    etot0: float                    #: reference total energy (eexc origin)
    field_a: float = 0.0            #: induced-field amplitude
    field_a_dot: float = 0.0        #: induced-field velocity
    field_last_j: float = 0.0       #: last current fed to the field
    ion_forces: Optional[np.ndarray] = None  #: cached Verlet forces

    def validate_against(self, config) -> None:
        """Cross-check the state shapes against a simulation config."""
        expected = (config.n_grid, config.n_orb)
        if self.psi.shape != expected:
            raise ValueError(
                f"checkpoint psi shape {self.psi.shape} does not match the "
                f"configuration's {expected}"
            )
        if self.positions.shape != (config.n_atoms, 3):
            raise ValueError(
                f"checkpoint has {self.positions.shape[0]} atoms, "
                f"configuration has {config.n_atoms}"
            )
        if not 0 <= self.step <= config.n_qd_steps:
            raise ValueError(
                f"checkpoint step {self.step} outside run range "
                f"[0, {config.n_qd_steps}]"
            )
        if self.step % config.nscf:
            raise ValueError(
                f"checkpoint step {self.step} is not an SCF block boundary "
                f"(nscf={config.nscf})"
            )


def save_checkpoint(path: PathLike, ckpt: Checkpoint) -> None:
    """Write a checkpoint file (np.savez, compressed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        step=ckpt.step,
        psi=ckpt.psi,
        psi0=ckpt.psi0,
        occupations=ckpt.occupations,
        positions=ckpt.positions,
        velocities=ckpt.velocities,
        etot0=ckpt.etot0,
        field_a=ckpt.field_a,
        field_a_dot=ckpt.field_a_dot,
        field_last_j=ckpt.field_last_j,
        # np.savez cannot store None: an empty array marks "absent".
        ion_forces=(
            ckpt.ion_forces if ckpt.ion_forces is not None else np.zeros((0, 3))
        ),
    )


def load_checkpoint(path: PathLike) -> Checkpoint:
    """Read a checkpoint file."""
    with np.load(Path(path)) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format version {version} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        return Checkpoint(
            step=int(data["step"]),
            psi=data["psi"],
            psi0=data["psi0"],
            occupations=data["occupations"],
            positions=data["positions"],
            velocities=data["velocities"],
            etot0=float(data["etot0"]),
            field_a=float(data["field_a"]),
            field_a_dot=float(data["field_a_dot"]),
            field_last_j=float(data["field_last_j"]),
            ion_forces=(
                data["ion_forces"] if data["ion_forces"].size else None
            ),
        )
