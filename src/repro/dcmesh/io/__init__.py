"""DCMESH input/output file formats.

The artifact appendix names three author-provided inputs — the
``PTOquick.dc`` system/pseudopotential file, the ``CONFIG`` atomic
configuration and the ``lfd.in`` LFD namelist — plus the run log whose
QD-step lines Figures 1-2 are plotted from.  The originals are not
public; these are faithful-in-spirit plain-text equivalents with full
round-trip (write -> parse -> identical config) support, so a
reproduction run can be driven entirely from input files, like the
original code.
"""

from repro.dcmesh.io.dcinput import parse_dc_file, write_dc_file
from repro.dcmesh.io.config import parse_config_file, write_config_file
from repro.dcmesh.io.lfdinput import parse_lfd_input, write_lfd_input
from repro.dcmesh.io.output import read_run_log, write_run_log
from repro.dcmesh.io.loader import load_simulation_config, save_simulation_config
from repro.dcmesh.io.checkpoint import Checkpoint, load_checkpoint, save_checkpoint

__all__ = [
    "parse_dc_file",
    "write_dc_file",
    "parse_config_file",
    "write_config_file",
    "parse_lfd_input",
    "write_lfd_input",
    "read_run_log",
    "write_run_log",
    "load_simulation_config",
    "save_simulation_config",
    "Checkpoint",
    "load_checkpoint",
    "save_checkpoint",
]
