"""Current density — the third observable of Fig. 1/2.

"The latter is not directly computed through BLAS, but is still
influenced by computations within BLAS calls, and can be used as a
reference."  (Section V-A.)

In the velocity gauge the (macroscopic, volume-averaged) current along
the laser polarisation is

    j = (1/V) sum_j f_j < psi_j | (k_hat + A) | psi_j >
      = (1/V) [ sum_G (G . e) rho(G) + (A . e) N_el ]

evaluated spectrally: ``rho(G) = sum_j f_j |psi_j(G)|^2 dV-weighted``.
No GEMM is involved — deviations in javg arise solely because the
BLASified ``nlp_prop`` perturbed ``psi``, which is exactly why the
paper treats it as the reference observable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dcmesh.mesh import Mesh

__all__ = ["current_density"]


def current_density(
    psi: np.ndarray,
    occupations: np.ndarray,
    mesh: Mesh,
    a_field: Optional[np.ndarray] = None,
    polarization: np.ndarray = (0.0, 0.0, 1.0),
    device=None,
) -> float:
    """Volume-averaged electronic current along ``polarization`` (a.u.)."""
    psi = np.asarray(psi)
    f = np.asarray(occupations, dtype=np.float64)
    if f.shape != (psi.shape[1],):
        raise ValueError(f"occupations shape {f.shape} != ({psi.shape[1]},)")
    pol = np.asarray(polarization, dtype=np.float64)
    norm = np.linalg.norm(pol)
    if pol.shape != (3,) or norm == 0:
        raise ValueError(f"polarization must be a non-zero 3-vector, got {polarization}")
    pol = pol / norm

    # Spectral momentum density.  Parseval: sum_G |psi(G)|^2 / N = sum_r |psi(r)|^2.
    # The derivative k-grid zeroes the Nyquist modes so a real-valued
    # state carries exactly zero canonical current.
    psig = mesh.fft(psi)
    weights = (np.abs(psig) ** 2 @ f) * (mesh.dv / mesh.n_grid)
    k_par = mesh.kvecs_deriv @ pol
    j_canonical = float(k_par @ weights)
    if device is not None:
        device.record_stream("fft_current", 8 * psi.nbytes, buffer_bytes=psi.nbytes,
                             site="current_density")

    n_el = float(f.sum())
    a_par = float(np.asarray(a_field, dtype=np.float64) @ pol) if a_field is not None else 0.0
    return (j_canonical + a_par * n_el) / mesh.volume
