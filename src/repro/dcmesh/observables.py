"""Per-QD-step observable records and the DCMESH output line.

The artifact appendix describes the run log: "In order from left to
right, these are ekin, epot, etot, eexc, nexc, Aext, and javg" — one
line per QD step inside each MD step's LFD loop.  Figures 1 and 2 are
plotted directly from these columns; we reproduce both the record and
the text format so the harness parses runs exactly the way the authors
did.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List

__all__ = ["QDRecord", "format_qd_line", "parse_qd_line", "COLUMNS"]

#: Column order of the DCMESH QD-step output line.
COLUMNS = ("ekin", "epot", "etot", "eexc", "nexc", "aext", "javg")


@dataclasses.dataclass(frozen=True)
class QDRecord:
    """Observables of one quantum-dynamical step."""

    step: int        #: global QD step index (0-based)
    time_fs: float   #: simulation time, femtoseconds
    ekin: float      #: electronic kinetic energy, Hartree
    epot: float      #: local potential energy, Hartree
    etot: float      #: total electronic energy, Hartree
    eexc: float      #: excitation energy etot(t) - etot(0), Hartree
    nexc: float      #: number of excited electrons
    aext: float      #: laser vector potential along polarisation, a.u.
    javg: float      #: volume-averaged current density, a.u.

    def values(self) -> tuple:
        """The seven observable columns, in DCMESH order."""
        return tuple(getattr(self, c) for c in COLUMNS)


def format_qd_line(record: QDRecord) -> str:
    """One DCMESH-style log line for a QD step."""
    # 17 significant digits: lossless float64 round-trip through text.
    body = " ".join(f"{v: .16e}" for v in record.values())
    return f"QD {record.step:8d} {record.time_fs:.16e} {body}"


def parse_qd_line(line: str) -> QDRecord:
    """Inverse of :func:`format_qd_line`."""
    parts = line.split()
    if len(parts) != 2 + 1 + len(COLUMNS) or parts[0] != "QD":
        raise ValueError(f"not a QD record line: {line!r}")
    step = int(parts[1])
    time_fs = float(parts[2])
    vals = [float(x) for x in parts[3:]]
    return QDRecord(step, time_fs, *vals)


def records_to_columns(records: Iterable[QDRecord]) -> dict:
    """Transpose records into column arrays (plain lists)."""
    recs: List[QDRecord] = list(records)
    out = {"step": [r.step for r in recs], "time_fs": [r.time_fs for r in recs]}
    for c in COLUMNS:
        out[c] = [getattr(r, c) for r in recs]
    return out
