"""Top-level DCMESH driver: QXMD (FP64, CPU) + LFD (storage precision, GPU).

The MD loop structure follows Section V of the paper exactly:

    SCF (FP64)  ->  500 QD steps (LFD, FP32 storage, mode-sensitive BLAS)
                ->  SCF update (FP64)  ->  500 QD steps  ->  ...

Each QD step emits one :class:`~repro.dcmesh.observables.QDRecord`
(ekin/epot/etot/eexc/nexc/Aext/javg), issues exactly nine BLAS calls
(three each in ``nlp_prop``, ``calc_energy``, ``remap_occ``) and books
its streaming kernels on the attached device model, so a single run
yields both the accuracy series (Figs. 1-2) and the timing data
(Fig. 3a) the paper reports.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Callable, List, Optional, Union

import numpy as np

from repro.blas.gemm import use_device
from repro.blas.modes import ComputeMode, compute_mode, resolve_mode
from repro.dcmesh.constants import FS_PER_AU
from repro.dcmesh.current import current_density
from repro.dcmesh.energy import calc_energy
from repro.dcmesh.ions import IonDynamics
from repro.dcmesh.laser import LaserPulse
from repro.dcmesh.material import PTO_LATTICE_BOHR, Material, build_pto_supercell
from repro.dcmesh.maxwell import InducedField
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.nlp import NonlocalPropagator
from repro.dcmesh.observables import QDRecord
from repro.dcmesh.occupation import remap_occ
from repro.dcmesh.projectors import build_projectors
from repro.dcmesh.propagate import LFDPropagator
from repro.dcmesh.scf import SCFParams, SCFResult, SCFSolver
from repro.dcmesh.shadow import TransferLedger
from repro.dcmesh.wavefunction import OrbitalSet
from repro.telemetry.drift import (
    DriftMonitor,
    active_drift_monitor,
    drift_enabled,
    drift_monitoring,
)
from repro.telemetry.registry import active as _telemetry_active
from repro.types import Precision, complex_dtype, real_dtype

__all__ = ["SimulationConfig", "Simulation", "SimulationResult", "estimate_device_bytes"]


@dataclasses.dataclass
class SimulationConfig:
    """Everything needed to reproduce one DCMESH run."""

    ncells: tuple = (2, 2, 2)
    lattice: float = PTO_LATTICE_BOHR
    mesh_shape: tuple = (64, 64, 64)
    n_orb: int = 256
    dt: float = 0.02                  #: QD timestep, a.u. (Table III)
    n_qd_steps: int = 21_000          #: total QD steps (Table III)
    nscf: int = 500                   #: QD steps per SCF block (Section V)
    laser: LaserPulse = dataclasses.field(default_factory=LaserPulse)
    storage: Precision = Precision.FP32   #: LFD storage precision
    move_ions: bool = True
    jitter: float = 0.0               #: initial lattice perturbation, bohr
    seed: int = 7
    scf: SCFParams = dataclasses.field(default_factory=SCFParams)
    #: Maxwell feedback (extension): couple the induced local field
    #: d^2A/dt^2 = -4 pi j back into the propagation.
    induced_field: bool = False
    induced_coupling: float = 1.0

    def __post_init__(self) -> None:
        self.ncells = tuple(int(c) for c in self.ncells)
        self.mesh_shape = tuple(int(s) for s in self.mesh_shape)
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if self.n_qd_steps < 1 or self.nscf < 1:
            raise ValueError("n_qd_steps and nscf must be >= 1")
        if self.storage not in (Precision.FP32, Precision.FP64):
            raise ValueError(
                f"LFD storage must be FP32 or FP64, got {self.storage} "
                "(reduced formats are compute modes, not storage)"
            )
        n_occ = self._n_occupied()
        if self.n_orb <= n_occ:
            raise ValueError(
                f"n_orb={self.n_orb} must exceed the {n_occ} occupied orbitals "
                "so remap_occ has a virtual block"
            )

    def _n_occupied(self) -> int:
        n_cells = int(np.prod(self.ncells))
        return n_cells * 16  # 32 electrons per 5-atom cell

    # -- derived quantities -------------------------------------------------

    @property
    def n_grid(self) -> int:
        return int(np.prod(self.mesh_shape))

    @property
    def n_atoms(self) -> int:
        return int(np.prod(self.ncells)) * 5

    @property
    def n_occupied(self) -> int:
        return self._n_occupied()

    @property
    def total_time_fs(self) -> float:
        return self.n_qd_steps * self.dt * FS_PER_AU

    # -- canonical configurations -------------------------------------------

    @classmethod
    def paper_40(cls, **overrides) -> "SimulationConfig":
        """The paper's 40-atom system: 2x2x2 cells, 64^3 mesh, 256 orbitals."""
        base = dict(ncells=(2, 2, 2), mesh_shape=(64, 64, 64), n_orb=256)
        base.update(overrides)
        return cls(**base)

    @classmethod
    def paper_135(cls, **overrides) -> "SimulationConfig":
        """The paper's 135-atom system: 3x3x3 cells, 96^3 mesh, 1024 orbitals."""
        base = dict(ncells=(3, 3, 3), mesh_shape=(96, 96, 96), n_orb=1024)
        base.update(overrides)
        return cls(**base)

    @classmethod
    def small_test(cls, **overrides) -> "SimulationConfig":
        """A laptop-scale configuration preserving the paper's structure.

        One 5-atom cell, a 12^3 mesh and 24 orbitals (16 occupied + 8
        virtual): the same code path, BLAS shapes proportional to the
        real ones, runs in well under a second per 100 QD steps.
        """
        base = dict(
            ncells=(1, 1, 1),
            mesh_shape=(12, 12, 12),
            n_orb=24,
            n_qd_steps=100,
            nscf=50,
            dt=0.04,
            # The pulse must fit the (very short) simulated window so
            # the dynamics is genuinely field-driven: 0.08 fs = 3.3 a.u.
            # against the default 4 a.u. of simulation.
            laser=LaserPulse(amplitude=0.25, omega=0.3, duration_fs=0.08),
            scf=SCFParams(max_iter=30, tol=1e-7),
        )
        base.update(overrides)
        return cls(**base)


def estimate_device_bytes(config: SimulationConfig) -> int:
    """Device working-set estimate for the Table V capacity claim.

    Two orbital matrices (propagating + reference), two FFT work
    buffers of the same size, plus mesh-resident real fields.
    """
    celem = np.dtype(complex_dtype(config.storage)).itemsize
    relem = np.dtype(real_dtype(config.storage)).itemsize
    psi_bytes = config.n_grid * config.n_orb * celem
    fields = 3 * config.n_grid * relem
    return 4 * psi_bytes + fields


@dataclasses.dataclass
class SimulationResult:
    """Outcome of one DCMESH run."""

    config: SimulationConfig
    mode: ComputeMode
    records: List[QDRecord]
    scf: SCFResult                   #: the initial FP64 ground state
    ledger: TransferLedger
    wall_seconds: float
    device: Optional[object] = None  #: repro.gpu.Device if one was attached
    final_psi: Optional[np.ndarray] = None  #: LFD state at the last step
    #: The :class:`repro.core.scheduler.AdaptiveScheduler` that drove
    #: the run, when one was attached (its ``summary()`` holds the
    #: mode-switch timeline).  Typed loosely: ``repro.core`` imports
    #: this module, so the scheduler class is only imported lazily.
    scheduler: Optional[object] = None

    def final_gram_error(self) -> float:
        """Max |Psi^H Psi dV - I| of the final state — the truncation
        buildup the periodic FP64 SCF update is there to bound."""
        if self.final_psi is None:
            raise ValueError("run did not retain the final state")
        psi = self.final_psi.astype(np.complex128)
        volume = float(np.prod([self.config.lattice * c for c in self.config.ncells]))
        dv = volume / psi.shape[0]
        gram = (psi.conj().T @ psi) * dv
        return float(np.abs(gram - np.eye(gram.shape[0])).max())

    def column(self, name: str) -> np.ndarray:
        """Observable column over time, e.g. ``result.column('nexc')``."""
        if not self.records:
            raise ValueError("run produced no records")
        if name == "time_fs":
            return np.array([r.time_fs for r in self.records])
        if name == "step":
            return np.array([r.step for r in self.records])
        return np.array([getattr(r, name) for r in self.records])

    @property
    def total_device_seconds(self) -> Optional[float]:
        """unitrace-style Total L0 Time, if a device model was attached."""
        return None if self.device is None else self.device.total_l0_time()


class Simulation:
    """One reproducible DCMESH simulation."""

    def __init__(self, config: SimulationConfig, device=None):
        self.config = config
        self.device = device
        self._ground: Optional[SCFResult] = None
        self.material: Optional[Material] = None
        self.mesh: Optional[Mesh] = None
        self._solver: Optional[SCFSolver] = None
        self._device_allocated = False

    # ------------------------------------------------------------------

    def setup(self) -> SCFResult:
        """Build the system and converge the FP64 ground state (QXMD).

        Idempotent: the converged state is cached so several runs (one
        per compute mode) share the identical starting point, as the
        paper's methodology requires.
        """
        cfg = self.config
        if self.device is not None and not self._device_allocated:
            self.device.allocate(estimate_device_bytes(cfg))
            self._device_allocated = True
        if self._ground is not None:
            return self._ground
        self.material = build_pto_supercell(
            cfg.ncells, cfg.lattice, jitter=cfg.jitter, seed=cfg.seed
        )
        self.mesh = Mesh(cfg.mesh_shape, self.material.box)
        projectors = build_projectors(self.material, self.mesh)
        self._solver = SCFSolver(self.mesh, self.material, projectors, cfg.scf)
        tm = _telemetry_active()
        scf_span = (
            tm.span("ground_state_scf", cat="scf", n_orb=cfg.n_orb)
            if tm is not None
            else contextlib.nullcontext()
        )
        with scf_span:
            self._ground = self._solver.solve(cfg.n_orb, seed=cfg.seed)
        return self._ground

    # ------------------------------------------------------------------

    def run(
        self,
        mode: Union[str, ComputeMode, None] = None,
        n_steps: Optional[int] = None,
        progress: Optional[Callable[[int, QDRecord], None]] = None,
        checkpoint_path=None,
        resume_from=None,
        diagnostics=None,
        drift: Union[bool, DriftMonitor, None] = None,
        adaptive: Union[bool, "AdaptiveScheduler", None] = None,  # noqa: F821
        backend: Union[str, "ArrayBackend", None] = None,  # noqa: F821
    ) -> SimulationResult:
        """Run the MD loop for ``n_steps`` QD steps (default: config).

        ``mode`` overrides the ambient compute mode for the whole run
        (the paper's per-run ``MKL_BLAS_COMPUTE_MODE`` export); the
        FP64 QXMD phase is unaffected either way, exactly as in MKL.

        ``checkpoint_path`` writes the state at every interior SCF
        block boundary (overwriting); ``resume_from`` (a
        :class:`~repro.dcmesh.io.checkpoint.Checkpoint` or a path)
        continues such a run — the resumed trajectory is bitwise
        identical to the uninterrupted one.  ``diagnostics`` (a
        :class:`~repro.dcmesh.diagnostics.DiagnosticsCollector`)
        samples unitarity/orthonormality health per step without
        touching the BLAS-call structure.

        ``drift`` attaches a :class:`~repro.telemetry.drift.DriftMonitor`
        that samples nexc/javg/ekin every QD step: pass a configured
        monitor (reference + budget -> live alerts), ``True`` to
        auto-create one, ``False`` to force it off, or leave ``None``
        to follow the ambient installation (``REPRO_DRIFT=1`` /
        ``runner --drift-budget``).  An auto-created monitor derives
        its budget from the first SCF block's ``||H_nl||``.

        ``adaptive`` attaches an
        :class:`~repro.core.scheduler.AdaptiveScheduler`: pass a
        configured scheduler, ``True`` to auto-create one with default
        tuning, ``False`` to force it off, or leave ``None`` to follow
        the ambient request (``REPRO_ADAPTIVE=1`` / ``runner
        --adaptive``).  The scheduler needs the drift monitor's
        utilization signal, so a monitor is auto-created when adaptive
        is on; the monitor's budget then comes from the scheduler's
        ``budget_mode`` (the fixed accuracy contract), not from the
        run's nominal mode.  ``mode`` and an unclamped scheduler are
        mutually exclusive — the scheduler owns the per-site modes.

        ``backend`` selects the :class:`~repro.blas.backend.ArrayBackend`
        executing the level-3 BLAS products for this run (name or
        instance), scoped like ``mode``: installed on entry, restored on
        exit.  ``None`` keeps the ambient backend (``REPRO_BACKEND`` /
        :func:`repro.blas.set_backend`).  Selection never changes the
        numerics *policy* — rounding, splitting and pair ordering stay
        NumPy-side — only who multiplies the component matrices.
        """
        if backend is not None:
            from repro.blas.backend import use_backend

            with use_backend(backend):
                return self.run(
                    mode=mode,
                    n_steps=n_steps,
                    progress=progress,
                    checkpoint_path=checkpoint_path,
                    resume_from=resume_from,
                    diagnostics=diagnostics,
                    drift=drift,
                    adaptive=adaptive,
                )
        cfg = self.config
        ground = self.setup()
        mesh = self.mesh
        # Per-run copies: the ionic subsystem moves during the run, and
        # every compute-mode run must start from the *identical* state
        # ("the exact same computations were performed in each").
        material = Material(
            list(self.material.symbols),
            self.material.positions.copy(),
            self.material.box,
            dict(self.material.species),
        )
        solver = SCFSolver(mesh, material, self._solver.projectors, cfg.scf)
        effective_mode = resolve_mode(mode)
        # Adaptive scheduler: explicit > explicit off > ambient request
        # (REPRO_ADAPTIVE / runner --adaptive).  Lazy import — the
        # scheduler lives in repro.core, which imports this module.
        from repro.core.scheduler import AdaptiveScheduler, adaptive_enabled

        if isinstance(adaptive, AdaptiveScheduler):
            sched = adaptive
        elif adaptive is False:
            sched = None
        else:
            # The ambient request only captures mode-free runs: the
            # static sweeps pass mode= explicitly by design, and those
            # must stay static even under REPRO_ADAPTIVE=1.
            sched = (
                AdaptiveScheduler()
                if (adaptive is True or (adaptive_enabled() and mode is None))
                else None
            )
        if sched is not None and sched.clamp is None and mode is not None:
            raise ValueError(
                "mode= and an unclamped adaptive scheduler are mutually "
                "exclusive (the scheduler owns the per-site modes); use "
                "AdaptiveScheduler(clamp=mode) for a pinned run"
            )
        # Drift observatory: explicit monitor > explicit off > ambient
        # installation (REPRO_DRIFT / --drift-budget auto-creates one).
        # The scheduler consumes the monitor's utilization signal, so
        # adaptive runs always carry a monitor.
        if isinstance(drift, DriftMonitor):
            dm = drift
        elif drift is False:
            dm = None
        else:
            dm = active_drift_monitor()
            if dm is None and (
                drift is True or drift_enabled() or sched is not None
            ):
                dm = DriftMonitor(mode=effective_mode)
        if dm is not None and dm.mode is None:
            dm.mode = effective_mode
        total = cfg.n_qd_steps if n_steps is None else int(n_steps)
        if total < 1:
            raise ValueError(f"n_steps must be >= 1, got {total}")

        cdt = complex_dtype(cfg.storage)
        ledger = TransferLedger()
        records: List[QDRecord] = []
        t_wall0 = time.perf_counter()

        # LFD state at storage precision; reference = t=0 SCF orbitals.
        psi = ground.orbitals.psi.astype(cdt)
        psi0 = psi.copy()
        occupations = ground.orbitals.occupations.copy()
        v_eff = ground.v_eff.copy()
        density = ground.density.copy()
        projectors = solver.projectors
        ions = IonDynamics(material, mesh, dt=cfg.dt * cfg.nscf) if cfg.move_ions else None
        pol = np.asarray(cfg.laser.polarization)
        field = (
            InducedField(cfg.dt, cfg.induced_coupling) if cfg.induced_field else None
        )

        etot0: Optional[float] = None
        step = 0

        if resume_from is not None:
            from repro.dcmesh.io.checkpoint import Checkpoint, load_checkpoint

            ckpt = (
                resume_from
                if isinstance(resume_from, Checkpoint)
                else load_checkpoint(resume_from)
            )
            ckpt.validate_against(cfg)
            if ckpt.step >= total:
                raise ValueError(
                    f"checkpoint at step {ckpt.step} is not before the "
                    f"requested end step {total}"
                )
            step = ckpt.step
            etot0 = ckpt.etot0
            psi0 = ckpt.psi0.astype(cdt)
            occupations = ckpt.occupations.copy()
            material.positions = ckpt.positions.copy()
            if ions is not None:
                ions.velocities = ckpt.velocities.copy()
                ions._forces = (
                    ckpt.ion_forces.copy() if ckpt.ion_forces is not None else None
                )
            if field is not None:
                field.a = ckpt.field_a
                field.a_dot = ckpt.field_a_dot
                field._last_j = ckpt.field_last_j
            # Re-derive the block-boundary potentials exactly as the
            # uninterrupted run does after its SCF update.
            solver.refresh_ionic()
            projectors = build_projectors(material, mesh)
            solver.projectors = projectors
            boundary = OrbitalSet(
                ckpt.psi.astype(np.complex128), occupations.copy(), mesh
            )
            density = boundary.density()
            v_eff = solver.effective_potential(density)
            psi = boundary.psi.astype(cdt)

        def total_field(t_au: float) -> np.ndarray:
            a = cfg.laser.vector_potential(t_au)
            if field is not None:
                a = a + field.a * pol
            return a

        def observe(t_au: float, psi_now: np.ndarray, h_nl_sub64: np.ndarray) -> QDRecord:
            nonlocal etot0
            a = total_field(t_au)
            e = calc_energy(
                psi_now, psi0, occupations, mesh, v_eff, h_nl_sub64,
                a_field=a, device=self.device,
            )
            r = remap_occ(psi_now, psi0, occupations, mesh)
            j = current_density(
                psi_now, occupations, mesh, a_field=a, polarization=pol,
                device=self.device,
            )
            if etot0 is None:
                etot0 = e.etot
            return QDRecord(
                step=step,
                time_fs=t_au * FS_PER_AU,
                ekin=e.ekin,
                epot=e.epot,
                etot=e.etot,
                eexc=e.etot - etot0,
                nexc=r.nexc,
                aext=cfg.laser.scalar_amplitude(t_au),
                javg=j,
            )

        # Install the monitor ambiently for the loop so the propagator's
        # QD-step hook ticks it even when it was passed explicitly.
        dm_scope = (
            drift_monitoring(dm)
            if dm is not None and active_drift_monitor() is not dm
            else contextlib.nullcontext()
        )
        # The scheduler's policy resolves ahead of the compute_mode
        # context (per-call priority: explicit > policy > context), so
        # installing both keeps the FP64 phase's behaviour intact while
        # the scheduler owns the labelled LFD sites.
        sched_scope = sched.scope() if sched is not None else contextlib.nullcontext()
        with dm_scope, use_device(self.device), sched_scope:
            with compute_mode(effective_mode):
                remaining = total - step
                while remaining > 0:
                    block = min(cfg.nscf, remaining)
                    # QXMD -> LFD: ship the block's state to the device
                    # (shadow dynamics: the only bulk transfers).
                    ledger.record("psi_h2d", "h2d", psi.nbytes, step)
                    ledger.record("veff_h2d", "h2d", v_eff.nbytes, step)
                    if self.device is not None:
                        self.device.record_copy("psi_h2d", psi.nbytes, site="shadow")

                    # Per-block FP64 (QXMD) work: nonlocal subspace operator.
                    h_nl_sub = projectors.subspace_matrix(
                        psi0.astype(np.complex128)
                    )
                    if dm is not None and dm.budget is None:
                        if sched is not None and sched.clamp is None:
                            # Adaptive runs police a *fixed* contract:
                            # the scheduler's budget_mode envelope, not
                            # whatever mode is currently active.
                            dm.set_budget_for_mode(
                                sched.budget_mode,
                                cfg.dt,
                                float(np.linalg.norm(h_nl_sub)),
                                headroom=sched.config.budget_headroom,
                            )
                        else:
                            dm.set_budget_for_mode(
                                effective_mode, cfg.dt, float(np.linalg.norm(h_nl_sub))
                            )
                    nlp = NonlocalPropagator(psi0, h_nl_sub, cfg.dt, mesh)
                    prop = LFDPropagator(
                        mesh, v_eff, nlp, cfg.laser, cfg.dt,
                        storage_dtype=cdt, device=self.device,
                    )

                    if step == 0:
                        rec0 = observe(0.0, psi, h_nl_sub)
                        records.append(rec0)
                        if dm is not None:
                            dm.observe(rec0)
                        if diagnostics is not None:
                            diagnostics.observe(0, psi, rec0.etot)

                    tm = _telemetry_active()
                    block_span = (
                        tm.span("scf_block", cat="scf", start_step=step, block=block)
                        if tm is not None
                        else contextlib.nullcontext()
                    )
                    with block_span:
                        for _ in range(block):
                            t_au = step * cfg.dt
                            a_ind = field.a * pol if field is not None else None
                            psi = prop.step(psi, t_au, a_extra=a_ind)
                            step += 1
                            rec = observe(step * cfg.dt, psi, h_nl_sub)
                            records.append(rec)
                            if dm is not None:
                                dm.observe(rec)
                                if sched is not None:
                                    sched.on_step(step, dm)
                            if field is not None:
                                field.step(rec.javg)
                            if diagnostics is not None:
                                diagnostics.observe(step, psi, rec.etot)
                            if progress is not None:
                                progress(step, rec)
                    remaining -= block

                    # LFD -> QXMD: bring the state home for the FP64
                    # SCF update (Section V: bounds truncation-error
                    # buildup) and the ionic step.
                    ledger.record("psi_d2h", "d2h", psi.nbytes, step)
                    if self.device is not None:
                        self.device.record_copy("psi_d2h", psi.nbytes, site="shadow")
                    # SCF refresh invalidation point: psi0 stays frozen
                    # across blocks by construction, but the split-plan
                    # cache must never trust that silently — re-validate
                    # the prepared operands' content so any in-place
                    # mutation (extensions, future psi0 re-anchoring)
                    # drops the stale splits before the next block.
                    prop.refresh_plans()
                    # SCF boundary: the scheduler reads the block's
                    # alert tally before the monitor's warn/breach
                    # latches re-arm — a breach in the *next* block
                    # must fire fresh alerts, not be swallowed by a
                    # latch set blocks ago.
                    if sched is not None:
                        sched.on_scf_boundary(step, dm)
                    if dm is not None:
                        dm.reset_alert_latches(step)
                    if remaining > 0:
                        update_span = (
                            tm.span("qxmd_update", cat="scf", step=step)
                            if tm is not None
                            else contextlib.nullcontext()
                        )
                        with update_span:
                            work = OrbitalSet(
                                psi.astype(np.complex128), occupations.copy(), mesh
                            )
                            if ions is not None:
                                ions.step(work.density())
                                solver.refresh_ionic()
                                projectors = build_projectors(material, mesh)
                                solver.projectors = projectors
                            updated = solver.update(work)
                            psi = updated.orbitals.psi.astype(cdt)
                            v_eff = updated.v_eff
                            density = updated.density
                        if checkpoint_path is not None:
                            from repro.dcmesh.io.checkpoint import (
                                Checkpoint,
                                save_checkpoint,
                            )

                            save_checkpoint(
                                checkpoint_path,
                                Checkpoint(
                                    step=step,
                                    psi=updated.orbitals.psi,
                                    psi0=psi0,
                                    occupations=occupations,
                                    positions=material.positions,
                                    velocities=(
                                        ions.velocities
                                        if ions is not None
                                        else np.zeros((material.n_atoms, 3))
                                    ),
                                    etot0=float(etot0),
                                    field_a=field.a if field is not None else 0.0,
                                    field_a_dot=(
                                        field.a_dot if field is not None else 0.0
                                    ),
                                    field_last_j=(
                                        field._last_j if field is not None else 0.0
                                    ),
                                    ion_forces=(
                                        ions._forces if ions is not None else None
                                    ),
                                ),
                            )

        # Drop the run's prepared-operand registry entry: the next run
        # starts from a fresh psi0 copy, so the cached splits (several
        # times psi0's footprint) must not outlive the trajectory.
        from repro.blas.plan import release

        release(psi0)

        if dm is not None:
            dm.finalize()

        return SimulationResult(
            config=cfg,
            mode=effective_mode,
            records=records,
            scf=ground,
            ledger=ledger,
            wall_seconds=time.perf_counter() - t_wall0,
            device=self.device,
            final_psi=psi,
            scheduler=sched,
        )
