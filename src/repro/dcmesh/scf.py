"""QXMD phase: FP64 Self-Consistent-Field solver.

"The QXMD portion of the code, which is run exclusively on CPU ...
can only be run using FP64 precision as this represents a critical
portion of the simulation wherein the wavefunction is initialized by
the Self-Consistent Field (SCF) method."  (Section IV-C.)

This module is that portion: a density-mixing SCF with a
preconditioned block-steepest-descent eigensolver and Rayleigh–Ritz
subspace rotation.  It runs strictly in FP64 and is *never* touched by
the BLAS compute modes (oneMKL's ``FLOAT_TO_*`` modes only affect
single-precision routines — mirrored in :mod:`repro.blas.gemm`).

The Kohn–Sham-like functional keeps the pieces that matter to the
dynamics study: ionic Gaussian wells, Hartree repulsion (spectral
Poisson solve) and an LDA-exchange term.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.dcmesh.hamiltonian import Hamiltonian, ionic_potential
from repro.dcmesh.material import Material
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.projectors import ProjectorSet
from repro.dcmesh.wavefunction import OrbitalSet

__all__ = ["SCFParams", "SCFResult", "SCFSolver"]


@dataclasses.dataclass
class SCFParams:
    """Knobs of the SCF loop."""

    max_iter: int = 150           #: outer density iterations
    inner_steps: int = 4          #: descent steps per outer iteration
    mixing: float = 0.3           #: initial linear density mixing fraction
    tol: float = 1e-7             #: relative band-energy convergence
    use_hartree: bool = True
    use_xc: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.mixing <= 1:
            raise ValueError(f"mixing must be in (0, 1], got {self.mixing}")
        if self.max_iter < 1 or self.inner_steps < 1:
            raise ValueError("max_iter and inner_steps must be >= 1")


@dataclasses.dataclass
class SCFResult:
    """Converged (or best-effort) SCF state."""

    orbitals: OrbitalSet           #: FP64 Kohn–Sham orbitals
    eigenvalues: np.ndarray        #: Rayleigh–Ritz eigenvalues, Hartree
    v_eff: np.ndarray              #: effective local potential on the mesh
    density: np.ndarray            #: electron density
    band_energy: float             #: sum_j f_j eps_j
    n_iter: int
    converged: bool
    history: List[float]           #: band energy per outer iteration


class SCFSolver:
    """FP64 SCF driver for one material + mesh."""

    def __init__(
        self,
        mesh: Mesh,
        material: Material,
        projectors: Optional[ProjectorSet] = None,
        params: Optional[SCFParams] = None,
    ):
        self.mesh = mesh
        self.material = material
        self.projectors = projectors
        self.params = params or SCFParams()
        self.v_ion = ionic_potential(material, mesh)
        # Poisson kernel 4*pi/|G|^2 with the G=0 (net charge) term
        # dropped — the usual neutralising-background convention.
        k2 = mesh.k2.copy()
        k2[k2 == 0] = np.inf
        self._poisson_kernel = 4.0 * np.pi / k2

    # ------------------------------------------------------------------
    # Potentials.
    # ------------------------------------------------------------------

    def hartree_potential(self, density: np.ndarray) -> np.ndarray:
        """Spectral Poisson solve: ``V_H(G) = 4 pi n(G) / G^2``."""
        ng = self.mesh.fft(np.asarray(density, dtype=np.complex128))
        vg = ng * self._poisson_kernel
        return self.mesh.ifft(vg).real

    @staticmethod
    def xc_potential(density: np.ndarray) -> np.ndarray:
        """LDA exchange: ``v_x = -(3 n / pi)^(1/3)``."""
        n = np.clip(np.asarray(density, dtype=np.float64), 0.0, None)
        return -np.cbrt(3.0 * n / np.pi)

    def effective_potential(self, density: np.ndarray) -> np.ndarray:
        """Ionic + Hartree + XC local potential."""
        v = self.v_ion.copy()
        if self.params.use_hartree:
            v += self.hartree_potential(density)
        if self.params.use_xc:
            v += self.xc_potential(density)
        return v

    def refresh_ionic(self) -> None:
        """Rebuild the ionic potential after atoms moved (MD step)."""
        self.v_ion = ionic_potential(self.material, self.mesh)

    # ------------------------------------------------------------------
    # Eigensolver inner loop.
    # ------------------------------------------------------------------

    def _preconditioner(self, psig: np.ndarray, kinetic_scale: float) -> np.ndarray:
        """Teter-style smoothing: damp high-|k| residual components."""
        damp = 1.0 / (1.0 + self.mesh.k2 / max(kinetic_scale, 1e-3))
        return psig * damp[:, None]

    def _descend(self, orbitals: OrbitalSet, h: Hamiltonian) -> np.ndarray:
        """Preconditioned steepest-descent sweeps + Rayleigh–Ritz.

        Returns the Rayleigh–Ritz eigenvalues; rotates orbitals in
        place to the Ritz vectors sorted by eigenvalue.
        """
        mesh = self.mesh
        psi = orbitals.psi
        for _ in range(self.params.inner_steps):
            hpsi = h.apply(psi)
            lam = np.real(np.sum(psi.conj() * hpsi, axis=0)) * mesh.dv
            resid = hpsi - psi * lam[None, :]
            rg = mesh.fft(resid)
            rg = self._preconditioner(rg, kinetic_scale=2.0 * max(lam.max(), 1.0))
            psi = psi - mesh.ifft(rg)
            orbitals.psi = psi
            orbitals.orthonormalize()
            psi = orbitals.psi
        # Rayleigh–Ritz rotation.
        hsub = h.subspace(psi)
        hsub = 0.5 * (hsub + hsub.conj().T)
        vals, vecs = np.linalg.eigh(hsub)
        orbitals.psi = psi @ vecs
        return vals

    # ------------------------------------------------------------------
    # Outer SCF loop.
    # ------------------------------------------------------------------

    def solve(
        self,
        n_orb: int,
        seed: int = 0,
        initial: Optional[OrbitalSet] = None,
    ) -> SCFResult:
        """Converge the ground state with ``n_orb`` orbitals (FP64)."""
        n_occ = self.material.n_occupied
        if n_orb < n_occ:
            raise ValueError(
                f"n_orb={n_orb} cannot hold {self.material.n_electrons} electrons "
                f"({n_occ} doubly-occupied orbitals needed)"
            )
        if initial is not None:
            orbitals = OrbitalSet(
                initial.psi.astype(np.complex128), initial.occupations.copy(), self.mesh
            )
        else:
            orbitals = OrbitalSet.random(self.mesh, n_orb, n_occ, seed=seed)

        density = orbitals.density()
        history: List[float] = []
        converged = False
        vals = np.zeros(n_orb)
        v_eff = self.effective_potential(density)
        last_e = np.inf
        last_delta = np.inf
        mixing = self.params.mixing
        it = 0
        for it in range(1, self.params.max_iter + 1):
            h = Hamiltonian(self.mesh, v_eff, self.projectors)
            vals = self._descend(orbitals, h)
            band_e = float(vals @ orbitals.occupations)
            history.append(band_e)
            new_density = orbitals.density()
            density = (1.0 - mixing) * density + mixing * new_density
            v_eff = self.effective_potential(density)
            scale = max(abs(band_e), 1.0)
            delta = abs(band_e - last_e) / scale
            if delta < self.params.tol:
                converged = True
                break
            # Adaptive damping: a growing energy change signals charge
            # sloshing (a mixing limit cycle); back the mixing off.
            if delta > last_delta:
                mixing = max(0.05, 0.7 * mixing)
            last_delta = delta
            last_e = band_e

        return SCFResult(
            orbitals=orbitals,
            eigenvalues=vals,
            v_eff=v_eff,
            density=density,
            band_energy=history[-1],
            n_iter=it,
            converged=converged,
            history=history,
        )

    def update(self, orbitals: OrbitalSet, n_iter: int = 4) -> SCFResult:
        """Short FP64 re-convergence at an SCF block boundary.

        This is the "execute SCF at FP64 to update the wave function"
        step performed after every series of 500 QD steps: the shadow
        orbitals are re-orthonormalised in FP64 and the potential is
        refreshed for the (possibly moved) ions.  It intentionally does
        *not* reset the state to the ground state — the excited
        dynamics must survive.
        """
        work = OrbitalSet(
            orbitals.psi.astype(np.complex128), orbitals.occupations.copy(), self.mesh
        )
        work.orthonormalize()
        density = work.density()
        v_eff = self.effective_potential(density)
        h = Hamiltonian(self.mesh, v_eff, self.projectors)
        hsub = h.subspace(work.psi)
        hsub = 0.5 * (hsub + hsub.conj().T)
        vals = np.linalg.eigvalsh(hsub)
        return SCFResult(
            orbitals=work,
            eigenvalues=vals,
            v_eff=v_eff,
            density=density,
            band_energy=float(np.sort(vals)[: work.n_occupied].sum() * 2.0),
            n_iter=n_iter,
            converged=True,
            history=[],
        )
