"""Optical spectra from the QD-step current trace.

Standard LFD post-processing: the macroscopic current ``j(t)`` recorded
every QD step carries the system's linear and nonlinear optical
response.  Two analyses are provided:

* :func:`power_spectrum` — |FFT of j(t)|^2 against energy, the raw
  emission/HHG spectrum;
* :func:`absorption_spectrum` — Im[sigma(omega)] via the current-field
  response ``sigma = j(omega) / E(omega)``, the optical-conductivity
  route to the absorption cross-section (windowed and damped so finite
  traces behave).

Both operate directly on :class:`~repro.dcmesh.observables.QDRecord`
lists, so they compose with run logs read back from disk.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.dcmesh.constants import AU_PER_FS, HARTREE_EV
from repro.dcmesh.observables import QDRecord

__all__ = ["Spectrum", "power_spectrum", "absorption_spectrum"]


@dataclasses.dataclass(frozen=True)
class Spectrum:
    """One-sided spectrum on an energy axis."""

    energy_ev: np.ndarray      #: photon energy grid, eV
    values: np.ndarray         #: spectral values (units depend on type)
    kind: str                  #: 'power' or 'absorption'

    def peak_energy(self, window_ev: Optional[tuple] = None) -> float:
        """Energy of the strongest feature, optionally within a window."""
        e, v = self.energy_ev, np.abs(self.values)
        if window_ev is not None:
            lo, hi = window_ev
            mask = (e >= lo) & (e <= hi)
            if not mask.any():
                raise ValueError(f"no samples inside window {window_ev}")
            e, v = e[mask], v[mask]
        return float(e[np.argmax(v)])


def _trace(records: Sequence[QDRecord], column: str) -> np.ndarray:
    return np.array([getattr(r, column) for r in records], dtype=np.float64)


def _time_axis_au(records: Sequence[QDRecord]) -> np.ndarray:
    t = np.array([r.time_fs for r in records]) * AU_PER_FS
    if len(t) < 4:
        raise ValueError(f"need at least 4 records for a spectrum, got {len(t)}")
    dts = np.diff(t)
    if not np.allclose(dts, dts[0], rtol=1e-6):
        raise ValueError("records are not uniformly spaced in time")
    return t


def _window(n: int) -> np.ndarray:
    """Hann window — suppresses finite-trace ringing."""
    return 0.5 * (1.0 - np.cos(2.0 * np.pi * np.arange(n) / max(n - 1, 1)))


def power_spectrum(records: Sequence[QDRecord], damping: float = 0.0) -> Spectrum:
    """|j(omega)|^2 of the current trace (emission / HHG spectrum).

    ``damping`` (a.u. of inverse time) applies an exponential decay
    ``exp(-damping * t)`` before transforming, broadening lines that a
    finite trace would otherwise truncate.
    """
    t = _time_axis_au(records)
    dt = t[1] - t[0]
    j = _trace(records, "javg")
    j = (j - j[0]) * _window(len(j))
    if damping > 0:
        j = j * np.exp(-damping * (t - t[0]))
    jw = np.fft.rfft(j)
    omega = 2.0 * np.pi * np.fft.rfftfreq(len(j), d=dt)
    return Spectrum(
        energy_ev=omega * HARTREE_EV,
        values=np.abs(jw) ** 2,
        kind="power",
    )


def absorption_spectrum(
    records: Sequence[QDRecord],
    laser,
    damping: float = 5e-3,
) -> Spectrum:
    """Im[sigma(omega)]-style absorption from current and driving field.

    ``sigma(omega) = j(omega) / E(omega)``; the imaginary part of the
    resulting conductivity (equivalently ``omega * Im[alpha]``) marks
    absorbing transitions.  Only frequencies where the pulse carries
    spectral weight are meaningful; the rest are masked to zero.

    Parameters
    ----------
    records:
        QD records of a run driven by ``laser``.
    laser:
        The :class:`~repro.dcmesh.laser.LaserPulse` of that run (used
        to reconstruct E(t) on the same time grid).
    damping:
        Exponential damping of both traces (a.u.).
    """
    t = _time_axis_au(records)
    dt = t[1] - t[0]
    pol = np.asarray(laser.polarization)
    j = _trace(records, "javg")
    e_field = np.array([float(laser.electric_field(ti) @ pol) for ti in t])
    win = _window(len(t))
    decay = np.exp(-damping * (t - t[0]))
    jw = np.fft.rfft((j - j[0]) * win * decay)
    ew = np.fft.rfft(e_field * win * decay)
    omega = 2.0 * np.pi * np.fft.rfftfreq(len(t), d=dt)

    # Mask out frequencies the pulse cannot probe.
    weight = np.abs(ew)
    mask = weight > 1e-6 * weight.max()
    sigma = np.zeros_like(jw)
    sigma[mask] = jw[mask] / ew[mask]
    return Spectrum(
        energy_ev=omega * HARTREE_EV,
        values=np.imag(sigma),
        kind="absorption",
    )
