"""Separable (Kleinman–Bylander-style) nonlocal projectors.

Each atom contributes one Gaussian projector channel; the nonlocal
potential is ``V_nl = sum_a |p_a> D_a <p_a|`` with normalised
projectors.  In DCMESH the *application* of this operator to the
propagating wavefunctions is not done on the mesh: it is remapped to
the subspace of t=0 Kohn–Sham orbitals, which turns it into the dense
``N_grid x N_orb`` GEMMs the whole paper is about
(:mod:`repro.dcmesh.nlp`).  Here on the mesh it is only needed in the
FP64 QXMD phase (SCF) and when building the subspace operator.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.dcmesh.material import Material
from repro.dcmesh.mesh import Mesh

__all__ = ["ProjectorSet", "build_projectors"]


@dataclasses.dataclass
class ProjectorSet:
    """Projector matrix plus channel couplings.

    ``p`` has shape ``(N_grid, N_proj)`` (real, FP64); ``d`` holds the
    channel strengths (Hartree).  Projector columns are L2-normalised
    on the mesh: ``integral |p_i|^2 dV = 1``.
    """

    p: np.ndarray
    d: np.ndarray
    mesh: Mesh

    def __post_init__(self) -> None:
        if self.p.ndim != 2:
            raise ValueError(f"projector matrix must be 2-D, got {self.p.shape}")
        if self.d.shape != (self.p.shape[1],):
            raise ValueError(
                f"couplings shape {self.d.shape} does not match {self.p.shape[1]} projectors"
            )

    @property
    def n_proj(self) -> int:
        return self.p.shape[1]

    def apply(self, psi: np.ndarray) -> np.ndarray:
        """``V_nl psi`` on the mesh (FP64 path used by QXMD/SCF)."""
        # <p_i|psi_j> dV for all channels and orbitals.
        overlaps = (self.p.T @ psi) * self.mesh.dv        # (N_proj, N_orb)
        return self.p @ (self.d[:, None] * overlaps)

    def subspace_matrix(self, psi: np.ndarray) -> np.ndarray:
        """``<psi_i| V_nl |psi_j>`` — the dense N_orb x N_orb operator
        DCMESH propagates with in the Kohn–Sham subspace (FP64)."""
        overlaps = (self.p.T @ psi) * self.mesh.dv        # (N_proj, N_orb)
        return overlaps.conj().T @ (self.d[:, None] * overlaps)


def build_projectors(material: Material, mesh: Mesh) -> ProjectorSet:
    """Build one normalised Gaussian projector per atom.

    Uses minimum-image distances so projectors respect the periodic
    box.  FP64 throughout — this is QXMD-side data.
    """
    n_atoms = material.n_atoms
    p = np.empty((mesh.n_grid, n_atoms), dtype=np.float64)
    d = np.empty(n_atoms)
    for a, (spec, pos) in enumerate(zip(material.specs, material.positions)):
        r = mesh.distances_to(pos)
        col = np.exp(-0.5 * (r / spec.nl_sigma) ** 2)
        norm = np.sqrt(np.sum(col**2) * mesh.dv)
        if norm == 0:
            raise ValueError(f"projector for atom {a} vanished on the mesh")
        p[:, a] = col / norm
        d[a] = spec.nl_strength
    return ProjectorSet(p=p, d=d, mesh=mesh)
