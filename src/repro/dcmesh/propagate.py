"""LFD split-operator propagation of the electronic wavefunctions.

One quantum-dynamical (QD) step advances ``Psi`` by ``dt`` under the
frozen effective potential of the current SCF block and the
time-dependent laser field:

    Psi <- e^{-i V dt/2}  F^{-1} e^{-i (k+A)^2 dt / 2} F  e^{-i V dt/2} Psi
    Psi <- nlp_prop(Psi)                # BLASified nonlocal correction

The pointwise phases and FFTs are identical in every compute-mode run
("The exact same computations were performed in each" — Section V-A):
the *only* arithmetic that differs across the paper's configurations
is inside the three BLAS calls of :class:`~repro.dcmesh.nlp.NonlocalPropagator`.
All phases are prepared in FP64 and cast to storage precision once, so
mode-to-mode bitwise divergence cannot creep in through them.

When a modelled :class:`repro.gpu.Device` is attached, every kernel
books its streaming cost (the 20 passes per step that dominate the
40-atom runtime) and the GEMMs book their modelled times — this is how
Fig. 3a's end-to-end numbers are produced at paper scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dcmesh.laser import LaserPulse
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.nlp import NonlocalPropagator
from repro.telemetry.drift import active_drift_monitor as _drift_active
from repro.telemetry.registry import active as _telemetry_active

__all__ = ["LFDPropagator"]


class LFDPropagator:
    """Split-operator stepper at a fixed storage precision."""

    def __init__(
        self,
        mesh: Mesh,
        v_eff: np.ndarray,
        nlp: NonlocalPropagator,
        laser: LaserPulse,
        dt: float,
        storage_dtype=np.complex64,
        device=None,
    ):
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        v_eff = np.asarray(v_eff, dtype=np.float64)
        if v_eff.shape != (mesh.n_grid,):
            raise ValueError(f"v_eff must be flat (N_grid,), got {v_eff.shape}")
        self.mesh = mesh
        self.laser = laser
        self.dt = float(dt)
        self.nlp = nlp
        self.device = device
        self.storage_dtype = np.dtype(storage_dtype)
        # Half-step local phase, FP64-prepared, cast once to storage.
        self.v_phase = np.exp(-0.5j * self.dt * v_eff).astype(self.storage_dtype)
        # Field-free kinetic phase; the A-dependent factor is per-step.
        self.k_phase0 = np.exp(-0.5j * self.dt * mesh.k2).astype(self.storage_dtype)

    def invalidate_plans(self) -> None:
        """Drop the nonlocal propagator's cached operand plans.

        Call when the reference orbitals are mutated in place without
        rebuilding the :class:`NonlocalPropagator`.
        """
        self.nlp.invalidate_plans()

    def refresh_plans(self) -> bool:
        """Content-revalidate the frozen-operand plans (SCF refresh).

        Delegates to :meth:`NonlocalPropagator.refresh_plans`; the MD
        driver calls this at every SCF block boundary so a plan can
        never outlive the bytes it was derived from.
        """
        return self.nlp.refresh_plans()

    def kinetic_phase(self, t: float, a_extra: Optional[np.ndarray] = None) -> np.ndarray:
        """Full kinetic phase ``exp(-i (k+A(t))^2 dt / 2)`` at time ``t``.

        ``a_extra`` adds a further vector-potential contribution — the
        induced local field when Maxwell feedback is enabled.
        """
        a = self.laser.vector_potential(t)
        if a_extra is not None:
            a = a + np.asarray(a_extra, dtype=np.float64)
        if not np.any(a):
            return self.k_phase0
        cross = self.mesh.kvecs @ a + 0.5 * float(a @ a)
        extra = np.exp(-1j * self.dt * cross).astype(self.storage_dtype)
        return self.k_phase0 * extra

    def step(
        self,
        psi: np.ndarray,
        t: float,
        a_extra: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Advance ``psi`` from ``t`` to ``t + dt``; returns the new state.

        With telemetry installed, the whole step is timed as one
        ``qd_step`` span (the per-phase unit the paper's Fig. 3a
        accounting is built from); otherwise the path is untouched.
        An ambient :class:`~repro.telemetry.drift.DriftMonitor` gets a
        per-step tick so its step accounting is independent of the
        driver's observe cadence.  Both disabled paths are one global
        read each.
        """
        dm = _drift_active()
        if dm is not None:
            dm.note_qd_step(t)
        tm = _telemetry_active()
        if tm is None:
            return self._step_impl(psi, t, a_extra)
        tm.count("lfd.qd_steps")
        with tm.span("qd_step", cat="lfd", t_au=t):
            return self._step_impl(psi, t, a_extra)

    def _step_impl(
        self,
        psi: np.ndarray,
        t: float,
        a_extra: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        psi = np.asarray(psi)
        if psi.dtype != self.storage_dtype:
            raise TypeError(
                f"psi dtype {psi.dtype} does not match LFD storage {self.storage_dtype}"
            )
        dev = self.device
        nbytes = psi.nbytes
        # Half kick in the local potential (pointwise).
        psi = self.v_phase[:, None] * psi
        if dev is not None:
            dev.record_stream("vloc_kick", 2 * nbytes, buffer_bytes=nbytes, site="lfd_step")
        # Kinetic drift at the mid-step field value (spectral).
        psig = self.mesh.fft(psi)
        if dev is not None:
            dev.record_stream("fft_forward", 6 * nbytes, buffer_bytes=nbytes, site="lfd_step")
        psig *= self.kinetic_phase(t + 0.5 * self.dt, a_extra=a_extra)[:, None]
        if dev is not None:
            dev.record_stream("kinetic_phase", 2 * nbytes, buffer_bytes=nbytes, site="lfd_step")
        psi = self.mesh.ifft(psig).astype(self.storage_dtype, copy=False)
        if dev is not None:
            dev.record_stream("fft_inverse", 6 * nbytes, buffer_bytes=nbytes, site="lfd_step")
        # Second half kick.
        psi = self.v_phase[:, None] * psi
        if dev is not None:
            dev.record_stream("vloc_kick", 2 * nbytes, buffer_bytes=nbytes, site="lfd_step")
        # BLASified nonlocal correction — the paper's Eq. 1.  When the
        # propagator owns a device, make sure the GEMMs book on it even
        # outside a wider use_device scope.
        if dev is not None:
            from repro.blas.gemm import use_device

            with use_device(dev):
                psi = self.nlp.apply(psi)
        else:
            psi = self.nlp.apply(psi)
        return psi
