"""Finite-difference Laplacian stencils on the periodic mesh.

"The electronic wave functions are represented on a finite-difference
mesh for simple data parallelism in LFD" (Section IV-D).  The
reproduction's propagator is spectral (exact kinetic phases keep the
precision study clean), but the finite-difference operators the real
code sweeps are provided here: central-difference Laplacians of order
2, 4, 6 and 8 with standard coefficients, applied via periodic
``np.roll`` sweeps — one pass per stencil point, exactly the streaming
kernels the device model books.

The convergence tests pin the implementation: on a plane wave the
order-``p`` stencil's eigenvalue approaches ``-|k|^2`` as
``O(h^p)``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.dcmesh.mesh import Mesh

__all__ = [
    "STENCIL_COEFFICIENTS",
    "laplacian_apply",
    "laplacian_eigenvalue_1d",
    "kinetic_apply_fd",
]

#: Central-difference second-derivative coefficients (offset 0..p/2),
#: in units of 1/h^2.  Standard values; see e.g. Fornberg (1988).
STENCIL_COEFFICIENTS: Dict[int, Tuple[float, ...]] = {
    2: (-2.0, 1.0),
    4: (-5.0 / 2.0, 4.0 / 3.0, -1.0 / 12.0),
    6: (-49.0 / 18.0, 3.0 / 2.0, -3.0 / 20.0, 1.0 / 90.0),
    8: (-205.0 / 72.0, 8.0 / 5.0, -1.0 / 5.0, 8.0 / 315.0, -1.0 / 560.0),
}


def _check_order(order: int) -> Tuple[float, ...]:
    try:
        return STENCIL_COEFFICIENTS[order]
    except KeyError:
        raise ValueError(
            f"unsupported stencil order {order}; available: "
            f"{sorted(STENCIL_COEFFICIENTS)}"
        ) from None


def laplacian_apply(mesh: Mesh, psi: np.ndarray, order: int = 4) -> np.ndarray:
    """Periodic FD Laplacian of orbital columns, ``(N_grid, N_orb)``.

    One ``np.roll`` pair per off-centre coefficient per dimension — the
    memory-sweep structure of the real LFD stencil kernels.
    """
    coeffs = _check_order(order)
    psi = np.asarray(psi)
    if psi.shape[0] != mesh.n_grid:
        raise ValueError(
            f"first axis must be N_grid={mesh.n_grid}, got {psi.shape}"
        )
    trailing = psi.shape[1:]
    grid = psi.reshape(mesh.shape + trailing)
    out = np.zeros_like(grid)
    for axis in range(3):
        h2 = mesh.spacing[axis] ** 2
        acc = coeffs[0] * grid
        for offset, c in enumerate(coeffs[1:], start=1):
            acc = acc + c * (
                np.roll(grid, offset, axis=axis) + np.roll(grid, -offset, axis=axis)
            )
        out += acc / h2
    return out.reshape(psi.shape)


def laplacian_eigenvalue_1d(k: float, h: float, order: int = 4) -> float:
    """FD eigenvalue of ``d^2/dx^2`` on ``exp(ikx)`` with spacing ``h``.

    ``sum_j c_j (e^{ikjh} + e^{-ikjh}) / h^2 = (c_0 + 2 sum c_j cos(kjh)) / h^2``
    — approaches ``-k^2`` at order ``h^order``.
    """
    coeffs = _check_order(order)
    val = coeffs[0]
    for offset, c in enumerate(coeffs[1:], start=1):
        val += 2.0 * c * np.cos(k * offset * h)
    return float(val / h**2)


def kinetic_apply_fd(
    mesh: Mesh,
    psi: np.ndarray,
    order: int = 4,
    device=None,
) -> np.ndarray:
    """``-(1/2) lap(psi)`` with the FD stencil; books device sweeps.

    Each dimension's sweep touches the full buffer once per stencil
    point (read) plus the output write — the traffic the device model
    charges when attached.
    """
    out = -0.5 * laplacian_apply(mesh, psi, order=order)
    if device is not None:
        points_per_dim = 2 * (len(_check_order(order)) - 1) + 1
        passes = 3 * points_per_dim + 1
        device.record_stream(
            f"fd_stencil_o{order}", passes * psi.nbytes,
            buffer_bytes=psi.nbytes, site="lfd_step",
        )
    return out
