"""Lead-titanate-like supercells — the paper's workload material.

The paper studies laser excitation of lead titanate (PbTiO3): a 40-atom
system (2x2x2 five-atom perovskite cells, 64^3 mesh, 256 orbitals) and
a 135-atom system (3x3x3 cells, 96^3 mesh, 1024 orbitals) — Table V.

The real DCMESH inputs (``PTOquick.dc`` pseudopotential data) are
author-provided and unavailable; we substitute soft Gaussian
pseudo-atoms whose valences are chosen so that the *matrix shapes* the
BLAS study depends on come out exactly right: 32 valence electrons per
cell makes the 40-atom system carry 128 doubly-occupied orbitals —
precisely the ``m = 128`` GEMM dimension of Table VII.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.dcmesh.constants import AMU_TO_AU

__all__ = [
    "AtomSpec",
    "PTO_SPECIES",
    "Material",
    "build_pto_supercell",
    "PTO_LATTICE_BOHR",
]

#: PbTiO3 cubic lattice constant (~3.97 Angstrom) in bohr.
PTO_LATTICE_BOHR = 7.5


@dataclasses.dataclass(frozen=True)
class AtomSpec:
    """Synthetic pseudo-atom: a soft Gaussian ionic potential plus a
    single separable nonlocal channel."""

    symbol: str
    valence: int          #: valence charge Z (electrons contributed)
    sigma: float          #: Gaussian width of the local potential, bohr
    nl_strength: float    #: nonlocal channel coupling, Hartree
    nl_sigma: float       #: nonlocal projector width, bohr
    mass_amu: float       #: atomic mass, amu

    @property
    def mass(self) -> float:
        """Mass in atomic units (electron masses)."""
        return self.mass_amu * AMU_TO_AU


#: Valences sum to 32 e / cell => 16 doubly-occupied orbitals per cell,
#: i.e. 128 occupied orbitals for the 40-atom (8-cell) system.
PTO_SPECIES: Dict[str, AtomSpec] = {
    "Pb": AtomSpec("Pb", valence=14, sigma=1.10, nl_strength=0.9, nl_sigma=1.3, mass_amu=207.2),
    "Ti": AtomSpec("Ti", valence=12, sigma=0.90, nl_strength=1.2, nl_sigma=1.1, mass_amu=47.867),
    "O": AtomSpec("O", valence=2, sigma=0.70, nl_strength=0.5, nl_sigma=0.9, mass_amu=15.999),
}

#: Fractional coordinates of the cubic perovskite basis (5 atoms).
_PEROVSKITE_BASIS: List[Tuple[str, Tuple[float, float, float]]] = [
    ("Pb", (0.0, 0.0, 0.0)),
    ("Ti", (0.5, 0.5, 0.5)),
    ("O", (0.5, 0.5, 0.0)),
    ("O", (0.5, 0.0, 0.5)),
    ("O", (0.0, 0.5, 0.5)),
]


@dataclasses.dataclass
class Material:
    """A periodic supercell of pseudo-atoms."""

    symbols: List[str]
    positions: np.ndarray          #: (N_atoms, 3), bohr
    box: Tuple[float, float, float]
    species: Dict[str, AtomSpec] = dataclasses.field(
        default_factory=lambda: dict(PTO_SPECIES)
    )

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64)
        if self.positions.shape != (len(self.symbols), 3):
            raise ValueError(
                f"positions shape {self.positions.shape} does not match "
                f"{len(self.symbols)} symbols"
            )
        unknown = sorted(set(self.symbols) - set(self.species))
        if unknown:
            raise ValueError(f"unknown species {unknown}")

    @property
    def n_atoms(self) -> int:
        return len(self.symbols)

    @property
    def specs(self) -> List[AtomSpec]:
        """Per-atom species records, in atom order."""
        return [self.species[s] for s in self.symbols]

    @property
    def n_electrons(self) -> int:
        """Total valence electrons."""
        return sum(spec.valence for spec in self.specs)

    @property
    def n_occupied(self) -> int:
        """Number of doubly-occupied Kohn–Sham orbitals."""
        n = self.n_electrons
        if n % 2:
            raise ValueError(f"odd electron count {n}: spin-polarised systems unsupported")
        return n // 2

    @property
    def masses(self) -> np.ndarray:
        """Atomic masses in a.u., shape (N_atoms,)."""
        return np.array([spec.mass for spec in self.specs])

    @property
    def valences(self) -> np.ndarray:
        """Valence charges, shape (N_atoms,)."""
        return np.array([float(spec.valence) for spec in self.specs])

    def displaced(self, displacement: np.ndarray) -> "Material":
        """Copy with atom positions rigidly displaced (wrapped into box)."""
        pos = self.positions + np.asarray(displacement, dtype=np.float64)
        pos = pos % np.asarray(self.box)
        return Material(list(self.symbols), pos, self.box, dict(self.species))


def build_pto_supercell(
    ncells: Sequence[int] = (2, 2, 2),
    lattice: float = PTO_LATTICE_BOHR,
    jitter: float = 0.0,
    seed: int = 0,
) -> Material:
    """Build an ``ncells`` PbTiO3-like supercell.

    Parameters
    ----------
    ncells:
        Unit cell repetitions per dimension; ``(2, 2, 2)`` gives the
        paper's 40-atom system, ``(3, 3, 3)`` the 135-atom one.
    lattice:
        Cubic lattice constant in bohr.
    jitter:
        Optional random displacement amplitude (bohr) to break perfect
        symmetry, deterministic under ``seed``.
    """
    ncells = tuple(int(c) for c in ncells)
    if len(ncells) != 3 or any(c < 1 for c in ncells):
        raise ValueError(f"ncells must be three positive ints, got {ncells}")
    symbols: List[str] = []
    frac: List[Tuple[float, float, float]] = []
    for ix in range(ncells[0]):
        for iy in range(ncells[1]):
            for iz in range(ncells[2]):
                for sym, (fx, fy, fz) in _PEROVSKITE_BASIS:
                    symbols.append(sym)
                    frac.append((ix + fx, iy + fy, iz + fz))
    positions = np.asarray(frac) * lattice
    box = tuple(lattice * c for c in ncells)
    if jitter > 0:
        rng = np.random.default_rng(seed)
        positions = positions + rng.uniform(-jitter, jitter, positions.shape)
        positions %= np.asarray(box)
    return Material(symbols, positions, box)
