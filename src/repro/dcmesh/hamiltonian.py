"""Kohn–Sham-like Hamiltonian: kinetic + local + separable nonlocal.

``H = (k + A)^2 / 2 + V_loc(r) + V_nl`` in the velocity gauge.  The
ionic part of ``V_loc`` is built in reciprocal space from Gaussian
form factors (periodic by construction); Hartree and LDA-exchange
terms are added by the SCF driver.  Application is spectral for the
kinetic term and pointwise/separable for the potentials — FP64, since
this object serves the QXMD phase.  The LFD phase never applies H
directly; it uses split-operator phases plus the BLASified subspace
correction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dcmesh.material import Material
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.projectors import ProjectorSet

__all__ = ["Hamiltonian", "ionic_potential"]


def ionic_potential(material: Material, mesh: Mesh) -> np.ndarray:
    """Sum of periodic Gaussian ionic wells, built in G-space.

    Each atom contributes ``-Z_a * exp(-|r - R_a|^2 / (2 sigma_a^2))``
    normalised as a potential well of depth ``Z_a / (sigma_a sqrt(2 pi))^?``
    — we keep the bare Gaussian form (soft pseudopotential); absolute
    depths only shift the spectrum, which is irrelevant to the
    deviation-from-FP32 methodology.
    """
    k2 = mesh.k2.reshape(mesh.shape)
    vg = np.zeros(mesh.shape, dtype=np.complex128)
    kv = mesh.kvecs
    # Gaussian transform: FT[exp(-r^2/2s^2)] = (2 pi s^2)^{3/2} exp(-k^2 s^2 / 2)
    for spec, pos in zip(material.specs, material.positions):
        phase = np.exp(-1j * (kv @ pos)).reshape(mesh.shape)
        form = (2.0 * np.pi * spec.sigma**2) ** 1.5 * np.exp(-0.5 * k2 * spec.sigma**2)
        vg += -spec.valence * form * phase
    vg /= mesh.volume  # discrete structure-factor normalisation
    v = np.fft.ifftn(vg * mesh.n_grid).real
    return v.reshape(mesh.n_grid)


class Hamiltonian:
    """H applied to ``(N_grid, N_orb)`` orbital matrices (FP64 path)."""

    def __init__(
        self,
        mesh: Mesh,
        v_local: np.ndarray,
        projectors: Optional[ProjectorSet] = None,
    ):
        v_local = np.asarray(v_local, dtype=np.float64)
        if v_local.shape != (mesh.n_grid,):
            raise ValueError(
                f"v_local must be flat (N_grid,), got {v_local.shape}"
            )
        self.mesh = mesh
        self.v_local = v_local
        self.projectors = projectors

    def kinetic_apply(self, psi: np.ndarray, a_field: Optional[np.ndarray] = None) -> np.ndarray:
        """``(k + A)^2/2 psi`` via FFT (exact spectral kinetic)."""
        mesh = self.mesh
        if a_field is None:
            disp = 0.5 * mesh.k2
        else:
            a = np.asarray(a_field, dtype=np.float64)
            if a.shape != (3,):
                raise ValueError(f"a_field must be a 3-vector, got {a.shape}")
            disp = 0.5 * (mesh.k2 + 2.0 * (mesh.kvecs @ a) + a @ a)
        psig = mesh.fft(psi)
        psig *= disp[:, None].astype(psig.real.dtype)
        return mesh.ifft(psig)

    def apply(self, psi: np.ndarray, a_field: Optional[np.ndarray] = None) -> np.ndarray:
        """Full ``H psi``."""
        out = self.kinetic_apply(psi, a_field)
        out += self.v_local[:, None] * psi
        if self.projectors is not None:
            out += self.projectors.apply(psi)
        return out

    def expectation(self, psi: np.ndarray, occupations: np.ndarray) -> float:
        """Occupation-weighted total ``sum_j f_j <psi_j|H|psi_j>``."""
        hpsi = self.apply(psi)
        per_orbital = np.real(np.sum(psi.conj() * hpsi, axis=0)) * self.mesh.dv
        return float(per_orbital @ occupations)

    def subspace(self, psi: np.ndarray) -> np.ndarray:
        """Dense ``<psi_i|H|psi_j>`` matrix (Rayleigh–Ritz input)."""
        hpsi = self.apply(psi)
        return (psi.conj().T @ hpsi) * self.mesh.dv
