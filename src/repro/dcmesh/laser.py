"""External laser pulse as a time-dependent vector potential.

Light–matter coupling enters the LFD Hamiltonian in the velocity gauge
through ``A_ext(t)``: the kinetic term becomes ``(k + A)^2 / 2``.  The
pulse uses a sin^2 envelope — smooth switch-on and switch-off — which
drives electrons out of the ground state and makes the paper's three
observables (nexc, ekin, javg) evolve "highly dynamically" (Section
V-A notes the kinetic energy rising quickly).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.dcmesh.constants import AU_PER_FS

__all__ = ["LaserPulse"]


@dataclasses.dataclass(frozen=True)
class LaserPulse:
    """sin^2-envelope vector-potential pulse, polarised along a unit vector.

    ``A(t) = A0 * sin^2(pi t / T) * cos(omega t) * pol`` for
    ``0 <= t <= T`` and zero outside.
    """

    amplitude: float = 0.15             #: peak |A|, atomic units
    omega: float = 0.057                #: carrier angular frequency (~800 nm), a.u.
    duration_fs: float = 8.0            #: envelope length T, femtoseconds
    polarization: tuple = (0.0, 0.0, 1.0)

    def __post_init__(self) -> None:
        if self.duration_fs <= 0:
            raise ValueError(f"pulse duration must be positive, got {self.duration_fs}")
        pol = np.asarray(self.polarization, dtype=np.float64)
        scale = np.max(np.abs(pol)) if pol.shape == (3,) else 0.0
        if pol.shape != (3,) or scale == 0:
            raise ValueError(f"polarization must be a non-zero 3-vector, got {self.polarization}")
        # Scale by the largest component before squaring, as LAPACK's
        # nrm2 does: a direct sum of squares underflows for tiny
        # components (|p| ~ 1e-162) and the normalized vector would not
        # be unit length.
        pol = pol / scale
        object.__setattr__(self, "polarization", tuple(pol / np.linalg.norm(pol)))

    @property
    def duration_au(self) -> float:
        """Envelope length in atomic time units."""
        return self.duration_fs * AU_PER_FS

    def envelope(self, t: float) -> float:
        """sin^2 envelope value at time ``t`` (a.u.)."""
        T = self.duration_au
        if t <= 0.0 or t >= T:
            return 0.0
        return float(np.sin(np.pi * t / T) ** 2)

    def vector_potential(self, t: float) -> np.ndarray:
        """``A_ext(t)`` as a 3-vector, atomic units."""
        a = self.amplitude * self.envelope(t) * np.cos(self.omega * t)
        return a * np.asarray(self.polarization)

    def scalar_amplitude(self, t: float) -> float:
        """Projection of ``A_ext(t)`` on the polarisation axis — the
        ``Aext`` column of the DCMESH QD-step output line."""
        return float(self.amplitude * self.envelope(t) * np.cos(self.omega * t))

    def electric_field(self, t: float) -> np.ndarray:
        """``E(t) = -dA/dt`` (analytic derivative), 3-vector in a.u."""
        T = self.duration_au
        if t <= 0.0 or t >= T:
            return np.zeros(3)
        s, c = np.sin(np.pi * t / T), np.cos(np.pi * t / T)
        denv = 2.0 * s * c * np.pi / T
        da = self.amplitude * (
            denv * np.cos(self.omega * t)
            - (s**2) * self.omega * np.sin(self.omega * t)
        )
        return -da * np.asarray(self.polarization)
