"""Periodic real-space mesh with spectral (FFT) derivatives.

The LFD wavefunctions live on a uniform periodic mesh — the paper's
"finite-difference mesh for simple data parallelism".  Orbitals are
stored column-wise in an ``(N_grid, N_orb)`` matrix, the exact layout
the BLASified nonlocal correction operates on.

Derivatives are spectral: the kinetic operator is diagonal in the
plane-wave basis, so the split-operator propagator applies
``exp(-i T dt)`` exactly via forward/inverse FFTs.  ``scipy.fft`` is
used because (unlike ``numpy.fft``) it preserves single precision —
essential here, since the whole point of the study is that LFD storage
stays FP32 while only the BLAS compute mode changes.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np
import scipy.fft

__all__ = ["Mesh"]


class Mesh:
    """Uniform periodic mesh over an orthorhombic box.

    Parameters
    ----------
    shape:
        Grid points per dimension, e.g. ``(64, 64, 64)`` for the
        paper's 40-atom system.
    box:
        Box edge lengths in bohr.
    """

    def __init__(self, shape: Iterable[int], box: Iterable[float]):
        shape = tuple(int(s) for s in shape)
        box = tuple(float(b) for b in box)
        if len(shape) != 3 or len(box) != 3:
            raise ValueError(f"mesh is 3-D: got shape {shape}, box {box}")
        if any(s < 2 for s in shape):
            raise ValueError(f"each dimension needs >= 2 points, got {shape}")
        if any(b <= 0 for b in box):
            raise ValueError(f"box lengths must be positive, got {box}")
        self.shape: Tuple[int, int, int] = shape
        self.box: Tuple[float, float, float] = box
        self.n_grid = int(np.prod(shape))
        self.spacing = tuple(b / s for b, s in zip(box, shape))
        self.volume = float(np.prod(box))
        self.dv = self.volume / self.n_grid

        # Real-space coordinates, flattened C-order to match reshaping.
        axes = [np.arange(s) * h for s, h in zip(shape, self.spacing)]
        grids = np.meshgrid(*axes, indexing="ij")
        self.coords = np.stack([g.reshape(-1) for g in grids], axis=1)  # (N_grid, 3)

        # Reciprocal vectors per dimension (angular wavenumbers).
        kaxes = [2.0 * np.pi * np.fft.fftfreq(s, d=h) for s, h in zip(shape, self.spacing)]
        kgrids = np.meshgrid(*kaxes, indexing="ij")
        self.kvecs = np.stack([g.reshape(-1) for g in kgrids], axis=1)  # (N_grid, 3)
        self.k2 = np.einsum("ij,ij->i", self.kvecs, self.kvecs)          # |k|^2
        # First-derivative wavenumbers: on even grids the Nyquist mode
        # has no positive partner, so odd-derivative operators (momentum,
        # current) must treat it as zero or real fields acquire spurious
        # imaginary derivatives.  Even-order operators (k^2) keep it.
        deriv_axes = []
        for s, h in zip(shape, self.spacing):
            ax = 2.0 * np.pi * np.fft.fftfreq(s, d=h)
            if s % 2 == 0:
                ax = ax.copy()
                ax[s // 2] = 0.0
            deriv_axes.append(ax)
        dgrids = np.meshgrid(*deriv_axes, indexing="ij")
        self.kvecs_deriv = np.stack([g.reshape(-1) for g in dgrids], axis=1)

    def __repr__(self) -> str:
        return f"Mesh(shape={self.shape}, box={self.box})"

    # ------------------------------------------------------------------
    # FFT transforms on (N_grid, N_orb) orbital matrices.
    # ------------------------------------------------------------------

    def _to_grid(self, psi: np.ndarray) -> np.ndarray:
        if psi.shape[0] != self.n_grid:
            raise ValueError(
                f"first axis must be N_grid={self.n_grid}, got {psi.shape}"
            )
        trailing = psi.shape[1:]
        return psi.reshape(self.shape + trailing)

    def fft(self, psi: np.ndarray) -> np.ndarray:
        """Forward FFT of orbital columns: real space -> plane waves."""
        g = self._to_grid(np.asarray(psi))
        out = scipy.fft.fftn(g, axes=(0, 1, 2))
        return out.reshape(self.n_grid, *psi.shape[1:])

    def ifft(self, psig: np.ndarray) -> np.ndarray:
        """Inverse FFT of orbital columns: plane waves -> real space."""
        g = self._to_grid(np.asarray(psig))
        out = scipy.fft.ifftn(g, axes=(0, 1, 2))
        return out.reshape(self.n_grid, *psig.shape[1:])

    # ------------------------------------------------------------------
    # Integrals and norms.
    # ------------------------------------------------------------------

    def integrate(self, f: np.ndarray) -> complex:
        """Volume integral of a grid function (trapezoid == Riemann on
        a periodic uniform mesh)."""
        f = np.asarray(f)
        if f.shape[0] != self.n_grid:
            raise ValueError(f"expected N_grid leading axis, got {f.shape}")
        total = f.sum(axis=0) * self.dv
        return total

    def braket(self, a: np.ndarray, b: np.ndarray) -> complex:
        """Inner product <a|b> = integral of conj(a) * b."""
        return complex(np.vdot(a, b) * self.dv)

    def minimum_image(self, delta: np.ndarray) -> np.ndarray:
        """Wrap displacement vectors into the primary cell (periodic)."""
        delta = np.asarray(delta, dtype=np.float64)
        box = np.asarray(self.box)
        return delta - box * np.round(delta / box)

    def distances_to(self, point: np.ndarray) -> np.ndarray:
        """Minimum-image distance of every mesh point to ``point``."""
        d = self.minimum_image(self.coords - np.asarray(point, dtype=np.float64))
        return np.sqrt(np.einsum("ij,ij->i", d, d))
