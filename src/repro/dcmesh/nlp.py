"""``nlp_prop`` — BLASified nonlocal correction (Eq. 1 of the paper).

"Among the most time-intensive portions of the entire LFD portion of
the DCMESH codebase is the nonlocal correction for time propagation of
electronic wave functions. ... we map the nonlocal computation to the
vector space spanned by the Kohn–Sham electronic wave functions ...
this correction is cast into matrix operations":

    Psi(t) <- c Psi(0) Psi^H(0) Psi(t)                        (Eq. 1)

Concretely, with ``H_nl`` the nonlocal operator projected into the t=0
Kohn–Sham subspace (an ``N_orb x N_orb`` Hermitian matrix built once
per SCF block, in FP64), one QD step applies ``exp(-i dt H_nl)`` inside
that subspace:

    S = Psi^H(0) Psi(t) dV          cgemm  (N_orb, N_orb, N_grid)   [big]
    T = (U - I) S                   cgemm  (N_orb, N_orb, N_orb)    [small]
    Psi(t) += Psi(0) T              cgemm  (N_grid, N_orb, N_orb)   [big]

Those three calls — two of them with the full ``N_grid`` inner/outer
dimension — are the GEMMs whose compute mode the paper varies.  The
subspace propagator ``U = expm(-i dt H_nl)`` is precomputed in FP64
(QXMD side); the per-step work runs at LFD storage precision under the
ambient ``MKL_BLAS_COMPUTE_MODE``.
"""

from __future__ import annotations


import numpy as np
import scipy.linalg

from repro.blas.gemm import call_site, gemm
from repro.blas.plan import prepare
from repro.dcmesh.mesh import Mesh

__all__ = ["NonlocalPropagator"]


class NonlocalPropagator:
    """Applies the subspace nonlocal correction to propagating orbitals."""

    def __init__(
        self,
        psi0: np.ndarray,
        h_nl_sub: np.ndarray,
        dt: float,
        mesh: Mesh,
    ):
        """
        Parameters
        ----------
        psi0:
            Reference Kohn–Sham orbitals at the last SCF update,
            ``(N_grid, N_orb)``, already at LFD storage precision.
        h_nl_sub:
            Nonlocal Hamiltonian in that subspace, ``(N_orb, N_orb)``
            Hermitian, FP64 (built by the QXMD phase).
        dt:
            QD timestep, atomic units.
        """
        psi0 = np.asarray(psi0)
        h_nl_sub = np.asarray(h_nl_sub, dtype=np.complex128)
        if psi0.ndim != 2:
            raise ValueError(f"psi0 must be (N_grid, N_orb), got {psi0.shape}")
        n_orb = psi0.shape[1]
        if h_nl_sub.shape != (n_orb, n_orb):
            raise ValueError(
                f"h_nl_sub shape {h_nl_sub.shape} does not match N_orb={n_orb}"
            )
        herm_err = np.abs(h_nl_sub - h_nl_sub.conj().T).max()
        scale = max(np.abs(h_nl_sub).max(), 1e-300)
        if herm_err / scale > 1e-8:
            raise ValueError(
                f"h_nl_sub is not Hermitian (relative asymmetry {herm_err / scale:.2e})"
            )
        self.psi0 = psi0
        self.dt = float(dt)
        self.mesh = mesh
        # FP64 once-per-block work (QXMD side): the subspace propagator.
        u = scipy.linalg.expm(-1j * self.dt * h_nl_sub)
        # W = U - I so the correction is additive: Psi += Psi0 W S.
        w = u - np.eye(n_orb)
        self.w = w.astype(psi0.dtype, copy=False)
        # Psi(0) is frozen for the whole SCF block, so its conversion
        # work (contiguous parts, split terms) is prepared once and
        # shared by all three GEMMs of all ~500 steps.  prepare() is
        # identity-keyed: successive propagators built on the same
        # psi0 array (one per SCF block) reuse the same plan.
        self.psi0_plan = prepare(self.psi0)
        self.w_plan = prepare(self.w)
        # Baseline fingerprints now (one read-only pass each): they are
        # what makes refresh_plans() at SCF block boundaries able to
        # *prove* the cached forms still match the operand bytes.
        self.psi0_plan.fingerprint()
        self.w_plan.fingerprint()

    def invalidate_plans(self) -> None:
        """Drop all cached operand forms (psi0/W mutated in place)."""
        self.psi0_plan.invalidate()
        self.w_plan.invalidate()

    def refresh_plans(self) -> bool:
        """Re-fingerprint the frozen operands; invalidate stale plans.

        The SCF refresh path calls this at block boundaries: it is a
        cheap content check (one hashing pass) that guarantees a
        mutated ``psi0`` can never be served stale split terms.
        Returns True if anything had to be invalidated.
        """
        return bool(
            self.psi0_plan.refresh_if_changed() | self.w_plan.refresh_if_changed()
        )

    @property
    def n_orb(self) -> int:
        return self.psi0.shape[1]

    def apply(self, psi: np.ndarray) -> np.ndarray:
        """One nonlocal correction step; returns the corrected orbitals.

        Issues exactly three ``cgemm``/``zgemm`` calls, tagged with the
        ``nlp_prop`` call site for the MKL_VERBOSE-style grouping the
        paper's analysis uses.
        """
        psi = np.asarray(psi)
        if psi.shape != self.psi0.shape:
            raise ValueError(
                f"psi shape {psi.shape} does not match reference {self.psi0.shape}"
            )
        dv = self.mesh.dv
        with call_site("nlp_prop"):
            # S = <psi0 | psi>: (N_orb x N_grid) @ (N_grid x N_orb).
            s = gemm(self.psi0_plan, psi, trans_a="C", alpha=dv)
            # T = W S in the subspace (small).
            t = gemm(self.w_plan, s)
            # Psi += Psi0 T: (N_grid x N_orb) @ (N_orb x N_orb).
            out = gemm(self.psi0_plan, t, beta=1.0, c=psi)
        return out.astype(psi.dtype, copy=False)
