"""Ehrenfest ion dynamics (QXMD side, FP64).

DCMESH advances ions on a slower clock than electrons ("multiple
time-scale splitting"): here the ions take one velocity-Verlet step
per SCF block (i.e. per MD step of ``nscf`` QD steps), driven by the
mean-field (Ehrenfest) force from the instantaneous electron density
plus a short-range pair repulsion that keeps the lattice from
collapsing onto itself.

Forces on atom ``a`` from its Gaussian well interacting with density
``n(r)``:

    F_a = - d/dR_a  integral n(r) V_a(r - R_a) dr
        = - integral n(r) * (r - R_a)/sigma_a^2 * V_a(r - R_a) dr

evaluated directly on the mesh with minimum-image displacements.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dcmesh.material import Material
from repro.dcmesh.mesh import Mesh

__all__ = ["IonDynamics", "ehrenfest_forces", "pair_repulsion_forces"]


def ehrenfest_forces(material: Material, mesh: Mesh, density: np.ndarray) -> np.ndarray:
    """Mean-field forces of the electron density on each ion, (N, 3).

    Evaluated in reciprocal space:
    ``E_a = V sum_G conj(n(G)) V_a(G) exp(-i G . R_a)`` so
    ``F_a = -dE_a/dR_a = -V sum_G conj(n(G)) V_a(G) (-iG) exp(-i G . R_a)``.
    The spectral form is exactly periodic and smooth — a uniform
    density exerts zero force, unlike a real-space minimum-image sum,
    which picks up a boundary artefact at the half-box cutoff.
    """
    density = np.asarray(density, dtype=np.float64)
    if density.shape != (mesh.n_grid,):
        raise ValueError(f"density must be flat (N_grid,), got {density.shape}")
    # n(G) with the plane-wave convention n(r) = sum_G n(G) e^{iGr}.
    ng = mesh.fft(density.astype(np.complex128)[:, None])[:, 0] / mesh.n_grid
    kv = mesh.kvecs
    k2 = mesh.k2
    forces = np.zeros((material.n_atoms, 3))
    for a, (spec, pos) in enumerate(zip(material.specs, material.positions)):
        # V_a(G): Gaussian form factor with the atom's phase.
        form = (
            -spec.valence
            * (2.0 * np.pi * spec.sigma**2) ** 1.5
            * np.exp(-0.5 * k2 * spec.sigma**2)
            / mesh.volume
        )
        phase = np.exp(-1j * (kv @ pos))
        # F = -V * sum_G conj(n(G)) * V_a(G) * (-i G) * phase
        coeff = np.conj(ng) * form * phase
        forces[a] = -mesh.volume * np.real(coeff @ (-1j * kv))
    return forces


def pair_repulsion_forces(
    material: Material,
    mesh: Mesh,
    strength: float = 25.0,
    decay: float = 1.0,
) -> np.ndarray:
    """Short-range ion–ion repulsion ``E = sum s exp(-r/d)`` (minimum image)."""
    n = material.n_atoms
    pos = material.positions
    forces = np.zeros((n, 3))
    for a in range(n):
        delta = mesh.minimum_image(pos[a] - pos)
        dist = np.sqrt(np.einsum("ij,ij->i", delta, delta))
        dist[a] = np.inf
        mag = strength / decay * np.exp(-dist / decay)
        forces[a] = ((mag / dist)[:, None] * delta).sum(axis=0)
    return forces


class IonDynamics:
    """Velocity-Verlet integrator for the ionic subsystem."""

    def __init__(
        self,
        material: Material,
        mesh: Mesh,
        dt: float,
        repulsion_strength: float = 25.0,
        repulsion_decay: float = 1.0,
    ):
        if dt <= 0:
            raise ValueError(f"ionic timestep must be positive, got {dt}")
        self.material = material
        self.mesh = mesh
        self.dt = float(dt)
        self.repulsion_strength = repulsion_strength
        self.repulsion_decay = repulsion_decay
        self.velocities = np.zeros((material.n_atoms, 3))
        self._forces: Optional[np.ndarray] = None

    def total_force(self, density: np.ndarray) -> np.ndarray:
        """Ehrenfest + pair-repulsion forces, (N_atoms, 3)."""
        return ehrenfest_forces(self.material, self.mesh, density) + pair_repulsion_forces(
            self.material, self.mesh, self.repulsion_strength, self.repulsion_decay
        )

    def step(self, density: np.ndarray) -> None:
        """One velocity-Verlet step; mutates the material's positions."""
        masses = self.material.masses[:, None]
        if self._forces is None:
            self._forces = self.total_force(density)
        f_old = self._forces
        pos = self.material.positions + self.velocities * self.dt + 0.5 * f_old / masses * self.dt**2
        self.material.positions = pos % np.asarray(self.mesh.box)
        f_new = self.total_force(density)
        self.velocities = self.velocities + 0.5 * (f_old + f_new) / masses * self.dt
        self._forces = f_new

    def kinetic_energy(self) -> float:
        """Ionic kinetic energy, Hartree."""
        m = self.material.masses
        v2 = np.einsum("ij,ij->i", self.velocities, self.velocities)
        return float(0.5 * (m * v2).sum())

    def temperature(self) -> float:
        """Instantaneous ionic temperature (Hartree/k_B units)."""
        dof = max(3 * self.material.n_atoms - 3, 1)
        return 2.0 * self.kinetic_energy() / dof
