"""Physical constants and unit conversions (Hartree atomic units).

DCMESH works in Hartree atomic units (hbar = m_e = e = 1): energies in
Hartree, lengths in bohr, times in atomic time units.  The paper's
Table III quotes a timestep of 0.02 (a.u.) and a 10 fs total
simulation: 21 000 x 0.02 a.u. = 420 a.u. = 10.16 fs, which is how we
know the units.
"""

from __future__ import annotations

__all__ = [
    "HARTREE_EV",
    "BOHR_ANGSTROM",
    "FS_PER_AU",
    "AU_PER_FS",
    "AMU_TO_AU",
]

#: One Hartree in electron-volts.
HARTREE_EV = 27.211386245988

#: One bohr in Angstrom.
BOHR_ANGSTROM = 0.529177210903

#: One atomic time unit in femtoseconds.
FS_PER_AU = 0.02418884326509

#: One femtosecond in atomic time units.
AU_PER_FS = 1.0 / FS_PER_AU

#: One atomic mass unit in electron masses.
AMU_TO_AU = 1822.888486209
