"""Divide-and-conquer electronic solver — the "DC" in DCMESH.

Section II-C: "The most unique characteristic of DCMESH is its
implementation of a globally-sparse and locally-dense electronic
solver" — the Nakano-group divide–conquer–recombine scheme: space is
partitioned into core domains, each solved *densely* (a full local
SCF) on an extended domain that includes a buffer of neighbouring
atoms, and the *global* state is recombined sparsely by stitching only
each domain's core-region density.

This module implements the slab variant of that scheme along z:

* the supercell's cell layers are grouped into ``n_domains`` cores;
* each domain's extended region adds ``buffer_layers`` cell layers on
  both sides (periodic wrap);
* a local FP64 SCF (the same QXMD solver) runs per domain on a local
  mesh whose spacing matches the global mesh exactly;
* the recombined density takes each domain's *core* columns only, so
  the partition of unity is exact and the total electron count is
  conserved by construction.

For well-localised systems (Gaussian pseudo-atoms qualify) the
recombined density approaches the monolithic SCF density as the buffer
grows — which is the premise that lets DCMESH scale.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.dcmesh.material import Material
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.projectors import build_projectors
from repro.dcmesh.scf import SCFParams, SCFResult, SCFSolver

__all__ = ["Domain", "DCResult", "DCSolver"]


@dataclasses.dataclass
class Domain:
    """One core+buffer slab of the global system."""

    index: int
    core_layers: range          #: global cell-layer indices owned (z)
    extended_layers: List[int]  #: core + buffer layers (wrapped)
    material: Material          #: atoms of the extended region, local frame
    mesh: Mesh                  #: local mesh (same spacing as global)
    core_z_slice: slice         #: local z-columns belonging to the core
    global_z_offset: int        #: global z-index of the first core column

    @property
    def n_core_atoms(self) -> int:
        return 5 * len(self.core_layers) * self._layers_xy

    _layers_xy: int = 1


@dataclasses.dataclass
class DCResult:
    """Recombined global state."""

    density: np.ndarray             #: stitched density on the global mesh
    domain_results: List[SCFResult]
    domains: List[Domain]
    band_energy: float              #: sum of core-weighted band energies

    @property
    def n_electrons(self) -> float:
        return float(self.density.sum())


class DCSolver:
    """Slab divide-and-conquer driver over the z axis."""

    def __init__(
        self,
        material: Material,
        mesh: Mesh,
        ncells: tuple,
        n_domains: int,
        buffer_layers: int = 1,
        orbitals_per_cell: int = 24,
        scf_params: Optional[SCFParams] = None,
    ):
        ncells = tuple(int(c) for c in ncells)
        if len(ncells) != 3:
            raise ValueError(f"ncells must be 3 ints, got {ncells}")
        nz = ncells[2]
        if n_domains < 1 or nz % n_domains:
            raise ValueError(
                f"n_domains={n_domains} must divide the {nz} z cell layers"
            )
        if mesh.shape[2] % nz:
            raise ValueError(
                f"mesh z-dimension {mesh.shape[2]} must divide evenly into "
                f"{nz} cell layers"
            )
        layers_per_domain = nz // n_domains
        if buffer_layers < 0 or (n_domains > 1 and
                                 layers_per_domain + 2 * buffer_layers > nz):
            raise ValueError(
                f"buffer_layers={buffer_layers} too large: extended domain "
                f"exceeds the supercell"
            )
        self.material = material
        self.mesh = mesh
        self.ncells = ncells
        self.n_domains = n_domains
        self.buffer_layers = buffer_layers if n_domains > 1 else 0
        self.layers_per_domain = layers_per_domain
        self.orbitals_per_cell = orbitals_per_cell
        self.scf_params = scf_params or SCFParams()
        self._layer_len = material.box[2] / nz
        self._pts_per_layer = mesh.shape[2] // nz

    # ------------------------------------------------------------------
    # Partitioning.
    # ------------------------------------------------------------------

    def _layer_of(self, z: float) -> int:
        return int(z / self._layer_len) % self.ncells[2]

    def partition(self) -> List[Domain]:
        """Build the core+buffer domains."""
        nz = self.ncells[2]
        domains: List[Domain] = []
        for d in range(self.n_domains):
            core_start = d * self.layers_per_domain
            core = range(core_start, core_start + self.layers_per_domain)
            extended = [
                (core_start - self.buffer_layers + i) % nz
                for i in range(self.layers_per_domain + 2 * self.buffer_layers)
            ]
            # Atoms whose layer is in the extended set, shifted into the
            # local frame (the extended slab starts at local z = 0).
            ext_len = len(extended) * self._layer_len
            origin_layer = (core_start - self.buffer_layers) % nz
            origin_z = origin_layer * self._layer_len
            symbols, positions = [], []
            for sym, pos in zip(self.material.symbols, self.material.positions):
                if self._layer_of(pos[2]) in extended:
                    local = pos.copy()
                    local[2] = (pos[2] - origin_z) % self.material.box[2]
                    # Wrapped coordinates land inside the extended slab.
                    if local[2] >= ext_len - 1e-9:
                        local[2] -= self.material.box[2]
                        local[2] %= ext_len
                    symbols.append(sym)
                    positions.append(local)
            box = (self.material.box[0], self.material.box[1], ext_len)
            local_material = Material(
                symbols, np.asarray(positions), box, dict(self.material.species)
            )
            local_mesh = Mesh(
                (
                    self.mesh.shape[0],
                    self.mesh.shape[1],
                    len(extended) * self._pts_per_layer,
                ),
                box,
            )
            core_lo = self.buffer_layers * self._pts_per_layer
            core_hi = core_lo + self.layers_per_domain * self._pts_per_layer
            domains.append(
                Domain(
                    index=d,
                    core_layers=core,
                    extended_layers=extended,
                    material=local_material,
                    mesh=local_mesh,
                    core_z_slice=slice(core_lo, core_hi),
                    global_z_offset=core_start * self._pts_per_layer,
                    _layers_xy=self.ncells[0] * self.ncells[1],
                )
            )
        return domains

    # ------------------------------------------------------------------
    # Local dense solves + sparse recombination.
    # ------------------------------------------------------------------

    def _solve_domain(self, domain: Domain, seed: int) -> SCFResult:
        n_cells_ext = (
            self.ncells[0] * self.ncells[1] * len(domain.extended_layers)
        )
        n_orb = max(
            domain.material.n_occupied + 4,
            (self.orbitals_per_cell * n_cells_ext) // 16,
        )
        projectors = build_projectors(domain.material, domain.mesh)
        solver = SCFSolver(domain.mesh, domain.material, projectors, self.scf_params)
        return solver.solve(n_orb=n_orb, seed=seed + domain.index)

    def solve(self, seed: int = 0) -> DCResult:
        """Run all local solves and recombine the core densities."""
        domains = self.partition()
        results: List[SCFResult] = []
        nx, ny, nz_global = self.mesh.shape
        density = np.zeros(self.mesh.shape, dtype=np.float64)
        band_energy = 0.0
        for domain in domains:
            result = self._solve_domain(domain, seed)
            results.append(result)
            local = result.density.reshape(domain.mesh.shape)
            core = local[:, :, domain.core_z_slice]
            z0 = domain.global_z_offset
            z1 = z0 + core.shape[2]
            density[:, :, z0:z1] = core
            # Core-weighted band energy: the domain's share of electrons
            # over its extended-region electrons scales its band sum.
            core_valence = sum(
                spec.valence
                for spec, pos in zip(domain.material.specs, domain.material.positions)
                if domain.core_z_slice.start * self.mesh.spacing[2]
                <= pos[2]
                < domain.core_z_slice.stop * self.mesh.spacing[2]
            )
            share = core_valence / max(domain.material.n_electrons, 1)
            band_energy += share * result.band_energy
        return DCResult(
            density=density.reshape(-1),
            domain_results=results,
            domains=domains,
            band_energy=band_energy,
        )
