"""``dcmesh`` console entry point — run simulations like the artifact.

Usage::

    dcmesh --small-test --mode FLOAT_TO_BF16 --output run.log
    dcmesh --input inputs/ --steps 100 --verbose
    dcmesh --write-inputs inputs/ --small-test     # emit the input deck

Mirrors the artifact's workflow: the compute mode can equally be set
through the ``MKL_BLAS_COMPUTE_MODE`` environment variable instead of
``--mode`` — the flag simply wins when both are present.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.blas.modes import ComputeMode, UnknownComputeModeError
from repro.blas.verbose import format_verbose_line, mkl_verbose
from repro.dcmesh.io.loader import load_simulation_config, save_simulation_config
from repro.dcmesh.io.output import write_run_log
from repro.dcmesh.simulation import Simulation, SimulationConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dcmesh",
        description="Run the reproduced DCMESH simulation "
        "(LFD compute mode via --mode or MKL_BLAS_COMPUTE_MODE).",
    )
    src = parser.add_mutually_exclusive_group(required=True)
    src.add_argument(
        "--input", metavar="DIR",
        help="directory with PTOquick.dc, CONFIG and lfd.in",
    )
    src.add_argument(
        "--small-test", action="store_true",
        help="use the built-in laptop-scale configuration",
    )
    parser.add_argument(
        "--write-inputs", metavar="DIR", default=None,
        help="write the input deck for the chosen configuration and exit",
    )
    parser.add_argument(
        "--mode", default=None,
        help="BLAS compute mode (e.g. FLOAT_TO_BF16); default: environment",
    )
    parser.add_argument(
        "--steps", type=int, default=None,
        help="override the number of QD steps",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the QD-step log here (default: stdout)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="print MKL_VERBOSE-style lines for every BLAS call",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.small_test:
        config = SimulationConfig.small_test()
    else:
        try:
            config = load_simulation_config(args.input)
        except (OSError, ValueError) as exc:
            print(f"dcmesh: cannot load inputs: {exc}", file=sys.stderr)
            return 2

    if args.write_inputs:
        save_simulation_config(args.write_inputs, config)
        print(f"input deck written to {args.write_inputs}/")
        return 0

    mode = None
    if args.mode is not None:
        try:
            mode = ComputeMode.parse(args.mode)
        except UnknownComputeModeError as exc:
            print(f"dcmesh: {exc}", file=sys.stderr)
            return 2

    sim = Simulation(config)
    print(
        f"dcmesh: {config.n_atoms} atoms, mesh "
        f"{'x'.join(map(str, config.mesh_shape))}, {config.n_orb} orbitals",
        file=sys.stderr,
    )
    print("dcmesh: converging FP64 ground state (QXMD/SCF)...", file=sys.stderr)
    ground = sim.setup()
    print(
        f"dcmesh: SCF {'converged' if ground.converged else 'NOT converged'} "
        f"in {ground.n_iter} iterations",
        file=sys.stderr,
    )

    if args.verbose:
        with mkl_verbose() as log:
            result = sim.run(mode=mode, n_steps=args.steps)
        for record in log:
            print(format_verbose_line(record), file=sys.stderr)
    else:
        result = sim.run(mode=mode, n_steps=args.steps)

    header = (
        f"mode: {result.mode.env_value}\n"
        f"atoms: {config.n_atoms}  mesh: {config.mesh_shape}  n_orb: {config.n_orb}"
    )
    if args.output:
        write_run_log(args.output, result.records, header=header)
        print(f"dcmesh: {len(result.records)} QD records -> {args.output}",
              file=sys.stderr)
    else:
        from repro.dcmesh.observables import format_qd_line

        for h in header.splitlines():
            print(f"# {h}")
        for record in result.records:
            print(format_qd_line(record))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
