"""``calc_energy`` — BLASified energy evaluation.

"BLASified nonlocal correction appears in the energy calculation in
calc_energy" (Section IV-D); "Kinetic energy is computed through the
BLAS call in function calc_energy, and is based on a matrix-matrix
multiplication with tensor size N_grid x N_orb" (Section V-A).

Per QD step this function issues three GEMMs at LFD precision:

    K = Psi^H (T_A Psi) dV          cgemm  (N_orb, N_orb, N_grid)  [big]
    S = Psi0^H Psi dV               cgemm  (N_orb, N_orb, N_grid)  [big]
    M = H_nl S                      cgemm  (N_orb, N_orb, N_orb)   [small]

``ekin = Re tr(f K)``; the nonlocal energy is ``Re tr(f S^H M)``
(an elementwise contraction once M exists).  The local potential
energy is a pointwise mesh sum (a streaming kernel, not BLAS).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.blas.gemm import call_site, gemm
from repro.dcmesh.mesh import Mesh

__all__ = ["EnergyBreakdown", "calc_energy"]


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Energy components of one QD step, Hartree."""

    ekin: float       #: kinetic energy (BLAS, velocity-gauge (k+A)^2/2)
    epot: float       #: local potential energy (pointwise)
    enl: float        #: nonlocal energy (BLAS, subspace)
    etot: float       #: ekin + epot + enl


def calc_energy(
    psi: np.ndarray,
    psi0: np.ndarray,
    occupations: np.ndarray,
    mesh: Mesh,
    v_eff: np.ndarray,
    h_nl_sub: np.ndarray,
    a_field: Optional[np.ndarray] = None,
    device=None,
) -> EnergyBreakdown:
    """Evaluate the energy of the current LFD state.

    Parameters mirror the DCMESH internals: ``psi`` is the propagating
    wavefunction matrix, ``psi0`` the SCF reference, ``h_nl_sub`` the
    FP64-built nonlocal subspace operator cast to storage precision,
    ``v_eff`` the frozen effective potential of the current SCF block
    and ``a_field`` the instantaneous laser vector potential.
    """
    psi = np.asarray(psi)
    n_orb = psi.shape[1]
    f = np.asarray(occupations, dtype=np.float64)
    if f.shape != (n_orb,):
        raise ValueError(f"occupations shape {f.shape} != ({n_orb},)")
    dv = mesh.dv

    # Kinetic operator application is spectral (streaming kernels on
    # the modelled device), matching the LFD split-operator machinery.
    if a_field is None:
        disp = 0.5 * mesh.k2
    else:
        a = np.asarray(a_field, dtype=np.float64)
        disp = 0.5 * (mesh.k2 + 2.0 * (mesh.kvecs @ a) + a @ a)
    psig = mesh.fft(psi)
    psig *= disp[:, None].astype(psig.real.dtype)
    tpsi = mesh.ifft(psig).astype(psi.dtype, copy=False)
    if device is not None:
        device.record_stream("fft_energy", 12 * psi.nbytes, buffer_bytes=psi.nbytes,
                             site="calc_energy")

    with call_site("calc_energy"):
        k = gemm(psi, tpsi, trans_a="C", alpha=dv)         # (N_orb, N_orb, N_grid)
        s = gemm(np.asarray(psi0), psi, trans_a="C", alpha=dv)
        m = gemm(np.asarray(h_nl_sub, dtype=psi.dtype), s)  # small

    ekin = float(np.real(np.diagonal(k)) @ f)
    enl = float(np.real(np.sum(s.conj() * m, axis=0)) @ f)

    # Local potential energy: pointwise density contraction.
    density = (np.abs(psi) ** 2 @ f).astype(np.float64)
    epot = float(np.sum(density * np.asarray(v_eff, dtype=np.float64)) * dv)
    if device is not None:
        device.record_stream("density_pot", 2 * psi.nbytes, buffer_bytes=psi.nbytes,
                             site="calc_energy")

    return EnergyBreakdown(ekin=ekin, epot=epot, enl=enl, etot=ekin + epot + enl)
