"""``remap_occ`` — occupation remapping and the excited-electron count.

"Nexc is computed through a BLAS call in function remap_occ and is
based on a matrix-matrix multiplication" (Section V-A); Table VII
pins the GEMM shape for the 40-atom system: ``m = 128`` (the number of
doubly-occupied orbitals), ``n = N_orb - 128`` (the virtual block) and
``k = 64^3`` (the mesh).

The calculation projects the time-evolved, initially-occupied orbitals
onto the initial *virtual* manifold:

    P = Psi_occ^H(t) Psi0_virt dV   cgemm  (N_occ, N_virt, N_grid)  [big]
    Q = Psi0_occ^H Psi_occ(t) dV    cgemm  (N_occ, N_occ, N_grid)   [big]
    W = P P^H                       cgemm  (N_occ, N_occ, N_virt)   [small]

``nexc = sum_i f_i sum_a |P_ia|^2`` — occupation leaked into the
virtuals; ``Q`` gives the remapped occupation of each initial orbital
(and a completeness check: diag(Q Q^H) + diag(W) ~ 1 per orbital for a
unitary propagation); ``W``'s diagonal is the per-orbital excitation.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.blas.gemm import call_site, gemm
from repro.dcmesh.mesh import Mesh

__all__ = ["RemapResult", "remap_occ"]


@dataclasses.dataclass(frozen=True)
class RemapResult:
    """Occupation-remap outputs for one QD step."""

    nexc: float                 #: number of excited electrons
    occ_remapped: np.ndarray    #: occupation carried by each initial occupied orbital
    per_orbital_exc: np.ndarray #: excitation per (initially occupied) orbital
    p_shape: tuple              #: (m, n, k) of the headline GEMM (Table VII)


def remap_occ(
    psi: np.ndarray,
    psi0: np.ndarray,
    occupations: np.ndarray,
    mesh: Mesh,
) -> RemapResult:
    """Remap final wavefunctions to occupation numbers.

    Parameters
    ----------
    psi:
        Propagating orbitals ``(N_grid, N_orb)`` at LFD precision.
    psi0:
        SCF reference orbitals, same shape/precision.
    occupations:
        Reference occupations (2.0 for the first ``N_occ`` columns).
    """
    psi = np.asarray(psi)
    psi0 = np.asarray(psi0)
    if psi.shape != psi0.shape:
        raise ValueError(f"psi {psi.shape} and psi0 {psi0.shape} differ")
    f = np.asarray(occupations, dtype=np.float64)
    n_orb = psi.shape[1]
    n_occ = int(np.count_nonzero(f > 0))
    if n_occ == 0 or n_occ >= n_orb:
        raise ValueError(
            f"remap_occ needs both occupied and virtual orbitals, got "
            f"{n_occ} occupied of {n_orb}"
        )
    dv = mesh.dv
    f_occ = f[:n_occ]

    with call_site("remap_occ"):
        # Table VII shape: (m=N_occ, n=N_virt, k=N_grid).
        p = gemm(psi[:, :n_occ], psi0[:, n_occ:], trans_a="C", alpha=dv)
        # Remapped occupations of the initial occupied manifold.
        q = gemm(psi0[:, :n_occ], psi[:, :n_occ], trans_a="C", alpha=dv)
        # Per-orbital excitation matrix (small).
        w = gemm(p, p, trans_b="C")

    per_orbital = f_occ * np.real(np.diagonal(w))
    nexc = float(per_orbital.sum())
    occ_remapped = f_occ * np.real(np.sum(np.abs(q) ** 2, axis=0))
    return RemapResult(
        nexc=nexc,
        occ_remapped=occ_remapped,
        per_orbital_exc=per_orbital,
        p_shape=(n_occ, n_orb - n_occ, psi.shape[0]),
    )
