"""Run-health diagnostics: unitarity and orthonormality over time.

The paper's stability argument lives on two quantities nobody prints
by default: how far the propagated wavefunction's norms drift from 1
and how far its Gram matrix drifts from the identity between FP64 SCF
resets.  :class:`DiagnosticsCollector` samples both (plus the total
energy) per QD step.

Implementation note: the collector computes its overlaps with plain
NumPy (``np.einsum``/``np.matmul``), *not* through :mod:`repro.blas`
— diagnostics must neither perturb the nine-BLAS-calls-per-step
structure the artifact documents nor show up in MKL_VERBOSE logs.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.dcmesh.mesh import Mesh

__all__ = ["DiagnosticSample", "DiagnosticsCollector"]


@dataclasses.dataclass(frozen=True)
class DiagnosticSample:
    """Health metrics at one QD step."""

    step: int
    max_norm_error: float      #: max_j | ||psi_j|| - 1 |
    gram_error: float          #: max |Psi^H Psi dV - I|
    etot: float


class DiagnosticsCollector:
    """Accumulates per-step health samples for one run."""

    def __init__(self, mesh: Mesh, every: int = 1):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.mesh = mesh
        self.every = every
        self.samples: List[DiagnosticSample] = []

    def observe(self, step: int, psi: np.ndarray, etot: float) -> Optional[DiagnosticSample]:
        """Sample (if due); pure NumPy, no BLAS-layer calls."""
        if step % self.every:
            return None
        psi64 = psi.astype(np.complex128, copy=False)
        gram = np.matmul(psi64.conj().T, psi64) * self.mesh.dv
        n = gram.shape[0]
        norms = np.sqrt(np.real(np.diagonal(gram)))
        sample = DiagnosticSample(
            step=step,
            max_norm_error=float(np.abs(norms - 1.0).max()),
            gram_error=float(np.abs(gram - np.eye(n)).max()),
            etot=float(etot),
        )
        self.samples.append(sample)
        return sample

    # ------------------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """One metric across the samples."""
        if not self.samples:
            raise ValueError("no samples collected")
        return np.array([getattr(s, name) for s in self.samples])

    def max_gram_error(self) -> float:
        return float(self.column("gram_error").max())

    def energy_drift(self) -> float:
        """|etot(final) - etot(first)| over the sampled window."""
        e = self.column("etot")
        return float(abs(e[-1] - e[0]))

    def reset_visible(self, nscf: int) -> bool:
        """Whether the periodic FP64 reset is visible in the Gram-error
        series: the sample right after a block boundary must sit below
        the one right before it."""
        drops = 0
        boundaries = 0
        for a, b in zip(self.samples, self.samples[1:]):
            if a.step // nscf != b.step // nscf:
                boundaries += 1
                if b.gram_error < a.gram_error:
                    drops += 1
        return boundaries > 0 and drops >= max(1, boundaries // 2)
