"""Induced local-field dynamics — the "Maxwell" in DCMESH.

DCMESH's LFD phase is *Local Field Dynamics*: the electronic current
feeds back into the propagating vector potential.  In the long-
wavelength (dipole) limit the transverse induced field obeys

    d^2 A_ind / dt^2 = -4 pi j(t)

with ``j`` the volume-averaged electronic current along the
polarisation axis (Gaussian atomic units; the sign makes the response
restoring, i.e. plasmon-like: for a free-electron gas the pair
``j' = (n/V) A_total``, ``A'' = -4 pi j`` oscillates at the plasma
frequency ``omega_p = sqrt(4 pi n / V)``).

The paper's runs keep this feedback weak for the lead-titanate
workload ("nonlocal corrections are less pronounced for the use case
we are studying"); the reproduction therefore leaves it off by default
and exposes it as an extension (``SimulationConfig.induced_field``),
with the plasmon test pinning the physics.
"""

from __future__ import annotations

import numpy as np

__all__ = ["InducedField"]


class InducedField:
    """Velocity-Verlet integrator for the induced vector potential.

    Tracks the scalar amplitude along the laser polarisation axis;
    ``coupling`` scales the source term (1.0 = full dipole feedback,
    0.0 = off).
    """

    def __init__(self, dt: float, coupling: float = 1.0):
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if coupling < 0:
            raise ValueError(f"coupling must be non-negative, got {coupling}")
        self.dt = float(dt)
        self.coupling = float(coupling)
        self.a = 0.0        #: induced A amplitude, a.u.
        self.a_dot = 0.0    #: dA/dt
        self._last_j: float = 0.0
        self.history: list = []

    def source(self, current: float) -> float:
        """Acceleration of A_ind for a given current density."""
        return -4.0 * np.pi * self.coupling * current

    def step(self, current: float) -> float:
        """Advance one QD step given the instantaneous current; returns
        the new induced amplitude."""
        acc_old = self.source(self._last_j)
        acc_new = self.source(current)
        self.a += self.a_dot * self.dt + 0.5 * acc_old * self.dt**2
        self.a_dot += 0.5 * (acc_old + acc_new) * self.dt
        self._last_j = current
        self.history.append(self.a)
        return self.a

    def energy(self, volume: float) -> float:
        """Field energy ``V |dA/dt|^2 / (8 pi)`` (transverse E-field)."""
        return volume * self.a_dot**2 / (8.0 * np.pi)
