"""Shared scalar/array type vocabulary used across the package.

The paper distinguishes *storage* precision (FP64 vs FP32 for the LFD
wavefunctions) from the *compute mode* of the BLAS calls operating on
that storage (BF16/TF32/... emulated internally by the library).  This
module holds the storage-precision vocabulary; the compute modes live
in :mod:`repro.blas.modes`.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "Precision",
    "real_dtype",
    "complex_dtype",
    "MANTISSA_BITS",
    "EXPONENT_BITS",
]


class Precision(enum.Enum):
    """Storage / arithmetic precision formats discussed in the paper.

    Table IV of the paper lists the exponent/mantissa widths of the
    four formats relevant to the study; ``FP16`` and ``INT8`` appear
    only in the theoretical-peak table (Table I) and are included for
    completeness.
    """

    FP64 = "fp64"
    FP32 = "fp32"
    TF32 = "tf32"
    BF16 = "bf16"
    FP16 = "fp16"
    INT8 = "int8"

    @property
    def is_native(self) -> bool:
        """Whether NumPy can store this format directly.

        TF32 and BF16 have no NumPy dtype; they are emulated as FP32
        values whose low mantissa bits are zero (see
        :mod:`repro.blas.rounding`).
        """
        return self in (Precision.FP64, Precision.FP32, Precision.FP16)


#: Number of explicit mantissa (fraction) bits per format — Table IV.
MANTISSA_BITS = {
    Precision.FP64: 52,
    Precision.FP32: 23,
    Precision.TF32: 10,
    Precision.BF16: 7,
    Precision.FP16: 10,
}

#: Number of exponent bits per format — Table IV.
EXPONENT_BITS = {
    Precision.FP64: 11,
    Precision.FP32: 8,
    Precision.TF32: 8,
    Precision.BF16: 8,
    Precision.FP16: 5,
}


def real_dtype(precision: Precision) -> np.dtype:
    """Return the NumPy dtype used to *store* real data at ``precision``.

    Non-native formats (BF16, TF32) are stored in FP32 carriers.
    """
    if precision is Precision.FP64:
        return np.dtype(np.float64)
    if precision in (Precision.FP32, Precision.BF16, Precision.TF32):
        return np.dtype(np.float32)
    if precision is Precision.FP16:
        return np.dtype(np.float16)
    raise ValueError(f"no real storage dtype for {precision}")


def complex_dtype(precision: Precision) -> np.dtype:
    """Return the NumPy dtype used to *store* complex data at ``precision``."""
    if precision is Precision.FP64:
        return np.dtype(np.complex128)
    if precision in (Precision.FP32, Precision.BF16, Precision.TF32):
        return np.dtype(np.complex64)
    raise ValueError(f"no complex storage dtype for {precision}")
