"""Unified metrics-and-tracing registry for the BLAS + LFD pipeline.

The paper extracts every per-call number (Tables VI/VII, Fig. 3b) from
``MKL_VERBOSE=2`` interception logs; this module generalises that
mechanism into one low-overhead telemetry substrate shared by the whole
reproduction:

* **monotonic counters** — label-keyed (``blas.calls{routine=cgemm,
  site=nlp_prop}``), for call counts, cache hits/misses, bytes, flops;
* **histograms** — streaming count/total/min/max plus logarithmic
  buckets, for per-call and per-span durations;
* **span timers** — context-managed phase timings (QD step, SCF block,
  mode sweep) recorded as Chrome ``trace_event``-compatible events.

The design constraint is the *disabled* path: the LFD hot loop issues
three GEMMs per QD step and every instrumentation site is on that path.
When telemetry is off, :func:`active` returns ``None`` from a single
module-global read, so a hook is one function call, one ``is not None``
test, and **zero allocations** (guarded by
``tests/unit/test_telemetry.py::test_disabled_path_allocates_nothing``).
All aggregation cost is paid only while a collector is installed.

Enable programmatically (:func:`enable` / the :func:`telemetry` scope)
or via the environment variable ``REPRO_TELEMETRY`` — the same
no-source-change contract as ``MKL_BLAS_COMPUTE_MODE`` and
``MKL_VERBOSE``.

The :mod:`repro.blas.verbose` MKL-look-alike log is a *consumer* of the
same per-call event stream (see :func:`repro.blas.verbose.emit_call`):
one emission feeds both the thread-local ``VerboseRecord`` log and this
registry, so the two can never disagree about what ran.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.telemetry.provenance import register_call_site as _register_call_site

__all__ = [
    "TELEMETRY_ENV",
    "MAX_EVENTS",
    "MAX_EVENTS_ENV",
    "Histogram",
    "Telemetry",
    "active",
    "telemetry_enabled",
    "enable",
    "disable",
    "telemetry",
    "format_counter_name",
    "parse_counter_name",
]

#: Environment variable that installs a collector at import time.
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Environment variable overriding the event-buffer cap (an integer;
#: invalid or non-positive values fall back to the default).
MAX_EVENTS_ENV = "REPRO_TELEMETRY_MAX_EVENTS"

_DEFAULT_MAX_EVENTS = 1_000_000


def _max_events_from_env() -> int:
    """The event-buffer cap, honouring ``REPRO_TELEMETRY_MAX_EVENTS``."""
    raw = os.environ.get(MAX_EVENTS_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            return _DEFAULT_MAX_EVENTS
        if value > 0:
            return value
    return _DEFAULT_MAX_EVENTS


#: Hard cap on buffered trace events (default 1,000,000, configurable
#: via ``REPRO_TELEMETRY_MAX_EVENTS``).  Beyond it new events are
#: counted in :attr:`Telemetry.dropped_events` and the
#: ``telemetry.events_dropped`` counter instead of stored, so a very
#: long run degrades to counters-only rather than exhausting memory.
MAX_EVENTS = _max_events_from_env()

#: Histogram bucket upper bounds, seconds (log-spaced 1 us .. 10 s).
BUCKET_BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

#: Bytes per element of each BLAS routine's storage dtype.
_ROUTINE_ITEMSIZE = {"sgemm": 4, "dgemm": 8, "cgemm": 8, "zgemm": 16}


class Histogram:
    """Streaming summary of one metric: count/total/min/max + buckets."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(BUCKET_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-safe form (used by the JSONL exporter round trip)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": list(self.buckets),
            "bounds": list(BUCKET_BOUNDS),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        h = cls()
        h.count = int(data["count"])
        h.total = float(data["total"])
        h.min = float("inf") if data["min"] is None else float(data["min"])
        h.max = float("-inf") if data["max"] is None else float(data["max"])
        h.buckets = [int(b) for b in data["buckets"]]
        return h


def _label_key(labels: dict) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label(text: str) -> str:
    """Backslash-escape the characters the rendered form reserves."""
    for ch in ("\\", "{", "}", "=", ","):
        text = text.replace(ch, "\\" + ch)
    return text


def format_counter_name(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Render ``name{k=v,...}`` the way the summary table prints it.

    Label keys and values are backslash-escaped (``\\`` ``{`` ``}``
    ``=`` ``,``) so the rendering is unambiguous — and invertible by
    :func:`parse_counter_name` — whatever the labels contain.  Normal
    identifiers render exactly as before.
    """
    if not labels:
        return name
    inner = ",".join(f"{_escape_label(k)}={_escape_label(v)}" for k, v in labels)
    return f"{name}{{{inner}}}"


def parse_counter_name(rendered: str) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    """Inverse of :func:`format_counter_name`.

    Returns ``(name, labels)`` with labels in rendered (sorted) order.
    The run-report generator uses this to regroup the flat counter
    names a JSONL trace stores.
    """
    if not rendered.endswith("}") or "{" not in rendered:
        return rendered, ()
    brace = rendered.index("{")
    name, inner = rendered[:brace], rendered[brace + 1 : -1]
    labels = []
    key, buf, escaped = None, [], False
    for ch in inner:
        if escaped:
            buf.append(ch)
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == "=" and key is None:
            key, buf = "".join(buf), []
        elif ch == ",":
            labels.append((key or "", "".join(buf)))
            key, buf = None, []
        else:
            buf.append(ch)
    labels.append((key or "", "".join(buf)))
    return name, tuple(labels)


class Telemetry:
    """One collector: counters, histograms, and a trace-event buffer.

    Thread-safe: all mutation happens under one lock.  The intended
    lifetime is one run/experiment — install with :func:`enable` or the
    :func:`telemetry` context manager, export with
    :mod:`repro.telemetry.exporters`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self.created_at = time.time()
        #: (name, labels) -> monotonic value
        self.counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
        #: (name, labels) -> last set value (non-monotonic)
        self.gauges: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.events: List[dict] = []
        self.dropped_events = 0

    # -- clock ---------------------------------------------------------

    def now(self) -> float:
        """Seconds since the collector was created (trace timebase)."""
        return time.perf_counter() - self._t0

    # -- metrics -------------------------------------------------------

    def count(self, name: str, n: float = 1.0, **labels) -> None:
        """Add ``n`` to the monotonic counter ``name`` (label-keyed)."""
        key = (name, _label_key(labels))
        with self._lock:
            self.counters[key] = self.counters.get(key, 0.0) + n

    def counter_value(self, name: str, **labels) -> float:
        """Current value of one counter series (0 if never touched)."""
        with self._lock:
            return self.counters.get((name, _label_key(labels)), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of one counter across all label sets."""
        with self._lock:
            return sum(v for (n, _), v in self.counters.items() if n == name)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins).

        Gauges carry levels rather than totals — the drift monitor's
        budget-utilization readings are the canonical use.
        """
        key = (name, _label_key(labels))
        with self._lock:
            self.gauges[key] = float(value)

    def gauge_value(self, name: str, **labels) -> Optional[float]:
        """Current value of one gauge series (``None`` if never set)."""
        with self._lock:
            return self.gauges.get((name, _label_key(labels)))

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram ``name``."""
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.observe(value)

    # -- events --------------------------------------------------------

    def _append_event(self, event: dict) -> None:
        with self._lock:
            if len(self.events) >= MAX_EVENTS:
                # Not a silent cap: the drop is visible both as the
                # attribute and as a first-class counter series (the
                # lock is held, so mutate the dict directly).
                self.dropped_events += 1
                key = ("telemetry.events_dropped", ())
                self.counters[key] = self.counters.get(key, 0.0) + 1.0
                return
            self.events.append(event)

    def instant(self, name: str, cat: str = "app", **args) -> None:
        """Record a point-in-time event."""
        self._append_event(
            {"name": name, "cat": cat, "ph": "i", "ts": self.now(), "args": args}
        )

    @contextlib.contextmanager
    def span(self, name: str, cat: str = "app", **args) -> Iterator[None]:
        """Time a phase: emits one complete (``ph: X``) trace event and
        feeds the ``span.<name>`` duration histogram."""
        start = self.now()
        try:
            yield
        finally:
            dur = self.now() - start
            self._append_event(
                {
                    "name": name,
                    "cat": cat,
                    "ph": "X",
                    "ts": start,
                    "dur": dur,
                    "args": args,
                }
            )
            self.observe(f"span.{name}", dur)

    # -- the BLAS per-call stream -------------------------------------

    def blas_call(self, rec) -> None:
        """Ingest one BLAS call record (duck-typed
        :class:`repro.blas.verbose.VerboseRecord`).

        This is the telemetry half of the unified event stream: the
        verbose log keeps the record object, we keep counters plus a
        trace event carrying every field needed to reconstruct the
        record (see :meth:`verbose_records`).
        """
        mode = getattr(rec.mode, "env_value", str(rec.mode))
        backend = getattr(rec, "backend", "numpy") or "numpy"
        self.count(
            "blas.calls",
            routine=rec.routine,
            site=rec.site or "-",
            mode=mode,
            backend=backend,
        )
        self.count("blas.flops", rec.flops, routine=rec.routine)
        itemsize = _ROUTINE_ITEMSIZE.get(rec.routine, 8)
        nbytes = itemsize * rec.batch * (rec.m * rec.k + rec.k * rec.n + rec.m * rec.n)
        self.count("blas.bytes", nbytes, routine=rec.routine)
        self.observe("blas.seconds", rec.seconds)
        # Per-backend wall attribution: the run report and the pareto
        # experiment split emulation time by executing backend.
        self.count("blas.backend.calls", backend=backend)
        self.count("blas.backend.seconds", rec.seconds, backend=backend)
        if rec.model_seconds is not None:
            self.observe("blas.model_seconds", rec.model_seconds)
        # Per-call-site provenance: stable ID keyed series, the basis of
        # the run report's hot table and any per-site precision policy.
        site_id = getattr(rec, "site_id", "")
        if not site_id:
            site_id = _register_call_site(
                rec.site or "-",
                "gemm_batch" if rec.batch > 1 else "gemm",
                rec.routine,
                rec.m,
                rec.n,
                rec.k,
                rec.batch,
            )
        self.count("blas.site.calls", site_id=site_id)
        self.count("blas.site.flops", rec.flops, site_id=site_id)
        self.count("blas.site.bytes", nbytes, site_id=site_id)
        self.count("blas.site.seconds", rec.seconds, site_id=site_id)
        if rec.model_seconds is not None:
            self.count("blas.site.model_seconds", rec.model_seconds, site_id=site_id)
        ts = self.now() - rec.seconds
        self._append_event(
            {
                "name": rec.routine,
                "cat": "blas",
                "ph": "X",
                "ts": ts if ts > 0.0 else 0.0,
                "dur": rec.seconds,
                "args": {
                    "trans_a": rec.trans_a,
                    "trans_b": rec.trans_b,
                    "m": rec.m,
                    "n": rec.n,
                    "k": rec.k,
                    "mode": mode,
                    "site": rec.site,
                    "site_id": site_id,
                    "batch": rec.batch,
                    "model_seconds": rec.model_seconds,
                    "backend": backend,
                },
            }
        )

    def blas_events(self) -> List[dict]:
        """All buffered BLAS per-call events, in emission order."""
        with self._lock:
            return [e for e in self.events if e.get("cat") == "blas"]

    def verbose_records(self) -> list:
        """Rebuild :class:`~repro.blas.verbose.VerboseRecord` objects
        from the buffered BLAS events — the proof that the MKL-style
        log is derivable from this stream alone."""
        from repro.blas.modes import ComputeMode
        from repro.blas.verbose import VerboseRecord

        records = []
        for e in self.blas_events():
            a = e["args"]
            records.append(
                VerboseRecord(
                    routine=e["name"],
                    trans_a=a["trans_a"],
                    trans_b=a["trans_b"],
                    m=a["m"],
                    n=a["n"],
                    k=a["k"],
                    mode=ComputeMode.parse(a["mode"]),
                    seconds=e["dur"],
                    model_seconds=a["model_seconds"],
                    site=a["site"],
                    batch=a["batch"],
                    site_id=a.get("site_id", ""),
                    backend=a.get("backend", "numpy"),
                )
            )
        return records

    # -- snapshots -----------------------------------------------------

    def counters_flat(self) -> Dict[str, float]:
        """Counters as ``{"name{k=v}": value}`` (stable sorted keys)."""
        with self._lock:
            items = list(self.counters.items())
        return {
            format_counter_name(name, labels): value
            for (name, labels), value in sorted(items)
        }

    def gauges_flat(self) -> Dict[str, float]:
        """Gauges as ``{"name{k=v}": value}`` (stable sorted keys)."""
        with self._lock:
            items = list(self.gauges.items())
        return {
            format_counter_name(name, labels): value
            for (name, labels), value in sorted(items)
        }

    def snapshot(self) -> dict:
        """JSON-safe summary of everything the collector holds."""
        with self._lock:
            hists = {name: h.to_dict() for name, h in sorted(self.histograms.items())}
            n_events = len(self.events)
            dropped = self.dropped_events
        return {
            "counters": self.counters_flat(),
            "gauges": self.gauges_flat(),
            "histograms": hists,
            "n_events": n_events,
            "dropped_events": dropped,
        }


# ----------------------------------------------------------------------
# Module-global installation: the disabled fast path is one global read.
# ----------------------------------------------------------------------

_state_lock = threading.Lock()
_active: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The installed collector, or ``None`` when telemetry is off.

    This is *the* hot-path guard: call sites do
    ``t = active()`` / ``if t is not None: t.count(...)`` so the
    disabled path performs no allocation and no locking.
    """
    return _active


def telemetry_enabled() -> bool:
    """Whether a collector is currently installed."""
    return _active is not None


def enable(collector: Optional[Telemetry] = None) -> Telemetry:
    """Install ``collector`` (or a fresh one) process-wide; returns it."""
    global _active
    with _state_lock:
        _active = collector if collector is not None else Telemetry()
        return _active


def disable() -> Optional[Telemetry]:
    """Uninstall and return the current collector (``None`` if off)."""
    global _active
    with _state_lock:
        prev = _active
        _active = None
        return prev


def _set_active(collector: Optional[Telemetry]) -> None:
    global _active
    with _state_lock:
        _active = collector


@contextlib.contextmanager
def telemetry(out_dir=None) -> Iterator[Telemetry]:
    """Scoped telemetry: install a fresh collector, yield it, restore
    the previous state on exit.

    ``out_dir`` (optional) exports the JSONL trace, the Chrome trace
    and the text summary there on exit — the one-liner the experiment
    runner's ``--telemetry`` flag builds on.
    """
    prev = _active
    collector = enable()
    try:
        yield collector
    finally:
        _set_active(prev)
        if out_dir is not None:
            from repro.telemetry.exporters import export_all

            export_all(collector, out_dir)


# Honour the environment contract at import, like MKL_VERBOSE.
if os.environ.get(TELEMETRY_ENV, "").strip() not in ("", "0"):
    enable()
