"""Live error-budget drift monitoring (the drift observatory).

The paper's accuracy argument — how far nexc/ekin/javg wander under
each BLAS compute mode — is established today *post hoc*: run the
trajectory, diff it against an FP32 reference, plot.  ROADMAP item 2
(an adaptive precision scheduler) needs the same information *while
the run is in flight*, so a policy can escalate BF16 -> BF16x2 -> FP32
before the budget is spent rather than after.

:class:`DriftMonitor` is that live view.  The MD driver
(:meth:`repro.dcmesh.simulation.Simulation.run`) feeds it one
:class:`~repro.dcmesh.observables.QDRecord` per QD step; when a
:class:`ReferenceTrajectory` is attached the monitor computes the
running deviation per observable (the same quantity
:class:`repro.core.deviation.DeviationSeries` reports offline),
normalises it against an :class:`ErrorBudget` envelope derived from
:func:`repro.core.error_budget.per_step_state_error`, and

* maintains ``drift.budget_utilization{observable}`` gauges on the
  installed telemetry collector,
* emits ``drift.sample`` events (cat ``drift``) so the run report can
  reconstruct the whole series offline,
* fires **threshold-crossing alerts** — ``warn`` at 80 % of budget,
  ``breach`` at 100 % — exactly once per (observable, level), as
  ``drift.alert`` instant events plus ``drift.alerts{observable,level}``
  counters.

Without a reference (the ambient ``--drift-budget`` / ``REPRO_DRIFT=1``
mode) the monitor records the observable series and gauges only; there
is nothing to deviate *from*, so no alerts fire.

Import discipline: this module is imported by the BLAS/propagation hot
path's neighbours (``dcmesh.simulation`` / ``dcmesh.propagate``), and
``core.deviation`` imports ``dcmesh.simulation`` — so everything from
``repro.core`` is imported lazily inside methods, never at module
scope.  The only top-level imports are numpy, the standard library and
:mod:`repro.telemetry.registry`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.telemetry.registry import active as _telemetry_active

__all__ = [
    "DRIFT_ENV",
    "DRIFT_OBSERVABLES",
    "ErrorBudget",
    "ReferenceTrajectory",
    "DriftSample",
    "DriftAlert",
    "DriftMonitor",
    "drift_enabled",
    "set_drift_enabled",
    "install_drift_monitor",
    "active_drift_monitor",
    "drift_monitoring",
]

#: ``REPRO_DRIFT=1`` enables ambient drift monitoring with no source
#: changes, mirroring ``REPRO_TELEMETRY`` (see registry.py).
DRIFT_ENV = "REPRO_DRIFT"

#: The Fig. 1 observables the monitor tracks.  Mirrors
#: ``repro.core.deviation.OBSERVABLES`` (not imported: cycle hazard).
DRIFT_OBSERVABLES = ("nexc", "javg", "ekin")

#: Default alert thresholds as fractions of the budget envelope.
WARN_AT = 0.8
BREACH_AT = 1.0


# ----------------------------------------------------------------------
# Budget envelope.
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ErrorBudget:
    """Allowed relative deviation as a function of QD step.

    ``envelope(step) = per_step * headroom * step ** exponent``.

    ``per_step`` is the §V-B per-application relative error
    (:func:`repro.core.error_budget.per_step_state_error`);
    ``exponent`` models how injections accumulate (1.0 = coherent
    worst case, 0.5 = random walk); ``headroom`` is the multiplier
    separating "expected" from "alarming".
    """

    per_step: float
    exponent: float = 1.0
    headroom: float = 1.0

    def __post_init__(self) -> None:
        if self.per_step < 0 or self.headroom <= 0:
            raise ValueError("per_step must be >= 0 and headroom > 0")

    def envelope(self, step: int) -> float:
        """Budgeted relative deviation at ``step`` (0 at step 0)."""
        if step <= 0:
            return 0.0
        return self.per_step * self.headroom * float(step) ** self.exponent

    @classmethod
    def for_mode(
        cls,
        mode,
        dt: float,
        h_nl_norm: float,
        exponent: float = 1.0,
        headroom: float = 1.0,
    ) -> "ErrorBudget":
        """Budget from the analytic per-step bound for ``mode``.

        Lazy import: ``core.error_budget`` transitively imports the
        simulation driver.
        """
        from repro.blas.modes import resolve_mode
        from repro.core.error_budget import per_step_state_error

        per_step = per_step_state_error(resolve_mode(mode), dt, h_nl_norm)
        return cls(per_step=per_step, exponent=exponent, headroom=headroom)

    @classmethod
    def from_fit(cls, fit, headroom: float = 1.0) -> "ErrorBudget":
        """Budget from a measured :class:`repro.core.error_budget.DriftFit`.

        The fitted power law *is* the envelope: ``amplitude`` plays the
        per-step role, ``exponent`` carries over.
        """
        return cls(
            per_step=float(fit.amplitude),
            exponent=float(fit.exponent),
            headroom=headroom,
        )


# ----------------------------------------------------------------------
# Reference trajectory.
# ----------------------------------------------------------------------


class ReferenceTrajectory:
    """Per-step observable values of a prior (reference) run.

    Indexed by QD step number, so a monitored run may start mid-way
    (resume) or stop early and still line up sample-for-sample.
    """

    def __init__(self, steps, columns: Dict[str, np.ndarray]):
        steps = np.asarray(steps, dtype=int)
        self._index = {int(s): i for i, s in enumerate(steps)}
        self._columns = {k: np.asarray(v, dtype=float) for k, v in columns.items()}
        for name, col in self._columns.items():
            if col.shape != steps.shape:
                raise ValueError(
                    f"column {name!r} has shape {col.shape}, steps {steps.shape}"
                )

    @classmethod
    def from_result(cls, result) -> "ReferenceTrajectory":
        """Build from a :class:`~repro.dcmesh.simulation.SimulationResult`."""
        return cls(
            result.column("step"),
            {obs: result.column(obs) for obs in DRIFT_OBSERVABLES},
        )

    @classmethod
    def from_records(cls, records) -> "ReferenceTrajectory":
        """Build from a list of :class:`~repro.dcmesh.observables.QDRecord`."""
        return cls(
            [r.step for r in records],
            {obs: [getattr(r, obs) for r in records] for obs in DRIFT_OBSERVABLES},
        )

    def value(self, observable: str, step: int) -> Optional[float]:
        """Reference value at ``step``, or None if the step is unknown."""
        i = self._index.get(int(step))
        if i is None:
            return None
        col = self._columns.get(observable)
        return None if col is None else float(col[i])

    def __len__(self) -> int:
        return len(self._index)


# ----------------------------------------------------------------------
# Samples and alerts.
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DriftSample:
    """One observable at one QD step, with its deviation accounting."""

    step: int
    time_fs: float
    observable: str
    value: float
    deviation: Optional[float] = None       #: |value - reference|
    relative: Optional[float] = None        #: deviation / |reference|
    utilization: Optional[float] = None     #: relative / budget envelope


@dataclasses.dataclass(frozen=True)
class DriftAlert:
    """A threshold crossing: ``level`` is ``"warn"`` or ``"breach"``."""

    level: str
    observable: str
    step: int
    time_fs: float
    utilization: float
    relative: float
    envelope: float


class DriftMonitor:
    """Samples observables per QD step and polices the error budget.

    Parameters
    ----------
    mode:
        Compute mode of the monitored run (labels gauges and events).
    budget:
        The :class:`ErrorBudget` envelope.  May be attached later via
        :meth:`set_budget` / :meth:`set_budget_for_mode` — the MD
        driver derives it from the first SCF block's ``||H_nl||``.
    reference:
        A :class:`ReferenceTrajectory` to deviate against.  Without
        one the monitor records values only and never alerts.
    warn_at, breach_at:
        Alert thresholds as fractions of the envelope.
    """

    def __init__(
        self,
        mode=None,
        budget: Optional[ErrorBudget] = None,
        reference: Optional[ReferenceTrajectory] = None,
        warn_at: float = WARN_AT,
        breach_at: float = BREACH_AT,
        observables: Tuple[str, ...] = DRIFT_OBSERVABLES,
    ):
        if not (0.0 < warn_at <= breach_at):
            raise ValueError("need 0 < warn_at <= breach_at")
        self.mode = mode
        self.budget = budget
        self.reference = reference
        self.warn_at = float(warn_at)
        self.breach_at = float(breach_at)
        self.observables = tuple(observables)
        self.samples: Dict[str, List[DriftSample]] = {o: [] for o in self.observables}
        self.alerts: List[DriftAlert] = []
        self.qd_steps = 0
        self.latch_resets = 0
        self._fired: set = set()
        self._lock = threading.Lock()

    # -- configuration -------------------------------------------------

    def set_budget(self, budget: ErrorBudget) -> None:
        self.budget = budget

    def set_budget_for_mode(
        self, mode, dt: float, h_nl_norm: float, headroom: float = 1.0
    ) -> ErrorBudget:
        """Derive and attach the analytic budget for ``mode``."""
        self.budget = ErrorBudget.for_mode(mode, dt, h_nl_norm, headroom=headroom)
        return self.budget

    def reset_alert_latches(self, step: Optional[int] = None) -> int:
        """Re-arm the once-per-(observable, level) alert latches.

        Called at SCF boundaries: the FP64 SCF update re-anchors the
        state, so a breach *after* the reset is new information — with
        the latches left set it would be silently swallowed, which is
        exactly the blind spot the adaptive scheduler's demotion logic
        cannot afford.  Returns the number of latches cleared and emits
        ``drift.latch_resets`` so resets are visible in the run report.
        """
        with self._lock:
            cleared = len(self._fired)
            self._fired.clear()
            self.latch_resets += 1
        if cleared:
            t = _telemetry_active()
            if t is not None:
                t.count("drift.latch_resets")
                t.instant(
                    "drift.latch_reset",
                    cat="drift",
                    cleared=cleared,
                    step=-1 if step is None else int(step),
                    mode=self.mode_label,
                )
        return cleared

    def current_utilization(self) -> Optional[float]:
        """Max budget utilization over the latest sample per observable.

        The scheduler's control signal: ``None`` when no referenced,
        budgeted sample exists yet; ``inf`` propagates (a zero envelope
        with nonzero deviation is maximally urgent).
        """
        worst = None
        with self._lock:
            for obs in self.observables:
                samples = self.samples[obs]
                if not samples:
                    continue
                u = samples[-1].utilization
                if u is None:
                    continue
                if worst is None or u > worst:
                    worst = u
        return worst

    @property
    def mode_label(self) -> str:
        m = self.mode
        if m is None:
            return "-"
        return getattr(m, "env_value", None) or str(m)

    # -- hot-path hooks ------------------------------------------------

    def note_qd_step(self, t_au: float) -> None:
        """Cheap per-QD-step tick from :class:`LFDPropagator`.

        Keeps an independent step count so the monitor can tell when a
        propagation step produced no observation (a driver bug the
        observe/step counts would silently mask otherwise).
        """
        self.qd_steps += 1

    def observe(self, record) -> List[DriftAlert]:
        """Ingest one QD record; returns any alerts it triggered."""
        fired: List[DriftAlert] = []
        t = _telemetry_active()
        for obs in self.observables:
            value = float(getattr(record, obs))
            sample = self._build_sample(obs, record.step, record.time_fs, value)
            with self._lock:
                self.samples[obs].append(sample)
            if t is not None:
                self._publish_sample(t, sample)
            if sample.utilization is not None:
                fired.extend(self._check_thresholds(t, sample))
        return fired

    def _build_sample(
        self, obs: str, step: int, time_fs: float, value: float
    ) -> DriftSample:
        ref_value = (
            self.reference.value(obs, step) if self.reference is not None else None
        )
        if ref_value is None:
            return DriftSample(step=step, time_fs=time_fs, observable=obs, value=value)
        deviation = abs(value - ref_value)
        relative = deviation / max(abs(ref_value), np.finfo(np.float64).tiny)
        utilization = None
        if self.budget is not None:
            env = self.budget.envelope(step)
            utilization = relative / env if env > 0.0 else (0.0 if relative == 0.0 else np.inf)
        return DriftSample(
            step=step,
            time_fs=time_fs,
            observable=obs,
            value=value,
            deviation=deviation,
            relative=relative,
            utilization=None if utilization is None else float(utilization),
        )

    def _publish_sample(self, t, s: DriftSample) -> None:
        t.count("drift.samples", observable=s.observable)
        args = {
            "observable": s.observable,
            "step": s.step,
            "time_fs": s.time_fs,
            "value": s.value,
            "mode": self.mode_label,
        }
        if s.deviation is not None:
            args.update(deviation=s.deviation, relative=s.relative)
            t.gauge("drift.deviation", s.deviation, observable=s.observable)
        if s.utilization is not None and np.isfinite(s.utilization):
            args["utilization"] = s.utilization
            t.gauge("drift.budget_utilization", s.utilization, observable=s.observable)
        t.instant("drift.sample", cat="drift", **args)

    def _check_thresholds(self, t, s: DriftSample) -> List[DriftAlert]:
        fired: List[DriftAlert] = []
        env = self.budget.envelope(s.step) if self.budget is not None else 0.0
        for level, threshold in (("breach", self.breach_at), ("warn", self.warn_at)):
            key = (s.observable, level)
            if s.utilization < threshold or key in self._fired:
                continue
            self._fired.add(key)
            alert = DriftAlert(
                level=level,
                observable=s.observable,
                step=s.step,
                time_fs=s.time_fs,
                utilization=float(s.utilization),
                relative=float(s.relative),
                envelope=float(env),
            )
            with self._lock:
                self.alerts.append(alert)
            fired.append(alert)
            if t is not None:
                t.count("drift.alerts", observable=s.observable, level=level)
                t.instant(
                    "drift.alert",
                    cat="drift",
                    level=level,
                    observable=s.observable,
                    step=s.step,
                    utilization=alert.utilization,
                    relative=alert.relative,
                    envelope=alert.envelope,
                    mode=self.mode_label,
                )
        return fired

    # -- offline views -------------------------------------------------

    def breaches(self) -> List[DriftAlert]:
        return [a for a in self.alerts if a.level == "breach"]

    def warnings(self) -> List[DriftAlert]:
        return [a for a in self.alerts if a.level == "warn"]

    def deviation_series(self, observable: str):
        """The samples as a :class:`repro.core.deviation.DeviationSeries`.

        Only available when a reference was attached (otherwise there
        is no deviation to report).  Lazy import — see module docstring.
        """
        from repro.core.deviation import DeviationSeries

        samples = [s for s in self.samples[observable] if s.deviation is not None]
        if not samples:
            raise ValueError(
                f"no referenced samples for {observable!r} (reference attached?)"
            )
        ref = np.array(
            [self.reference.value(observable, s.step) for s in samples], dtype=float
        )
        return DeviationSeries(
            observable=observable,
            mode=self.mode,
            time_fs=np.array([s.time_fs for s in samples]),
            deviation=np.array([s.deviation for s in samples]),
            reference=ref,
        )

    def fit(self, observable: str):
        """Power-law drift fit over this run's deviations (or None).

        Needs at least 5 samples (the step-0 zero is skipped by
        :func:`repro.core.error_budget.fit_drift`).
        """
        from repro.core.error_budget import fit_drift

        devs = [
            s.deviation
            for s in self.samples.get(observable, [])
            if s.deviation is not None
        ]
        if len(devs) < 5:
            return None
        try:
            return fit_drift(devs)
        except (ValueError, np.linalg.LinAlgError):
            return None

    def summary(self) -> dict:
        """JSON-friendly digest (the run report's drift section)."""
        per_obs = {}
        for obs in self.observables:
            samples = self.samples[obs]
            refd = [s for s in samples if s.utilization is not None]
            finite = [s.utilization for s in refd if np.isfinite(s.utilization)]
            fit = self.fit(obs)
            per_obs[obs] = {
                "samples": len(samples),
                "final_value": samples[-1].value if samples else None,
                "max_deviation": max(
                    (s.deviation for s in samples if s.deviation is not None),
                    default=None,
                ),
                "max_utilization": max(finite, default=None),
                "fit": None
                if fit is None
                else {
                    "amplitude": fit.amplitude,
                    "exponent": fit.exponent,
                    "r_squared": fit.r_squared,
                },
            }
        return {
            "mode": self.mode_label,
            "qd_steps": self.qd_steps,
            "latch_resets": self.latch_resets,
            "budget": None
            if self.budget is None
            else dataclasses.asdict(self.budget),
            "observables": per_obs,
            "alerts": [dataclasses.asdict(a) for a in self.alerts],
        }

    def finalize(self) -> dict:
        """Publish the end-of-run digest to the telemetry collector."""
        summary = self.summary()
        t = _telemetry_active()
        if t is not None:
            for obs, row in summary["observables"].items():
                if row["max_utilization"] is not None:
                    t.gauge(
                        "drift.max_utilization", row["max_utilization"], observable=obs
                    )
                if row["fit"] is not None:
                    t.gauge("drift.fit.exponent", row["fit"]["exponent"], observable=obs)
                    t.gauge(
                        "drift.fit.amplitude", row["fit"]["amplitude"], observable=obs
                    )
            t.instant(
                "drift.summary",
                cat="drift",
                mode=summary["mode"],
                qd_steps=summary["qd_steps"],
                alerts=len(summary["alerts"]),
            )
        return summary


# ----------------------------------------------------------------------
# Ambient installation (the --drift-budget / REPRO_DRIFT path).
# ----------------------------------------------------------------------

_installed: Optional[DriftMonitor] = None
_enabled_override: Optional[bool] = None


def drift_enabled() -> bool:
    """Whether ambient drift monitoring is requested.

    Priority: :func:`set_drift_enabled` override, then the
    ``REPRO_DRIFT`` environment variable.
    """
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get(DRIFT_ENV, "").strip() not in ("", "0")


def set_drift_enabled(enabled: Optional[bool]) -> None:
    """Force ambient drift monitoring on/off (None = defer to env)."""
    global _enabled_override
    _enabled_override = None if enabled is None else bool(enabled)


def install_drift_monitor(monitor: Optional[DriftMonitor]) -> Optional[DriftMonitor]:
    """Install ``monitor`` as the ambient monitor; returns the previous one."""
    global _installed
    prev = _installed
    _installed = monitor
    return prev


def active_drift_monitor() -> Optional[DriftMonitor]:
    """The ambient monitor, if installed (one global read)."""
    return _installed


@contextlib.contextmanager
def drift_monitoring(
    monitor: Optional[DriftMonitor] = None, **kwargs
) -> Iterator[DriftMonitor]:
    """Scope with an ambient drift monitor installed.

    >>> with drift_monitoring(reference=ref, budget=budget) as dm:
    ...     sim.run(mode="FLOAT_TO_BF16")
    >>> dm.breaches()
    """
    dm = monitor if monitor is not None else DriftMonitor(**kwargs)
    prev = install_drift_monitor(dm)
    try:
        yield dm
    finally:
        install_drift_monitor(prev)
