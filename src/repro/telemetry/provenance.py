"""Call-site provenance: stable identities for BLAS invocations.

The telemetry registry's ``blas.calls{routine,site,mode}`` counters key
per-call data by the *application* anchor (``nlp_prop`` /
``calc_energy`` / ``remap_occ``) — coarse enough that the two very
different GEMMs inside ``nlp_prop`` (the ``(N_orb, N_orb, N_grid)``
reduction and the ``(N_orb, N_orb, N_orb)`` subspace product) land in
one bucket.  Any *per-site* precision policy (ROADMAP item 2: escalate
BF16 -> BF16x2 -> FP32 only where drift approaches budget) needs a
finer, stable key.

This module assigns every BLAS invocation a **call-site ID**::

    <anchor>@<function>/<routine>/<shape class>

* ``anchor`` — the application label installed by
  :func:`repro.blas.gemm.call_site` (``-`` when unlabeled);
* ``function`` — the BLAS entry point the call flowed through
  (``gemm`` or ``gemm_batch``);
* ``routine`` — the effective BLAS routine (``sgemm`` ... ``zgemm``);
* ``shape class`` — the operand dimensions bucketed to the next power
  of two (``m x n x k``, plus ``b<batch>`` for batched calls), so the
  ID is stable across small lattice-size changes while still
  separating the big grid-contracted GEMMs from the small subspace
  ones.

Example: ``nlp_prop@gemm/cgemm/32x32x2048``.

IDs are deterministic functions of those fields — the same run always
produces the same IDs, and two runs of different sizes share IDs
whenever their shapes fall in the same class.  The registry interns
every site it sees (:func:`register_call_site`), so the run-report
generator can enumerate them with first-seen exact dimensions attached.

A thread-local scope (:func:`site_scope` / :func:`current_site_id`)
carries the active ID through the compute kernels, letting the
plan-cache, workspace and complex-kernel counters in
``repro.blas.{plan,workspace,complex3m}`` attribute their work to the
BLAS call that triggered it.  All of this is only exercised while a
telemetry collector is installed; the disabled hot path never calls
into this module.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
from typing import Dict, Iterator, List, Optional

__all__ = [
    "CallSite",
    "shape_class",
    "call_site_id",
    "register_call_site",
    "lookup_site",
    "all_sites",
    "clear_sites",
    "site_scope",
    "current_site_id",
]


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One interned BLAS call site.

    ``m``/``n``/``k``/``batch`` are the exact dimensions of the *first*
    call registered under this ID (the class buckets them; the report
    shows both).
    """

    site_id: str
    anchor: str
    function: str
    routine: str
    shape_class: str
    m: int
    n: int
    k: int
    batch: int = 1


def _pow2_ceil(x: int) -> int:
    x = int(x)
    if x <= 1:
        return 1
    return 1 << (x - 1).bit_length()


def shape_class(m: int, n: int, k: int, batch: int = 1) -> str:
    """Bucket GEMM dimensions into a stable shape-class string.

    Each dimension rounds up to the next power of two; the batch count
    is appended only for genuinely batched calls.  The buckets keep the
    ID stable under the small per-lattice variations of one study while
    separating the structurally different shapes (grid-inner reduction
    vs subspace-sized product) the per-site machinery must distinguish.
    """
    cls = f"{_pow2_ceil(m)}x{_pow2_ceil(n)}x{_pow2_ceil(k)}"
    if batch > 1:
        cls += f"b{_pow2_ceil(batch)}"
    return cls


_lock = threading.Lock()
_sites: Dict[str, CallSite] = {}


def call_site_id(
    anchor: str,
    function: str,
    routine: str,
    m: int,
    n: int,
    k: int,
    batch: int = 1,
) -> str:
    """The stable ID for one invocation's provenance fields.

    Pure string derivation — no registration.  Use
    :func:`register_call_site` on the emission path so the registry
    also learns the site.
    """
    return f"{anchor or '-'}@{function}/{routine}/{shape_class(m, n, k, batch)}"


def register_call_site(
    anchor: str,
    function: str,
    routine: str,
    m: int,
    n: int,
    k: int,
    batch: int = 1,
) -> str:
    """Intern the call site and return its stable ID.

    First registration stores the exact first-seen dimensions;
    subsequent calls with the same derived ID are no-ops beyond the
    dictionary probe.
    """
    sid = call_site_id(anchor, function, routine, m, n, k, batch)
    if sid not in _sites:
        site = CallSite(
            site_id=sid,
            anchor=anchor or "-",
            function=function,
            routine=routine,
            shape_class=shape_class(m, n, k, batch),
            m=int(m),
            n=int(n),
            k=int(k),
            batch=int(batch),
        )
        with _lock:
            _sites.setdefault(sid, site)
    return sid


def lookup_site(site_id: str) -> Optional[CallSite]:
    """The interned :class:`CallSite` for ``site_id``, if registered."""
    with _lock:
        return _sites.get(site_id)


def all_sites() -> List[CallSite]:
    """Snapshot of every registered site, sorted by ID."""
    with _lock:
        return sorted(_sites.values(), key=lambda s: s.site_id)


def clear_sites() -> None:
    """Empty the registry (test isolation)."""
    with _lock:
        _sites.clear()


# ----------------------------------------------------------------------
# Thread-local propagation through the compute kernels.
# ----------------------------------------------------------------------

_tls = threading.local()


def current_site_id() -> str:
    """The call-site ID of the BLAS invocation currently executing on
    this thread (empty outside any :func:`site_scope`)."""
    return getattr(_tls, "site_id", "")


@contextlib.contextmanager
def site_scope(site_id: str) -> Iterator[None]:
    """Attribute kernel-level telemetry to ``site_id`` for the scope.

    The GEMM entry points enter this scope around their compute
    dispatch (only while telemetry is installed), so the plan-derive,
    workspace and complex-kernel counters can carry a ``site`` label.
    """
    prev = getattr(_tls, "site_id", "")
    _tls.site_id = site_id
    try:
        yield
    finally:
        _tls.site_id = prev
