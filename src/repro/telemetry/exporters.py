"""Exporters for a :class:`repro.telemetry.Telemetry` collector.

Three output forms, all derived from the same registry state:

* **JSONL event trace** (:func:`write_jsonl` / :func:`read_jsonl`) —
  one JSON object per line: a ``meta`` header, every buffered trace
  event, then the final counter and histogram values.  Machine-first;
  the reader reassembles exactly what the writer saw (round-trip
  guaranteed by ``tests/unit/test_telemetry_export.py``).
* **Chrome ``trace_event`` JSON** (:func:`write_chrome_trace`) — the
  standard ``{"traceEvents": [...]}`` object with microsecond
  timestamps, one lane per category, loadable in ``chrome://tracing``
  or https://ui.perfetto.dev (same dialect as
  :mod:`repro.gpu.tracefile` uses for the modelled device timeline).
* **plain-text summary** (:func:`summary_table`) — counters and span
  statistics as an aligned table for terminals and CI logs.

:func:`export_all` writes all three into a directory; the experiment
runner's ``--telemetry DIR`` flag and the :func:`repro.telemetry.telemetry`
context manager both call it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Union

from repro.telemetry.registry import Histogram, Telemetry

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "write_chrome_trace",
    "read_chrome_trace",
    "summary_table",
    "export_all",
]

PathLike = Union[str, Path]

JSONL_VERSION = 1

#: Stable Chrome-trace tid per event category, one lane each.
_CAT_LANES = {"blas": 1, "lfd": 2, "scf": 3, "sweep": 4, "app": 5}


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------


def write_jsonl(collector: Telemetry, path: PathLike) -> Path:
    """Write the full collector state as a JSONL event trace."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    snap = collector.snapshot()
    meta = {
        "type": "meta",
        "version": JSONL_VERSION,
        "created_unix": collector.created_at,
        "written_unix": time.time(),
        "n_events": snap["n_events"],
        "dropped_events": snap["dropped_events"],
    }
    lines = [json.dumps(meta)]
    for event in list(collector.events):
        lines.append(json.dumps({"type": "event", **event}))
    for name, value in snap["counters"].items():
        lines.append(json.dumps({"type": "counter", "name": name, "value": value}))
    for name, value in snap.get("gauges", {}).items():
        lines.append(json.dumps({"type": "gauge", "name": name, "value": value}))
    for name, hist in snap["histograms"].items():
        lines.append(json.dumps({"type": "histogram", "name": name, **hist}))
    path.write_text("\n".join(lines) + "\n")
    return path


def read_jsonl(path: PathLike, tolerant: bool = False) -> dict:
    """Parse a JSONL trace back into its constituent parts.

    Returns ``{"meta": dict, "events": [dict], "counters": {name:
    value}, "gauges": {name: value}, "histograms": {name: Histogram}}``
    — the exact inverse of :func:`write_jsonl` over the exported state.

    ``tolerant=True`` drops undecodable or unknown-typed lines instead
    of raising and reports the count in ``meta["corrupt_lines"]`` —
    for traces that may carry a truncated trailing record (a crashed
    writer, a distributed worker's shard).
    """
    meta: dict = {}
    events: List[dict] = []
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Histogram] = {}
    corrupt = 0
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
            if not isinstance(obj, dict):
                raise ValueError(f"JSONL record is not an object: {obj!r}")
            kind = obj.pop("type")
            if kind == "meta":
                meta = obj
            elif kind == "event":
                events.append(obj)
            elif kind == "counter":
                counters[obj["name"]] = obj["value"]
            elif kind == "gauge":
                gauges[obj["name"]] = obj["value"]
            elif kind == "histogram":
                histograms[obj.pop("name")] = Histogram.from_dict(obj)
            else:
                raise ValueError(f"unknown JSONL record type {kind!r}")
        except (ValueError, KeyError):
            if not tolerant:
                raise
            corrupt += 1
    if tolerant and corrupt:
        meta["corrupt_lines"] = corrupt
    return {
        "meta": meta,
        "events": events,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------


def chrome_trace_events(collector: Telemetry, pid: int = 1) -> List[dict]:
    """Convert buffered events to Chrome Trace Event dicts."""
    process_meta = {"name": "repro.telemetry"}
    out = [{"name": "process_name", "ph": "M", "pid": pid, "args": process_meta}]
    for cat, tid in sorted(_CAT_LANES.items(), key=lambda kv: kv[1]):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": cat},
            }
        )
    for event in list(collector.events):
        tid = _CAT_LANES.get(event.get("cat", "app"), 0)
        converted = {
            "name": event["name"],
            "cat": event.get("cat", "app"),
            "ph": event.get("ph", "i"),
            "ts": event["ts"] * 1e6,  # seconds -> microseconds
            "pid": pid,
            "tid": tid,
            "args": {k: v for k, v in event.get("args", {}).items() if v is not None},
        }
        if event.get("ph") == "X":
            converted["dur"] = event["dur"] * 1e6
        out.append(converted)
    return out


def write_chrome_trace(collector: Telemetry, path: PathLike, pid: int = 1) -> Path:
    """Write the event buffer as a Chrome/Perfetto-loadable trace."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": chrome_trace_events(collector, pid=pid),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload))
    return path


def read_chrome_trace(path: PathLike) -> dict:
    """Load a Chrome trace file written by :func:`write_chrome_trace`."""
    return json.loads(Path(path).read_text())


# ----------------------------------------------------------------------
# Text summary
# ----------------------------------------------------------------------


def summary_table(collector: Telemetry) -> str:
    """Aligned text rendering of counters and span statistics."""
    snap = collector.snapshot()
    lines = ["== telemetry summary =="]
    counters = snap["counters"]
    if counters:
        width = max(len(name) for name in counters)
        lines.append("")
        lines.append(f"{'counter':<{width}}  value")
        for name, value in counters.items():
            rendered = f"{value:.6g}" if value != int(value) else f"{int(value)}"
            lines.append(f"{name:<{width}}  {rendered}")
    gauges = snap.get("gauges", {})
    if gauges:
        width = max(len(name) for name in gauges)
        lines.append("")
        lines.append(f"{'gauge':<{width}}  value")
        for name, value in gauges.items():
            lines.append(f"{name:<{width}}  {value:.6g}")
    hists = snap["histograms"]
    if hists:
        width = max(len(name) for name in hists)
        lines.append("")
        lines.append(
            f"{'timer/histogram':<{width}}  {'count':>8}  {'total':>12}  "
            f"{'mean':>12}  {'max':>12}"
        )
        for name, h in hists.items():
            count = h["count"]
            mean = h["total"] / count if count else 0.0
            hmax = h["max"] if h["max"] is not None else 0.0
            lines.append(
                f"{name:<{width}}  {count:>8}  {h['total']:>12.6f}  "
                f"{mean:>12.6f}  {hmax:>12.6f}"
            )
    lines.append("")
    lines.append(
        f"events: {snap['n_events']} buffered, {snap['dropped_events']} dropped"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# One-call export
# ----------------------------------------------------------------------


def export_all(collector: Telemetry, out_dir: PathLike) -> Dict[str, Path]:
    """Write all run artifacts into ``out_dir``.

    Returns ``{"jsonl": ..., "chrome": ..., "summary": ..., "report":
    ...}`` paths; ``report`` is the human-first ``run_report.md``
    rendered by :mod:`repro.telemetry.report`.
    """
    from repro.telemetry.report import data_from_collector, render_run_report

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "jsonl": write_jsonl(collector, out_dir / "trace.jsonl"),
        "chrome": write_chrome_trace(collector, out_dir / "trace.chrome.json"),
        "summary": out_dir / "summary.txt",
        "report": out_dir / "run_report.md",
    }
    paths["summary"].write_text(summary_table(collector) + "\n")
    paths["report"].write_text(render_run_report(data_from_collector(collector)) + "\n")
    return paths
