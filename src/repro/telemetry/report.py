"""Run-report generation: one human-first markdown page per run.

The telemetry subsystem produces machine-first artifacts (JSONL trace,
Chrome trace, counter dump).  This module joins them into a single
``run_report.md`` that answers the questions a precision study
actually asks of a run:

* **What ran** — event/drop totals, wall span of the trace.
* **Where the FLOPs went** — the per-call-site hot table built from
  the ``blas.site.*`` provenance counters (PR: drift observatory),
  one row per stable call-site ID.
* **How far the observables drifted** — the drift monitor's samples,
  budget-utilization gauges, power-law fits and any warn/breach
  alerts, reconstructed entirely from ``cat="drift"`` events and
  ``drift.*`` gauges, so the same report can be generated *offline*
  from a ``trace.jsonl`` long after the run (``scripts/make_run_report.py``).

Everything renders from one normalised trace dict (the shape
:func:`repro.telemetry.exporters.read_jsonl` returns); a live
:class:`~repro.telemetry.registry.Telemetry` collector is converted
with :func:`data_from_collector`.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.telemetry.registry import Telemetry, parse_counter_name

__all__ = [
    "data_from_collector",
    "render_run_report",
    "generate_run_report",
]

PathLike = Union[str, Path]

#: Hot-table rows beyond this are summarised into one "other" line.
MAX_SITE_ROWS = 20


# ----------------------------------------------------------------------
# Input normalisation.
# ----------------------------------------------------------------------


def data_from_collector(collector: Telemetry) -> dict:
    """Normalise a live collector into the trace-dict shape."""
    snap = collector.snapshot()
    return {
        "meta": {
            "created_unix": collector.created_at,
            "n_events": snap["n_events"],
            "dropped_events": snap["dropped_events"],
        },
        "events": list(collector.events),
        "counters": snap["counters"],
        "gauges": snap.get("gauges", {}),
        "histograms": snap["histograms"],
    }


def _hist_dict(h) -> dict:
    return h.to_dict() if hasattr(h, "to_dict") else dict(h)


def _labels(flat_name: str) -> Dict[str, str]:
    _, labels = parse_counter_name(flat_name)
    return dict(labels)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:.4g}"


def _md_table(header: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


# ----------------------------------------------------------------------
# Sections.
# ----------------------------------------------------------------------


def _site_table(counters: Dict[str, float]) -> List[str]:
    """Per-call-site hot table from the ``blas.site.*`` counters."""
    sites: Dict[str, Dict[str, float]] = {}
    for flat, value in counters.items():
        if not flat.startswith("blas.site."):
            continue
        name, labels = parse_counter_name(flat)
        metric = name[len("blas.site."):]
        site = dict(labels).get("site_id", "-")
        sites.setdefault(site, {})[metric] = value
    if not sites:
        return ["_No per-site BLAS data (telemetry was not active during GEMMs)._"]
    ordered = sorted(
        sites.items(),
        key=lambda kv: (
            kv[1].get("model_seconds", kv[1].get("seconds", 0.0)),
            kv[1].get("flops", 0.0),
        ),
        reverse=True,
    )
    rows = []
    for site, m in ordered[:MAX_SITE_ROWS]:
        rows.append(
            [
                f"`{site}`",
                _fmt(m.get("calls", 0.0)),
                _fmt(m.get("flops", 0.0)),
                _fmt(m.get("bytes", 0.0)),
                f"{m.get('seconds', 0.0):.4g}",
                f"{m.get('model_seconds', 0.0):.4g}",
            ]
        )
    lines = _md_table(
        ["call site", "calls", "flops", "bytes", "wall s", "model s"], rows
    )
    if len(ordered) > MAX_SITE_ROWS:
        rest = ordered[MAX_SITE_ROWS:]
        calls = sum(m.get("calls", 0.0) for _, m in rest)
        lines.append(f"| _... {len(rest)} more sites_ | {_fmt(calls)} | | | | |")
    return lines


def _backend_table(counters: Dict[str, float]) -> List[str]:
    """Per-backend attribution from ``blas.backend.*`` counters.

    One row per executing :class:`~repro.blas.backend.ArrayBackend`
    (``cache_key``), so a mixed run — e.g. numpy warm-up followed by a
    ``use_backend("torch")`` block — shows where the BLAS wall time
    actually went.
    """
    backends: Dict[str, Dict[str, float]] = {}
    for flat, value in counters.items():
        if not flat.startswith("blas.backend."):
            continue
        name, labels = parse_counter_name(flat)
        metric = name[len("blas.backend."):]
        backend = dict(labels).get("backend", "-")
        backends.setdefault(backend, {})[metric] = value
    if not backends:
        return [
            "_No per-backend BLAS data (telemetry was not active during GEMMs)._"
        ]
    total_s = sum(m.get("seconds", 0.0) for m in backends.values())
    ordered = sorted(
        backends.items(),
        key=lambda kv: kv[1].get("seconds", 0.0),
        reverse=True,
    )
    rows = []
    for backend, m in ordered:
        seconds = m.get("seconds", 0.0)
        share = f"{100.0 * seconds / total_s:.1f}%" if total_s > 0 else "-"
        rows.append(
            [f"`{backend}`", _fmt(m.get("calls", 0.0)), f"{seconds:.4g}", share]
        )
    return _md_table(["backend", "calls", "wall s", "share"], rows)


def _drift_section(
    events: List[dict], gauges: Dict[str, float]
) -> List[str]:
    samples: Dict[str, int] = {}
    alerts: List[dict] = []
    summary_args: Optional[dict] = None
    for e in events:
        if e.get("cat") != "drift":
            continue
        args = e.get("args", {})
        name = e.get("name", "")
        if name == "drift.sample":
            obs = args.get("observable", "?")
            samples[obs] = samples.get(obs, 0) + 1
        elif name == "drift.alert":
            alerts.append(args)
        elif name == "drift.summary":
            summary_args = args

    lines: List[str] = []
    if not samples and summary_args is None and not _drift_gauges(gauges):
        return ["_No drift monitoring in this run (enable with `--drift-budget` "
                "or `REPRO_DRIFT=1`)._"]

    util = _drift_gauges(gauges)
    observables = sorted(set(samples) | set(util))
    rows = []
    for obs in observables:
        u = util.get(obs, {})
        rows.append(
            [
                obs,
                _fmt(samples.get(obs, 0)),
                _gauge_cell(u.get("budget_utilization")),
                _gauge_cell(u.get("max_utilization")),
                _gauge_cell(u.get("deviation"), fmt="{:.3e}"),
                _gauge_cell(u.get("fit.exponent")),
            ]
        )
    lines.extend(
        _md_table(
            [
                "observable",
                "samples",
                "final budget use",
                "max budget use",
                "final deviation",
                "drift exponent",
            ],
            rows,
        )
    )
    if summary_args is not None:
        lines.append("")
        lines.append(
            f"Run mode `{summary_args.get('mode', '-')}` over "
            f"{_fmt(summary_args.get('qd_steps', 0))} QD steps, "
            f"{_fmt(summary_args.get('alerts', len(alerts)))} alert(s)."
        )
    lines.append("")
    if alerts:
        lines.append("**Alerts** (first crossing per observable and level):")
        lines.append("")
        rows = [
            [
                a.get("level", "?"),
                a.get("observable", "?"),
                _fmt(a.get("step", 0)),
                f"{a.get('utilization', 0.0):.3g}",
                f"{a.get('relative', 0.0):.3e}",
                f"{a.get('envelope', 0.0):.3e}",
            ]
            for a in alerts
        ]
        lines.extend(
            _md_table(
                ["level", "observable", "step", "budget use", "relative dev",
                 "envelope"],
                rows,
            )
        )
    else:
        lines.append("No budget-threshold alerts fired.")
    return lines


def _drift_gauges(gauges: Dict[str, float]) -> Dict[str, Dict[str, float]]:
    """``{observable: {metric: value}}`` from the ``drift.*`` gauges."""
    out: Dict[str, Dict[str, float]] = {}
    for flat, value in gauges.items():
        name, labels = parse_counter_name(flat)
        if not name.startswith("drift."):
            continue
        obs = dict(labels).get("observable", "-")
        out.setdefault(obs, {})[name[len("drift."):]] = value
    return out


def _gauge_cell(value: Optional[float], fmt: str = "{:.3g}") -> str:
    return "—" if value is None else fmt.format(value)


def _sched_section(events: List[dict], gauges: Dict[str, float]) -> List[str]:
    """Mode-switch timeline from the scheduler's ``cat="sched"`` events.

    Rendered only when an adaptive run contributed events — static
    runs get no empty section.  Returns ``[]`` in that case so the
    caller can skip the heading entirely.
    """
    switches = [
        e.get("args", {})
        for e in events
        if e.get("cat") == "sched" and e.get("name") == "sched.switch"
    ]
    rungs = {
        dict(parse_counter_name(flat)[1]).get("site", "-"): value
        for flat, value in gauges.items()
        if parse_counter_name(flat)[0] == "sched.site_rung"
    }
    if not switches and not rungs:
        return []
    lines: List[str] = ["## Adaptive precision schedule", ""]
    if switches:
        rows = [
            [
                _fmt(a.get("step", 0)),
                f"`{a.get('site', '-')}`",
                f"`{a.get('from_mode', '-')}`",
                f"`{a.get('to_mode', '-')}`",
                a.get("reason", "-"),
                _gauge_cell(a.get("utilization")),
            ]
            for a in switches
        ]
        lines.extend(
            _md_table(
                ["step", "site", "from", "to", "reason", "budget use"], rows
            )
        )
    else:
        lines.append(
            "No mode switches — the run stayed at its starting precision."
        )
    if rungs:
        lines.append("")
        lines.append(
            "Final ladder rungs: "
            + ", ".join(
                f"`{site}`={_fmt(rung)}" for site, rung in sorted(rungs.items())
            )
            + "."
        )
    lines.append("")
    return lines


def _distrib_section(counters: Dict[str, float]) -> List[str]:
    """Per-shard attribution from the ``distrib.*`` counters.

    One row per worker shard of a distributed run (cells won, wall
    seconds spent, successful steals, expired-lease takeovers), plus
    the job-wide duplicate/corrupt-record accounting.  Rendered only
    when a merge contributed ``distrib.*`` counters — serial runs get
    no empty section (returns ``[]`` like :func:`_sched_section`).
    """
    workers: Dict[str, Dict[str, float]] = {}
    totals: Dict[str, float] = {}
    for flat, value in counters.items():
        name, labels = parse_counter_name(flat)
        if not name.startswith("distrib."):
            continue
        metric = name[len("distrib."):]
        worker = dict(labels).get("worker")
        if worker is None:
            totals[metric] = totals.get(metric, 0.0) + value
        else:
            workers.setdefault(worker, {})[metric] = value
    if not workers and not totals:
        return []
    lines: List[str] = ["## Distributed shards", ""]
    if workers:
        total_cells = sum(m.get("cells", 0.0) for m in workers.values())
        rows = []
        for worker, m in sorted(workers.items()):
            cells = m.get("cells", 0.0)
            share = f"{100.0 * cells / total_cells:.1f}%" if total_cells else "-"
            rows.append(
                [
                    f"`{worker}`",
                    _fmt(cells),
                    share,
                    f"{m.get('worker_seconds', 0.0):.4g}",
                    _fmt(m.get("steals", 0.0)),
                    _fmt(m.get("lease_expired", 0.0)),
                ]
            )
        lines.extend(
            _md_table(
                ["worker", "cells won", "share", "worker s", "steals",
                 "lease takeovers"],
                rows,
            )
        )
        lines.append("")
    duplicates = totals.get("duplicates", 0.0)
    corrupt = totals.get("corrupt_records", 0.0)
    if duplicates or corrupt:
        lines.append(
            f"{_fmt(duplicates)} duplicate execution(s) discarded at merge "
            f"(first completion wins), {_fmt(corrupt)} corrupt record(s) "
            "dropped from the JSONL shards."
        )
    else:
        lines.append("No duplicate executions or corrupt shard records.")
    lines.append("")
    return lines


def _span_table(histograms: Dict[str, dict]) -> List[str]:
    rows = []
    for name, h in sorted(histograms.items()):
        h = _hist_dict(h)
        count = h.get("count", 0)
        total = h.get("total", 0.0)
        mean = total / count if count else 0.0
        hmax = h.get("max") or 0.0
        rows.append(
            [f"`{name}`", _fmt(count), f"{total:.4g}", f"{mean:.4g}", f"{hmax:.4g}"]
        )
    if not rows:
        return ["_No span timings recorded._"]
    return _md_table(["timer", "count", "total s", "mean s", "max s"], rows)


def _counter_table(counters: Dict[str, float], limit: int = 30) -> List[str]:
    rows = [
        (flat, value)
        for flat, value in counters.items()
        if not flat.startswith("blas.site.")
    ]
    if not rows:
        return ["_No counters recorded._"]
    rows.sort(key=lambda kv: kv[1], reverse=True)
    shown = [[f"`{flat}`", _fmt(value)] for flat, value in rows[:limit]]
    lines = _md_table(["counter", "value"], shown)
    if len(rows) > limit:
        lines.append(f"| _... {len(rows) - limit} more counters_ | |")
    return lines


# ----------------------------------------------------------------------
# Top-level rendering.
# ----------------------------------------------------------------------


def render_run_report(data: dict) -> str:
    """Render the markdown report from a normalised trace dict.

    ``data`` has the :func:`repro.telemetry.exporters.read_jsonl`
    shape; missing keys degrade to empty sections, never errors — a
    report from a partial trace is still a report.
    """
    meta = data.get("meta", {}) or {}
    events = data.get("events", []) or []
    counters = data.get("counters", {}) or {}
    gauges = data.get("gauges", {}) or {}
    histograms = data.get("histograms", {}) or {}

    lines: List[str] = ["# Run report", ""]
    created = meta.get("created_unix")
    when = (
        time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime(created))
        if created
        else "unknown"
    )
    n_events = meta.get("n_events", len(events))
    dropped = meta.get("dropped_events", 0)
    lines.append(
        f"Collector started {when} · {_fmt(n_events)} events buffered · "
        f"{_fmt(dropped)} dropped."
    )
    if dropped:
        lines.append(
            "\n> ⚠ events were dropped at the buffer cap; raise "
            "`REPRO_TELEMETRY_MAX_EVENTS` for a complete trace."
        )
    lines.append("")

    lines.append("## Observable drift vs error budget")
    lines.append("")
    lines.extend(_drift_section(events, gauges))
    lines.append("")

    lines.extend(_sched_section(events, gauges))

    lines.append("## BLAS hot call sites")
    lines.append("")
    lines.extend(_site_table(counters))
    lines.append("")

    lines.append("## Backend attribution")
    lines.append("")
    lines.extend(_backend_table(counters))
    lines.append("")

    lines.extend(_distrib_section(counters))

    lines.append("## Phase timings")
    lines.append("")
    lines.extend(_span_table(histograms))
    lines.append("")

    lines.append("## Counters")
    lines.append("")
    lines.extend(_counter_table(counters))
    return "\n".join(lines)


def generate_run_report(
    source: Union[Telemetry, dict, PathLike],
    out_path: Optional[PathLike] = None,
) -> str:
    """Render (and optionally write) a run report.

    ``source`` may be a live collector, a normalised trace dict, or a
    path to a ``trace.jsonl`` written by
    :func:`repro.telemetry.exporters.write_jsonl`.
    """
    if isinstance(source, Telemetry):
        data = data_from_collector(source)
    elif isinstance(source, dict):
        data = source
    else:
        from repro.telemetry.exporters import read_jsonl

        data = read_jsonl(source)
    text = render_run_report(data)
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(text + "\n")
    return text
