"""Telemetry subsystem: counters, span timers and trace exporters.

One substrate unifies the reproduction's instrumentation (the
MKL_VERBOSE-style per-call log, the split-plan cache statistics, the
workspace reuse accounting, per-QD-step and per-SCF-block phase
timings) behind a single on/off switch with a no-op disabled path.

Quickstart::

    from repro import telemetry

    with telemetry.telemetry(out_dir="out/") as t:
        sim.run(mode="FLOAT_TO_BF16")
    # out/trace.jsonl, out/trace.chrome.json, out/summary.txt

or, with no source changes, ``REPRO_TELEMETRY=1`` plus
``dcmesh-repro table6 --telemetry out/``.  See docs/OBSERVABILITY.md.
"""

from repro.telemetry.registry import (
    BUCKET_BOUNDS,
    MAX_EVENTS,
    MAX_EVENTS_ENV,
    TELEMETRY_ENV,
    Histogram,
    Telemetry,
    active,
    disable,
    enable,
    format_counter_name,
    parse_counter_name,
    telemetry,
    telemetry_enabled,
)
from repro.telemetry.provenance import (
    CallSite,
    all_sites,
    call_site_id,
    current_site_id,
    lookup_site,
    register_call_site,
    site_scope,
)
from repro.telemetry.exporters import (
    export_all,
    read_chrome_trace,
    read_jsonl,
    summary_table,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.drift import (
    DRIFT_ENV,
    DriftMonitor,
    ErrorBudget,
    ReferenceTrajectory,
    drift_enabled,
    drift_monitoring,
    install_drift_monitor,
    active_drift_monitor,
    set_drift_enabled,
)
from repro.telemetry.report import generate_run_report, render_run_report

__all__ = [
    "BUCKET_BOUNDS",
    "MAX_EVENTS",
    "MAX_EVENTS_ENV",
    "TELEMETRY_ENV",
    "Histogram",
    "Telemetry",
    "active",
    "disable",
    "enable",
    "format_counter_name",
    "parse_counter_name",
    "telemetry",
    "telemetry_enabled",
    "CallSite",
    "all_sites",
    "call_site_id",
    "current_site_id",
    "lookup_site",
    "register_call_site",
    "site_scope",
    "export_all",
    "read_chrome_trace",
    "read_jsonl",
    "summary_table",
    "write_chrome_trace",
    "write_jsonl",
    "DRIFT_ENV",
    "DriftMonitor",
    "ErrorBudget",
    "ReferenceTrajectory",
    "drift_enabled",
    "drift_monitoring",
    "install_drift_monitor",
    "active_drift_monitor",
    "set_drift_enabled",
    "generate_run_report",
    "render_run_report",
]
