"""Device specification for a single Max 1550 stack (Table I).

All numbers are taken from the paper (Tables I and V, Section III-A and
IV-A) or derived from them:

* 448 EUs (vector engines) per stack at up to 1.6 GHz;
* theoretical peaks — FP64/FP32 26 TFLOP/s on the vector engines,
  TF32 209, BF16/FP16 419 TFLOP/s and INT8 839 TOP/s on the XMX
  matrix engines;
* 64 GB of HBM per stack (Table V caption) with ~1.6 TB/s of stack
  bandwidth, derated to an achievable fraction;
* power limits that keep *sustained* matrix-engine throughput well
  below peak (Section V-C attributes the 3.91x-vs-16x gap to memory
  and power limits).

The INT8 tensor-core entry (839 TOP/s, 0.35 power derate) backs the
roofline costing of the post-paper ``OZAKI_INT8`` compute mode; the
FP32/FP64 vector-engine entries likewise anchor ``EMULATED_FP64``'s
FP32-term products and its native-FP64 baseline
(:mod:`repro.gpu.gemm_model`).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict

from repro.types import Precision

__all__ = ["EngineKind", "DeviceSpec", "MAX_1550_STACK", "peak_table"]


class EngineKind(enum.Enum):
    """Execution engine a precision format maps to (Table I)."""

    VECTOR = "Vector"
    MATRIX = "Matrix"


#: Engine used at each precision — Table I's "Engines" column.
ENGINE_FOR_PRECISION: Dict[Precision, EngineKind] = {
    Precision.FP64: EngineKind.VECTOR,
    Precision.FP32: EngineKind.VECTOR,
    Precision.TF32: EngineKind.MATRIX,
    Precision.BF16: EngineKind.MATRIX,
    Precision.FP16: EngineKind.MATRIX,
    Precision.INT8: EngineKind.MATRIX,
}


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU stack plus model derates."""

    name: str
    n_eu: int                      #: vector engines per stack
    frequency_hz: float            #: peak clock
    hbm_bytes: int                 #: memory capacity per stack
    hbm_bandwidth: float           #: peak HBM bandwidth, bytes/s
    bandwidth_efficiency: float    #: achievable fraction of peak BW
    #: theoretical peak ops/s per precision (Table I)
    peak_ops: Dict[Precision, float] = dataclasses.field(default_factory=dict)
    #: power cap as a fraction of peak: sustained utilisation can never
    #: exceed this, however good the tile shape (Section V-C's "power
    #: limitations ... tied to hardware design")
    power_derate: Dict[Precision, float] = dataclasses.field(default_factory=dict)
    #: GEMM dimension at which tile efficiency reaches 50% (per engine)
    tile_half_dim: Dict[EngineKind, float] = dataclasses.field(default_factory=dict)
    kernel_launch_overhead: float = 4e-6   #: seconds per kernel
    #: asymptotic rate of non-BLAS streaming kernels (strided 3-D mesh
    #: sweeps, dimension-split FFT passes) — far below raw HBM speed
    stream_bandwidth_max: float = 205e9
    #: buffer size at which a streaming kernel reaches half of that
    #: asymptote (small problems underutilise the device)
    stream_half_bytes: float = 128.0 * 1024**2

    def engine_for(self, precision: Precision) -> EngineKind:
        """Engine that executes math at ``precision``."""
        return ENGINE_FOR_PRECISION[precision]

    def peak(self, precision: Precision) -> float:
        """Theoretical peak ops/s at ``precision`` (Table I)."""
        return self.peak_ops[precision]

    def sustained(self, precision: Precision) -> float:
        """Power-capped sustained ops/s at ``precision``."""
        return self.peak_ops[precision] * self.power_derate[precision]

    def effective_bandwidth(self) -> float:
        """Achievable HBM bandwidth in bytes/s."""
        return self.hbm_bandwidth * self.bandwidth_efficiency

    def stream_rate(self, buffer_bytes: float) -> float:
        """Achievable rate of a streaming (non-BLAS) kernel, bytes/s.

        Saturating occupancy model: a kernel sweeping a large buffer
        approaches ``stream_bandwidth_max``; small buffers leave the
        device mostly idle.  Calibrated so the 135-atom LFD step spends
        the right fraction outside BLAS (Fig. 3a) and the 40-atom
        system shows almost no compute-mode spread at all.
        """
        if buffer_bytes <= 0:
            raise ValueError(f"buffer_bytes must be positive, got {buffer_bytes}")
        occupancy = buffer_bytes / (buffer_bytes + self.stream_half_bytes)
        return self.stream_bandwidth_max * occupancy

    def tile_efficiency(self, m: int, n: int, k: int, engine: EngineKind) -> float:
        """Utilisation factor for a GEMM of shape (m, n, k).

        Saturating form ``d / (d + d_half)`` applied to the two output
        dimensions (the systolic array is tiled over m x n; k only
        affects pipeline fill, which the launch overhead covers).  The
        paper's bandwidth-starved ``m = 128`` case is exactly what this
        term models: a narrow m never fills the matrix engines.
        """
        d_half = self.tile_half_dim[engine]
        eff_m = m / (m + d_half)
        eff_n = n / (n + d_half)
        return eff_m * eff_n

    def fits_in_memory(self, bytes_required: int) -> bool:
        """Whether a working set fits the stack's HBM (Table V claim)."""
        return bytes_required <= self.hbm_bytes


def _tera(x: float) -> float:
    return x * 1e12


#: The paper's measurement platform: one stack of a Max 1550.
#:
#: ``power_derate`` and ``tile_half_dim`` are the two calibrated knobs
#: (see DESIGN.md section 5 and ``repro.core.perfstudy``); everything
#: else is published hardware data.
MAX_1550_STACK = DeviceSpec(
    name="Intel Data Center GPU Max 1550 (single stack)",
    n_eu=448,
    frequency_hz=1.6e9,
    hbm_bytes=64 * 1024**3,
    hbm_bandwidth=1.6e12,
    bandwidth_efficiency=0.70,
    peak_ops={
        Precision.FP64: _tera(26.0),
        Precision.FP32: _tera(26.0),
        Precision.TF32: _tera(209.0),
        Precision.BF16: _tera(419.0),
        Precision.FP16: _tera(419.0),
        Precision.INT8: _tera(839.0),
    },
    power_derate={
        # FP64 moves twice the data and burns ~2x energy/flop: the
        # paper's 1.9x FP64->FP32 end-to-end gap calibrates this.
        Precision.FP64: 0.42,
        Precision.FP32: 0.85,
        # Matrix engines are the most power-dense blocks on the die;
        # sustained XMX throughput sits well under half of peak.
        Precision.TF32: 0.50,
        Precision.BF16: 0.45,
        Precision.FP16: 0.45,
        Precision.INT8: 0.35,
    },
    tile_half_dim={
        EngineKind.VECTOR: 64.0,
        EngineKind.MATRIX: 48.0,
    },
)


def peak_table(spec: DeviceSpec = MAX_1550_STACK):
    """Rows of Table I: (precision, peak TFLOP/s | TOP/s, engine)."""
    order = [
        Precision.FP64,
        Precision.FP32,
        Precision.TF32,
        Precision.BF16,
        Precision.FP16,
        Precision.INT8,
    ]
    rows = []
    for p in order:
        unit = "TOP/s" if p is Precision.INT8 else "TFLOP/s"
        rows.append((p, spec.peak_ops[p] / 1e12, unit, spec.engine_for(p).value))
    return rows
