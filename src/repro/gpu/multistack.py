"""Multi-stack / multi-node scaling model — the paper's future work.

"Furthermore, we would like to continue our work with DCMESH in the
analysis of how alternative BLAS precision modes impact accuracy and
performance in multi-stack and multi-node runs."  (Section VI.)

The model distributes the LFD work over ``n_stacks`` by splitting the
orbital dimension (the natural DCMESH decomposition: each stack owns a
block of KS orbitals) and adds the two communication terms that
decomposition creates:

* the subspace overlap ``S = Psi0^H Psi`` needs an all-reduce of an
  ``N_orb x N_orb`` block per BLASified function, over Xe Link
  (intra-GPU / MDFI) or the node fabric;
* block-boundary SCF updates ship the full orbital slab.

The interesting precision interaction this exposes: communication
volume is *mode-independent*, so the faster the compute mode, the
earlier communication bounds scaling — BF16 saturates at fewer stacks
than FP32.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.blas.modes import ComputeMode
from repro.core.schedule import psi_bytes, qd_step_schedule
from repro.gpu.gemm_model import GemmModel
from repro.gpu.specs import DeviceSpec, MAX_1550_STACK
from repro.types import Precision

__all__ = ["LinkSpec", "MultiStackModel", "ScalingPoint", "XE_LINK", "NODE_FABRIC"]


@dataclasses.dataclass(frozen=True)
class LinkSpec:
    """Interconnect between stacks."""

    name: str
    bandwidth: float     #: bytes/s per direction
    latency: float       #: seconds per message


#: In-package Xe Link between the two stacks of one Max 1550.
XE_LINK = LinkSpec(name="Xe Link (intra-card)", bandwidth=300e9, latency=2e-6)

#: Cross-node HPC fabric (e.g. Slingshot-class).
NODE_FABRIC = LinkSpec(name="node fabric", bandwidth=25e9, latency=10e-6)


@dataclasses.dataclass(frozen=True)
class ScalingPoint:
    """One (n_stacks, mode) evaluation."""

    n_stacks: int
    mode: ComputeMode
    compute_seconds: float      #: per-stack compute per QD step
    comm_seconds: float         #: communication per QD step
    step_seconds: float
    speedup: float              #: vs the same mode on one stack
    efficiency: float           #: speedup / n_stacks


class MultiStackModel:
    """Scales the QD-step schedule across stacks."""

    def __init__(
        self,
        spec: DeviceSpec = MAX_1550_STACK,
        link: LinkSpec = XE_LINK,
    ):
        self.spec = spec
        self.link = link
        self.model = GemmModel(spec)

    def step_seconds(
        self,
        n_grid: int,
        n_orb: int,
        n_occ: int,
        mode: ComputeMode,
        n_stacks: int,
        storage: Precision = Precision.FP32,
    ) -> ScalingPoint:
        """Modelled QD-step time on ``n_stacks`` stacks."""
        if n_stacks < 1:
            raise ValueError(f"n_stacks must be >= 1, got {n_stacks}")
        if n_orb % n_stacks:
            raise ValueError(
                f"n_orb={n_orb} must divide evenly over {n_stacks} stacks"
            )
        local_orb = n_orb // n_stacks
        local_occ = max(1, n_occ // n_stacks)
        gemms, streams = qd_step_schedule(n_grid, n_orb, n_occ, storage)

        # Each stack executes the schedule on its orbital block: with a
        # column (orbital) distribution of Psi, every GEMM keeps its m
        # and k and computes a 1/p slice of the n dimension — work
        # scales linearly, never superlinearly.
        compute = 0.0
        for g in gemms:
            n = max(1, g.n // n_stacks)
            compute += self.model.seconds(g.routine, g.m, n, g.k, mode)
        buf = psi_bytes(n_grid, local_orb, storage)
        rate = self.spec.stream_rate(buf)
        compute += sum(
            s.passes * buf / rate + self.spec.kernel_launch_overhead
            for s in streams
        )

        # Communication: three subspace all-reduces per step (one per
        # BLASified function) of an N_orb x N_orb complex block, ring
        # style: 2 (p-1)/p of the volume over the link.
        elem = 8 if storage is Precision.FP32 else 16
        block_bytes = n_orb * n_orb * elem
        comm = 0.0
        if n_stacks > 1:
            volume = 2.0 * (n_stacks - 1) / n_stacks * block_bytes
            per_reduce = volume / self.link.bandwidth + 2 * self.link.latency
            comm = 3.0 * per_reduce

        step = compute + comm
        single = self.step_seconds(
            n_grid, n_orb, n_occ, mode, 1, storage
        ).step_seconds if n_stacks > 1 else step
        speedup = single / step
        return ScalingPoint(
            n_stacks=n_stacks,
            mode=mode,
            compute_seconds=compute,
            comm_seconds=comm,
            step_seconds=step,
            speedup=speedup,
            efficiency=speedup / n_stacks,
        )

    def scaling_curve(
        self,
        n_grid: int,
        n_orb: int,
        n_occ: int,
        mode: ComputeMode,
        stack_counts=(1, 2, 4, 8),
    ) -> List[ScalingPoint]:
        """Strong-scaling curve for one mode."""
        return [
            self.step_seconds(n_grid, n_orb, n_occ, mode, p)
            for p in stack_counts
        ]
