"""Generic roofline timing: a kernel is compute- or bandwidth-bound.

The paper explains its observed-vs-theoretical speedup gap (Table VI)
with exactly this model: "memory and cache bandwidth limitations and
power limitations".  We express a kernel as (flops, bytes) and take
``time = max(flops / sustained_flops, bytes / bandwidth) + overhead``.
"""

from __future__ import annotations

import dataclasses

__all__ = ["RooflinePoint", "roofline_time"]


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """Resolved timing of one kernel under the roofline model."""

    flops: float
    bytes: float
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float

    @property
    def seconds(self) -> float:
        """Wall time: slower of the two limits, plus fixed overhead."""
        return max(self.compute_seconds, self.memory_seconds) + self.overhead_seconds

    @property
    def bound(self) -> str:
        """Which limit dominates: 'compute', 'memory' or 'launch'."""
        body = max(self.compute_seconds, self.memory_seconds)
        if self.overhead_seconds > body:
            return "launch"
        return "compute" if self.compute_seconds >= self.memory_seconds else "memory"

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of memory traffic."""
        return self.flops / self.bytes if self.bytes else float("inf")


def roofline_time(
    flops: float,
    bytes_moved: float,
    sustained_flops: float,
    bandwidth: float,
    overhead: float = 0.0,
) -> RooflinePoint:
    """Build a :class:`RooflinePoint` from raw kernel characteristics."""
    if flops < 0 or bytes_moved < 0:
        raise ValueError("flops and bytes must be non-negative")
    if sustained_flops <= 0 or bandwidth <= 0:
        raise ValueError("sustained_flops and bandwidth must be positive")
    return RooflinePoint(
        flops=flops,
        bytes=bytes_moved,
        compute_seconds=flops / sustained_flops,
        memory_seconds=bytes_moved / bandwidth,
        overhead_seconds=overhead,
    )
