"""Kernel event timeline — the unitrace substrate.

The paper measures end-to-end GPU time with unitrace's "Total L0 Time"
(GPU-side Level Zero timers) and per-kernel breakdowns.  The modelled
device appends a :class:`KernelEvent` per launched kernel; the
timeline can then answer the same queries the authors put to unitrace:
total device time, per-kernel-name aggregation, per-site aggregation.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, List

__all__ = ["KernelEvent", "Timeline"]


@dataclasses.dataclass(frozen=True)
class KernelEvent:
    """One modelled kernel execution on the device."""

    name: str           #: kernel identity, e.g. ``"cgemm"`` or ``"stencil_apply"``
    start: float        #: device-clock start time, seconds
    duration: float     #: modelled execution time, seconds
    kind: str = ""      #: coarse category: ``"blas"`` / ``"app"`` / ``"copy"``
    site: str = ""      #: application function that issued it

    @property
    def end(self) -> float:
        return self.start + self.duration


class Timeline:
    """Append-only device timeline with unitrace-style aggregation."""

    def __init__(self) -> None:
        self._events: List[KernelEvent] = []
        self._clock = 0.0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[KernelEvent]:
        return list(self._events)

    @property
    def clock(self) -> float:
        """Current device-clock position, seconds."""
        return self._clock

    def append(self, name: str, duration: float, kind: str = "", site: str = "") -> KernelEvent:
        """Record a kernel of ``duration`` seconds; advances the clock."""
        if duration < 0:
            raise ValueError(f"negative kernel duration: {duration}")
        event = KernelEvent(name=name, start=self._clock, duration=duration, kind=kind, site=site)
        self._events.append(event)
        self._clock += duration
        return event

    def reset(self) -> None:
        """Clear all events and rewind the clock."""
        self._events.clear()
        self._clock = 0.0

    # ------------------------------------------------------------------
    # unitrace-style queries
    # ------------------------------------------------------------------

    def total_l0_time(self) -> float:
        """Sum of all kernel durations — unitrace's headline number."""
        return sum(e.duration for e in self._events)

    def time_by_name(self) -> Dict[str, float]:
        """Aggregate device time per kernel name."""
        agg: Dict[str, float] = defaultdict(float)
        for e in self._events:
            agg[e.name] += e.duration
        return dict(agg)

    def time_by_kind(self) -> Dict[str, float]:
        """Aggregate device time per coarse category."""
        agg: Dict[str, float] = defaultdict(float)
        for e in self._events:
            agg[e.kind or "?"] += e.duration
        return dict(agg)

    def time_by_site(self) -> Dict[str, float]:
        """Aggregate device time per application call site."""
        agg: Dict[str, float] = defaultdict(float)
        for e in self._events:
            agg[e.site or "?"] += e.duration
        return dict(agg)

    def window(self, t0: float, t1: float) -> List[KernelEvent]:
        """Events overlapping the clock interval ``[t0, t1)``."""
        if t1 < t0:
            raise ValueError(f"empty window: [{t0}, {t1})")
        return [e for e in self._events if e.start < t1 and e.end > t0]
