"""The modelled device: ties the GEMM model to a timeline.

:class:`Device` is what the application attaches via
:func:`repro.blas.gemm.use_device`.  Every BLAS call then reports its
(m, n, k, mode) here; the device predicts the execution time on the
modelled Max 1550 stack and books a kernel event.  Non-BLAS application
kernels (stencils, pointwise updates, FFTs) and host<->device copies
are booked through :meth:`record_stream` and :meth:`record_copy`, so
the end-to-end Fig. 3a times contain the same constituents as the
paper's unitrace measurements.
"""

from __future__ import annotations

from typing import Optional

from repro.blas.modes import ComputeMode
from repro.gpu.gemm_model import GemmCost, GemmModel
from repro.gpu.specs import DeviceSpec, MAX_1550_STACK
from repro.gpu.timeline import Timeline

__all__ = ["Device"]

#: PCIe-attached host link (one direction), bytes/s — used for the
#: shadow-dynamics transfer accounting (CPU<->GPU copies the paper
#: minimises).
_HOST_LINK_BANDWIDTH = 55e9


class Device:
    """A modelled single stack of the Intel Data Center GPU Max 1550."""

    def __init__(self, spec: DeviceSpec = MAX_1550_STACK, model: Optional[GemmModel] = None):
        self.spec = spec
        self.model = model or GemmModel(spec)
        self.timeline = Timeline()
        self._allocated = 0

    # ------------------------------------------------------------------
    # Memory accounting (Table V: largest system fits in 64 GB).
    # ------------------------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    def allocate(self, nbytes: int) -> None:
        """Book a device allocation; raises MemoryError beyond HBM capacity."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self._allocated + nbytes > self.spec.hbm_bytes:
            raise MemoryError(
                f"device OOM: {self._allocated + nbytes} bytes requested, "
                f"{self.spec.hbm_bytes} available on {self.spec.name}"
            )
        self._allocated += nbytes

    def free(self, nbytes: int) -> None:
        """Release a device allocation."""
        if nbytes < 0 or nbytes > self._allocated:
            raise ValueError(f"cannot free {nbytes} of {self._allocated} allocated bytes")
        self._allocated -= nbytes

    # ------------------------------------------------------------------
    # Kernel booking.
    # ------------------------------------------------------------------

    def record_gemm(
        self,
        routine: str,
        m: int,
        n: int,
        k: int,
        mode: ComputeMode,
        site: str = "",
    ) -> float:
        """Book a BLAS call; returns the modelled seconds.

        This is the hook :mod:`repro.blas.gemm` calls when this device
        is attached with ``use_device``.
        """
        cost: GemmCost = self.model.cost(routine, m, n, k, mode)
        self.timeline.append(routine, cost.seconds, kind="blas", site=site)
        return cost.seconds

    def record_gemm_batch(
        self,
        routine: str,
        m: int,
        n: int,
        k: int,
        batch: int,
        mode: ComputeMode,
        site: str = "",
    ) -> float:
        """Book a batched BLAS call: one launch amortised over the batch."""
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        cost = self.model.cost(routine, m, n, k, mode)
        body = max(cost.point.compute_seconds, cost.point.memory_seconds)
        seconds = batch * body + cost.point.overhead_seconds
        self.timeline.append(f"{routine}_batch", seconds, kind="blas", site=site)
        return seconds

    def record_stream(
        self,
        name: str,
        bytes_moved: float,
        buffer_bytes: Optional[float] = None,
        site: str = "",
    ) -> float:
        """Book a bandwidth-bound application kernel (stencil/pointwise/FFT pass).

        These are LFD's non-BLAS kernels; their cost scales with the
        data volume swept, which is why FP64 storage roughly doubles
        the whole step time (Fig. 3a, FP64 vs FP32).  ``buffer_bytes``
        (default: ``bytes_moved``) sets the occupancy point of the
        saturating stream-rate model.
        """
        if bytes_moved < 0:
            raise ValueError(f"negative bytes_moved: {bytes_moved}")
        buf = bytes_moved if buffer_bytes is None else buffer_bytes
        rate = self.spec.stream_rate(max(buf, 1.0))
        seconds = bytes_moved / rate + self.spec.kernel_launch_overhead
        self.timeline.append(name, seconds, kind="app", site=site)
        return seconds

    def record_copy(self, name: str, bytes_moved: float, site: str = "") -> float:
        """Book a host<->device transfer over the PCIe link."""
        seconds = bytes_moved / _HOST_LINK_BANDWIDTH + self.spec.kernel_launch_overhead
        self.timeline.append(name, seconds, kind="copy", site=site)
        return seconds

    # ------------------------------------------------------------------

    def total_l0_time(self) -> float:
        """unitrace's Total L0 Time for everything booked so far."""
        return self.timeline.total_l0_time()

    def reset(self) -> None:
        """Clear the timeline (allocations are left as-is)."""
        self.timeline.reset()
