"""Hardware-counter-style utilisation summary of a modelled run.

unitrace reports time; performance engineers want *rates*: achieved
FLOP/s, achieved bandwidth, how close each kernel class sits to its
roof.  This module walks a device timeline together with the GEMM
records that produced it and summarises utilisation per kernel class —
the numbers one would read off VTune/PTI hardware counters on the real
machine.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, Iterable, List

from repro.blas.verbose import VerboseRecord
from repro.gpu.specs import DeviceSpec, MAX_1550_STACK
from repro.types import Precision

__all__ = ["KernelClassCounters", "summarize_utilization"]


@dataclasses.dataclass(frozen=True)
class KernelClassCounters:
    """Aggregated utilisation for one (routine, site, mode) class."""

    routine: str
    site: str
    mode_name: str
    calls: int
    total_seconds: float
    total_flops: float

    @property
    def achieved_flops(self) -> float:
        """Average achieved FLOP/s across the class."""
        return self.total_flops / self.total_seconds if self.total_seconds else 0.0

    def utilization_vs(self, peak_ops: float) -> float:
        """Fraction of a given peak this class achieved."""
        if peak_ops <= 0:
            raise ValueError(f"peak_ops must be positive, got {peak_ops}")
        return self.achieved_flops / peak_ops


def summarize_utilization(
    records: Iterable[VerboseRecord],
    spec: DeviceSpec = MAX_1550_STACK,
) -> List[KernelClassCounters]:
    """Aggregate verbose records into per-class counters.

    Uses each record's reported time (device-model prediction when
    available) and its nominal FLOP count — i.e. the *logical* work of
    the call, so split modes that execute extra component products show
    up as high "effective" throughput exactly the way the paper quotes
    speedups against the logical GEMM.
    """
    acc: Dict[tuple, List[VerboseRecord]] = defaultdict(list)
    for r in records:
        acc[(r.routine, r.site, r.mode.env_value)].append(r)
    out = []
    for (routine, site, mode_name), recs in acc.items():
        out.append(
            KernelClassCounters(
                routine=routine,
                site=site,
                mode_name=mode_name,
                calls=len(recs),
                total_seconds=float(sum(r.reported_seconds for r in recs)),
                total_flops=float(sum(r.flops for r in recs)),
            )
        )
    out.sort(key=lambda c: -c.total_seconds)
    return out


def utilization_table(
    records: Iterable[VerboseRecord],
    spec: DeviceSpec = MAX_1550_STACK,
) -> List[tuple]:
    """Rows: (site, routine, mode, calls, seconds, TFLOP/s, % of FP32 peak)."""
    fp32_peak = spec.peak(Precision.FP32)
    rows = []
    for c in summarize_utilization(records, spec):
        rows.append(
            (
                c.site or "-",
                c.routine,
                c.mode_name,
                c.calls,
                c.total_seconds,
                c.achieved_flops / 1e12,
                c.utilization_vs(fp32_peak),
            )
        )
    return rows
