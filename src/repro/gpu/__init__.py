"""Analytical performance model of one Intel Data Center GPU Max 1550 stack.

The paper measures on real silicon; this package is the substitution:
a roofline-style model with the published device parameters (Table I
peaks, EU count and frequency, HBM bandwidth, memory capacity) plus
two empirically motivated derates (power-limited sustained throughput
and tile-granularity efficiency).  It predicts per-GEMM execution time
for every compute mode and provides a unitrace-like kernel timeline so
the harness can extract "Total L0 Time" the way the artifact does.

The model is calibrated against the paper's reported anchors —
3.91x max BF16 BLAS speedup at N_orb = 4096, ~1.5x FP32->BF16 and
~1.9x FP64->FP32 end-to-end on the 135-atom system — and is used for
all paper-scale timing numbers (Figs. 3a/3b, Tables VI/VII).
"""

from repro.gpu.specs import (
    DeviceSpec,
    EngineKind,
    MAX_1550_STACK,
    peak_table,
)
from repro.gpu.roofline import RooflinePoint, roofline_time
from repro.gpu.gemm_model import GemmCost, GemmModel
from repro.gpu.timeline import KernelEvent, Timeline
from repro.gpu.executor import Device
from repro.gpu.counters import (
    KernelClassCounters,
    summarize_utilization,
    utilization_table,
)
from repro.gpu.tracefile import timeline_to_trace_events, write_chrome_trace
from repro.gpu.multistack import (
    LinkSpec,
    MultiStackModel,
    NODE_FABRIC,
    ScalingPoint,
    XE_LINK,
)

__all__ = [
    "DeviceSpec",
    "EngineKind",
    "MAX_1550_STACK",
    "peak_table",
    "RooflinePoint",
    "roofline_time",
    "GemmCost",
    "GemmModel",
    "KernelEvent",
    "Timeline",
    "Device",
    "KernelClassCounters",
    "summarize_utilization",
    "utilization_table",
    "timeline_to_trace_events",
    "write_chrome_trace",
    "LinkSpec",
    "MultiStackModel",
    "NODE_FABRIC",
    "ScalingPoint",
    "XE_LINK",
]
