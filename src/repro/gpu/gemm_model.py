"""Per-mode GEMM cost model for the Max 1550 stack.

A logical BLAS call is lowered to the same internal structure the
software emulation (and oneMKL) uses:

* real standard GEMM          -> 1 component product at FP32/FP64;
* complex standard (4M)       -> 4 real component products;
* ``COMPLEX_3M``              -> 3 real component products plus
  pointwise add passes;
* ``FLOAT_TO_{BF16,TF32}[Xn]``-> a conversion pass (FP32 -> n
  reduced-precision component copies of A and B) followed by
  ``n(n+1)/2`` component products on the matrix engines with FP32
  accumulation; complex composes this with 4M.
* ``OZAKI_INT8``              -> the same split structure with INT8
  slice copies (1 byte each) multiplied on the INT8 tensor engines
  with exact INT32 accumulation;
* ``EMULATED_FP64``           -> FP32-term splitting (three terms of
  an FP64 operand, one of an FP32 operand) with six (resp. one) FP32
  pair products accumulated at FP64.

Each stage gets a flops/bytes estimate; the roofline (sustained
throughput under the power derate, achievable HBM bandwidth, tile
efficiency for narrow GEMMs) converts it to seconds.  This reproduces
the paper's two headline performance facts by construction rather than
by fiat:

* large-``n`` BF16 GEMMs saturate at ~4x, not 16x, because the
  ``m = 128`` remap_occ shape leaves them bandwidth-bound (Table VI);
* small problems show no mode spread at all because launch overhead
  and bandwidth dominate (Fig. 3a, 40-atom system).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.blas.modes import ComputeMode
from repro.gpu.roofline import RooflinePoint, roofline_time
from repro.gpu.specs import DeviceSpec, MAX_1550_STACK
from repro.types import Precision

__all__ = ["GemmCost", "GemmModel", "ROUTINE_INFO"]

#: routine -> (is_complex, real element bytes, storage precision)
ROUTINE_INFO: Dict[str, tuple] = {
    "sgemm": (False, 4, Precision.FP32),
    "dgemm": (False, 8, Precision.FP64),
    "cgemm": (True, 4, Precision.FP32),
    "zgemm": (True, 8, Precision.FP64),
}

#: bytes per element of each reduced component format in memory.
_COMPONENT_BYTES = {
    Precision.BF16: 2,
    Precision.TF32: 4,
    Precision.INT8: 1,
    Precision.FP32: 4,
}


@dataclasses.dataclass(frozen=True)
class GemmCost:
    """Fully resolved cost of one logical GEMM."""

    routine: str
    m: int
    n: int
    k: int
    mode: ComputeMode
    multiply_precision: Precision   #: format of the multiply stage
    n_component_products: int       #: real products actually executed
    point: RooflinePoint            #: roofline resolution

    @property
    def seconds(self) -> float:
        return self.point.seconds

    @property
    def bound(self) -> str:
        return self.point.bound


class GemmModel:
    """Maps (routine, m, n, k, mode) to modelled execution time."""

    #: Fraction of a full operand stream charged for each component
    #: product beyond the first (cache-reuse model; calibrated against
    #: the paper's 3.91x BF16 anchor and the Fig. 3a mode ordering).
    cross_product_restream = 0.10

    def __init__(self, spec: DeviceSpec = MAX_1550_STACK):
        self.spec = spec

    # ------------------------------------------------------------------

    def effective_mode(self, routine: str, mode: ComputeMode) -> ComputeMode:
        """Mode actually honoured for this routine (mirrors the BLAS layer)."""
        is_complex, _, storage = ROUTINE_INFO[routine]
        if mode.is_low_precision and storage is not Precision.FP32:
            return ComputeMode.STANDARD      # FLOAT_TO_* is single-only
        if mode.uses_int8 and storage is not Precision.FP32:
            return ComputeMode.STANDARD      # Ozaki INT8 is single-only too
        if mode.uses_3m and not is_complex:
            return ComputeMode.STANDARD      # 3M is complex-only
        return mode

    def cost(self, routine: str, m: int, n: int, k: int, mode: ComputeMode) -> GemmCost:
        """Resolve the modelled cost of one logical GEMM call."""
        if routine not in ROUTINE_INFO:
            raise ValueError(f"unknown routine {routine!r}; known: {sorted(ROUTINE_INFO)}")
        if min(m, n, k) <= 0:
            raise ValueError(f"GEMM dims must be positive, got m={m} n={n} k={k}")
        is_complex, elem, storage = ROUTINE_INFO[routine]
        mode = self.effective_mode(routine, mode)

        # --- component structure ---------------------------------------
        complex_factor = 1
        if is_complex:
            complex_factor = 3 if mode.uses_3m else 4
        is_split = mode.is_low_precision or mode.uses_int8 or mode.uses_fp64_emulation
        if mode.uses_fp64_emulation:
            # FP64 storage: three FP32 terms, six pair products; single
            # storage needs one FP64-accumulated FP32 product.
            n_terms = 3 if storage is Precision.FP64 else 1
            n_products = complex_factor * (n_terms * (n_terms + 1) // 2)
            mult_precision = Precision.FP32
            comp_bytes = _COMPONENT_BYTES[mult_precision]
        elif is_split:
            # FLOAT_TO_* mantissa splits and the Ozaki INT8 slice split
            # share the structure: n(n+1)/2 reduced-format products.
            n_products = complex_factor * mode.n_component_products
            mult_precision = mode.component_precision
            comp_bytes = _COMPONENT_BYTES[mult_precision]
            n_terms = mode.n_terms
        else:
            n_products = complex_factor
            mult_precision = storage
            comp_bytes = elem
            n_terms = 1

        # --- flops -------------------------------------------------------
        # Each real component product is 2*m*n*k flops (multiply+add).
        flops = 2.0 * m * n * k * n_products

        # --- memory traffic ----------------------------------------------
        # Real-part matrices: a complex operand is two real matrices.
        parts = 2 if is_complex else 1
        a_elems = m * k * parts
        b_elems = k * n * parts
        c_elems = m * n * parts

        traffic = 0.0
        n_kernels = n_products
        operand_elems = a_elems + b_elems
        if is_split:
            # Conversion pass: read FP32 operands once, write n_terms
            # component copies of each.
            traffic += operand_elems * elem
            traffic += operand_elems * n_terms * comp_bytes
            n_kernels += 2  # the two conversion kernels
            # Multiply stage: each component copy is streamed at least
            # once; the cross products beyond the first n_terms reuse
            # panels already resident in cache most of the time, so
            # they add only a calibrated fraction of a full stream.
            reuse = n_terms + self.cross_product_restream * (n_products - n_terms)
            traffic += operand_elems * comp_bytes * reuse
        else:
            # A native kernel streams each (real-part) operand once;
            # extra real products of a 4M/3M complex multiply mostly
            # re-touch cached panels.
            base = parts  # one stream per real-part matrix
            reuse = base + self.cross_product_restream * (n_products - base)
            traffic += (m * k + k * n) * elem * reuse
        if mode.uses_3m and is_complex:
            # Forming (Ar+Ai) and (Br+Bi): read both parts, write sum;
            # recombining outputs: three m*n add passes.
            traffic += (a_elems + b_elems) * elem * 1.5
            traffic += 3 * m * n * elem
            n_kernels += 2
        # Result write-back (FP32/FP64 storage), once.
        traffic += c_elems * elem

        # --- roofline ------------------------------------------------------
        # Achievable rate is the smaller of what the tile shape can
        # feed (utilisation) and what the power envelope sustains: a
        # fat GEMM saturates the power cap, a narrow one never fills
        # the engines.  Section V-C names exactly these two limits.
        engine = self.spec.engine_for(mult_precision)
        eff = self.spec.tile_efficiency(m, n, k, engine)
        cap = self.spec.power_derate[mult_precision]
        rate = self.spec.peak(mult_precision) * min(eff, cap)
        point = roofline_time(
            flops=flops,
            bytes_moved=traffic,
            sustained_flops=rate,
            bandwidth=self.spec.effective_bandwidth(),
            overhead=self.spec.kernel_launch_overhead * n_kernels,
        )
        return GemmCost(
            routine=routine,
            m=m,
            n=n,
            k=k,
            mode=mode,
            multiply_precision=mult_precision,
            n_component_products=n_products,
            point=point,
        )

    def seconds(self, routine: str, m: int, n: int, k: int, mode: ComputeMode) -> float:
        """Convenience: modelled wall time of the call."""
        return self.cost(routine, m, n, k, mode).seconds

    def speedup_vs_fp32(self, routine: str, m: int, n: int, k: int, mode: ComputeMode) -> float:
        """Speedup of ``mode`` over the STANDARD run of the same call."""
        base = self.seconds(routine, m, n, k, ComputeMode.STANDARD)
        alt = self.seconds(routine, m, n, k, mode)
        return base / alt
