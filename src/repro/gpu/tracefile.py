"""Chrome-trace export of the modelled device timeline.

unitrace can emit Chrome/Perfetto-compatible traces; so can we.  The
output is the standard Trace Event JSON array (``ph: "X"`` complete
events, microsecond timestamps), with one row per kernel kind so the
BLAS / app / copy streams separate visually.  Open in
``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.gpu.timeline import Timeline

__all__ = ["timeline_to_trace_events", "write_chrome_trace"]

PathLike = Union[str, Path]

#: Stable tid per kernel kind so each category gets its own lane.
_KIND_LANES = {"blas": 1, "app": 2, "copy": 3}


def timeline_to_trace_events(timeline: Timeline, pid: int = 1) -> list:
    """Convert a timeline to Trace Event dicts (``ph: "X"``)."""
    events = []
    for e in timeline.events:
        events.append(
            {
                "name": e.name,
                "cat": e.kind or "kernel",
                "ph": "X",
                "ts": e.start * 1e6,        # microseconds
                "dur": e.duration * 1e6,
                "pid": pid,
                "tid": _KIND_LANES.get(e.kind, 0),
                "args": {"site": e.site} if e.site else {},
            }
        )
    return events


def write_chrome_trace(path: PathLike, timeline: Timeline, pid: int = 1) -> None:
    """Write the timeline as a Chrome-trace JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": timeline_to_trace_events(timeline, pid=pid),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload))
