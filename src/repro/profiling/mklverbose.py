"""MKL_VERBOSE log analysis — the paper's Table VI/VII extraction path.

The artifact reads per-call GEMM dimensions and synchronous timings
out of ``MKL_VERBOSE=2`` text ("Each QD step contains 9 BLAS calls and
these are represented by 9 outputs").  We provide the inverse of
:func:`repro.blas.verbose.format_verbose_line` plus aggregation into
per-(routine, shape, site) summaries.
"""

from __future__ import annotations

import dataclasses
import re
from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from repro.blas.modes import ComputeMode
from repro.blas.verbose import VerboseRecord

__all__ = ["parse_verbose_line", "parse_verbose_text", "BlasCallSummary", "summarize_calls"]

_LINE_RE = re.compile(
    r"^MKL_VERBOSE\s+(?P<routine>[A-Z]+)(?P<batch_tag>_BATCH)?"
    r"\((?P<ta>[NTC]),(?P<tb>[NTC]),(?P<m>\d+),(?P<n>\d+),(?P<k>\d+)\)\s+"
    r"(?P<value>[0-9.]+)(?P<unit>s|ms|us)"
    r"(?:\s+mode:(?P<mode>\S+))?"
    r"(?:\s+site:(?P<site>\S+))?"
    r"(?:\s+batch:(?P<batch>\d+))?\s*$"
)

_UNIT = {"s": 1.0, "ms": 1e-3, "us": 1e-6}


def parse_verbose_line(line: str) -> VerboseRecord:
    """Parse one MKL_VERBOSE-style line back into a record."""
    m = _LINE_RE.match(line.strip())
    if not m:
        raise ValueError(f"not an MKL_VERBOSE line: {line!r}")
    seconds = float(m.group("value")) * _UNIT[m.group("unit")]
    mode = ComputeMode.parse(m.group("mode")) if m.group("mode") else ComputeMode.STANDARD
    return VerboseRecord(
        routine=m.group("routine").lower(),
        trans_a=m.group("ta"),
        trans_b=m.group("tb"),
        m=int(m.group("m")),
        n=int(m.group("n")),
        k=int(m.group("k")),
        mode=mode,
        seconds=seconds,
        model_seconds=None,
        site=m.group("site") or "",
        batch=int(m.group("batch")) if m.group("batch") else 1,
    )


def parse_verbose_text(text: str) -> List[VerboseRecord]:
    """Parse every MKL_VERBOSE line in a blob of output."""
    records = []
    for line in text.splitlines():
        if line.lstrip().startswith("MKL_VERBOSE"):
            records.append(parse_verbose_line(line))
    return records


@dataclasses.dataclass(frozen=True)
class BlasCallSummary:
    """Aggregate of identical BLAS calls across a run."""

    routine: str
    m: int
    n: int
    k: int
    site: str
    mode: ComputeMode
    count: int
    total_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


def summarize_calls(records: Iterable[VerboseRecord]) -> List[BlasCallSummary]:
    """Group records by (routine, shape, site, mode), sum the timings.

    Uses each record's *reported* time (device-model prediction when
    available, wall time otherwise), matching how the artifact's
    analysis averages "the specific BLAS call in question".
    """
    acc: Dict[Tuple, List[float]] = defaultdict(list)
    for r in records:
        acc[(r.routine, r.m, r.n, r.k, r.site, r.mode)].append(r.reported_seconds)
    out = [
        BlasCallSummary(
            routine=key[0], m=key[1], n=key[2], k=key[3], site=key[4], mode=key[5],
            count=len(times), total_seconds=float(sum(times)),
        )
        for key, times in acc.items()
    ]
    out.sort(key=lambda s: -s.total_seconds)
    return out
