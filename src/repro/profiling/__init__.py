"""Profiling substrate: the paper's two measurement tools, re-created.

* :mod:`repro.profiling.unitrace` — the PTI-GPU *unitrace* view of the
  modelled device timeline: "Total L0 Time" plus per-kernel breakdowns
  (used for Fig. 3a).
* :mod:`repro.profiling.mklverbose` — parsing and aggregation of the
  ``MKL_VERBOSE``-style per-call log emitted by :mod:`repro.blas`
  (used for Fig. 3b and Tables VI/VII).
"""

from repro.profiling.unitrace import UnitraceReport, unitrace_report
from repro.profiling.roofline_report import (
    RooflineEntry,
    render_roofline,
    ridge_point,
    roofline_entries,
)
from repro.profiling.mklverbose import (
    BlasCallSummary,
    parse_verbose_text,
    summarize_calls,
)

__all__ = [
    "UnitraceReport",
    "unitrace_report",
    "RooflineEntry",
    "render_roofline",
    "ridge_point",
    "roofline_entries",
    "BlasCallSummary",
    "parse_verbose_text",
    "summarize_calls",
]
