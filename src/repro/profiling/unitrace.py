"""unitrace-style reporting over a modelled device timeline.

The artifact's performance recipe is: run 500 QD steps under
``unitrace -k`` and read the *Total L0 Time* off the top of the
report, then compare across compute modes (Fig. 3a).  This module
renders the same report from a :class:`repro.gpu.Timeline`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.gpu.timeline import Timeline

__all__ = ["UnitraceReport", "unitrace_report"]


@dataclasses.dataclass(frozen=True)
class UnitraceReport:
    """Aggregated kernel-time view of one run."""

    total_l0_seconds: float
    by_kernel: Dict[str, float]       #: seconds per kernel name
    by_kind: Dict[str, float]         #: seconds per category (blas/app/copy)
    by_site: Dict[str, float]         #: seconds per application call site
    n_kernels: int

    def top_kernels(self, n: int = 10) -> List[Tuple[str, float]]:
        """Kernel names sorted by total device time, descending."""
        return sorted(self.by_kernel.items(), key=lambda kv: -kv[1])[:n]

    def blas_fraction(self) -> float:
        """Share of device time spent in BLAS kernels."""
        if self.total_l0_seconds == 0:
            return 0.0
        return self.by_kind.get("blas", 0.0) / self.total_l0_seconds

    def render(self) -> str:
        """Human-readable report in unitrace's spirit."""
        lines = [
            f"Total L0 Time: {self.total_l0_seconds * 1e9:.0f} ns "
            f"({self.total_l0_seconds:.6f} s), {self.n_kernels} kernels",
            "",
            f"{'Kernel':<24s} {'Time (s)':>12s} {'Share':>8s}",
        ]
        for name, secs in self.top_kernels(n=len(self.by_kernel)):
            share = secs / self.total_l0_seconds if self.total_l0_seconds else 0.0
            lines.append(f"{name:<24s} {secs:>12.6f} {share:>7.1%}")
        lines.append("")
        for kind, secs in sorted(self.by_kind.items(), key=lambda kv: -kv[1]):
            lines.append(f"kind:{kind:<19s} {secs:>12.6f}")
        return "\n".join(lines)


def unitrace_report(timeline: Timeline) -> UnitraceReport:
    """Build a report from a device timeline."""
    return UnitraceReport(
        total_l0_seconds=timeline.total_l0_time(),
        by_kernel=timeline.time_by_name(),
        by_kind=timeline.time_by_kind(),
        by_site=timeline.time_by_site(),
        n_kernels=len(timeline),
    )
