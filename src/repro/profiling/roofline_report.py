"""Roofline analysis of a modelled run — which wall does each call hit?

Section V-C explains the 3.91x-vs-16x gap with two limits ("memory and
cache bandwidth limitations and power limitations").  This report makes
that analysis systematic: for a set of GEMM calls it tabulates the
arithmetic intensity, the machine's ridge point at each precision, and
which side of the ridge the call lands on — with an ASCII roofline so
the reproduction is legible in a terminal.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Sequence

import numpy as np

from repro.blas.modes import ComputeMode
from repro.gpu.gemm_model import GemmCost, GemmModel
from repro.gpu.specs import DeviceSpec, MAX_1550_STACK

__all__ = ["RooflineEntry", "roofline_entries", "render_roofline", "ridge_point"]


@dataclasses.dataclass(frozen=True)
class RooflineEntry:
    """One GEMM call placed on the roofline."""

    label: str
    mode: ComputeMode
    intensity: float          #: flops per byte
    achieved_flops: float     #: flops / modelled seconds
    bound: str                #: 'compute' | 'memory' | 'launch'
    seconds: float


def ridge_point(spec: DeviceSpec, mode: ComputeMode) -> float:
    """Arithmetic intensity where the mode's compute roof meets the
    memory roof (flops/byte)."""
    if mode.is_low_precision:
        rate = spec.sustained(mode.component_precision)
    else:
        from repro.types import Precision

        rate = spec.sustained(Precision.FP32)
    return rate / spec.effective_bandwidth()


def roofline_entries(
    calls: Sequence[tuple],
    modes: Iterable[ComputeMode] = (ComputeMode.STANDARD, ComputeMode.FLOAT_TO_BF16),
    spec: DeviceSpec = MAX_1550_STACK,
) -> List[RooflineEntry]:
    """Place calls on the roofline.

    ``calls`` is a sequence of ``(label, routine, m, n, k)``.
    """
    model = GemmModel(spec)
    entries: List[RooflineEntry] = []
    for label, routine, m, n, k in calls:
        for mode in modes:
            cost: GemmCost = model.cost(routine, m, n, k, mode)
            entries.append(
                RooflineEntry(
                    label=label,
                    mode=cost.mode,
                    intensity=cost.point.arithmetic_intensity,
                    achieved_flops=cost.point.flops / cost.seconds,
                    bound=cost.bound,
                    seconds=cost.seconds,
                )
            )
    return entries


def render_roofline(
    entries: Sequence[RooflineEntry],
    spec: DeviceSpec = MAX_1550_STACK,
    width: int = 64,
    height: int = 14,
) -> str:
    """ASCII log-log roofline with the entries marked.

    The memory roof is the diagonal, the compute roofs are horizontal;
    each entry is plotted with an index referencing the legend below.
    """
    if not entries:
        raise ValueError("no entries to plot")
    xs = np.array([max(e.intensity, 1e-3) for e in entries])
    ys = np.array([max(e.achieved_flops, 1.0) for e in entries])
    x_lo = 10 ** np.floor(np.log10(xs.min()))
    x_hi = 10 ** np.ceil(np.log10(xs.max() * 10))
    bw = spec.effective_bandwidth()
    y_hi = 10 ** np.ceil(np.log10(max(ys.max(), bw * x_hi / 10)))
    y_lo = 10 ** np.floor(np.log10(ys.min()))

    def col(x):
        return int((np.log10(x) - np.log10(x_lo))
                   / (np.log10(x_hi) - np.log10(x_lo)) * (width - 1))

    def row(y):
        return int((np.log10(y_hi) - np.log10(y))
                   / (np.log10(y_hi) - np.log10(y_lo)) * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    # Memory roof: flops = bw * intensity.
    for c in range(width):
        x = 10 ** (np.log10(x_lo) + c / (width - 1) * (np.log10(x_hi) - np.log10(x_lo)))
        y = bw * x
        if y_lo <= y <= y_hi:
            grid[row(y)][c] = "/"
    # Entries.
    for i, (x, y) in enumerate(zip(xs, ys)):
        r, c = row(min(max(y, y_lo), y_hi)), col(min(max(x, x_lo), x_hi))
        grid[r][c] = str(i % 10)

    lines = [f"achieved FLOP/s (log), roof bandwidth {bw / 1e12:.2f} TB/s"]
    lines += ["".join(r) for r in grid]
    lines.append("arithmetic intensity (flops/byte, log) ->")
    for i, e in enumerate(entries):
        lines.append(
            f"  [{i % 10}] {e.label:<18s} {e.mode.env_value:<16s} "
            f"AI={e.intensity:8.1f}  {e.achieved_flops / 1e12:7.2f} TFLOP/s  "
            f"{e.bound}"
        )
    return "\n".join(lines)
