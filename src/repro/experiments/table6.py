"""Table VI — max observed vs peak theoretical BLAS speedup per mode.

The paper's anchor: 3.91x maximum observed for BF16 against a 16x
theoretical peak, the gap attributed to the bandwidth-starved
``m = 128`` dimension and power limits — both of which the device
model represents explicitly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.core.blas_sweep import BlasSweep
from repro.core.report import render_table, write_csv

#: The one observed value quoted in the paper's text (Table VI's body
#: is illegible in the source we have): BF16's 3.91x vs 16x peak.
PAPER_ANCHORS = {"FLOAT_TO_BF16": (3.91, 16.0)}

HEADERS = ("Compute Mode", "Max Observed Speedup", "Peak Theoretical Speedup")


def run(fast: bool = True, output_dir: Optional[str] = None) -> dict:
    """Regenerate Table VI on the device model."""
    sweep = BlasSweep()
    rows = sweep.table6()
    text = render_table(HEADERS, rows, title="Table VI: observed vs theoretical BLAS speedup")
    if output_dir:
        write_csv(Path(output_dir) / "table6.csv", HEADERS, rows)
    return {"rows": rows, "paper_anchors": PAPER_ANCHORS, "text": text}


if __name__ == "__main__":
    print(run()["text"])
