"""Table IV — exponent and mantissa bits per precision format."""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.core.report import render_table, write_csv
from repro.core.theoretical import table4_rows

PAPER_ROWS = [
    ("FP64", 11, 52),
    ("FP32", 8, 23),
    ("TF32", 8, 10),
    ("BF16", 8, 7),
]

HEADERS = ("Precision", "Exponent Bits", "Mantissa Bits")


def run(fast: bool = True, output_dir: Optional[str] = None) -> dict:
    """Regenerate Table IV from the format definitions."""
    rows = table4_rows()
    text = render_table(HEADERS, rows, title="Table IV: precision formats")
    if output_dir:
        write_csv(Path(output_dir) / "table4.csv", HEADERS, rows)
    return {"rows": rows, "paper_rows": PAPER_ROWS, "text": text}


if __name__ == "__main__":
    print(run()["text"])
