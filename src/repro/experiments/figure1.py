"""Figure 1 — deviation from FP32 of nexc, javg and ekin over time.

The paper runs the 135-atom system for ~10 fs (21 000 QD steps, ~2
days per mode on the GPU).  The reproduction runs a scaled-down system
with identical structure — the BLAS relative error is independent of
matrix size (Section V-B), so the *shape* of the deviation curves and
the mode ordering carry over; see DESIGN.md for the substitution
argument.

Expected shape (checked by tests and recorded in EXPERIMENTS.md):
deviation grows over the simulation; the BF16 family deviates most,
with BF16 > BF16x2 >= TF32 > BF16x3; COMPLEX_3M stays at the FP32
noise floor; javg deviations sit orders of magnitude below ekin's.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.core.report import render_table, write_csv
from repro.core.study import PAPER_STUDY_MODES, PrecisionStudy
from repro.dcmesh.scf import SCFParams
from repro.dcmesh.simulation import SimulationConfig

HEADERS = ("Observable", "Mode", "Max |deviation|", "Final |deviation|", "Max relative")


def study_config(fast: bool = True) -> SimulationConfig:
    """The scaled-down stand-in for the 135-atom accuracy run."""
    if fast:
        return SimulationConfig.small_test(n_qd_steps=120, nscf=60)
    # "Full" reproduction scale for this harness: a 2-cell system on a
    # 16^3 mesh, 1200 steps with the paper's SCF cadence ratio.
    return SimulationConfig(
        ncells=(1, 1, 2),
        mesh_shape=(16, 16, 24),
        n_orb=48,
        n_qd_steps=1200,
        nscf=300,
        dt=0.04,
        scf=SCFParams(max_iter=40, tol=1e-7),
    )


def run(fast: bool = True, output_dir: Optional[str] = None) -> dict:
    """Run all five modes + FP32 reference; tabulate deviations.

    Pinned to the paper's five modes — the post-paper split rungs show
    up in the Pareto experiment and the full study instead.
    """
    study = PrecisionStudy(study_config(fast), modes=PAPER_STUDY_MODES)
    result = study.run()
    rows = []
    for obs, series_list in result.deviations.items():
        for s in series_list:
            rows.append(
                (obs, s.mode.env_value, s.max_deviation, s.final_deviation,
                 float(s.relative().max()))
            )
    text = render_table(HEADERS, rows, title="Figure 1: deviation from FP32 over time")
    from repro.core.plots import plot_deviation_series

    plots = {
        obs: plot_deviation_series(result.deviations, obs)
        for obs in result.deviations
    }
    text = text + "\n\n" + "\n\n".join(plots.values())
    if output_dir:
        out = Path(output_dir)
        write_csv(out / "figure1_summary.csv", HEADERS, rows)
        # Full time series per observable, one column per mode.
        for obs, series_list in result.deviations.items():
            hdr = ["time_fs"] + [s.mode.env_value for s in series_list]
            cols = list(
                zip(series_list[0].time_fs, *[s.deviation for s in series_list])
            )
            write_csv(out / f"figure1_{obs}.csv", hdr, cols)
    return {"rows": rows, "study": result, "text": text}


if __name__ == "__main__":
    print(run()["text"])
