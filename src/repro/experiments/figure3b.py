"""Figure 3b — BLAS-call speedup vs FP32 for N_orb in {256..4096}.

"The case with the smallest number of orbitals provides the least
degree of improvement while the largest case translates into the
greatest speedup between FP32 and alternative precisions" — with the
BF16 maximum hitting 3.91x at N_orb = 4096 (Table VI).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.core.blas_sweep import BlasSweep, FIG3B_NORBS, SWEEP_MODES
from repro.core.report import render_table, write_csv

HEADERS = ("N_orb",) + tuple(m.env_value for m in SWEEP_MODES)


def run(fast: bool = True, output_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 3b on the device model."""
    sweep = BlasSweep()
    points = sweep.sweep()
    by_norb = {}
    for p in points:
        by_norb.setdefault(p.n_orb, {})[p.mode] = p.speedup
    rows = [
        (n_orb, *[by_norb[n_orb][m] for m in SWEEP_MODES]) for n_orb in FIG3B_NORBS
    ]
    text = render_table(
        HEADERS, rows, title="Figure 3b: per-call BLAS speedup vs FP32 (remap_occ GEMM)"
    )
    if output_dir:
        write_csv(Path(output_dir) / "figure3b.csv", HEADERS, rows)
    return {"rows": rows, "points": points, "text": text}


if __name__ == "__main__":
    print(run()["text"])
