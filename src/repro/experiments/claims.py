"""Claims-traceability matrix: every paper claim, checked live.

A reproduction should make its coverage auditable.  This module lists
the paper's checkable claims — quotes from the text — each mapped to
the implementing module, the pinning test, and a *live checker* that
re-evaluates the claim on the spot.  ``dcmesh-repro claims`` renders
the matrix; a failing checker turns the row's status to FAIL.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, List, Optional

import numpy as np

__all__ = ["Claim", "CLAIMS", "evaluate_claims", "run"]


@dataclasses.dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper."""

    claim_id: str
    quote: str                 #: (abridged) text from the paper
    source: str                #: paper section
    module: str                #: implementing module
    test: str                  #: pinning test
    checker: Callable[[], bool]


# ----------------------------------------------------------------------
# Live checkers.  Each is cheap (< a few seconds) and self-contained.
# ----------------------------------------------------------------------


def _check_env_var_no_source_change() -> bool:
    import numpy as np

    from repro.blas.env import scoped_env
    from repro.blas.gemm import sgemm

    rng = np.random.default_rng(0)
    a = rng.standard_normal((16, 16)).astype(np.float32)
    with scoped_env({"MKL_BLAS_COMPUTE_MODE": "FLOAT_TO_BF16"}):
        via_env = sgemm(a, a)
    return np.array_equal(via_env, sgemm(a, a, mode="FLOAT_TO_BF16"))


def _check_peak_speedups() -> bool:
    from repro.blas.modes import ComputeMode
    from repro.core.theoretical import peak_theoretical_speedup

    targets = {
        ComputeMode.FLOAT_TO_BF16: 16.0,
        ComputeMode.FLOAT_TO_BF16X2: 16.0 / 3.0,
        ComputeMode.FLOAT_TO_BF16X3: 8.0 / 3.0,
        ComputeMode.FLOAT_TO_TF32: 8.0,
        ComputeMode.COMPLEX_3M: 4.0 / 3.0,
    }
    return all(
        abs(peak_theoretical_speedup(m) - v) / v < 0.02 for m, v in targets.items()
    )


def _check_391_anchor() -> bool:
    from repro.blas.modes import ComputeMode
    from repro.gpu.gemm_model import GemmModel

    s = GemmModel().speedup_vs_fp32(
        "cgemm", 128, 3968, 262144, ComputeMode.FLOAT_TO_BF16
    )
    return abs(s - 3.91) < 0.45


def _check_memory_bound_explanation() -> bool:
    from repro.blas.modes import ComputeMode
    from repro.gpu.gemm_model import GemmModel

    cost = GemmModel().cost("cgemm", 128, 3968, 262144, ComputeMode.FLOAT_TO_BF16)
    return cost.bound == "memory"


def _check_fig3a_fp32_anchor() -> bool:
    from repro.core.perfstudy import PerfStudy

    fig = PerfStudy().figure_3a()
    fp32 = next(t for t in fig["135-atom"] if t.label == "FP32")
    return abs(fp32.block_seconds(500) - 1472) / 1472 < 0.15


def _check_mode_ordering_end_to_end() -> bool:
    from repro.core.perfstudy import PerfStudy

    fig = PerfStudy().figure_3a()
    t = {x.label: x.step_seconds for x in fig["135-atom"]}
    order = ["BF16", "TF32", "BF16X2", "BF16X3", "COMPLEX_3M", "FP32", "FP64"]
    vals = [t[label] for label in order]
    return vals == sorted(vals)


def _check_small_system_insensitive() -> bool:
    from repro.core.perfstudy import PerfStudy

    study = PerfStudy()
    fig = study.figure_3a()
    speedups = study.speedup_over_fp32(fig["40-atom"])
    alt = [v for k, v in speedups.items() if k not in ("FP32", "FP64")]
    return max(alt) < 1.3


def _check_error_size_independent() -> bool:
    from repro.blas.modes import ComputeMode
    from repro.core.error_model import observed_gemm_relative_error

    e_small = observed_gemm_relative_error(ComputeMode.FLOAT_TO_BF16, 32, 32, 32)
    e_large = observed_gemm_relative_error(ComputeMode.FLOAT_TO_BF16, 32, 32, 2048)
    return e_large <= 2 * e_small


def _check_bf16x3_comparable_to_fp32() -> bool:
    from repro.blas.modes import ComputeMode
    from repro.core.error_model import observed_gemm_relative_error

    e_x3 = observed_gemm_relative_error(ComputeMode.FLOAT_TO_BF16X3, 64, 64, 64)
    e_std = observed_gemm_relative_error(ComputeMode.STANDARD, 64, 64, 64)
    return e_x3 < 10 * max(e_std, 1e-9)


def _check_accuracy_ladder() -> bool:
    import numpy as np

    from repro.blas.gemm import gemm
    from repro.blas.modes import ComputeMode

    rng = np.random.default_rng(1)
    a = rng.standard_normal((48, 48)).astype(np.float32)
    b = rng.standard_normal((48, 48)).astype(np.float32)
    ref = a.astype(np.float64) @ b.astype(np.float64)

    def err(mode):
        return float(np.abs(gemm(a, b, mode=mode).astype(np.float64) - ref).max())

    return (
        err(ComputeMode.FLOAT_TO_BF16)
        > err(ComputeMode.FLOAT_TO_TF32)
        > err(ComputeMode.FLOAT_TO_BF16X2)
        > err(ComputeMode.FLOAT_TO_BF16X3)
    )


def _check_3m_different_cancellation() -> bool:
    from repro.core.ablation import complex_3m_cancellation

    out = complex_3m_cancellation(trials=5)
    return out["gemm_3m"] > out["gemm_4m"]


def _check_table_v_capacity() -> bool:
    from repro.dcmesh.simulation import SimulationConfig, estimate_device_bytes
    from repro.gpu.specs import MAX_1550_STACK

    fits_135 = MAX_1550_STACK.fits_in_memory(
        estimate_device_bytes(SimulationConfig.paper_135())
    )
    next_up = SimulationConfig(ncells=(4, 4, 4), mesh_shape=(128, 128, 128), n_orb=2048)
    too_big = not MAX_1550_STACK.fits_in_memory(estimate_device_bytes(next_up))
    return fits_135 and too_big


def _check_nine_blas_calls() -> bool:
    from repro.core.schedule import qd_step_schedule

    gemms, _ = qd_step_schedule(64**3, 256, 128)
    return len(gemms) == 9


def _check_table_vii_shapes() -> bool:
    from repro.core.blas_sweep import remap_gemm_shape

    return (
        remap_gemm_shape(256) == (128, 128, 262144)
        and remap_gemm_shape(2048) == (128, 1920, 262144)
    )


def _check_fp64_unaffected() -> bool:
    import numpy as np

    from repro.blas.gemm import dgemm

    rng = np.random.default_rng(2)
    a = rng.standard_normal((24, 24))
    return np.array_equal(
        dgemm(a, a, mode="FLOAT_TO_BF16"), dgemm(a, a, mode="STANDARD")
    )


def _check_ozaki_slice_bound() -> bool:
    import numpy as np

    from repro.blas.gemm import gemm
    from repro.blas.modes import ComputeMode
    from repro.blas.rounding import OZAKI_SLICE_BITS

    rng = np.random.default_rng(11)
    scale = 10.0 ** rng.integers(-3, 4, size=(40, 56)).astype(np.float64)
    a = (rng.standard_normal((40, 56)) * scale).astype(np.float32)
    b = rng.standard_normal((56, 32)).astype(np.float32)
    ref = a.astype(np.float64) @ b.astype(np.float64)
    out = gemm(a, b, mode=ComputeMode.OZAKI_INT8).astype(np.float64)
    n_slices = ComputeMode.OZAKI_INT8.n_terms
    rowmax = np.max(np.abs(a.astype(np.float64)), axis=-1, keepdims=True)
    colmax = np.max(np.abs(b.astype(np.float64)), axis=-2, keepdims=True)
    bound = 56 * rowmax * colmax * 2.0 ** (3 - OZAKI_SLICE_BITS * n_slices)
    return bool((np.abs(out - ref) <= bound + np.abs(ref) * 2.0**-24).all())


def _check_emulated_fp64_class() -> bool:
    import numpy as np

    from repro.blas.gemm import gemm
    from repro.blas.modes import ComputeMode

    rng = np.random.default_rng(12)
    a = rng.standard_normal((48, 64)) * 10.0 ** rng.integers(-5, 6, size=(48, 64))
    b = rng.standard_normal((64, 40))
    ref = a @ b
    out = gemm(a, b, mode=ComputeMode.EMULATED_FP64)
    envelope = np.abs(a) @ np.abs(b)
    return bool((np.abs(out - ref) <= envelope * (32 * 64 * 2.0**-53)).all())


def _check_distrib_serial_equivalence() -> bool:
    from repro.core.blas_sweep import BlasSweep

    norbs = (256, 1024)
    serial = BlasSweep().sweep(norbs=norbs)
    distributed = BlasSweep().sweep_distributed(
        norbs=norbs, n_workers=2, inline=True
    )
    return distributed == serial


def _check_newmode_error_ordering() -> bool:
    from repro.blas.modes import ComputeMode
    from repro.core.error_model import mode_effective_error
    from repro.core.scheduler import AdaptiveScheduler

    err = mode_effective_error
    ladder_ok = (
        err(ComputeMode.FLOAT_TO_BF16X2)
        > err(ComputeMode.OZAKI_INT8)
        > err(ComputeMode.STANDARD)
        > err(ComputeMode.EMULATED_FP64)
    )
    sched = AdaptiveScheduler()
    errors = [err(m) for m in sched.ladder]
    return ladder_ok and errors == sorted(errors, reverse=True) and \
        sched.ladder[-1] is ComputeMode.EMULATED_FP64


#: The matrix.  Order follows the paper.
CLAIMS: List[Claim] = [
    Claim(
        "env-var-control",
        "Switching between BLAS precision modes requires no source code "
        "changes (only environment variables)",
        "Abstract / §III-B",
        "repro.blas.modes / repro.blas.env",
        "tests/unit/test_blas_env.py::TestPaperRunEnv",
        _check_env_var_no_source_change,
    ),
    Claim(
        "table2-peaks",
        "Peak theoretical speedups: BF16 16x, BF16x2 (16/3)x, BF16x3 "
        "(8/3)x, TF32 8x, Complex_3M 4/3",
        "Table II / §III-B",
        "repro.core.theoretical",
        "tests/unit/test_core_theoretical.py::TestTable2",
        _check_peak_speedups,
    ),
    Claim(
        "speedup-391",
        "The maximum speedup we achieved was 3.91x when using the BF16 "
        "compute mode",
        "§V-C / Table VI",
        "repro.gpu.gemm_model",
        "tests/unit/test_gpu_gemm_model.py::TestPaperAnchors",
        _check_391_anchor,
    ),
    Claim(
        "m128-bandwidth",
        "The bandwidth limitations stem primarily from the relatively "
        "small m = 128 dimension",
        "§V-C",
        "repro.gpu.gemm_model / repro.profiling.roofline_report",
        "tests/unit/test_roofline_report.py::TestEntries",
        _check_memory_bound_explanation,
    ),
    Claim(
        "fig3a-fp32",
        "the time to complete 500 QD steps is ... 1472 seconds at FP32",
        "§V-C / Fig. 3a",
        "repro.core.perfstudy",
        "tests/unit/test_core_perfstudy.py::TestFig3aShape",
        _check_fig3a_fp32_anchor,
    ),
    Claim(
        "fig3a-ordering",
        "the fastest simulation is for the case when BLAS precision is "
        "BF16, followed by TF32, BF16X2, BF16X3, Complex 3M, FP32, FP64",
        "Artifact A1",
        "repro.core.perfstudy",
        "tests/unit/test_core_perfstudy.py::TestFig3aShape",
        _check_mode_ordering_end_to_end,
    ),
    Claim(
        "small-system-flat",
        "In the 40 atom system, very little performance change is "
        "observed between FP32 and the runs with different BLAS compute modes",
        "§V-C / Fig. 3a",
        "repro.core.perfstudy / repro.gpu.specs",
        "tests/unit/test_core_perfstudy.py::TestFig3aShape",
        _check_small_system_insensitive,
    ),
    Claim(
        "error-size-independent",
        "the relative error of BLAS compute in BF16 to the other modes "
        "is independent of matrix size",
        "§V-A / §V-B",
        "repro.core.error_model",
        "tests/unit/test_core_error_model.py::TestEmpirical",
        _check_error_size_independent,
    ),
    Claim(
        "bf16x3-fp32-class",
        "BF16x3 accuracy is comparable to standard single-precision arithmetic",
        "§III-B",
        "repro.blas.split",
        "tests/unit/test_blas_gemm.py::TestModeSemantics",
        _check_bf16x3_comparable_to_fp32,
    ),
    Claim(
        "accuracy-ladder",
        "These three variants allow a trade-off between accuracy and "
        "performance ... BF16x3 being the most accurate; TF32 contains "
        "slightly higher precision than BF16",
        "§V-A / Table IV",
        "repro.blas.rounding / repro.blas.split",
        "tests/integration/test_full_study.py::TestPaperFindings",
        _check_accuracy_ladder,
    ),
    Claim(
        "3m-cancellation",
        "3M accuracy is comparable with standard complex arithmetic, but "
        "with different numeric cancellation behavior",
        "§III-B",
        "repro.blas.complex3m",
        "tests/unit/test_blas_complex3m.py / benchmarks/test_ablation_3m_cancellation.py",
        _check_3m_different_cancellation,
    ),
    Claim(
        "table5-capacity",
        "Largest system that can fit within the 64GB memory of a single "
        "GPU stack is a 135 atom ... supercell",
        "Table V",
        "repro.dcmesh.simulation / repro.gpu.specs",
        "tests/unit/test_simulation.py::TestDeviceBytes",
        _check_table_v_capacity,
    ),
    Claim(
        "nine-calls",
        "Each QD step contains 9 BLAS calls",
        "Artifact A3",
        "repro.core.schedule / repro.dcmesh.{nlp,energy,occupation}",
        "tests/integration/test_schedule_consistency.py",
        _check_nine_blas_calls,
    ),
    Claim(
        "table7-shapes",
        "the value of m remains constant at 128 ... value of k is 64^3 "
        "... the index n is directly based on n_orb",
        "§V-C / Table VII",
        "repro.core.blas_sweep / repro.dcmesh.occupation",
        "tests/unit/test_core_blas_sweep.py::TestShapes",
        _check_table_vii_shapes,
    ),
    Claim(
        "qxmd-fp64-immune",
        "The QXMD portion ... can only be run using FP64 precision "
        "(FLOAT_TO_* modes do not affect double-precision routines)",
        "§IV-C",
        "repro.blas.gemm / repro.dcmesh.scf",
        "tests/integration/test_fp64_storage.py",
        _check_fp64_unaffected,
    ),
    # ------------------------------------------------------------------
    # Post-paper extension claims (ROADMAP: Ozaki INT8 / emulated FP64).
    # These keep the same discipline as the paper rows: a quoted
    # statement of intent, the implementing module, a pinning test and
    # a live checker.
    # ------------------------------------------------------------------
    Claim(
        "ozaki-slice-bound",
        "OZAKI_INT8 results stay within the analytic per-slice "
        "truncation bound k*rowmax*colmax*2^(3-7s) of the FP64 reference",
        "extension / DESIGN.md",
        "repro.blas.rounding / repro.blas.split",
        "tests/property/test_prop_newmodes.py::TestOzakiAccuracy / "
        "tests/unit/test_blas_rounding.py::TestOzakiSliceTerms",
        _check_ozaki_slice_bound,
    ),
    Claim(
        "emulated-fp64-class",
        "EMULATED_FP64 delivers FP64-comparable GEMMs (and trajectories "
        "within 1e-12) from FP32-term products with compensated accumulation",
        "extension / DESIGN.md",
        "repro.blas.split / repro.blas.workspace",
        "tests/property/test_prop_newmodes.py::TestEmulatedFP64Accuracy / "
        "tests/integration/test_newmodes_trajectory.py::TestEmulatedFP64Trajectory",
        _check_emulated_fp64_class,
    ),
    Claim(
        "newmode-error-ordering",
        "The analytic error ladder orders the new rungs BF16X2 > "
        "OZAKI_INT8 > FP32 > EMULATED_FP64, and the adaptive scheduler's "
        "ladder tops out at EMULATED_FP64",
        "extension / DESIGN.md",
        "repro.core.error_model / repro.core.scheduler",
        "tests/unit/test_core_scheduler.py::TestLadder / "
        "tests/unit/test_core_error_model.py",
        _check_newmode_error_ordering,
    ),
    Claim(
        "distrib-serial-equivalence",
        "A sweep sharded across worker processes by the distributed "
        "engine merges into artifacts bitwise identical to the serial run",
        "extension / docs/DISTRIBUTED.md",
        "repro.distrib / repro.core.blas_sweep",
        "tests/integration/test_distrib_engine.py::TestSerialEquivalence / "
        "tests/unit/test_distrib_queue.py::TestResultShards",
        _check_distrib_serial_equivalence,
    ),
]


def evaluate_claims(claims: Optional[List[Claim]] = None) -> List[tuple]:
    """Run every claim's checker; rows of (id, status, source, test)."""
    rows = []
    for claim in claims or CLAIMS:
        try:
            ok = bool(claim.checker())
        except Exception:   # a crashed checker is a failed claim
            ok = False
        rows.append((claim.claim_id, "PASS" if ok else "FAIL",
                     claim.source, claim.test))
    return rows


def run(fast: bool = True, output_dir: Optional[str] = None) -> dict:
    """Experiment-registry adapter: render the traceability matrix."""
    from repro.core.report import render_table, write_csv

    rows = evaluate_claims()
    text = render_table(
        ("Claim", "Status", "Paper source", "Pinned by"),
        rows,
        title="Paper-claims traceability matrix",
    )
    details = []
    for claim in CLAIMS:
        details.append(f"[{claim.claim_id}] \"{claim.quote}\" ({claim.source})")
    text = text + "\n\n" + "\n".join(details)
    if output_dir:
        write_csv(Path(output_dir) / "claims.csv",
                  ("claim", "status", "source", "test"), rows)
    return {"rows": rows, "text": text}
