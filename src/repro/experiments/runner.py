"""``dcmesh-repro`` console entry point.

Usage::

    dcmesh-repro list                    # show experiment ids
    dcmesh-repro table6                  # run one experiment
    dcmesh-repro all --output results/   # run everything, save CSVs
    dcmesh-repro figure1 --full          # slower, larger accuracy run
    dcmesh-repro table6 --telemetry out/ # + JSONL/Chrome traces, summary
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from repro.experiments.registry import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dcmesh-repro",
        description="Reproduce the tables and figures of 'Impact of Varying "
        "BLAS Precision on DCMESH' (SC 2024).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (tableN / figureN), 'all', or 'list'",
    )
    parser.add_argument(
        "--output", "-o", default=None, metavar="DIR",
        help="directory for CSV outputs (created if missing)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run the larger (slower) variant of simulation-backed experiments",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="run up to N experiments concurrently (they are independent; "
        "each passes its compute mode explicitly, so the fan-out is safe)",
    )
    parser.add_argument(
        "--distrib", type=int, default=0, metavar="N",
        help="run the experiments through the repro.distrib work-queue "
        "engine on N local worker processes (checkpointable, "
        "work-stealing; see docs/DISTRIBUTED.md).  Unlike --jobs "
        "threads, workers are separate processes that re-enter the "
        "ambient backend/mode/telemetry environment; outputs are still "
        "printed in deterministic serial order",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="collect telemetry for the run and export a JSONL event "
        "trace, a Chrome/Perfetto trace, a text summary and a "
        "run_report.md into DIR",
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help="enable the adaptive precision scheduler ambiently "
        "(REPRO_ADAPTIVE=1 equivalent) for mode-free simulation runs: "
        "every labelled call site starts at BF16 and escalates only when "
        "the live drift approaches the error budget; mode-switch events "
        "land in the telemetry trace and run report.  Runs that pin an "
        "explicit compute mode (the paper's static tables/figures) are "
        "unaffected; the `pareto` experiment always includes an adaptive "
        "run",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="array backend executing the level-3 BLAS products for the "
        "whole invocation: 'numpy' (reference, default), 'torch' "
        "(auto-selects CUDA when available, else CPU), 'torch-cpu' or "
        "'torch-cuda'.  Equivalent to REPRO_BACKEND=NAME but strict: an "
        "unavailable backend aborts instead of degrading to numpy.  "
        "Numerics policy (rounding, splitting, pair ordering) is "
        "backend-independent; see docs/BACKENDS.md for the tolerance "
        "contracts",
    )
    parser.add_argument(
        "--drift-budget", action="store_true",
        help="monitor observable drift against the per-mode error budget "
        "during simulation-backed experiments (REPRO_DRIFT=1 equivalent); "
        "gauges/alerts land in the telemetry trace and run report",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for name, (_, desc) in sorted(EXPERIMENTS.items()):
            print(f"{name:<{width}}  {desc}")
        return 0
    if args.experiment == "all":
        # "report" already runs everything; keep "all" to the artifacts.
        names = sorted(n for n in EXPERIMENTS if n != "report")
    else:
        names = [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"valid ids: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2

    if args.backend is not None:
        # Strict selection: a CLI request for an unavailable backend is
        # an error the user wants to hear about, unlike the ambient
        # REPRO_BACKEND env which degrades to numpy with a warning.
        from repro.blas.backend import BackendUnavailable, get_backend, use_backend

        try:
            backend_scope = use_backend(get_backend(args.backend))
        except (BackendUnavailable, ValueError) as exc:
            print(f"--backend {args.backend}: {exc}", file=sys.stderr)
            return 2
    else:
        backend_scope = contextlib.nullcontext()

    if args.telemetry is not None:
        # One collector spans every requested experiment; the traces
        # and the summary table land in the directory on exit.  The
        # collector is thread-safe, so --jobs fan-out is covered too.
        from repro.telemetry import telemetry as telemetry_scope

        scope = telemetry_scope(out_dir=args.telemetry)
    else:
        scope = contextlib.nullcontext()

    if args.drift_budget:
        # Ambient enablement: Simulation.run sees no installed monitor
        # and auto-creates one per run (budget from the first SCF
        # block's ||H_nl||), exactly as REPRO_DRIFT=1 would.
        from repro.telemetry.drift import set_drift_enabled

        set_drift_enabled(True)

    if args.adaptive:
        # Ambient enablement mirroring --drift-budget: Simulation.run
        # auto-creates a default AdaptiveScheduler (and the drift
        # monitor it feeds on) per run, as REPRO_ADAPTIVE=1 would.
        from repro.core.scheduler import set_adaptive_enabled

        set_adaptive_enabled(True)

    with backend_scope, scope:
        if args.distrib > 0:
            # Work-queue fan-out over worker *processes*: the driver
            # captures the ambient backend/mode/telemetry environment
            # into the queue manifest and every worker re-enters it
            # (the process analogue of the --jobs thread pool).  Cell
            # results merge back here — including per-cell telemetry,
            # so one run_report.md covers the whole pool — and are
            # printed in the deterministic serial order.
            from repro.distrib import SweepSpec, submit

            spec = SweepSpec(
                kind="experiment",
                experiments=tuple(names),
                params={"fast": not args.full, "output_dir": args.output},
            )
            merged = submit(spec, n_workers=args.distrib).result()
            by_name = {
                payload["experiment"]: payload["text"]
                for payload in merged.cells.values()
            }
            for name in names:
                print(by_name[name])
                print()
        elif args.jobs > 1 and len(names) > 1:
            # Independent artifacts fan out over a thread pool (NumPy
            # releases the GIL in the GEMMs); outputs are printed in the
            # deterministic serial order regardless of completion order.
            # Backend selection is thread-scoped, so capture the ambient
            # backend here and re-enter it in each worker — otherwise
            # --backend would silently not apply to pooled experiments.
            from concurrent.futures import ThreadPoolExecutor

            from repro.blas.backend import active_backend
            from repro.blas.backend import use_backend as _use_backend

            ambient = active_backend()

            def run_in_worker(name):
                with _use_backend(ambient):
                    return run_experiment(name, fast=not args.full, output_dir=args.output)

            with ThreadPoolExecutor(max_workers=min(args.jobs, len(names))) as pool:
                futures = [pool.submit(run_in_worker, name) for name in names]
                for future in futures:
                    print(future.result()["text"])
                    print()
        else:
            for name in names:
                result = run_experiment(name, fast=not args.full, output_dir=args.output)
                print(result["text"])
                print()
    if args.drift_budget:
        from repro.telemetry.drift import set_drift_enabled

        set_drift_enabled(None)
    if args.adaptive:
        from repro.core.scheduler import set_adaptive_enabled

        set_adaptive_enabled(None)
    if args.telemetry is not None:
        print(f"telemetry exported to {args.telemetry}/ "
              "(trace.jsonl, trace.chrome.json, summary.txt, run_report.md)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
