"""Table VII — m, n, k of the remap_occ GEMM at increasing N_orb.

"The value of m remains constant at 128 ... value of k is 64^3, which
is the size of the mesh grid for a 40 atom system.  The index n is
directly based on n_orb."
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.core.blas_sweep import BlasSweep
from repro.core.report import render_table, write_csv

#: Rows as printed in the paper (n deviates from N_orb - 128 in the
#: last row — 3978 vs our 3968; the paper's own quirk).
PAPER_ROWS = [
    (40, 256, 128, 128, 262144),
    (40, 1024, 128, 896, 262144),
    (40, 2048, 128, 1920, 262144),
    (40, 4096, 128, 3978, 262144),
]

HEADERS = ("Number of Atoms", "N_orb", "m", "n", "k")


def run(fast: bool = True, output_dir: Optional[str] = None) -> dict:
    """Regenerate Table VII from the remap_occ shape derivation."""
    sweep = BlasSweep()
    rows = [(40, n_orb, m, n, k) for n_orb, m, n, k in sweep.table7()]
    text = render_table(HEADERS, rows, title="Table VII: remap_occ GEMM shapes")
    if output_dir:
        write_csv(Path(output_dir) / "table7.csv", HEADERS, rows)
    return {"rows": rows, "paper_rows": PAPER_ROWS, "text": text}


if __name__ == "__main__":
    print(run()["text"])
