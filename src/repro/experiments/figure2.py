"""Figure 2 — log10 deviation of the current density from FP32.

Same runs as Figure 1, different transform: "a logarithmic scale of
the deviation from FP32 for the different precision modes for current
density.  Over the course of the simulation, BF16, TF32, and BF16X3
track closely with one another and do not show any signs of
divergence."
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional


from repro.core.report import render_table, write_csv
from repro.core.study import PAPER_STUDY_MODES, PrecisionStudy
from repro.experiments.figure1 import study_config

HEADERS = ("Mode", "Mean log10|dev(javg)|", "Final log10|dev|", "Trend (late-early)")


def run(fast: bool = True, output_dir: Optional[str] = None) -> dict:
    """Run the study; report log-scale javg deviations per mode."""
    study = PrecisionStudy(
        study_config(fast), modes=PAPER_STUDY_MODES, observables=("javg",)
    )
    result = study.run()
    rows = []
    series_out = {}
    for s in result.deviations["javg"]:
        logs = s.log10(floor=1e-30)
        # Skip the t=0 sample (deviation is identically zero there).
        body = logs[1:]
        half = len(body) // 2
        trend = float(body[half:].mean() - body[:half].mean())
        rows.append(
            (s.mode.env_value, float(body.mean()), float(body[-1]), trend)
        )
        series_out[s.mode.env_value] = logs
    text = render_table(
        HEADERS, rows, title="Figure 2: log10 deviation of current density from FP32"
    )
    from repro.core.plots import plot_deviation_series

    text = text + "\n\n" + plot_deviation_series(result.deviations, "javg", logy=True)
    if output_dir:
        out = Path(output_dir)
        write_csv(out / "figure2_summary.csv", HEADERS, rows)
        s0 = result.deviations["javg"][0]
        hdr = ["time_fs"] + list(series_out)
        cols = list(zip(s0.time_fs, *series_out.values()))
        write_csv(out / "figure2_javg_log10.csv", hdr, cols)
    return {"rows": rows, "study": result, "text": text}


if __name__ == "__main__":
    print(run()["text"])
