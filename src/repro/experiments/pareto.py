"""Accuracy-vs-time Pareto frontier: adaptive scheduler vs static modes.

The paper's Figs. 1 and 3a present accuracy and speed *separately*,
one static ``MKL_BLAS_COMPUTE_MODE`` per run.  This experiment puts
both axes on one chart and adds the closed-loop adaptive run (ROADMAP
item 2): every static mode is a point at (time, final observable
error), and the :class:`~repro.core.scheduler.AdaptiveScheduler`
contributes one more point that should sit on or push the frontier —
faster than the static modes of comparable accuracy.

Two time axes are reported, because this harness *emulates* the
reduced-precision arithmetic in software (splitting costs extra wall
time here) while the paper's hardware accelerates it:

* measured wall-clock of the emulated run (honest about this harness),
* modeled device time from the :mod:`repro.gpu` roofline (maps each
  run's per-site mode mix onto the paper's Max 1550 numbers — the
  axis on which the BF16 family is *faster* than FP32).

Every run is judged against the same fixed accuracy contract: the
scheduler's ``budget_mode`` envelope (BF16X2-grade by default), so
"within budget" means the same thing for every point on the chart.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blas.modes import ComputeMode
from repro.core.report import render_table, write_csv
from repro.core.scheduler import AdaptiveScheduler
from repro.core.study import STUDY_MODES
from repro.dcmesh.simulation import Simulation, SimulationConfig
from repro.gpu import Device
from repro.telemetry.drift import DriftMonitor, ErrorBudget, ReferenceTrajectory

HEADERS = (
    "Run",
    "Wall (s)",
    "Model BLAS (s)",
    "Model total (s)",
    "Final rel err",
    "Final util",
    "Breaches",
    "In budget",
)

#: Observables entering the "final observable error" (max over them).
OBSERVABLES = ("nexc", "javg", "ekin")


def study_config(fast: bool = True) -> SimulationConfig:
    """Same scaling substitution as figure1 (see DESIGN.md)."""
    from repro.experiments.figure1 import study_config as fig1_config

    return fig1_config(fast)


def _final_rel_error(result, reference) -> float:
    """Max over observables of the final-step relative deviation."""
    worst = 0.0
    for obs in OBSERVABLES:
        ref = reference.column(obs)[-1]
        got = result.column(obs)[-1]
        denom = max(abs(float(ref)), np.finfo(np.float64).tiny)
        worst = max(worst, abs(float(got) - float(ref)) / denom)
    return worst


def _timed_run(sim: Simulation, **kwargs):
    """Run with a fresh device model so modeled seconds don't mix runs."""
    sim.device = Device()
    sim._device_allocated = False
    return sim.run(**kwargs)


def _monitor_stats(dm: DriftMonitor) -> Tuple[float, int]:
    """(final-step utilization, breach count).

    The contract is judged at the *end* of the run: early-step
    utilization is ill-conditioned (nexc starts near zero, so a tiny
    absolute wobble is a huge relative one against a tiny envelope)
    and every mode — including BF16X3 — spikes there.  What the fixed
    budget promises is where the trajectory *ends up*.
    """
    final = dm.current_utilization()
    if final is None or not np.isfinite(final):
        final = 0.0
    return (float(final), len(dm.breaches()))


def pareto_scatter(
    points: Dict[str, Tuple[float, float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    xlabel: str = "time (s)",
) -> str:
    """ASCII scatter of label -> (time, error), log10 error axis.

    :func:`repro.core.plots.ascii_plot` draws series over a shared x
    grid; a Pareto chart is a handful of isolated points, so this tiny
    renderer places one marker per run instead.
    """
    if not points:
        return "(no points)"
    xs = [p[0] for p in points.values()]
    ys = [np.log10(max(p[1], 1e-30)) for p in points.values()]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@%&"
    legend = []
    for i, (label, (x, y_raw)) in enumerate(points.items()):
        y = np.log10(max(y_raw, 1e-30))
        col = int(round((x - x_lo) / x_span * (width - 1)))
        row = int(round((y_hi - y) / y_span * (height - 1)))
        mark = markers[i % len(markers)]
        grid[row][col] = mark
        legend.append(f"  {mark} {label}  ({x:.3g} s, {y_raw:.3g})")
    lines = []
    if title:
        lines.append(title)
    lines.append(f"log10(final rel err)  [{y_hi:.1f} .. {y_lo:.1f} top-to-bottom]")
    lines.extend("|" + "".join(r) for r in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel}: {x_lo:.3g} .. {x_hi:.3g}")
    lines.extend(legend)
    return "\n".join(lines)


def _switch_timeline(summary: dict) -> List[str]:
    lines = ["Adaptive mode-switch timeline:"]
    if not summary["switches"]:
        lines.append("  (no switches — run stayed at the start mode)")
    for sw in summary["switches"]:
        util = sw["utilization"]
        util_s = "-" if util is None else f"{util:.3g}"
        lines.append(
            f"  step {sw['step']:>5}  {sw['site']:<12} "
            f"{sw['from']:>16} -> {sw['to']:<16} [{sw['reason']}, util={util_s}]"
        )
    return lines


def run(
    fast: bool = True,
    output_dir: Optional[str] = None,
    modes: Sequence[ComputeMode] = STUDY_MODES,
) -> dict:
    """Run reference + five static modes + adaptive; chart the frontier."""
    cfg = study_config(fast)
    sim = Simulation(cfg)
    ground = sim.setup()

    # The fixed accuracy contract every run is judged against: the
    # scheduler's default budget_mode envelope, derived from the same
    # ||H_nl|| the driver would use.
    sched = AdaptiveScheduler()
    h_nl = sim._solver.projectors.subspace_matrix(
        ground.orbitals.psi.astype(np.complex128)
    )
    contract = ErrorBudget.for_mode(
        sched.budget_mode,
        cfg.dt,
        float(np.linalg.norm(h_nl)),
        headroom=sched.config.budget_headroom,
    )

    reference = _timed_run(sim, mode=ComputeMode.STANDARD, drift=False)
    ref_traj = ReferenceTrajectory.from_result(reference)

    rows: List[tuple] = []
    wall_points: Dict[str, Tuple[float, float]] = {}
    model_points: Dict[str, Tuple[float, float]] = {}

    def book(label, result, dm, breaches_unhandled=0):
        err = _final_rel_error(result, reference)
        final_util, breaches = _monitor_stats(dm)
        in_budget = final_util <= 1.0 and breaches_unhandled == 0
        model_total = result.total_device_seconds or 0.0
        model_blas = result.device.timeline.time_by_kind().get("blas", 0.0)
        rows.append(
            (label, result.wall_seconds, model_blas, model_total, err,
             final_util, breaches, "yes" if in_budget else "NO")
        )
        wall_points[label] = (result.wall_seconds, max(err, 1e-12))
        model_points[label] = (model_blas, max(err, 1e-12))

    for mode in modes:
        dm = DriftMonitor(mode=mode, budget=contract, reference=ref_traj)
        result = _timed_run(sim, mode=mode, drift=dm)
        book(mode.env_value, result, dm)

    dm = DriftMonitor(budget=contract, reference=ref_traj)
    adaptive = _timed_run(sim, adaptive=sched, drift=dm)
    summary = sched.summary()
    book("ADAPTIVE", adaptive, dm, breaches_unhandled=summary["unhandled_breaches"])

    text_parts = [
        render_table(
            HEADERS, rows,
            title="Pareto: accuracy vs time, static modes vs adaptive "
            f"(contract: {sched.budget_mode.env_value} envelope, "
            f"headroom {sched.config.budget_headroom:g})",
        ),
        pareto_scatter(
            wall_points,
            title="Pareto frontier — measured wall-clock (software emulation)",
        ),
        pareto_scatter(
            model_points,
            title="Pareto frontier — modeled BLAS device time (Max 1550 roofline)",
            xlabel="modeled BLAS time (s)",
        ),
        "\n".join(_switch_timeline(summary)),
    ]
    text = "\n\n".join(text_parts)

    if output_dir:
        out = Path(output_dir)
        write_csv(out / "pareto.csv", HEADERS, rows)
        (out / "pareto_figure.txt").write_text(text + "\n")
    return {
        "rows": rows,
        "scheduler": summary,
        "reference_wall": reference.wall_seconds,
        "text": text,
    }


if __name__ == "__main__":
    print(run()["text"])
