"""Table II — available BLAS compute modes and peak theoretical speedups."""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.core.report import render_table, write_csv
from repro.core.theoretical import table2_rows

#: Paper values (speedups relative to FP32).
PAPER_ROWS = [
    ("FLOAT_TO_BF16", 16.0),
    ("FLOAT_TO_BF16X2", 16.0 / 3.0),
    ("FLOAT_TO_BF16X3", 8.0 / 3.0),
    ("FLOAT_TO_TF32", 8.0),
    ("COMPLEX_3M", 4.0 / 3.0),
]

HEADERS = ("Compute Mode", "Environment Variable", "Peak Theoretical Speedup")


def run(fast: bool = True, output_dir: Optional[str] = None) -> dict:
    """Regenerate Table II from the mode definitions + device spec."""
    rows = table2_rows()
    text = render_table(HEADERS, rows, title="Table II: available BLAS compute modes")
    if output_dir:
        write_csv(Path(output_dir) / "table2.csv", HEADERS, rows)
    return {"rows": rows, "paper_rows": PAPER_ROWS, "text": text}


if __name__ == "__main__":
    print(run()["text"])
