"""Table II — available BLAS compute modes and peak theoretical speedups."""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.core.report import render_table, write_csv
from repro.core.theoretical import table2_extended_rows, table2_rows

#: Paper values (speedups relative to FP32).
PAPER_ROWS = [
    ("FLOAT_TO_BF16", 16.0),
    ("FLOAT_TO_BF16X2", 16.0 / 3.0),
    ("FLOAT_TO_BF16X3", 8.0 / 3.0),
    ("FLOAT_TO_TF32", 8.0),
    ("COMPLEX_3M", 4.0 / 3.0),
]

HEADERS = ("Compute Mode", "Environment Variable", "Peak Theoretical Speedup")


def run(fast: bool = True, output_dir: Optional[str] = None) -> dict:
    """Regenerate Table II from the mode definitions + device spec.

    The paper's five rows stay byte-stable under ``rows``; the
    post-paper split modes (Ozaki INT8 vs FP32, emulated FP64 vs native
    FP64) are appended as a separate section so pinning tests keep
    their anchor.
    """
    rows = table2_rows()
    extended = table2_extended_rows()
    text = "\n\n".join(
        [
            render_table(HEADERS, rows, title="Table II: available BLAS compute modes"),
            render_table(
                HEADERS,
                extended,
                title="Table II (extended): post-paper split modes "
                "(EMULATED_FP64 quoted vs native FP64)",
            ),
        ]
    )
    if output_dir:
        write_csv(Path(output_dir) / "table2.csv", HEADERS, rows)
        write_csv(Path(output_dir) / "table2_extended.csv", HEADERS, extended)
    return {
        "rows": rows,
        "extended_rows": extended,
        "paper_rows": PAPER_ROWS,
        "text": text,
    }


if __name__ == "__main__":
    print(run()["text"])
