"""Table III — key simulation parameters (from the input files)."""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.core.report import render_table, write_csv
from repro.core.theoretical import table3_rows
from repro.dcmesh.simulation import SimulationConfig

PAPER_ROWS = [
    ("Timestep (a.u.)", 0.02),
    ("Total Number of QD Steps", 21_000),
    ("Total Simulation Time (fs)", 10.0),
]

HEADERS = ("Simulation Variable", "Value")


def run(fast: bool = True, output_dir: Optional[str] = None) -> dict:
    """Regenerate Table III, cross-checked against the 135-atom config."""
    rows = table3_rows()
    cfg = SimulationConfig.paper_135()
    derived = [
        ("Timestep (a.u.)", cfg.dt),
        ("Total Number of QD Steps", cfg.n_qd_steps),
        # 21 000 x 0.02 a.u. = 10.16 fs; the paper quotes the nominal 10.
        ("Total Simulation Time (fs)", float(round(cfg.total_time_fs))),
    ]
    text = render_table(HEADERS, rows, title="Table III: key simulation parameters")
    if output_dir:
        write_csv(Path(output_dir) / "table3.csv", HEADERS, rows)
    return {"rows": rows, "derived_from_config": derived, "paper_rows": PAPER_ROWS, "text": text}


if __name__ == "__main__":
    print(run()["text"])
