"""Experiment drivers: one module per table/figure of the paper.

Every experiment exposes ``run(fast=True, output_dir=None) -> dict``
returning the regenerated rows/series plus a rendered text block, and
is registered under its paper id (``table1`` ... ``table7``,
``figure1``, ``figure2``, ``figure3a``, ``figure3b``) in
:mod:`repro.experiments.registry`.  The ``dcmesh-repro`` console
script (``repro.experiments.runner``) runs them by id::

    dcmesh-repro figure3a
    dcmesh-repro all --output results/
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]
