"""Experiment registry: paper artifact id -> runnable module."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.experiments import (
    claims,
    figure1,
    figure2,
    figure3a,
    figure3b,
    pareto,
    report,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

#: id -> (run callable, one-line description).
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (table1.run, "Theoretical peak throughput per precision (Table I)"),
    "table2": (table2.run, "Available BLAS compute modes (Table II)"),
    "table3": (table3.run, "Key simulation parameters (Table III)"),
    "table4": (table4.run, "Precision format exponent/mantissa bits (Table IV)"),
    "table5": (table5.run, "System sizes and HBM capacity (Table V)"),
    "table6": (table6.run, "Max observed vs theoretical BLAS speedup (Table VI)"),
    "table7": (table7.run, "remap_occ GEMM shapes vs N_orb (Table VII)"),
    "figure1": (figure1.run, "Deviation from FP32 of nexc/javg/ekin (Fig. 1)"),
    "figure2": (figure2.run, "log10 current-density deviation (Fig. 2)"),
    "figure3a": (figure3a.run, "Time for 500 QD steps per config (Fig. 3a)"),
    "figure3b": (figure3b.run, "BLAS speedup vs N_orb (Fig. 3b)"),
    "pareto": (
        pareto.run,
        "Accuracy-vs-time Pareto: adaptive scheduler vs static modes",
    ),
    "report": (report.run, "All artifacts + anchor checks -> REPORT.md"),
    "claims": (claims.run, "Paper-claims traceability matrix (live checks)"),
}


def get_experiment(name: str) -> Callable:
    """Look up an experiment's run callable by id."""
    try:
        return EXPERIMENTS[name][0]
    except KeyError:
        valid = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; valid ids: {valid}") from None


def run_experiment(name: str, fast: bool = True, output_dir: Optional[str] = None) -> dict:
    """Run one experiment by id."""
    return get_experiment(name)(fast=fast, output_dir=output_dir)
