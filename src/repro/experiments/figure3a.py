"""Figure 3a — time to complete 500 QD steps, both systems, 7 configs.

Paper anchors for the 135-atom system: "over 2800 seconds at FP64
precision, 1472 seconds at FP32, and 972 seconds when using the BF16
compute mode" — a 1.35x-1.5x end-to-end BF16 speedup — while the
40-atom system shows "very little performance change" between FP32 and
the alternative modes, with only FP64 vs FP32 differing significantly.

Evaluated on the calibrated device model over the analytic QD-step
schedule (paper-size arrays never materialise).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.core.perfstudy import PerfStudy
from repro.core.report import render_table, write_csv

PAPER_ANCHORS_135 = {"FP64": 2800.0, "FP32": 1472.0, "BF16": 972.0}

HEADERS = ("System", "Config", "500-step time (s)", "Speedup vs FP32", "BLAS fraction")


def run(fast: bool = True, output_dir: Optional[str] = None) -> dict:
    """Regenerate Fig. 3a on the device model."""
    study = PerfStudy()
    fig = study.figure_3a()
    rows = []
    for system, timings in fig.items():
        speedups = study.speedup_over_fp32(timings)
        for t in timings:
            rows.append(
                (
                    system,
                    t.label,
                    t.block_seconds(500),
                    speedups[t.label],
                    t.blas_fraction,
                )
            )
    text = render_table(HEADERS, rows, title="Figure 3a: time for 500 QD steps")
    if output_dir:
        write_csv(Path(output_dir) / "figure3a.csv", HEADERS, rows)
    return {"rows": rows, "figure": fig, "paper_anchors_135": PAPER_ANCHORS_135, "text": text}


if __name__ == "__main__":
    print(run()["text"])
