"""Table I — theoretical peak throughput for a single Max 1550 stack."""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.core.report import render_table, write_csv
from repro.core.theoretical import table1_rows

#: The values printed in the paper, for EXPERIMENTS.md comparison.
PAPER_ROWS = [
    ("FP64", 26.0, "TFLOP/s", "Vector"),
    ("FP32", 26.0, "TFLOP/s", "Vector"),
    ("TF32", 209.0, "TFLOP/s", "Matrix"),
    ("BF16", 419.0, "TFLOP/s", "Matrix"),
    ("FP16", 419.0, "TFLOP/s", "Matrix"),
    ("INT8", 839.0, "TOP/s", "Matrix"),
]

HEADERS = ("Precision", "Theoretical Peak", "Unit", "Engines")


def run(fast: bool = True, output_dir: Optional[str] = None) -> dict:
    """Regenerate Table I from the device spec."""
    rows = table1_rows()
    text = render_table(HEADERS, rows, title="Table I: theoretical peak per stack")
    if output_dir:
        write_csv(Path(output_dir) / "table1.csv", HEADERS, rows)
    return {"rows": rows, "paper_rows": PAPER_ROWS, "text": text}


if __name__ == "__main__":
    print(run()["text"])
