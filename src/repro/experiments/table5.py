"""Table V — system sizes studied, plus the 64 GB capacity claim.

"Largest system that can fit within the 64GB memory of a single GPU
stack is a 135 atom lead titanate supercell of mesh grid 96x96x96 and
1024 electronic orbitals."  We regenerate the size table from the
material builder and *check the claim* against the device memory model
(the 135-atom system fits; the next supercell up does not).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.core.report import render_table, write_csv
from repro.dcmesh.simulation import SimulationConfig, estimate_device_bytes
from repro.gpu.specs import MAX_1550_STACK

PAPER_ROWS = [(40, "64x64x64", 256), (135, "96x96x96", 1024)]

HEADERS = ("Number of Atoms", "Mesh Grid Size", "N_orb", "Device bytes", "Fits 64 GB")


def _row(cfg: SimulationConfig):
    need = estimate_device_bytes(cfg)
    return (
        cfg.n_atoms,
        "x".join(str(s) for s in cfg.mesh_shape),
        cfg.n_orb,
        need,
        MAX_1550_STACK.fits_in_memory(need),
    )


def run(fast: bool = True, output_dir: Optional[str] = None) -> dict:
    """Regenerate Table V and verify the capacity boundary."""
    cfg40 = SimulationConfig.paper_40()
    cfg135 = SimulationConfig.paper_135()
    # The next size up: a 4x4x4 supercell (320 atoms, 128^3, 2048 orb).
    cfg_next = SimulationConfig(
        ncells=(4, 4, 4), mesh_shape=(128, 128, 128), n_orb=2048
    )
    rows = [_row(cfg40), _row(cfg135), _row(cfg_next)]
    text = render_table(HEADERS, rows, title="Table V: system sizes and HBM capacity")
    if output_dir:
        write_csv(Path(output_dir) / "table5.csv", HEADERS, rows)
    return {"rows": rows, "paper_rows": PAPER_ROWS, "text": text}


if __name__ == "__main__":
    print(run()["text"])
