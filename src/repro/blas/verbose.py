"""``MKL_VERBOSE``-style per-call BLAS logging.

The paper's Artifact A3 extracts every Table VI / VII / Fig. 3b number
from ``MKL_VERBOSE=2`` output: one line per BLAS call carrying the
routine name, matrix dimensions and synchronous timing.  We reproduce
the mechanism: when verbosity is enabled (environment variable
``MKL_VERBOSE`` or the :func:`mkl_verbose` context manager), every GEMM
appends a :class:`VerboseRecord` to a thread-local log and can render
it in an MKL-look-alike text form.

Records carry *two* timings: ``seconds`` (wall-clock of the emulation
itself, only meaningful for relative software cost) and
``model_seconds`` (the Intel Max 1550 device-model prediction, the
number the reproduction actually reports — see
:mod:`repro.gpu.gemm_model`).

Since the telemetry subsystem landed, this log is one *consumer* of a
unified per-call event stream: the GEMM entry points emit each
:class:`VerboseRecord` once through :func:`emit_call`, which feeds the
thread-local verbose log (when ``MKL_VERBOSE`` is on) and the installed
:class:`repro.telemetry.Telemetry` collector (when telemetry is on).
The MKL-look-alike line format and its parser
(:func:`repro.profiling.mklverbose.parse_verbose_line`) are unchanged.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
from typing import Iterator, List, Optional

from repro.blas.modes import ComputeMode
from repro.telemetry.registry import active as _telemetry_active

__all__ = [
    "VerboseRecord",
    "mkl_verbose",
    "verbose_enabled",
    "observing",
    "get_verbose_log",
    "clear_verbose_log",
    "record_call",
    "emit_call",
    "format_verbose_line",
]

MKL_VERBOSE_ENV = "MKL_VERBOSE"

_state = threading.local()


@dataclasses.dataclass(frozen=True)
class VerboseRecord:
    """One BLAS call as MKL_VERBOSE would report it."""

    routine: str          #: e.g. ``"cgemm"``
    trans_a: str          #: 'N', 'T' or 'C'
    trans_b: str
    m: int
    n: int
    k: int
    mode: ComputeMode     #: effective compute mode of the call
    seconds: float        #: wall-clock time of the software emulation
    model_seconds: Optional[float] = None  #: device-model predicted time
    site: str = ""        #: application call site (nlp_prop / calc_energy / remap_occ)
    batch: int = 1        #: > 1 for gemm_batch calls
    site_id: str = ""     #: stable provenance ID (repro.telemetry.provenance)
    backend: str = "numpy"  #: executing array backend (ArrayBackend.cache_key)

    @property
    def flops(self) -> float:
        """Nominal FLOP count of the logical GEMM (complex counts 4M)."""
        mults = 8.0 if self.routine.startswith(("c", "z")) else 2.0
        return mults * self.m * self.n * self.k * self.batch

    @property
    def reported_seconds(self) -> float:
        """Timing the study uses: model time if available, else wall."""
        return self.model_seconds if self.model_seconds is not None else self.seconds


def verbose_enabled() -> bool:
    """Whether calls are currently being logged."""
    depth = getattr(_state, "depth", 0)
    if depth > 0:
        return True
    raw = os.environ.get(MKL_VERBOSE_ENV, "")
    return raw.strip() not in ("", "0")


def _log() -> List[VerboseRecord]:
    log = getattr(_state, "log", None)
    if log is None:
        log = _state.log = []
    return log


def get_verbose_log() -> List[VerboseRecord]:
    """The thread-local list of records accumulated so far."""
    return _log()


def clear_verbose_log() -> None:
    """Drop all accumulated records for this thread."""
    _log().clear()


def observing() -> bool:
    """Whether any consumer (verbose log, telemetry) wants call records.

    The GEMM entry points use this as the single guard around building
    a :class:`VerboseRecord`; with both consumers off the per-call cost
    is two cheap checks and no allocation.
    """
    return _telemetry_active() is not None or verbose_enabled()


def emit_call(record: VerboseRecord) -> None:
    """Publish one BLAS call record to every active consumer.

    This is the unified per-call event stream: the thread-local verbose
    log (MKL_VERBOSE look-alike) and the telemetry registry both
    receive the *same* record object, so the two views can never
    disagree about what ran.
    """
    if verbose_enabled():
        _log().append(record)
    collector = _telemetry_active()
    if collector is not None:
        collector.blas_call(record)


def record_call(record: VerboseRecord) -> None:
    """Historical alias for :func:`emit_call`."""
    emit_call(record)


@contextlib.contextmanager
def mkl_verbose(clear: bool = True) -> Iterator[List[VerboseRecord]]:
    """Enable per-call logging for a scope and yield the live log.

    >>> with mkl_verbose() as log:
    ...     cgemm(A, B)
    >>> log[0].routine, log[0].m
    """
    if clear:
        clear_verbose_log()
    _state.depth = getattr(_state, "depth", 0) + 1
    try:
        yield _log()
    finally:
        _state.depth -= 1


def format_verbose_line(rec: VerboseRecord) -> str:
    """Render a record in an ``MKL_VERBOSE``-look-alike single line."""
    t = rec.reported_seconds
    if t >= 1.0:
        timing = f"{t:.6f}s"
    elif t >= 1e-3:
        timing = f"{t * 1e3:.3f}ms"
    else:
        timing = f"{t * 1e6:.2f}us"
    mode = "" if rec.mode is ComputeMode.STANDARD else f" mode:{rec.mode.env_value}"
    site = f" site:{rec.site}" if rec.site else ""
    batch = f" batch:{rec.batch}" if rec.batch > 1 else ""
    # The default (numpy) backend is silent so the MKL look-alike line
    # format stays bit-for-bit what the pre-backend parser expects.
    backend = f" backend:{rec.backend}" if rec.backend not in ("", "numpy") else ""
    name = rec.routine.upper() + ("_BATCH" if rec.batch > 1 else "")
    return (
        f"MKL_VERBOSE {name}"
        f"({rec.trans_a},{rec.trans_b},{rec.m},{rec.n},{rec.k}) "
        f"{timing}{mode}{site}{batch}{backend}"
    )
