"""Pluggable array backends under the BLAS plan engine.

The split/3M/plan machinery is *numerics policy*: which reduced-precision
terms to form, which component products to run, in which order to
accumulate.  None of that cares where the O(n^3) work executes.  This
module is the seam between the two: every hot-path array operation the
compute kernels issue (allocate, cast, matmul, batched matmul, gather,
accumulate, reduce) goes through an :class:`ArrayBackend`, so the same
precision policy can ride ``np.matmul`` today and a tensor-core GEMM
tomorrow — the "automatic BLAS offloading" direction of the TACC pilot
study, with NumPy as the always-on reference.

Two implementations ship:

* :class:`NumpyBackend` — the reference.  Every method is *exactly* the
  NumPy call the pre-backend code ran, so routing through it is bitwise
  invisible (the golden property suite is the oracle).  Its
  ``native_is_numpy`` capability short-circuits all conversion hooks.
* ``TorchBackend`` (:mod:`repro.blas.backend_torch`) — offloads the
  level-3 products to ``torch.matmul``; CPU everywhere, CUDA
  auto-detected.  Registered lazily so importing :mod:`repro.blas`
  never imports torch.

Selection contract (see docs/BACKENDS.md):

* ``REPRO_BACKEND=numpy|torch|torch-cpu|torch-cuda`` — read once at
  import (and on :func:`refresh_from_env`); an unavailable backend
  degrades to NumPy with a warning rather than breaking the run.
* ``set_backend(name)`` / ``use_backend(name)`` — explicit selection;
  unavailable backends raise :class:`BackendUnavailable` with the
  reason (e.g. "torch is not installed").
* ``runner --backend`` / ``Simulation.run(backend=...)`` — thin
  wrappers over the two above.

Thread scoping: ``set_backend`` (and the env var) install the
**process-wide default**, visible to every thread; ``use_backend``
installs a **thread-local override** and restores it on exit, so
concurrent scoped selections in different threads can never interleave
or restore each other's state.  Code that fans work out to a thread
pool from inside a ``use_backend`` scope must capture
:func:`active_backend` at submission and re-enter it in the worker
(``blas_sweep.parallel_mode_sweep`` and ``runner --jobs`` do).

Hot-path contract: the default path costs one :func:`active_backend`
call per GEMM (a thread-local attribute probe falling back to one
module read); every kernel captures the backend once and passes it
down, so no per-operation lookups happen inside the fused engine.
Caches that hold backend-owned buffers (the workspace pool, the plan
layer's native mirrors) key by :attr:`ArrayBackend.cache_key`, so
switching backends mid-process can never hand one backend's arrays
to another.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
import warnings
from typing import Callable, Dict, Iterator, Optional, Union

import numpy as np

__all__ = [
    "ArrayBackend",
    "BackendCapabilities",
    "BackendUnavailable",
    "NumpyBackend",
    "NUMPY_BACKEND",
    "REPRO_BACKEND_ENV",
    "active_backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "refresh_from_env",
    "set_backend",
    "use_backend",
]

REPRO_BACKEND_ENV = "REPRO_BACKEND"


class BackendUnavailable(RuntimeError):
    """Requested backend cannot run here (missing package / no device)."""


@dataclasses.dataclass(frozen=True)
class BackendCapabilities:
    """What a backend guarantees about its arithmetic and its arrays.

    ieee_fp32_accumulation:
        FP32 GEMMs multiply and accumulate in IEEE FP32 — no hidden
        TF32 downcast, no block-FP tricks.  This is the property the
        split emulation's exactness argument needs (BF16 x BF16 and
        TF32 x TF32 products are exact in FP32); backends without it
        only satisfy the documented tolerance contracts in
        docs/BACKENDS.md.
    bitwise_numpy:
        Results are guaranteed bit-identical to :class:`NumpyBackend`
        for every operation (same kernels, same accumulation order).
        Only NumPy-native backends can promise this; the cross-backend
        oracle suite asserts it where claimed.
    device:
        Where the level-3 work runs: ``"cpu"`` or ``"cuda"``.
    native_is_numpy:
        Native arrays *are* ``numpy.ndarray``; all to/from-native hooks
        are identities and the plan layer skips native mirroring.
    """

    ieee_fp32_accumulation: bool
    bitwise_numpy: bool
    device: str
    native_is_numpy: bool


class ArrayBackend:
    """Executor interface for the hot-path array operations.

    Kernels hold *native* arrays (whatever the backend computes on)
    between operations and convert at the seam: ``to_native`` on entry
    (cached per backend by the plan layer for frozen operands),
    ``to_numpy`` on the final result.  For :class:`NumpyBackend` every
    hook is the identity and every op is the literal NumPy call the
    pre-backend code ran.
    """

    name: str = "abstract"
    capabilities: BackendCapabilities

    @property
    def cache_key(self) -> str:
        """Key under which caches segregate this backend's buffers.

        Distinct per (backend, device): a ``torch-cuda`` buffer must
        never be handed to a ``torch-cpu`` consumer either.
        """
        return self.name

    # -- conversion seam ----------------------------------------------

    def to_native(self, x: np.ndarray):
        """Adopt a (C-contiguous) ndarray into the backend's array type."""
        raise NotImplementedError

    def to_numpy(self, x) -> np.ndarray:
        """Materialise a native array back into an ndarray."""
        raise NotImplementedError

    # -- allocation / dtype -------------------------------------------

    def empty(self, shape, dtype) -> object:
        """Uninitialised native array (workspace buffers)."""
        raise NotImplementedError

    def cast(self, x, dtype):
        """``x`` as ``dtype`` without copying when already right."""
        raise NotImplementedError

    def nbytes(self, x) -> int:
        """Byte size of a native array (batching heuristics)."""
        raise NotImplementedError

    def result_dtype(self, a, b) -> np.dtype:
        """NumPy result dtype of combining two native arrays."""
        raise NotImplementedError

    def np_dtype(self, x) -> np.dtype:
        """NumPy dtype equivalent of a native array's element type.

        Workspace keys and allocation requests are always expressed in
        NumPy terms (:meth:`empty` takes a NumPy dtype), so callers
        holding a *native* array must translate through this hook
        rather than passing ``x.dtype`` along — a torch tensor's
        ``dtype`` is a ``torch.dtype`` that ``np.dtype`` cannot
        interpret.  The default handles any native type whose ``dtype``
        attribute is NumPy-compatible; backends with foreign dtype
        objects must override.
        """
        return np.dtype(x.dtype)

    # -- compute -------------------------------------------------------

    def matmul(self, a, b, out=None):
        """``a @ b`` over the trailing two axes (allocates when out is None)."""
        raise NotImplementedError

    def batched_matmul(self, a, b, out=None):
        """Stacked ``a[i] @ b[i]``; same semantics as :meth:`matmul`
        over 3-D stacks, split out so device backends can bind the
        strided-batch kernel directly."""
        return self.matmul(a, b, out=out)

    def take(self, x, indices: np.ndarray, out):
        """Gather ``x[indices]`` along axis 0 into ``out``."""
        raise NotImplementedError

    def add_(self, out, x):
        """In-place accumulate ``out += x`` (returns ``out``)."""
        raise NotImplementedError

    def copy(self, x):
        """Fresh native copy (detach a result from workspace storage)."""
        raise NotImplementedError

    def reduce(self, x, axis: Optional[int] = None):
        """Sum-reduce a native array (level-1 folds)."""
        raise NotImplementedError

    def synchronize(self) -> None:
        """Block until queued device work completes (no-op on CPU)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.cache_key!r}>"


class NumpyBackend(ArrayBackend):
    """Always-on reference backend: the literal pre-backend NumPy calls.

    Bitwise contract: every method body is exactly the operation the
    compute kernels ran before the backend seam existed, so routing
    through this class cannot change a single output bit (DESIGN.md,
    "Why backend dispatch cannot change NumPy-path results").
    """

    name = "numpy"
    capabilities = BackendCapabilities(
        ieee_fp32_accumulation=True,
        bitwise_numpy=True,
        device="cpu",
        native_is_numpy=True,
    )

    def to_native(self, x: np.ndarray) -> np.ndarray:
        return x

    def to_numpy(self, x: np.ndarray) -> np.ndarray:
        return x

    def empty(self, shape, dtype) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def cast(self, x: np.ndarray, dtype) -> np.ndarray:
        return x.astype(dtype, copy=False)

    def nbytes(self, x: np.ndarray) -> int:
        return x.nbytes

    def result_dtype(self, a, b) -> np.dtype:
        return np.result_type(a.dtype, b.dtype)

    def matmul(self, a, b, out=None):
        return np.matmul(a, b, out=out)

    def take(self, x, indices, out):
        np.take(x, indices, axis=0, out=out)
        return out

    def add_(self, out, x):
        np.add(out, x, out=out)
        return out

    def copy(self, x: np.ndarray) -> np.ndarray:
        return x.copy()

    def reduce(self, x, axis: Optional[int] = None):
        return np.sum(x, axis=axis)


#: The singleton reference backend; also the fallback for every
#: degradation path.
NUMPY_BACKEND = NumpyBackend()


# ----------------------------------------------------------------------
# Registry and selection.
# ----------------------------------------------------------------------


def _make_torch(device: Optional[str]) -> ArrayBackend:
    from repro.blas.backend_torch import TorchBackend

    return TorchBackend(device=device)


#: name -> factory.  Factories may raise :class:`BackendUnavailable`.
_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {
    "numpy": lambda: NUMPY_BACKEND,
    "torch": lambda: _make_torch(None),
    "torch-cpu": lambda: _make_torch("cpu"),
    "torch-cuda": lambda: _make_torch("cuda"),
}

_instances_lock = threading.Lock()
_instances: Dict[str, ArrayBackend] = {"numpy": NUMPY_BACKEND}


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name`` (tests, plugins)."""
    with _instances_lock:
        _FACTORIES[name] = factory
        _instances.pop(name, None)


def get_backend(name: Union[str, ArrayBackend, None]) -> ArrayBackend:
    """Resolve a backend by name (instantiated once, then cached).

    Raises :class:`BackendUnavailable` with the concrete reason when
    the backend cannot run here, and ``ValueError`` for unknown names.
    ``None`` and backend instances pass through.
    """
    if name is None:
        return active_backend()
    if isinstance(name, ArrayBackend):
        return name
    key = name.strip().lower()
    with _instances_lock:
        got = _instances.get(key)
        if got is not None:
            return got
        factory = _FACTORIES.get(key)
    if factory is None:
        raise ValueError(
            f"unknown array backend {name!r}; known: {sorted(_FACTORIES)}"
        )
    backend = factory()  # may raise BackendUnavailable
    with _instances_lock:
        return _instances.setdefault(key, backend)


def available_backends() -> Dict[str, str]:
    """Probe every registered backend: name -> "ok" or the failure reason."""
    out = {}
    for name in sorted(_FACTORIES):
        try:
            get_backend(name)
        except BackendUnavailable as exc:
            out[name] = str(exc)
        except Exception as exc:  # defensive: a broken plugin factory
            out[name] = f"{type(exc).__name__}: {exc}"
        else:
            out[name] = "ok"
    return out


#: The process-wide default backend (``set_backend`` / the env var).
#: Threads with no scoped override dispatch here.
_default: ArrayBackend = NUMPY_BACKEND

#: Per-thread scoped override (``use_backend``).  Selection must be
#: thread-scoped because the workspace pool is: two threads running
#: concurrent ``use_backend`` scopes against a shared global would
#: interleave their restores and leak one thread's selection into the
#: other's GEMMs.
_tls = threading.local()


def active_backend() -> ArrayBackend:
    """The backend this thread's GEMMs currently dispatch to.

    One thread-local attribute probe falling back to one module read —
    the entire per-call cost of the seam when no offload is configured.
    """
    override = getattr(_tls, "backend", None)
    return _default if override is None else override


def set_backend(name: Union[str, ArrayBackend]) -> ArrayBackend:
    """Select the process-wide default backend; returns the instance.

    Visible to every thread that has no :func:`use_backend` override in
    effect.  Explicit selection is strict: an unavailable backend
    raises :class:`BackendUnavailable` (use :data:`REPRO_BACKEND_ENV`
    for the degrade-to-numpy behaviour).
    """
    global _default
    _default = get_backend(name)
    return _default


@contextlib.contextmanager
def use_backend(name: Union[str, ArrayBackend]) -> Iterator[ArrayBackend]:
    """Scoped backend selection for the calling thread.

    Installs a thread-local override and restores the previous one on
    exit, so concurrent scopes in different threads cannot observe or
    clobber each other.  The override does **not** propagate into
    threads spawned inside the scope — capture :func:`active_backend`
    at submission and re-enter it in the worker.
    """
    prev = getattr(_tls, "backend", None)
    backend = get_backend(name)
    _tls.backend = backend
    try:
        yield backend
    finally:
        _tls.backend = prev


def refresh_from_env() -> ArrayBackend:
    """Re-read :data:`REPRO_BACKEND_ENV` and install the default.

    Called once at import.  Unlike :func:`set_backend`, an environment
    request that cannot be satisfied degrades to NumPy with a warning:
    a globally exported ``REPRO_BACKEND=torch`` must not break hosts
    without torch.
    """
    global _default
    raw = os.environ.get(REPRO_BACKEND_ENV, "").strip()
    if not raw:
        _default = NUMPY_BACKEND
        return _default
    try:
        _default = get_backend(raw)
    except (BackendUnavailable, ValueError) as exc:
        warnings.warn(
            f"{REPRO_BACKEND_ENV}={raw!r} unavailable ({exc}); "
            "falling back to the numpy backend",
            RuntimeWarning,
            stacklevel=2,
        )
        _default = NUMPY_BACKEND
    return _default


refresh_from_env()
