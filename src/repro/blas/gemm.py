"""GEMM entry points with oneMKL-style compute-mode dispatch.

The public surface mirrors the BLAS level-3 family the paper exercises
(``sgemm``/``dgemm``/``cgemm``/``zgemm`` plus a dtype-generic
:func:`gemm`) with NumPy-friendly conventions: ``C = alpha * op(A) @
op(B) + beta * C``.

Mode semantics (matching oneMKL):

* ``FLOAT_TO_*`` modes affect only *single-precision* routines
  (``sgemm``/``cgemm``); double-precision calls always run standard,
  exactly as in MKL (which is why the paper's QXMD FP64 phase is
  untouched by the environment variable).
* ``OZAKI_INT8`` is likewise single-only: scaled INT8 slice products
  with exact integer accumulation, rescaled and summed in FP32.
* ``EMULATED_FP64`` applies at *either* width: FP64 operands split
  into three FP32 terms (exact), FP32 operands into one, with all
  pair products accumulated at FP64.
* ``COMPLEX_3M`` affects complex routines at either precision.
* Everything else runs standard FP32/FP64 ``np.matmul``.

Every call may be timed by the attached device model (see
:func:`use_device`) and logged through :mod:`repro.blas.verbose`.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Iterator, Optional, Union

import numpy as np

from repro.blas import backend as _backend
from repro.blas.complex3m import gemm_3m_planned, gemm_4m_split_planned
from repro.blas.modes import ComputeMode, resolve_mode
from repro.blas.plan import OrientedOperand, PreparedOperand, operand_handle
from repro.blas.policy import active_policy
from repro.blas.rounding import round_to_precision
from repro.blas.verbose import VerboseRecord, emit_call, observing
from repro.blas.workspace import split_gemm_fused
from repro.telemetry.provenance import register_call_site, site_scope
from repro.telemetry.registry import active as _telemetry_active
from repro.types import Precision

__all__ = [
    "gemm",
    "sgemm",
    "dgemm",
    "cgemm",
    "zgemm",
    "use_device",
    "current_device",
    "call_site",
    "check_finite",
    "finite_checks_enabled",
    "finite_checks",
]

_TRANS_VALUES = ("N", "T", "C")

_state = threading.local()


# ----------------------------------------------------------------------
# Device-model and call-site hooks.
# ----------------------------------------------------------------------


@contextlib.contextmanager
def use_device(device) -> Iterator[None]:
    """Attach a :class:`repro.gpu.executor.Device` for the scope.

    While active, every GEMM asks the device to predict its execution
    time on the modelled hardware and records a kernel event on the
    device's timeline.  ``device=None`` silences modelling.
    """
    prev = getattr(_state, "device", None)
    _state.device = device
    try:
        yield
    finally:
        _state.device = prev


def current_device():
    """The device attached by the innermost :func:`use_device`, if any."""
    return getattr(_state, "device", None)


@contextlib.contextmanager
def call_site(name: str) -> Iterator[None]:
    """Label GEMMs issued in this scope with an application site name.

    DCMESH uses this to tag calls as ``nlp_prop`` / ``calc_energy`` /
    ``remap_occ`` so the harness can group per-function timings the
    way the paper's MKL_VERBOSE analysis does.
    """
    prev = getattr(_state, "site", "")
    _state.site = name
    try:
        yield
    finally:
        _state.site = prev


def _current_site() -> str:
    return getattr(_state, "site", "")


# ----------------------------------------------------------------------
# Opt-in input validation.
#
# The historical per-call ``np.isfinite(A).all()`` scans are an
# O(m*k + k*n) full-matrix read on every GEMM — measurable on the LFD
# hot path, where the big operands are scanned three times per QD step.
# They are now a process-wide toggle: off by default (the simulation
# hot loop), switched on by the test suite's conftest.
# ----------------------------------------------------------------------

_check_finite_enabled = False


def check_finite(enabled: bool) -> None:
    """Enable/disable the non-finite input scans on every GEMM call."""
    global _check_finite_enabled
    _check_finite_enabled = bool(enabled)


def finite_checks_enabled() -> bool:
    """Whether GEMM entry points scan their inputs for Inf/NaN."""
    return _check_finite_enabled


@contextlib.contextmanager
def finite_checks(enabled: bool) -> Iterator[None]:
    """Scoped :func:`check_finite` toggle."""
    global _check_finite_enabled
    prev = _check_finite_enabled
    _check_finite_enabled = bool(enabled)
    try:
        yield
    finally:
        _check_finite_enabled = prev


def _assert_finite(routine: str, a, b, a_plan=None, b_plan=None) -> None:
    a_ok = a_plan.is_finite() if a_plan is not None else bool(np.isfinite(a).all())
    b_ok = b_plan.is_finite() if b_plan is not None else bool(np.isfinite(b).all())
    if not (a_ok and b_ok):
        raise FloatingPointError(f"{routine} received non-finite input")


# ----------------------------------------------------------------------
# Helpers.
# ----------------------------------------------------------------------


def _routine_name(dtype: np.dtype) -> str:
    return {
        np.dtype(np.float32): "sgemm",
        np.dtype(np.float64): "dgemm",
        np.dtype(np.complex64): "cgemm",
        np.dtype(np.complex128): "zgemm",
    }[dtype]


def _working_dtype(a: np.ndarray, b: np.ndarray) -> np.dtype:
    dt = np.result_type(a.dtype, b.dtype)
    if dt.kind == "c":
        return np.dtype(np.complex128) if dt.itemsize > 8 else np.dtype(np.complex64)
    if dt.kind == "f":
        return np.dtype(np.float64) if dt.itemsize > 4 else np.dtype(np.float32)
    # Integer/bool inputs promote to FP64, like calling dgemm.
    return np.dtype(np.float64)


def _anon_worth_it(mode: ComputeMode, dtype: np.dtype) -> bool:
    """Whether an anonymous plan-cache lookup can pay for itself.

    The lookup costs one content-hash pass over the operand.  Only the
    split-precision paths re-derive enough per call (rounding/slicing
    passes over every split term) to amortise that; for STANDARD/3M the
    derived forms are a few cheap packing passes, so hashing every
    fresh operand would be a net loss on the hot path.
    """
    single = dtype in (np.dtype(np.float32), np.dtype(np.complex64))
    if (mode.is_low_precision or mode.uses_int8) and single:
        return True
    # Emulated FP64 splits double operands into three terms; the
    # single-precision variant is one cast, not worth the hash.
    return mode.uses_fp64_emulation and dtype in (
        np.dtype(np.float64),
        np.dtype(np.complex128),
    )


def _compute(
    a_h: OrientedOperand,
    b_h: OrientedOperand,
    mode: ComputeMode,
    dtype: np.dtype,
    be=None,
) -> np.ndarray:
    """Run ``op(A) @ op(B)`` under ``mode`` over operand handles.

    The handles serve every derived operand form (contiguous casts,
    real/imag parts, split-term stacks) from their plans, so a
    prepared/cached operand contributes no per-call conversion work.
    ``be`` is the :class:`~repro.blas.backend.ArrayBackend` executing
    the level-3 products; the entry points capture the ambient backend
    once per call and pass it down, so the default (NumPy) path costs
    exactly one thread-scoped :func:`~repro.blas.backend.active_backend`
    read.
    """
    if be is None:
        be = _backend.active_backend()
    is_complex = dtype.kind == "c"
    is_single = dtype in (np.dtype(np.float32), np.dtype(np.complex64))

    if mode.is_low_precision and is_single:
        if is_complex:
            # MKL composes FLOAT_TO_* with the standard 4M complex
            # decomposition: each real component GEMM is split.
            return gemm_4m_split_planned(
                a_h, b_h, mode.component_precision, mode.n_terms, backend=be
            )
        # Real single precision: inputs are rounded/split directly.
        return split_gemm_fused(
            a_h, b_h, mode.component_precision, mode.n_terms, backend=be
        )

    if mode.uses_int8 and is_single:
        # Ozaki scheme: scaled INT8 slices, exact integer accumulation,
        # FP32 rescale-and-sum.  Single-precision only, like FLOAT_TO_*;
        # composes with 4M for complex via the same fused engine
        # (Precision.INT8 is the split-family marker).
        if is_complex:
            return gemm_4m_split_planned(
                a_h, b_h, Precision.INT8, mode.n_terms, backend=be
            )
        return split_gemm_fused(a_h, b_h, Precision.INT8, mode.n_terms, backend=be)

    if mode.uses_fp64_emulation:
        # Emulated FP64: FP32-term splitting with FP64 (compensated)
        # accumulation.  Applies at either storage width — three terms
        # reconstruct an FP64 operand exactly; single-precision inputs
        # need one term and gain FP64 accumulation over STANDARD.
        n_terms = 3 if not is_single else 1
        if is_complex:
            return gemm_4m_split_planned(
                a_h, b_h, Precision.FP64, n_terms, backend=be
            )
        return split_gemm_fused(a_h, b_h, Precision.FP64, n_terms, backend=be)

    if mode.uses_3m and is_complex:
        return gemm_3m_planned(a_h, b_h, backend=be)

    # STANDARD, or a mode that does not apply to this routine
    # (FLOAT_TO_* on dgemm/zgemm, COMPLEX_3M on real routines).
    out = be.to_numpy(
        be.matmul(a_h.contiguous_native(be), b_h.contiguous_native(be))
    )
    return out.astype(dtype, copy=False)


# ----------------------------------------------------------------------
# Public entry points.
# ----------------------------------------------------------------------


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: Union[float, complex] = 1.0,
    beta: Union[float, complex] = 0.0,
    c: Optional[np.ndarray] = None,
    trans_a: str = "N",
    trans_b: str = "N",
    mode: Union[str, ComputeMode, None] = None,
) -> np.ndarray:
    """General matrix multiply: ``alpha * op(A) @ op(B) + beta * C``.

    Parameters
    ----------
    a, b:
        2-D arrays.  The effective routine (``sgemm``/``dgemm``/
        ``cgemm``/``zgemm``) is chosen from the promoted dtype.
    alpha, beta, c:
        Standard BLAS scaling; ``c`` is required when ``beta != 0``
        and is *not* modified in place (a new array is returned).
    trans_a, trans_b:
        ``'N'`` (as-is), ``'T'`` (transpose) or ``'C'`` (conjugate
        transpose).
    mode:
        Per-call compute-mode override; defaults to the ambient mode
        (context manager, :func:`set_compute_mode`, or the
        ``MKL_BLAS_COMPUTE_MODE`` environment variable).

    Returns
    -------
    numpy.ndarray
        The ``m x n`` result in the promoted storage dtype.
    """
    a_plan = a if isinstance(a, PreparedOperand) else None
    b_plan = b if isinstance(b, PreparedOperand) else None
    a_arr = a_plan.array if a_plan is not None else np.asarray(a)
    b_arr = b_plan.array if b_plan is not None else np.asarray(b)
    if a_arr.ndim != 2 or b_arr.ndim != 2:
        raise ValueError(
            f"gemm requires 2-D operands, got {a_arr.ndim}-D and {b_arr.ndim}-D"
        )
    if trans_a not in _TRANS_VALUES or trans_b not in _TRANS_VALUES:
        raise ValueError(
            f"trans flags must be in {_TRANS_VALUES}, got {trans_a!r}, {trans_b!r}"
        )
    if finite_checks_enabled():
        _assert_finite("gemm", a_arr, b_arr, a_plan, b_plan)

    dtype = _working_dtype(a_arr, b_arr)

    # Mode resolution: explicit > site policy > ambient (context /
    # global / environment).  Site policies are the per-call mixing
    # the paper's env-var method cannot express (Section IV-D).
    effective = None
    if mode is None:
        policy = active_policy()
        if policy is not None:
            effective = policy.mode_for(_current_site())
    if effective is None:
        effective = resolve_mode(mode)
    routine = _routine_name(dtype)

    anon = _anon_worth_it(effective, dtype)
    a_h = operand_handle(
        a_plan if a_plan is not None else a_arr, trans_a, dtype, allow_anonymous=anon
    )
    b_h = operand_handle(
        b_plan if b_plan is not None else b_arr, trans_b, dtype, allow_anonymous=anon
    )
    op_a_shape = a_h.shape
    op_b_shape = b_h.shape
    if op_a_shape[1] != op_b_shape[0]:
        raise ValueError(
            f"inner dimensions differ: op(A) is {op_a_shape}, op(B) is {op_b_shape}"
        )
    m, k = op_a_shape
    n = op_b_shape[1]

    # Provenance only exists while a collector is installed; the
    # disabled path stays at the single global read below.
    site_id = ""
    if _telemetry_active() is not None:
        site_id = register_call_site(_current_site() or "-", "gemm", routine, m, n, k)

    # The one per-GEMM backend read: everything below receives `be`.
    be = _backend.active_backend()
    t0 = time.perf_counter()
    if site_id:
        with site_scope(site_id):
            out = _compute(a_h, b_h, effective, dtype, be)
    else:
        out = _compute(a_h, b_h, effective, dtype, be)
    wall = time.perf_counter() - t0

    if alpha != 1.0:
        out = (alpha * out).astype(dtype, copy=False)
    if beta != 0.0:
        if c is None:
            raise ValueError("beta != 0 requires a C matrix")
        c = np.asarray(c)
        if c.shape != (m, n):
            raise ValueError(f"C has shape {c.shape}, expected {(m, n)}")
        out = (out + beta * c.astype(dtype, copy=False)).astype(dtype, copy=False)

    device = current_device()
    model_seconds = None
    if device is not None:
        model_seconds = device.record_gemm(
            routine=routine, m=m, n=n, k=k, mode=effective, site=_current_site()
        )
    if observing():
        emit_call(
            VerboseRecord(
                routine=routine,
                trans_a=trans_a,
                trans_b=trans_b,
                m=m,
                n=n,
                k=k,
                mode=effective,
                seconds=wall,
                model_seconds=model_seconds,
                site=_current_site(),
                site_id=site_id,
                backend=be.cache_key,
            )
        )
    return out


def _typed(dtype):
    dtype = np.dtype(dtype)

    def coerce(x):
        # Prepared operands of the right dtype pass through untouched so
        # their cached derived forms stay usable.
        if isinstance(x, PreparedOperand):
            return x if x.array.dtype == dtype else np.asarray(x.array, dtype=dtype)
        return np.asarray(x, dtype=dtype)

    def wrapper(a, b, **kwargs):
        return gemm(coerce(a), coerce(b), **kwargs)

    return wrapper


# Hoisted typed wrappers: building the closure per call made every
# sgemm/cgemm pay a function construction + dict lookup on the hot path.
_sgemm_typed = _typed(np.float32)
_dgemm_typed = _typed(np.float64)
_cgemm_typed = _typed(np.complex64)
_zgemm_typed = _typed(np.complex128)


def sgemm(a, b, **kwargs):
    """Single-precision real GEMM (mode-sensitive)."""
    return _sgemm_typed(a, b, **kwargs)


def dgemm(a, b, **kwargs):
    """Double-precision real GEMM (always standard arithmetic)."""
    return _dgemm_typed(a, b, **kwargs)


def cgemm(a, b, **kwargs):
    """Single-precision complex GEMM — the routine DCMESH's LFD lives in."""
    return _cgemm_typed(a, b, **kwargs)


def zgemm(a, b, **kwargs):
    """Double-precision complex GEMM (only ``COMPLEX_3M`` applies)."""
    return _zgemm_typed(a, b, **kwargs)


# Re-export for modules that want to round storage explicitly.
round_storage = round_to_precision
