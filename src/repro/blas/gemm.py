"""GEMM entry points with oneMKL-style compute-mode dispatch.

The public surface mirrors the BLAS level-3 family the paper exercises
(``sgemm``/``dgemm``/``cgemm``/``zgemm`` plus a dtype-generic
:func:`gemm`) with NumPy-friendly conventions: ``C = alpha * op(A) @
op(B) + beta * C``.

Mode semantics (matching oneMKL):

* ``FLOAT_TO_*`` modes affect only *single-precision* routines
  (``sgemm``/``cgemm``); double-precision calls always run standard,
  exactly as in MKL (which is why the paper's QXMD FP64 phase is
  untouched by the environment variable).
* ``COMPLEX_3M`` affects complex routines at either precision.
* Everything else runs standard FP32/FP64 ``np.matmul``.

Every call may be timed by the attached device model (see
:func:`use_device`) and logged through :mod:`repro.blas.verbose`.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Iterator, Optional, Union

import numpy as np

from repro.blas.complex3m import gemm_3m, gemm_4m
from repro.blas.modes import ComputeMode, resolve_mode
from repro.blas.rounding import round_to_precision
from repro.blas.split import split_gemm_real
from repro.blas.verbose import VerboseRecord, record_call, verbose_enabled

__all__ = [
    "gemm",
    "sgemm",
    "dgemm",
    "cgemm",
    "zgemm",
    "use_device",
    "current_device",
    "call_site",
]

_TRANS_VALUES = ("N", "T", "C")

_state = threading.local()


# ----------------------------------------------------------------------
# Device-model and call-site hooks.
# ----------------------------------------------------------------------


@contextlib.contextmanager
def use_device(device) -> Iterator[None]:
    """Attach a :class:`repro.gpu.executor.Device` for the scope.

    While active, every GEMM asks the device to predict its execution
    time on the modelled hardware and records a kernel event on the
    device's timeline.  ``device=None`` silences modelling.
    """
    prev = getattr(_state, "device", None)
    _state.device = device
    try:
        yield
    finally:
        _state.device = prev


def current_device():
    """The device attached by the innermost :func:`use_device`, if any."""
    return getattr(_state, "device", None)


@contextlib.contextmanager
def call_site(name: str) -> Iterator[None]:
    """Label GEMMs issued in this scope with an application site name.

    DCMESH uses this to tag calls as ``nlp_prop`` / ``calc_energy`` /
    ``remap_occ`` so the harness can group per-function timings the
    way the paper's MKL_VERBOSE analysis does.
    """
    prev = getattr(_state, "site", "")
    _state.site = name
    try:
        yield
    finally:
        _state.site = prev


def _current_site() -> str:
    return getattr(_state, "site", "")


# ----------------------------------------------------------------------
# Helpers.
# ----------------------------------------------------------------------


def _apply_trans(x: np.ndarray, trans: str) -> np.ndarray:
    if trans == "N":
        return x
    if trans == "T":
        return x.T
    if trans == "C":
        return x.conj().T if np.iscomplexobj(x) else x.T
    raise ValueError(f"trans must be one of {_TRANS_VALUES}, got {trans!r}")


def _routine_name(dtype: np.dtype) -> str:
    return {
        np.dtype(np.float32): "sgemm",
        np.dtype(np.float64): "dgemm",
        np.dtype(np.complex64): "cgemm",
        np.dtype(np.complex128): "zgemm",
    }[dtype]


def _working_dtype(a: np.ndarray, b: np.ndarray) -> np.dtype:
    dt = np.result_type(a.dtype, b.dtype)
    if dt.kind == "c":
        return np.dtype(np.complex128) if dt.itemsize > 8 else np.dtype(np.complex64)
    if dt.kind == "f":
        return np.dtype(np.float64) if dt.itemsize > 4 else np.dtype(np.float32)
    # Integer/bool inputs promote to FP64, like calling dgemm.
    return np.dtype(np.float64)


def _low_precision_real_gemm(mode: ComputeMode):
    precision = mode.component_precision
    n_terms = mode.n_terms

    def rg(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return split_gemm_real(x, y, precision, n_terms)

    return rg


def _compute(a: np.ndarray, b: np.ndarray, mode: ComputeMode, dtype: np.dtype) -> np.ndarray:
    """Run ``a @ b`` under ``mode`` (inputs already oriented/cast)."""
    is_complex = dtype.kind == "c"
    is_single = dtype in (np.dtype(np.float32), np.dtype(np.complex64))

    if mode.is_low_precision and is_single:
        rg = _low_precision_real_gemm(mode)
        if is_complex:
            # MKL composes FLOAT_TO_* with the standard 4M complex
            # decomposition: each real component GEMM is split.
            return gemm_4m(a, b, real_gemm=rg)
        # Real single precision: inputs are rounded/split directly.
        return rg(np.ascontiguousarray(a, dtype=np.float32),
                  np.ascontiguousarray(b, dtype=np.float32))

    if mode.uses_3m and is_complex:
        return gemm_3m(a, b)

    # STANDARD, or a mode that does not apply to this routine
    # (FLOAT_TO_* on dgemm/zgemm, COMPLEX_3M on real routines).
    return np.matmul(np.ascontiguousarray(a), np.ascontiguousarray(b)).astype(dtype, copy=False)


# ----------------------------------------------------------------------
# Public entry points.
# ----------------------------------------------------------------------


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: Union[float, complex] = 1.0,
    beta: Union[float, complex] = 0.0,
    c: Optional[np.ndarray] = None,
    trans_a: str = "N",
    trans_b: str = "N",
    mode: Union[str, ComputeMode, None] = None,
) -> np.ndarray:
    """General matrix multiply: ``alpha * op(A) @ op(B) + beta * C``.

    Parameters
    ----------
    a, b:
        2-D arrays.  The effective routine (``sgemm``/``dgemm``/
        ``cgemm``/``zgemm``) is chosen from the promoted dtype.
    alpha, beta, c:
        Standard BLAS scaling; ``c`` is required when ``beta != 0``
        and is *not* modified in place (a new array is returned).
    trans_a, trans_b:
        ``'N'`` (as-is), ``'T'`` (transpose) or ``'C'`` (conjugate
        transpose).
    mode:
        Per-call compute-mode override; defaults to the ambient mode
        (context manager, :func:`set_compute_mode`, or the
        ``MKL_BLAS_COMPUTE_MODE`` environment variable).

    Returns
    -------
    numpy.ndarray
        The ``m x n`` result in the promoted storage dtype.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"gemm requires 2-D operands, got {a.ndim}-D and {b.ndim}-D")
    if trans_a not in _TRANS_VALUES or trans_b not in _TRANS_VALUES:
        raise ValueError(
            f"trans flags must be in {_TRANS_VALUES}, got {trans_a!r}, {trans_b!r}"
        )
    if not np.isfinite(a).all() or not np.isfinite(b).all():
        raise FloatingPointError("gemm received non-finite input")

    dtype = _working_dtype(a, b)
    op_a = _apply_trans(a.astype(dtype, copy=False), trans_a)
    op_b = _apply_trans(b.astype(dtype, copy=False), trans_b)
    if op_a.shape[1] != op_b.shape[0]:
        raise ValueError(
            f"inner dimensions differ: op(A) is {op_a.shape}, op(B) is {op_b.shape}"
        )
    m, k = op_a.shape
    n = op_b.shape[1]

    # Mode resolution: explicit > site policy > ambient (context /
    # global / environment).  Site policies are the per-call mixing
    # the paper's env-var method cannot express (Section IV-D).
    effective = None
    if mode is None:
        from repro.blas.policy import active_policy

        policy = active_policy()
        if policy is not None:
            effective = policy.mode_for(_current_site())
    if effective is None:
        effective = resolve_mode(mode)
    routine = _routine_name(dtype)

    t0 = time.perf_counter()
    out = _compute(op_a, op_b, effective, dtype)
    wall = time.perf_counter() - t0

    if alpha != 1.0:
        out = (alpha * out).astype(dtype, copy=False)
    if beta != 0.0:
        if c is None:
            raise ValueError("beta != 0 requires a C matrix")
        c = np.asarray(c)
        if c.shape != (m, n):
            raise ValueError(f"C has shape {c.shape}, expected {(m, n)}")
        out = (out + beta * c.astype(dtype, copy=False)).astype(dtype, copy=False)

    device = current_device()
    model_seconds = None
    if device is not None:
        model_seconds = device.record_gemm(
            routine=routine, m=m, n=n, k=k, mode=effective, site=_current_site()
        )
    if verbose_enabled():
        record_call(
            VerboseRecord(
                routine=routine,
                trans_a=trans_a,
                trans_b=trans_b,
                m=m,
                n=n,
                k=k,
                mode=effective,
                seconds=wall,
                model_seconds=model_seconds,
                site=_current_site(),
            )
        )
    return out


def _typed(dtype):
    def wrapper(a, b, **kwargs):
        a = np.asarray(a, dtype=dtype)
        b = np.asarray(b, dtype=dtype)
        return gemm(a, b, **kwargs)

    return wrapper


def sgemm(a, b, **kwargs):
    """Single-precision real GEMM (mode-sensitive)."""
    return _typed(np.float32)(a, b, **kwargs)


def dgemm(a, b, **kwargs):
    """Double-precision real GEMM (always standard arithmetic)."""
    return _typed(np.float64)(a, b, **kwargs)


def cgemm(a, b, **kwargs):
    """Single-precision complex GEMM — the routine DCMESH's LFD lives in."""
    return _typed(np.complex64)(a, b, **kwargs)


def zgemm(a, b, **kwargs):
    """Double-precision complex GEMM (only ``COMPLEX_3M`` applies)."""
    return _typed(np.complex128)(a, b, **kwargs)


# Re-export for modules that want to round storage explicitly.
round_storage = round_to_precision
