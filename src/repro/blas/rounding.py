"""Bit-exact FP32 -> BF16 / TF32 rounding and multi-term splitting.

These are the primitives behind oneMKL's ``FLOAT_TO_BF16{,X2,X3}`` and
``FLOAT_TO_TF32`` compute modes.  Both target formats share FP32's
8-bit exponent, so converting is purely a mantissa truncation with
round-to-nearest-even (RNE), which we perform directly on the IEEE-754
bit patterns:

* BF16 keeps the top 7 of FP32's 23 mantissa bits (drops 16),
* TF32 keeps the top 10 (drops 13).

The RNE-on-bits trick: for ``d`` dropped bits, add ``2^(d-1) - 1`` plus
the guard bit (bit ``d`` of the original), then clear the low ``d``
bits.  Mantissa overflow carries into the exponent, which is exactly
IEEE round-up behaviour.  Since the exponent field width is unchanged,
denormals and the finite range are handled for free; Inf/NaN inputs are
passed through untouched.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.types import MANTISSA_BITS, Precision

__all__ = [
    "round_mantissa",
    "round_fp32_to_bf16",
    "round_fp32_to_tf32",
    "round_to_precision",
    "split_terms",
    "split_terms_residual",
    "extend_split",
    "split_bf16",
    "split_tf32",
    "ozaki_slice_terms",
    "emulated_fp64_split_terms",
    "max_relative_error",
    "ozaki_max_relative_error",
]

#: Bits per Ozaki INT8 slice: 7 magnitude bits (slices are truncated
#: towards zero, so every slice value fits the signed-int8 range
#: [-127, 127] with the sign carried separately by the float).
OZAKI_SLICE_BITS = 7

_FP32_MANTISSA = 23
_EXP_MASK = np.uint32(0x7F800000)


def round_mantissa(x: np.ndarray, keep_bits: int) -> np.ndarray:
    """Round FP32 array ``x`` to ``keep_bits`` mantissa bits with RNE.

    Returns a *float32* array whose values are exactly representable in
    the reduced format (low ``23 - keep_bits`` mantissa bits are zero).
    The exponent range is unchanged (8 bits), matching BF16 and TF32.

    Parameters
    ----------
    x:
        Array convertible to ``float32``.  Inputs of other float widths
        are first cast to FP32 (itself an RNE rounding), mirroring what
        happens when data is handed to an FP32 BLAS call.
    keep_bits:
        Number of explicit mantissa bits to retain, in ``[0, 23]``.
    """
    if not 0 <= keep_bits <= _FP32_MANTISSA:
        raise ValueError(f"keep_bits must be in [0, 23], got {keep_bits}")
    x32 = np.ascontiguousarray(x, dtype=np.float32)
    if keep_bits == _FP32_MANTISSA:
        return x32.copy() if x32 is x else x32
    drop = _FP32_MANTISSA - keep_bits
    u = x32.view(np.uint32)
    # All shift/mask constants as np.uint32: mixing Python ints into
    # uint32 ops relies on NumPy's value-based casting, which NumPy >= 2
    # (NEP 50) resolves differently (and loudly) — keep every operand in
    # the array's dtype so the arithmetic is unambiguous and warning-free.
    half = np.uint32((1 << (drop - 1)) - 1)
    guard = (u >> np.uint32(drop)) & np.uint32(1)
    keep_mask = np.uint32((0xFFFFFFFF << drop) & 0xFFFFFFFF)
    # `u + half + guard` wraps (mod 2^32) only for Inf/NaN patterns,
    # whose results are discarded by the `special` restore below; for
    # every finite input the sum stays in range and a mantissa overflow
    # carries into the exponent — exactly IEEE round-up (see the
    # regression test at the all-ones-mantissa boundary).
    rounded = (u + half + guard) & keep_mask
    # Preserve Inf/NaN bit patterns: the add above would corrupt them.
    special = (u & _EXP_MASK) == _EXP_MASK
    out = np.where(special, u, rounded)
    return out.view(np.float32)


def round_fp32_to_bf16(x: np.ndarray) -> np.ndarray:
    """Round to BF16 (7 mantissa bits), result stored in FP32."""
    return round_mantissa(x, MANTISSA_BITS[Precision.BF16])


def round_fp32_to_tf32(x: np.ndarray) -> np.ndarray:
    """Round to TF32 (10 mantissa bits), result stored in FP32."""
    return round_mantissa(x, MANTISSA_BITS[Precision.TF32])


def round_to_precision(x: np.ndarray, precision: Precision) -> np.ndarray:
    """Round FP32 data to ``precision``'s grid, keeping an FP32 carrier."""
    if precision in (Precision.FP32, Precision.FP64):
        return np.ascontiguousarray(x, dtype=np.float32)
    if precision is Precision.FP16:
        # FP16 narrows the exponent too; round-trip through the dtype.
        # Out-of-range values overflow to inf by design (IEEE behaviour).
        with np.errstate(over="ignore"):
            return np.asarray(x, dtype=np.float16).astype(np.float32)
    try:
        keep = MANTISSA_BITS[precision]
    except KeyError:
        raise ValueError(f"cannot round to {precision}") from None
    return round_mantissa(x, keep)


def split_terms(x: np.ndarray, keep_bits: int, n_terms: int) -> Tuple[np.ndarray, ...]:
    """Decompose FP32 ``x`` into ``n_terms`` reduced-precision components.

    Successive residual extraction: ``t1 = rnd(x)``, ``t2 = rnd(x - t1)``,
    ``t3 = rnd(x - t1 - t2)`` ... with residuals computed exactly in FP32
    (each subtraction is exact by Sterbenz-style cancellation whenever
    the rounding error is small relative to the operands, and at worst
    an FP32 rounding otherwise).  This is the decomposition oneMKL's
    ``FLOAT_TO_BF16X{2,3}`` modes use: ``x ~= t1 + t2 + t3`` with each
    term representable in BF16.
    """
    if n_terms < 1:
        raise ValueError(f"n_terms must be >= 1, got {n_terms}")
    residual = np.ascontiguousarray(x, dtype=np.float32)
    terms = []
    for _ in range(n_terms):
        t = round_mantissa(residual, keep_bits)
        terms.append(t)
        residual = residual - t
    return tuple(terms)


def split_terms_residual(
    x: np.ndarray, keep_bits: int, n_terms: int
) -> Tuple[Tuple[np.ndarray, ...], np.ndarray]:
    """Like :func:`split_terms` but also return the final FP32 residual.

    The residual after ``n`` terms is the exact starting point for term
    ``n + 1``: because each term depends only on the running residual,
    the first ``n`` terms of an ``(n + k)``-term split are bitwise equal
    to the ``n``-term split.  Caching ``(terms, residual)`` therefore
    lets a precision escalation extend an existing split incrementally
    (one extra rounding + subtraction) instead of recomputing every
    term from scratch — see :meth:`repro.blas.plan.PreparedOperand`.
    """
    if n_terms < 1:
        raise ValueError(f"n_terms must be >= 1, got {n_terms}")
    residual = np.ascontiguousarray(x, dtype=np.float32)
    terms = []
    for _ in range(n_terms):
        t = round_mantissa(residual, keep_bits)
        terms.append(t)
        residual = residual - t
    return tuple(terms), residual


def extend_split(
    terms: Tuple[np.ndarray, ...],
    residual: np.ndarray,
    keep_bits: int,
    extra_terms: int,
) -> Tuple[Tuple[np.ndarray, ...], np.ndarray]:
    """Append ``extra_terms`` more components to an existing split.

    ``terms``/``residual`` must come from :func:`split_terms_residual`
    with the same ``keep_bits``.  The returned terms are bitwise
    identical to a from-scratch ``split_terms_residual`` of the
    original array with ``len(terms) + extra_terms`` terms (prefix
    property: the FP32 subtraction sequence is unchanged).
    """
    if extra_terms < 1:
        raise ValueError(f"extra_terms must be >= 1, got {extra_terms}")
    out = list(terms)
    for _ in range(extra_terms):
        t = round_mantissa(residual, keep_bits)
        out.append(t)
        residual = residual - t
    return tuple(out), residual


def split_bf16(x: np.ndarray, n_terms: int) -> Tuple[np.ndarray, ...]:
    """BF16 multi-term split (see :func:`split_terms`)."""
    return split_terms(x, MANTISSA_BITS[Precision.BF16], n_terms)


def split_tf32(x: np.ndarray, n_terms: int = 1) -> Tuple[np.ndarray, ...]:
    """TF32 multi-term split (see :func:`split_terms`)."""
    return split_terms(x, MANTISSA_BITS[Precision.TF32], n_terms)


def ozaki_slice_terms(x: np.ndarray, n_slices: int, axis: int) -> Tuple[np.ndarray, ...]:
    """Ozaki-scheme decomposition into scaled-INT8 slice terms.

    Every element of ``x`` is written as a sum of ``n_slices`` terms
    ``q_i * 2**(e - 7*(i+1))`` where ``q_i`` is an integer in
    ``[-127, 127]`` (an INT8 value) and ``e`` is a shared power-of-two
    exponent per 1-D fibre along ``axis`` — the *contraction* axis of
    the GEMM the terms feed (``axis=-1`` for the left operand's rows,
    ``axis=-2`` for the right operand's columns), so that every dot
    product in the output sees one fixed scale per (slice, slice) pair
    and the INT8xINT8 -> INT32 accumulation is exact.

    The terms are returned as *float64* arrays holding those exactly
    representable scaled integers: a float64 matmul of two such terms
    is then a bit-exact emulation of the integer tensor-core product
    (each scalar product is ``q * q' * 2**(...)`` with ``|q*q'| <=
    127**2 < 2**14``, and the k-fold sum stays far below ``2**53``).

    Exactness of the decomposition arithmetic itself: the fibre scale
    comes from ``np.frexp`` (exact; ``absmax < 2**e``), the running
    remainder is multiplied by powers of two (exact), and truncation /
    fractional-part extraction of a float64 below 128 is exact.  After
    ``s`` slices the unrepresented remainder of an element is below
    ``2**(e - 7s)``, i.e. below ``2**(1-7s)`` of its fibre's absmax.
    """
    if n_slices < 1:
        raise ValueError(f"n_slices must be >= 1, got {n_slices}")
    x64 = np.ascontiguousarray(x, dtype=np.float64)
    if x64.ndim < 2:
        raise ValueError(f"ozaki_slice_terms needs >= 2-D input, got {x64.ndim}-D")
    absmax = np.max(np.abs(x64), axis=axis, keepdims=True)
    # frexp: absmax = f * 2**e with f in [0.5, 1) -> absmax < 2**e and
    # the scale is an exact power of two (zero fibres get e = 0).
    _, e = np.frexp(absmax)
    r = np.ldexp(x64, -e)               # |r| < 1, exact
    radix = float(1 << OZAKI_SLICE_BITS)
    terms = []
    for i in range(n_slices):
        shifted = r * radix             # |shifted| < 128, exact
        q = np.trunc(shifted)           # integer slice, |q| <= 127
        r = shifted - q                 # exact fractional remainder
        terms.append(np.ldexp(q, e - OZAKI_SLICE_BITS * (i + 1)))
    return tuple(terms)


def emulated_fp64_split_terms(x: np.ndarray, n_terms: int) -> Tuple[np.ndarray, ...]:
    """Decompose FP64 data into ``n_terms`` FP32-representable terms.

    Greedy residual extraction at FP32 granularity: ``t1 = fp32(x)``,
    ``t2 = fp32(x - t1)``, ... with the residuals computed exactly in
    FP64 (each term is exactly representable in FP64, and the
    subtraction cancels the shared leading bits).  Three 24-bit
    significands carry 72 > 53 bits, so for inputs within FP32's
    exponent range the three-term split is *exact* — the basis of the
    emulated-FP64 compute mode, where FP32-term pair products (each
    exact: 24+24 <= 53 bits) are accumulated in FP64.

    The terms are returned as float64 arrays holding FP32-representable
    values, ready for exact pair products under float64 matmul.
    """
    if n_terms < 1:
        raise ValueError(f"n_terms must be >= 1, got {n_terms}")
    residual = np.ascontiguousarray(x, dtype=np.float64)
    terms = []
    for _ in range(n_terms):
        t = residual.astype(np.float32).astype(np.float64)
        terms.append(t)
        residual = residual - t
    return tuple(terms)


def max_relative_error(keep_bits: int) -> float:
    """Worst-case relative input error of rounding to ``keep_bits``.

    Section V-B of the paper: rounding off all but the lowest ``n``
    mantissa bits induces at most a ``2**-(n+1)`` relative perturbation
    of each (normal) input.
    """
    return 2.0 ** -(keep_bits + 1)


def ozaki_max_relative_error(n_slices: int) -> float:
    """Analytic relative-error level of an ``n_slices`` Ozaki GEMM.

    Each input element is represented to within ``2**(1 - 7s)`` of its
    fibre's absmax (see :func:`ozaki_slice_terms`), so a dot product
    carries a perturbation of roughly twice that relative to the
    ``k * rowmax * colmax`` scale: ``2**-(7s - 1)`` — ``2**-20`` at the
    default three slices, between BF16x2 and FP32 on the error ladder.
    """
    if n_slices < 1:
        raise ValueError(f"n_slices must be >= 1, got {n_slices}")
    return 2.0 ** -(OZAKI_SLICE_BITS * n_slices - 1)
