"""Preallocated workspaces and the fused split-GEMM component engine.

A BF16X3 ``sgemm`` is six FP32 component products; composed with the
4M complex decomposition a single ``cgemm`` issues up to 24 separate
``np.matmul`` calls, each allocating a fresh ``(m, n)`` temporary that
is immediately folded into a running sum and discarded.  This module
removes both costs:

* a thread-local :class:`Workspace` hands out reusable scratch buffers
  keyed by ``(backend, tag, shape, dtype)`` — the product temporaries
  and the gathered component stacks live there across calls;
* :func:`fused_pair_products` evaluates all ``n(n+1)/2`` component
  pairs either as **one batched 3-D** ``np.matmul`` over stacked
  operands or as an ``out=``-accumulated loop (configurable; ``auto``
  picks by stack size), then accumulates most-significant-first.

Bit-exactness is the hard contract.  NumPy evaluates a stacked matmul
slice-by-slice with the same inner kernel as the 2-D call *provided the
slices are C-contiguous* (strided slices may take a different path —
the engine therefore only ever batches freshly gathered contiguous
stacks), ``out=`` writes the identical product bytes, and in-place
``np.add`` is the same IEEE addition as the cold path's ``out + prod``.
The accumulation visits pairs in :func:`repro.blas.split.component_pairs`
order, so every intermediate sum matches the naive loop bit-for-bit.
The golden property tests (``tests/property/test_prop_plan_golden.py``)
enforce this against the naive reference for every mode.

Backend dispatch: every array operation here (allocate, gather,
batched matmul, in-place accumulate) goes through an
:class:`~repro.blas.backend.ArrayBackend`.  The NumPy backend's
methods are the literal calls described above, so the bitwise contract
is untouched; device backends trade it for the documented tolerance
contracts in docs/BACKENDS.md while keeping the identical pair order.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.blas import backend as _backend
from repro.telemetry.provenance import current_site_id as _current_site_id
from repro.telemetry.registry import active as _telemetry_active
from repro.types import MANTISSA_BITS, Precision

__all__ = [
    "Workspace",
    "fused_pair_products",
    "split_gemm_fused",
    "get_workspace",
    "clear_workspace",
    "fused_mode",
    "set_fused_mode",
    "get_fused_mode",
]

#: ``auto`` batches when the gathered stacks + product buffer fit here.
BATCH_BYTES_CAP = 32 << 20

_FUSED_MODES = ("auto", "batched", "loop")
_fused_mode = "auto"

_tls = threading.local()


class Workspace:
    """Reusable scratch buffers keyed by ``(backend, tag, shape, dtype)``.

    Buffers are only ever lent out for the duration of one engine call
    and never returned to callers, so reuse cannot alias results.

    Invariant: the key *must* include the owning backend's
    ``cache_key``.  Buffers are backend-native arrays (``np.empty`` for
    NumPy, device tensors for torch-cuda); a ``(tag, shape, dtype)``
    match across backends is a different allocation entirely, and a
    backend switch mid-process must never hand one backend's buffer to
    another's kernels.  ``tests/unit/test_blas_backend.py`` pins this.
    """

    def __init__(self):
        self._buffers = {}

    def get(self, tag: str, shape: Tuple[int, ...], dtype, backend=None):
        be = _backend.NUMPY_BACKEND if backend is None else backend
        key = (be.cache_key, tag, tuple(shape), np.dtype(dtype).str)
        buf = self._buffers.get(key)
        t = _telemetry_active()
        if buf is None:
            buf = be.empty(shape, dtype=dtype)
            self._buffers[key] = buf
            if t is not None:
                site = _current_site_id() or "-"
                t.count(
                    "blas.workspace.allocations", tag=tag, site=site, backend=be.cache_key
                )
                t.count(
                    "blas.workspace.allocated_bytes",
                    be.nbytes(buf),
                    tag=tag,
                    site=site,
                    backend=be.cache_key,
                )
        elif t is not None:
            t.count(
                "blas.workspace.reuses",
                tag=tag,
                site=_current_site_id() or "-",
                backend=be.cache_key,
            )
        return buf

    def clear(self) -> None:
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        return sum(
            buf.nbytes if isinstance(buf, np.ndarray) else buf.numel() * buf.element_size()
            for buf in self._buffers.values()
        )


def get_workspace() -> Workspace:
    """The calling thread's workspace (created on first use)."""
    ws = getattr(_tls, "ws", None)
    if ws is None:
        ws = _tls.ws = Workspace()
    return ws


def clear_workspace() -> None:
    """Release the calling thread's scratch buffers."""
    ws = getattr(_tls, "ws", None)
    if ws is not None:
        ws.clear()


def set_fused_mode(mode: str) -> None:
    """Select the component-product evaluation strategy.

    ``batched``: single stacked 3-D matmul; ``loop``: ``out=``-reusing
    per-pair matmuls; ``auto`` (default): batched while the stacks fit
    in :data:`BATCH_BYTES_CAP`, loop beyond.
    """
    global _fused_mode
    if mode not in _FUSED_MODES:
        raise ValueError(f"fused mode must be one of {_FUSED_MODES}, got {mode!r}")
    _fused_mode = mode


def get_fused_mode() -> str:
    return _fused_mode


@contextlib.contextmanager
def fused_mode(mode: str) -> Iterator[None]:
    """Scoped :func:`set_fused_mode` (the golden tests sweep both paths)."""
    prev = _fused_mode
    set_fused_mode(mode)
    try:
        yield
    finally:
        set_fused_mode(prev)


def _should_batch(a_terms, b_terms, n_pairs: int, out_shape, be) -> bool:
    if _fused_mode == "batched":
        return True
    if _fused_mode == "loop":
        return False
    slice_bytes = be.nbytes(a_terms[0]) + be.nbytes(b_terms[0])
    prod_bytes = int(np.prod(out_shape)) * be.result_dtype(a_terms, b_terms).itemsize
    return n_pairs * (slice_bytes + prod_bytes) <= BATCH_BYTES_CAP


def fused_pair_products(
    a_terms,
    b_terms,
    pairs: Sequence[Tuple[int, int]],
    backend=None,
) -> np.ndarray:
    """``sum(a_terms[i-1] @ b_terms[j-1] for (i, j) in pairs)``, in order.

    Parameters
    ----------
    a_terms, b_terms:
        C-contiguous stacked split terms, ``(n_terms, ..., m, k)`` and
        ``(n_terms, ..., k, n)`` (the trailing two axes are the matrix;
        any leading batch axes broadcast through the batched matmul),
        in ``backend``'s native array type.
    pairs:
        1-based component pairs in most-significant-first order
        (:func:`repro.blas.split.component_pairs`).
    backend:
        The :class:`~repro.blas.backend.ArrayBackend` executing the
        products (default: NumPy — matching plain-ndarray callers).
        Every operation below (gather, batched matmul, in-place
        accumulate) goes through it; for NumPy each is the identical
        call the pre-backend engine ran.

    Returns a freshly allocated NumPy array (never a workspace buffer).
    """
    be = _backend.NUMPY_BACKEND if backend is None else backend
    out_shape = np.broadcast_shapes(
        tuple(a_terms.shape[1:-2]), tuple(b_terms.shape[1:-2])
    ) + (
        a_terms.shape[-2],
        b_terms.shape[-1],
    )
    n_pairs = len(pairs)
    if n_pairs == 1:
        i, j = pairs[0]
        return be.to_numpy(be.matmul(a_terms[i - 1], b_terms[j - 1]))
    ws = get_workspace()
    dtype = be.result_dtype(a_terms, b_terms)

    if _should_batch(a_terms, b_terms, n_pairs, out_shape, be):
        idx_a = np.array([i - 1 for i, _ in pairs])
        idx_b = np.array([j - 1 for _, j in pairs])
        # Workspace keys/allocations speak NumPy dtypes; the stacks are
        # backend-native (a torch tensor's .dtype would not survive the
        # np.dtype() in Workspace.get), so translate via the backend.
        a_stack = ws.get(
            "a_stack", (n_pairs,) + tuple(a_terms.shape[1:]), be.np_dtype(a_terms), be
        )
        b_stack = ws.get(
            "b_stack", (n_pairs,) + tuple(b_terms.shape[1:]), be.np_dtype(b_terms), be
        )
        be.take(a_terms, idx_a, out=a_stack)
        be.take(b_terms, idx_b, out=b_stack)
        prods = ws.get("prods", (n_pairs,) + out_shape, dtype, be)
        be.batched_matmul(a_stack, b_stack, out=prods)
        out = be.copy(prods[0])
        for p in range(1, n_pairs):
            be.add_(out, prods[p])
        return be.to_numpy(out)

    i0, j0 = pairs[0]
    out = be.matmul(a_terms[i0 - 1], b_terms[j0 - 1])
    prod = ws.get("prod", out_shape, dtype, be)
    for i, j in pairs[1:]:
        be.matmul(a_terms[i - 1], b_terms[j - 1], out=prod)
        be.add_(out, prod)
    return be.to_numpy(out)


def split_gemm_fused(
    a_handle,
    b_handle,
    precision: Precision,
    n_terms: int,
    *,
    part_a: Optional[str] = None,
    part_b: Optional[str] = None,
    backend=None,
) -> np.ndarray:
    """Split-precision real GEMM over prepared operand handles.

    ``part_a``/``part_b`` select the real/imag component of a complex
    operand (``'re'``/``'im'``); ``None`` means the operand itself is
    real.  Split stacks come from the handles' plans, so a frozen
    operand's rounding/splitting work is paid once per SCF block
    instead of once per call.  The splits themselves are always derived
    in NumPy (bit-exact everywhere); ``backend`` only executes the
    component products, consuming per-backend native mirrors of the
    stacks (cached on the plan, so device staging is once per block).

    ``precision`` selects the splitting family: ``BF16``/``TF32`` use
    the mantissa-truncation split; the marker values ``Precision.INT8``
    (Ozaki scaled-slice split, FP32 result) and ``Precision.FP64``
    (emulated-FP64 FP32-term split, result in the handles' real working
    width) route to their own plan-cached stacks.  All families share
    the same fused pair-product engine and accumulation order.
    """
    from repro.blas.split import component_pairs

    be = _backend.active_backend() if backend is None else backend
    t = _telemetry_active()
    if t is not None:
        t.count(
            "blas.split_gemm_fused",
            precision=precision.name,
            n_terms=n_terms,
            site=_current_site_id() or "-",
            backend=be.cache_key,
        )
    if precision is Precision.INT8:
        a_terms = a_handle.ozaki_stack_native(be, n_terms, part=part_a, operand="a")
        b_terms = b_handle.ozaki_stack_native(be, n_terms, part=part_b, operand="b")
        out_dtype = np.float32
    elif precision is Precision.FP64:
        a_terms = a_handle.efp64_stack_native(be, n_terms, part=part_a)
        b_terms = b_handle.efp64_stack_native(be, n_terms, part=part_b)
        double = np.dtype(a_handle.dtype) in (
            np.dtype(np.float64),
            np.dtype(np.complex128),
        )
        out_dtype = np.float64 if double else np.float32
    else:
        keep = MANTISSA_BITS[precision]
        a_terms = a_handle.split_stack_native(be, keep, n_terms, part=part_a)
        b_terms = b_handle.split_stack_native(be, keep, n_terms, part=part_b)
        out_dtype = None
    if a_terms.shape[-1] != b_terms.shape[-2]:
        raise ValueError(
            f"inner dimensions differ: {tuple(a_terms.shape[1:])} @ {tuple(b_terms.shape[1:])}"
        )
    out = fused_pair_products(a_terms, b_terms, component_pairs(n_terms), backend=be)
    if out_dtype is not None:
        out = out.astype(out_dtype, copy=False)
    return out
